(* Telemetry & taxonomy tests: every reject-example program produces its
   documented reason; rejected selftest/generated programs never map to
   Unknown; JSONL traces round-trip and are deterministic across
   sharding; phase timers stay within the wall-clock envelope; the docs
   reference layer stays in sync with the code. *)

module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Venv = Bvf_verifier.Venv
module Reject_reason = Bvf_verifier.Reject_reason
module Reject_examples = Bvf_verifier.Reject_examples
module Loader = Bvf_runtime.Loader
module Campaign = Bvf_core.Campaign
module Parallel = Bvf_core.Parallel
module Telemetry = Bvf_core.Telemetry
module Selftests = Bvf_core.Selftests

let read_all path = In_channel.with_open_bin path In_channel.input_all

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* -- reject_examples: expected == observed -------------------------------- *)

let test_examples_reject_with_expected_reason () =
  List.iter
    (fun ex ->
       match Reject_examples.verify_example ex with
       | None ->
         Alcotest.failf "%s: example was accepted"
           (Reject_reason.to_string ex.Reject_examples.ex_reason)
       | Some (got, msg) ->
         Alcotest.(check string)
           (Printf.sprintf "%s (%s)" ex.Reject_examples.ex_title msg)
           (Reject_reason.to_string ex.Reject_examples.ex_reason)
           (Reject_reason.to_string got))
    Reject_examples.all

let test_examples_cover_taxonomy () =
  (* every constructor except the two documented gaps has an example *)
  let covered = List.map (fun e -> e.Reject_examples.ex_reason)
      Reject_examples.all in
  List.iter
    (fun r ->
       if r <> Reject_reason.Env_failure && r <> Reject_reason.Unknown
       then
         Alcotest.(check bool)
           (Reject_reason.to_string r ^ " has an example") true
           (List.mem r covered))
    Reject_reason.all

(* -- no Unknown on real program populations ------------------------------- *)

let test_selftests_rejections_classified () =
  (* Replay the selftest corpus in an unprivileged session with the
     same map population (fd numbering is deterministic, so requests
     resolve the same fds).  Plenty of programs now get rejected; every
     single rejection must land somewhere in the taxonomy. *)
  let suite = Selftests.build ~count:150 Version.Bpf_next in
  let config = Kconfig.make ~unprivileged:true Version.Bpf_next in
  let session = Loader.create config in
  let _ = Loader.create_map session (Map.array_def ~value_size:48 ()) in
  let _ =
    Loader.create_map session (Map.hash_def ~key_size:8 ~value_size:48 ())
  in
  let rejected = ref 0 and unknown = ref 0 in
  List.iter
    (fun req ->
       match (Loader.load_and_run session req).Loader.verdict with
       | Ok _ -> ()
       | Error e ->
         incr rejected;
         if e.Venv.vreason = Reject_reason.Unknown then incr unknown)
    suite.Selftests.requests;
  Alcotest.(check bool) "unprivileged load rejects some selftests" true
    (!rejected > 0);
  Alcotest.(check int) "no rejection maps to Unknown" 0 !unknown

let test_campaign_reasons_cover_rejections () =
  let stats =
    Campaign.run ~seed:3 ~iterations:600 Campaign.bvf_strategy
      (Kconfig.default Version.Bpf_next)
  in
  let total =
    Hashtbl.fold (fun _ n acc -> n + acc) stats.Campaign.st_reasons 0
  in
  Alcotest.(check int) "every rejection is classified"
    stats.Campaign.st_rejected total;
  let unknown =
    Option.value ~default:0
      (Hashtbl.find_opt stats.Campaign.st_reasons Reject_reason.Unknown)
  in
  Alcotest.(check bool) "< 5% Unknown on the default generator" true
    (float_of_int unknown
     <= 0.05 *. float_of_int (max 1 stats.Campaign.st_rejected))

let test_baseline_rejections_match_documented () =
  (* both baselines document where their programs die
     (expected_rejections); the observed taxonomy of a campaign must be
     a subset of the documented list — and in particular Unknown-free *)
  let check name strategy expected =
    let stats =
      Campaign.run ~seed:8 ~iterations:400 strategy
        (Kconfig.default Version.Bpf_next)
    in
    Hashtbl.iter
      (fun r n ->
         if n > 0 then
           Alcotest.(check bool)
             (Printf.sprintf "%s: %s is documented" name
                (Reject_reason.to_string r))
             true
             (List.mem r expected))
      stats.Campaign.st_reasons
  in
  check "syzkaller" Bvf_baselines.Syz_gen.strategy
    Bvf_baselines.Syz_gen.expected_rejections;
  check "buzzer-random"
    (Bvf_baselines.Buzzer_gen.strategy
       ~mode:Bvf_baselines.Buzzer_gen.Random_bytes ())
    (Bvf_baselines.Buzzer_gen.expected_rejections
       Bvf_baselines.Buzzer_gen.Random_bytes);
  check "buzzer"
    (Bvf_baselines.Buzzer_gen.strategy ())
    (Bvf_baselines.Buzzer_gen.expected_rejections
       Bvf_baselines.Buzzer_gen.Alu_jmp)

(* -- JSONL round-trip ------------------------------------------------------ *)

let event : Telemetry.event Alcotest.testable =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (Telemetry.to_json e))
    ( = )

let sample_events : Telemetry.event list =
  [
    Generated { iter = 0; prog_type = "socket_filter"; insns = 12 };
    Accepted
      { iter = 1; prog_type = "xdp"; insns = 40; insn_processed = 123 };
    Rejected
      {
        iter = 2;
        prog_type = "kprobe";
        reason = Reject_reason.Oob_access;
        errno = "EACCES";
        pc = 7;
        msg = "invalid access: \"quoted\", back\\slash,\nnewline\ttab";
      };
    Vstats
      { iter = 2; insn_processed = 48; total_states = 6; peak_states = 3;
        max_states_per_insn = 2; prune_hits = 1; prune_misses = 5;
        loops_detected = 0; branch_hwm = 4; widen_rounds = 3;
        loop_heads = 1 };
    Finding
      { iter = 3; fingerprint = "oracle:xyz"; bug = None;
        correctness = true };
    Finding
      { iter = 4; fingerprint = "oracle:abc"; bug = Some "bug5";
        correctness = false };
    Checkpoint { iter = 5 };
    Shard_merge { shards = 4; events = 99 };
    Profile
      { programs = 6; gen_s = 0.25; verify_s = 1.5; sanitize_s = 0.125;
        exec_s = 0.0625; wall_s = 2.0; gen_w = 1024.; verify_w = 4096.;
        sanitize_w = 512.; exec_w = 256. };
  ]

let test_jsonl_round_trip () =
  List.iter
    (fun e ->
       Alcotest.(check (option event)) "to_json |> of_json" (Some e)
         (Telemetry.of_json (Telemetry.to_json e)))
    sample_events;
  Alcotest.(check (option event)) "blank line skipped" None
    (Telemetry.of_json "   ");
  Alcotest.(check (option event)) "foreign JSON skipped" None
    (Telemetry.of_json {|{"ev":"someday","iter":3}|});
  Alcotest.(check (option event)) "garbage skipped" None
    (Telemetry.of_json "not json at all");
  (* the loop counters postdate the vstats schema: a pre-loop trace
     line without them must still parse, defaulting both to zero *)
  Alcotest.(check (option event)) "pre-loop vstats line parses"
    (Some
       (Telemetry.Vstats
          { iter = 9; insn_processed = 10; total_states = 2;
            peak_states = 1; max_states_per_insn = 1; prune_hits = 0;
            prune_misses = 2; loops_detected = 0; branch_hwm = 1;
            widen_rounds = 0; loop_heads = 0 }))
    (Telemetry.of_json
       ({|{"ev":"vstats","iter":9,"insn_processed":10,|}
        ^ {|"total_states":2,"peak_states":1,"max_states_per_insn":1,|}
        ^ {|"prune_hits":0,"prune_misses":2,"loops_detected":0,|}
        ^ {|"branch_hwm":1}|}));
  (* the minor-words fields postdate the profile schema likewise *)
  Alcotest.(check (option event)) "pre-alloc profile line parses"
    (Some
       (Telemetry.Profile
          { programs = 3; gen_s = 0.5; verify_s = 1.0; sanitize_s = 0.25;
            exec_s = 0.125; wall_s = 2.0; gen_w = 0.; verify_w = 0.;
            sanitize_w = 0.; exec_w = 0. }))
    (Telemetry.of_json
       ({|{"ev":"profile","programs":3,"gen_s":0.500000,|}
        ^ {|"verify_s":1.000000,"sanitize_s":0.250000,|}
        ^ {|"exec_s":0.125000,"wall_s":2.000000}|}))

let test_summarize_counts () =
  let s = Telemetry.summarize sample_events in
  Alcotest.(check int) "events" (List.length sample_events)
    s.Telemetry.su_events;
  Alcotest.(check int) "generated" 1 s.Telemetry.su_generated;
  Alcotest.(check int) "accepted" 1 s.Telemetry.su_accepted;
  Alcotest.(check int) "rejected" 1 s.Telemetry.su_rejected;
  Alcotest.(check int) "findings" 2 s.Telemetry.su_findings;
  Alcotest.(check int) "checkpoints" 1 s.Telemetry.su_checkpoints;
  Alcotest.(check int) "no unknown rejections" 0
    (Telemetry.unknown_rejections s);
  Alcotest.(check bool) "profile captured" true
    (s.Telemetry.su_profile <> None);
  match s.Telemetry.su_vstats with
  | None -> Alcotest.fail "vstats summary missing"
  | Some v ->
    Alcotest.(check int) "vstats analyses" 1 v.Telemetry.vsu_count;
    Alcotest.(check int) "vstats insn total" 48
      v.Telemetry.vsu_insn_processed.Telemetry.d_total;
    Alcotest.(check int) "single-sample p50 = p95"
      v.Telemetry.vsu_insn_processed.Telemetry.d_p50
      v.Telemetry.vsu_insn_processed.Telemetry.d_p95;
    Alcotest.(check int) "vstats peak total" 3
      v.Telemetry.vsu_peak_states.Telemetry.d_total;
    Alcotest.(check int) "vstats widen total" 3
      v.Telemetry.vsu_widen_rounds.Telemetry.d_total;
    Alcotest.(check int) "vstats loop heads" 1 v.Telemetry.vsu_loop_heads

(* -- trace vs campaign stats ----------------------------------------------- *)

let test_trace_matches_stats () =
  let path = Filename.temp_file "bvf_trace" ".jsonl" in
  let sink = Telemetry.create path in
  let stats =
    Campaign.run ~telemetry:sink ~seed:4 ~iterations:400
      Campaign.bvf_strategy
      (Kconfig.default Version.Bpf_next)
  in
  Telemetry.close sink;
  let s = Telemetry.summarize (Telemetry.read_file path) in
  Sys.remove path;
  Alcotest.(check int) "generated events match counter"
    stats.Campaign.st_generated s.Telemetry.su_generated;
  Alcotest.(check int) "accepted events match counter"
    stats.Campaign.st_accepted s.Telemetry.su_accepted;
  Alcotest.(check int) "rejected events match counter"
    stats.Campaign.st_rejected s.Telemetry.su_rejected;
  Alcotest.(check int) "finding events match dedup table"
    (Hashtbl.length stats.Campaign.st_findings) s.Telemetry.su_findings;
  Alcotest.(check int) "trace carries no unknown rejections" 0
    (Telemetry.unknown_rejections s)

(* -- sharded tracing ------------------------------------------------------- *)

let strategy = Campaign.bvf_strategy
let config () = Kconfig.default Version.Bpf_next

let test_jobs1_trace_identical_to_sequential () =
  let seq_path = Filename.temp_file "bvf_seq" ".jsonl" in
  let par_path = Filename.temp_file "bvf_par1" ".jsonl" in
  let sink = Telemetry.create seq_path in
  ignore
    (Campaign.run ~telemetry:sink ~seed:21 ~iterations:200 strategy
       (config ()));
  Telemetry.close sink;
  ignore
    (Parallel.run ~jobs:1 ~trace:par_path ~seed:21 ~iterations:200
       strategy (config ()));
  let a = read_all seq_path and b = read_all par_path in
  Sys.remove seq_path;
  Sys.remove par_path;
  Alcotest.(check string) "jobs=1 trace byte-identical to sequential" a b

let test_jobs2_trace_deterministic () =
  let run () =
    let path = Filename.temp_file "bvf_par2" ".jsonl" in
    ignore
      (Parallel.run ~jobs:2 ~trace:path ~seed:5 ~iterations:240 strategy
         (config ()));
    let body = read_all path in
    Sys.remove path;
    body
  in
  let a = run () in
  let b = run () in
  Alcotest.(check string) "jobs=2 trace reproducible per seed" a b;
  (* shard files are cleaned up, events arrive iteration-sorted, and the
     stream is terminated by the merge record *)
  let events = List.filter_map Telemetry.of_json (String.split_on_char '\n' a) in
  Alcotest.(check bool) "merge record present" true
    (List.exists
       (function Telemetry.Shard_merge _ -> true | _ -> false)
       events);
  let iters = List.filter_map Telemetry.iter_of events in
  Alcotest.(check (list int)) "events sorted by global iteration"
    (List.sort compare iters) iters

(* -- phase timers ---------------------------------------------------------- *)

let test_phase_timers_within_wall_clock () =
  let t0 = Unix.gettimeofday () in
  let stats =
    Campaign.run ~seed:7 ~iterations:300 strategy (config ())
  in
  let wall = Unix.gettimeofday () -. t0 in
  let phases =
    stats.Campaign.st_gen_s +. stats.Campaign.st_verify_s
    +. stats.Campaign.st_sanitize_s +. stats.Campaign.st_exec_s
  in
  Alcotest.(check bool) "phase timers are non-negative" true
    (stats.Campaign.st_gen_s >= 0. && stats.Campaign.st_verify_s >= 0.
     && stats.Campaign.st_sanitize_s >= 0.
     && stats.Campaign.st_exec_s >= 0.);
  Alcotest.(check bool) "phases measured something" true (phases > 0.);
  (* the four phases partition a subset of the loop body, so their sum
     must stay inside the wall clock (plus timer granularity slack) *)
  Alcotest.(check bool) "phase sum within the wall-clock envelope" true
    (phases <= wall +. 0.25)

(* -- resume accounting ----------------------------------------------------- *)

let test_resume_does_not_double_count () =
  (* resuming the same in-memory snapshot twice used to alias the
     snapshot's mutable stats into the first resumed campaign, so the
     second resume started from inflated counters *)
  let c = Campaign.run_t ~seed:13 ~iterations:120 strategy (config ()) in
  let s = Campaign.snapshot c in
  let a =
    Campaign.run ~resume_from:s ~seed:13 ~iterations:60 strategy
      (config ())
  in
  let b =
    Campaign.run ~resume_from:s ~seed:13 ~iterations:60 strategy
      (config ())
  in
  Alcotest.(check int) "second resume starts from the snapshot counters"
    (120 + 60) b.Campaign.st_generated;
  Alcotest.(check int) "both resumes generate the same count"
    a.Campaign.st_generated b.Campaign.st_generated;
  Alcotest.(check string) "both resumes have identical digests"
    (Campaign.digest a) (Campaign.digest b)

(* -- docs reference layer --------------------------------------------------- *)

let test_rejections_doc_covers_taxonomy () =
  (* docs/REJECTIONS.md documents every reason by its canonical
     to_string slug; dune copies it into the sandbox via (deps ...).
     [dune runtest] runs from test/, [dune exec] from the root. *)
  let path =
    if Sys.file_exists "../docs/REJECTIONS.md" then "../docs/REJECTIONS.md"
    else "docs/REJECTIONS.md"
  in
  let doc = read_all path in
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (Reject_reason.to_string r ^ " is documented") true
         (contains doc ("`" ^ Reject_reason.to_string r ^ "`")))
    Reject_reason.all

let () =
  Alcotest.run "telemetry"
    [
      ( "taxonomy",
        [
          Alcotest.test_case "examples reject with expected reason" `Quick
            test_examples_reject_with_expected_reason;
          Alcotest.test_case "examples cover the taxonomy" `Quick
            test_examples_cover_taxonomy;
          Alcotest.test_case "rejected selftests classify" `Quick
            test_selftests_rejections_classified;
          Alcotest.test_case "campaign rejections classify" `Quick
            test_campaign_reasons_cover_rejections;
          Alcotest.test_case "baseline rejections match documented" `Quick
            test_baseline_rejections_match_documented;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "summarize counts" `Quick
            test_summarize_counts;
          Alcotest.test_case "trace matches campaign stats" `Quick
            test_trace_matches_stats;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "jobs=1 trace equals sequential" `Quick
            test_jobs1_trace_identical_to_sequential;
          Alcotest.test_case "jobs=2 trace deterministic" `Quick
            test_jobs2_trace_deterministic;
        ] );
      ( "profiling",
        [
          Alcotest.test_case "phase timers within wall clock" `Quick
            test_phase_timers_within_wall_clock;
        ] );
      ( "resume",
        [
          Alcotest.test_case "no double counting" `Quick
            test_resume_does_not_double_count;
        ] );
      ( "docs",
        [
          Alcotest.test_case "REJECTIONS.md covers the taxonomy" `Quick
            test_rejections_doc_covers_taxonomy;
        ] );
    ]
