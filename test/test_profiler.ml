(* Span-profiler tests: the purity contract (a profiled run's digest
   and telemetry trace are byte-identical to an unprofiled one, both
   sequential and sharded), the Chrome trace-event round trip (parses
   back, nests correctly, malformed input is reported not swallowed),
   non-negative GC attribution, the shared percentile helper, and the
   serve loop's metrics request. *)

module Version = Bvf_ebpf.Version
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Kconfig = Bvf_kernel.Kconfig
module Verifier = Bvf_verifier.Verifier
module Campaign = Bvf_core.Campaign
module Parallel = Bvf_core.Parallel
module Telemetry = Bvf_core.Telemetry
module Selftests = Bvf_core.Selftests
module Service = Bvf_core.Service
module Vcache = Bvf_core.Vcache
module Prof = Bvf_util.Prof
module Percentile = Bvf_util.Percentile

let strategy = Campaign.bvf_strategy
let config () = Kconfig.default Version.Bpf_next
let read_all path = In_channel.with_open_bin path In_channel.input_all

(* -- Percentile (the shared nearest-rank helper) ----------------------- *)

let test_percentile () =
  Alcotest.(check (float 0.0)) "empty is zero" 0.0
    (Percentile.of_sorted [||] 50);
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 0.0)) "p50 of 4" 2.0 (Percentile.of_sorted a 50);
  Alcotest.(check (float 0.0)) "p95 of 4" 3.0 (Percentile.of_sorted a 95);
  Alcotest.(check (float 0.0)) "p100 is max" 4.0
    (Percentile.of_sorted a 100);
  Alcotest.(check int) "int variant" 30
    (Percentile.of_sorted_int [| 10; 20; 30; 40 |] 95);
  (* of_samples sorts a copy: unsorted input, same answer *)
  Alcotest.(check (float 0.0)) "samples sort first" 2.0
    (Percentile.of_samples [ 4.0; 1.0; 3.0; 2.0 ] 50);
  Alcotest.(check (float 0.0)) "singleton" 7.0
    (Percentile.of_samples [ 7.0 ] 95)

(* -- Recording --------------------------------------------------------- *)

let test_recording_nests_and_attributes () =
  let s = Prof.session () in
  let h = Prof.track s ~name:"t0" 0 in
  Prof.span h "outer" (fun () ->
      Prof.span h "inner" (fun () -> ignore (Sys.opaque_identity 1));
      Prof.record h ~name:"tail" ~dur_s:0.001 ~minor_w:10.0 ());
  let spans = Prof.spans s in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find name =
    List.find (fun sp -> sp.Prof.sp_name = name) spans
  in
  let outer = find "outer" and inner = find "inner" in
  let tail = find "tail" in
  Alcotest.(check int) "outer is top level" 0 outer.Prof.sp_depth;
  Alcotest.(check int) "inner is nested" 1 inner.Prof.sp_depth;
  Alcotest.(check int) "record nests under the open frame" 1
    tail.Prof.sp_depth;
  Alcotest.(check bool) "children fit inside the parent" true
    (inner.Prof.sp_start_s >= outer.Prof.sp_start_s
     && inner.Prof.sp_start_s +. inner.Prof.sp_dur_s
        <= outer.Prof.sp_start_s +. outer.Prof.sp_dur_s +. 1e-9);
  (* [tail]'s claimed duration can exceed the parent's real wall time
     (it was measured elsewhere), so only [inner] bounds self time *)
  Alcotest.(check bool) "self time excludes children" true
    (outer.Prof.sp_self_s
     <= outer.Prof.sp_dur_s -. inner.Prof.sp_dur_s +. 1e-9);
  List.iter
    (fun sp ->
       Alcotest.(check bool) "durations non-negative" true
         (sp.Prof.sp_dur_s >= 0.0 && sp.Prof.sp_self_s >= 0.0);
       Alcotest.(check bool) "GC deltas non-negative" true
         (sp.Prof.sp_minor_w >= 0.0 && sp.Prof.sp_major_w >= 0.0))
    spans;
  (* the null session records nothing but still times the work *)
  let d = Prof.track Prof.null 0 in
  let fr = Prof.start d "x" in
  let dur, minor = Prof.stop d fr in
  Alcotest.(check bool) "disabled stop still measures" true
    (dur >= 0.0 && minor >= 0.0)

(* -- Chrome trace-event round trip ------------------------------------- *)

let test_chrome_round_trip () =
  let s = Prof.session () in
  let h0 = Prof.track s ~name:"shard0" 0 in
  let h1 = Prof.track s ~name:"shard1" 1 in
  Prof.span h0 "iterate" (fun () ->
      Prof.span h0 "gen" (fun () -> ());
      Prof.span h0 "verify" (fun () ->
          (* a post-hoc record ends now and reaches back dur_s, so the
             parent must be older than that for the trace to nest *)
          let t0 = Bvf_util.Mclock.now_s () in
          while Bvf_util.Mclock.now_s () -. t0 < 5e-6 do
            ignore (Sys.opaque_identity 0)
          done;
          Prof.record h0 ~name:"sanitize" ~dur_s:1e-6 ()));
  Prof.span h1 "iterate" (fun () -> ());
  let path = Filename.temp_file "bvf_prof" ".json" in
  Prof.write_chrome path ~tracks:(Prof.tracks s) (Prof.spans s);
  let spans, tracks, complaints = Prof.read_chrome path in
  Sys.remove path;
  Alcotest.(check (list string)) "well-formed trace: no complaints" []
    complaints;
  Alcotest.(check int) "all spans survive" (List.length (Prof.spans s))
    (List.length spans);
  Alcotest.(check (list (Alcotest.pair Alcotest.int Alcotest.string)))
    "track names survive" [ (0, "shard0"); (1, "shard1") ]
    (List.sort compare tracks);
  let names trk =
    List.filter (fun sp -> sp.Prof.sp_track = trk) spans
    |> List.map (fun sp -> sp.Prof.sp_name)
    |> List.sort compare
  in
  Alcotest.(check (list string)) "track 0 span names"
    [ "gen"; "iterate"; "sanitize"; "verify" ] (names 0);
  Alcotest.(check (list string)) "track 1 span names" [ "iterate" ]
    (names 1)

let test_chrome_malformed_reported () =
  let write lines =
    let path = Filename.temp_file "bvf_prof_bad" ".json" in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc lines);
    let r = Prof.read_chrome path in
    Sys.remove path;
    r
  in
  let _, _, c1 = write "this is not json" in
  Alcotest.(check bool) "invalid JSON is a complaint" true (c1 <> []);
  let _, _, c2 =
    write
      {|{"traceEvents":[{"ph":"X","name":"a","pid":0,"tid":0,"ts":0,"dur":-5}]}|}
  in
  Alcotest.(check bool) "negative duration is a complaint" true (c2 <> []);
  (* partial overlap on one track can come from no well-nested run *)
  let spans, _, c3 =
    write
      ({|{"traceEvents":[|}
       ^ {|{"ph":"X","name":"a","pid":0,"tid":0,"ts":0,"dur":10},|}
       ^ {|{"ph":"X","name":"b","pid":0,"tid":0,"ts":5,"dur":10}]}|})
  in
  Alcotest.(check bool) "partial overlap is a complaint" true (c3 <> []);
  Alcotest.(check int) "overlapping events still parse" 2
    (List.length spans)

(* -- Purity: profiled == unprofiled, sequential and sharded ------------ *)

let campaign_run ~profiled =
  let path = Filename.temp_file "bvf_prof_seq" ".jsonl" in
  let sink = Telemetry.create path in
  let s = if profiled then Prof.session () else Prof.null in
  let h = Prof.track s ~name:"shard0" 0 in
  let stats =
    Prof.span h "iterate" (fun () ->
        Campaign.run ~telemetry:sink ~prof:h ~seed:31 ~iterations:150
          strategy (config ()))
  in
  Telemetry.close sink;
  let trace = read_all path in
  Sys.remove path;
  (Campaign.digest stats, trace, stats, Prof.spans s)

let test_sequential_profile_pure () =
  let d1, t1, stats, spans = campaign_run ~profiled:true in
  let d2, t2, bare, no_spans = campaign_run ~profiled:false in
  Alcotest.(check string) "digest unchanged by --profile" d1 d2;
  Alcotest.(check string) "trace byte-identical with --profile" t1 t2;
  (* the enabled profiler excludes its own allocations from the
     always-on per-phase counters; what remains is Gc.minor_words'
     native-code batching noise — a few words per run, where an
     unexcluded recorder would drift by tens of words per iteration *)
  List.iter
    (fun (name, profiled, unprofiled) ->
       Alcotest.(check bool)
         (name ^ " minor words within noise of --profile off") true
         (abs_float (profiled -. unprofiled) <= 150.0))
    [ ("gen", stats.Campaign.st_gen_w, bare.Campaign.st_gen_w);
      ("verify", stats.Campaign.st_verify_w, bare.Campaign.st_verify_w);
      ("sanitize", stats.Campaign.st_sanitize_w,
       bare.Campaign.st_sanitize_w);
      ("exec", stats.Campaign.st_exec_w, bare.Campaign.st_exec_w) ];
  Alcotest.(check int) "unprofiled run records nothing" 0
    (List.length no_spans);
  Alcotest.(check bool) "profiled run recorded spans" true (spans <> []);
  let phase name =
    List.exists (fun sp -> sp.Prof.sp_name = name) spans
  in
  List.iter
    (fun n ->
       Alcotest.(check bool) (n ^ " span present") true (phase n))
    [ "iterate"; "gen"; "verify"; "exec" ];
  List.iter
    (fun sp ->
       Alcotest.(check bool) "GC deltas non-negative" true
         (sp.Prof.sp_minor_w >= 0.0 && sp.Prof.sp_major_w >= 0.0))
    spans;
  (* the span-side phase totals and the always-on stats agree: stop
     feeds both from the same clock reads *)
  let total name =
    List.fold_left
      (fun acc sp ->
         if sp.Prof.sp_name = name then acc +. sp.Prof.sp_dur_s else acc)
      0.0 spans
  in
  Alcotest.(check bool) "span total tracks st_gen_s" true
    (abs_float (total "gen" -. stats.Campaign.st_gen_s) < 1e-6);
  Alcotest.(check bool) "phase minor words populated" true
    (stats.Campaign.st_gen_w > 0.0 && stats.Campaign.st_verify_w > 0.0)

let parallel_run ~profiled =
  let path = Filename.temp_file "bvf_prof_par" ".jsonl" in
  let s = if profiled then Prof.session () else Prof.null in
  let r =
    Parallel.run ~jobs:2 ~trace:path ~prof:s ~seed:31 ~iterations:150
      strategy (config ())
  in
  let trace = read_all path in
  Sys.remove path;
  (Parallel.digest r, trace, Prof.spans s)

let test_parallel_profile_pure () =
  let d1, t1, spans = parallel_run ~profiled:true in
  let d2, t2, _ = parallel_run ~profiled:false in
  Alcotest.(check string) "jobs=2 digest unchanged by --profile" d1 d2;
  Alcotest.(check string) "jobs=2 trace byte-identical with --profile"
    t1 t2;
  (* acceptance gate: each shard's wall time is >= 90% attributed to
     named top-level spans (the single "iterate" span per shard) *)
  List.iter
    (fun (trk, wall, top) ->
       if trk < 2 then
         Alcotest.(check bool)
           (Printf.sprintf "track %d >= 90%% named" trk)
           true
           (wall <= 0.0 || top /. wall >= 0.9))
    (Prof.track_attribution spans);
  (* the coordinator track carries the join machinery *)
  let coord = Prof.totals_for spans ~trk:2 in
  List.iter
    (fun n ->
       Alcotest.(check bool) ("coordinator " ^ n ^ " present") true
         (List.mem_assoc n coord))
    [ "spawn"; "join"; "absorb"; "merge" ]

let test_alloc_attribution_outside_digest () =
  let stats =
    Campaign.run ~seed:31 ~iterations:80 strategy (config ())
  in
  let d = Campaign.digest stats in
  stats.Campaign.st_gen_w <- stats.Campaign.st_gen_w +. 1e9;
  stats.Campaign.st_verify_w <- 0.0;
  stats.Campaign.st_sanitize_w <- 0.0;
  stats.Campaign.st_exec_w <- 0.0;
  Alcotest.(check string) "phase minor words excluded from digest" d
    (Campaign.digest stats)

(* -- serve metrics ------------------------------------------------------ *)

let test_serve_metrics_round_trip () =
  let accepted =
    match (Selftests.build ~count:4 Version.Bpf_next).Selftests.requests with
    | r :: _ -> r
    | [] -> Alcotest.fail "empty selftest corpus"
  in
  (* r0 never initialized: the fixed verifier rejects it *)
  let rejected =
    { Verifier.r_prog_type = Prog.Socket_filter; r_attach = None;
      r_offload = false; r_insns = Asm.prog [ [ Asm.exit_ ] ] }
  in
  let line id req =
    Service.request_to_json { Service.q_id = id; q_req = req }
  in
  let in_path = Filename.temp_file "bvf_serve" ".in" in
  let out_path = Filename.temp_file "bvf_serve" ".out" in
  Out_channel.with_open_bin in_path (fun oc ->
      List.iter
        (fun l -> Out_channel.output_string oc (l ^ "\n"))
        [ {|{"id":"m0","metrics":true}|};
          line "ok1" accepted;
          line "ok2" accepted;  (* same program: a cache hit *)
          line "no1" rejected;
          {|{"id":"bad","prog_type":"socket_filter"}|};  (* missing prog *)
          {|{"metrics":true}|} ]);
  let ic = open_in in_path in
  let oc = open_out out_path in
  let cache = Vcache.create ~cap:64 in
  let session = Service.create_session (Kconfig.fixed Version.Bpf_next) in
  let stats =
    Service.serve ~cache ~session ~stop:(fun () -> false) ic oc
  in
  close_in ic;
  close_out oc;
  let lines =
    String.split_on_char '\n' (String.trim (read_all out_path))
  in
  Sys.remove in_path;
  Sys.remove out_path;
  Alcotest.(check int) "one response line per input" 6
    (List.length lines);
  (* metrics requests are invisible to the serve counters *)
  Alcotest.(check int) "requests" 3 stats.Service.sv_requests;
  Alcotest.(check int) "invalid" 1 stats.Service.sv_invalid;
  Alcotest.(check int) "hits" 1 stats.Service.sv_hits;
  Alcotest.(check int) "misses" 2 stats.Service.sv_misses;
  let field fields k =
    match List.assoc_opt k fields with
    | Some (Telemetry.Jnum x) -> x
    | _ -> Alcotest.failf "metrics response lacks %s" k
  in
  let m0 = Telemetry.parse_object (List.nth lines 0) in
  Alcotest.(check (float 0.0)) "fresh server: zero requests" 0.0
    (field m0 "requests");
  Alcotest.(check bool) "id echoed" true
    (List.assoc_opt "id" m0 = Some (Telemetry.Jstr "m0"));
  let m = Telemetry.parse_object (List.nth lines 5) in
  Alcotest.(check bool) "default id" true
    (List.assoc_opt "id" m = Some (Telemetry.Jstr "metrics"));
  Alcotest.(check (float 0.0)) "requests counted" 3.0
    (field m "requests");
  Alcotest.(check (float 0.0)) "invalid counted" 1.0 (field m "invalid");
  Alcotest.(check (float 0.0)) "admitted counted" 2.0
    (field m "admitted");
  Alcotest.(check (float 0.0)) "rejected counted" 1.0
    (field m "rejected");
  Alcotest.(check (float 0.0)) "hits counted" 1.0
    (field m "cache_hits");
  Alcotest.(check (float 0.0)) "misses counted" 2.0
    (field m "cache_misses");
  Alcotest.(check (float 0.0)) "verify latency per miss" 2.0
    (field m "verify_count");
  Alcotest.(check (float 0.0)) "histogram covers every verification" 2.0
    (field m "verify_le_100us" +. field m "verify_le_1ms"
     +. field m "verify_le_10ms" +. field m "verify_gt_10ms");
  Alcotest.(check bool) "p50 <= p95, both positive" true
    (let p50 = field m "verify_p50_s" and p95 = field m "verify_p95_s" in
     0.0 < p50 && p50 <= p95)

let () =
  Alcotest.run "profiler"
    [
      ( "percentile",
        [ Alcotest.test_case "nearest rank" `Quick test_percentile ] );
      ( "recording",
        [
          Alcotest.test_case "nesting and attribution" `Quick
            test_recording_nests_and_attributes;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "round trip" `Quick test_chrome_round_trip;
          Alcotest.test_case "malformed reported" `Quick
            test_chrome_malformed_reported;
        ] );
      ( "purity",
        [
          Alcotest.test_case "sequential --profile identical" `Quick
            test_sequential_profile_pure;
          Alcotest.test_case "jobs=2 --profile identical" `Quick
            test_parallel_profile_pure;
          Alcotest.test_case "alloc attribution outside digest" `Quick
            test_alloc_attribution_outside_digest;
        ] );
      ( "serve",
        [
          Alcotest.test_case "metrics round trip" `Quick
            test_serve_metrics_round_trip;
        ] );
    ]
