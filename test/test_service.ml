(* Service-layer tests (docs/SERVICE.md): the verdict cache returns
   byte-identical results to a cold verification (including log and
   counters), evicts strictly LRU, survives the disk round trip and
   treats damaged files as errors; batches are deterministic across
   --jobs; the JSONL codec round-trips; the service telemetry events
   round-trip and aggregate. *)

module Version = Bvf_ebpf.Version
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Kconfig = Bvf_kernel.Kconfig
module Verifier = Bvf_verifier.Verifier
module Reject_reason = Bvf_verifier.Reject_reason
module Checkpoint = Bvf_core.Checkpoint
module Telemetry = Bvf_core.Telemetry
module Selftests = Bvf_core.Selftests
module Service = Bvf_core.Service
module Vcache = Bvf_core.Vcache

let version = Version.Bpf_next
let config = Kconfig.fixed version

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* Render a verdict the way batch output does (no cache field): the
   byte-identity the service contract promises. *)
let render (v : Vcache.verdict) : string =
  Service.response_to_json ~id:"x" ~key:"k" v

let corpus ?(n = 24) () : Verifier.request list =
  let suite = Selftests.build ~count:n version in
  List.filteri (fun i _ -> i < n) suite.Selftests.requests

let inputs_of (reqs : Verifier.request list) : Service.input list =
  List.mapi
    (fun i req ->
       { Service.in_id = Printf.sprintf "p%03d" i; in_req = Ok req })
    reqs

(* a program the fixed verifier rejects: r0 never initialized *)
let rejected_req : Verifier.request =
  { Verifier.r_prog_type = Prog.Socket_filter; r_attach = None;
    r_offload = false; r_insns = Asm.prog [ [ Asm.exit_ ] ] }

(* -- cache semantics ------------------------------------------------------ *)

let test_hit_equals_cold_verify () =
  (* the cached verdict is byte-identical to a cold verification, log
     and counters included, and cold verification is itself a pure
     function of the request *)
  let session = Service.create_session config in
  let config_fp, maps_fp = Service.fingerprints session in
  let cache = Vcache.create ~cap:64 in
  List.iter
    (fun req ->
       let key = Vcache.key ~config_fp ~maps_fp req in
       let cold = Service.verify_request ~log_level:2 session req in
       Vcache.insert cache key cold;
       (match Vcache.find cache key with
        | None -> Alcotest.fail "inserted verdict not found"
        | Some hit ->
          Alcotest.(check string) "hit == cold" (render cold) (render hit);
          Alcotest.(check bool) "vstats survive the cache" true
            (cold.Vcache.cv_vstats = hit.Vcache.cv_vstats));
       (* a second cold verify, in a *fresh* session, is identical:
          verdicts never depend on session history *)
       let again =
         Service.verify_request ~log_level:2
           (Service.create_session config) req
       in
       Alcotest.(check string) "cold is pure" (render cold) (render again))
    (rejected_req :: corpus ~n:8 ())

let test_rejected_verdict_fields () =
  let session = Service.create_session config in
  let v = Service.verify_request ~log_level:1 session rejected_req in
  Alcotest.(check bool) "rejected" false v.Vcache.cv_accepted;
  Alcotest.(check bool) "has a reason" true (v.Vcache.cv_reason <> None);
  Alcotest.(check bool) "has an errno" true (v.Vcache.cv_errno <> "");
  Alcotest.(check bool) "has a message" true (v.Vcache.cv_msg <> "");
  Alcotest.(check bool) "has a log" true (v.Vcache.cv_vlog <> "")

let dummy (tag : int) : Vcache.verdict =
  { Vcache.cv_accepted = true; cv_insns = tag; cv_insn_processed = tag;
    cv_errno = ""; cv_reason = None; cv_pc = 0; cv_msg = "";
    cv_vlog = ""; cv_vstats = None }

let test_lru_eviction () =
  let c = Vcache.create ~cap:2 in
  Vcache.insert c "k1" (dummy 1);
  Vcache.insert c "k2" (dummy 2);
  (* touch k1 so k2 becomes the eviction victim *)
  Alcotest.(check bool) "k1 hits" true (Vcache.find c "k1" <> None);
  Vcache.insert c "k3" (dummy 3);
  Alcotest.(check int) "bounded" 2 (Vcache.length c);
  Alcotest.(check bool) "k2 evicted" true (Vcache.find c "k2" = None);
  Alcotest.(check bool) "k1 kept" true (Vcache.find c "k1" <> None);
  Alcotest.(check bool) "k3 kept" true (Vcache.find c "k3" <> None);
  let s = Vcache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Vcache.cs_evictions;
  (* replacing an existing key is a refresh, not an eviction *)
  Vcache.insert c "k3" (dummy 33);
  Alcotest.(check int) "still bounded" 2 (Vcache.length c);
  Alcotest.(check int) "no extra eviction" 1
    (Vcache.stats c).Vcache.cs_evictions;
  (match Vcache.find c "k3" with
   | Some v -> Alcotest.(check int) "refreshed" 33 v.Vcache.cv_insns
   | None -> Alcotest.fail "refreshed entry missing");
  Alcotest.(check bool) "cap 0 refused" true
    (match Vcache.create ~cap:0 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_disk_round_trip () =
  let path = tmp "bvf-test-vcache.bin" in
  let c = Vcache.create ~cap:8 in
  List.iter (fun i -> Vcache.insert c (string_of_int i) (dummy i))
    [ 1; 2; 3; 4 ];
  ignore (Vcache.find c "2" : Vcache.verdict option); (* 2 becomes MRU *)
  (match Vcache.save c ~path with
   | Ok () -> ()
   | Error e ->
     Alcotest.failf "save: %s" (Checkpoint.error_to_string e));
  (match Vcache.load ~path ~cap:8 with
   | Error e -> Alcotest.failf "load: %s" (Checkpoint.error_to_string e)
   | Ok c' ->
     Alcotest.(check (list string)) "entries and recency survive"
       (List.map fst (Vcache.entries c))
       (List.map fst (Vcache.entries c'));
     Alcotest.(check int) "counters reset" 0
       (Vcache.stats c').Vcache.cs_insertions);
  (* a smaller cap keeps only the most recently used entries *)
  (match Vcache.load ~path ~cap:2 with
   | Error e -> Alcotest.failf "load: %s" (Checkpoint.error_to_string e)
   | Ok c2 ->
     Alcotest.(check (list string)) "MRU entries survive a smaller cap"
       [ "2"; "4" ]
       (List.map fst (Vcache.entries c2)));
  Sys.remove path

let test_disk_damage_is_error () =
  let path = tmp "bvf-test-vcache-damage.bin" in
  let c = Vcache.create ~cap:4 in
  Vcache.insert c "k" (dummy 1);
  (match Vcache.save c ~path with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save: %s" (Checkpoint.error_to_string e));
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  let write s = Out_channel.with_open_bin path
      (fun oc -> Out_channel.output_string oc s) in
  let expect_error what =
    match Vcache.load ~path ~cap:4 with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s loaded as Ok" what
  in
  (* bit flip in the payload *)
  let flipped = Bytes.of_string bytes in
  let mid = Bytes.length flipped - 3 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0xff));
  write (Bytes.to_string flipped);
  expect_error "bit-flipped cache";
  (* truncation *)
  write (String.sub bytes 0 (String.length bytes / 2));
  expect_error "truncated cache";
  (* foreign container: right magic, wrong tag *)
  (match Checkpoint.save ~path ~tag:"not-a-vcache/1" [ ("k", 1) ] with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save: %s" (Checkpoint.error_to_string e));
  (match Vcache.load ~path ~cap:4 with
   | Error (Checkpoint.Tag_mismatch _) -> ()
   | Error e ->
     Alcotest.failf "expected Tag_mismatch, got %s"
       (Checkpoint.error_to_string e)
   | Ok _ -> Alcotest.fail "foreign tag loaded as Ok");
  Sys.remove path;
  (* missing file *)
  expect_error "missing cache"

(* -- batch ---------------------------------------------------------------- *)

let batch_lines ?(jobs = 1) ?(cache = Vcache.create ~cap:4096)
    (inputs : Service.input list) : string list * Service.summary =
  let items, summary = Service.run_batch ~jobs ~cache config inputs in
  (List.map Service.item_to_json items, summary)

(* drop the one history-dependent field, as the CI gate does with sed *)
let strip_cache_field (line : string) : string =
  let marker = {|,"cache":"|} in
  let ml = String.length marker and n = String.length line in
  let rec find i =
    if i + ml > n then None
    else if String.sub line i ml = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> line
  | Some i ->
    let j = String.index_from line (i + ml) '"' in
    String.sub line 0 i ^ String.sub line (j + 1) (n - j - 1)

let test_batch_jobs_deterministic () =
  let inputs =
    inputs_of (corpus ~n:24 ())
    @ [ { Service.in_id = "rej"; in_req = Ok rejected_req };
        { Service.in_id = "bad"; in_req = Error "no parse" } ]
  in
  let lines1, s1 = batch_lines ~jobs:1 inputs in
  let lines4, s4 = batch_lines ~jobs:4 inputs in
  Alcotest.(check (list string)) "jobs 1 == jobs 4" lines1 lines4;
  Alcotest.(check int) "admitted agree" s1.Service.bs_admitted
    s4.Service.bs_admitted;
  Alcotest.(check int) "one rejection" 1 s1.Service.bs_rejected;
  Alcotest.(check int) "one invalid" 1 s1.Service.bs_invalid

let test_batch_warm_rerun_hits () =
  let inputs = inputs_of (corpus ~n:24 ()) in
  let cache = Vcache.create ~cap:4096 in
  let cold, sc = batch_lines ~jobs:2 ~cache inputs in
  let warm, sw = batch_lines ~jobs:2 ~cache inputs in
  Alcotest.(check int) "cold misses all" 24 sc.Service.bs_misses;
  Alcotest.(check int) "warm hits all" 24 sw.Service.bs_hits;
  Alcotest.(check int) "warm verifies nothing" 0 sw.Service.bs_misses;
  (* stripped of the one history-dependent field, warm == cold *)
  Alcotest.(check (list string)) "warm == cold up to the cache field"
    (List.map strip_cache_field cold)
    (List.map strip_cache_field warm)

let test_batch_cache_off_identity () =
  (* the cache changes nothing: a cached batch and an uncached batch
     produce the same verdict lines *)
  let inputs = inputs_of (rejected_req :: corpus ~n:12 ()) in
  let cache = Vcache.create ~cap:4096 in
  let with_cache, _ = batch_lines ~jobs:2 ~cache inputs in
  let _, _ = batch_lines ~jobs:2 ~cache inputs in
  let warm, _ = batch_lines ~jobs:2 ~cache inputs in
  let no_cache, _ =
    (* cap 1 with 13 distinct programs: every probe misses, the cache
       never answers *)
    batch_lines ~jobs:2 ~cache:(Vcache.create ~cap:1) inputs
  in
  Alcotest.(check (list string)) "cache on == cache off"
    (List.map strip_cache_field with_cache)
    (List.map strip_cache_field no_cache);
  Alcotest.(check (list string)) "warm == cache off"
    (List.map strip_cache_field warm)
    (List.map strip_cache_field no_cache)

let test_batch_telemetry_events () =
  let inputs = inputs_of (rejected_req :: corpus ~n:4 ()) in
  let path = tmp "bvf-test-service-trace.jsonl" in
  let sink = Telemetry.create path in
  let cache = Vcache.create ~cap:64 in
  let _ = Service.run_batch ~sink ~jobs:1 ~cache config inputs in
  let _ = Service.run_batch ~sink ~jobs:1 ~cache config inputs in
  Telemetry.close sink;
  let events = Telemetry.read_file path in
  let summary = Telemetry.summarize events in
  (match summary.Telemetry.su_service with
   | None -> Alcotest.fail "no service summary"
   | Some sv ->
     Alcotest.(check int) "requests" 10 sv.Telemetry.ssu_requests;
     Alcotest.(check int) "misses (cold pass)" 5 sv.Telemetry.ssu_misses;
     Alcotest.(check int) "hits (warm pass)" 5 sv.Telemetry.ssu_hits;
     Alcotest.(check int) "admitted" 8 sv.Telemetry.ssu_admitted;
     Alcotest.(check int) "rejected" 2 sv.Telemetry.ssu_rejected);
  Sys.remove path

(* -- JSONL codec ---------------------------------------------------------- *)

let test_request_round_trip () =
  List.iteri
    (fun i req ->
       let r = { Service.q_id = Printf.sprintf "req-%d" i; q_req = req } in
       let line = Service.request_to_json r in
       match Service.request_of_json line with
       | Error msg -> Alcotest.failf "round trip failed: %s" msg
       | Ok r' ->
         Alcotest.(check string) "id" r.Service.q_id r'.Service.q_id;
         Alcotest.(check bool) "request" true
           (r.Service.q_req = r'.Service.q_req))
    (corpus ~n:12 ())

let test_request_errors () =
  let err line =
    match Service.request_of_json line with
    | Error msg -> msg
    | Ok _ -> Alcotest.failf "parsed: %s" line
  in
  Alcotest.(check string) "not json" "malformed JSON" (err "nope");
  Alcotest.(check string) "missing id" "missing id"
    (err {|{"prog_type":"xdp","prog":"9500000000000000"}|});
  Alcotest.(check bool) "bad hex names the request" true
    (err {|{"id":"r1","prog_type":"xdp","prog":"zz"}|} = "r1: prog is not hex");
  Alcotest.(check bool) "odd digits" true
    (err {|{"id":"r1","prog_type":"xdp","prog":"950"}|}
     = "r1: prog hex has an odd digit count");
  Alcotest.(check bool) "unknown prog_type" true
    (err {|{"id":"r1","prog_type":"nope","prog":"00"}|}
     = {|r1: unknown prog_type "nope"|});
  (* an input keeps its id even when the payload fails *)
  let input =
    Service.input_of_json ~fallback_id:"line9"
      {|{"id":"r7","prog_type":"xdp","prog":"zz"}|}
  in
  Alcotest.(check string) "error input id" "r7" input.Service.in_id;
  let input = Service.input_of_json ~fallback_id:"line9" "garbage" in
  Alcotest.(check string) "fallback id" "line9" input.Service.in_id

let test_service_events_round_trip () =
  List.iter
    (fun ev ->
       let line = Telemetry.to_json ev in
       match Telemetry.of_json line with
       | Some ev' ->
         Alcotest.(check string) "round trip" line (Telemetry.to_json ev')
       | None -> Alcotest.failf "unparsable: %s" line)
    [ Telemetry.Service_hit { seq = 0; key = "abc" };
      Telemetry.Service_miss { seq = 1; key = "def" };
      Telemetry.Service_admitted
        { seq = 2; key = "abc"; insns = 7; insn_processed = 9 };
      Telemetry.Service_rejected
        { seq = 3; key = "def"; reason = Reject_reason.Unknown } ]

let test_vlog_cap () =
  let long = String.make (Vcache.vlog_cap + 100) 'x' in
  let capped = Vcache.cap_vlog long in
  Alcotest.(check bool) "capped" true
    (String.length capped < String.length long);
  Alcotest.(check string) "short logs untouched" "short"
    (Vcache.cap_vlog "short")

let () =
  Alcotest.run "service"
    [
      ( "vcache",
        [
          Alcotest.test_case "hit equals cold verify" `Quick
            test_hit_equals_cold_verify;
          Alcotest.test_case "rejected verdict fields" `Quick
            test_rejected_verdict_fields;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "disk round trip" `Quick
            test_disk_round_trip;
          Alcotest.test_case "disk damage is an error" `Quick
            test_disk_damage_is_error;
          Alcotest.test_case "vlog cap" `Quick test_vlog_cap;
        ] );
      ( "batch",
        [
          Alcotest.test_case "jobs 1 == jobs N" `Quick
            test_batch_jobs_deterministic;
          Alcotest.test_case "warm rerun hits" `Quick
            test_batch_warm_rerun_hits;
          Alcotest.test_case "cache on == cache off" `Quick
            test_batch_cache_off_identity;
          Alcotest.test_case "telemetry events" `Quick
            test_batch_telemetry_events;
        ] );
      ( "codec",
        [
          Alcotest.test_case "request round trip" `Quick
            test_request_round_trip;
          Alcotest.test_case "request errors" `Quick test_request_errors;
          Alcotest.test_case "service events round trip" `Quick
            test_service_events_round_trip;
        ] );
    ]
