(* Tests for the supervised (process-isolated) campaign runner: the
   fault-free equivalence with the in-process Parallel runner (digest
   and trace bytes), the watchdog semantics (crash, self-kill and hang
   fixtures; restart with backoff; quarantine attribution; pool shrink
   on repeated death), the chaos oracle (a disturbed run is
   digest-identical to a fault-free run given the same quarantine set),
   interruption/resume through the state directory, and the offline
   checkpoint merge (bvf merge core) being associative and commutative
   on digests.

   Fault fixtures run in the forked child via the [fault] hook and must
   use [Unix._exit]/[Unix.kill]/[Unix.sleepf] — never [exit], which
   would run the test runner's at_exit machinery in the child. *)

module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Campaign = Bvf_core.Campaign
module Checkpoint = Bvf_core.Checkpoint
module Parallel = Bvf_core.Parallel
module Supervisor = Bvf_core.Supervisor
module Telemetry = Bvf_core.Telemetry
module Triage = Bvf_core.Triage

let config () = Kconfig.default Version.V6_1

let temp_dir (prefix : string) : string =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let read_file (path : string) : string =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* Fast supervision parameters for tests: tight poll, tiny backoff. *)
let sv ?trace ?(checkpoint_every = 1_000_000) ?(deadline_s = 30.)
    ?(max_restarts = 5) ?quarantine ?fault ?stop ~dir ~seed ~iterations
    ~workers () =
  Supervisor.run ?trace ~checkpoint_every ~deadline_s ~poll_s:0.02
    ~max_restarts ~backoff_s:0.01 ?quarantine ?fault ?stop ~workers
    ~seed ~iterations ~dir Campaign.bvf_strategy (config ())

let completed = function
  | Supervisor.Completed (result, report) -> (result, report)
  | Supervisor.Interrupted _ -> Alcotest.fail "unexpected interruption"

(* -- Fault-free equivalence with the in-process runner ------------------- *)

let test_fault_free_matches_jobs () =
  let dir = temp_dir "bvf_sv_eq" in
  let trace_w = Filename.concat dir "workers.jsonl" in
  let trace_j = Filename.concat dir "jobs.jsonl" in
  let result, report =
    completed
      (sv ~trace:trace_w ~dir:(Filename.concat dir "state") ~seed:9
         ~iterations:60 ~workers:2 ())
  in
  let reference =
    Parallel.run ~jobs:2 ~trace:trace_j ~seed:9 ~iterations:60
      Campaign.bvf_strategy (config ())
  in
  Alcotest.(check string) "digest equals --jobs 2"
    (Parallel.digest reference) (Parallel.digest result);
  Alcotest.(check string) "trace bytes equal --jobs 2"
    (read_file trace_j) (read_file trace_w);
  Alcotest.(check int) "no crashes" 0 (List.length report.rp_crashes);
  Alcotest.(check (list int)) "no quarantine" [] report.rp_quarantined;
  List.iter
    (fun (w : Supervisor.worker_report) ->
       Alcotest.(check bool) "worker completed" true
         (w.wr_outcome = Supervisor.Outcome_completed);
       Alcotest.(check int) "no restarts" 0 w.wr_restarts;
       Alcotest.(check int) "full shard" w.wr_assigned w.wr_completed)
    report.rp_workers;
  (* the salvage path: globalize the per-worker checkpoints and merge
     them offline — same digest again *)
  let snaps =
    List.map
      (fun i ->
         match
           Supervisor.load_worker
             ~path:
               (Filename.concat (Filename.concat dir "state")
                  (Printf.sprintf "worker-%d.ckpt" i))
         with
         | Ok w -> Supervisor.globalize w
         | Error e -> Alcotest.fail (Checkpoint.error_to_string e))
      [ 0; 1 ]
  in
  let merged = Parallel.merge_snapshots snaps in
  Alcotest.(check string) "offline merge of worker ckpts, same digest"
    (Parallel.digest reference)
    (Campaign.digest merged.Campaign.sn_stats)

(* -- Watchdog: deterministic crash fixture ------------------------------ *)

(* A worker that calls Unix._exit 42 whenever it reaches global
   iteration 17.  The supervisor must record the crash, quarantine
   iteration 17, restart the worker, and the restart must make forward
   progress (the quarantined iteration is skipped, so the crasher never
   fires again).  The disturbed run is then digest-identical to a
   fault-free run with iteration 17 quarantined up front — and crashes
   never surface as oracle findings. *)
let test_crash_restart_quarantine () =
  let dir = temp_dir "bvf_sv_crash" in
  let trace = Filename.concat dir "trace.jsonl" in
  let fault ~worker:_ ~local:_ ~global =
    if global = 17 then Unix._exit 42
  in
  let result, report =
    completed
      (sv ~trace ~fault ~dir:(Filename.concat dir "state") ~seed:5
         ~iterations:40 ~workers:2 ())
  in
  (match report.rp_crashes with
   | [ c ] ->
     Alcotest.(check bool) "cause is exit 42" true
       (c.Triage.hc_cause = Triage.Crash_exit 42);
     Alcotest.(check (option int)) "heartbeat attributed iteration 17"
       (Some 17) c.Triage.hc_iteration
   | l -> Alcotest.failf "expected exactly one crash, got %d" (List.length l));
  Alcotest.(check (list int)) "iteration 17 quarantined" [ 17 ]
    report.rp_quarantined;
  let crashed_worker = 17 mod 2 in
  List.iter
    (fun (w : Supervisor.worker_report) ->
       Alcotest.(check bool) "worker completed" true
         (w.wr_outcome = Supervisor.Outcome_completed);
       Alcotest.(check int) "restart counted"
         (if w.wr_worker = crashed_worker then 1 else 0)
         w.wr_restarts)
    report.rp_workers;
  Alcotest.(check int) "one skipped iteration in merged stats" 1
    result.Parallel.pr_stats.Campaign.st_skipped;
  (* the crash artifact is on disk and round-trips *)
  let artifact =
    read_file (Filename.concat (Filename.concat dir "state") "crash-000.json")
  in
  (match Triage.harness_crash_of_json artifact with
   | Some c ->
     Alcotest.(check bool) "artifact cause" true
       (c.Triage.hc_cause = Triage.Crash_exit 42)
   | None -> Alcotest.fail "crash-000.json did not parse");
  (* the quarantined iteration is visible in the merged trace *)
  let quarantined_events =
    List.filter_map
      (function Telemetry.Quarantined { iter } -> Some iter | _ -> None)
      (Telemetry.read_file trace)
  in
  Alcotest.(check (list int)) "trace lists the skip" [ 17 ]
    quarantined_events;
  (* chaos oracle: fault-free run with the same quarantine preloaded is
     digest-identical — the disturbance cost exactly the quarantined
     iteration, nothing else *)
  let reference, ref_report =
    completed
      (sv ~quarantine:report.rp_quarantined
         ~dir:(Filename.concat dir "ref") ~seed:5 ~iterations:40
         ~workers:2 ())
  in
  Alcotest.(check int) "reference saw no crashes" 0
    (List.length ref_report.rp_crashes);
  Alcotest.(check string) "disturbed digest == quarantined reference"
    (Parallel.digest reference) (Parallel.digest result);
  (* crashes are harness findings, not oracle findings: both runs found
     the same verifier bugs *)
  Alcotest.(check (list string)) "findings unchanged by the crash"
    (Campaign.fingerprints reference.Parallel.pr_stats)
    (Campaign.fingerprints result.Parallel.pr_stats)

(* -- Watchdog: self-kill (SIGKILL) fixture ------------------------------ *)

let test_sigkill_crash () =
  let dir = temp_dir "bvf_sv_kill" in
  let fault ~worker:_ ~local:_ ~global =
    if global = 11 then Unix.kill (Unix.getpid ()) Sys.sigkill
  in
  let _, report =
    completed
      (sv ~fault ~dir:(Filename.concat dir "state") ~seed:6 ~iterations:30
         ~workers:2 ())
  in
  (match report.rp_crashes with
   | [ c ] ->
     Alcotest.(check bool) "cause is signal 9" true
       (c.Triage.hc_cause = Triage.Crash_signal 9);
     Alcotest.(check (option int)) "attributed iteration 11" (Some 11)
       c.Triage.hc_iteration
   | l -> Alcotest.failf "expected exactly one crash, got %d" (List.length l));
  Alcotest.(check (list int)) "iteration 11 quarantined" [ 11 ]
    report.rp_quarantined

(* -- Watchdog: hang fixture --------------------------------------------- *)

(* A worker that sleeps far past the deadline at global iteration 5:
   no exit status to observe, only a stale heartbeat.  The watchdog
   must SIGKILL it, record Crash_hang, quarantine, restart, finish. *)
let test_hang_watchdog () =
  let dir = temp_dir "bvf_sv_hang" in
  let fault ~worker:_ ~local:_ ~global =
    if global = 5 then Unix.sleepf 60.0
  in
  let _, report =
    completed
      (sv ~fault ~deadline_s:0.5 ~dir:(Filename.concat dir "state")
         ~seed:3 ~iterations:20 ~workers:2 ())
  in
  (match report.rp_crashes with
   | [ c ] ->
     Alcotest.(check bool) "cause is hang" true
       (c.Triage.hc_cause = Triage.Crash_hang);
     Alcotest.(check (option int)) "attributed iteration 5" (Some 5)
       c.Triage.hc_iteration
   | l -> Alcotest.failf "expected exactly one crash, got %d" (List.length l));
  Alcotest.(check (list int)) "iteration 5 quarantined" [ 5 ]
    report.rp_quarantined;
  List.iter
    (fun (w : Supervisor.worker_report) ->
       Alcotest.(check bool) "worker completed" true
         (w.wr_outcome = Supervisor.Outcome_completed))
    report.rp_workers

(* -- Pool shrink: a worker that always dies ----------------------------- *)

(* Worker 0 crashes on every iteration it actually executes.  Each
   crash quarantines one more iteration, so every restart makes exactly
   one iteration of forward progress (a skip); after max_restarts the
   worker is retired and the pool shrinks to worker 1, which completes
   its shard.  The run still completes, the abandoned range is
   reported, and worker 1's results merge cleanly. *)
let test_retire_pool_shrink () =
  let dir = temp_dir "bvf_sv_retire" in
  let fault ~worker ~local:_ ~global:_ =
    if worker = 0 then Unix._exit 9
  in
  let result, report =
    completed
      (sv ~fault ~max_restarts:2 ~dir:(Filename.concat dir "state")
         ~seed:12 ~iterations:20 ~workers:2 ())
  in
  Alcotest.(check int) "three crashes (initial + 2 restarts)" 3
    (List.length report.rp_crashes);
  (match report.rp_workers with
   | [ w0; w1 ] ->
     Alcotest.(check bool) "worker 0 retired" true
       (w0.Supervisor.wr_outcome = Supervisor.Outcome_retired);
     Alcotest.(check bool) "worker 1 completed" true
       (w1.Supervisor.wr_outcome = Supervisor.Outcome_completed);
     Alcotest.(check int) "worker 1 full shard"
       w1.Supervisor.wr_assigned w1.Supervisor.wr_completed
   | _ -> Alcotest.fail "expected two worker reports");
  (* worker 0 never reached a barrier or completion: everything it was
     assigned is reported abandoned *)
  (match report.rp_abandoned with
   | [ (0, 0, 9) ] -> ()
   | l ->
     Alcotest.failf "expected abandoned (0, 0, 9), got %d ranges"
       (List.length l));
  (* the merge carries worker 1's shard only: 10 iterations *)
  Alcotest.(check int) "merged stats carry the surviving shard" 10
    result.Parallel.pr_stats.Campaign.st_generated;
  (* crash-implicated iterations all belong to worker 0 (even globals) *)
  List.iter
    (fun g ->
       Alcotest.(check int) "quarantined iteration is worker 0's" 0
         (g mod 2))
    report.rp_quarantined

(* -- State-directory lock ----------------------------------------------- *)

(* A second supervisor on a live state directory is refused (the two
   would clobber each other's protocol files); a lock left by a dead
   supervisor is stale and broken. *)
let test_state_dir_lock () =
  let dir = temp_dir "bvf_sv_lock" in
  let state = Filename.concat dir "state" in
  Unix.mkdir state 0o755;
  (* live owner: this very process *)
  let oc = open_out (Filename.concat state "supervisor.lock") in
  output_string oc (string_of_int (Unix.getpid ()) ^ "\n");
  close_out oc;
  (match sv ~dir:state ~seed:1 ~iterations:10 ~workers:1 () with
   | exception Campaign.Environment msg ->
     Alcotest.(check bool) "refusal names the lock" true
       (String.length msg > 0)
   | _ -> Alcotest.fail "expected a live lock to refuse the run");
  (* stale owner: a pid that cannot exist *)
  let oc = open_out (Filename.concat state "supervisor.lock") in
  output_string oc "999999999\n";
  close_out oc;
  (match sv ~dir:state ~seed:1 ~iterations:10 ~workers:1 () with
   | Supervisor.Completed _ -> ()
   | _ -> Alcotest.fail "expected a stale lock to be broken");
  Alcotest.(check bool) "lock released after the run" false
    (Sys.file_exists (Filename.concat state "supervisor.lock"))

(* -- Interruption and state-directory resume ---------------------------- *)

(* Stop the supervisor once worker 0 has taken its first barrier
   checkpoint; every worker saves and exits.  Rerunning with the same
   state directory resumes each worker from its checkpoint, and the
   final digest equals an undisturbed supervised run's. *)
let test_interrupt_then_resume () =
  let dir = temp_dir "bvf_sv_intr" in
  let state = Filename.concat dir "state" in
  let stop () =
    Sys.file_exists (Filename.concat state "worker-0.ckpt")
  in
  (match
     sv ~checkpoint_every:50 ~stop ~dir:state ~seed:14 ~iterations:2000
       ~workers:2 ()
   with
   | Supervisor.Interrupted report ->
     List.iter
       (fun (w : Supervisor.worker_report) ->
          Alcotest.(check bool) "worker interrupted" true
            (w.wr_outcome = Supervisor.Outcome_interrupted))
       report.rp_workers
   | Supervisor.Completed _ ->
     Alcotest.fail "run completed before the stop fired");
  let resumed, report =
    completed
      (sv ~checkpoint_every:50 ~dir:state ~seed:14 ~iterations:2000
         ~workers:2 ())
  in
  Alcotest.(check int) "no crashes across interrupt/resume" 0
    (List.length report.rp_crashes);
  let reference, _ =
    completed
      (sv ~checkpoint_every:50 ~dir:(Filename.concat dir "ref") ~seed:14
         ~iterations:2000 ~workers:2 ())
  in
  (* the SIGTERM lands between barriers, so each resumed worker carries
     exactly one extra reboot (the save-on-stop barrier) — the same
     semantics as the sequential stop/resume test.  st_reboots is part
     of the digest; normalize that one documented delta and everything
     else must be identical. *)
  let rs = resumed.Parallel.pr_stats
  and fs = reference.Parallel.pr_stats in
  Alcotest.(check int) "one extra reboot per interrupted worker"
    (fs.Campaign.st_reboots + 2) rs.Campaign.st_reboots;
  rs.Campaign.st_reboots <- fs.Campaign.st_reboots;
  Alcotest.(check string) "resumed digest equals undisturbed (mod reboots)"
    (Campaign.digest fs) (Campaign.digest rs)

(* -- Offline merge: associativity and commutativity --------------------- *)

let test_merge_assoc_comm () =
  let snap seed =
    let c =
      Campaign.run_t ~seed ~iterations:50 Campaign.bvf_strategy (config ())
    in
    Campaign.snapshot c
  in
  let a = snap 1 and b = snap 2 and c = snap 3 in
  let d s = Campaign.digest s.Campaign.sn_stats in
  let m = Parallel.merge_snapshots in
  let flat = d (m [ a; b; c ]) in
  Alcotest.(check string) "left-nested merge" flat (d (m [ m [ a; b ]; c ]));
  Alcotest.(check string) "right-nested merge" flat (d (m [ a; m [ b; c ] ]));
  Alcotest.(check string) "commuted merge" flat (d (m [ c; a; b ]));
  Alcotest.(check string) "fully reversed" flat (d (m [ c; b; a ]));
  (* a merged artifact refuses to resume: it has no RNG stream *)
  let merged = m [ a; b ] in
  (match Campaign.resume Campaign.bvf_strategy (config ()) merged with
   | exception Campaign.Environment _ -> ()
   | _ -> Alcotest.fail "expected merged snapshot to refuse resume");
  (* config mismatches are refused *)
  let other =
    Campaign.snapshot
      (Campaign.run_t ~seed:4 ~iterations:10 Campaign.bvf_strategy
         (Kconfig.default Version.Bpf_next))
  in
  match m [ a; other ] with
  | exception Campaign.Environment _ -> ()
  | _ -> Alcotest.fail "expected kernel mismatch to be refused"

(* Suite order matters: OCaml 5 forbids [Unix.fork] in a process that
   has ever spawned a domain, so every fork-based suite must run before
   the equivalence suite's [Parallel.run ~jobs] reference (which itself
   runs after that test's own supervised run, for the same reason). *)
let () =
  Alcotest.run "bvf_supervisor"
    [
      ( "watchdog",
        [ Alcotest.test_case "crash, restart, quarantine" `Slow
            test_crash_restart_quarantine;
          Alcotest.test_case "SIGKILL crash" `Slow test_sigkill_crash;
          Alcotest.test_case "hang deadline" `Slow test_hang_watchdog;
          Alcotest.test_case "retire shrinks the pool" `Slow
            test_retire_pool_shrink ] );
      ( "interruption",
        [ Alcotest.test_case "state-dir lock" `Slow test_state_dir_lock;
          Alcotest.test_case "interrupt then resume" `Slow
            test_interrupt_then_resume ] );
      ( "merge",
        [ Alcotest.test_case "associative and commutative" `Quick
            test_merge_assoc_comm ] );
      ( "equivalence",
        [ Alcotest.test_case "fault-free matches --jobs" `Slow
            test_fault_free_matches_jobs ] );
    ]
