(* Tests for the sharded parallel campaign runner: the round-robin
   iteration split, the jobs=1 bit-identity contract, run-to-run
   determinism for fixed (seed, jobs), the merge invariants (union
   coverage, deduplicated findings at global iterations, summed
   counters) and the portable cross-map coverage merge it builds on. *)

module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Coverage = Bvf_verifier.Coverage
module Corpus = Bvf_core.Corpus
module Campaign = Bvf_core.Campaign
module Parallel = Bvf_core.Parallel

let config () = Kconfig.default Version.Bpf_next

(* -- Sharding arithmetic ----------------------------------------------------- *)

let test_shard_iterations () =
  List.iter
    (fun (iterations, jobs) ->
       let counts = Parallel.shard_iterations ~iterations ~jobs in
       Alcotest.(check int) "one count per shard" jobs (Array.length counts);
       Alcotest.(check int) "counts sum to the budget" iterations
         (Array.fold_left ( + ) 0 counts);
       Array.iter
         (fun c ->
            Alcotest.(check bool) "balanced within one" true
              (c = iterations / jobs || c = (iterations / jobs) + 1))
         counts)
    [ (100, 1); (100, 3); (7, 4); (0, 2); (5, 8); (6000, 4) ];
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Parallel.shard_iterations: jobs < 1") (fun () ->
        ignore (Parallel.shard_iterations ~iterations:10 ~jobs:0))

let test_global_iteration_round_robin () =
  (* shard-local iterations map onto 0..iterations-1 exactly once *)
  let jobs = 3 and iterations = 20 in
  let counts = Parallel.shard_iterations ~iterations ~jobs in
  let seen = Array.make iterations false in
  Array.iteri
    (fun shard n ->
       for local = 0 to n - 1 do
         let g = Parallel.global_iteration ~jobs ~shard local in
         Alcotest.(check bool) "global iteration in range" true
           (g >= 0 && g < iterations);
         Alcotest.(check bool) "not claimed twice" false seen.(g);
         seen.(g) <- true
       done)
    counts;
  Alcotest.(check bool) "every global iteration claimed" true
    (Array.for_all Fun.id seen)

(* -- Portable coverage merge ------------------------------------------------- *)

let test_coverage_union_portable () =
  (* two maps interning the same sites in different orders: the union
     must go by (site, variant) identity, not numeric edge ids *)
  let a = Coverage.create () and b = Coverage.create () in
  let hit cov site variant = Coverage.record cov (Coverage.edge_id cov site variant) in
  hit a "alpha" 0; hit a "alpha" 1; hit a "beta" 0;
  hit b "beta" 0; hit b "beta" 0; hit b "gamma" 3; hit b "alpha" 1;
  let u = Coverage.union [ a; b ] in
  Alcotest.(check int) "union of distinct (site, variant) pairs" 4
    (Coverage.edge_count u);
  (* hit counts are summed *)
  let hits (site, variant) =
    List.assoc_opt (site, variant) (Coverage.named_edges u)
  in
  Alcotest.(check (option int)) "beta:0 seen three times" (Some 3)
    (hits ("beta", 0));
  Alcotest.(check (option int)) "alpha:1 seen twice" (Some 2)
    (hits ("alpha", 1));
  (* absorbing a map's own listing back is a no-op on the edge set *)
  Alcotest.(check int) "re-absorb adds nothing" 0
    (Coverage.absorb_named u (Coverage.named_edges a))

(* -- jobs = 1 identity -------------------------------------------------------- *)

let test_jobs1_bit_identical () =
  let seq =
    Campaign.run ~seed:21 ~iterations:300 Campaign.bvf_strategy (config ())
  in
  let par =
    Parallel.run ~jobs:1 ~seed:21 ~iterations:300 Campaign.bvf_strategy
      (config ())
  in
  Alcotest.(check string) "digest identical to sequential run"
    (Campaign.digest seq) (Parallel.digest par);
  Alcotest.(check int) "same edges" seq.Campaign.st_edges
    par.Parallel.pr_stats.Campaign.st_edges;
  Alcotest.(check int) "same findings"
    (Hashtbl.length seq.Campaign.st_findings)
    (Hashtbl.length par.Parallel.pr_stats.Campaign.st_findings);
  Alcotest.(check int) "one shard" 1 (List.length par.Parallel.pr_shards)

(* -- Determinism -------------------------------------------------------------- *)

let test_parallel_deterministic () =
  let digest jobs =
    Parallel.digest
      (Parallel.run ~jobs ~seed:5 ~iterations:240 Campaign.bvf_strategy
         (config ()))
  in
  Alcotest.(check string) "jobs=2 reproducible" (digest 2) (digest 2);
  Alcotest.(check string) "jobs=4 reproducible" (digest 4) (digest 4)

let test_parallel_failslab_deterministic () =
  let digest () =
    Parallel.digest
      (Parallel.run ~failslab_rate:0.1 ~failslab_seed:3 ~jobs:2 ~seed:5
         ~iterations:200 Campaign.bvf_strategy (config ()))
  in
  Alcotest.(check string) "per-shard fault plans reproducible"
    (digest ()) (digest ())

(* -- Merge invariants ---------------------------------------------------------- *)

let test_merge_invariants () =
  let iterations = 300 and jobs = 3 in
  let r =
    Parallel.run ~jobs ~seed:9 ~iterations Campaign.bvf_strategy (config ())
  in
  let shards = r.Parallel.pr_shards in
  let merged = r.Parallel.pr_stats in
  Alcotest.(check int) "shard per job" jobs (List.length shards);
  let sums f =
    List.fold_left (fun acc sh -> acc + f sh.Parallel.sh_stats) 0 shards
  in
  Alcotest.(check int) "all iterations executed" iterations
    merged.Campaign.st_generated;
  Alcotest.(check int) "accepted summed"
    (sums (fun s -> s.Campaign.st_accepted))
    merged.Campaign.st_accepted;
  Alcotest.(check int) "rejected summed"
    (sums (fun s -> s.Campaign.st_rejected))
    merged.Campaign.st_rejected;
  Alcotest.(check int) "retries summed"
    (sums (fun s -> s.Campaign.st_retries))
    merged.Campaign.st_retries;
  (* coverage: union is bounded by the per-shard extremes *)
  let max_edges =
    List.fold_left
      (fun acc sh -> max acc sh.Parallel.sh_stats.Campaign.st_edges)
      0 shards
  in
  Alcotest.(check bool) "union <= sum of shard edges" true
    (merged.Campaign.st_edges <= sums (fun s -> s.Campaign.st_edges));
  Alcotest.(check bool) "union >= best shard" true
    (merged.Campaign.st_edges >= max_edges);
  Alcotest.(check int) "stats edges match union map"
    (Coverage.edge_count r.Parallel.pr_cov) merged.Campaign.st_edges;
  (* findings: merged key set is exactly the union of shard key sets,
     remapped into the global iteration space *)
  List.iter
    (fun sh ->
       Hashtbl.iter
         (fun key _ ->
            Alcotest.(check bool) "shard finding survives the merge" true
              (Hashtbl.mem merged.Campaign.st_findings key))
         sh.Parallel.sh_stats.Campaign.st_findings)
    shards;
  Hashtbl.iter
    (fun key f ->
       Alcotest.(check bool) "merged finding came from a shard" true
         (List.exists
            (fun sh ->
               Hashtbl.mem sh.Parallel.sh_stats.Campaign.st_findings key)
            shards);
       Alcotest.(check bool) "global iteration in range" true
         (f.Campaign.fd_iteration >= 0
          && f.Campaign.fd_iteration < iterations))
    merged.Campaign.st_findings;
  (* merged curve: newest first, iterations strictly decreasing, summed
     per-shard signal monotone *)
  let rec descending = function
    | (a : Campaign.sample) :: (b :: _ as tl) ->
      a.Campaign.sa_iteration > b.Campaign.sa_iteration
      && a.Campaign.sa_edges >= b.Campaign.sa_edges
      && descending tl
    | _ -> true
  in
  Alcotest.(check bool) "merged curve monotone" true
    (descending merged.Campaign.st_curve);
  (* merged corpus: bounded, entries re-stamped with global iterations *)
  Alcotest.(check bool) "merged corpus bounded" true
    (Corpus.size r.Parallel.pr_corpus <= 256);
  List.iter
    (fun (e : Corpus.entry) ->
       Alcotest.(check bool) "corpus entry at global iteration" true
         (e.Corpus.added_at >= 0 && e.Corpus.added_at < iterations))
    (Corpus.entries r.Parallel.pr_corpus)

let () =
  Alcotest.run "bvf_parallel"
    [
      ( "sharding",
        [ Alcotest.test_case "iteration split" `Quick test_shard_iterations;
          Alcotest.test_case "round-robin mapping" `Quick
            test_global_iteration_round_robin ] );
      ( "coverage merge",
        [ Alcotest.test_case "portable union" `Quick
            test_coverage_union_portable ] );
      ( "contract",
        [ Alcotest.test_case "jobs=1 identity" `Slow test_jobs1_bit_identical;
          Alcotest.test_case "deterministic" `Slow test_parallel_deterministic;
          Alcotest.test_case "deterministic with failslab" `Slow
            test_parallel_failslab_deterministic ] );
      ( "merge",
        [ Alcotest.test_case "invariants" `Slow test_merge_invariants ] );
    ]
