(* Bounded-loop verification end to end: widening at certified loop
   heads, the rejection split (zero-progress [Unbounded_loop] vs
   non-converging [Loop_unbounded]), the Bug13 widening regression
   demonstrated through the witness oracle, and the generated loopy
   corpus holding the soundness gates (invariant lint, witness) at
   campaign scale.

   The directed programs below all share one shape: a counted loop
   whose back edge carries the syntactic termination certificate
   (single conditional back edge, Jlt/Jle of the induction register
   against a small immediate, the increment just before it).  Only
   such heads ever widen — see analyze.ml. *)

module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Report = Bvf_kernel.Report
module Verifier = Bvf_verifier.Verifier
module Venv = Bvf_verifier.Venv
module Vstats = Bvf_verifier.Vstats
module Reject_reason = Bvf_verifier.Reject_reason
module Loader = Bvf_runtime.Loader
module Campaign = Bvf_core.Campaign
module Gen = Bvf_core.Gen
module Rng = Bvf_core.Rng

let load ?(config = Kconfig.make Version.Bpf_next ~bugs:[]) fragments =
  let session = Loader.create config in
  let req =
    Verifier.request Prog.Socket_filter (Asm.prog fragments)
  in
  Loader.load_and_run session req

(* -- Widening accepts counted loops ---------------------------------------- *)

(* r6 counts 0..40; r7 accumulates.  The second head arrival widens
   both scalars to threshold ranges and the third converges: accepted
   with a handful of widen rounds, and — the frozen-schema contract —
   zero "infinite loop detected" events. *)
let widened_loop_accepted () =
  let result =
    load
      [ [ Asm.mov64_imm Insn.R6 0l;
          Asm.mov64_imm Insn.R7 0l;
          (* head: *)
          Asm.alu64_imm Insn.Add Insn.R7 2l;
          Asm.alu64_imm Insn.Add Insn.R6 1l;
          Asm.jmp_imm Insn.Jlt Insn.R6 40l (-3) ];
        Asm.ret 0l ]
  in
  (match result.Loader.verdict with
   | Ok _ -> ()
   | Error e ->
     Alcotest.fail
       (Printf.sprintf "counted loop rejected: %s" e.Venv.vmsg));
  match result.Loader.vstats with
  | None -> Alcotest.fail "no verifier counters"
  | Some v ->
    Alcotest.(check bool) "widening ran" true (v.Vstats.vs_widen_rounds > 0);
    Alcotest.(check int) "one loop head" 1 v.Vstats.vs_loop_heads;
    Alcotest.(check int) "loops_detected keeps its meaning" 0
      v.Vstats.vs_loops_detected

(* The concrete interpreter agrees with the widened verdict: the loop
   runs its 40 trips and exits normally under the witness oracle with
   nothing escaping. *)
let widened_loop_runs_clean () =
  let config = Kconfig.make Version.Bpf_next ~bugs:[] ~witness:true in
  let result =
    load ~config
      [ [ Asm.mov64_imm Insn.R6 0l;
          Asm.mov64_imm Insn.R7 0l;
          Asm.alu64_imm Insn.Add Insn.R7 2l;
          Asm.alu64_imm Insn.Add Insn.R6 1l;
          Asm.jmp_imm Insn.Jlt Insn.R6 40l (-3) ];
        Asm.ret 0l ]
  in
  Alcotest.(check bool) "accepted" true
    (Result.is_ok result.Loader.verdict);
  Alcotest.(check bool) "loop body executed" true
    (result.Loader.insns_executed > 100);
  Alcotest.(check (list string)) "no witness escapes" []
    (List.map Report.to_string result.Loader.witness)

(* -- The rejection split --------------------------------------------------- *)

(* Zero progress at an uncertified head: the historical reject path
   (kernel "infinite loop detected") must keep firing, counted by
   loops_detected. *)
let zero_progress_still_rejected () =
  let result =
    load
      [ [ Asm.mov64_imm Insn.R6 0l;
          (* head: the And resets r6 to 0 every iteration *)
          Asm.alu64_imm Insn.And Insn.R6 0l;
          Asm.jmp_imm Insn.Jeq Insn.R6 0l (-2) ];
        Asm.ret 0l ]
  in
  (match result.Loader.verdict with
   | Ok _ -> Alcotest.fail "zero-progress loop accepted"
   | Error e ->
     Alcotest.(check bool) "reason is unbounded_loop" true
       (e.Venv.vreason = Reject_reason.Unbounded_loop));
  match result.Loader.vstats with
  | None -> Alcotest.fail "no verifier counters"
  | Some v ->
    Alcotest.(check bool) "loops_detected fired" true
      (v.Vstats.vs_loops_detected > 0)

(* A certified counter next to loop-carried pointer arithmetic the
   widening cannot absorb: unrolling runs out of per-insn entries and
   the analyzer reports the distinct [Loop_unbounded] reason. *)
let non_converging_loop_rejected () =
  let result =
    load
      [ [ Asm.mov64_imm Insn.R6 0l;
          Asm.mov64_reg Insn.R2 Insn.R10;
          (* head: *)
          Asm.alu64_imm Insn.Add Insn.R2 (-8l);
          Asm.alu64_imm Insn.Add Insn.R6 1l;
          Asm.jmp_imm Insn.Jlt Insn.R6 30l (-3) ];
        Asm.ret 0l ]
  in
  match result.Loader.verdict with
  | Ok _ -> Alcotest.fail "non-converging loop accepted"
  | Error e ->
    Alcotest.(check bool) "reason is loop_unbounded" true
      (e.Venv.vreason = Reject_reason.Loop_unbounded)

(* -- Bug13: widening that declares convergence too early ------------------- *)

(* r7 grows by 3 per trip while r6 certifies 30 trips.  The first
   widening round lifts r7 to a threshold range; pre-fix
   (Bug13_widen_tight_exit) the very next head arrival is pruned as
   converged even though r7 has already escaped the widened bound, so
   the loop exit keeps a too-tight r7 range.  Concretely r7 reaches 90
   — the witness oracle reports the escape.  The fixed widening keeps
   going (to wider thresholds, ultimately to the unknown scalar) and
   nothing escapes. *)
let bug13_prog =
  [ [ Asm.mov64_imm Insn.R6 0l;
      Asm.mov64_imm Insn.R7 0l;
      (* head: *)
      Asm.alu64_imm Insn.Add Insn.R7 3l;
      Asm.alu64_imm Insn.Add Insn.R6 1l;
      Asm.jmp_imm Insn.Jlt Insn.R6 30l (-3) ];
    Asm.ret 0l ]

let bug13_escape (r : Report.t) =
  match r.Report.kind with
  | Report.Witness_escape { wreg; _ } -> wreg = 7
  | _ -> false

let bug13_buggy () =
  let config =
    Kconfig.make Version.Bpf_next
      ~bugs:[ Kconfig.Bug13_widen_tight_exit ] ~witness:true
  in
  let result = load ~config bug13_prog in
  Alcotest.(check bool) "still accepted (that is the bug)" true
    (Result.is_ok result.Loader.verdict);
  Alcotest.(check bool) "tight loop-exit range escapes via r7" true
    (List.exists bug13_escape result.Loader.witness)

let bug13_fixed () =
  let config = Kconfig.make Version.Bpf_next ~bugs:[] ~witness:true in
  let result = load ~config bug13_prog in
  Alcotest.(check bool) "accepted" true
    (Result.is_ok result.Loader.verdict);
  Alcotest.(check (list string)) "no witness escapes after the fix" []
    (List.map Report.to_string result.Loader.witness)

(* Bug13 is a regression demonstrator, not campaign ground truth. *)
let bug13_not_in_corpus () =
  Alcotest.(check bool) "absent from all_bugs" false
    (List.mem Kconfig.Bug13_widen_tight_exit Kconfig.all_bugs);
  List.iter
    (fun v ->
       Alcotest.(check bool)
         (Printf.sprintf "not shipped by %s" (Version.to_string v))
         false
         (Kconfig.bug_in_version v Kconfig.Bug13_widen_tight_exit))
    Version.all

(* -- The generated loopy corpus under the soundness gates ------------------ *)

let has_back_edge (insns : Insn.t array) =
  Array.exists
    (function
      | Insn.Jmp { off; _ } -> off < 0
      | Insn.Ja off -> off < 0
      | _ -> false)
    insns

(* The ISSUE 8 acceptance run: 6000 seeded generator iterations on a
   fixed kernel must produce >= 100 distinct loopy programs the
   verifier accepts, with zero invariant-lint violations and zero
   witness escapes.  Lint and witness both run on every loopy program,
   accepted or not — a rejection is fine, an unsound acceptance is
   not. *)
let loopy_corpus_sound () =
  let config =
    Kconfig.with_lint
      (Kconfig.make Version.Bpf_next ~bugs:[] ~witness:true)
      true
  in
  let session = Loader.create config in
  let gen_config =
    { Gen.c_version = Version.Bpf_next;
      c_maps = Campaign.standard_maps session }
  in
  let rng = Rng.create 8 in
  let cov = Bvf_verifier.Coverage.create () in
  let distinct_accepted = Hashtbl.create 256 in
  let loopy = ref 0 and violations = ref 0 and escapes = ref 0 in
  for _ = 1 to 6000 do
    let req = Gen.generate rng gen_config in
    if has_back_edge req.Verifier.r_insns then begin
      incr loopy;
      let _, _, n = Verifier.lint session.Loader.kst ~cov req in
      violations := !violations + n;
      let result = Loader.load_and_run session req in
      escapes := !escapes + List.length result.Loader.witness;
      if Result.is_ok result.Loader.verdict then
        Hashtbl.replace distinct_accepted
          (Bvf_ebpf.Disasm.prog_to_string req.Verifier.r_insns)
          ()
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf ">= 100 distinct accepted loopy programs (got %d of %d loopy)"
       (Hashtbl.length distinct_accepted) !loopy)
    true
    (Hashtbl.length distinct_accepted >= 100);
  Alcotest.(check int) "zero invariant-lint violations" 0 !violations;
  Alcotest.(check int) "zero witness escapes" 0 !escapes

let () =
  Alcotest.run "bvf_loops"
    [
      ( "widening",
        [ Alcotest.test_case "counted loop accepted via widening" `Quick
            widened_loop_accepted;
          Alcotest.test_case "accepted loop runs clean under witness"
            `Quick widened_loop_runs_clean ] );
      ( "rejection split",
        [ Alcotest.test_case "zero progress still rejected" `Quick
            zero_progress_still_rejected;
          Alcotest.test_case "non-converging loop is loop_unbounded"
            `Quick non_converging_loop_rejected ] );
      ( "Bug13 widening regression",
        [ Alcotest.test_case "pre-fix tight exit escapes (Bug13)" `Quick
            bug13_buggy;
          Alcotest.test_case "fixed widening verifies cleanly" `Quick
            bug13_fixed;
          Alcotest.test_case "Bug13 stays out of the corpus" `Quick
            bug13_not_in_corpus ] );
      ( "loopy corpus",
        [ Alcotest.test_case "6000-iteration soundness gate" `Slow
            loopy_corpus_sound ] );
    ]
