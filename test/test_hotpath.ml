(* Hot-path regression properties: the perf work (state pool, prune
   signatures, decoded executor) must be behavior-preserving, and the
   narrow-load fix it uncovered must stay fixed.

   - pooling identity: a campaign with state/frame recycling disabled
     produces the same digest as the pooled default — recycling warm
     memory never leaks state between paths;
   - prune-signature soundness: the cheap filter in front of
     [Vstate.states_equal] has no false negatives — whenever the full
     walk would prune, the signatures let it run;
   - narrow-load witness regression: the pre-fix behavior (narrow [Ldx]
     of a constant spill keeping the stale full-width constant) is a
     real abstract/concrete divergence, demonstrated through the
     witness oracle with [Kconfig.Bug12_narrow_load_const];
   - counter-schema guard: the veristat counter schema is frozen by
     committed baselines; internal counters must not leak into it. *)

module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Report = Bvf_kernel.Report
module Regstate = Bvf_verifier.Regstate
module Vstate = Bvf_verifier.Vstate
module Vstats = Bvf_verifier.Vstats
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Campaign = Bvf_core.Campaign

(* -- Pooling identity ----------------------------------------------------- *)

let campaign_digest () =
  let config = Kconfig.default Version.Bpf_next in
  Campaign.digest (Campaign.run ~seed:7 ~iterations:800 Campaign.bvf_strategy config)

let pool_identity () =
  let pooled = campaign_digest () in
  Vstate.pool_enabled := false;
  let unpooled =
    Fun.protect
      ~finally:(fun () -> Vstate.pool_enabled := true)
      campaign_digest
  in
  Alcotest.(check string) "pool on/off digests" pooled unpooled

(* -- Prune-signature soundness -------------------------------------------- *)

(* Random register values of every kind the signature distinguishes. *)
let gen_reg : Regstate.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  oneof
    [
      return Regstate.not_init;
      return Regstate.unknown_scalar;
      map (fun v -> Regstate.const_scalar (Int64.of_int v)) small_int;
      map
        (fun (a, b) ->
           let a = Int64.of_int a and b = Int64.of_int b in
           Regstate.scalar_range ~umin:(min a b) ~umax:(max a b))
        (pair small_int small_int);
      return (Regstate.fp 0);
      return Regstate.ctx_pointer;
    ]

(* A probe state plus a stored state that subsumes it by construction:
   per register, keep the probe value, or widen it (any scalar to the
   unknown scalar, anything to uninitialized — both accepted by
   [Regstate.reg_within]).  Stacks, refs and locks stay empty/equal. *)
let gen_subsumed_pair : (Vstate.t * Vstate.t) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* frames = int_range 1 2 in
  let* regs = array_size (return ((11 * frames) + 1)) gen_reg in
  let* widen = array_size (return ((11 * frames) + 1)) (int_range 0 2) in
  let build () =
    let st = Vstate.initial ~ctx:Regstate.ctx_pointer in
    if frames = 2 then
      Vstate.push_top_frame st (Vstate.new_frame ~frameno:1 ~callsite:5);
    st
  in
  let cur = build () and old = build () in
  let k = ref 0 in
  Vstate.iter_frames cur (fun f ->
      for i = 0 to 10 do
        f.Vstate.regs.(i) <- regs.(!k);
        incr k
      done);
  let k = ref 0 in
  Vstate.iter_frames old (fun f ->
      for i = 0 to 10 do
        let v = regs.(!k) in
        f.Vstate.regs.(i) <-
          (match widen.(!k) with
           | 0 -> v
           | 1 when Regstate.is_scalar v -> Regstate.unknown_scalar
           | 1 -> v
           | _ -> Regstate.not_init);
        incr k
      done);
  return (old, cur)

(* No false negatives: whenever the full walk says "prune", the cheap
   filter must have let it through.  The generator makes subsumption
   hold by construction, so the property is exercised on every case,
   not vacuously. *)
let prune_sig_sound =
  QCheck2.Test.make ~count:2000 ~name:"prune signatures never veto states_equal"
    gen_subsumed_pair
    (fun (old, cur) ->
       let equal = Vstate.states_equal ~old ~cur ~bug3:false in
       if not equal then
         QCheck2.Test.fail_reportf
           "generator broke subsumption (frames=%d)" (Vstate.frame_count cur);
       Vstate.state_sig old = Vstate.state_sig cur
       && Vstate.sigs_compatible
            ~stored:(Vstate.frame_sigs_stored old)
            ~probe:(Vstate.frame_sigs_probe cur))

(* -- Narrow-load witness regression --------------------------------------- *)

(* r2 = 0x101; spill it; narrow-reload the low byte.  Pre-fix the
   verifier kept the full 0x101 as r1's constant while the concrete
   little-endian load yields 0x01 — a divergence the witness oracle
   reports as an escape.  The fixed verifier truncates and nothing
   escapes. *)
let narrow_load_prog =
  Asm.prog
    [ [ Asm.mov64_imm Insn.R2 0x101l;
        Asm.stx_dw Insn.R10 Insn.R2 (-8);
        Asm.ldx_b Insn.R1 Insn.R10 (-8) ];
      Asm.ret 0l ]

let narrow_load_run config =
  let session = Loader.create config in
  let req =
    { Verifier.r_prog_type = Prog.Kprobe; r_attach = None;
      r_offload = false; r_insns = narrow_load_prog }
  in
  let result = Loader.load_and_run session req in
  (match result.Loader.verdict with
   | Error e ->
     Alcotest.fail
       (Printf.sprintf "narrow-load program rejected: %s"
          e.Bvf_verifier.Venv.vmsg)
   | Ok _ -> ());
  result

let narrow_load_escape (r : Report.t) =
  match r.Report.kind with
  | Report.Witness_escape { wreg; wvalue; _ } -> wreg = 1 && wvalue = 1L
  | _ -> false

let narrow_load_buggy () =
  let config =
    Kconfig.make Version.Bpf_next
      ~bugs:[ Kconfig.Bug12_narrow_load_const ] ~witness:true
  in
  let result = narrow_load_run config in
  Alcotest.(check bool) "stale constant escapes through the witness" true
    (List.exists narrow_load_escape result.Loader.witness)

let narrow_load_fixed () =
  let config = Kconfig.make Version.Bpf_next ~bugs:[] ~witness:true in
  let result = narrow_load_run config in
  Alcotest.(check (list string)) "no witness escapes after the fix" []
    (List.map Report.to_string result.Loader.witness)

(* Bug12 is a regression demonstrator, not campaign ground truth: it
   must stay out of the corpus and out of every version's bug set. *)
let narrow_load_not_in_corpus () =
  Alcotest.(check bool) "absent from all_bugs" false
    (List.mem Kconfig.Bug12_narrow_load_const Kconfig.all_bugs);
  List.iter
    (fun v ->
       Alcotest.(check bool)
         (Printf.sprintf "not shipped by %s" (Version.to_string v))
         false
         (Kconfig.bug_in_version v Kconfig.Bug12_narrow_load_const))
    Version.all

(* -- Counter-schema guard ------------------------------------------------- *)

(* The schema is frozen by the committed veristat baseline; internal
   diagnostics (the prune-filter skip counter) and the loop-widening
   counters must not leak into it. *)
let counter_schema () =
  Alcotest.(check (list string)) "veristat counter schema"
    [ "insn_processed"; "total_states"; "peak_states";
      "max_states_per_insn"; "prune_hits"; "prune_misses";
      "loops_detected"; "branch_hwm" ]
    Vstats.counter_names;
  (* widen_rounds / loop_heads postdate the frozen schema: they ride in
     the telemetry trace and the campaign aggregate, never in the
     canonical counter list a committed baseline would parse.  And
     loops_detected keeps its historical meaning — zero-progress
     infinite-loop rejections — so a widening loop that converges must
     leave it untouched. *)
  List.iter
    (fun name ->
       Alcotest.(check bool)
         (Printf.sprintf "%s outside the frozen schema" name)
         false
         (List.mem name Vstats.counter_names))
    [ "widen_rounds"; "loop_heads"; "prune_hash_skips" ]

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bvf_hotpath"
    [
      ( "state pool",
        [ Alcotest.test_case "pool on/off campaign digests equal" `Slow
            pool_identity ] );
      ("prune signatures", [ qt prune_sig_sound ]);
      ( "narrow-load regression",
        [ Alcotest.test_case "pre-fix behavior diverges (Bug12)" `Quick
            narrow_load_buggy;
          Alcotest.test_case "fixed verifier truncates" `Quick
            narrow_load_fixed;
          Alcotest.test_case "Bug12 stays out of the corpus" `Quick
            narrow_load_not_in_corpus ] );
      ("veristat schema", [ Alcotest.test_case "frozen" `Quick counter_schema ]);
    ]
