(* Verifier tests: the tnum abstract domain (soundness properties), the
   register-state bounds machinery, branch refinement, and an extensive
   accept/reject program suite in the style of the kernel's
   tools/testing/selftests/bpf/verifier tests. *)

module Word = Bvf_ebpf.Word
module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Helper = Bvf_ebpf.Helper
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Kstate = Bvf_kernel.Kstate
module Tnum = Bvf_verifier.Tnum
module Regstate = Bvf_verifier.Regstate
module Vstate = Bvf_verifier.Vstate
module Venv = Bvf_verifier.Venv
module Check_jmp = Bvf_verifier.Check_jmp
module Coverage = Bvf_verifier.Coverage
module Verifier = Bvf_verifier.Verifier
module Patch = Bvf_verifier.Patch
module Sanitize = Bvf_verifier.Sanitize

(* -- Tnum soundness -------------------------------------------------------- *)

let gen_tnum_and_member : (Tnum.t * int64) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* value = map Int64.of_int (int_range (-1000000) 1000000) in
  let* mask = map Int64.of_int (int_range 0 0xFFFFF) in
  let mask = Int64.logand mask (Int64.lognot value) in
  let t = { Tnum.value = Int64.logand value (Int64.lognot mask); mask } in
  (* pick a member: value with a random subset of mask bits *)
  let* noise = map Int64.of_int (int_range 0 0xFFFFF) in
  let member = Int64.logor t.Tnum.value (Int64.logand noise mask) in
  return (t, member)

let tnum_sound name op concrete =
  QCheck2.Test.make ~count:500 ~name
    QCheck2.Gen.(pair gen_tnum_and_member gen_tnum_and_member)
    (fun ((ta, a), (tb, b)) -> Tnum.contains (op ta tb) (concrete a b))

let tnum_add_sound = tnum_sound "tnum add sound" Tnum.add Int64.add
let tnum_sub_sound = tnum_sound "tnum sub sound" Tnum.sub Int64.sub
let tnum_and_sound = tnum_sound "tnum and sound" Tnum.and_ Int64.logand
let tnum_or_sound = tnum_sound "tnum or sound" Tnum.or_ Int64.logor
let tnum_xor_sound = tnum_sound "tnum xor sound" Tnum.xor Int64.logxor
let tnum_mul_sound = tnum_sound "tnum mul sound" Tnum.mul Int64.mul

let tnum_shift_sound =
  QCheck2.Test.make ~count:500 ~name:"tnum shifts sound"
    QCheck2.Gen.(pair gen_tnum_and_member (int_range 0 63))
    (fun ((t, x), sh) ->
       Tnum.contains (Tnum.lshift t sh) (Int64.shift_left x sh)
       && Tnum.contains (Tnum.rshift t sh)
         (Int64.shift_right_logical x sh)
       && Tnum.contains (Tnum.arshift t sh ~bits:64)
         (Int64.shift_right x sh))

let tnum_range_sound =
  QCheck2.Test.make ~count:500 ~name:"tnum range contains interval"
    QCheck2.Gen.(triple (int_range 0 100000) (int_range 0 100000)
                   (int_range 0 100000))
    (fun (a, b, probe) ->
       let lo = min a b and hi = max a b in
       let t = Tnum.range ~min:(Int64.of_int lo) ~max:(Int64.of_int hi) in
       let p = lo + (probe mod (hi - lo + 1)) in
       Tnum.contains t (Int64.of_int p))

let tnum_intersect_sound =
  QCheck2.Test.make ~count:500 ~name:"tnum intersect keeps members"
    gen_tnum_and_member
    (fun (t, x) ->
       let t2 = Tnum.range ~min:0L ~max:(Int64.logor x 0xFFL) in
       if Tnum.contains t2 x then Tnum.contains (Tnum.intersect t t2) x
       else true)

let test_tnum_basics () =
  Alcotest.(check bool) "const is const" true (Tnum.is_const (Tnum.const 5L));
  Alcotest.(check bool) "unknown" true (Tnum.is_unknown Tnum.unknown);
  Alcotest.(check int64) "umin" 4L (Tnum.umin { Tnum.value = 4L; mask = 3L });
  Alcotest.(check int64) "umax" 7L (Tnum.umax { Tnum.value = 4L; mask = 3L });
  Alcotest.(check bool) "subset" true
    (Tnum.subset ~of_:Tnum.unknown (Tnum.const 9L));
  Alcotest.(check bool) "not subset" false
    (Tnum.subset ~of_:(Tnum.const 9L) Tnum.unknown);
  Alcotest.(check bool) "cast" true
    (Tnum.equal (Tnum.cast (Tnum.const 0x1FFL) ~size:1) (Tnum.const 0xFFL));
  Alcotest.(check bool) "aligned" true
    (Tnum.is_aligned (Tnum.const 8L) 8L);
  Alcotest.(check bool) "unaligned" false
    (Tnum.is_aligned (Tnum.const 9L) 8L)

(* -- Regstate -------------------------------------------------------------- *)

let test_regstate_const () =
  let r = Regstate.const_scalar 42L in
  Alcotest.(check bool) "const" true (Regstate.const_value r = Some 42L);
  Alcotest.(check int64) "umin" 42L r.Regstate.umin;
  Alcotest.(check int64) "smax" 42L r.Regstate.smax

let test_regstate_sync_deduce () =
  (* unsigned knowledge must flow into signed bounds *)
  let r = Regstate.scalar_range ~umin:0L ~umax:100L in
  Alcotest.(check bool) "smin >= 0" true (r.Regstate.smin >= 0L);
  Alcotest.(check bool) "smax <= 100" true (r.Regstate.smax <= 100L)

let test_regstate_bottom () =
  let r =
    Regstate.sync
      { (Regstate.const_scalar 5L) with Regstate.umin = 10L; umax = 3L }
  in
  Alcotest.(check bool) "inconsistent is bottom" true (Regstate.is_bottom r)

let test_regstate_within () =
  let wide = Regstate.scalar_range ~umin:0L ~umax:100L in
  let narrow = Regstate.scalar_range ~umin:10L ~umax:20L in
  Alcotest.(check bool) "narrow within wide" true
    (Regstate.reg_within ~old:wide ~cur:narrow ~bug3:false);
  Alcotest.(check bool) "wide not within narrow" false
    (Regstate.reg_within ~old:narrow ~cur:wide ~bug3:false);
  (* the Bug#3 hook: kfunc scalars compare equal under the buggy prune *)
  let kfunc_wide = { narrow with Regstate.from_kfunc = true } in
  Alcotest.(check bool) "bug3 skips ranges" true
    (Regstate.reg_within ~old:kfunc_wide ~cur:wide ~bug3:true);
  Alcotest.(check bool) "fixed does not" false
    (Regstate.reg_within ~old:kfunc_wide ~cur:wide ~bug3:false)

let test_regstate_truncate32 () =
  let r = Regstate.truncate32 (Regstate.const_scalar 0x1_0000_0005L) in
  Alcotest.(check bool) "truncated" true
    (Regstate.const_value r = Some 5L)

(* -- Vstate stack ----------------------------------------------------------- *)

let test_stack_spill_fill () =
  let f = Vstate.new_frame ~frameno:0 ~callsite:(-1) in
  let ptr = Regstate.pointer (Regstate.P_mem 64) in
  Vstate.stack_write f ~off:(-8) ~size:8 ptr;
  (match Vstate.stack_read f ~off:(-8) ~size:8 with
   | Ok r -> Alcotest.(check bool) "spill preserved" true
       (Regstate.is_pointer r)
   | Error e -> Alcotest.fail e);
  (* partial overwrite kills the spill *)
  Vstate.stack_write f ~off:(-6) ~size:2 (Regstate.const_scalar 0L);
  match Vstate.stack_read f ~off:(-8) ~size:8 with
  | Ok r -> Alcotest.(check bool) "degraded to scalar" true
      (Regstate.is_scalar r)
  | Error _ -> Alcotest.fail "slot should still be initialized"

let test_stack_zero_tracking () =
  let f = Vstate.new_frame ~frameno:0 ~callsite:(-1) in
  Vstate.stack_write f ~off:(-16) ~size:4 (Regstate.const_scalar 0L);
  (match Vstate.stack_read f ~off:(-16) ~size:4 with
   | Ok r -> Alcotest.(check bool) "zero" true
       (Regstate.const_value r = Some 0L)
   | Error e -> Alcotest.fail e);
  match Vstate.stack_read f ~off:(-20) ~size:8 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "uninit read must fail"

let test_stack_initialized_region () =
  let f = Vstate.new_frame ~frameno:0 ~callsite:(-1) in
  Vstate.stack_mark_written f ~off:(-32) ~size:16;
  Alcotest.(check bool) "initialized" true
    (Vstate.stack_initialized f ~off:(-32) ~size:16);
  Alcotest.(check bool) "beyond not" false
    (Vstate.stack_initialized f ~off:(-32) ~size:17)

(* -- Branch verdict/refinement soundness ----------------------------------- *)

let eval_cond (cond : Insn.cond) (a : int64) (b : int64) : bool =
  match cond with
  | Insn.Jeq -> a = b
  | Insn.Jne -> a <> b
  | Insn.Jgt -> Word.ugt a b
  | Insn.Jge -> Word.uge a b
  | Insn.Jlt -> Word.ult a b
  | Insn.Jle -> Word.ule a b
  | Insn.Jsgt -> a > b
  | Insn.Jsge -> a >= b
  | Insn.Jslt -> a < b
  | Insn.Jsle -> a <= b
  | Insn.Jset -> Int64.logand a b <> 0L

let all_conds =
  [ Insn.Jeq; Insn.Jne; Insn.Jgt; Insn.Jge; Insn.Jlt; Insn.Jle; Insn.Jsgt;
    Insn.Jsge; Insn.Jslt; Insn.Jsle; Insn.Jset ]

let gen_bounded_scalar : (Regstate.t * int64) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* a = map Int64.of_int (int_range (-1000) 1000) in
  let* b = map Int64.of_int (int_range (-1000) 1000) in
  let lo = if a < b then a else b and hi = if a < b then b else a in
  let* x = map Int64.of_int (int_range 0 2000) in
  let x = Int64.add lo (Int64.rem x (Int64.add (Int64.sub hi lo) 1L)) in
  let r =
    Regstate.sync
      { Regstate.unknown_scalar with Regstate.smin = lo; smax = hi }
  in
  return (r, x)

(* if the verdict says Always/Never, every concrete member pair agrees *)
let verdict_sound =
  QCheck2.Test.make ~count:1000 ~name:"branch verdict sound"
    QCheck2.Gen.(triple (int_range 0 10) gen_bounded_scalar
                   gen_bounded_scalar)
    (fun (ci, (ra, a), (rb, b)) ->
       let cond = List.nth all_conds ci in
       match Check_jmp.branch_verdict cond ra rb with
       | Check_jmp.Always -> eval_cond cond a b
       | Check_jmp.Never -> not (eval_cond cond a b)
       | Check_jmp.Unknown -> true)

(* refinement keeps every concrete pair satisfying the condition *)
let refine_sound =
  QCheck2.Test.make ~count:1000 ~name:"branch refinement sound"
    QCheck2.Gen.(triple (int_range 0 10) gen_bounded_scalar
                   gen_bounded_scalar)
    (fun (ci, (ra, a), (rb, b)) ->
       let cond = List.nth all_conds ci in
       let member (r : Regstate.t) x =
         r.Regstate.smin <= x && x <= r.Regstate.smax
         && Word.ule r.Regstate.umin x
         && Word.ule x r.Regstate.umax
         && Tnum.contains r.Regstate.var_off x
       in
       if eval_cond cond a b then
         match Check_jmp.refine cond ra rb with
         | Some (ra', rb') -> member ra' a && member rb' b
         | None -> false (* contradiction despite a witness: unsound *)
       else
         match Check_jmp.refine_false cond ra rb with
         | Some (ra', rb') -> member ra' a && member rb' b
         | None -> false)

(* -- Accept/reject program suite -------------------------------------------- *)

type expectation = Accept | Reject of string

let fresh_kst ?(config = Kconfig.fixed Version.Bpf_next) () =
  let kst = Kstate.create config in
  let hash_fd = Kstate.map_create kst (Map.hash_def ()) in
  let array_fd = Kstate.map_create kst (Map.array_def ()) in
  let spin_fd =
    Kstate.map_create kst
      (Map.hash_def ~value_size:64 ~has_spin_lock:true ())
  in
  let ring_fd = Kstate.map_create kst (Map.ringbuf_def ()) in
  (kst, hash_fd, array_fd, spin_fd, ring_fd)

let check_program ?config ?(prog_type = Prog.Socket_filter) ?attach
    (name : string) (expect : expectation)
    (build : int -> int -> int -> int -> Insn.t list list) () =
  let kst, hash_fd, array_fd, spin_fd, ring_fd = fresh_kst ?config () in
  let insns = Asm.prog (build hash_fd array_fd spin_fd ring_fd) in
  let req = Verifier.request ~attach prog_type insns in
  let result = Verifier.verify kst ~cov:(Coverage.create ()) req in
  match expect, result with
  | Accept, Ok () -> ()
  | Accept, Error e ->
    Alcotest.fail
      (Printf.sprintf "%s: expected accept, got %s (pc=%d)" name
         e.Venv.vmsg e.Venv.vpc)
  | Reject _, Ok () ->
    Alcotest.fail (Printf.sprintf "%s: expected reject, got accept" name)
  | Reject fragment, Error e ->
    let contains needle haystack =
      let nl = String.length needle and hl = String.length haystack in
      let rec go i =
        i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
      in
      go 0
    in
    if fragment <> "" && not (contains fragment e.Venv.vmsg) then
      Alcotest.fail
        (Printf.sprintf "%s: expected %S in %S" name fragment e.Venv.vmsg)

let r0 = Insn.R0
let r1 = Insn.R1
let r2 = Insn.R2
let r3 = Insn.R3
let r6 = Insn.R6
let r7 = Insn.R7
let r10 = Insn.R10

let suite_cases =
  [
    ( "minimal return",
      Accept,
      fun _ _ _ _ -> [ Asm.ret 0l ] );
    ( "uninitialized register read",
      Reject "!read_ok",
      fun _ _ _ _ -> [ [ Asm.alu64_reg Insn.Add r0 r3 ]; Asm.ret 0l ] );
    ( "R0 not set at exit",
      Reject "R0 !read_ok",
      fun _ _ _ _ -> [ [ Asm.exit_ ] ] );
    ( "return range violation",
      Reject "At program exit",
      fun _ _ _ _ -> [ Asm.ret 7l ] );
    ( "write to frame pointer",
      Reject "frame pointer",
      fun _ _ _ _ -> [ [ Asm.mov64_imm r10 0l ]; Asm.ret 0l ] );
    ( "stack write/read ok",
      Accept,
      fun _ _ _ _ ->
        [ [ Asm.st_dw r10 (-8) 7l; Asm.ldx_dw r1 r10 (-8) ]; Asm.ret 0l ] );
    ( "stack out of bounds",
      Reject "invalid stack access",
      fun _ _ _ _ -> [ [ Asm.st_dw r10 (-520) 0l ]; Asm.ret 0l ] );
    ( "stack positive offset",
      Reject "invalid stack access",
      fun _ _ _ _ -> [ [ Asm.st_dw r10 0 0l ]; Asm.ret 0l ] );
    ( "uninitialized stack read",
      Reject "invalid read from stack",
      fun _ _ _ _ -> [ [ Asm.ldx_dw r1 r10 (-16) ]; Asm.ret 0l ] );
    ( "scalar dereference",
      Reject "'scalar'",
      fun _ _ _ _ ->
        [ [ Asm.mov64_imm r1 42l; Asm.ldx_dw r2 r1 0 ]; Asm.ret 0l ] );
    ( "ctx read ok",
      Accept,
      fun _ _ _ _ -> [ [ Asm.ldx_w r2 r1 0 ]; Asm.ret 0l ] );
    ( "ctx bad offset",
      Reject "invalid bpf_context access",
      fun _ _ _ _ -> [ [ Asm.ldx_w r2 r1 2 ]; Asm.ret 0l ] );
    ( "ctx write readonly field",
      Reject "read-only ctx field",
      fun _ _ _ _ -> [ [ Asm.st_w r1 0 0l ]; Asm.ret 0l ] );
    ( "ctx write writable field",
      Accept,
      fun _ _ _ _ -> [ [ Asm.st_w r1 8 0l ]; Asm.ret 0l ] );
    ( "map lookup flow (Table 1)",
      Accept,
      fun hash _ _ _ ->
        [ [ Asm.st_dw r10 (-8) 0l;
            Asm.ld_map_fd r1 hash;
            Asm.mov64_reg r2 r10;
            Asm.alu64_imm Insn.Add r2 (-8l);
            Asm.call 1;
            Asm.jmp_imm Insn.Jne r0 0l 2;
            Asm.mov64_imm r0 0l;
            Asm.exit_;
            Asm.st_dw r0 0 1l ];
          Asm.ret 0l ] );
    ( "map value deref without null check",
      Reject "map_value_or_null",
      fun hash _ _ _ ->
        [ [ Asm.st_dw r10 (-8) 0l;
            Asm.ld_map_fd r1 hash;
            Asm.mov64_reg r2 r10;
            Asm.alu64_imm Insn.Add r2 (-8l);
            Asm.call 1;
            Asm.ldx_dw r1 r0 0 ];
          Asm.ret 0l ] );
    ( "map value out of bounds",
      Reject "invalid access to map value",
      fun hash _ _ _ ->
        [ [ Asm.st_dw r10 (-8) 0l;
            Asm.ld_map_fd r1 hash;
            Asm.mov64_reg r2 r10;
            Asm.alu64_imm Insn.Add r2 (-8l);
            Asm.call 1;
            Asm.jmp_imm Insn.Jne r0 0l 2;
            Asm.mov64_imm r0 0l;
            Asm.exit_;
            Asm.st_dw r0 48 1l ];
          Asm.ret 0l ] );
    ( "uninitialized key to helper",
      Reject "uninitialized stack",
      fun hash _ _ _ ->
        [ [ Asm.ld_map_fd r1 hash;
            Asm.mov64_reg r2 r10;
            Asm.alu64_imm Insn.Add r2 (-8l);
            Asm.call 1 ];
          Asm.ret 0l ] );
    ( "direct map value access",
      Accept,
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.st_w r6 0 7l;
            Asm.ldx_w r2 r6 0 ];
          Asm.ret 0l ] );
    ( "unknown map fd",
      (* EBADF from fd resolution, before verification — like the
         kernel's resolve_pseudo_ldimm64 *)
      Reject "is not a map",
      fun _ _ _ _ -> [ [ Asm.ld_map_fd r1 999 ]; Asm.ret 0l ] );
    ( "bounded loop accepted",
      Accept,
      fun _ _ _ _ ->
        [ [ Asm.mov64_imm r6 0l;
            (* LOOP: *)
            Asm.alu64_imm Insn.Add r6 1l;
            Asm.jmp_imm Insn.Jlt r6 8l (-2) ];
          Asm.ret 0l ] );
    ( "unbounded loop rejected",
      Reject "",
      fun _ _ _ _ ->
        [ [ Asm.mov64_imm r6 0l;
            Asm.alu64_imm Insn.Add r6 1l;
            Asm.jmp_imm Insn.Jne r6 0l (-2) ];
          Asm.ret 0l ] );
    ( "jump out of range",
      Reject "out of range",
      fun _ _ _ _ -> [ [ Asm.ja 100 ]; Asm.ret 0l ] );
    ( "unreachable code",
      Reject "unreachable",
      fun _ _ _ _ ->
        [ [ Asm.ja 1; Asm.mov64_imm r6 0l ]; Asm.ret 0l ] );
    ( "fallthrough off end",
      Reject "",
      fun _ _ _ _ -> [ [ Asm.mov64_imm r0 0l ] ] );
    ( "bounds refinement allows masked access",
      Accept,
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.ldx_w r7 r1 0;
            Asm.alu64_imm Insn.And r7 15l;
            Asm.alu64_reg Insn.Add r6 r7;
            Asm.ldx_b r2 r6 0 ];
          Asm.ret 0l ] );
    ( "unbounded offset to map value",
      Reject "",
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.ldx_w r7 r1 0;
            Asm.alu64_imm Insn.Lsh r7 32l; (* genuinely unbounded *)
            Asm.alu64_reg Insn.Add r6 r7;
            Asm.ldx_b r2 r6 0 ];
          Asm.ret 0l ] );
    ( "branch-refined bound allows access",
      Accept,
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.ldx_w r7 r1 0;
            Asm.jmp_imm Insn.Jgt r7 40l 2;
            Asm.alu64_reg Insn.Add r6 r7;
            Asm.ldx_b r2 r6 0 ];
          Asm.ret 0l ] );
    ( "pointer leak at exit",
      Reject "leaks pointer",
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r0 array 0; Asm.exit_ ] ] );
    ( "pointer arithmetic on ctx",
      Reject "prohibited",
      fun _ _ _ _ ->
        [ [ Asm.mov64_reg r6 r1;
            Asm.mov64_imm r7 4l;
            Asm.alu64_reg Insn.Add r6 r7;
            Asm.ldx_w r2 r6 0 ];
          Asm.ret 0l ] );
    ( "pointer multiply",
      Reject "prohibited",
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.alu64_imm Insn.Mul r6 2l ];
          Asm.ret 0l ] );
    ( "32-bit pointer arithmetic",
      Reject "32-bit pointer arithmetic",
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.mov64_imm r7 1l;
            Asm.alu32_reg Insn.Add r6 r7 ];
          Asm.ret 0l ] );
    ( "helper for wrong prog type",
      Reject "not allowed for prog type",
      fun _ _ _ _ ->
        [ [ Asm.mov64_imm r1 9l;
            Asm.call Helper.send_signal.Helper.id ];
          Asm.ret 0l ] );
    ( "spin lock balanced",
      Accept,
      fun _ _ spin _ ->
        [ [ Asm.st_dw r10 (-8) 0l;
            Asm.ld_map_fd r1 spin;
            Asm.mov64_reg r2 r10;
            Asm.alu64_imm Insn.Add r2 (-8l);
            Asm.call 1;
            Asm.jmp_imm Insn.Jne r0 0l 2;
            Asm.mov64_imm r0 0l;
            Asm.exit_;
            Asm.mov64_reg r6 r0;
            Asm.mov64_reg r1 r6;
            Asm.call Helper.spin_lock.Helper.id;
            Asm.mov64_reg r1 r6;
            Asm.call Helper.spin_unlock.Helper.id ];
          Asm.ret 0l ] );
    ( "spin lock leaked",
      Reject "missing unlock",
      fun _ _ spin _ ->
        [ [ Asm.st_dw r10 (-8) 0l;
            Asm.ld_map_fd r1 spin;
            Asm.mov64_reg r2 r10;
            Asm.alu64_imm Insn.Add r2 (-8l);
            Asm.call 1;
            Asm.jmp_imm Insn.Jne r0 0l 2;
            Asm.mov64_imm r0 0l;
            Asm.exit_;
            Asm.mov64_reg r1 r0;
            Asm.call Helper.spin_lock.Helper.id ];
          Asm.ret 0l ] );
    ( "helper call inside lock section",
      Reject "inside bpf_spin_lock",
      fun _ _ spin _ ->
        [ [ Asm.st_dw r10 (-8) 0l;
            Asm.ld_map_fd r1 spin;
            Asm.mov64_reg r2 r10;
            Asm.alu64_imm Insn.Add r2 (-8l);
            Asm.call 1;
            Asm.jmp_imm Insn.Jne r0 0l 2;
            Asm.mov64_imm r0 0l;
            Asm.exit_;
            Asm.mov64_reg r6 r0;
            Asm.mov64_reg r1 r6;
            Asm.call Helper.spin_lock.Helper.id;
            Asm.call Helper.ktime_get_ns.Helper.id;
            Asm.mov64_reg r1 r6;
            Asm.call Helper.spin_unlock.Helper.id ];
          Asm.ret 0l ] );
    ( "direct spin lock field access",
      Reject "bpf_spin_lock area",
      fun _ _ spin _ ->
        [ [ Asm.st_dw r10 (-8) 0l;
            Asm.ld_map_fd r1 spin;
            Asm.mov64_reg r2 r10;
            Asm.alu64_imm Insn.Add r2 (-8l);
            Asm.call 1;
            Asm.jmp_imm Insn.Jne r0 0l 2;
            Asm.mov64_imm r0 0l;
            Asm.exit_;
            Asm.ldx_w r2 r0 0 ];
          Asm.ret 0l ] );
    ( "ringbuf reserve/submit",
      Accept,
      fun _ _ _ ring ->
        [ [ Asm.ld_map_fd r1 ring;
            Asm.mov64_imm r2 16l;
            Asm.mov64_imm r3 0l;
            Asm.call Helper.ringbuf_reserve.Helper.id;
            Asm.jmp_imm Insn.Jne r0 0l 2;
            Asm.mov64_imm r0 0l;
            Asm.exit_;
            Asm.mov64_reg r6 r0;
            Asm.st_dw r6 0 5l;
            Asm.mov64_reg r1 r6;
            Asm.mov64_imm r2 0l;
            Asm.call Helper.ringbuf_submit.Helper.id ];
          Asm.ret 0l ] );
    ( "ringbuf reference leak",
      Reject "Unreleased reference",
      fun _ _ _ ring ->
        [ [ Asm.ld_map_fd r1 ring;
            Asm.mov64_imm r2 16l;
            Asm.mov64_imm r3 0l;
            Asm.call Helper.ringbuf_reserve.Helper.id;
            Asm.jmp_imm Insn.Jne r0 0l 2;
            Asm.mov64_imm r0 0l;
            Asm.exit_ ];
          Asm.ret 0l ] );
    ( "ringbuf chunk out of bounds",
      Reject "",
      fun _ _ _ ring ->
        [ [ Asm.ld_map_fd r1 ring;
            Asm.mov64_imm r2 16l;
            Asm.mov64_imm r3 0l;
            Asm.call Helper.ringbuf_reserve.Helper.id;
            Asm.jmp_imm Insn.Jne r0 0l 2;
            Asm.mov64_imm r0 0l;
            Asm.exit_;
            Asm.mov64_reg r6 r0;
            Asm.st_dw r6 16 5l;
            Asm.mov64_reg r1 r6;
            Asm.mov64_imm r2 0l;
            Asm.call Helper.ringbuf_submit.Helper.id ];
          Asm.ret 0l ] );
    ( "bpf-to-bpf call",
      Accept,
      fun _ _ _ _ ->
        [ [ Asm.mov64_imm r1 5l;
            Asm.call_local 2;
            Asm.mov64_reg r0 r0;
            Asm.exit_;
            (* subprog: *)
            Asm.mov64_reg r0 r1;
            Asm.alu64_imm Insn.And r0 1l;
            Asm.exit_ ] ] );
    ( "too deep call chain",
      Reject "too deep",
      fun _ _ _ _ ->
        [ [ Asm.call_local 2;
            Asm.mov64_imm r0 0l;
            Asm.exit_;
            Asm.call_local (-1); (* self-recursion *)
            Asm.exit_ ] ] );
    ( "reserved register use",
      Reject "reserved",
      fun _ _ _ _ ->
        [ [ Asm.mov64_reg Insn.R11 r1 ]; Asm.ret 0l ] );
  ]

(* -- Extended cases: packet access, jmp32, atomics, endian, loops ------- *)

let r4 = Insn.R4
let r5 = Insn.R5

let extended_cases =
  [
    ( "packet access after bounds check",
      Accept,
      Prog.Xdp,
      fun _ _ _ _ ->
        [ [ Asm.ldx_w r2 r1 0;        (* data *)
            Asm.ldx_w r3 r1 4;        (* data_end *)
            Asm.mov64_reg r4 r2;
            Asm.alu64_imm Insn.Add r4 16l;
            Asm.jmp_reg Insn.Jgt r4 r3 2;
            Asm.ldx_dw r5 r2 0;
            Asm.ldx_dw r5 r2 8 ];
          Asm.ret 2l ] );
    ( "packet access without bounds check",
      Reject "invalid access to packet",
      Prog.Xdp,
      fun _ _ _ _ ->
        [ [ Asm.ldx_w r2 r1 0; Asm.ldx_dw r5 r2 0 ]; Asm.ret 2l ] );
    ( "packet access beyond proven range",
      Reject "invalid access to packet",
      Prog.Xdp,
      fun _ _ _ _ ->
        [ [ Asm.ldx_w r2 r1 0;
            Asm.ldx_w r3 r1 4;
            Asm.mov64_reg r4 r2;
            Asm.alu64_imm Insn.Add r4 8l;
            Asm.jmp_reg Insn.Jgt r4 r3 1;
            Asm.ldx_dw r5 r2 8 ];
          Asm.ret 2l ] );
    ( "packet write allowed on xdp",
      Accept,
      Prog.Xdp,
      fun _ _ _ _ ->
        [ [ Asm.ldx_w r2 r1 0;
            Asm.ldx_w r3 r1 4;
            Asm.mov64_reg r4 r2;
            Asm.alu64_imm Insn.Add r4 8l;
            Asm.jmp_reg Insn.Jgt r4 r3 1;
            Asm.st_w r2 0 7l ];
          Asm.ret 2l ] );
    ( "packet write rejected on socket filter",
      Reject "write into packet",
      Prog.Socket_filter,
      fun _ _ _ _ ->
        [ [ Asm.ldx_w r2 r1 76;       (* skb data *)
            Asm.ldx_w r3 r1 80;       (* skb data_end *)
            Asm.mov64_reg r4 r2;
            Asm.alu64_imm Insn.Add r4 8l;
            Asm.jmp_reg Insn.Jgt r4 r3 1;
            Asm.st_w r2 0 7l ];
          Asm.ret 0l ] );
    ( "jmp32 refinement bounds a masked access",
      Accept,
      Prog.Socket_filter,
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.ldx_w r7 r1 0;
            Asm.jmp32_imm Insn.Jgt r7 40l 2;
            Asm.alu64_reg Insn.Add r6 r7;
            Asm.ldx_b r2 r6 0 ];
          Asm.ret 0l ] );
    ( "atomic on the stack",
      Accept,
      Prog.Socket_filter,
      fun _ _ _ _ ->
        [ [ Asm.st_dw r10 (-8) 1l;
            Asm.mov64_imm r2 2l;
            Asm.atomic Insn.DW Insn.A_add r10 r2 (-8) ];
          Asm.ret 0l ] );
    ( "atomic fetch writes back the old value",
      Accept,
      Prog.Socket_filter,
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.mov64_imm r2 2l;
            Asm.atomic ~fetch:true Insn.DW Insn.A_xor r6 r2 0;
            Asm.alu64_imm Insn.And r2 1l ];
          Asm.ret 0l ] );
    ( "atomic on a scalar rejected",
      Reject "'scalar'",
      Prog.Socket_filter,
      fun _ _ _ _ ->
        [ [ Asm.mov64_imm r2 2l; Asm.mov64_imm r3 0l;
            Asm.atomic Insn.DW Insn.A_add r3 r2 0 ];
          Asm.ret 0l ] );
    ( "atomic with byte size rejected",
      Reject "atomic",
      Prog.Socket_filter,
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.mov64_imm r2 2l;
            Insn.Atomic { sz = Insn.B; op = Insn.A_add; fetch = false;
                          dst = r6; src = r2; off = 0 } ];
          Asm.ret 0l ] );
    ( "endian of a pointer rejected",
      Reject "byte swap",
      Prog.Socket_filter,
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Insn.Endian { swap = true; bits = 64; dst = r6 } ];
          Asm.ret 0l ] );
    ( "nested bounded loops",
      Accept,
      Prog.Socket_filter,
      fun _ _ _ _ ->
        [ [ Asm.mov64_imm r6 0l;
            (* outer: *)
            Asm.mov64_imm r7 0l;
            (* inner: *)
            Asm.alu64_imm Insn.Add r7 1l;
            Asm.jmp_imm Insn.Jlt r7 3l (-2);
            Asm.alu64_imm Insn.Add r6 1l;
            Asm.jmp_imm Insn.Jlt r6 3l (-5) ];
          Asm.ret 0l ] );
    ( "loop without progress rejected",
      Reject "infinite loop",
      Prog.Socket_filter,
      fun _ _ _ _ ->
        [ [ Asm.mov64_imm r6 0l;
            (* LOOP: the mask resets the counter every iteration *)
            Asm.alu64_imm Insn.Add r6 1l;
            Asm.alu64_imm Insn.And r6 0l;
            Asm.jmp_imm Insn.Jlt r6 2l (-3) ];
          Asm.ret 0l ] );
    ( "32-bit mov of pointer yields scalar",
      Reject "'scalar'",
      Prog.Socket_filter,
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.mov32_reg r7 r6;
            Asm.ldx_b r2 r7 0 ];
          Asm.ret 0l ] );
    ( "div by zero is verifier-legal",
      Accept,
      Prog.Socket_filter,
      fun _ _ _ _ ->
        [ [ Asm.mov64_imm r2 7l; Asm.mov64_imm r3 0l;
            Asm.alu64_reg Insn.Div r2 r3;
            Asm.alu64_reg Insn.Mod r2 r3 ];
          Asm.ret 0l ] );
  ]

let extended_suite_tests =
  List.map
    (fun (name, expect, prog_type, build) ->
       Alcotest.test_case name `Quick
         (check_program ~prog_type name expect build))
    extended_cases

(* -- Unprivileged mode (paper section 2) -------------------------------- *)

let unpriv_config =
  Kconfig.make ~unprivileged:true Version.Bpf_next

let unpriv_cases =
  [
    ( "unpriv: socket filter ok",
      Accept,
      fun _ _ _ _ -> [ Asm.ret 0l ] );
    ( "unpriv: tracing prog type refused",
      Reject "requires CAP_BPF",
      fun _ _ _ _ -> [ Asm.ret 0l ] );
    ( "unpriv: BTF object load refused",
      Reject "CAP_BPF",
      fun _ _ _ _ -> [ [ Asm.ld_btf_obj r6 1 ]; Asm.ret 0l ] );
    ( "unpriv: pointer leak into map refused",
      Reject "leaks addr",
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.stx_dw r6 r6 8 ];
          Asm.ret 0l ] );
    ( "unpriv: pointer comparison refused",
      Reject "pointer comparison",
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.ld_map_value r7 array 8;
            Asm.jmp_reg Insn.Jgt r6 r7 0 ];
          Asm.ret 0l ] );
    ( "unpriv: null check still allowed",
      Accept,
      fun hash _ _ _ ->
        [ [ Asm.st_dw r10 (-8) 0l;
            Asm.ld_map_fd r1 hash;
            Asm.mov64_reg r2 r10;
            Asm.alu64_imm Insn.Add r2 (-8l);
            Asm.call 1;
            Asm.jmp_imm Insn.Jne r0 0l 2;
            Asm.mov64_imm r0 0l;
            Asm.exit_;
            Asm.st_dw r0 0 1l ];
          Asm.ret 0l ] );
    ( "unpriv: pointer spill to stack allowed",
      Accept,
      fun _ array _ _ ->
        [ [ Asm.ld_map_value r6 array 0;
            Asm.stx_dw r10 r6 (-8);
            Asm.ldx_dw r7 r10 (-8);
            Asm.st_w r7 0 1l ];
          Asm.ret 0l ] );
  ]

let unpriv_suite_tests =
  List.map
    (fun (name, expect, build) ->
       let prog_type =
         if name = "unpriv: tracing prog type refused" then Prog.Kprobe
         else Prog.Socket_filter
       in
       Alcotest.test_case name `Quick
         (check_program ~config:unpriv_config ~prog_type name expect build))
    unpriv_cases

let program_suite_tests =
  List.map
    (fun (name, expect, build) ->
       Alcotest.test_case name `Quick (check_program name expect build))
    suite_cases

(* -- Patch / sanitize ------------------------------------------------------- *)

let test_patch_retarget () =
  let insns =
    [| Asm.jmp_imm Insn.Jeq r1 0l 1;
       Asm.mov64_imm r6 1l;
       Asm.mov64_imm r0 0l;
       Asm.exit_ |]
  in
  let aux = Array.init 4 (fun _ -> Venv.fresh_aux ()) in
  (* triple the mov at index 1 *)
  let out, _ =
    Patch.expand ~insns ~aux ~f:(fun i insn _ ->
        if i = 1 then
          Some [ Asm.mov64_imm r7 0l; Asm.mov64_imm r7 1l; insn ]
        else None)
  in
  Alcotest.(check int) "expanded" 6 (Array.length out);
  match out.(0) with
  | Insn.Jmp { off; _ } ->
    (* original target was index 2 (mov r0), now index 4 *)
    Alcotest.(check int) "retargeted" 3 off
  | _ -> Alcotest.fail "first insn changed kind"

let test_sanitize_skips () =
  (* R10-direct accesses are skipped, others instrumented *)
  let kst, _, array_fd, _, _ = fresh_kst () in
  let insns =
    Asm.prog
      [ [ Asm.st_dw r10 (-8) 1l;
          Asm.ld_map_value r6 array_fd 0;
          Asm.st_dw r6 0 1l ];
        Asm.ret 0l ]
  in
  match
    Verifier.load kst ~cov:(Coverage.create ())
      (Verifier.request Prog.Socket_filter insns)
  with
  | Error e -> Alcotest.fail e.Venv.vmsg
  | Ok loaded ->
    let asan_calls =
      Array.fold_left
        (fun acc i ->
           match i with
           | Insn.Call (Insn.Helper id) when id >= Helper.asan_base ->
             acc + 1
           | _ -> acc)
        0 loaded.Verifier.l_insns
    in
    Alcotest.(check int) "exactly one guarded access" 1 asan_calls

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bvf_verifier"
    [
      ( "tnum",
        [ Alcotest.test_case "basics" `Quick test_tnum_basics;
          qt tnum_add_sound; qt tnum_sub_sound; qt tnum_and_sound;
          qt tnum_or_sound; qt tnum_xor_sound; qt tnum_mul_sound;
          qt tnum_shift_sound; qt tnum_range_sound;
          qt tnum_intersect_sound ] );
      ( "regstate",
        [ Alcotest.test_case "const" `Quick test_regstate_const;
          Alcotest.test_case "sync deduce" `Quick
            test_regstate_sync_deduce;
          Alcotest.test_case "bottom" `Quick test_regstate_bottom;
          Alcotest.test_case "within" `Quick test_regstate_within;
          Alcotest.test_case "truncate32" `Quick
            test_regstate_truncate32 ] );
      ( "vstate",
        [ Alcotest.test_case "spill/fill" `Quick test_stack_spill_fill;
          Alcotest.test_case "zero tracking" `Quick
            test_stack_zero_tracking;
          Alcotest.test_case "init region" `Quick
            test_stack_initialized_region ] );
      ( "branches", [ qt verdict_sound; qt refine_sound ] );
      ("programs", program_suite_tests);
      ("extended", extended_suite_tests);
      ("unprivileged", unpriv_suite_tests);
      ( "rewrites",
        [ Alcotest.test_case "patch retarget" `Quick test_patch_retarget;
          Alcotest.test_case "sanitize skip list" `Quick
            test_sanitize_skips ] );
    ]
