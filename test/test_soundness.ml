(* Abstract-interpretation soundness properties.

   These are the load-bearing invariants of the whole reproduction:

   1. ALU transfer functions: for any abstract scalar states and any
      concrete members, the concrete result of an operation is a member
      of the abstract result (no under-approximation, which would let
      the verifier accept memory-unsafe programs and produce false
      correctness-bug reports).

   2. End-to-end oracle soundness: any structured program the FIXED
      verifier accepts executes without raising a single kernel report.
      This is exactly why a report from an accepted program can be
      blamed on the verifier (the paper's core argument). *)

module Word = Bvf_ebpf.Word
module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Helper = Bvf_ebpf.Helper
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Report = Bvf_kernel.Report
module Failslab = Bvf_kernel.Failslab
module Tnum = Bvf_verifier.Tnum
module Regstate = Bvf_verifier.Regstate
module Check_alu = Bvf_verifier.Check_alu
module Check_jmp = Bvf_verifier.Check_jmp
module Invariants = Bvf_verifier.Invariants
module Witness = Bvf_verifier.Witness
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Exec = Bvf_runtime.Exec
module Rng = Bvf_core.Rng
module Gen = Bvf_core.Gen
module Campaign = Bvf_core.Campaign
module Parallel = Bvf_core.Parallel
module Oracle = Bvf_core.Oracle
module Selftests = Bvf_core.Selftests

(* -- Membership ------------------------------------------------------------ *)

let member (r : Regstate.t) (x : int64) : bool =
  Regstate.is_scalar r
  && r.Regstate.smin <= x
  && x <= r.Regstate.smax
  && Word.ule r.Regstate.umin x
  && Word.ule x r.Regstate.umax
  && Tnum.contains r.Regstate.var_off x

(* Generate an abstract scalar together with one of its members. *)
let gen_abstract : (Regstate.t * int64) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let concrete =
    oneof
      [ map Int64.of_int (int_range (-1000) 1000);
        oneofl Rng.interesting_int64;
        map Int64.of_int int ]
  in
  let* x = concrete in
  let* shape = int_range 0 3 in
  match shape with
  | 0 -> return (Regstate.const_scalar x, x)
  | 1 ->
    (* an unsigned interval around x *)
    let* above = map Int64.of_int (int_range 0 4096) in
    let* below = map Int64.of_int (int_range 0 4096) in
    let lo = if Word.ult x below then 0L else Int64.sub x below in
    let hi =
      if Word.ult (Int64.add x above) x then -1L else Int64.add x above
    in
    return (Regstate.scalar_range ~umin:lo ~umax:hi, x)
  | 2 ->
    (* tnum knowledge: some bits of x known *)
    let* mask = map Int64.of_int (int_range 0 0xFFFFFF) in
    let t = { Tnum.value = Int64.logand x (Int64.lognot mask); mask } in
    return (Regstate.scalar_of_tnum t, x)
  | _ -> return (Regstate.unknown_scalar, x)

let alu_ops =
  [ (Insn.Add, Int64.add);
    (Insn.Sub, fun a b -> Int64.sub a b);
    (Insn.Mul, fun a b -> Int64.mul a b);
    (Insn.Div, Word.udiv);
    (Insn.Mod, Word.umod);
    (Insn.Or, Int64.logor);
    (Insn.And, Int64.logand);
    (Insn.Xor, Int64.logxor);
    (Insn.Lsh, Word.shl64);
    (Insn.Rsh, Word.shr64);
    (Insn.Arsh, Word.ashr64);
    (Insn.Mov, fun _ b -> b) ]

let alu64_abstract_sound =
  QCheck2.Test.make ~count:3000 ~name:"alu64 transfer functions sound"
    QCheck2.Gen.(triple (int_range 0 11) gen_abstract gen_abstract)
    (fun (opi, (ra, a), (rb, b)) ->
       let op, concrete = List.nth alu_ops opi in
       let abstract = Check_alu.scalar_op64 op ra rb in
       let result = concrete a b in
       if member abstract result then true
       else
         QCheck2.Test.fail_reportf
           "%s: %Ld op %Ld = %Ld not in %s (from %s, %s)"
           (Insn.alu_op_to_string op) a b result
           (Regstate.to_string abstract)
           (Regstate.to_string ra) (Regstate.to_string rb))

let alu32_abstract_sound =
  QCheck2.Test.make ~count:3000 ~name:"alu32 transfer functions sound"
    QCheck2.Gen.(triple (int_range 0 11) gen_abstract gen_abstract)
    (fun (opi, (ra, a), (rb, b)) ->
       let op, concrete = List.nth alu_ops opi in
       (* concrete 32-bit semantics: low words, zero-extended *)
       let result =
         match op with
         | Insn.Lsh -> Word.shl32 a b
         | Insn.Rsh -> Word.shr32 (Word.to_u32 a) b
         | Insn.Arsh -> Word.ashr32 a b
         | Insn.Div -> Word.to_u32 (Word.udiv (Word.to_u32 a) (Word.to_u32 b))
         | Insn.Mod -> Word.to_u32 (Word.umod (Word.to_u32 a) (Word.to_u32 b))
         | _ -> Word.to_u32 (concrete (Word.to_u32 a) (Word.to_u32 b))
       in
       let abstract = Check_alu.scalar_op32 op ra rb in
       if member abstract result then true
       else
         QCheck2.Test.fail_reportf
           "w%s: %Ld op %Ld = %Ld not in %s"
           (Insn.alu_op_to_string op) a b result
           (Regstate.to_string abstract))

let neg_abstract_sound =
  QCheck2.Test.make ~count:1000 ~name:"neg transfer function sound"
    gen_abstract
    (fun (r, x) ->
       member (Check_alu.scalar_op64 Insn.Neg r r) (Int64.neg x))

(* -- Word-boundary ALU soundness ------------------------------------------- *)

(* The kernel's scalar_mul guard exists for operands at the 32/64-bit
   word edges: both factors fit in 32 bits, so the unsigned product is
   exact, but it can still exceed S64_MAX and must not be copied into
   the signed bounds.  Anchor abstract operands at those edges. *)
let gen_boundary : (Regstate.t * int64) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let anchors =
    [ 0L; 1L; 2L; 3L; 0x7FFF_FFFFL; 0x8000_0000L; 0x8000_0001L;
      0xFFFF_FFFEL; 0xFFFF_FFFFL; 0x1_0000_0000L; 0x1_0000_0001L;
      0x7FFF_FFFF_FFFF_FFFEL; Int64.max_int; Int64.min_int; -2L; -1L ]
  in
  let* x = oneofl anchors in
  let* shape = int_range 0 2 in
  match shape with
  | 0 -> return (Regstate.const_scalar x, x)
  | 1 ->
    (* a narrow unsigned window starting at the anchor *)
    let* w = oneofl [ 1L; 0xFFL; 0xFFFFL; 0xFFFF_FFFFL ] in
    let hi = Int64.add x w in
    let hi = if Word.ult hi x then -1L (* wrapped: open to U64_MAX *) else hi in
    return (Regstate.scalar_range ~umin:x ~umax:hi, x)
  | _ -> return (Regstate.unknown_scalar, x)

let mul_boundary_sound =
  QCheck2.Test.make ~count:3000 ~name:"mul sound at word boundaries"
    QCheck2.Gen.(pair gen_boundary gen_boundary)
    (fun ((ra, a), (rb, b)) ->
       let r64 = Check_alu.scalar_op64 Insn.Mul ra rb in
       let p64 = Int64.mul a b in
       let r32 = Check_alu.scalar_op32 Insn.Mul ra rb in
       let p32 = Word.to_u32 (Int64.mul (Word.to_u32 a) (Word.to_u32 b)) in
       if member r64 p64 && member r32 p32 then true
       else
         QCheck2.Test.fail_reportf
           "mul: %Ld * %Ld: 64-bit %Ld in %s = %b, 32-bit %Ld in %s = %b"
           a b p64 (Regstate.to_string r64) (member r64 p64)
           p32 (Regstate.to_string r32) (member r32 p32))

let shift_boundary_sound =
  QCheck2.Test.make ~count:3000 ~name:"shifts sound at word boundaries"
    QCheck2.Gen.(triple (int_range 0 2) gen_boundary (int_range 0 63))
    (fun (opi, (ra, a), sh) ->
       let op = List.nth [ Insn.Lsh; Insn.Rsh; Insn.Arsh ] opi in
       let s = Int64.of_int sh in
       let rs = Regstate.const_scalar s in
       let c64 =
         match op with
         | Insn.Lsh -> Word.shl64 a s
         | Insn.Rsh -> Word.shr64 a s
         | _ -> Word.ashr64 a s
       in
       let c32 =
         match op with
         | Insn.Lsh -> Word.shl32 a s
         | Insn.Rsh -> Word.shr32 (Word.to_u32 a) s
         | _ -> Word.ashr32 a s
       in
       let r64 = Check_alu.scalar_op64 op ra rs in
       let r32 = Check_alu.scalar_op32 op ra rs in
       if member r64 c64 && member r32 c32 then true
       else
         QCheck2.Test.fail_reportf
           "%s: %Ld shift %d: 64-bit %Ld in %s = %b, 32-bit %Ld in %s = %b"
           (Insn.alu_op_to_string op) a sh c64 (Regstate.to_string r64)
           (member r64 c64) c32 (Regstate.to_string r32) (member r32 c32))

(* Regression for the scalar_mul S64 overflow bug: with both operands in
   [0, U32_MAX] the unsigned product U32_MAX * U32_MAX is exact but
   >= 2^63, i.e. negative as a signed value — the transfer function must
   fall back to unbounded signed range instead of claiming smin = 0
   (the kernel's adjust_scalar_min_max_vals BPF_MUL guard). *)
let test_mul_overflow_regression () =
  let a = Regstate.scalar_range ~umin:0L ~umax:0xFFFF_FFFFL in
  let r = Check_alu.scalar_op64 Insn.Mul a a in
  let product = Int64.mul 0xFFFF_FFFFL 0xFFFF_FFFFL in
  Alcotest.(check bool)
    (Printf.sprintf "U32_MAX^2 = %Ld is a member of %s" product
       (Regstate.to_string r))
    true (member r product);
  Alcotest.(check bool) "no smin = 0 claim" true (r.Regstate.smin < 0L);
  Alcotest.(check int64) "unsigned product still exact" product
    r.Regstate.umax

(* And the safe case keeps the kernel's tight bounds: product below
   S64_MAX, so signed bounds mirror the unsigned ones. *)
let test_mul_safe_bounds () =
  let d = Regstate.scalar_range ~umin:2L ~umax:10L in
  let s = Regstate.scalar_range ~umin:3L ~umax:7L in
  let r = Check_alu.scalar_op64 Insn.Mul d s in
  Alcotest.(check int64) "umin" 6L r.Regstate.umin;
  Alcotest.(check int64) "umax" 70L r.Regstate.umax;
  Alcotest.(check int64) "smin = umin" 6L r.Regstate.smin;
  Alcotest.(check int64) "smax = umax" 70L r.Regstate.smax

(* sync never drops members *)
let sync_preserves_members =
  QCheck2.Test.make ~count:2000 ~name:"bounds sync preserves members"
    gen_abstract
    (fun (r, x) -> member (Regstate.sync r) x)

(* truncate32 contains the zero-extended member *)
let truncate_sound =
  QCheck2.Test.make ~count:2000 ~name:"truncate32 sound"
    gen_abstract
    (fun (r, x) -> member (Regstate.truncate32 r) (Word.to_u32 x))

(* -- End-to-end oracle soundness ------------------------------------------- *)

(* Structured programs accepted by the FIXED verifier never raise a
   report at runtime: the foundation of "any report from an accepted
   program is a verifier bug". *)
let oracle_soundness =
  QCheck2.Test.make ~count:400 ~name:"fixed kernel: accepted => clean run"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
       let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
       let maps = Campaign.standard_maps session in
       let cfg = { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps } in
       let rng = Rng.create seed in
       let req = Gen.generate rng cfg in
       match Loader.load_and_run session req with
       | { Loader.verdict = Error _; _ } -> true (* rejected: vacuous *)
       | { Loader.verdict = Ok _; reports = []; _ } -> true
       | { Loader.verdict = Ok _; reports; _ } ->
         QCheck2.Test.fail_reportf
           "accepted program raised: %s\n%s"
           (String.concat "; "
              (List.map Bvf_kernel.Report.to_string reports))
           (Bvf_ebpf.Disasm.prog_to_string req.Verifier.r_insns))

(* The mirror property for mutants: whatever mutation does, the fixed
   kernel never lets a report-raising program through. *)
let oracle_soundness_mutants =
  QCheck2.Test.make ~count:300 ~name:"fixed kernel: mutants too"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
       let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
       let maps = Campaign.standard_maps session in
       let cfg = { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps } in
       let rng = Rng.create seed in
       let req = Gen.generate rng cfg in
       let req = Bvf_core.Mutate.mutate_request rng ~version:Version.Bpf_next req in
       match Loader.load_and_run session req with
       | { Loader.verdict = Error _; _ } -> true
       | { Loader.verdict = Ok _; reports = []; _ } -> true
       | { Loader.verdict = Ok _; reports; _ } ->
         QCheck2.Test.fail_reportf "mutant raised: %s"
           (String.concat "; "
              (List.map Bvf_kernel.Report.to_string reports)))

(* Decode of an encode of an accepted program is accepted with the same
   verdict: the wire format round-trip composes with verification. *)
let encode_verify_consistent =
  QCheck2.Test.make ~count:200 ~name:"encode/decode preserves verdict"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
       let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
       let maps = Campaign.standard_maps session in
       let cfg = { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps } in
       let rng = Rng.create seed in
       let req = Gen.generate rng cfg in
       let cov = Bvf_verifier.Coverage.create () in
       let direct = Verifier.verify session.Loader.kst ~cov req in
       match Bvf_ebpf.Encode.decode (Bvf_ebpf.Encode.encode req.Verifier.r_insns) with
       | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e.Bvf_ebpf.Encode.reason
       | Ok insns ->
         let roundtrip =
           Verifier.verify session.Loader.kst ~cov
             { req with Verifier.r_insns = insns }
         in
         Result.is_ok direct = Result.is_ok roundtrip)

(* -- Tnum properties at Int64 boundaries ------------------------------------ *)

let int64_anchors =
  [ 0L; 1L; 2L; 7L; 0x7FL; 0xFFL; 0xFFFFL; 0x7FFF_FFFFL; 0x8000_0000L;
    0xFFFF_FFFFL; 0x1_0000_0000L; 0x7FFF_FFFF_FFFF_FFFEL; Int64.max_int;
    Int64.min_int; Int64.add Int64.min_int 1L; -1L; -2L; -4096L ]

let gen_int64_boundary : int64 QCheck2.Gen.t =
  QCheck2.Gen.(
    oneof
      [ oneofl int64_anchors;
        map Int64.of_int int;
        (* wiggle around the anchors to probe wraparound *)
        map2
          (fun a d -> Int64.add a (Int64.of_int d))
          (oneofl int64_anchors) (int_range (-2) 2) ])

(* A tnum together with one of its members: fix the bits outside [mask]
   to the member's bits. *)
let gen_tnum_member : (Tnum.t * int64) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* x = gen_int64_boundary in
  let* mask =
    oneof
      [ oneofl
          [ 0L; 1L; 0xFFL; 0xFF00L; 0xFFFF_FFFFL; Int64.min_int; -1L;
            0x8000_0000_0000_000FL ];
        map Int64.of_int int ]
  in
  return ({ Tnum.value = Int64.logand x (Int64.lognot mask); mask }, x)

let tnum_member_bounds =
  QCheck2.Test.make ~count:3000 ~long_factor:10 ~name:"tnum umin/umax bracket members"
    gen_tnum_member
    (fun (t, x) ->
       Tnum.contains t x
       && Word.ule (Tnum.umin t) x
       && Word.ule x (Tnum.umax t))

let tnum_range_sound =
  QCheck2.Test.make ~count:3000 ~long_factor:10 ~name:"tnum_range covers its interval"
    QCheck2.Gen.(triple gen_int64_boundary gen_int64_boundary
                   gen_int64_boundary)
    (fun (a, b, c) ->
       let min, max = if Word.ule a b then (a, b) else (b, a) in
       let t = Tnum.range ~min ~max in
       Tnum.contains t min && Tnum.contains t max
       && Word.ule (Tnum.umin t) min
       && Word.uge (Tnum.umax t) max
       && (if Word.ule min c && Word.ule c max then Tnum.contains t c
           else true))

let tnum_subset_sound =
  QCheck2.Test.make ~count:3000 ~long_factor:10 ~name:"tnum subset agrees with refinement"
    QCheck2.Gen.(pair gen_tnum_member (map Int64.of_int int))
    (fun ((ta, x), r) ->
       (* tb fixes some of ta's unknown bits to x's values: a refinement *)
       let m' = Int64.logand ta.Tnum.mask r in
       let tb = { Tnum.value = Int64.logand x (Int64.lognot m'); mask = m' } in
       Tnum.subset ~of_:ta ta
       && Tnum.subset ~of_:ta tb
       && Tnum.contains ta x && Tnum.contains tb x)

let tnum_meet_join_sound =
  QCheck2.Test.make ~count:3000 ~long_factor:10 ~name:"tnum intersect/union sound"
    QCheck2.Gen.(triple gen_tnum_member gen_tnum_member
                   (map Int64.of_int int))
    (fun ((ta, a), (tb, b), r) ->
       (* two abstractions of the same value: their meet keeps it *)
       let m' = Int64.logand ta.Tnum.mask r in
       let ta' = { Tnum.value = Int64.logand a (Int64.lognot m'); mask = m' } in
       Tnum.contains (Tnum.intersect ta ta') a
       && Tnum.contains (Tnum.union ta tb) a
       && Tnum.contains (Tnum.union ta tb) b)

let tnum_ops =
  [ ("add", Tnum.add, Int64.add);
    ("sub", Tnum.sub, Int64.sub);
    ("and", Tnum.and_, Int64.logand);
    ("or", Tnum.or_, Int64.logor);
    ("xor", Tnum.xor, Int64.logxor);
    ("mul", Tnum.mul, Int64.mul) ]

let tnum_ops_boundary_sound =
  QCheck2.Test.make ~count:4000 ~long_factor:10 ~name:"tnum binary ops sound at boundaries"
    QCheck2.Gen.(triple (int_range 0 5) gen_tnum_member gen_tnum_member)
    (fun (opi, (ta, a), (tb, b)) ->
       let name, fa, fc = List.nth tnum_ops opi in
       let t = fa ta tb and c = fc a b in
       if Tnum.contains t c then true
       else
         QCheck2.Test.fail_reportf "tnum %s: %Ld op %Ld = %Ld not in %s"
           name a b c (Tnum.to_string t))

let tnum_shift_cast_sound =
  QCheck2.Test.make ~count:3000 ~long_factor:10 ~name:"tnum shifts and casts sound"
    QCheck2.Gen.(pair gen_tnum_member (int_range 0 63))
    (fun ((ta, a), k) ->
       let k64 = Int64.of_int k in
       Tnum.contains (Tnum.lshift ta k) (Word.shl64 a k64)
       && Tnum.contains (Tnum.rshift ta k) (Word.shr64 a k64)
       && Tnum.contains (Tnum.arshift ta k ~bits:64) (Word.ashr64 a k64)
       && Tnum.contains (Tnum.cast ta ~size:4) (Word.to_u32 a)
       && Tnum.contains (Tnum.cast ta ~size:2) (Int64.logand a 0xFFFFL)
       && Tnum.contains (Tnum.cast ta ~size:1) (Int64.logand a 0xFFL))

(* -- Widening at loop heads --------------------------------------------------- *)

(* Threshold sets harvested from arbitrary programs: any boundary
   constants, on top of the fixed base the module always includes. *)
let gen_threshold_consts : int64 list QCheck2.Gen.t =
  QCheck2.Gen.(list_size (int_range 0 6) gen_int64_boundary)

(* Tnum widening is extensive (absorbs both arguments, hence their
   union) and idempotent: once [b] is absorbed, widening against it
   again changes nothing — the loop-head chain stabilizes. *)
let tnum_widen_sound =
  QCheck2.Test.make ~count:3000 ~long_factor:10
    ~name:"tnum widen absorbs both sides and stabilizes"
    QCheck2.Gen.(pair gen_tnum_member gen_tnum_member)
    (fun ((ta, a), (tb, b)) ->
       let w = Tnum.widen ta tb in
       Tnum.contains w a && Tnum.contains w b
       && Tnum.subset ~of_:w ta
       && Tnum.subset ~of_:w tb
       && Tnum.subset ~of_:w (Tnum.union ta tb)
       && Tnum.widen w tb = w)

(* Register widening under arbitrary thresholds: the result subsumes
   both inputs ([reg_within], the analyzer's pruning order) and keeps
   both concrete members; a second round against the same incoming
   state is the identity.  gen_abstract only builds sync-stable
   scalars, matching what the analyzer feeds the operator. *)
let reg_widen_sound =
  QCheck2.Test.make ~count:3000 ~long_factor:10
    ~name:"range widening absorbs both sides and stabilizes"
    QCheck2.Gen.(quad gen_threshold_consts bool gen_abstract gen_abstract)
    (fun (consts, force, (old_r, a), (cur_r, b)) ->
       let th = Regstate.mk_thresholds consts in
       match Regstate.widen ~th ~force ~old:old_r ~cur:cur_r with
       | None ->
         QCheck2.Test.fail_reportf "scalar pair refused to widen: %s / %s"
           (Regstate.to_string old_r) (Regstate.to_string cur_r)
       | Some w ->
         member w a && member w b
         && Regstate.reg_within ~old:w ~cur:old_r ~bug3:false
         && Regstate.reg_within ~old:w ~cur:cur_r ~bug3:false
         && (match Regstate.widen ~th ~force ~old:w ~cur:cur_r with
             | Some w' -> w' = w
             | None -> false))

(* -- Branch transfer functions (Check_jmp) ----------------------------------- *)

let conds =
  [ Insn.Jeq; Insn.Jne; Insn.Jgt; Insn.Jge; Insn.Jlt; Insn.Jle;
    Insn.Jsgt; Insn.Jsge; Insn.Jslt; Insn.Jsle; Insn.Jset ]

(* Mirror of the executor's eval_cond: zero-extend for unsigned and
   equality at 32 bits, sign-extend the low word for signed. *)
let eval_cond (op32 : bool) (cond : Insn.cond) (d : int64) (s : int64) :
  bool =
  let d, s = if op32 then (Word.to_u32 d, Word.to_u32 s) else (d, s) in
  let ds, ss = if op32 then (Word.sext32 d, Word.sext32 s) else (d, s) in
  match cond with
  | Insn.Jeq -> d = s
  | Insn.Jne -> d <> s
  | Insn.Jgt -> Word.ugt d s
  | Insn.Jge -> Word.uge d s
  | Insn.Jlt -> Word.ult d s
  | Insn.Jle -> Word.ule d s
  | Insn.Jsgt -> ds > ss
  | Insn.Jsge -> ds >= ss
  | Insn.Jslt -> ds < ss
  | Insn.Jsle -> ds <= ss
  | Insn.Jset -> Int64.logand d s <> 0L

let jmp_verdict_sound =
  QCheck2.Test.make ~count:6000 ~long_factor:10 ~name:"branch verdicts sound at both widths"
    QCheck2.Gen.(quad (int_range 0 10) bool gen_abstract gen_abstract)
    (fun (ci, op32, (rd, a), (rs, b)) ->
       let cond = List.nth conds ci in
       let holds = eval_cond op32 cond a b in
       match Check_jmp.branch_verdict_width ~op32 cond rd rs with
       | Check_jmp.Always when not holds ->
         QCheck2.Test.fail_reportf
           "%s%s: claimed Always but %Ld vs %Ld is false (%s vs %s)"
           (if op32 then "w-" else "") (Insn.cond_to_string cond) a b
           (Regstate.to_string rd) (Regstate.to_string rs)
       | Check_jmp.Never when holds ->
         QCheck2.Test.fail_reportf
           "%s%s: claimed Never but %Ld vs %Ld is true (%s vs %s)"
           (if op32 then "w-" else "") (Insn.cond_to_string cond) a b
           (Regstate.to_string rd) (Regstate.to_string rs)
       | _ -> true)

let jmp_refine_sound =
  QCheck2.Test.make ~count:6000
    ~name:"branch refinement keeps the concrete witnesses"
    QCheck2.Gen.(quad (int_range 0 10) bool gen_abstract gen_abstract)
    (fun (ci, op32, (rd, a), (rs, b)) ->
       let cond = List.nth conds ci in
       let holds = eval_cond op32 cond a b in
       let branch neg =
         let want = if neg then not holds else holds in
         if not want then true
         else
           match Check_jmp.refine_width ~op32 ~neg cond rd rs with
           | None ->
             QCheck2.Test.fail_reportf
               "%s%s neg=%b: claimed contradiction, but (%Ld, %Ld) \
                satisfies it"
               (if op32 then "w-" else "") (Insn.cond_to_string cond) neg a
               b
           | Some (rd', rs') ->
             if member rd' a && member rs' b then true
             else
               QCheck2.Test.fail_reportf
                 "%s%s neg=%b: refined away witness (%Ld, %Ld): %s / %s"
                 (if op32 then "w-" else "") (Insn.cond_to_string cond) neg
                 a b (Regstate.to_string rd') (Regstate.to_string rs')
       in
       branch false && branch true)

(* Regression: a 32-bit signed compare reads the low word sign-extended,
   so the zero-extended bounds of truncate32 must not be used as-is —
   0x8000_0000 is negative to w-Jsgt even though its u32 value is 2^31. *)
let test_jsgt32_sign_extension_regression () =
  let d = Regstate.const_scalar 0x8000_0000L in
  let s = Regstate.const_scalar 0L in
  (match Check_jmp.branch_verdict_width ~op32:true Insn.Jsgt d s with
   | Check_jmp.Never -> ()
   | Check_jmp.Always -> Alcotest.fail "w-Jsgt 0x80000000 > 0 claimed Always"
   | Check_jmp.Unknown -> ());
  (* and the 64-bit view still sees a positive value *)
  match Check_jmp.branch_verdict_width ~op32:false Insn.Jsgt d s with
  | Check_jmp.Always -> ()
  | _ -> Alcotest.fail "64-bit Jsgt 0x80000000 > 0 should be Always"

(* -- Invariant lint ----------------------------------------------------------- *)

let no_violations name r =
  let vs = Invariants.check_reg r in
  Alcotest.(check int)
    (Printf.sprintf "%s is well formed (%s)" name
       (String.concat ", "
          (List.map (fun (c, _) -> Invariants.check_to_string c) vs)))
    0 (List.length vs)

let has_violation name check r =
  Alcotest.(check bool)
    (Printf.sprintf "%s trips %s" name (Invariants.check_to_string check))
    true
    (List.exists (fun (c, _) -> c = check) (Invariants.check_reg r))

let test_invariants_clean_states () =
  no_violations "const 7" (Regstate.const_scalar 7L);
  no_violations "const -1" (Regstate.const_scalar (-1L));
  no_violations "unknown" Regstate.unknown_scalar;
  no_violations "range [3,9]" (Regstate.scalar_range ~umin:3L ~umax:9L);
  no_violations "tnum scalar"
    (Regstate.scalar_of_tnum { Tnum.value = 2L; mask = 5L });
  no_violations "not_init" Regstate.not_init;
  no_violations "ctx pointer" Regstate.ctx_pointer;
  no_violations "stack pointer" (Regstate.fp 0);
  no_violations "nullable ptr"
    (Regstate.pointer ~maybe_null:true ~id:3 Regstate.P_ctx)

let test_invariants_flag_corruption () =
  has_violation "umin > umax" Invariants.C_unsigned_order
    { (Regstate.const_scalar 5L) with Regstate.umax = 3L };
  has_violation "smin > smax" Invariants.C_signed_order
    { (Regstate.const_scalar 5L) with Regstate.smin = 6L };
  has_violation "tnum value&mask overlap" Invariants.C_tnum_wellformed
    { Regstate.unknown_scalar with
      Regstate.var_off = { Tnum.value = 1L; mask = 1L } };
  has_violation "32-bit tnum, 33-bit umax" Invariants.C_bounds32
    { (Regstate.const_scalar 5L) with Regstate.umax = 0x1_0000_0000L };
  has_violation "known-negative sign bit, smin >= 0" Invariants.C_sign_bit
    { (Regstate.const_scalar (-1L)) with Regstate.smin = 0L;
      smax = 0L };
  has_violation "stale bounds" Invariants.C_sync_stable
    { Regstate.unknown_scalar with Regstate.umin = 1L; umax = 2L;
      var_off = { Tnum.value = 0L; mask = 5L } };
  has_violation "nullable without id" Invariants.C_nullable_id
    (Regstate.pointer ~maybe_null:true Regstate.P_ctx)

(* The sync fixpoint regression the lint caught: one propagation round
   leaves var_off tighter than the unsigned range it implies. *)
let test_sync_fixpoint_regression () =
  let r =
    { Regstate.unknown_scalar with Regstate.umin = 1L; umax = 2L;
      var_off = { Tnum.value = 0L; mask = 5L } }
  in
  let s = Regstate.sync r in
  Alcotest.(check bool) "sync reaches a fixpoint" true
    (Regstate.equal_bounds s (Regstate.sync_round s));
  Alcotest.(check bool) "the only member survives" true (member s 1L);
  no_violations "post-sync state" s

(* -- Witness domain ----------------------------------------------------------- *)

let test_witness_domain () =
  let w v = Witness.of_reg v in
  let scalar5 = w (Regstate.const_scalar 5L) in
  Alcotest.(check bool) "const 5 contains 5" true
    (Witness.contains scalar5 5L);
  Alcotest.(check bool) "const 5 excludes 6" false
    (Witness.contains scalar5 6L);
  Alcotest.(check bool) "unknown scalar is top" true
    (Witness.contains (w Regstate.unknown_scalar) 0xDEADL);
  Alcotest.(check bool) "uninit is top" true
    (Witness.contains (w Regstate.not_init) 0L);
  let nonnull = w Regstate.ctx_pointer in
  Alcotest.(check bool) "non-null ptr excludes NULL page" false
    (Witness.contains nonnull 8L);
  Alcotest.(check bool) "non-null ptr admits mapped addresses" true
    (Witness.contains nonnull 0x1000L);
  Alcotest.(check bool) "maybe_null ptr is top (runtime may be NULL)" true
    (Witness.contains
       (w (Regstate.pointer ~maybe_null:true ~id:1 Regstate.P_ctx)) 0L);
  let j = Witness.join (w (Regstate.const_scalar 1L))
      (w (Regstate.const_scalar 5L)) in
  Alcotest.(check bool) "join keeps both members" true
    (Witness.contains j 1L && Witness.contains j 5L);
  Alcotest.(check bool) "join excludes off-hull values" false
    (Witness.contains j 7L)

let witness_join_sound =
  QCheck2.Test.make ~count:2000 ~long_factor:10 ~name:"witness join absorbs both sides"
    QCheck2.Gen.(pair gen_abstract gen_abstract)
    (fun ((ra, a), (rb, b)) ->
       let j = Witness.join (Witness.of_reg ra) (Witness.of_reg rb) in
       Witness.contains j a && Witness.contains j b)

let witness_of_reg_sound =
  QCheck2.Test.make ~count:2000 ~long_factor:10 ~name:"witness domain contains members"
    gen_abstract
    (fun (r, x) -> Witness.contains (Witness.of_reg r) x)

(* -- Clean verifier: zero lint, zero witness escapes -------------------------- *)

let test_clean_corpus_no_lint_no_witness () =
  let version = Version.Bpf_next in
  let config =
    Kconfig.with_witness (Kconfig.with_lint (Kconfig.fixed version) true)
      true
  in
  let suite = Selftests.build ~config version in
  let session = suite.Selftests.session in
  let cov = Bvf_verifier.Coverage.create () in
  let lint_total = ref 0 and witness_total = ref 0 and ran = ref 0 in
  List.iter
    (fun req ->
       let _, _, n = Verifier.lint session.Loader.kst ~cov req in
       lint_total := !lint_total + n;
       match Loader.load_and_run session req with
       | { Loader.verdict = Ok _; witness; reports = []; _ } ->
         incr ran;
         witness_total := !witness_total + List.length witness
       | { Loader.verdict = Ok _; reports = r :: _; _ } ->
         Alcotest.failf "selftest raised %s" (Report.to_string r)
       | { Loader.verdict = Error e; _ } ->
         Alcotest.failf "selftest rejected: %s" e.Bvf_verifier.Venv.vmsg)
    suite.Selftests.requests;
  Alcotest.(check bool) "corpus is non-trivial" true (!ran >= 700);
  Alcotest.(check int) "zero invariant violations" 0 !lint_total;
  Alcotest.(check int) "zero witness escapes" 0 !witness_total

(* -- Witness oracle: directed reproducers through the campaign --------------- *)

(* Bug#3 shape: a kfunc-derived scalar bounded on one arm of a branch
   whose arms converge immediately.  The sound verifier re-verifies the
   unbounded arm; the buggy pruning treats kfunc scalars as
   interchangeable, so the recorded witness claims r6 <= 7 while the
   concrete run arrives with r6 = 1000. *)
let bug3_witness_request () : Verifier.request =
  Verifier.request Prog.Kprobe
    [| Asm.mov64_imm Insn.R1 1000l;
       Asm.call_kfunc Helper.kfunc_obj_id.Helper.kid;
       Asm.mov64_reg Insn.R6 Insn.R0;
       Asm.jmp_imm Insn.Jgt Insn.R6 7l 0;
       Asm.mov64_imm Insn.R0 0l;
       Asm.exit_ |]

(* CVE-2022-23222 shape: arithmetic on a maybe-null map value (only
   permitted by the buggy verifier), then a null check that marks every
   copy of the id as the constant 0 — but the concrete copy already
   carries the offset, escaping the claimed {0}. *)
let cve_witness_request (cfg : Gen.config) : Verifier.request =
  let fd =
    match
      List.find_opt
        (fun (_, d) ->
           d.Map.mtype = Map.Hash_map && not d.Map.has_spin_lock)
        cfg.Gen.c_maps
    with
    | Some (fd, _) -> fd
    | None -> Alcotest.fail "campaign session has no plain hash map"
  in
  Verifier.request Prog.Kprobe
    [| Asm.st_dw Insn.R10 (-8) 0l;
       Asm.ld_map_fd Insn.R1 fd;
       Asm.mov64_reg Insn.R2 Insn.R10;
       Asm.alu64_imm Insn.Add Insn.R2 (-8l);
       Asm.call Helper.map_lookup_elem.Helper.id;
       Asm.mov64_reg Insn.R6 Insn.R0;
       Asm.alu64_imm Insn.Add Insn.R6 8l;
       Asm.jmp_imm Insn.Jne Insn.R0 0l 2;
       Asm.mov64_imm Insn.R0 0l;
       Asm.exit_;
       Asm.mov64_imm Insn.R0 0l;
       Asm.exit_ |]

let directed (mk : Gen.config -> Verifier.request) : Campaign.strategy =
  { Campaign.s_name = "directed"; s_feedback = false;
    s_generate = (fun _rng cfg _seed -> mk cfg) }

let witness_finding_for (bug : Kconfig.bug) (stats : Campaign.stats) :
  Campaign.found option =
  Hashtbl.fold
    (fun _ (f : Campaign.found) acc ->
       match f.Campaign.fd_finding.Oracle.f_report.Report.kind with
       | Report.Witness_escape _
         when f.Campaign.fd_finding.Oracle.f_bug = Some bug ->
         Some f
       | _ -> acc)
    stats.Campaign.st_findings None

let run_directed_campaign (bug : Kconfig.bug)
    (mk : Gen.config -> Verifier.request) : Campaign.t =
  let config =
    Kconfig.with_witness (Kconfig.make Version.Bpf_next ~bugs:[ bug ]) true
  in
  let c = Campaign.create ~seed:7 (directed mk) config in
  for _ = 1 to 4 do Campaign.step c done;
  c

let test_bug3_flagged_as_witness_escape () =
  let c =
    run_directed_campaign Kconfig.Bug3_backtrack_precision (fun _ ->
        bug3_witness_request ())
  in
  match
    witness_finding_for Kconfig.Bug3_backtrack_precision
      c.Campaign.stats
  with
  | Some f ->
    let fi = f.Campaign.fd_finding in
    Alcotest.(check bool) "classified as indicator#3" true
      (fi.Oracle.f_indicator = Some Oracle.Ind3);
    Alcotest.(check bool) "a verifier correctness bug" true
      fi.Oracle.f_correctness
  | None -> Alcotest.fail "bug3 witness escape not found"

let test_cve_flagged_as_witness_escape () =
  let c = run_directed_campaign Kconfig.Cve_2022_23222 cve_witness_request in
  match witness_finding_for Kconfig.Cve_2022_23222 c.Campaign.stats with
  | Some f ->
    Alcotest.(check bool) "classified as indicator#3" true
      (f.Campaign.fd_finding.Oracle.f_indicator = Some Oracle.Ind3)
  | None -> Alcotest.fail "CVE witness escape not found"

(* Control: the fixed verifier re-verifies the pruned arm (Bug#3 shape
   runs clean) and rejects the CVE shape outright. *)
let test_witness_clean_controls () =
  let config =
    Kconfig.with_witness (Kconfig.fixed Version.Bpf_next) true
  in
  let session = Loader.create config in
  let maps = Campaign.standard_maps session in
  (match Loader.load_and_run session (bug3_witness_request ()) with
   | { Loader.verdict = Ok _; witness = []; reports = []; _ } -> ()
   | { Loader.verdict = Ok _; witness = w :: _; _ } ->
     Alcotest.failf "clean verifier produced a witness escape: %s"
       (Report.to_string w)
   | { Loader.verdict = Ok _; reports = r :: _; _ } ->
     Alcotest.failf "clean run raised %s" (Report.to_string r)
   | { Loader.verdict = Error e; _ } ->
     Alcotest.failf "bug3 shape rejected by fixed verifier: %s"
       e.Bvf_verifier.Venv.vmsg);
  let cfg = { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps } in
  match Loader.load_and_run session (cve_witness_request cfg) with
  | { Loader.verdict = Error _; _ } -> ()
  | { Loader.verdict = Ok _; _ } ->
    Alcotest.fail "fixed verifier accepted maybe-null pointer arithmetic"

(* -- Witness determinism ------------------------------------------------------ *)

(* Finding keys are [origin|fingerprint|bug]; the witness report class
   is identified by its fingerprint component. *)
let is_witness_key (key : string) : bool =
  let n = String.length key and p = "witness:" in
  let m = String.length p in
  let rec scan i = i + m <= n && (String.sub key i m = p || scan (i + 1)) in
  scan 0

let digest_mod_witness (stats : Campaign.stats) : string =
  Campaign.digest ~exclude_finding:is_witness_key stats

(* Recording witnesses and checking them at runtime must not perturb the
   campaign: same seed with and without --witness reproduces the same
   digest once the witness report class itself is filtered out. *)
let test_witness_digest_deterministic () =
  let base = Kconfig.default Version.Bpf_next in
  let run witness =
    Campaign.run ~seed:11 ~iterations:400 Campaign.bvf_strategy
      (Kconfig.with_witness base witness)
  in
  let off = run false and on = run true in
  Alcotest.(check string) "digest modulo witness findings"
    (digest_mod_witness off) (digest_mod_witness on);
  Alcotest.(check int) "same acceptance"
    off.Campaign.st_accepted on.Campaign.st_accepted

let test_witness_digest_with_jobs () =
  let base = Kconfig.default Version.Bpf_next in
  let run witness =
    Parallel.run ~jobs:2 ~seed:11 ~iterations:200 Campaign.bvf_strategy
      (Kconfig.with_witness base witness)
  in
  let off = run false and on = run true in
  Alcotest.(check string) "sharded digest modulo witness findings"
    (digest_mod_witness off.Parallel.pr_stats)
    (digest_mod_witness on.Parallel.pr_stats)

let test_witness_digest_with_failslab () =
  let base = Kconfig.default Version.Bpf_next in
  let run witness =
    let failslab = Failslab.create ~rate:0.05 ~seed:13 () in
    Campaign.run ~failslab ~seed:13 ~iterations:300 Campaign.bvf_strategy
      (Kconfig.with_witness base witness)
  in
  let off = run false and on = run true in
  Alcotest.(check string) "digest under fault injection modulo witness"
    (digest_mod_witness off) (digest_mod_witness on)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bvf_soundness"
    [
      ( "abstract domain",
        [ qt alu64_abstract_sound; qt alu32_abstract_sound;
          qt neg_abstract_sound; qt sync_preserves_members;
          qt truncate_sound ] );
      ( "word boundaries",
        [ qt mul_boundary_sound; qt shift_boundary_sound;
          Alcotest.test_case "mul S64-overflow regression" `Quick
            test_mul_overflow_regression;
          Alcotest.test_case "mul safe-case bounds" `Quick
            test_mul_safe_bounds ] );
      ( "tnum boundaries",
        [ qt tnum_member_bounds; qt tnum_range_sound; qt tnum_subset_sound;
          qt tnum_meet_join_sound; qt tnum_ops_boundary_sound;
          qt tnum_shift_cast_sound ] );
      ( "widening",
        [ qt tnum_widen_sound; qt reg_widen_sound ] );
      ( "branch transfer",
        [ qt jmp_verdict_sound; qt jmp_refine_sound;
          Alcotest.test_case "w-Jsgt sign-extension regression" `Quick
            test_jsgt32_sign_extension_regression ] );
      ( "invariant lint",
        [ Alcotest.test_case "clean states pass" `Quick
            test_invariants_clean_states;
          Alcotest.test_case "corrupted states flagged" `Quick
            test_invariants_flag_corruption;
          Alcotest.test_case "sync fixpoint regression" `Quick
            test_sync_fixpoint_regression ] );
      ( "witness domain",
        [ Alcotest.test_case "containment basics" `Quick
            test_witness_domain;
          qt witness_of_reg_sound; qt witness_join_sound ] );
      ( "clean verifier",
        [ Alcotest.test_case "selftest corpus: no lint, no witness" `Quick
            test_clean_corpus_no_lint_no_witness ] );
      ( "witness oracle",
        [ Alcotest.test_case "bug3 flagged via witness" `Quick
            test_bug3_flagged_as_witness_escape;
          Alcotest.test_case "cve-2022-23222 flagged via witness" `Quick
            test_cve_flagged_as_witness_escape;
          Alcotest.test_case "clean controls" `Quick
            test_witness_clean_controls ] );
      ( "witness determinism",
        [ Alcotest.test_case "digest modulo witness" `Quick
            test_witness_digest_deterministic;
          Alcotest.test_case "digest with --jobs" `Quick
            test_witness_digest_with_jobs;
          Alcotest.test_case "digest with failslab" `Quick
            test_witness_digest_with_failslab ] );
      ( "oracle",
        [ qt oracle_soundness; qt oracle_soundness_mutants;
          qt encode_verify_consistent ] );
    ]
