(* Abstract-interpretation soundness properties.

   These are the load-bearing invariants of the whole reproduction:

   1. ALU transfer functions: for any abstract scalar states and any
      concrete members, the concrete result of an operation is a member
      of the abstract result (no under-approximation, which would let
      the verifier accept memory-unsafe programs and produce false
      correctness-bug reports).

   2. End-to-end oracle soundness: any structured program the FIXED
      verifier accepts executes without raising a single kernel report.
      This is exactly why a report from an accepted program can be
      blamed on the verifier (the paper's core argument). *)

module Word = Bvf_ebpf.Word
module Insn = Bvf_ebpf.Insn
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Tnum = Bvf_verifier.Tnum
module Regstate = Bvf_verifier.Regstate
module Check_alu = Bvf_verifier.Check_alu
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Exec = Bvf_runtime.Exec
module Rng = Bvf_core.Rng
module Gen = Bvf_core.Gen
module Campaign = Bvf_core.Campaign

(* -- Membership ------------------------------------------------------------ *)

let member (r : Regstate.t) (x : int64) : bool =
  Regstate.is_scalar r
  && r.Regstate.smin <= x
  && x <= r.Regstate.smax
  && Word.ule r.Regstate.umin x
  && Word.ule x r.Regstate.umax
  && Tnum.contains r.Regstate.var_off x

(* Generate an abstract scalar together with one of its members. *)
let gen_abstract : (Regstate.t * int64) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let concrete =
    oneof
      [ map Int64.of_int (int_range (-1000) 1000);
        oneofl Rng.interesting_int64;
        map Int64.of_int int ]
  in
  let* x = concrete in
  let* shape = int_range 0 3 in
  match shape with
  | 0 -> return (Regstate.const_scalar x, x)
  | 1 ->
    (* an unsigned interval around x *)
    let* above = map Int64.of_int (int_range 0 4096) in
    let* below = map Int64.of_int (int_range 0 4096) in
    let lo = if Word.ult x below then 0L else Int64.sub x below in
    let hi =
      if Word.ult (Int64.add x above) x then -1L else Int64.add x above
    in
    return (Regstate.scalar_range ~umin:lo ~umax:hi, x)
  | 2 ->
    (* tnum knowledge: some bits of x known *)
    let* mask = map Int64.of_int (int_range 0 0xFFFFFF) in
    let t = { Tnum.value = Int64.logand x (Int64.lognot mask); mask } in
    return (Regstate.scalar_of_tnum t, x)
  | _ -> return (Regstate.unknown_scalar, x)

let alu_ops =
  [ (Insn.Add, Int64.add);
    (Insn.Sub, fun a b -> Int64.sub a b);
    (Insn.Mul, fun a b -> Int64.mul a b);
    (Insn.Div, Word.udiv);
    (Insn.Mod, Word.umod);
    (Insn.Or, Int64.logor);
    (Insn.And, Int64.logand);
    (Insn.Xor, Int64.logxor);
    (Insn.Lsh, Word.shl64);
    (Insn.Rsh, Word.shr64);
    (Insn.Arsh, Word.ashr64);
    (Insn.Mov, fun _ b -> b) ]

let alu64_abstract_sound =
  QCheck2.Test.make ~count:3000 ~name:"alu64 transfer functions sound"
    QCheck2.Gen.(triple (int_range 0 11) gen_abstract gen_abstract)
    (fun (opi, (ra, a), (rb, b)) ->
       let op, concrete = List.nth alu_ops opi in
       let abstract = Check_alu.scalar_op64 op ra rb in
       let result = concrete a b in
       if member abstract result then true
       else
         QCheck2.Test.fail_reportf
           "%s: %Ld op %Ld = %Ld not in %s (from %s, %s)"
           (Insn.alu_op_to_string op) a b result
           (Regstate.to_string abstract)
           (Regstate.to_string ra) (Regstate.to_string rb))

let alu32_abstract_sound =
  QCheck2.Test.make ~count:3000 ~name:"alu32 transfer functions sound"
    QCheck2.Gen.(triple (int_range 0 11) gen_abstract gen_abstract)
    (fun (opi, (ra, a), (rb, b)) ->
       let op, concrete = List.nth alu_ops opi in
       (* concrete 32-bit semantics: low words, zero-extended *)
       let result =
         match op with
         | Insn.Lsh -> Word.shl32 a b
         | Insn.Rsh -> Word.shr32 (Word.to_u32 a) b
         | Insn.Arsh -> Word.ashr32 a b
         | Insn.Div -> Word.to_u32 (Word.udiv (Word.to_u32 a) (Word.to_u32 b))
         | Insn.Mod -> Word.to_u32 (Word.umod (Word.to_u32 a) (Word.to_u32 b))
         | _ -> Word.to_u32 (concrete (Word.to_u32 a) (Word.to_u32 b))
       in
       let abstract = Check_alu.scalar_op32 op ra rb in
       if member abstract result then true
       else
         QCheck2.Test.fail_reportf
           "w%s: %Ld op %Ld = %Ld not in %s"
           (Insn.alu_op_to_string op) a b result
           (Regstate.to_string abstract))

let neg_abstract_sound =
  QCheck2.Test.make ~count:1000 ~name:"neg transfer function sound"
    gen_abstract
    (fun (r, x) ->
       member (Check_alu.scalar_op64 Insn.Neg r r) (Int64.neg x))

(* -- Word-boundary ALU soundness ------------------------------------------- *)

(* The kernel's scalar_mul guard exists for operands at the 32/64-bit
   word edges: both factors fit in 32 bits, so the unsigned product is
   exact, but it can still exceed S64_MAX and must not be copied into
   the signed bounds.  Anchor abstract operands at those edges. *)
let gen_boundary : (Regstate.t * int64) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let anchors =
    [ 0L; 1L; 2L; 3L; 0x7FFF_FFFFL; 0x8000_0000L; 0x8000_0001L;
      0xFFFF_FFFEL; 0xFFFF_FFFFL; 0x1_0000_0000L; 0x1_0000_0001L;
      0x7FFF_FFFF_FFFF_FFFEL; Int64.max_int; Int64.min_int; -2L; -1L ]
  in
  let* x = oneofl anchors in
  let* shape = int_range 0 2 in
  match shape with
  | 0 -> return (Regstate.const_scalar x, x)
  | 1 ->
    (* a narrow unsigned window starting at the anchor *)
    let* w = oneofl [ 1L; 0xFFL; 0xFFFFL; 0xFFFF_FFFFL ] in
    let hi = Int64.add x w in
    let hi = if Word.ult hi x then -1L (* wrapped: open to U64_MAX *) else hi in
    return (Regstate.scalar_range ~umin:x ~umax:hi, x)
  | _ -> return (Regstate.unknown_scalar, x)

let mul_boundary_sound =
  QCheck2.Test.make ~count:3000 ~name:"mul sound at word boundaries"
    QCheck2.Gen.(pair gen_boundary gen_boundary)
    (fun ((ra, a), (rb, b)) ->
       let r64 = Check_alu.scalar_op64 Insn.Mul ra rb in
       let p64 = Int64.mul a b in
       let r32 = Check_alu.scalar_op32 Insn.Mul ra rb in
       let p32 = Word.to_u32 (Int64.mul (Word.to_u32 a) (Word.to_u32 b)) in
       if member r64 p64 && member r32 p32 then true
       else
         QCheck2.Test.fail_reportf
           "mul: %Ld * %Ld: 64-bit %Ld in %s = %b, 32-bit %Ld in %s = %b"
           a b p64 (Regstate.to_string r64) (member r64 p64)
           p32 (Regstate.to_string r32) (member r32 p32))

let shift_boundary_sound =
  QCheck2.Test.make ~count:3000 ~name:"shifts sound at word boundaries"
    QCheck2.Gen.(triple (int_range 0 2) gen_boundary (int_range 0 63))
    (fun (opi, (ra, a), sh) ->
       let op = List.nth [ Insn.Lsh; Insn.Rsh; Insn.Arsh ] opi in
       let s = Int64.of_int sh in
       let rs = Regstate.const_scalar s in
       let c64 =
         match op with
         | Insn.Lsh -> Word.shl64 a s
         | Insn.Rsh -> Word.shr64 a s
         | _ -> Word.ashr64 a s
       in
       let c32 =
         match op with
         | Insn.Lsh -> Word.shl32 a s
         | Insn.Rsh -> Word.shr32 (Word.to_u32 a) s
         | _ -> Word.ashr32 a s
       in
       let r64 = Check_alu.scalar_op64 op ra rs in
       let r32 = Check_alu.scalar_op32 op ra rs in
       if member r64 c64 && member r32 c32 then true
       else
         QCheck2.Test.fail_reportf
           "%s: %Ld shift %d: 64-bit %Ld in %s = %b, 32-bit %Ld in %s = %b"
           (Insn.alu_op_to_string op) a sh c64 (Regstate.to_string r64)
           (member r64 c64) c32 (Regstate.to_string r32) (member r32 c32))

(* Regression for the scalar_mul S64 overflow bug: with both operands in
   [0, U32_MAX] the unsigned product U32_MAX * U32_MAX is exact but
   >= 2^63, i.e. negative as a signed value — the transfer function must
   fall back to unbounded signed range instead of claiming smin = 0
   (the kernel's adjust_scalar_min_max_vals BPF_MUL guard). *)
let test_mul_overflow_regression () =
  let a = Regstate.scalar_range ~umin:0L ~umax:0xFFFF_FFFFL in
  let r = Check_alu.scalar_op64 Insn.Mul a a in
  let product = Int64.mul 0xFFFF_FFFFL 0xFFFF_FFFFL in
  Alcotest.(check bool)
    (Printf.sprintf "U32_MAX^2 = %Ld is a member of %s" product
       (Regstate.to_string r))
    true (member r product);
  Alcotest.(check bool) "no smin = 0 claim" true (r.Regstate.smin < 0L);
  Alcotest.(check int64) "unsigned product still exact" product
    r.Regstate.umax

(* And the safe case keeps the kernel's tight bounds: product below
   S64_MAX, so signed bounds mirror the unsigned ones. *)
let test_mul_safe_bounds () =
  let d = Regstate.scalar_range ~umin:2L ~umax:10L in
  let s = Regstate.scalar_range ~umin:3L ~umax:7L in
  let r = Check_alu.scalar_op64 Insn.Mul d s in
  Alcotest.(check int64) "umin" 6L r.Regstate.umin;
  Alcotest.(check int64) "umax" 70L r.Regstate.umax;
  Alcotest.(check int64) "smin = umin" 6L r.Regstate.smin;
  Alcotest.(check int64) "smax = umax" 70L r.Regstate.smax

(* sync never drops members *)
let sync_preserves_members =
  QCheck2.Test.make ~count:2000 ~name:"bounds sync preserves members"
    gen_abstract
    (fun (r, x) -> member (Regstate.sync r) x)

(* truncate32 contains the zero-extended member *)
let truncate_sound =
  QCheck2.Test.make ~count:2000 ~name:"truncate32 sound"
    gen_abstract
    (fun (r, x) -> member (Regstate.truncate32 r) (Word.to_u32 x))

(* -- End-to-end oracle soundness ------------------------------------------- *)

(* Structured programs accepted by the FIXED verifier never raise a
   report at runtime: the foundation of "any report from an accepted
   program is a verifier bug". *)
let oracle_soundness =
  QCheck2.Test.make ~count:400 ~name:"fixed kernel: accepted => clean run"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
       let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
       let maps = Campaign.standard_maps session in
       let cfg = { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps } in
       let rng = Rng.create seed in
       let req = Gen.generate rng cfg in
       match Loader.load_and_run session req with
       | { Loader.verdict = Error _; _ } -> true (* rejected: vacuous *)
       | { Loader.verdict = Ok _; reports = []; _ } -> true
       | { Loader.verdict = Ok _; reports; _ } ->
         QCheck2.Test.fail_reportf
           "accepted program raised: %s\n%s"
           (String.concat "; "
              (List.map Bvf_kernel.Report.to_string reports))
           (Bvf_ebpf.Disasm.prog_to_string req.Verifier.r_insns))

(* The mirror property for mutants: whatever mutation does, the fixed
   kernel never lets a report-raising program through. *)
let oracle_soundness_mutants =
  QCheck2.Test.make ~count:300 ~name:"fixed kernel: mutants too"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
       let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
       let maps = Campaign.standard_maps session in
       let cfg = { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps } in
       let rng = Rng.create seed in
       let req = Gen.generate rng cfg in
       let req = Bvf_core.Mutate.mutate_request rng ~version:Version.Bpf_next req in
       match Loader.load_and_run session req with
       | { Loader.verdict = Error _; _ } -> true
       | { Loader.verdict = Ok _; reports = []; _ } -> true
       | { Loader.verdict = Ok _; reports; _ } ->
         QCheck2.Test.fail_reportf "mutant raised: %s"
           (String.concat "; "
              (List.map Bvf_kernel.Report.to_string reports)))

(* Decode of an encode of an accepted program is accepted with the same
   verdict: the wire format round-trip composes with verification. *)
let encode_verify_consistent =
  QCheck2.Test.make ~count:200 ~name:"encode/decode preserves verdict"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
       let session = Loader.create (Kconfig.fixed Version.Bpf_next) in
       let maps = Campaign.standard_maps session in
       let cfg = { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps } in
       let rng = Rng.create seed in
       let req = Gen.generate rng cfg in
       let cov = Bvf_verifier.Coverage.create () in
       let direct = Verifier.verify session.Loader.kst ~cov req in
       match Bvf_ebpf.Encode.decode (Bvf_ebpf.Encode.encode req.Verifier.r_insns) with
       | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e.Bvf_ebpf.Encode.reason
       | Ok insns ->
         let roundtrip =
           Verifier.verify session.Loader.kst ~cov
             { req with Verifier.r_insns = insns }
         in
         Result.is_ok direct = Result.is_ok roundtrip)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bvf_soundness"
    [
      ( "abstract domain",
        [ qt alu64_abstract_sound; qt alu32_abstract_sound;
          qt neg_abstract_sound; qt sync_preserves_members;
          qt truncate_sound ] );
      ( "word boundaries",
        [ qt mul_boundary_sound; qt shift_boundary_sound;
          Alcotest.test_case "mul S64-overflow regression" `Quick
            test_mul_overflow_regression;
          Alcotest.test_case "mul safe-case bounds" `Quick
            test_mul_safe_bounds ] );
      ( "oracle",
        [ qt oracle_soundness; qt oracle_soundness_mutants;
          qt encode_verify_consistent ] );
    ]
