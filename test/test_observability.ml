(* Observability tests: vstats counters are deterministic and consistent
   with the analysis; campaigns aggregate and digest them (and parallel
   merges absorb them associatively); the veristat table round-trips
   through JSONL and its regression gate fires on inflated counters and
   verdict flips; coverage introspection (grouped / diff) is exact; the
   --progress observer never perturbs traces; the monotonic clock never
   goes backwards. *)

module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Verifier = Bvf_verifier.Verifier
module Vstats = Bvf_verifier.Vstats
module Coverage = Bvf_verifier.Coverage
module Loader = Bvf_runtime.Loader
module Campaign = Bvf_core.Campaign
module Parallel = Bvf_core.Parallel
module Telemetry = Bvf_core.Telemetry
module Veristat = Bvf_core.Veristat
module Progress = Bvf_core.Progress
module Selftests = Bvf_core.Selftests
module Mclock = Bvf_util.Mclock

let strategy = Campaign.bvf_strategy
let config () = Kconfig.default Version.Bpf_next
let read_all path = In_channel.with_open_bin path In_channel.input_all

(* -- Mclock ----------------------------------------------------------------- *)

let test_mclock_monotone () =
  let prev = ref (Mclock.now_s ()) in
  for _ = 1 to 1000 do
    let t = Mclock.now_s () in
    Alcotest.(check bool) "now_s never decreases" true (t >= !prev);
    prev := t
  done;
  let since = Mclock.now_s () in
  Alcotest.(check bool) "elapsed_s is non-negative" true
    (Mclock.elapsed_s ~since >= 0.0);
  let (), dt = Mclock.time_s (fun () -> ()) in
  Alcotest.(check bool) "time_s is non-negative" true (dt >= 0.0)

(* -- Per-load counters ------------------------------------------------------- *)

let load_selftest_stats () =
  (* run the first 60 selftests and collect each load's counters *)
  let suite = Selftests.build ~count:60 Version.Bpf_next in
  let session = suite.Selftests.session in
  List.map
    (fun req ->
       let verdict, _log, vstats =
         Verifier.load_with_stats session.Loader.kst
           ~cov:session.Loader.cov req
       in
       (verdict, Option.get vstats))
    (List.filteri (fun i _ -> i < 60) suite.Selftests.requests)

let test_vstats_deterministic_and_consistent () =
  let a = load_selftest_stats () and b = load_selftest_stats () in
  List.iter2
    (fun (_, va) (_, vb) ->
       Alcotest.(check (list (pair string int)))
         "counters identical across runs" (Vstats.counters va)
         (Vstats.counters vb))
    a b;
  List.iter
    (fun ((verdict : (Verifier.loaded, _) result), v) ->
       Alcotest.(check bool) "insn_processed positive" true
         (v.Vstats.vs_insn_processed > 0);
       (match verdict with
        | Ok l ->
          Alcotest.(check int) "l_insn_processed matches the counter"
            l.Verifier.l_insn_processed v.Vstats.vs_insn_processed
        | Error _ -> ());
       Alcotest.(check bool) "peak <= total states" true
         (v.Vstats.vs_peak_states <= v.Vstats.vs_total_states);
       Alcotest.(check bool) "per-insn max <= total states" true
         (v.Vstats.vs_max_states_per_insn <= v.Vstats.vs_total_states);
       Alcotest.(check bool) "all live states retired" true
         (v.Vstats.vs_cur_states = 0);
       Alcotest.(check bool) "branch hwm >= 1" true
         (v.Vstats.vs_branch_hwm >= 1))
    a

(* -- Campaign aggregation and digest ----------------------------------------- *)

let test_campaign_aggregates_vstats () =
  let stats =
    Campaign.run ~seed:11 ~iterations:300 strategy (config ())
  in
  let a = stats.Campaign.st_vstats in
  Alcotest.(check bool) "analyses counted" true (a.Vstats.ag_programs > 0);
  Alcotest.(check bool) "insns accumulated" true
    (a.Vstats.ag_insn_processed > 0);
  let hist_sum h = Array.fold_left ( + ) 0 h in
  Alcotest.(check int) "insn histogram covers every analysis"
    a.Vstats.ag_programs (hist_sum a.Vstats.ag_hist_insn);
  Alcotest.(check int) "peak histogram covers every analysis"
    a.Vstats.ag_programs (hist_sum a.Vstats.ag_hist_peak)

let test_vstats_in_digest () =
  (* the digest folds the vstats lines: corrupting the aggregate after
     the fact must change the digest *)
  let stats =
    Campaign.run ~seed:11 ~iterations:200 strategy (config ())
  in
  let d0 = Campaign.digest stats in
  stats.Campaign.st_vstats.Vstats.ag_insn_processed <-
    stats.Campaign.st_vstats.Vstats.ag_insn_processed + 1;
  Alcotest.(check bool) "digest depends on vstats" true
    (d0 <> Campaign.digest stats)

let test_parallel_merges_vstats () =
  let r = Parallel.run ~jobs:3 ~seed:9 ~iterations:240 strategy (config ()) in
  let merged = r.Parallel.pr_stats.Campaign.st_vstats in
  let shards =
    List.map
      (fun sh -> sh.Parallel.sh_stats.Campaign.st_vstats)
      r.Parallel.pr_shards
  in
  let sums f = List.fold_left (fun n a -> n + f a) 0 shards
  and maxes f = List.fold_left (fun n a -> max n (f a)) 0 shards in
  Alcotest.(check int) "programs summed"
    (sums (fun a -> a.Vstats.ag_programs))
    merged.Vstats.ag_programs;
  Alcotest.(check int) "insns summed"
    (sums (fun a -> a.Vstats.ag_insn_processed))
    merged.Vstats.ag_insn_processed;
  Alcotest.(check int) "peak is max across shards"
    (maxes (fun a -> a.Vstats.ag_peak_states_max))
    merged.Vstats.ag_peak_states_max;
  (* absorb is associative: (a + b) + c == a + (b + c) *)
  (match shards with
   | [ a; b; c ] ->
     let copy src =
       let t = Vstats.agg_zero () in
       Vstats.agg_absorb t src;
       t
     in
     let left = copy a in
     Vstats.agg_absorb left b;
     Vstats.agg_absorb left c;
     let bc = copy b in
     Vstats.agg_absorb bc c;
     let right = copy a in
     Vstats.agg_absorb right bc;
     Alcotest.(check (list string)) "agg_absorb associative"
       (Vstats.agg_digest_lines left)
       (Vstats.agg_digest_lines right)
   | _ -> Alcotest.fail "expected 3 shards");
  (* campaign traces carry one vstats event per analysis *)
  let path = Filename.temp_file "bvf_vstats" ".jsonl" in
  let sink = Telemetry.create path in
  let stats =
    Campaign.run ~telemetry:sink ~seed:9 ~iterations:120 strategy
      (config ())
  in
  Telemetry.close sink;
  let events = Telemetry.read_file path in
  Sys.remove path;
  let vstats_events =
    List.filter (function Telemetry.Vstats _ -> true | _ -> false) events
  in
  Alcotest.(check int) "one vstats event per analysis"
    stats.Campaign.st_vstats.Vstats.ag_programs
    (List.length vstats_events)

(* -- Veristat ----------------------------------------------------------------- *)

let strip_times (t : Veristat.table) : Veristat.table =
  { t with
    Veristat.vt_rows =
      List.map
        (fun r -> { r with Veristat.vr_time_s = 0.0 })
        t.Veristat.vt_rows }

let test_veristat_deterministic () =
  let a = Veristat.run_generated ~seed:7 ~count:40 Version.Bpf_next in
  let b = Veristat.run_generated ~seed:7 ~count:40 Version.Bpf_next in
  Alcotest.(check bool) "tables identical modulo wall time" true
    (strip_times a = strip_times b);
  Alcotest.(check int) "row per program" 40
    (List.length a.Veristat.vt_rows)

let test_veristat_json_round_trip () =
  let t = Veristat.run_generated ~seed:3 ~count:25 Version.Bpf_next in
  let back = Veristat.of_json (Veristat.to_json t) in
  Alcotest.(check string) "kernel preserved" t.Veristat.vt_kernel
    back.Veristat.vt_kernel;
  List.iter2
    (fun (a : Veristat.row) (b : Veristat.row) ->
       Alcotest.(check string) "name" a.Veristat.vr_name b.Veristat.vr_name;
       Alcotest.(check string) "type" a.Veristat.vr_prog_type
         b.Veristat.vr_prog_type;
       Alcotest.(check int) "insns" a.Veristat.vr_insns b.Veristat.vr_insns;
       Alcotest.(check string) "verdict" a.Veristat.vr_verdict
         b.Veristat.vr_verdict;
       Alcotest.(check (list (pair string int))) "counters"
         (Vstats.counters a.Veristat.vr_stats)
         (Vstats.counters b.Veristat.vr_stats))
    t.Veristat.vt_rows back.Veristat.vt_rows;
  Alcotest.check_raises "foreign JSON rejected"
    (Veristat.Bad_table "not a bvf veristat table") (fun () ->
        ignore (Veristat.of_json {|{"ev":"generated","iter":0}|}))

let test_veristat_gate () =
  let t = Veristat.run_generated ~seed:5 ~count:30 Version.Bpf_next in
  let same = Veristat.compare_tables ~old_t:t ~new_t:t in
  Alcotest.(check (list string)) "identical tables pass the gate" []
    (Veristat.regressions ~threshold_pct:0.0 same);
  (* inflate one program's insn_processed in a deep copy (via JSONL) *)
  let inflated = Veristat.of_json (Veristat.to_json t) in
  (match inflated.Veristat.vt_rows with
   | r :: _ ->
     r.Veristat.vr_stats.Vstats.vs_insn_processed <-
       (r.Veristat.vr_stats.Vstats.vs_insn_processed + 1) * 100
   | [] -> Alcotest.fail "empty table");
  let c = Veristat.compare_tables ~old_t:t ~new_t:inflated in
  Alcotest.(check bool) "inflated counter trips the gate" true
    (Veristat.regressions ~threshold_pct:2.0 c <> []);
  Alcotest.(check bool) "worst offender identified" true
    (c.Veristat.cmp_worst <> []);
  (* a verdict flip trips the gate even with counters unchanged *)
  let flipped = Veristat.of_json (Veristat.to_json t) in
  let flipped =
    { flipped with
      Veristat.vt_rows =
        (match flipped.Veristat.vt_rows with
         | r :: rest -> { r with Veristat.vr_verdict = "EACCES-now" } :: rest
         | [] -> []) }
  in
  let c = Veristat.compare_tables ~old_t:t ~new_t:flipped in
  Alcotest.(check int) "flip detected" 1
    (List.length c.Veristat.cmp_verdict_flips);
  Alcotest.(check bool) "flip trips the gate at any threshold" true
    (Veristat.regressions ~threshold_pct:1000.0 c <> []);
  (* added/removed programs are listed but never gated *)
  let shorter =
    { t with Veristat.vt_rows = List.tl t.Veristat.vt_rows }
  in
  let c = Veristat.compare_tables ~old_t:t ~new_t:shorter in
  Alcotest.(check int) "removed program listed" 1
    (List.length c.Veristat.cmp_removed);
  Alcotest.(check (list string)) "removal alone passes the gate" []
    (Veristat.regressions ~threshold_pct:0.0 c)

(* -- Coverage introspection ---------------------------------------------------- *)

let test_coverage_grouped () =
  let cov = Coverage.create () in
  let hit site variant =
    Coverage.record cov (Coverage.edge_id cov site variant)
  in
  hit "alu:op" 1; hit "alu:op" 1; hit "alu:ptr" 0; hit "mem:stack" 2;
  hit "prune" 0;
  let groups = Coverage.grouped cov in
  Alcotest.(check (list string)) "groups sorted by prefix"
    [ "alu"; "mem"; "prune" ]
    (List.map fst groups);
  let distinct, hits, listing = List.assoc "alu" groups in
  Alcotest.(check int) "alu distinct edges" 2 distinct;
  Alcotest.(check int) "alu summed hits" 3 hits;
  Alcotest.(check (list (pair (pair string int) int))) "alu listing sorted"
    [ (("alu:op", 1), 2); (("alu:ptr", 0), 1) ]
    listing;
  Alcotest.(check string) "prefix stops at the first colon" "alu"
    (Coverage.site_prefix "alu:ptr:varoff");
  Alcotest.(check string) "prefix of a plain name is itself" "prune"
    (Coverage.site_prefix "prune")

let test_coverage_diff_exact () =
  let old_cov = Coverage.create () and new_cov = Coverage.create () in
  let hit cov site variant =
    Coverage.record cov (Coverage.edge_id cov site variant)
  in
  hit old_cov "a" 0; hit old_cov "b" 1; hit old_cov "c" 2;
  (* new: keeps a:0 (different hit count), drops b:1/c:2, adds d:0, b:9 *)
  hit new_cov "a" 0; hit new_cov "a" 0; hit new_cov "d" 0; hit new_cov "b" 9;
  let gained, lost = Coverage.diff ~old_cov ~new_cov in
  Alcotest.(check (list (pair string int))) "gained is exact"
    [ ("b", 9); ("d", 0) ] gained;
  Alcotest.(check (list (pair string int))) "lost is exact"
    [ ("b", 1); ("c", 2) ] lost;
  let same_g, same_l = Coverage.diff ~old_cov ~new_cov:old_cov in
  Alcotest.(check (list (pair string int))) "self-diff gains nothing" []
    same_g;
  Alcotest.(check (list (pair string int))) "self-diff loses nothing" []
    same_l

let test_coverage_absorb_round_trip () =
  (* absorbing a map's own listing into an empty map reproduces the edge
     set and the summed hit counts *)
  let stats =
    Campaign.run_t ~seed:17 ~iterations:150 strategy (config ())
  in
  let cov = stats.Campaign.cov in
  let listing = Coverage.named_edges cov in
  let fresh = Coverage.create () in
  let added = Coverage.absorb_named fresh listing in
  Alcotest.(check int) "every edge is new to the empty map"
    (Coverage.edge_count cov) added;
  Alcotest.(check int) "edge count reproduced" (Coverage.edge_count cov)
    (Coverage.edge_count fresh);
  Alcotest.(check (list (pair (pair string int) int))) "hits reproduced"
    (List.sort compare listing)
    (List.sort compare (Coverage.named_edges fresh));
  (* union is associative on three distinct maps *)
  let part seed =
    (Campaign.run_t ~seed ~iterations:80 strategy (config ())).Campaign.cov
  in
  let a = part 1 and b = part 2 and c = part 3 in
  let left = Coverage.union [ Coverage.union [ a; b ]; c ]
  and right = Coverage.union [ a; Coverage.union [ b; c ] ] in
  Alcotest.(check (list (pair (pair string int) int))) "union associative"
    (List.sort compare (Coverage.named_edges left))
    (List.sort compare (Coverage.named_edges right))

(* -- Progress is a pure observer ---------------------------------------------- *)

let test_progress_does_not_perturb_traces () =
  let trace_with ~observe =
    let path = Filename.temp_file "bvf_obs" ".jsonl" in
    let sink = Telemetry.create path in
    let out_path = Filename.temp_file "bvf_progress" ".txt" in
    let out = open_out out_path in
    let progress = Progress.create ~out ~every_s:0.0 ~jobs:1 () in
    let on_step =
      if observe then Some (fun c -> Progress.update progress ~shard:0 c)
      else None
    in
    let stats =
      Campaign.run ~telemetry:sink ?on_step ~seed:23 ~iterations:150
        strategy (config ())
    in
    Progress.finish progress;
    Telemetry.close sink;
    close_out out;
    let trace = read_all path and printed = read_all out_path in
    Sys.remove path;
    Sys.remove out_path;
    (trace, printed, Campaign.digest stats)
  in
  let t1, printed, d1 = trace_with ~observe:true in
  let t2, silent, d2 = trace_with ~observe:false in
  Alcotest.(check string) "trace byte-identical with --progress" t1 t2;
  Alcotest.(check string) "digest unchanged by --progress" d1 d2;
  Alcotest.(check bool) "observer printed status lines" true
    (String.length printed > 0);
  Alcotest.(check bool) "no observer, no output (finish only)" true
    (String.length silent > 0 && String.length silent < String.length printed)

(* -- Plateau report ------------------------------------------------------------ *)

let test_plateau_matches_curve () =
  let stats =
    Campaign.run ~sample_every:20 ~seed:29 ~iterations:400 strategy
      (config ())
  in
  match Campaign.plateau stats with
  | None -> Alcotest.fail "sampled campaign must report a plateau"
  | Some (last_gain, stalled) ->
    let curve = stats.Campaign.st_curve in
    let final =
      match curve with
      | s :: _ -> s.Campaign.sa_edges
      | [] -> Alcotest.fail "empty curve"
    in
    (* last_gain is the earliest sampled iteration already at the final
       edge count; every earlier sample is strictly below it *)
    let at_gain =
      List.find
        (fun s -> s.Campaign.sa_iteration = last_gain)
        curve
    in
    Alcotest.(check int) "plateau sample holds the final count" final
      at_gain.Campaign.sa_edges;
    List.iter
      (fun s ->
         if s.Campaign.sa_iteration < last_gain then
           Alcotest.(check bool) "earlier samples below the final count"
             true
             (s.Campaign.sa_edges < final))
      curve;
    let newest =
      match curve with s :: _ -> s.Campaign.sa_iteration | [] -> 0
    in
    Alcotest.(check int) "stalled = newest sample - last gain"
      (newest - last_gain) stalled

let () =
  Alcotest.run "observability"
    [
      ( "mclock",
        [ Alcotest.test_case "monotone" `Quick test_mclock_monotone ] );
      ( "vstats",
        [
          Alcotest.test_case "deterministic and consistent" `Quick
            test_vstats_deterministic_and_consistent;
          Alcotest.test_case "campaign aggregation" `Quick
            test_campaign_aggregates_vstats;
          Alcotest.test_case "part of the digest" `Quick
            test_vstats_in_digest;
          Alcotest.test_case "parallel merge" `Quick
            test_parallel_merges_vstats;
        ] );
      ( "veristat",
        [
          Alcotest.test_case "deterministic tables" `Quick
            test_veristat_deterministic;
          Alcotest.test_case "JSONL round trip" `Quick
            test_veristat_json_round_trip;
          Alcotest.test_case "regression gate" `Quick test_veristat_gate;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "grouped by site prefix" `Quick
            test_coverage_grouped;
          Alcotest.test_case "diff is exact" `Quick
            test_coverage_diff_exact;
          Alcotest.test_case "absorb/union round trips" `Quick
            test_coverage_absorb_round_trip;
        ] );
      ( "progress",
        [
          Alcotest.test_case "pure observer" `Quick
            test_progress_does_not_perturb_traces;
        ] );
      ( "plateau",
        [
          Alcotest.test_case "matches the sampled curve" `Quick
            test_plateau_matches_curve;
        ] );
    ]
