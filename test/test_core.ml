(* Tests for the BVF core: the deterministic RNG, structured program
   generation (validity and structure invariants), mutation operators,
   the coverage-guided corpus, the oracle, triage slicing, campaigns and
   the self-test corpus builder. *)

module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Map = Bvf_kernel.Map
module Report = Bvf_kernel.Report
module Kmem = Bvf_kernel.Kmem
module Verifier = Bvf_verifier.Verifier
module Coverage = Bvf_verifier.Coverage
module Loader = Bvf_runtime.Loader
module Rng = Bvf_core.Rng
module Gen = Bvf_core.Gen
module Mutate = Bvf_core.Mutate
module Corpus = Bvf_core.Corpus
module Oracle = Bvf_core.Oracle
module Triage = Bvf_core.Triage
module Campaign = Bvf_core.Campaign
module Selftests = Bvf_core.Selftests

(* -- Rng -------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_ranges () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let rng_weighted_prop =
  QCheck2.Test.make ~count:100 ~name:"weighted respects zero weights"
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
       let rng = Rng.create seed in
       Rng.weighted rng [ (0, `Never); (5, `Sometimes) ] = `Sometimes)

let test_rng_chance_extremes () =
  let rng = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.chance rng 0.0);
    Alcotest.(check bool) "p=1 always" true (Rng.chance rng 1.0)
  done

(* -- Generator -------------------------------------------------------------- *)

let gen_cfg_and_session () =
  let session = Loader.create (Kconfig.default Version.Bpf_next) in
  let maps = Campaign.standard_maps session in
  (session, { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps })

let test_gen_structure () =
  let _, cfg = gen_cfg_and_session () in
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let req = Gen.generate rng cfg in
    let insns = req.Verifier.r_insns in
    let n = Array.length insns in
    Alcotest.(check bool) "non-empty" true (n > 0);
    (* end section: last insn is exit *)
    Alcotest.(check bool) "ends with exit" true (insns.(n - 1) = Insn.Exit);
    (* init header: first insn preserves the context pointer *)
    Alcotest.(check bool) "saves ctx first" true
      (insns.(0) = Asm.mov64_reg Insn.R6 Insn.R1);
    (* programs never reference the hidden register *)
    Alcotest.(check bool) "no R11" true
      (not
         (Array.exists
            (fun i ->
               List.mem Insn.R11 (Insn.regs_read i)
               || List.mem Insn.R11 (Insn.regs_written i))
            insns))
  done

let test_gen_branches_in_range () =
  let _, cfg = gen_cfg_and_session () in
  let rng = Rng.create 23 in
  for _ = 1 to 300 do
    let req = Gen.generate rng cfg in
    let insns = req.Verifier.r_insns in
    let n = Array.length insns in
    Array.iteri
      (fun i insn ->
         match insn with
         | Insn.Jmp { off; _ } | Insn.Ja off ->
           let target = i + 1 + off in
           Alcotest.(check bool) "branch lands inside" true
             (target >= 0 && target < n)
         | _ -> ())
      insns
  done

let test_gen_acceptance_window () =
  (* the paper's headline statistic: roughly half the generated
     programs pass the verifier *)
  let session, cfg = gen_cfg_and_session () in
  let rng = Rng.create 5 in
  let cov = Coverage.create () in
  let accepted = ref 0 in
  let total = 600 in
  for _ = 1 to total do
    let req = Gen.generate rng cfg in
    if Result.is_ok (Verifier.verify session.Loader.kst ~cov req) then
      incr accepted
  done;
  let rate = float_of_int !accepted /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "acceptance %.2f in [0.35, 0.85]" rate)
    true
    (rate > 0.35 && rate < 0.85)

let test_gen_deterministic () =
  let _, cfg = gen_cfg_and_session () in
  let a = Gen.generate (Rng.create 99) cfg in
  let b = Gen.generate (Rng.create 99) cfg in
  Alcotest.(check bool) "same program from same seed" true
    (a.Verifier.r_insns = b.Verifier.r_insns
     && a.Verifier.r_prog_type = b.Verifier.r_prog_type
     && a.Verifier.r_attach = b.Verifier.r_attach)

(* -- Mutation ----------------------------------------------------------------- *)

let test_mutate_duplicate () =
  let rng = Rng.create 2 in
  let base =
    Array.init 12 (fun i -> Asm.mov64_imm Insn.R1 (Int32.of_int i))
  in
  let grew = ref false in
  for _ = 1 to 50 do
    if Array.length (Mutate.duplicate_block rng base) > 12 then
      grew := true
  done;
  Alcotest.(check bool) "duplication grows programs" true !grew

let test_mutate_never_moves_branch_out () =
  let rng = Rng.create 4 in
  let prog =
    [| Asm.mov64_imm Insn.R1 0l;
       Asm.jmp_imm Insn.Jeq Insn.R1 0l 1;
       Asm.mov64_imm Insn.R1 1l;
       Asm.mov64_imm Insn.R0 0l;
       Asm.exit_ |]
  in
  for _ = 1 to 200 do
    let out = Mutate.duplicate_block rng prog in
    Array.iteri
      (fun i insn ->
         match insn with
         | Insn.Jmp { off; _ } | Insn.Ja off ->
           let t = i + 1 + off in
           Alcotest.(check bool) "target inside" true
             (t >= 0 && t <= Array.length out)
         | _ -> ())
      out
  done

let test_mutate_truncate_valid_tail () =
  let rng = Rng.create 6 in
  let prog =
    Array.init 20 (fun i -> Asm.mov64_imm Insn.R1 (Int32.of_int i))
  in
  for _ = 1 to 50 do
    let out = Mutate.truncate rng prog in
    let n = Array.length out in
    Alcotest.(check bool) "exit last" true (out.(n - 1) = Insn.Exit);
    Alcotest.(check bool) "r0 set" true
      (out.(n - 2) = Asm.mov64_imm Insn.R0 0l)
  done

(* -- Corpus ------------------------------------------------------------------- *)

let dummy_req = Verifier.request Prog.Socket_filter [| Insn.Exit |]

let test_corpus_add_pick () =
  let c = Corpus.create ~max_size:8 () in
  let rng = Rng.create 1 in
  Alcotest.(check bool) "empty pick" true (Corpus.pick c rng = None);
  Corpus.add c ~iteration:1 ~new_edges:0 dummy_req;
  Alcotest.(check int) "zero-edge entries skipped" 0 (Corpus.size c);
  Corpus.add c ~iteration:2 ~new_edges:5 dummy_req;
  Alcotest.(check int) "added" 1 (Corpus.size c);
  Alcotest.(check bool) "pick works" true (Corpus.pick c rng <> None);
  (* overflow trims to half *)
  for i = 0 to 20 do
    Corpus.add c ~iteration:i ~new_edges:(1 + i) dummy_req
  done;
  Alcotest.(check bool) "bounded" true (Corpus.size c <= 8)

let test_corpus_of_entries () =
  let mk added_at new_edges =
    { Corpus.request = dummy_req; new_edges; added_at; blamed = 0 }
  in
  let es = List.init 10 (fun i -> mk (i * 100) (20 - i)) in
  let c = Corpus.of_entries ~max_size:4 es in
  Alcotest.(check int) "capped at max_size" 4 (Corpus.size c);
  (* only the highest-energy entries survive *)
  let kept = Corpus.entries c in
  let cut =
    List.fold_left (fun m e -> min m (Corpus.energy e)) max_int kept
  in
  List.iter
    (fun e ->
       if not (List.memq e kept) then
         Alcotest.(check bool) "evicted entries are no stronger" true
           (Corpus.energy e <= cut))
    es;
  (* deterministic in the input order *)
  Alcotest.(check bool) "rebuild is deterministic" true
    (Corpus.entries (Corpus.of_entries ~max_size:4 es) = kept)

(* -- Oracle ------------------------------------------------------------------- *)

let test_oracle_indicator_classes () =
  let mem_fault origin =
    Report.make origin
      (Report.Mem_fault
         { Kmem.faccess = Kmem.Read; faddr = 0L; fsize = 8;
           fkind = Kmem.Null_deref; fregion = None })
  in
  Alcotest.(check bool) "sanitizer -> ind1" true
    (Oracle.classify_indicator (mem_fault Report.Sanitizer) = Oracle.Ind1);
  Alcotest.(check bool) "native -> ind1" true
    (Oracle.classify_indicator (mem_fault Report.Bpf_native) = Oracle.Ind1);
  Alcotest.(check bool) "routine -> ind2" true
    (Oracle.classify_indicator (mem_fault (Report.Kernel_routine "f"))
     = Oracle.Ind2)

let test_oracle_rejected_is_not_correctness () =
  let config = Kconfig.default Version.Bpf_next in
  let result =
    { Loader.verdict =
        Error (Bvf_verifier.Venv.verr_make Bvf_verifier.Venv.EINVAL
                 ~pc:0 "x");
      status = None;
      reports =
        [ Report.make (Report.Kernel_routine "bpf_prog_load")
            (Report.Warn "kmemdup of rewritten insns failed") ];
      insns_executed = 0; witness = [];
      verify_s = 0.; sanitize_s = 0.; exec_s = 0.;
      verify_w = 0.; sanitize_w = 0.; exec_w = 0.;
      vlog = ""; vstats = None }
  in
  match Oracle.classify config result with
  | [ f ] ->
    Alcotest.(check bool) "not a correctness bug" false
      f.Oracle.f_correctness;
    Alcotest.(check bool) "no indicator when rejected" true
      (f.Oracle.f_indicator = None)
  | _ -> Alcotest.fail "expected one finding"

(* -- Triage ------------------------------------------------------------------- *)

let test_triage_slice () =
  let insns =
    [| Asm.mov64_imm Insn.R1 7l;        (* 0: def r1, relevant *)
       Asm.mov64_imm Insn.R2 9l;        (* 1: def r2, irrelevant *)
       Asm.mov64_reg Insn.R3 Insn.R1;   (* 2: r3 <- r1, relevant *)
       Asm.ldx_dw Insn.R0 Insn.R3 0 |]  (* 3: guilty *)
  in
  let slice = Triage.backward_slice insns 3 in
  let pcs = List.map fst slice in
  Alcotest.(check (list int)) "slice keeps def-use chain" [ 0; 2 ] pcs

let test_triage_report () =
  let config = Kconfig.make Version.Bpf_next ~bugs:[ Kconfig.Bug2_btf_size_check ] in
  let session = Loader.create config in
  let insns =
    Asm.prog
      [ [ Asm.ld_btf_obj Insn.R6 1; Asm.ldx_dw Insn.R3 Insn.R6 288 ];
        Asm.ret 0l ]
  in
  match Loader.load_and_run session (Verifier.request Prog.Kprobe insns) with
  | { Loader.verdict = Ok loaded; reports = r :: _; _ } ->
    let slice = Triage.slice_report loaded r in
    Alcotest.(check bool) "guilty pc found" true (slice.Triage.guilty_pc <> None);
    Alcotest.(check bool) "has dependencies" true
      (slice.Triage.relevant <> [])
  | _ -> Alcotest.fail "expected a finding"

(* -- Campaign ----------------------------------------------------------------- *)

let test_campaign_finds_bugs () =
  let stats =
    Campaign.run ~seed:42 ~iterations:2500 Campaign.bvf_strategy
      (Kconfig.default Version.Bpf_next)
  in
  Alcotest.(check bool) "finds several bugs" true
    (List.length (Campaign.bugs_found stats) >= 4);
  Alcotest.(check bool) "finds a correctness bug" true
    (List.length (Campaign.correctness_bugs_found stats) >= 1);
  Alcotest.(check bool) "acceptance reasonable" true
    (Campaign.acceptance_rate stats > 0.3)

let test_campaign_deterministic () =
  let run () =
    let s =
      Campaign.run ~seed:77 ~iterations:400 Campaign.bvf_strategy
        (Kconfig.default Version.V6_1)
    in
    (s.Campaign.st_accepted, s.Campaign.st_edges,
     Hashtbl.length s.Campaign.st_findings)
  in
  Alcotest.(check bool) "same seed, same campaign" true (run () = run ())

let test_campaign_fixed_kernel_clean () =
  (* the oracle's soundness: a fixed kernel yields no correctness bugs *)
  let stats =
    Campaign.run ~seed:9 ~iterations:1500 Campaign.bvf_strategy
      (Kconfig.fixed Version.Bpf_next)
  in
  Alcotest.(check int) "no correctness bugs on fixed kernel" 0
    (List.length (Campaign.correctness_bugs_found stats))

let test_campaign_retry_attribution () =
  (* A transiently failing attempt can record the program's novel edges
     before dying (e.g. the rewritten-image allocation fails only after
     verification walked the program); the retry then re-verifies and
     sees nothing new.  That environment churn must not be credited to
     the corpus: under fault injection some retried steps grow coverage
     yet (correctly) add no entry, and a credited entry never claims
     more edges than the whole step observed. *)
  let config = Kconfig.default Version.Bpf_next in
  let failslab = Bvf_kernel.Failslab.create ~rate:0.35 ~seed:13 () in
  let c = Campaign.create ~failslab ~seed:13 Campaign.bvf_strategy config in
  let uncredited = ref 0 in
  for _ = 1 to 400 do
    let retries_before = c.Campaign.stats.Campaign.st_retries in
    let size_before = Corpus.size c.Campaign.corpus in
    let edges_before = Coverage.edge_count c.Campaign.cov in
    Campaign.step c;
    let growth = Coverage.edge_count c.Campaign.cov - edges_before in
    let retried = c.Campaign.stats.Campaign.st_retries > retries_before in
    let added = Corpus.size c.Campaign.corpus > size_before in
    if added then
      (match Corpus.entries c.Campaign.corpus with
       | e :: _ ->
         Alcotest.(check bool) "credit bounded by step growth" true
           (e.Corpus.new_edges <= growth)
       | [] -> ());
    if retried && growth > 0 && not added then incr uncredited
  done;
  Alcotest.(check bool)
    "retried steps can grow coverage without corpus credit" true
    (!uncredited > 0)

let test_campaign_curve_no_duplicate_sample () =
  (* finalizing a campaign twice (run, snapshot, resume for zero further
     iterations) used to push a second closing sample at the same
     iteration, double-counting it in the digest and plotted curves *)
  let config = Kconfig.default Version.Bpf_next in
  let c =
    Campaign.run_t ~sample_every:64 ~seed:11 ~iterations:128
      Campaign.bvf_strategy config
  in
  let s = Campaign.snapshot c in
  let stats =
    Campaign.run ~resume_from:s ~seed:11 ~iterations:0
      Campaign.bvf_strategy config
  in
  let iters =
    List.map (fun sa -> sa.Campaign.sa_iteration) stats.Campaign.st_curve
  in
  Alcotest.(check int) "curve samples unique per iteration"
    (List.length (List.sort_uniq compare iters))
    (List.length iters);
  Alcotest.(check bool) "closing sample present" true
    (List.mem 128 iters)

(* -- Selftests ----------------------------------------------------------------- *)

let test_selftests_all_verified () =
  let suite = Selftests.build ~count:120 Version.Bpf_next in
  Alcotest.(check bool) "suite is populated" true
    (List.length suite.Selftests.requests >= 120);
  List.iter
    (fun req ->
       Alcotest.(check bool) "has load/store" true
         (Array.exists
            (function
              | Insn.Ldx _ | Insn.St _ | Insn.Stx _ | Insn.Atomic _ -> true
              | _ -> false)
            req.Verifier.r_insns))
    suite.Selftests.requests

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "bvf_core"
    [
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "ranges" `Quick test_rng_ranges;
          qt rng_weighted_prop;
          Alcotest.test_case "chance extremes" `Quick
            test_rng_chance_extremes ] );
      ( "generator",
        [ Alcotest.test_case "structure" `Quick test_gen_structure;
          Alcotest.test_case "branches in range" `Quick
            test_gen_branches_in_range;
          Alcotest.test_case "acceptance window" `Slow
            test_gen_acceptance_window;
          Alcotest.test_case "deterministic" `Quick
            test_gen_deterministic ] );
      ( "mutation",
        [ Alcotest.test_case "duplicate" `Quick test_mutate_duplicate;
          Alcotest.test_case "branch safety" `Quick
            test_mutate_never_moves_branch_out;
          Alcotest.test_case "truncate tail" `Quick
            test_mutate_truncate_valid_tail ] );
      ( "corpus",
        [ Alcotest.test_case "add/pick" `Quick test_corpus_add_pick;
          Alcotest.test_case "of_entries" `Quick test_corpus_of_entries ] );
      ( "oracle",
        [ Alcotest.test_case "indicators" `Quick
            test_oracle_indicator_classes;
          Alcotest.test_case "rejected programs" `Quick
            test_oracle_rejected_is_not_correctness ] );
      ( "triage",
        [ Alcotest.test_case "slice" `Quick test_triage_slice;
          Alcotest.test_case "report" `Quick test_triage_report ] );
      ( "campaign",
        [ Alcotest.test_case "finds bugs" `Slow test_campaign_finds_bugs;
          Alcotest.test_case "deterministic" `Quick
            test_campaign_deterministic;
          Alcotest.test_case "fixed kernel clean" `Slow
            test_campaign_fixed_kernel_clean;
          Alcotest.test_case "retry attribution" `Slow
            test_campaign_retry_attribution;
          Alcotest.test_case "curve dedupe" `Quick
            test_campaign_curve_no_duplicate_sample ] );
      ( "selftests",
        [ Alcotest.test_case "all verified" `Slow
            test_selftests_all_verified ] );
    ]
