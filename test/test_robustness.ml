(* Robustness tests: deterministic fault injection (failslab) and
   durable campaigns (checkpoint/resume, retry, the reboot-storm
   breaker).

   The two load-bearing properties:
   - soundness under fault injection: an injected allocation failure is
     environment noise — it surfaces as a clean -ENOMEM outcome and the
     oracle never turns it into a finding;
   - resume determinism: a campaign killed at a checkpoint and resumed
     replays the exact continuation of the uninterrupted run (same
     findings, same coverage, same stats digest). *)

module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Version = Bvf_ebpf.Version
module Kconfig = Bvf_kernel.Kconfig
module Failslab = Bvf_kernel.Failslab
module Venv = Bvf_verifier.Venv
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Rng = Bvf_core.Rng
module Gen = Bvf_core.Gen
module Corpus = Bvf_core.Corpus
module Oracle = Bvf_core.Oracle
module Campaign = Bvf_core.Campaign
module Checkpoint = Bvf_core.Checkpoint

(* -- Failslab ----------------------------------------------------------- *)

let test_failslab_deterministic () =
  let a = Failslab.create ~rate:0.3 ~seed:9 () in
  let b = Failslab.create ~rate:0.3 ~seed:9 () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "same decision"
      (Failslab.should_fail a ~site:"s")
      (Failslab.should_fail b ~site:"s")
  done;
  Alcotest.(check int) "same injected count" (Failslab.injected a)
    (Failslab.injected b);
  Alcotest.(check bool) "roughly the configured rate" true
    (let r = float_of_int (Failslab.injected a) /. 1000.0 in
     r > 0.2 && r < 0.4)

let test_failslab_extremes () =
  let z = Failslab.off () in
  for _ = 1 to 200 do
    Alcotest.(check bool) "off never fails" false
      (Failslab.should_fail z ~site:"x")
  done;
  Alcotest.(check int) "off consults nothing" 0 (Failslab.attempts z);
  let one = Failslab.create ~rate:1.0 ~seed:1 () in
  for _ = 1 to 200 do
    Alcotest.(check bool) "rate 1 always fails" true
      (Failslab.should_fail one ~site:"x")
  done;
  let spaced = Failslab.create ~space:10 ~rate:1.0 ~seed:1 () in
  for _ = 1 to 10 do
    Alcotest.(check bool) "grace period holds" false
      (Failslab.should_fail spaced ~site:"x")
  done;
  Alcotest.(check bool) "fails after grace" true
    (Failslab.should_fail spaced ~site:"x");
  match Failslab.create ~rate:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for rate 1.5"

(* Oracle soundness under total allocation blackout: with a 100% fault
   rate every load fails with a transient errno, produces no kernel
   reports, and the oracle reports no findings — an injected
   environmental fault is never a correctness-bug finding. *)
let test_failslab_blackout_sound () =
  let plan = Failslab.create ~rate:1.0 ~seed:5 () in
  let config = Kconfig.fixed Version.Bpf_next in
  let session = Loader.create ~failslab:plan config in
  let maps = Campaign.standard_maps session in
  Alcotest.(check int) "no map survives creation" 0 (List.length maps);
  let cfg = { Gen.c_version = Version.Bpf_next; Gen.c_maps = maps } in
  let rng = Rng.create 31 in
  for _ = 1 to 200 do
    let req = Gen.generate rng cfg in
    let result = Loader.load_and_run session req in
    (match result.Loader.verdict with
     | Error e ->
       Alcotest.(check bool) "errno is transient" true
         (Venv.errno_is_transient e.Venv.errno)
     | Ok _ -> Alcotest.fail "loaded despite 100% failslab");
    Alcotest.(check int) "no kernel reports" 0
      (List.length result.Loader.reports);
    Alcotest.(check int) "no oracle findings" 0
      (List.length (Oracle.classify config result))
  done

(* A stale map fd (e.g. the map's creation failed with -ENOMEM earlier)
   is a clean -EBADF load error, never an exception. *)
let test_stale_map_fd_clean_error () =
  let session = Loader.create (Kconfig.default Version.Bpf_next) in
  let insns = Asm.prog [ [ Asm.ld_map_fd Insn.R6 999 ]; Asm.ret 0l ] in
  match
    Loader.load_and_run session (Verifier.request Prog.Socket_filter insns)
  with
  | { Loader.verdict = Error e; reports = []; _ } ->
    Alcotest.(check string) "EBADF" "EBADF"
      (Venv.errno_to_string e.Venv.errno)
  | _ -> Alcotest.fail "expected a clean EBADF rejection"

(* Fixed kernel + fault injection: the campaign completes, retries
   transients, and reports zero findings of any kind. *)
let test_campaign_failslab_fixed_clean () =
  let plan = Failslab.create ~rate:0.2 ~seed:3 () in
  let stats =
    Campaign.run ~failslab:plan ~seed:8 ~iterations:1200
      Campaign.bvf_strategy
      (Kconfig.fixed Version.Bpf_next)
  in
  Alcotest.(check int) "all iterations ran" 1200 stats.Campaign.st_generated;
  Alcotest.(check int) "zero findings under fault injection" 0
    (Hashtbl.length stats.Campaign.st_findings);
  Alcotest.(check bool) "fault plan was exercised" true
    (Failslab.injected plan > 0);
  Alcotest.(check bool) "transients were retried" true
    (stats.Campaign.st_retries > 0)

(* The acceptance-criterion campaign: 5k iterations at a 10% fault rate
   against the buggy kernel complete without an exception, and every
   finding is attributed to an injected bug — none to injected faults. *)
let test_campaign_failslab_5k () =
  let plan = Failslab.create ~rate:0.1 ~seed:7 () in
  let stats =
    Campaign.run ~failslab:plan ~checkpoint_every:1000 ~seed:4
      ~iterations:5000 Campaign.bvf_strategy
      (Kconfig.default Version.Bpf_next)
  in
  Alcotest.(check int) "all iterations ran" 5000 stats.Campaign.st_generated;
  Alcotest.(check bool) "fault plan was exercised" true
    (Failslab.injected plan > 0);
  Alcotest.(check bool) "found bugs despite the faults" true
    (List.length (Campaign.bugs_found stats) >= 4);
  Hashtbl.iter
    (fun _ (f : Campaign.found) ->
       Alcotest.(check bool) "finding attributed to an injected bug" true
         (f.Campaign.fd_finding.Oracle.f_bug <> None))
    stats.Campaign.st_findings

(* -- Rng state ---------------------------------------------------------- *)

let test_rng_state_roundtrip () =
  let a = Rng.create 42 in
  for _ = 1 to 17 do
    ignore (Rng.next a)
  done;
  let b = Rng.of_state (Rng.state a) in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same continuation" (Rng.next a) (Rng.next b)
  done

(* -- Reboot-storm breaker ----------------------------------------------- *)

let dummy_req = Verifier.request Prog.Socket_filter [| Insn.Exit |]

let test_corpus_quarantine () =
  let c = Corpus.create () in
  Corpus.add c ~iteration:1 ~new_edges:5 dummy_req;
  let e =
    match Corpus.pick_entry c (Rng.create 1) with
    | Some e -> e
    | None -> Alcotest.fail "expected a pick"
  in
  Alcotest.(check bool) "first blame keeps the entry" false
    (Corpus.blame c e ~quarantine_after:3);
  Corpus.absolve e;
  Alcotest.(check bool) "absolution resets the count" false
    (Corpus.blame c e ~quarantine_after:3);
  Alcotest.(check bool) "second consecutive blame keeps" false
    (Corpus.blame c e ~quarantine_after:3);
  Alcotest.(check bool) "third consecutive blame quarantines" true
    (Corpus.blame c e ~quarantine_after:3);
  Alcotest.(check int) "entry removed" 0 (Corpus.size c);
  Alcotest.(check int) "quarantine counted" 1 (Corpus.quarantined c)

(* -- Checkpoint container ----------------------------------------------- *)

let test_checkpoint_container () =
  let path = Filename.temp_file "bvf_ck" ".ckpt" in
  (match Checkpoint.save ~path ~tag:"test/1" [ 1; 2; 3 ] with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
  (match
     (Checkpoint.load ~path ~tag:"test/1"
      : (int list, Checkpoint.error) result)
   with
   | Ok v -> Alcotest.(check (list int)) "round trip" [ 1; 2; 3 ] v
   | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
  (match
     (Checkpoint.load ~path ~tag:"test/2"
      : (int list, Checkpoint.error) result)
   with
   | Error (Checkpoint.Tag_mismatch _) -> ()
   | _ -> Alcotest.fail "expected a tag mismatch");
  (* flip a payload byte: the digest must catch it *)
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string contents in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  (match
     (Checkpoint.load ~path ~tag:"test/1"
      : (int list, Checkpoint.error) result)
   with
   | Error (Checkpoint.Corrupt _) -> ()
   | _ -> Alcotest.fail "expected corruption to be detected");
  (* arbitrary files are rejected up front *)
  let oc = open_out_bin path in
  output_string oc "hello world\n";
  close_out oc;
  (match
     (Checkpoint.load ~path ~tag:"test/1"
      : (int list, Checkpoint.error) result)
   with
   | Error Checkpoint.Bad_magic -> ()
   | _ -> Alcotest.fail "expected bad magic");
  Sys.remove path

(* Fuzz the checkpoint loader: every truncation and every single-bit
   corruption of a valid checkpoint file must come back as a clean
   [Error] — never an exception, never a silently wrong [Ok].  This is
   the surface a crashed writer or a bad disk hands the supervisor. *)
let test_checkpoint_loader_fuzz () =
  let path = Filename.temp_file "bvf_ldfz" ".ckpt" in
  let _ =
    Campaign.run ~checkpoint_every:50 ~checkpoint_path:path ~seed:11
      ~iterations:50 Campaign.bvf_strategy (Kconfig.default Version.V6_1)
  in
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let len = String.length contents in
  let write_bytes (b : bytes) : unit =
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc
  in
  let expect_error what =
    match Campaign.load_checkpoint ~path with
    | Ok _ -> Alcotest.failf "%s loaded as Ok" what
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "%s raised %s" what (Printexc.to_string e)
  in
  (* truncations, including the empty file *)
  let t = ref 0 in
  while !t < len do
    write_bytes (Bytes.of_string (String.sub contents 0 !t));
    expect_error (Printf.sprintf "truncation to %d bytes" !t);
    t := !t + max 1 (len / 97)
  done;
  (* single bit flips across the file (header, digest and payload) *)
  let off = ref 0 in
  while !off < len do
    let b = Bytes.of_string contents in
    Bytes.set b !off (Char.chr (Char.code (Bytes.get b !off) lxor 0x10));
    write_bytes b;
    expect_error (Printf.sprintf "bit flip at offset %d" !off);
    off := !off + max 1 (len / 211)
  done;
  (* the pristine bytes still load *)
  write_bytes (Bytes.of_string contents);
  (match Campaign.load_checkpoint ~path with
   | Ok s ->
     Alcotest.(check int) "pristine file loads" 50 s.Campaign.sn_completed
   | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
  Sys.remove path

(* -- Resume determinism ------------------------------------------------- *)

(* 2N iterations straight (with a checkpoint barrier every N) must be
   indistinguishable from N iterations, kill, resume from the
   checkpoint, N more: same findings, same coverage, same stats
   digest. *)
let test_checkpoint_resume_determinism () =
  let config = Kconfig.default Version.V6_1 in
  let n = 250 in
  let path_a = Filename.temp_file "bvf_straight" ".ckpt" in
  let path_b = Filename.temp_file "bvf_resumed" ".ckpt" in
  let straight =
    Campaign.run
      ~failslab:(Failslab.create ~rate:0.1 ~seed:2 ())
      ~checkpoint_every:n ~checkpoint_path:path_a ~seed:55
      ~iterations:(2 * n) Campaign.bvf_strategy config
  in
  let first =
    Campaign.run
      ~failslab:(Failslab.create ~rate:0.1 ~seed:2 ())
      ~checkpoint_every:n ~checkpoint_path:path_b ~seed:55 ~iterations:n
      Campaign.bvf_strategy config
  in
  Alcotest.(check int) "first half ran" n first.Campaign.st_generated;
  let snap =
    match Campaign.load_checkpoint ~path:path_b with
    | Ok s -> s
    | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
  in
  Alcotest.(check int) "snapshot taken at the barrier" n
    snap.Campaign.sn_completed;
  let resumed =
    Campaign.run ~resume_from:snap ~checkpoint_every:n ~seed:0
      ~iterations:n Campaign.bvf_strategy config
  in
  Alcotest.(check int) "resumed to completion" (2 * n)
    resumed.Campaign.st_generated;
  Alcotest.(check (list string)) "same findings fingerprints"
    (Campaign.fingerprints straight)
    (Campaign.fingerprints resumed);
  Alcotest.(check int) "same coverage edge count"
    straight.Campaign.st_edges resumed.Campaign.st_edges;
  Alcotest.(check string) "same stats digest"
    (Campaign.digest straight) (Campaign.digest resumed);
  Sys.remove path_a;
  Sys.remove path_b

(* External stop (the CLI's SIGINT/SIGTERM path): the campaign finishes
   the in-flight iteration, writes a final checkpoint and stops.  The
   stop acts as an extra barrier (save, then reboot — checked before
   the scheduled-barrier test, so a stop landing ON a barrier runs the
   sequence once).  Resuming replays the exact continuation, so:
   - a stop aligned with a scheduled barrier resumes to the same digest
     as the uninterrupted run (identical barrier schedules);
   - a stop anywhere is deterministic: two independent
     stop-at-i/resume sequences produce identical digests. *)
let test_stop_resume_digest_identity () =
  let config = Kconfig.default Version.V6_1 in
  let total = 300 in
  let stop_resume (stop_at : int) : Campaign.stats =
    let path = Filename.temp_file "bvf_stop" ".ckpt" in
    let polls = ref 0 in
    let stopped =
      Campaign.run ~checkpoint_every:100 ~checkpoint_path:path
        ~stop:(fun () -> incr polls; !polls >= stop_at)
        ~seed:21 ~iterations:total Campaign.bvf_strategy config
    in
    Alcotest.(check int) "stopped after the in-flight iteration" stop_at
      stopped.Campaign.st_generated;
    let snap =
      match Campaign.load_checkpoint ~path with
      | Ok s -> s
      | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
    in
    Alcotest.(check int) "final checkpoint taken at the stop" stop_at
      snap.Campaign.sn_completed;
    Sys.remove path;
    Campaign.run ~resume_from:snap ~checkpoint_every:100 ~seed:0
      ~iterations:(total - stop_at) Campaign.bvf_strategy config
  in
  let straight =
    Campaign.run ~checkpoint_every:100 ~seed:21 ~iterations:total
      Campaign.bvf_strategy config
  in
  (* barrier-aligned stop: bit-for-bit the uninterrupted campaign *)
  let resumed_200 = stop_resume 200 in
  Alcotest.(check string) "barrier-aligned stop resumes to same digest"
    (Campaign.digest straight)
    (Campaign.digest resumed_200);
  (* arbitrary stop: the extra stop barrier (one more reboot) is in the
     digest, so compare two independent interrupted runs instead *)
  let a = stop_resume 137 and b = stop_resume 137 in
  Alcotest.(check string) "arbitrary stop resumes deterministically"
    (Campaign.digest a) (Campaign.digest b);
  Alcotest.(check int) "arbitrary stop completes the budget" total
    a.Campaign.st_generated;
  Alcotest.(check int) "one extra reboot from the stop barrier"
    (straight.Campaign.st_reboots + 1)
    a.Campaign.st_reboots
let test_resume_validation () =
  let config = Kconfig.default Version.V6_1 in
  let path = Filename.temp_file "bvf_val" ".ckpt" in
  let _ =
    Campaign.run ~checkpoint_every:100 ~checkpoint_path:path ~seed:3
      ~iterations:100 Campaign.bvf_strategy config
  in
  let snap =
    match Campaign.load_checkpoint ~path with
    | Ok s -> s
    | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
  in
  (match
     Campaign.resume Campaign.bvf_strategy
       (Kconfig.default Version.Bpf_next) snap
   with
   | exception Campaign.Environment _ -> ()
   | _ -> Alcotest.fail "expected kernel-version mismatch to be refused");
  Sys.remove path

let () =
  Alcotest.run "bvf_robustness"
    [
      ( "failslab",
        [ Alcotest.test_case "deterministic" `Quick
            test_failslab_deterministic;
          Alcotest.test_case "extremes" `Quick test_failslab_extremes;
          Alcotest.test_case "blackout is sound" `Quick
            test_failslab_blackout_sound;
          Alcotest.test_case "stale map fd" `Quick
            test_stale_map_fd_clean_error ] );
      ( "campaign under faults",
        [ Alcotest.test_case "fixed kernel clean" `Slow
            test_campaign_failslab_fixed_clean;
          Alcotest.test_case "5k at 10%" `Slow test_campaign_failslab_5k ] );
      ( "rng state",
        [ Alcotest.test_case "roundtrip" `Quick test_rng_state_roundtrip ] );
      ( "storm breaker",
        [ Alcotest.test_case "quarantine" `Quick test_corpus_quarantine ] );
      ( "checkpoint",
        [ Alcotest.test_case "container" `Quick test_checkpoint_container;
          Alcotest.test_case "loader fuzz" `Slow
            test_checkpoint_loader_fuzz;
          Alcotest.test_case "resume determinism" `Slow
            test_checkpoint_resume_determinism;
          Alcotest.test_case "stop/resume digest identity" `Slow
            test_stop_resume_digest_identity;
          Alcotest.test_case "resume validation" `Quick
            test_resume_validation ] );
    ]
