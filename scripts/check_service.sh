#!/bin/sh
# Service-layer CI gate (docs/SERVICE.md).
#
# Exports the 708-program selftest corpus, batches it twice through the
# same on-disk verdict cache, and asserts the service contract:
#
#   1. per-program results are byte-identical between the cold and warm
#      passes once the one history-dependent field ("cache":...) is
#      stripped — the cache changes latency, never verdicts;
#   2. the warm pass answers >= 95% of programs from the cache;
#   3. no program comes back as a decode/parse error.
#
# Usage: scripts/check_service.sh [outdir] [bvf-binary]
set -u

out=${1:-service-out}
bvf=${2:-_build/default/bin/bvf.exe}

[ -x "$bvf" ] || { echo "missing $bvf (run: dune build)" >&2; exit 2; }
mkdir -p "$out"

echo "== exporting selftest corpus"
"$bvf" selftests --count 708 --export "$out/corpus.jsonl" || exit 3

echo "== cold batch"
"$bvf" batch --jobs 4 --cache-file "$out/cache.bin" \
  --out "$out/cold.jsonl" "$out/corpus.jsonl" \
  2> "$out/cold-summary.json" || exit 3
cat "$out/cold-summary.json"

echo "== warm batch (same cache file)"
"$bvf" batch --jobs 4 --cache-file "$out/cache.bin" \
  --out "$out/warm.jsonl" "$out/corpus.jsonl" \
  2> "$out/warm-summary.json" || exit 3
cat "$out/warm-summary.json"

status=0

# 1. byte-identity up to the cache field
sed 's/,"cache":"[a-z]*"//' "$out/cold.jsonl" > "$out/cold.stripped"
sed 's/,"cache":"[a-z]*"//' "$out/warm.jsonl" > "$out/warm.stripped"
if cmp -s "$out/cold.stripped" "$out/warm.stripped"; then
  echo "ok    warm results byte-identical to cold (cache field stripped)"
else
  echo "FAIL  warm results differ from cold:"
  diff "$out/cold.stripped" "$out/warm.stripped" | head -20
  status=1
fi

# 2. warm hit rate >= 95%
total=$(wc -l < "$out/warm.jsonl")
hits=$(grep -c '"cache":"hit"' "$out/warm.jsonl")
if [ "$total" -gt 0 ] && [ $((hits * 100)) -ge $((total * 95)) ]; then
  echo "ok    warm hit rate: $hits/$total"
else
  echo "FAIL  warm hit rate below 95%: $hits/$total"
  status=1
fi

# 3. every program decoded and verified (error responses carry no key)
errors=$(grep -c '"verdict":"error"' "$out/cold.jsonl" || true)
if [ "$errors" -eq 0 ]; then
  echo "ok    no decode/parse errors"
else
  echo "FAIL  $errors error responses in the cold pass"
  status=1
fi

# serve smoke: the same requests through the request loop, warm cache
echo "== serve smoke"
head -5 "$out/corpus.jsonl" \
  | "$bvf" serve --cache-file "$out/cache.bin" \
      > "$out/serve.jsonl" 2> "$out/serve.log" || exit 3
cat "$out/serve.log"
served=$(wc -l < "$out/serve.jsonl")
serve_hits=$(grep -c '"cache":"hit"' "$out/serve.jsonl")
if [ "$served" -eq 5 ] && [ "$serve_hits" -eq 5 ]; then
  echo "ok    serve answered 5/5 from the warmed cache"
else
  echo "FAIL  serve answered $served requests, $serve_hits from cache"
  status=1
fi

exit $status
