#!/bin/sh
# Hot-path throughput regression gate.
#
# Compares a freshly produced BENCH_hotpath.json (normally from
# `dune exec bench/main.exe -- hotpath-quick`) against the committed
# bench-baseline.json and fails when any row's programs_per_sec drops
# more than the allowed fraction (default 20%).  The campaign row's
# determinism digest must also match the baseline exactly: a perf
# change that silently alters generated programs is a behavior change,
# not an optimisation.
#
# Usage: scripts/check_hotpath.sh [new.json] [baseline.json] [max-drop-%]
set -u

new=${1:-BENCH_hotpath.json}
baseline=${2:-bench-baseline.json}
max_drop=${3:-20}

[ -f "$new" ] || { echo "missing $new (run: dune exec bench/main.exe -- hotpath-quick)" >&2; exit 2; }
[ -f "$baseline" ] || { echo "missing $baseline" >&2; exit 2; }

python3 - "$new" "$baseline" "$max_drop" <<'EOF'
import json, sys

new_path, base_path, max_drop = sys.argv[1], sys.argv[2], float(sys.argv[3])
new = json.load(open(new_path))
base = json.load(open(base_path))

status = 0

if new.get("digest") != base.get("digest"):
    print(f"FAIL digest: {new.get('digest')} != baseline {base.get('digest')}"
          " (campaign behavior changed)")
    status = 1

base_rows = {r["name"]: r for r in base["rows"]}
for row in new["rows"]:
    name = row["name"]
    ref = base_rows.get(name)
    if ref is None:
        print(f"WARN  {name}: no baseline row, skipping")
        continue
    got, want = row["programs_per_sec"], ref["programs_per_sec"]
    drop = 100.0 * (want - got) / want if want > 0 else 0.0
    verdict = "FAIL" if drop > max_drop else "ok"
    print(f"{verdict:4}  {name}: {got:.0f} programs/sec vs baseline "
          f"{want:.0f} ({-drop:+.1f}%)")
    if drop > max_drop:
        status = 1

missing = set(base_rows) - {r["name"] for r in new["rows"]}
for name in sorted(missing):
    print(f"FAIL  {name}: row missing from {new_path}")
    status = 1

sys.exit(status)
EOF
