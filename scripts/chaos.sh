#!/bin/sh
# Chaos test for the supervised campaign runner (docs/RESILIENCE.md).
#
# Starts a supervised `bvf fuzz --workers` campaign, SIGKILLs workers
# mid-run (pids read from the worker heartbeat files), lets the
# watchdog restart them from their checkpoints, and then requires:
#
#   1. the disturbed campaign still completes (exit 0);
#   2. its digest equals a fault-free reference run given the same
#      quarantine list -- a crash costs exactly the quarantined
#      iterations, nothing else;
#   3. `bvf merge` over the disturbed run's worker checkpoints
#      reproduces the same digest (the salvage path).
#
# Usage: sh scripts/chaos.sh [outdir]   (default: ./chaos-out)
set -u

BVF="dune exec --no-build bin/bvf.exe --"
OUT=${1:-chaos-out}
SEED=7
ITERS=60000
WORKERS=2
CKPT_EVERY=500
SHARD=$((ITERS / WORKERS))

rm -rf "$OUT"
mkdir -p "$OUT"
STATE="$OUT/state"
REF="$OUT/ref"

fail() { echo "chaos: FAIL: $*" >&2; exit 1; }

digest_of() { sed -n 's/^merged digest: //p' "$1" | tail -n 1; }

# Kill worker $1 only while it is clearly mid-shard: heartbeat present,
# no done file, and fewer than half its local iterations executed (a
# kill racing shard completion could quarantine already-merged work,
# which the reference run would then skip -- a different campaign, not
# a supervision bug).
kill_worker() {
  w=$1
  hb="$STATE/worker-$w.hb"
  [ -f "$hb" ] || { echo "chaos: worker $w has no heartbeat yet, skipping kill"; return; }
  [ -f "$STATE/worker-$w.done" ] && { echo "chaos: worker $w already done, skipping kill"; return; }
  set -- $(cat "$hb")
  local_iter=$2
  pid=$4
  if [ "$local_iter" -ge $((SHARD / 2)) ]; then
    echo "chaos: worker $w at local $local_iter/$SHARD, too close to done, skipping kill"
    return
  fi
  echo "chaos: SIGKILL worker $w (pid $pid, local iteration $local_iter)"
  kill -KILL "$pid" 2>/dev/null || echo "chaos: worker $w pid $pid already gone"
}

echo "chaos: disturbed run: seed $SEED, $ITERS iterations, $WORKERS workers"
$BVF fuzz --seed $SEED -n $ITERS --workers $WORKERS \
  --state-dir "$STATE" --checkpoint-every $CKPT_EVERY \
  > "$OUT/disturbed.log" 2>&1 &
CAMPAIGN=$!

# wait for the heartbeats, then murder each worker once
tries=0
while [ ! -f "$STATE/worker-0.hb" ] || [ ! -f "$STATE/worker-1.hb" ]; do
  tries=$((tries + 1))
  [ $tries -gt 100 ] && fail "workers never wrote a heartbeat"
  kill -0 "$CAMPAIGN" 2>/dev/null || fail "campaign died before any heartbeat"
  sleep 0.2
done
sleep 1
kill_worker 0
sleep 2
kill_worker 1

wait "$CAMPAIGN"
status=$?
cat "$OUT/disturbed.log"
[ $status -eq 0 ] || fail "disturbed campaign exited $status"

DISTURBED=$(digest_of "$OUT/disturbed.log")
[ -n "$DISTURBED" ] || fail "no merged digest in disturbed output"
echo "chaos: disturbed digest $DISTURBED"

if [ -s "$STATE/quarantine.list" ]; then
  echo "chaos: quarantined iterations: $(grep -cv '^#' "$STATE/quarantine.list")"
  QUARANTINE="--quarantine $STATE/quarantine.list"
else
  echo "chaos: no kill landed mid-iteration; reference runs fault-free"
  QUARANTINE=""
fi

echo "chaos: fault-free reference with the disturbed run's quarantine"
$BVF fuzz --seed $SEED -n $ITERS --workers $WORKERS \
  --state-dir "$REF" --checkpoint-every $CKPT_EVERY $QUARANTINE \
  > "$OUT/reference.log" 2>&1
status=$?
cat "$OUT/reference.log"
[ $status -eq 0 ] || fail "reference campaign exited $status"

REFERENCE=$(digest_of "$OUT/reference.log")
[ "$DISTURBED" = "$REFERENCE" ] || \
  fail "digest mismatch: disturbed $DISTURBED vs reference $REFERENCE"
echo "chaos: digests match -- the crashes cost exactly the quarantined iterations"

echo "chaos: salvage: bvf merge over the disturbed run's worker checkpoints"
$BVF merge "$STATE"/worker-*.ckpt -o "$OUT/salvaged.ckpt" \
  > "$OUT/merge.log" 2>&1 || { cat "$OUT/merge.log"; fail "bvf merge failed"; }
cat "$OUT/merge.log"
MERGED=$(sed -n 's/^merged digest: //p' "$OUT/merge.log" | tail -n 1)
[ "$DISTURBED" = "$MERGED" ] || \
  fail "salvaged digest mismatch: $MERGED vs $DISTURBED"
echo "chaos: salvaged checkpoint reproduces the campaign digest"

echo "chaos: PASS"
