#!/bin/sh
# Check that every relative markdown link in the documentation resolves
# to a file or directory in the repository.  External links (http/https/
# mailto) and intra-page anchors (#…) are ignored; a link's own anchor
# suffix (FILE.md#section) is stripped before the existence check.
#
# Usage: scripts/check_doc_links.sh   (from the repository root)
set -u

status=0

for doc in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # one inline markdown link target per line: [text](target)
  grep -o '\[[^][]*\]([^()[:space:]]*)' "$doc" 2>/dev/null \
    | sed 's/^.*](\([^()]*\))$/\1/' \
    | while IFS= read -r target; do
        case "$target" in
          http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ]; then
          echo "$doc: broken link -> $target"
        fi
      done
done > /tmp/broken_links.$$

if [ -s /tmp/broken_links.$$ ]; then
  cat /tmp/broken_links.$$
  status=1
else
  echo "doc links ok"
fi
rm -f /tmp/broken_links.$$
exit $status
