(* Benchmark & experiment harness: regenerates every table and figure of
   the paper's evaluation from {!Bvf_experiments.Experiments}.

     dune exec bench/main.exe               - all experiments, full size
     dune exec bench/main.exe -- quick      - all experiments, small size
     dune exec bench/main.exe -- table2     - Table 2 only
     dune exec bench/main.exe -- table3     - Table 3 only
     dune exec bench/main.exe -- figure6    - Figure 6 series
     dune exec bench/main.exe -- acceptance - section 6.3 statistics
     dune exec bench/main.exe -- overhead   - section 6.4 sanitation cost
     dune exec bench/main.exe -- ablation   - DESIGN.md ablations
     dune exec bench/main.exe -- parallel   - sharded-campaign scaling at
                                              1/2/4 domains; writes
                                              BENCH_parallel.json
     dune exec bench/main.exe -- parallel-quick - same, smoke-sized
     dune exec bench/main.exe -- verify     - verification hot path only
     dune exec bench/main.exe -- exec       - execution hot path only
     dune exec bench/main.exe -- hotpath    - verify + exec + sequential
                                              campaign; writes
                                              BENCH_hotpath.json
     dune exec bench/main.exe -- hotpath-quick - same, smoke-sized (CI
                                              regression gate input)
     dune exec bench/main.exe -- bechamel   - Bechamel timing suite
                                              (one Test.make per artefact) *)

module E = Bvf_experiments.Experiments

let line () = print_endline (String.make 78 '-')

let run_table2 ~iterations () =
  line ();
  E.print_table2 (E.table2 ~iterations ())

let coverage_memo = ref None

let coverage ~iterations ~repetitions () =
  match !coverage_memo with
  | Some t -> t
  | None ->
    let t = E.coverage ~iterations ~repetitions () in
    coverage_memo := Some t;
    t

let run_table3 ~iterations ~repetitions () =
  line ();
  E.print_table3 (coverage ~iterations ~repetitions ())

let run_figure6 ~iterations ~repetitions () =
  line ();
  E.print_figure6 (coverage ~iterations ~repetitions ())

let run_acceptance ~programs () =
  line ();
  E.print_acceptance (E.acceptance ~programs ())

let run_overhead ~count ~runs () =
  line ();
  E.print_overhead (E.overhead ~count ~runs ())

let run_ablation ~iterations () =
  line ();
  E.print_ablation (E.ablation ~iterations ())

(* Parallel scaling: prints the table and records the machine-readable
   baseline next to the repo root (the BENCH_*.json perf trajectory). *)
let run_parallel ?(path = "BENCH_parallel.json") ~iterations () =
  line ();
  let p = E.parallel_bench ~iterations () in
  E.print_parallel p;
  let oc = open_out path in
  output_string oc (E.parallel_to_json p);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* Hot-path microbench: sequential verify / exec / campaign throughput
   plus allocation, recorded as BENCH_hotpath.json — the input of the
   CI regression gate (scripts/check_hotpath.sh). *)
let run_hotpath ?(path = "BENCH_hotpath.json") ~count ~repeat ~exec_runs
    ~iterations () =
  line ();
  let h = E.hotpath_bench ~count ~repeat ~exec_runs ~iterations () in
  E.print_hotpath h;
  let oc = open_out path in
  output_string oc (E.hotpath_to_json h);
  close_out oc;
  Printf.printf "wrote %s\n" path

let print_hotpath_row (r : E.hotpath_row) =
  line ();
  Printf.printf
    "%s: %d programs, %d insns in %.3fs = %.0f programs/sec, %.1f \
     ns/insn, %.0f minor words/program\n"
    r.E.hp_name r.E.hp_programs r.E.hp_insns r.E.hp_seconds
    r.E.hp_progs_per_sec r.E.hp_ns_per_insn r.E.hp_minor_words_per_prog

(* -- Bechamel micro-suite: one Test.make per paper artefact ------------- *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"bvf"
      [
        mk "table2:campaign-step" (fun () ->
            ignore (E.table2 ~iterations:150 ~seed:9 ()));
        mk "table3:coverage-cell" (fun () ->
            ignore (E.coverage ~iterations:150 ~repetitions:1
                      ~sample_every:50 ()));
        mk "figure6:curve" (fun () ->
            ignore (E.coverage ~iterations:100 ~repetitions:1
                      ~sample_every:25 ()));
        mk "acceptance:verify-only" (fun () ->
            ignore (E.acceptance ~programs:150 ()));
        mk "overhead:selftests" (fun () ->
            ignore (E.overhead ~count:24 ~runs:2 ()));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:12 ~quota:(Time.second 2.0) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0
      ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  line ();
  print_endline "Bechamel timing (monotonic clock per run):";
  Hashtbl.iter
    (fun name result ->
       Format.printf "  %-28s %a@." name Analyze.OLS.pp result)
    results

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match arg with
  | "table2" -> run_table2 ~iterations:12_000 ()
  | "table3" -> run_table3 ~iterations:6_000 ~repetitions:3 ()
  | "figure6" -> run_figure6 ~iterations:6_000 ~repetitions:3 ()
  | "acceptance" -> run_acceptance ~programs:4_000 ()
  | "overhead" -> run_overhead ~count:708 ~runs:60 ()
  | "ablation" -> run_ablation ~iterations:6_000 ()
  | "parallel" -> run_parallel ~iterations:6_000 ()
  | "parallel-quick" -> run_parallel ~iterations:1_500 ()
  | "verify" -> print_hotpath_row (E.hotpath_verify ~repeat:10 ())
  | "exec" -> print_hotpath_row (E.hotpath_exec ~runs:60 ())
  | "hotpath" ->
    run_hotpath ~count:708 ~repeat:10 ~exec_runs:60 ~iterations:6_000 ()
  | "hotpath-quick" ->
    (* rows sized to stay well above timer noise on shared CI runners:
       the 20%-drop gate in scripts/check_hotpath.sh needs each row to
       run for a few hundred milliseconds at least *)
    run_hotpath ~count:400 ~repeat:20 ~exec_runs:120 ~iterations:3_000 ()
  | "bechamel" -> bechamel_suite ()
  | "quick" ->
    run_table2 ~iterations:3_000 ();
    run_table3 ~iterations:1_500 ~repetitions:2 ();
    run_figure6 ~iterations:1_500 ~repetitions:2 ();
    run_acceptance ~programs:1_000 ();
    run_overhead ~count:150 ~runs:10 ();
    run_ablation ~iterations:1_500 ()
  | "all" ->
    run_table2 ~iterations:12_000 ();
    run_table3 ~iterations:6_000 ~repetitions:3 ();
    run_figure6 ~iterations:6_000 ~repetitions:3 ();
    run_acceptance ~programs:4_000 ();
    run_overhead ~count:708 ~runs:60 ();
    run_ablation ~iterations:6_000 ();
    run_parallel ~iterations:6_000 ()
  | other ->
    Printf.eprintf
      "unknown experiment %S (try: all quick table2 table3 figure6 \
       acceptance overhead ablation parallel parallel-quick verify exec \
       hotpath hotpath-quick bechamel)\n"
      other;
    exit 2
