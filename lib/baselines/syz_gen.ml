(* Syzkaller-style generation: encoding-valid instructions assembled
   from syscall descriptions, with field values chosen randomly and no
   register-state tracking.  This reproduces the behaviour the paper
   measures in section 6.3: programs are well-formed at the byte level
   but frequently use uninitialized registers or perform illegal
   accesses, so most are rejected with EACCES/EINVAL and the acceptance
   rate sits far below BVF's. *)

module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Helper = Bvf_ebpf.Helper
module Verifier = Bvf_verifier.Verifier
module Rng = Bvf_core.Rng
module Gen = Bvf_core.Gen

let random_reg (rng : Rng.t) : Insn.reg = Rng.choose rng Insn.all_regs

let random_writable_reg (rng : Rng.t) : Insn.reg =
  Rng.choose rng
    [ Insn.R0; Insn.R1; Insn.R2; Insn.R3; Insn.R4; Insn.R5; Insn.R6;
      Insn.R7; Insn.R8; Insn.R9 ]

let random_size (rng : Rng.t) : Insn.size =
  Rng.choose rng [ Insn.B; Insn.H; Insn.W; Insn.DW ]

let small_off (rng : Rng.t) : int = Rng.int rng 32 - 16

let random_insn (rng : Rng.t) (cfg : Gen.config) ~(len : int) : Insn.t =
  match
    Rng.weighted rng
      [ (6, `Alu); (3, `Jmp); (3, `Ldx); (3, `Stx); (2, `St); (2, `Call);
        (2, `Ld64); (1, `Atomic) ]
  with
  | `Alu ->
    let op =
      Rng.choose rng
        [ Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Or; Insn.And;
          Insn.Lsh; Insn.Rsh; Insn.Neg; Insn.Mod; Insn.Xor; Insn.Mov;
          Insn.Arsh ]
    in
    let src =
      if Rng.bool rng then Insn.Reg (random_reg rng)
      else Insn.Imm (Int64.to_int32 (Rng.interesting rng))
    in
    Insn.Alu { op64 = Rng.bool rng; op; dst = random_writable_reg rng; src }
  | `Jmp ->
    let cond =
      Rng.choose rng
        [ Insn.Jeq; Insn.Jne; Insn.Jgt; Insn.Jge; Insn.Jlt; Insn.Jle;
          Insn.Jsgt; Insn.Jsge; Insn.Jslt; Insn.Jsle; Insn.Jset ]
    in
    let src =
      if Rng.bool rng then Insn.Reg (random_reg rng)
      else Insn.Imm (Int32.of_int (Rng.int rng 64))
    in
    Insn.Jmp
      { op32 = Rng.chance rng 0.2; cond; dst = random_reg rng; src;
        off = Rng.int rng (max 1 len) - (len / 4) }
  | `Ldx ->
    Insn.Ldx
      { sz = random_size rng; dst = random_writable_reg rng;
        src = random_reg rng; off = small_off rng }
  | `Stx ->
    Insn.Stx
      { sz = random_size rng; dst = random_reg rng; src = random_reg rng;
        off = small_off rng }
  | `St ->
    Insn.St
      { sz = random_size rng; dst = random_reg rng; off = small_off rng;
        imm = Int64.to_int32 (Rng.interesting rng) }
  | `Call ->
    (* descriptions list real helper ids, so ids are valid; argument
       states are whatever the registers happen to hold *)
    let ids = List.map (fun h -> h.Helper.id) Helper.public_helpers in
    Insn.Call (Insn.Helper (Rng.choose rng ids))
  | `Ld64 -> begin
      match Rng.weighted rng [ (2, `Imm); (2, `Map) ] with
      | `Imm -> Insn.Ld_imm64 (random_writable_reg rng, Insn.Const (Rng.interesting rng))
      | `Map -> begin
          match Rng.choose_opt rng cfg.Gen.c_maps with
          | Some (fd, _) ->
            Insn.Ld_imm64 (random_writable_reg rng, Insn.Map_fd fd)
          | None ->
            Insn.Ld_imm64 (random_writable_reg rng, Insn.Const 0L)
        end
    end
  | `Atomic ->
    Insn.Atomic
      { sz = (if Rng.bool rng then Insn.W else Insn.DW);
        op =
          Rng.choose rng
            [ Insn.A_add; Insn.A_or; Insn.A_and; Insn.A_xor; Insn.A_xchg;
              Insn.A_cmpxchg ];
        fetch = Rng.bool rng; dst = random_reg rng; src = random_reg rng;
        off = small_off rng }

(* One random bpf(BPF_PROG_LOAD) request, description-shaped: valid
   prog type, sometimes an attach point, a run of random instructions,
   and the mandatory mov0/exit epilogue most descriptions carry. *)
let generate (rng : Rng.t) (cfg : Gen.config) : Verifier.request =
  let prog_type = Gen.pick_prog_type rng in
  let attach =
    if Rng.chance rng 0.5 then
      Gen.pick_attach rng ~version:cfg.Gen.c_version prog_type
    else None
  in
  (* Template fragments distilled from the description corpus and from
     years of syzbot's accumulated programs: valid idioms (the Table 1
     lookup flow, ctx reads, stack traffic) that reach real verifier
     logic even without register-state tracking. *)
  let template () : Insn.t list =
    match Rng.int rng 9 with
    | 0 -> begin
        (* the Table 1 lookup flow *)
        match Rng.choose_opt rng cfg.Gen.c_maps with
        | Some (fd, _) ->
          [ Asm.st_dw Insn.R10 (-8) (Int32.of_int (Rng.int rng 4));
            Asm.ld_map_fd Insn.R1 fd;
            Asm.mov64_reg Insn.R2 Insn.R10;
            Asm.alu64_imm Insn.Add Insn.R2 (-8l);
            Asm.call Helper.map_lookup_elem.Helper.id;
            Asm.jmp_imm Insn.Jne Insn.R0 0l 2;
            Asm.mov64_imm Insn.R0 0l;
            Asm.exit_;
            Asm.stx_dw Insn.R0 Insn.R0 (8 * Rng.int rng 4) ]
        | None -> []
      end
    | 1 ->
      (* ctx read into the stack; offsets straight from the field
         tables, wrong ones included *)
      [ Asm.ldx_w Insn.R2 Insn.R1 (4 * Rng.int rng 20);
        Asm.stx_w Insn.R10 Insn.R2 (-4 * (1 + Rng.int rng 8)) ]
    | 2 ->
      (* stack round-trip *)
      [ Asm.st_dw Insn.R10 (-8 * (1 + Rng.int rng 8))
          (Int64.to_int32 (Rng.interesting rng));
        Asm.ldx_dw Insn.R3 Insn.R10 (-8 * (1 + Rng.int rng 8)) ]
    | 3 ->
      (* BTF object load and probe-read-style access *)
      let sz =
        Rng.choose rng [ Insn.B; Insn.H; Insn.W; Insn.DW ]
      in
      [ Asm.ld_btf_obj Insn.R7 (1 + Rng.int rng 3);
        Asm.ldx sz Insn.R3 Insn.R7 (8 * Rng.int rng 8) ]
    | 4 ->
      (* direct array-map value traffic *)
      let arrays =
        List.filter
          (fun (_, d) -> d.Bvf_kernel.Map.mtype = Bvf_kernel.Map.Array_map)
          cfg.Gen.c_maps
      in
      (match arrays with
       | (fd, _) :: _ ->
         [ Asm.ld_map_value Insn.R8 fd 0;
           Asm.st_w Insn.R8 (4 * Rng.int rng 10)
             (Int32.of_int (Rng.int rng 1000));
           Asm.ldx_w Insn.R4 Insn.R8 (4 * Rng.int rng 10) ]
       | [] -> [])
    | 5 ->
      (* no-argument helper calls *)
      [ Asm.call
          (Rng.choose rng
             [ Helper.ktime_get_ns.Helper.id;
               Helper.get_prandom_u32.Helper.id;
               Helper.get_smp_processor_id.Helper.id;
               Helper.jiffies64.Helper.id ]);
        Asm.stx_dw Insn.R10 Insn.R0 (-16) ]
    | 6 ->
      (* atomic on an array value *)
      let arrays =
        List.filter
          (fun (_, d) -> d.Bvf_kernel.Map.mtype = Bvf_kernel.Map.Array_map)
          cfg.Gen.c_maps
      in
      (match arrays with
       | (fd, _) :: _ ->
         [ Asm.ld_map_value Insn.R8 fd 0;
           Asm.mov64_imm Insn.R3 1l;
           Asm.atomic ~fetch:(Rng.bool rng) Insn.DW
             (Rng.choose rng
                [ Insn.A_add; Insn.A_or; Insn.A_and; Insn.A_xor ])
             Insn.R8 Insn.R3 (8 * Rng.int rng 4) ]
       | [] -> [])
    | 7 ->
      (* pointer arithmetic on a direct value *)
      let arrays =
        List.filter
          (fun (_, d) -> d.Bvf_kernel.Map.mtype = Bvf_kernel.Map.Array_map)
          cfg.Gen.c_maps
      in
      (match arrays with
       | (fd, _) :: _ ->
         [ Asm.ld_map_value Insn.R8 fd 0;
           Asm.mov64_imm Insn.R5 (Int32.of_int (Rng.int rng 64));
           Asm.alu64_imm Insn.And Insn.R5 15l;
           Asm.alu64_reg Insn.Add Insn.R8 Insn.R5;
           Asm.ldx_b Insn.R4 Insn.R8 (Rng.int rng 32) ]
       | [] -> [])
    | _ ->
      (* update an element *)
      (match Rng.choose_opt rng cfg.Gen.c_maps with
       | Some (fd, d) when d.Bvf_kernel.Map.mtype <> Bvf_kernel.Map.Ringbuf
         ->
         List.init ((d.Bvf_kernel.Map.value_size + 7) / 8) (fun i ->
             Asm.st_dw Insn.R10 (-120 + (8 * i)) (Int32.of_int i))
         @ [ Asm.st_dw Insn.R10 (-8) (Int32.of_int (Rng.int rng 4));
             Asm.ld_map_fd Insn.R1 fd;
             Asm.mov64_reg Insn.R2 Insn.R10;
             Asm.alu64_imm Insn.Add Insn.R2 (-8l);
             Asm.mov64_reg Insn.R3 Insn.R10;
             Asm.alu64_imm Insn.Add Insn.R3 (-120l);
             Asm.mov64_imm Insn.R4 0l;
             Asm.call Helper.map_update_elem.Helper.id ]
       | _ -> [])
  in
  let body =
    match Rng.weighted rng [ (22, `Seed); (38, `Template); (40, `Random) ]
    with
    | `Seed ->
      (* syzbot's corpus carries many minimal seed programs (straight
         from the descriptions) that trivially pass: they are what keeps
         its overall acceptance around a quarter *)
      List.init (Rng.int rng 4) (fun i ->
          Asm.mov64_imm
            (Rng.choose rng [ Insn.R0; Insn.R6; Insn.R7; Insn.R8 ])
            (Int32.of_int i))
    | `Template ->
      let body =
        List.concat (List.init (1 + Rng.int rng 3) (fun _ -> template ()))
      in
      (* field randomization on top of the template, as syzkaller's
         mutation does: often breaks the program after the interesting
         checking logic already ran *)
      if Rng.chance rng 0.55 && body <> [] then begin
        let arr = Array.of_list body in
        let i = Rng.int rng (Array.length arr) in
        arr.(i) <-
          (match arr.(i) with
           | Insn.Ldx l ->
             Insn.Ldx { l with off = l.off + Rng.int rng 64 - 32 }
           | Insn.Stx l ->
             Insn.Stx { l with off = l.off + Rng.int rng 64 - 32 }
           | Insn.St l ->
             Insn.St { l with off = l.off + Rng.int rng 64 - 32 }
           | Insn.Alu a -> Insn.Alu { a with dst = random_reg rng }
           | other -> other);
        Array.to_list arr
      end
      else body
    | `Random ->
      let len = 2 + Rng.int rng 24 in
      List.init len (fun _ -> random_insn rng cfg ~len)
  in
  let insns =
    Array.of_list
      (body
       @ (if Rng.chance rng 0.9 then [ Asm.mov64_imm Insn.R0 0l ] else [])
       @ [ Asm.exit_ ])
  in
  { Verifier.r_prog_type = prog_type; r_attach = attach;
    r_offload = Rng.chance rng 0.02; r_insns = insns }

(* Where this generator's programs die in the verifier.  With no
   register-state tracking, templates dereference or leak whatever
   happens to be in a register, so the taxonomy is dominated by memory
   and type errors rather than structural ones.  Kept in rough
   expected-frequency order; the telemetry test checks the observed
   table is a subset of this list. *)
let expected_rejections : Bvf_verifier.Reject_reason.t list =
  Bvf_verifier.Reject_reason.
    [
      Uninit_access; Type_mismatch; Bad_ctx_access; Oob_access;
      Bad_ptr_arith; Ptr_leak; Null_deref; Bad_helper_arg;
      Helper_unavailable; Bad_return_value; Bad_insn; Bad_cfg;
      Unbounded_loop; Bad_map_op; Bad_attach; Priv;
      Insn_limit; Budget_exhausted; Lock_violation; Ref_leak; Prog_size;
    ]

let strategy : Bvf_core.Campaign.strategy =
  {
    Bvf_core.Campaign.s_name = "Syzkaller";
    s_feedback = true; (* syzbot is coverage-guided too *)
    s_generate =
      (fun rng cfg seed ->
         match seed with
         | Some req when Rng.chance rng 0.3 ->
           Bvf_core.Mutate.mutate_request rng ~version:cfg.Gen.c_version
             req
         | Some _ | None -> generate rng cfg);
  }
