(** Syzkaller-style generation: encoding-valid instructions assembled
    from syscall-description-shaped templates and random fields, with no
    register-state tracking — the baseline of the paper's section 6.3
    whose acceptance rate sits at roughly half of BVF's and whose
    rejections are dominated by EACCES/EINVAL. *)

val random_insn :
  Bvf_core.Rng.t -> Bvf_core.Gen.config -> len:int -> Bvf_ebpf.Insn.t

val generate :
  Bvf_core.Rng.t -> Bvf_core.Gen.config -> Bvf_verifier.Verifier.request
(** One random BPF_PROG_LOAD request: minimal seed programs, template
    fragments with randomized fields, or fully random instruction
    runs. *)

val expected_rejections : Bvf_verifier.Reject_reason.t list
(** The rejection reasons this generator is expected to produce, in
    rough frequency order.  Random template-shaped generation with no
    register-state tracking can trip almost the whole taxonomy; the
    documented point is what it {e cannot} produce: [Env_failure]
    (not a program property) and [Unknown] (a taxonomy gap — the
    telemetry test fails if one appears). *)

val strategy : Bvf_core.Campaign.strategy
