(** Buzzer-style generation, reproducing both modes the paper measured
    (section 6.3): fully random bytes (~1% acceptance) and the
    ALU/JMP-only mode (~97% acceptance, ≥88% ALU/JMP instructions,
    touching almost none of the interesting verifier logic). *)

type mode = Random_bytes | Alu_jmp

val mode_to_string : mode -> string

val generate :
  mode -> Bvf_core.Rng.t -> Bvf_core.Gen.config ->
  Bvf_verifier.Verifier.request

val expected_rejections : mode -> Bvf_verifier.Reject_reason.t list
(** The rejection reasons each mode is expected to produce, in rough
    frequency order: [Random_bytes] dies structurally (undecodable
    opcodes dominate, so [Bad_insn]/[Bad_cfg] lead), while [Alu_jmp]
    is rejected almost only for control-flow reasons.  Neither mode
    may produce [Unknown] — that is a taxonomy gap the telemetry test
    turns into a failure. *)

val strategy : ?mode:mode -> unit -> Bvf_core.Campaign.strategy
(** Defaults to [Alu_jmp], the mode the paper's coverage comparison
    uses. *)
