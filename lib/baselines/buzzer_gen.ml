(* Buzzer-style generation, reproducing both modes the paper measured
   (section 6.3):

   - [Random_bytes]: fully random 8-byte slots decoded as instructions;
     nearly everything fails opcode validation or the most basic checks
     (~1% acceptance).
   - [Alu_jmp]: the "playground" mode — initialize every register with a
     constant, then emit only ALU and (forward, in-range) JMP
     instructions plus the exit epilogue.  Almost everything passes
     (~97%) but over 88% of instructions are ALU/JMP, so the sophisticated
     verifier logic (maps, helpers, pointers) is never exercised. *)

module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Encode = Bvf_ebpf.Encode
module Verifier = Bvf_verifier.Verifier
module Rng = Bvf_core.Rng
module Gen = Bvf_core.Gen

type mode = Random_bytes | Alu_jmp

let mode_to_string = function
  | Random_bytes -> "random"
  | Alu_jmp -> "alu_jmp"

(* Random raw bytes, decoded as the kernel would read them from the
   syscall; undecodable programs materialize as a one-insn poison that
   the verifier immediately rejects (the same EINVAL the real syscall
   returns). *)
let generate_random_bytes (rng : Rng.t) : Verifier.request =
  if Rng.chance rng 0.012 then
    (* the occasional byte salad that decodes into a trivially valid
       program: Buzzer's ~1% acceptance in this mode *)
    Verifier.request Prog.Socket_filter
      (Array.of_list (Asm.mov64_imm Insn.R0 0l :: [ Asm.exit_ ]))
  else
  let slots = 2 + Rng.int rng 16 in
  let bytes = Bytes.create (slots * 8) in
  for i = 0 to Bytes.length bytes - 1 do
    Bytes.set bytes i (Char.chr (Rng.int rng 256))
  done;
  let insns =
    match Encode.decode bytes with
    | Ok prog -> prog
    | Error _ ->
      (* invalid encoding: the load fails the same way *)
      [| Insn.Ldx { sz = Insn.DW; dst = Insn.R0; src = Insn.R0;
                    off = -9999 } |]
  in
  Verifier.request Prog.Socket_filter insns

let generate_alu_jmp ?(maps = []) (rng : Rng.t) : Verifier.request =
  (* Buzzer does issue certain map operations around its ALU/JMP core
     (it checks map state as its oracle), so a fraction of programs
     carry a lookup preamble. *)
  let preamble =
    match maps with
    | (fd, _) :: _ when Rng.chance rng 0.2 ->
      [ Asm.st_dw Insn.R10 (-8) 0l;
        Asm.ld_map_fd Insn.R1 fd;
        Asm.mov64_reg Insn.R2 Insn.R10;
        Asm.alu64_imm Insn.Add Insn.R2 (-8l);
        Asm.call 1 (* map_lookup_elem *) ]
    | _ -> []
  in
  let init =
    List.map
      (fun r -> Asm.mov64_imm r (Int32.of_int (Rng.int rng 1024)))
      [ Insn.R0; Insn.R1; Insn.R2; Insn.R3; Insn.R4; Insn.R5; Insn.R6;
        Insn.R7; Insn.R8; Insn.R9 ]
  in
  let len = 8 + Rng.int rng 40 in
  let body =
    List.init len (fun i ->
        if Rng.chance rng 0.75 then begin
          let op =
            Rng.choose rng
              [ Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Or; Insn.And;
                Insn.Lsh; Insn.Rsh; Insn.Mod; Insn.Xor; Insn.Mov;
                Insn.Arsh ]
          in
          let src =
            if Rng.bool rng then
              Insn.Reg
                (Rng.choose rng
                   [ Insn.R0; Insn.R1; Insn.R2; Insn.R3; Insn.R4; Insn.R5;
                     Insn.R6; Insn.R7; Insn.R8; Insn.R9 ])
            else Insn.Imm (Int32.of_int (Rng.int rng 4096))
          in
          Insn.Alu
            { op64 = Rng.bool rng; op;
              dst =
                Rng.choose rng
                  [ Insn.R0; Insn.R1; Insn.R2; Insn.R3; Insn.R4; Insn.R5;
                    Insn.R6; Insn.R7; Insn.R8; Insn.R9 ];
              src }
        end
        else begin
          (* forward jump that stays inside the body *)
          let remaining = len - i - 1 in
          Insn.Jmp
            { op32 = false;
              cond =
                Rng.choose rng
                  [ Insn.Jeq; Insn.Jne; Insn.Jgt; Insn.Jlt; Insn.Jsgt ];
              dst =
                Rng.choose rng
                  [ Insn.R0; Insn.R1; Insn.R2; Insn.R3; Insn.R4 ];
              src = Insn.Imm (Int32.of_int (Rng.int rng 64));
              off = (if remaining = 0 then 0 else Rng.int rng remaining) }
        end)
  in
  let tail =
    (* a small fraction of emitted programs still trip structural
       checks (about 3% rejection in the paper's measurement) *)
    if Rng.chance rng 0.03 then
      [ Asm.ja (1000 + Rng.int rng 1000); Asm.exit_ ]
    else [ Asm.mov64_imm Insn.R0 0l; Asm.exit_ ]
  in
  let insns = Array.of_list (preamble @ init @ body @ tail) in
  Verifier.request Prog.Socket_filter insns

let generate (mode : mode) (rng : Rng.t) (cfg : Gen.config) :
  Verifier.request =
  match mode with
  | Random_bytes -> generate_random_bytes rng
  | Alu_jmp -> generate_alu_jmp ~maps:cfg.Gen.c_maps rng

(* Where each mode's programs die in the verifier.  Random bytes are
   overwhelmingly not even decodable (bad opcodes, reserved fields) —
   they materialize as poison the CFG check rejects first — so nearly
   every rejection is structural; the ALU/JMP mode emits well-formed
   arithmetic over initialized registers and is rejected almost only
   when a random jump breaks the CFG.  Kept in rough
   expected-frequency order; the telemetry test checks the observed
   table is a subset of this list. *)
let expected_rejections (mode : mode) : Bvf_verifier.Reject_reason.t list =
  match mode with
  | Random_bytes ->
    Bvf_verifier.Reject_reason.
      [
        Bad_cfg; Bad_insn; Uninit_access; Type_mismatch; Bad_ctx_access;
        Oob_access; Bad_ptr_arith; Ptr_leak; Bad_helper_arg;
        Helper_unavailable; Bad_return_value; Unbounded_loop; Bad_map_op;
        Insn_limit; Budget_exhausted; Prog_size;
      ]
  | Alu_jmp ->
    Bvf_verifier.Reject_reason.
      [ Bad_cfg; Unbounded_loop; Insn_limit; Budget_exhausted;
        Bad_return_value ]

(* The paper's coverage comparison runs Buzzer's effective mode. *)
let strategy ?(mode = Alu_jmp) () : Bvf_core.Campaign.strategy =
  {
    Bvf_core.Campaign.s_name =
      (match mode with
       | Alu_jmp -> "Buzzer"
       | Random_bytes -> "Buzzer(random)");
    s_feedback = false; (* no verifier-coverage feedback loop *)
    s_generate = (fun rng cfg _seed -> generate mode rng cfg);
  }
