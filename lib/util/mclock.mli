(** Monotonic wall clock — the single source of timer deltas.

    [Unix.gettimeofday] follows the adjustable realtime clock; a delta
    taken across an NTP step can be negative.  Every duration the
    repository measures (campaign phase timers, per-program verification
    wall time, the CLI's closing profile record) goes through this
    module instead, which clamps readings to be globally non-decreasing.
    Safe to call concurrently from multiple domains. *)

val now_s : unit -> float
(** Seconds on a non-decreasing clock.  Consecutive calls — from any
    domain — never observe a smaller value. *)

val elapsed_s : since:float -> float
(** [elapsed_s ~since:t0] where [t0] came from {!now_s}: the
    non-negative seconds elapsed since [t0]. *)

val time_s : (unit -> 'a) -> 'a * float
(** Run a thunk and return its result with the elapsed wall time. *)
