(** Nearest-rank percentiles.

    The single shared definition of "p50/p95" in the tree: index
    [p*(n-1)/100] of the ascending-sorted sample, so the returned value
    is always a real observation, never an interpolation.  Used by the
    service latency summaries, telemetry distributions and profiler
    aggregation. *)

val of_sorted : float array -> int -> float
(** [of_sorted sorted p] for [sorted] in ascending order and [p] in
    0..100.  Returns [0.0] on an empty array. *)

val of_sorted_int : int array -> int -> int
(** Integer-sample variant; returns [0] on an empty array. *)

val of_samples : float list -> int -> float
(** Convenience: sorts a copy of [samples], then {!of_sorted}. *)
