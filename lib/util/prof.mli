(** Span profiler: nested named spans with allocation attribution.

    One {!t} handle per domain/shard/worker; a handle is owned by
    exactly one domain, so recording never takes a lock.  A {!session}
    groups a run's handles and becomes one Chrome trace-event file
    (one [pid] per track, loadable in Perfetto).

    Purity: profiling is off by default ({!null}/{!disabled}), lives
    entirely outside campaign digests and telemetry, and a profiled run
    is byte-identical in both to an unprofiled one — the same
    discipline as [--progress]. *)

type span = {
  sp_track : int;     (** shard/worker index; the trace's [pid] *)
  sp_name : string;
  sp_depth : int;     (** nesting depth at open time; 0 = top level *)
  sp_start_s : float; (** absolute {!Mclock} seconds *)
  sp_dur_s : float;   (** inclusive wall time *)
  sp_self_s : float;  (** [dur] minus direct children *)
  sp_minor_w : float; (** minor words allocated during the span *)
  sp_major_w : float; (** major words allocated during the span *)
}

type t
(** A per-domain recording handle. *)

type frame
(** An open span. *)

val disabled : t
(** The no-op handle: {!start}/{!stop} still return the elapsed time
    and minor-words delta (callers feed always-on stats from them) but
    record nothing and never call [Gc.quick_stat]. *)

val enabled : t -> bool

val start : t -> string -> frame
val stop : t -> frame -> float * float
(** [stop h fr] closes the span and returns
    [(inclusive seconds, minor words allocated)]. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span h name f] wraps [f] in a span; exception-safe; calls [f]
    directly on a disabled handle. *)

val record :
  t -> name:string -> dur_s:float -> ?minor_w:float -> ?major_w:float ->
  unit -> unit
(** Post-hoc span for a section measured elsewhere (e.g. the verifier's
    sanitation time): charged as a child of the currently open frame,
    ending now.  Zero-duration records are dropped. *)

(** {1 Sessions} *)

type session

val null : session
(** The inactive session: {!track} returns {!disabled}, writers write
    nothing. *)

val session : unit -> session
(** A fresh active session. *)

val active : session -> bool

val track : session -> ?name:string -> int -> t
(** [track s i] makes a handle recording under track id [i] (the
    trace's [pid]).  Create handles before spawning the domains that
    use them; registration is the only locked operation. *)

val absorb : session -> ?name:string -> trk:int -> span list -> unit
(** Add spans recorded elsewhere (e.g. {!load}ed from a worker file)
    under track [trk]. *)

val spans : session -> span list
(** Every recorded span, sorted by (track, start).  Only call after
    the domains using the session's handles have been joined. *)

val tracks : session -> (int * string) list

(** {1 Worker hand-off} *)

val save : string -> t -> unit
(** Atomically write a handle's spans for a parent process to
    {!load} — the fork-based supervisor's child-to-parent channel. *)

val load : string -> (int * span list) option
(** [Some (track, spans)]; [None] if missing, mistagged or unreadable. *)

(** {1 Chrome trace-event JSON} *)

val write_chrome :
  string -> tracks:(int * string) list -> span list -> unit
(** Write a Perfetto-loadable trace: one complete ("X") event per span
    with [ts]/[dur] in microseconds, [pid] = track, [tid] = depth,
    self time in a nonstandard [sdur] field and allocation deltas in
    [args]. *)

val read_chrome : string -> span list * (int * string) list * string list
(** Parse a trace back: [(spans, tracks, complaints)].  Complaints
    (invalid JSON, missing fields, negative durations, spans that
    partially overlap an enclosing span) do not discard the events
    that did parse, so callers choose their own strictness. *)

(** {1 Aggregation} *)

type agg = {
  ag_name : string;
  ag_count : int;
  ag_total_s : float; (** inclusive *)
  ag_self_s : float;
  ag_p50_s : float;   (** per-span inclusive duration percentiles *)
  ag_p95_s : float;
  ag_minor_w : float;
  ag_major_w : float;
}

val aggregate : span list -> agg list
(** Per-name rollup, sorted by self time descending. *)

val track_attribution : span list -> (int * float * float) list
(** Per track: [(track, wall seconds first-start..last-end, seconds in
    top-level spans)] — the "how much of the shard's time is named"
    check. *)

val totals_for : span list -> trk:int -> (string * float) list
(** Inclusive seconds per span name on one track, in first-seen
    order. *)
