(* Monotonic wall clock: an Mtime-style wrapper over Unix.gettimeofday.

   Unix.gettimeofday follows the system realtime clock, which NTP slews
   and administrators step: a timer delta taken across an adjustment can
   come out negative, and the campaign phase timers (Campaign.stats) and
   per-program verification times must never go backwards.  This module
   is the one place that reads the wall clock for *durations*: it clamps
   the raw reading to be globally non-decreasing, so any delta between
   two [now_s] readings is >= 0 by construction.

   The high-water mark is a process-global [Atomic.t] because campaign
   shards read the clock concurrently from several domains; the CAS loop
   keeps the published value monotone without a lock. *)

let last : float Atomic.t = Atomic.make 0.0

let rec now_s () : float =
  let t = Unix.gettimeofday () in
  let prev = Atomic.get last in
  if t >= prev then
    if Atomic.compare_and_set last prev t then t else now_s ()
  else prev (* clock stepped backwards: hold the high-water mark *)

let elapsed_s ~(since : float) : float =
  let dt = now_s () -. since in
  if dt > 0.0 then dt else 0.0

let time_s (f : unit -> 'a) : 'a * float =
  let t0 = now_s () in
  let v = f () in
  (v, elapsed_s ~since:t0)
