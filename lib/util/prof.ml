(* Span profiler: nested named spans with allocation attribution.

   One [t] handle per domain/shard/worker — a handle is plain mutable
   state owned by exactly one domain, so instrumented code never takes a
   lock and never contends.  A [session] groups the handles of one run
   (one per shard plus one for the coordinating domain) and is the unit
   the CLI turns into a Chrome trace-event file.

   Purity contract (same discipline as [--progress]): the profiler is
   off by default, [disabled] handles reduce every operation to the
   clock/counter reads the caller needs anyway, nothing here ever
   touches a campaign's RNG, telemetry sink or digest, and a profiled
   run is byte-identical in digest and trace to an unprofiled one.
   Times and allocation counts are observations, not behavior. *)

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)

type span = {
  sp_track : int;        (* shard/worker index; the trace's [pid] *)
  sp_name : string;
  sp_depth : int;        (* nesting depth at open time; 0 = top level *)
  sp_start_s : float;    (* absolute Mclock seconds *)
  sp_dur_s : float;      (* inclusive wall time *)
  sp_self_s : float;     (* dur minus direct children *)
  sp_minor_w : float;    (* minor words allocated during the span *)
  sp_major_w : float;    (* major words allocated during the span *)
}

(* A frame's counters live in their own all-float record: stores to an
   all-float record compile to unboxed float writes, so the baseline
   adjustment loop below allocates nothing — which is exactly what
   makes it a fixed point. *)
type counters = {
  mutable c_t0 : float;
  mutable c_minor0 : float;
  mutable c_major0 : float;
  mutable c_child_s : float;   (* direct children's inclusive time *)
}

type frame = { f_name : string; f_c : counters }

type t = {
  h_track : int;
  h_enabled : bool;
  mutable h_stack : frame list;
  mutable h_spans : span list;  (* completed, reverse order *)
}

let disabled : t =
  { h_track = 0; h_enabled = false; h_stack = []; h_spans = [] }

let enabled (h : t) : bool = h.h_enabled

(* Self-exclusion: shift every open frame's minor-words baseline
   forward past whatever the enabled path allocated since [m0], so the
   profiler's own garbage (span records, stack conses, [Gc.quick_stat]
   results) never shows up in a span's minor-words attribution.  The
   campaign feeds its always-on per-phase minor-words counters from
   {!stop}; without this, profiling would systematically inflate them
   by tens of words per span.  What remains is only the inherent
   imprecision of [Gc.minor_words] in native code (allocations are
   batched per code path, so enabled and disabled branches can read a
   few words apart) — a run-level rounding error, not a bias.
   Re-reading the counter at each store keeps the loop honest: the
   store itself is an unboxed float write into an all-float record, so
   nothing is allocated after the read it compensates for. *)
let rec exclude_since (frames : frame list) (m0 : float) : unit =
  match frames with
  | [] -> ()
  | fr :: tl ->
    fr.f_c.c_minor0 <- fr.f_c.c_minor0 +. (Gc.minor_words () -. m0);
    exclude_since tl m0

(* Opening a frame always reads the clock and the minor-allocation
   counter: callers feed both into always-on stats accumulators (phase
   timers, per-phase minor words), so the disabled path costs exactly
   what the pre-profiler ad-hoc timers cost.  The major-words counter
   lives in [Gc.quick_stat], which allocates, so it is read only when
   the handle records spans.  The enabled-only work runs *before* the
   baseline reads (and is excluded from enclosing frames), so both
   paths leave the same allocations inside the new span's window, up
   to native-code allocation batching. *)
let start (h : t) (name : string) : frame =
  let fr =
    { f_name = name;
      f_c = { c_t0 = 0.; c_minor0 = 0.; c_major0 = 0.; c_child_s = 0. } }
  in
  if h.h_enabled then begin
    let m0 = Gc.minor_words () in
    fr.f_c.c_major0 <- (Gc.quick_stat ()).Gc.major_words;
    h.h_stack <- fr :: h.h_stack;
    exclude_since h.h_stack m0
  end;
  fr.f_c.c_t0 <- Mclock.now_s ();
  fr.f_c.c_minor0 <- Gc.minor_words ();
  fr

(* Close a frame: returns (inclusive seconds, minor words) so callers
   can accumulate stats from the same reads that timed the span. *)
let stop (h : t) (fr : frame) : float * float =
  let dur = Mclock.elapsed_s ~since:fr.f_c.c_t0 in
  let minor = Float.max 0. (Gc.minor_words () -. fr.f_c.c_minor0) in
  if h.h_enabled then begin
    let m0 = Gc.minor_words () in
    (match h.h_stack with
     | top :: rest when top == fr ->
       h.h_stack <- rest;
       (match rest with
        | parent :: _ ->
          parent.f_c.c_child_s <- parent.f_c.c_child_s +. dur
        | [] -> ())
     | _ -> ());    (* mismatched stop: drop silently, keep the stack *)
    let major =
      Float.max 0. ((Gc.quick_stat ()).Gc.major_words -. fr.f_c.c_major0)
    in
    h.h_spans <-
      { sp_track = h.h_track; sp_name = fr.f_name;
        sp_depth = List.length h.h_stack;
        sp_start_s = fr.f_c.c_t0; sp_dur_s = dur;
        sp_self_s = Float.max 0. (dur -. fr.f_c.c_child_s);
        sp_minor_w = minor; sp_major_w = major }
      :: h.h_spans;
    exclude_since h.h_stack m0
  end;
  (dur, minor)

let span (h : t) (name : string) (f : unit -> 'a) : 'a =
  if not h.h_enabled then f ()
  else begin
    let fr = start h name in
    Fun.protect ~finally:(fun () -> ignore (stop h fr)) f
  end

(* Post-hoc span: a section whose duration was measured elsewhere (the
   verifier reports sanitation time without exposing its interior).
   Charged as a child of the currently open frame, ending now.  A
   record lands mid-window of its parent (the loader records "sanitize"
   inside the open "verify" frame), so its allocations are excluded
   from the open baselines like any other profiler garbage. *)
let record (h : t) ~(name : string) ~(dur_s : float)
    ?(minor_w = 0.) ?(major_w = 0.) () : unit =
  if h.h_enabled && dur_s > 0. then begin
    let m0 = Gc.minor_words () in
    (* Absolute timestamps are ~1e9 s, where a double's ulp is a few
       hundred ns: [now -. dur_s] rounds, and keeping the requested
       duration would push the span's end past [now] — and past the
       enclosing span's end, tripping the nesting check on perfectly
       good traces.  Anchor the end at [now] exactly by re-deriving
       the duration from the rounded start (the difference of two
       nearby doubles is exact). *)
    let now = Mclock.now_s () in
    let start_s = now -. dur_s in
    let dur_s = now -. start_s in
    (match h.h_stack with
     | parent :: _ -> parent.f_c.c_child_s <- parent.f_c.c_child_s +. dur_s
     | [] -> ());
    h.h_spans <-
      { sp_track = h.h_track; sp_name = name;
        sp_depth = List.length h.h_stack;
        sp_start_s = start_s; sp_dur_s = dur_s;
        sp_self_s = dur_s; sp_minor_w = minor_w; sp_major_w = major_w }
      :: h.h_spans;
    exclude_since h.h_stack m0
  end

(* ------------------------------------------------------------------ *)
(* Sessions                                                           *)

type session = {
  s_active : bool;
  s_mu : Mutex.t;
  mutable s_tracks : (int * string) list;  (* track id -> display name *)
  mutable s_handles : t list;
  mutable s_extra : span list;             (* absorbed foreign spans *)
}

let null : session =
  { s_active = false; s_mu = Mutex.create (); s_tracks = [];
    s_handles = []; s_extra = [] }

let session () : session =
  { s_active = true; s_mu = Mutex.create (); s_tracks = [];
    s_handles = []; s_extra = [] }

let active (s : session) : bool = s.s_active

(* Handles should be created before the domains that use them spawn;
   the mutex only guards registration, never span recording. *)
let track (s : session) ?(name = "") (i : int) : t =
  if not s.s_active then disabled
  else begin
    let h = { h_track = i; h_enabled = true; h_stack = []; h_spans = [] } in
    Mutex.lock s.s_mu;
    if not (List.mem_assoc i s.s_tracks) then
      s.s_tracks <- (i, if name = "" then Printf.sprintf "track%d" i
                        else name) :: s.s_tracks;
    s.s_handles <- h :: s.s_handles;
    Mutex.unlock s.s_mu;
    h
  end

let absorb (s : session) ?(name = "") ~(trk : int) (spans : span list) :
  unit =
  if s.s_active then begin
    Mutex.lock s.s_mu;
    if not (List.mem_assoc trk s.s_tracks) then
      s.s_tracks <- (trk, if name = "" then Printf.sprintf "track%d" trk
                          else name) :: s.s_tracks;
    s.s_extra <- spans @ s.s_extra;
    Mutex.unlock s.s_mu
  end

(* All recorded spans, sorted by (track, start time) for stable output.
   Call after every domain using a handle has been joined. *)
let spans (s : session) : span list =
  let all =
    List.fold_left (fun acc h -> List.rev_append h.h_spans acc)
      s.s_extra s.s_handles
  in
  List.stable_sort
    (fun a b ->
       match compare a.sp_track b.sp_track with
       | 0 -> compare a.sp_start_s b.sp_start_s
       | c -> c)
    all

let tracks (s : session) : (int * string) list =
  List.sort compare s.s_tracks

(* ------------------------------------------------------------------ *)
(* Worker hand-off (fork-based supervision: the child's spans must
   cross a process boundary).  Marshal with a format tag, same
   discipline as campaign checkpoints. *)

let file_tag = "bvf-prof/1"

let save (path : string) (h : t) : unit =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_value oc (file_tag, h.h_track, List.rev h.h_spans);
  close_out oc;
  Sys.rename tmp path

let load (path : string) : (int * span list) option =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let r =
      match input_value ic with
      | (tag, trk, spans) when tag = file_tag ->
        Some ((trk : int), (spans : span list))
      | _ -> None
      | exception _ -> None
    in
    close_in ic;
    r
  end

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON (Perfetto-loadable)                        *)

let escape (s : string) : string =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One complete event ("ph":"X") per span, one JSON object per line so
   diffs and greps stay usable; [pid] is the track (shard/worker),
   [tid] the nesting depth.  [sdur] (self time, us) is a nonstandard
   field Perfetto ignores; allocation deltas ride in [args]. *)
let write_chrome (path : string) ~(tracks : (int * string) list)
    (spans : span list) : unit =
  let epoch =
    List.fold_left (fun m sp -> Float.min m sp.sp_start_s) infinity spans
  in
  let epoch = if epoch = infinity then 0. else epoch in
  let oc = open_out path in
  output_string oc "{\"traceEvents\":[";
  let first = ref true in
  let emit line =
    if !first then first := false else output_string oc ",";
    output_string oc "\n";
    output_string oc line
  in
  List.iter
    (fun (trk, name) ->
       emit
         (Printf.sprintf
            "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"%s\"}}"
            trk (escape name)))
    tracks;
  List.iter
    (fun sp ->
       emit
         (Printf.sprintf
            "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\
             \"ts\":%.3f,\"dur\":%.3f,\"sdur\":%.3f,\
             \"args\":{\"minor_words\":%.0f,\"major_words\":%.0f}}"
            sp.sp_track sp.sp_depth (escape sp.sp_name)
            ((sp.sp_start_s -. epoch) *. 1e6) (sp.sp_dur_s *. 1e6)
            (sp.sp_self_s *. 1e6) sp.sp_minor_w sp.sp_major_w))
    spans;
  output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n";
  close_out oc

(* ---- reading it back (the [bvf profile] aggregator) ---- *)

(* Minimal recursive JSON reader: the trace format nests ([args],
   [traceEvents]), so the flat telemetry parser does not apply. *)
type json =
  | Jobj of (string * json) list
  | Jarr of json list
  | Jstr of string
  | Jnum of float
  | Jbool of bool
  | Jnull

exception Malformed of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws ()
      | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char b '"'; advance ()
         | '\\' -> Buffer.add_char b '\\'; advance ()
         | '/' -> Buffer.add_char b '/'; advance ()
         | 'n' -> Buffer.add_char b '\n'; advance ()
         | 't' -> Buffer.add_char b '\t'; advance ()
         | 'r' -> Buffer.add_char b '\r'; advance ()
         | 'b' -> Buffer.add_char b '\b'; advance ()
         | 'f' -> Buffer.add_char b '\012'; advance ()
         | 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let hex = String.sub s !pos 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 ->
              Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?'   (* non-ASCII: placeholder *)
            | None -> fail "bad \\u escape");
           pos := !pos + 4
         | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while !pos < n && is_num s.[!pos] do advance () done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance (); skip_ws ();
      if peek () = '}' then begin advance (); Jobj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws (); expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((k, v) :: acc)
          | '}' -> advance (); Jobj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | '[' ->
      advance (); skip_ws ();
      if peek () = ']' then begin advance (); Jarr [] end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elems (v :: acc)
          | ']' -> advance (); Jarr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        elems []
      end
    | '"' -> Jstr (parse_string ())
    | 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
        pos := !pos + 4; Jbool true
      end else fail "bad literal"
    | 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
        pos := !pos + 5; Jbool false
      end else fail "bad literal"
    | 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
        pos := !pos + 4; Jnull
      end else fail "bad literal"
    | '-' | '0' .. '9' -> Jnum (parse_number ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* Containment slack: endpoints round-trip through %.3f microseconds,
   so two rounded endpoints can disagree by 1ns each. *)
let nest_eps_s = 5e-9

(* Validate that the spans of each track nest properly: sorted by start
   (ties broken longest-first), every span must lie inside the
   innermost still-open ancestor or after it — partial overlap is
   malformed. *)
let check_nesting (spans : span list) : string list =
  let errors = ref [] in
  let by_track = Hashtbl.create 8 in
  List.iter
    (fun sp ->
       let l = try Hashtbl.find by_track sp.sp_track with Not_found -> [] in
       Hashtbl.replace by_track sp.sp_track (sp :: l))
    spans;
  Hashtbl.iter
    (fun trk l ->
       let sorted =
         List.sort
           (fun a b ->
              match compare a.sp_start_s b.sp_start_s with
              | 0 -> compare b.sp_dur_s a.sp_dur_s
              | c -> c)
           l
       in
       let stack = ref [] in
       List.iter
         (fun sp ->
            let e = sp.sp_start_s +. sp.sp_dur_s in
            let rec pop () =
              match !stack with
              | (_, pe) :: rest when sp.sp_start_s >= pe -. nest_eps_s ->
                stack := rest; pop ()
              | _ -> ()
            in
            pop ();
            (match !stack with
             | (pn, pe) :: _ when e > pe +. nest_eps_s ->
               errors :=
                 Printf.sprintf
                   "track %d: span %s overlaps enclosing %s" trk
                   sp.sp_name pn
                 :: !errors
             | _ -> ());
            stack := (sp.sp_name, e) :: !stack)
         sorted)
    by_track;
  List.rev !errors

(* Read a Chrome trace back: returns spans, track names and a list of
   malformedness complaints (empty = clean).  A complaint does not
   discard the events that did parse, so the aggregator can stay
   useful on partial traces unless the caller opts into strictness. *)
let read_chrome (path : string) :
  span list * (int * string) list * string list =
  let errors = ref [] in
  let contents =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  in
  match parse_json contents with
  | exception Malformed msg -> ([], [], [ "not valid JSON: " ^ msg ])
  | Jobj fields ->
    let events =
      match List.assoc_opt "traceEvents" fields with
      | Some (Jarr l) -> l
      | Some _ -> errors := "traceEvents is not an array" :: !errors; []
      | None -> errors := "missing traceEvents" :: !errors; []
    in
    let tracks = ref [] in
    let spans = ref [] in
    List.iteri
      (fun i ev ->
         match ev with
         | Jobj f ->
           let str k =
             match List.assoc_opt k f with Some (Jstr s) -> Some s | _ -> None
           in
           let num k =
             match List.assoc_opt k f with Some (Jnum x) -> Some x | _ -> None
           in
           let arg k =
             match List.assoc_opt "args" f with
             | Some (Jobj a) ->
               (match List.assoc_opt k a with
                | Some (Jnum x) -> Some x
                | _ -> None)
             | _ -> None
           in
           (match str "ph" with
            | Some "M" -> begin
                match str "name", num "pid" with
                | Some "process_name", Some pid ->
                  (match List.assoc_opt "args" f with
                   | Some (Jobj a) ->
                     (match List.assoc_opt "name" a with
                      | Some (Jstr nm) ->
                        tracks := (int_of_float pid, nm) :: !tracks
                      | _ -> ())
                   | _ -> ())
                | _ -> ()
              end
            | Some "X" -> begin
                match str "name", num "pid", num "ts", num "dur" with
                | Some name, Some pid, Some ts, Some dur ->
                  if dur < 0. then
                    errors :=
                      Printf.sprintf "event %d: negative dur" i :: !errors
                  else
                    spans :=
                      { sp_track = int_of_float pid; sp_name = name;
                        sp_depth =
                          (match num "tid" with
                           | Some t -> int_of_float t
                           | None -> 0);
                        sp_start_s = ts /. 1e6; sp_dur_s = dur /. 1e6;
                        sp_self_s =
                          (match num "sdur" with
                           | Some sd -> sd /. 1e6
                           | None -> dur /. 1e6);
                        sp_minor_w =
                          Option.value (arg "minor_words") ~default:0.;
                        sp_major_w =
                          Option.value (arg "major_words") ~default:0. }
                      :: !spans
                | _ ->
                  errors :=
                    Printf.sprintf
                      "event %d: X event missing name/pid/ts/dur" i
                    :: !errors
              end
            | Some _ -> ()   (* other phases: tolerated, ignored *)
            | None ->
              errors :=
                Printf.sprintf "event %d: missing ph" i :: !errors)
         | _ ->
           errors :=
             Printf.sprintf "event %d: not an object" i :: !errors)
      events;
    let spans = List.rev !spans in
    errors := List.rev_append (check_nesting spans) !errors;
    (spans, List.sort compare !tracks, List.rev !errors)
  | _ -> ([], [], [ "top level is not an object" ])

(* ------------------------------------------------------------------ *)
(* Aggregation                                                        *)

type agg = {
  ag_name : string;
  ag_count : int;
  ag_total_s : float;    (* inclusive *)
  ag_self_s : float;
  ag_p50_s : float;      (* per-span inclusive duration *)
  ag_p95_s : float;
  ag_minor_w : float;    (* inclusive allocation *)
  ag_major_w : float;
}

let aggregate (spans : span list) : agg list =
  let by_name : (string, span list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun sp ->
       match Hashtbl.find_opt by_name sp.sp_name with
       | Some l -> l := sp :: !l
       | None ->
         Hashtbl.add by_name sp.sp_name (ref [ sp ]);
         order := sp.sp_name :: !order)
    spans;
  let rows =
    List.rev_map
      (fun name ->
         let l = !(Hashtbl.find by_name name) in
         let durs = Array.of_list (List.map (fun sp -> sp.sp_dur_s) l) in
         Array.sort compare durs;
         let sum f = List.fold_left (fun a sp -> a +. f sp) 0. l in
         { ag_name = name;
           ag_count = List.length l;
           ag_total_s = sum (fun sp -> sp.sp_dur_s);
           ag_self_s = sum (fun sp -> sp.sp_self_s);
           ag_p50_s = Percentile.of_sorted durs 50;
           ag_p95_s = Percentile.of_sorted durs 95;
           ag_minor_w = sum (fun sp -> sp.sp_minor_w);
           ag_major_w = sum (fun sp -> sp.sp_major_w) })
      !order
  in
  List.sort (fun a b -> compare b.ag_self_s a.ag_self_s) rows

(* Per-track wall-time attribution: wall is first-start to last-end,
   attributed is the sum of top-level (depth 0) span durations.  The
   ">= 90% of each shard's wall time in named spans" acceptance check
   reads straight off this. *)
let track_attribution (spans : span list) : (int * float * float) list =
  let by_track = Hashtbl.create 8 in
  List.iter
    (fun sp ->
       let prev =
         try Hashtbl.find by_track sp.sp_track
         with Not_found -> (infinity, neg_infinity, 0.)
       in
       let lo, hi, top = prev in
       Hashtbl.replace by_track sp.sp_track
         ( Float.min lo sp.sp_start_s,
           Float.max hi (sp.sp_start_s +. sp.sp_dur_s),
           if sp.sp_depth = 0 then top +. sp.sp_dur_s else top ))
    spans;
  Hashtbl.fold
    (fun trk (lo, hi, top) acc -> (trk, Float.max 0. (hi -. lo), top) :: acc)
    by_track []
  |> List.sort compare

(* Per-name inclusive seconds for one track — the bench breakdown. *)
let totals_for (spans : span list) ~(trk : int) : (string * float) list =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun sp ->
       if sp.sp_track = trk then begin
         match Hashtbl.find_opt tbl sp.sp_name with
         | Some r -> r := !r +. sp.sp_dur_s
         | None ->
           Hashtbl.add tbl sp.sp_name (ref sp.sp_dur_s);
           order := sp.sp_name :: !order
       end)
    spans;
  List.rev_map (fun name -> (name, !(Hashtbl.find tbl name))) !order
