(* Nearest-rank percentile over a pre-sorted sample.  One shared
   definition so every consumer (service latency summaries, telemetry
   distributions, profiler aggregation) picks the same element: index
   p*(n-1)/100 of the ascending-sorted array.  Deliberately not
   interpolating — the value returned is always a real observation. *)

let of_sorted (sorted : float array) (p : int) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(p * (n - 1) / 100)

let of_sorted_int (sorted : int array) (p : int) : int =
  let n = Array.length sorted in
  if n = 0 then 0 else sorted.(p * (n - 1) / 100)

let of_samples (samples : float list) (p : int) : float =
  let a = Array.of_list samples in
  Array.sort compare a;
  of_sorted a p
