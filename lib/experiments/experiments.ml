(* Experiment harnesses regenerating every table and figure of the
   paper's evaluation (section 6).  Each function returns structured
   results and a [print_*] companion renders them in the shape of the
   corresponding paper artefact.  bench/main.ml and bin/bvf are thin
   wrappers over this module.

   Scaling note: the paper's campaigns are two weeks / 48 hours on a
   40-core server; ours are iteration-budgeted seconds-scale runs on a
   simulated kernel.  EXPERIMENTS.md records the shape criteria (who
   wins, by what factor) rather than absolute parity. *)

module Version = Bvf_ebpf.Version
module Prog = Bvf_ebpf.Prog
module Insn = Bvf_ebpf.Insn
module Disasm = Bvf_ebpf.Disasm
module Kconfig = Bvf_kernel.Kconfig
module Venv = Bvf_verifier.Venv
module Reject_reason = Bvf_verifier.Reject_reason
module Verifier = Bvf_verifier.Verifier
module Coverage = Bvf_verifier.Coverage
module Loader = Bvf_runtime.Loader
module Exec = Bvf_runtime.Exec
module Campaign = Bvf_core.Campaign
module Parallel = Bvf_core.Parallel
module Gen = Bvf_core.Gen
module Rng = Bvf_core.Rng
module Oracle = Bvf_core.Oracle
module Selftests = Bvf_core.Selftests
module Syz_gen = Bvf_baselines.Syz_gen
module Buzzer_gen = Bvf_baselines.Buzzer_gen

let tools () : Campaign.strategy list =
  [ Campaign.bvf_strategy; Syz_gen.strategy; Buzzer_gen.strategy () ]

(* -- Table 2: vulnerabilities discovered -------------------------------- *)

type table2_row = {
  t2_bug : Kconfig.bug;
  t2_component : string;
  t2_description : string;
  t2_correctness : bool;
  t2_found : (string * int option) list; (* tool -> first iteration *)
}

type table2 = {
  t2_rows : table2_row list;
  t2_stats : Campaign.stats list;
}

let table2 ?(iterations = 12_000) ?(seed = 1) () : table2 =
  let config = Kconfig.default Version.Bpf_next in
  let stats =
    List.map
      (fun strategy -> Campaign.run ~seed ~iterations strategy config)
      (tools ())
  in
  let first_iteration (s : Campaign.stats) (bug : Kconfig.bug) : int option
    =
    Hashtbl.fold
      (fun _ (f : Campaign.found) acc ->
         if f.Campaign.fd_finding.Oracle.f_bug = Some bug then
           match acc with
           | Some i -> Some (min i f.Campaign.fd_iteration)
           | None -> Some f.Campaign.fd_iteration
         else acc)
      s.Campaign.st_findings None
  in
  let rows =
    List.map
      (fun bug ->
         let component, description, kind = Kconfig.bug_info bug in
         {
           t2_bug = bug;
           t2_component = component;
           t2_description = description;
           t2_correctness = (kind = `Correctness);
           t2_found =
             List.map
               (fun s -> (s.Campaign.st_tool, first_iteration s bug))
               stats;
         })
      (List.filter
         (Kconfig.bug_in_version Version.Bpf_next)
         Kconfig.all_bugs)
  in
  { t2_rows = rows; t2_stats = stats }

let print_table2 (t : table2) : unit =
  Printf.printf
    "Table 2: vulnerabilities discovered (bpf-next, injected bug corpus)\n";
  Printf.printf "%-4s %-11s %-55s %-12s %s\n" "#" "Component" "Description"
    "Class" "first found at iteration";
  List.iteri
    (fun i row ->
       Printf.printf "%-4d %-11s %-55s %-12s %s\n" (i + 1)
         row.t2_component row.t2_description
         (if row.t2_correctness then "correctness" else "memory/lock")
         (String.concat "  "
            (List.map
               (fun (tool, found) ->
                  Printf.sprintf "%s=%s" tool
                    (match found with
                     | Some it -> string_of_int it
                     | None -> "-"))
               row.t2_found)))
    t.t2_rows;
  List.iter
    (fun s ->
       Printf.printf
         "  %s: %d/%d verifier correctness bugs, %d bugs total\n"
         s.Campaign.st_tool
         (List.length (Campaign.correctness_bugs_found s))
         (List.length
            (List.filter
               (fun b ->
                  match Kconfig.bug_info b with
                  | _, _, `Correctness -> true
                  | _ -> false)
               (List.filter
                  (Kconfig.bug_in_version Version.Bpf_next)
                  Kconfig.all_bugs)))
         (List.length (Campaign.bugs_found s)))
    t.t2_stats

(* -- Table 3 / Figure 6: coverage comparison ----------------------------- *)

type coverage_cell = {
  cc_tool : string;
  cc_version : Version.t;
  cc_edges : float;                    (* mean over repetitions *)
  cc_curve : (int * float) list;       (* iteration -> mean edges *)
}

type coverage_table = { ct_cells : coverage_cell list }

let coverage ?(iterations = 6_000) ?(repetitions = 3) ?(sample_every = 250)
    () : coverage_table =
  let versions = Version.all in
  let cells =
    List.concat_map
      (fun version ->
         let config = Kconfig.default version in
         List.map
           (fun strategy ->
              let runs =
                List.init repetitions (fun rep ->
                    Campaign.run ~sample_every ~seed:(rep * 7919 + 11)
                      ~iterations strategy config)
              in
              let mean f =
                List.fold_left (fun acc r -> acc +. f r) 0.0 runs
                /. float_of_int repetitions
              in
              let curve =
                (* align samples across runs by iteration *)
                let points =
                  List.sort_uniq compare
                    (List.concat_map
                       (fun r ->
                          List.map
                            (fun s -> s.Campaign.sa_iteration)
                            r.Campaign.st_curve)
                       runs)
                in
                List.map
                  (fun it ->
                     let value (r : Campaign.stats) =
                       (* edges at the latest sample <= it *)
                       List.fold_left
                         (fun acc (s : Campaign.sample) ->
                            if s.Campaign.sa_iteration <= it then
                              max acc (float_of_int s.Campaign.sa_edges)
                            else acc)
                         0.0 r.Campaign.st_curve
                     in
                     (it, mean value))
                  points
              in
              {
                cc_tool = strategy.Campaign.s_name;
                cc_version = version;
                cc_edges = mean (fun r -> float_of_int r.Campaign.st_edges);
                cc_curve = curve;
              })
           (tools ()))
      versions
  in
  { ct_cells = cells }

let cell (t : coverage_table) (tool : string) (version : Version.t) :
  coverage_cell =
  List.find
    (fun c -> c.cc_tool = tool && c.cc_version = version)
    t.ct_cells

let print_table3 (t : coverage_table) : unit =
  Printf.printf
    "Table 3: verifier branch coverage (mean over repetitions; %% = BVF improvement)\n";
  Printf.printf "%-10s %10s %22s %22s\n" "Version" "BVF" "Syzkaller"
    "Buzzer";
  let overall = Hashtbl.create 4 in
  List.iter
    (fun version ->
       let bvf = (cell t "BVF" version).cc_edges in
       let syz = (cell t "Syzkaller" version).cc_edges in
       let buz = (cell t "Buzzer" version).cc_edges in
       List.iter
         (fun (k, v) ->
            Hashtbl.replace overall k
              (v +. Option.value (Hashtbl.find_opt overall k) ~default:0.0))
         [ ("bvf", bvf); ("syz", syz); ("buz", buz) ];
       let imp x = 100.0 *. (bvf -. x) /. (max x 1.0) in
       Printf.printf "%-10s %10.0f %12.0f (+%.1f%%) %12.0f (+%.1f%%)\n"
         (Version.to_string version)
         bvf syz (imp syz) buz (imp buz))
    Version.all;
  let n = float_of_int (List.length Version.all) in
  let avg k = Hashtbl.find overall k /. n in
  let imp x = 100.0 *. (avg "bvf" -. x) /. (max x 1.0) in
  Printf.printf "%-10s %10.0f %12.0f (+%.1f%%) %12.0f (+%.1f%%)\n" "Overall"
    (avg "bvf") (avg "syz") (imp (avg "syz")) (avg "buz") (imp (avg "buz"))

let print_figure6 (t : coverage_table) : unit =
  Printf.printf
    "Figure 6: branch coverage over time (CSV series per kernel version)\n";
  List.iter
    (fun version ->
       Printf.printf "# %s\niteration,BVF,Syzkaller,Buzzer\n"
         (Version.to_string version);
       let bvf = cell t "BVF" version in
       let syz = cell t "Syzkaller" version in
       let buz = cell t "Buzzer" version in
       List.iter
         (fun (it, v) ->
            let at c =
              match List.assoc_opt it c.cc_curve with
              | Some x -> x
              | None -> 0.0
            in
            Printf.printf "%d,%.0f,%.0f,%.0f\n" it v (at syz) (at buz))
         bvf.cc_curve)
    Version.all

(* -- Section 6.3 statistics: acceptance rate ----------------------------- *)

type acceptance = {
  ac_bvf : float;
  ac_syz : float;
  ac_buzzer_random : float;
  ac_buzzer_alujmp : float;
  ac_buzzer_alujmp_ratio : float; (* ALU+JMP fraction of Buzzer insns *)
  ac_syz_errno : (Venv.errno * int) list;
  ac_reasons : (string * (Reject_reason.t * int) list) list;
      (* per-tool rejection taxonomy, reasons sorted by count *)
}

let reason_table (s : Campaign.stats) : (Reject_reason.t * int) list =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.Campaign.st_reasons []
  |> List.sort (fun (ra, a) (rb, b) ->
         match compare b a with
         | 0 -> compare (Reject_reason.to_string ra) (Reject_reason.to_string rb)
         | c -> c)

let acceptance ?(programs = 4_000) ?(seed = 5) () : acceptance =
  (* measured exactly as the paper does: over a fuzzing campaign
     (generation plus mutation under coverage feedback) *)
  let config = Kconfig.default Version.Bpf_next in
  let campaign strategy =
    Campaign.run ~seed ~iterations:programs strategy config
  in
  let bvf = campaign Campaign.bvf_strategy in
  let syz = campaign Syz_gen.strategy in
  let bz_rand = campaign (Buzzer_gen.strategy ~mode:Buzzer_gen.Random_bytes ()) in
  let bz_aj = campaign (Buzzer_gen.strategy ()) in
  {
    ac_bvf = Campaign.acceptance_rate bvf;
    ac_syz = Campaign.acceptance_rate syz;
    ac_buzzer_random = Campaign.acceptance_rate bz_rand;
    ac_buzzer_alujmp = Campaign.acceptance_rate bz_aj;
    ac_buzzer_alujmp_ratio = Disasm.alu_jmp_ratio bz_aj.Campaign.st_histogram;
    ac_syz_errno =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) syz.Campaign.st_errno []
      |> List.sort (fun (_, a) (_, b) -> compare b a);
    ac_reasons =
      [
        (bvf.Campaign.st_tool, reason_table bvf);
        (syz.Campaign.st_tool, reason_table syz);
        (bz_rand.Campaign.st_tool, reason_table bz_rand);
        (bz_aj.Campaign.st_tool, reason_table bz_aj);
      ];
  }

let print_acceptance (a : acceptance) : unit =
  Printf.printf "Section 6.3: verifier acceptance rates\n";
  Printf.printf "  BVF                 %5.1f%%   (paper: 49%%)\n"
    (100.0 *. a.ac_bvf);
  Printf.printf "  Syzkaller           %5.1f%%   (paper: 23.5%%)\n"
    (100.0 *. a.ac_syz);
  Printf.printf "  Buzzer (random)     %5.1f%%   (paper: ~1%%)\n"
    (100.0 *. a.ac_buzzer_random);
  Printf.printf "  Buzzer (alu/jmp)    %5.1f%%   (paper: ~97%%)\n"
    (100.0 *. a.ac_buzzer_alujmp);
  Printf.printf "  Buzzer ALU+JMP insn ratio %.1f%% (paper: >=88.4%%)\n"
    (100.0 *. a.ac_buzzer_alujmp_ratio);
  Printf.printf "  Syzkaller top rejection errno: %s\n"
    (String.concat ", "
       (List.map
          (fun (e, n) ->
             Printf.sprintf "%s=%d" (Venv.errno_to_string e) n)
          a.ac_syz_errno));
  Printf.printf "  Rejection taxonomy (why each tool gets rejected):\n";
  List.iter
    (fun (tool, reasons) ->
       Printf.printf "    %-16s %s\n" tool
         (if reasons = [] then "(no rejections)"
          else
            String.concat ", "
              (List.map
                 (fun (r, n) ->
                    Printf.sprintf "%s=%d" (Reject_reason.to_string r) n)
                 reasons)))
    a.ac_reasons

(* -- Section 6.4: sanitation overhead ------------------------------------ *)

type overhead = {
  oh_programs : int;
  oh_exec_slowdown : float;      (* mean per-program exec time ratio - 1 *)
  oh_insn_footprint : float;     (* mean sanitized/unsanitized insn ratio *)
  oh_runs_per_program : int;
}

(* Execute [prog] [runs] times in [session], returning seconds. *)
let time_executions (session : Loader.t) (prog : Verifier.loaded)
    (runs : int) : float =
  let t0 = Bvf_util.Mclock.now_s () in
  for _ = 1 to runs do
    ignore (Loader.execute session prog)
  done;
  Bvf_util.Mclock.elapsed_s ~since:t0

let overhead ?(count = Selftests.target_count) ?(runs = 60)
    ?(version = Version.Bpf_next) () : overhead =
  let suite = Selftests.build ~count version in
  let session_plain =
    Loader.create (Kconfig.with_sanitize (Kconfig.fixed version) false)
  in
  let session_asan =
    Loader.create (Kconfig.with_sanitize (Kconfig.fixed version) true)
  in
  (* recreate the suite's maps inside both sessions: fds line up because
     creation order matches Selftests.build *)
  List.iter
    (fun session ->
       ignore (Loader.create_map session (Bvf_kernel.Map.array_def
                                            ~value_size:48 ()));
       ignore (Loader.create_map session (Bvf_kernel.Map.hash_def
                                            ~key_size:8 ~value_size:48 ()));
       List.iter
         (fun (def : Bvf_kernel.Map.def) ->
            ignore (Loader.create_map session def))
         [ Bvf_kernel.Map.hash_def ~key_size:8 ~value_size:64
             ~has_spin_lock:true ();
           Bvf_kernel.Map.ringbuf_def () ])
    [ session_plain; session_asan ];
  let slowdowns = ref [] in
  let footprints = ref [] in
  List.iter
    (fun req ->
       match
         ( Verifier.load session_plain.Loader.kst
             ~cov:session_plain.Loader.cov req,
           Verifier.load session_asan.Loader.kst
             ~cov:session_asan.Loader.cov req )
       with
       | Ok plain, Ok asan ->
         let t_plain = time_executions session_plain plain runs in
         let t_asan = time_executions session_asan asan runs in
         if t_plain > 0.0 then
           slowdowns := (t_asan /. t_plain) :: !slowdowns;
         footprints :=
           (float_of_int (Array.length asan.Verifier.l_insns)
            /. float_of_int (Array.length plain.Verifier.l_insns))
           :: !footprints
       | _, _ -> ())
    suite.Selftests.requests;
  let mean l =
    match l with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  {
    oh_programs = List.length !footprints;
    oh_exec_slowdown = mean !slowdowns -. 1.0;
    oh_insn_footprint = mean !footprints;
    oh_runs_per_program = runs;
  }

let print_overhead (o : overhead) : unit =
  Printf.printf "Section 6.4: sanitation overhead on %d self-tests\n"
    o.oh_programs;
  Printf.printf "  execution slowdown:     %.0f%%   (paper: 90%%)\n"
    (100.0 *. o.oh_exec_slowdown);
  Printf.printf "  instruction footprint:  %.2fx  (paper: 3.0x)\n"
    o.oh_insn_footprint

(* -- Parallel scaling: the merged-shard campaign runner ------------------ *)

(* Throughput of the same logical campaign sharded across 1/2/4 domains:
   the repo's recorded performance baseline (BENCH_parallel.json).  The
   digest column pins determinism — rerunning a row must reproduce it
   bit-for-bit for fixed (seed, jobs). *)

type parallel_row = {
  pl_jobs : int;
  pl_programs : int;
  pl_seconds : float;
  pl_rate : float;     (* programs per second, wall clock *)
  pl_edges : int;      (* merged (union) coverage *)
  pl_findings : int;
  pl_digest : string;  (* merged campaign digest *)
  pl_shards : (int * (string * float) list) list;
      (* per-shard span totals (inclusive seconds by span name:
         iterate/gen/verify/sanitize/exec), recorded by profiling the
         timed run itself — span recording is cheap enough not to
         disturb the rate column *)
  pl_coordinator : (string * float) list;
      (* coordinator span totals (spawn/join/trace-merge/absorb/merge)
         — where the parallel overhead goes *)
}

type parallel_bench = {
  pb_iterations : int;
  pb_seed : int;
  pb_cores : int;      (* Domain.recommended_domain_count at run time *)
  pb_rows : parallel_row list;
}

let parallel_bench ?(iterations = 6_000) ?(seed = 1)
    ?(jobs = [ 1; 2; 4 ]) () : parallel_bench =
  let config = Kconfig.default Version.Bpf_next in
  let rows =
    List.map
      (fun j ->
         let prof = Bvf_util.Prof.session () in
         let r, dt =
           Bvf_util.Mclock.time_s (fun () ->
               Parallel.run ~jobs:j ~prof ~seed ~iterations
                 Campaign.bvf_strategy config)
         in
         let spans = Bvf_util.Prof.spans prof in
         {
           pl_jobs = j;
           pl_programs = r.Parallel.pr_stats.Campaign.st_generated;
           pl_seconds = dt;
           pl_rate =
             (if dt > 0.0 then
                float_of_int r.Parallel.pr_stats.Campaign.st_generated /. dt
              else 0.0);
           pl_edges = r.Parallel.pr_stats.Campaign.st_edges;
           pl_findings =
             Hashtbl.length r.Parallel.pr_stats.Campaign.st_findings;
           pl_digest = Parallel.digest r;
           pl_shards =
             List.init j (fun i ->
                 (i, Bvf_util.Prof.totals_for spans ~trk:i));
           (* Parallel.run records the coordinator on track [jobs] *)
           pl_coordinator = Bvf_util.Prof.totals_for spans ~trk:j;
         })
      jobs
  in
  {
    pb_iterations = iterations;
    pb_seed = seed;
    pb_cores = Domain.recommended_domain_count ();
    pb_rows = rows;
  }

let parallel_speedup (p : parallel_bench) (row : parallel_row) : float =
  match List.find_opt (fun r -> r.pl_jobs = 1) p.pb_rows with
  | Some base when base.pl_rate > 0.0 -> row.pl_rate /. base.pl_rate
  | Some _ | None -> 1.0

let print_parallel (p : parallel_bench) : unit =
  Printf.printf
    "Parallel campaign scaling (%d iterations, seed %d, %d cores available)\n"
    p.pb_iterations p.pb_seed p.pb_cores;
  Printf.printf "  %5s %9s %9s %13s %9s %8s %8s\n" "jobs" "programs"
    "seconds" "programs/sec" "speedup" "edges" "findings";
  List.iter
    (fun r ->
       Printf.printf "  %5d %9d %9.2f %13.0f %8.2fx %8d %8d\n" r.pl_jobs
         r.pl_programs r.pl_seconds r.pl_rate (parallel_speedup p r)
         r.pl_edges r.pl_findings)
    p.pb_rows;
  List.iter
    (fun r -> Printf.printf "  digest jobs=%d: %s\n" r.pl_jobs r.pl_digest)
    p.pb_rows;
  let fmt_spans spans =
    String.concat ", "
      (List.map (fun (n, s) -> Printf.sprintf "%s %.2fs" n s) spans)
  in
  List.iter
    (fun r ->
       Printf.printf "  spans jobs=%d:\n" r.pl_jobs;
       List.iter
         (fun (i, spans) ->
            Printf.printf "    shard %d: %s\n" i (fmt_spans spans))
         r.pl_shards;
       match
         List.sort (fun (_, a) (_, b) -> compare (b : float) a)
           r.pl_coordinator
       with
       | [] -> ()  (* jobs=1 runs in the calling domain: no coordinator *)
       | (name, s) :: _ as all ->
         Printf.printf "    coordinator: %s\n" (fmt_spans all);
         Printf.printf "    dominant parallel overhead: %s (%.3fs)\n"
           name s)
    p.pb_rows;
  Printf.printf
    "  note: edge counts legitimately differ across jobs — each shard \
     generates\n\
    \  a different program stream (seed+i), so the union of explored \
     edges is a\n\
    \  property of the schedule-independent program SET, which changes \
     with the\n\
    \  sharding (see DESIGN.md, \"Parallel campaigns\")\n";
  let max_jobs =
    List.fold_left (fun m r -> max m r.pl_jobs) 1 p.pb_rows
  in
  if p.pb_cores < max_jobs then
    Printf.printf
      "  warning: only %d cores available for up to %d jobs — domains \
       time-share\n\
      \  cores, so rate and speedup numbers understate true scaling\n"
      p.pb_cores max_jobs

let parallel_to_json (p : parallel_bench) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"bench\": \"parallel\",\n";
  Printf.bprintf b "  \"iterations\": %d,\n" p.pb_iterations;
  Printf.bprintf b "  \"seed\": %d,\n" p.pb_seed;
  Printf.bprintf b "  \"cores\": %d,\n" p.pb_cores;
  Printf.bprintf b "  \"rows\": [\n";
  let span_obj spans =
    "{"
    ^ String.concat ", "
        (List.map
           (fun (n, s) -> Printf.sprintf "\"%s\": %.6f" n s)
           spans)
    ^ "}"
  in
  List.iteri
    (fun i r ->
       Printf.bprintf b
         "    {\"jobs\": %d, \"programs\": %d, \"seconds\": %.6f, \
          \"programs_per_sec\": %.1f, \"speedup_vs_1\": %.3f, \
          \"edges\": %d, \"findings\": %d, \"digest\": \"%s\",\n"
         r.pl_jobs r.pl_programs r.pl_seconds r.pl_rate
         (parallel_speedup p r) r.pl_edges r.pl_findings r.pl_digest;
       Printf.bprintf b "     \"coordinator\": %s,\n"
         (span_obj r.pl_coordinator);
       Printf.bprintf b "     \"shards\": [%s]}%s\n"
         (String.concat ",\n                "
            (List.map
               (fun (s, spans) ->
                  Printf.sprintf "{\"shard\": %d, \"spans\": %s}" s
                    (span_obj spans))
               r.pl_shards))
         (if i < List.length p.pb_rows - 1 then "," else ""))
    p.pb_rows;
  Printf.bprintf b "  ]\n}\n";
  Buffer.contents b

(* -- Ablations (DESIGN.md section 6) ------------------------------------- *)

type ablation_row = {
  ab_name : string;
  ab_edges : int;
  ab_accept : float;
  ab_correctness_bugs : int;
}

let ablation ?(iterations = 6_000) ?(seed = 3) () : ablation_row list =
  let config = Kconfig.default Version.Bpf_next in
  let eval name strategy config =
    let s = Campaign.run ~seed ~iterations strategy config in
    {
      ab_name = name;
      ab_edges = s.Campaign.st_edges;
      ab_accept = Campaign.acceptance_rate s;
      ab_correctness_bugs =
        List.length (Campaign.correctness_bugs_found s);
    }
  in
  let no_feedback =
    { Campaign.bvf_strategy with
      Campaign.s_name = "BVF-nofeedback"; s_feedback = false }
  in
  let no_structure =
    { Syz_gen.strategy with Campaign.s_name = "BVF-nostructure" }
  in
  [
    eval "BVF (full)" Campaign.bvf_strategy config;
    eval "no coverage feedback" no_feedback config;
    eval "no structured generation" no_structure config;
    eval "sanitation disabled" Campaign.bvf_strategy
      (Kconfig.with_sanitize config false);
  ]

let print_ablation (rows : ablation_row list) : unit =
  Printf.printf "Ablation study (bpf-next, equal budgets)\n";
  Printf.printf "  %-26s %8s %10s %18s\n" "variant" "edges" "accept%"
    "correctness bugs";
  List.iter
    (fun r ->
       Printf.printf "  %-26s %8d %9.1f%% %18d\n" r.ab_name r.ab_edges
         (100.0 *. r.ab_accept) r.ab_correctness_bugs)
    rows

(* -- Hot-path microbench (BENCH_hotpath.json) ----------------------------- *)

(* Sequential single-core throughput of the three pipeline hot paths:
   verification (the dominant campaign phase), pre-decoded execution,
   and the end-to-end campaign step.  Alongside wall-clock rates the
   rows record minor-heap allocation per program (Gc.minor_words) —
   the state-pool and decoded-executor work shows up there first — and
   the campaign row pins the determinism digest, so a perf change that
   accidentally alters behavior fails loudly in the regression gate. *)

type hotpath_row = {
  hp_name : string;                 (* "verify" | "exec" | "campaign" *)
  hp_programs : int;                (* loads / executions / iterations *)
  hp_insns : int;                   (* insns analyzed or executed *)
  hp_seconds : float;
  hp_progs_per_sec : float;
  hp_ns_per_insn : float;
  hp_minor_words_per_prog : float;  (* allocation pressure *)
}

type hotpath_bench = {
  hb_count : int;       (* selftest corpus size (verify/exec rows) *)
  hb_repeat : int;      (* verify passes over the corpus *)
  hb_exec_runs : int;   (* executions per program *)
  hb_iterations : int;  (* campaign-row iteration budget *)
  hb_seed : int;
  hb_digest : string;   (* campaign digest: determinism pin *)
  hb_rows : hotpath_row list;
}

let hp_row ~name ~programs ~insns ~seconds ~minor_words : hotpath_row =
  {
    hp_name = name;
    hp_programs = programs;
    hp_insns = insns;
    hp_seconds = seconds;
    hp_progs_per_sec =
      (if seconds > 0.0 then float_of_int programs /. seconds else 0.0);
    hp_ns_per_insn =
      (if insns > 0 then seconds *. 1e9 /. float_of_int insns else 0.0);
    hp_minor_words_per_prog =
      (if programs > 0 then minor_words /. float_of_int programs else 0.0);
  }

(* Verify row: [repeat] sequential verification passes over the
   selftest corpus (fixed verifier, sanitation on — the campaign's
   dominant workload shape). *)
let hotpath_verify ?(count = Selftests.target_count) ?(repeat = 10)
    ?(version = Version.Bpf_next) () : hotpath_row =
  let suite = Selftests.build ~count version in
  let kst = suite.Selftests.session.Loader.kst in
  let cov = suite.Selftests.session.Loader.cov in
  let programs = ref 0 and insns = ref 0 in
  let w0 = Gc.minor_words () in
  let t0 = Bvf_util.Mclock.now_s () in
  for _ = 1 to repeat do
    List.iter
      (fun req ->
         incr programs;
         match Verifier.load kst ~cov req with
         | Ok l -> insns := !insns + l.Verifier.l_insn_processed
         | Error _ -> ())
      suite.Selftests.requests
  done;
  let seconds = Bvf_util.Mclock.elapsed_s ~since:t0 in
  let minor_words = Gc.minor_words () -. w0 in
  hp_row ~name:"verify" ~programs:!programs ~insns:!insns ~seconds
    ~minor_words

(* Exec row: [runs] executions of each verified selftest through the
   pre-decoded interpreter (decode happens once per program, amortized
   by the per-session decode cache). *)
let hotpath_exec ?(count = Selftests.target_count) ?(runs = 60)
    ?(version = Version.Bpf_next) () : hotpath_row =
  let suite = Selftests.build ~count version in
  let session = suite.Selftests.session in
  let loaded =
    List.filter_map
      (fun req ->
         match
           Verifier.load session.Loader.kst ~cov:session.Loader.cov req
         with
         | Ok l -> Some l
         | Error _ -> None)
      suite.Selftests.requests
  in
  let programs = ref 0 and insns = ref 0 in
  let w0 = Gc.minor_words () in
  let t0 = Bvf_util.Mclock.now_s () in
  List.iter
    (fun prog ->
       for _ = 1 to runs do
         incr programs;
         let r = Loader.execute session prog in
         insns := !insns + r.Exec.insns_executed
       done)
    loaded;
  let seconds = Bvf_util.Mclock.elapsed_s ~since:t0 in
  let minor_words = Gc.minor_words () -. w0 in
  hp_row ~name:"exec" ~programs:!programs ~insns:!insns ~seconds
    ~minor_words

(* Campaign row: the end-to-end sequential pipeline (generate, verify,
   sanitize, execute, oracle) — the number the ROADMAP hot-path item
   tracks — plus the digest that pins behavior. *)
let hotpath_campaign ?(iterations = 6_000) ?(seed = 1) () :
  hotpath_row * string =
  let config = Kconfig.default Version.Bpf_next in
  let w0 = Gc.minor_words () in
  let stats, seconds =
    Bvf_util.Mclock.time_s (fun () ->
        Campaign.run ~seed ~iterations Campaign.bvf_strategy config)
  in
  let minor_words = Gc.minor_words () -. w0 in
  let row =
    hp_row ~name:"campaign" ~programs:stats.Campaign.st_generated
      ~insns:stats.Campaign.st_vstats.Bvf_verifier.Vstats.ag_insn_processed
      ~seconds ~minor_words
  in
  (row, Campaign.digest stats)

let hotpath_bench ?(count = Selftests.target_count) ?(repeat = 10)
    ?(exec_runs = 60) ?(iterations = 6_000) ?(seed = 1) () :
  hotpath_bench =
  let verify = hotpath_verify ~count ~repeat () in
  let exec = hotpath_exec ~count ~runs:exec_runs () in
  let campaign, digest = hotpath_campaign ~iterations ~seed () in
  {
    hb_count = count;
    hb_repeat = repeat;
    hb_exec_runs = exec_runs;
    hb_iterations = iterations;
    hb_seed = seed;
    hb_digest = digest;
    hb_rows = [ verify; exec; campaign ];
  }

let print_hotpath (h : hotpath_bench) : unit =
  Printf.printf
    "Hot-path microbench (sequential, %d selftests x%d, %d exec runs, \
     %d campaign iterations, seed %d)\n"
    h.hb_count h.hb_repeat h.hb_exec_runs h.hb_iterations h.hb_seed;
  Printf.printf "  %-10s %9s %12s %9s %13s %10s %14s\n" "row" "programs"
    "insns" "seconds" "programs/sec" "ns/insn" "minor-w/prog";
  List.iter
    (fun r ->
       Printf.printf "  %-10s %9d %12d %9.3f %13.0f %10.1f %14.0f\n"
         r.hp_name r.hp_programs r.hp_insns r.hp_seconds
         r.hp_progs_per_sec r.hp_ns_per_insn r.hp_minor_words_per_prog)
    h.hb_rows;
  Printf.printf "  campaign digest: %s\n" h.hb_digest

let hotpath_to_json (h : hotpath_bench) : string =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n";
  Printf.bprintf b "  \"bench\": \"hotpath\",\n";
  Printf.bprintf b "  \"count\": %d,\n" h.hb_count;
  Printf.bprintf b "  \"repeat\": %d,\n" h.hb_repeat;
  Printf.bprintf b "  \"exec_runs\": %d,\n" h.hb_exec_runs;
  Printf.bprintf b "  \"iterations\": %d,\n" h.hb_iterations;
  Printf.bprintf b "  \"seed\": %d,\n" h.hb_seed;
  Printf.bprintf b "  \"digest\": \"%s\",\n" h.hb_digest;
  Printf.bprintf b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
       Printf.bprintf b
         "    {\"name\": \"%s\", \"programs\": %d, \"insns\": %d, \
          \"seconds\": %.6f, \"programs_per_sec\": %.1f, \
          \"ns_per_insn\": %.2f, \"minor_words_per_prog\": %.1f}%s\n"
         r.hp_name r.hp_programs r.hp_insns r.hp_seconds
         r.hp_progs_per_sec r.hp_ns_per_insn r.hp_minor_words_per_prog
         (if i < List.length h.hb_rows - 1 then "," else ""))
    h.hb_rows;
  Printf.bprintf b "  ]\n}\n";
  Buffer.contents b
