(** Coverage-guided corpus: programs that exercised new verifier
    branches are preserved and serve as mutation seeds, mirroring the
    Syzkaller feedback loop BVF reuses (paper section 5).

    Also implements the reboot-storm breaker: entries implicated in
    enough {e consecutive} fatal kernel reboots are quarantined (removed
    from the pick pool) instead of being re-picked forever. *)

type entry = {
  request : Bvf_verifier.Verifier.request;
  new_edges : int;
  added_at : int;
  mutable blamed : int; (** consecutive fatal reboots implicated in *)
}

type t

val create : ?max_size:int -> unit -> t
val size : t -> int

val quarantined : t -> int
(** Entries removed by the reboot-storm breaker so far. *)

val add :
  t -> iteration:int -> new_edges:int -> Bvf_verifier.Verifier.request ->
  unit
(** Entries contributing no new edges are dropped; when full, the
    weakest half is evicted. *)

val entries : t -> entry list
(** The live (non-quarantined) entries, newest first. *)

val energy : entry -> int
(** The pick weight of an entry: edges contributed plus a recency
    bonus. *)

val of_entries : ?max_size:int -> entry list -> t
(** Rebuild a corpus from entries gathered elsewhere (e.g. the shards of
    a parallel campaign, with [added_at] remapped to global iterations).
    Entries are re-scored under their new iteration numbers; when over
    capacity only the highest-{!energy} entries survive.  Deterministic
    in the input order. *)

val pick : t -> Rng.t -> Bvf_verifier.Verifier.request option
(** Weighted towards entries that contributed more edges, with a recency
    bonus. *)

val pick_entry : t -> Rng.t -> entry option
(** Like {!pick} but returns the entry itself, so the campaign can
    {!blame} or {!absolve} it after observing the run's outcome. *)

val blame : t -> entry -> quarantine_after:int -> bool
(** Record that a run seeded from the entry ended in a fatal reboot.
    After [quarantine_after] consecutive implications the entry is
    quarantined; returns true when that happened. *)

val absolve : entry -> unit
(** The entry's latest run completed without a fatal reboot: reset its
    blame counter. *)
