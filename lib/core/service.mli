(** Verification as a service: the [bvf batch] / [bvf serve] core.

    The service treats the deterministic verifier as a reusable oracle:
    programs arrive as JSONL requests (or wire-format files), verdicts
    leave as JSONL responses, and a content-addressed {!Vcache} in front
    answers repeat submissions without re-running the analysis.  The
    full contract — cache key, soundness argument, schemas, exit
    codes — is docs/SERVICE.md.

    Every service session carries the same fixed map population
    ({!standard_maps}), mirroring the {!Selftests} corpus session, so a
    program exported from the corpus verifies identically here and the
    map fingerprint is a constant of the service, not of the request. *)

(** One parsed service request. *)
type request = {
  q_id : string;  (** caller-chosen identifier, echoed in the response *)
  q_req : Bvf_verifier.Verifier.request;
}

(** An input line/file: the id survives even when the payload does not
    parse, so every input yields exactly one response line. *)
type input = {
  in_id : string;
  in_req : (Bvf_verifier.Verifier.request, string) result;
}

val standard_maps : Bvf_kernel.Map.def list
(** The fixed service map population, created in order at session start:
    an array map (value 48) at fd 3 and a hash map (key 8, value 48) at
    fd 4 — exactly the {!Selftests} session population. *)

val create_session : Bvf_kernel.Kconfig.t -> Bvf_runtime.Loader.t
(** A fresh session with {!standard_maps} installed.  Each worker domain
    of a batch creates its own: sessions share no mutable state. *)

val fingerprints : Bvf_runtime.Loader.t -> string * string
(** [(config_fp, maps_fp)] of a session — the non-program components of
    the {!Vcache.key}. *)

val verify_request :
  ?log_level:int -> Bvf_runtime.Loader.t ->
  Bvf_verifier.Verifier.request -> Vcache.verdict
(** One cold verification, folded into the cacheable verdict record
    (log already capped at {!Vcache.vlog_cap}).  Pure in the service
    sense: the result depends only on (request, session config, session
    maps), never on what the session verified before. *)

(** {1 JSONL codec}

    Flat objects, one per line, parsed with {!Telemetry.parse_object} —
    the same parser every JSON line in the repository goes through.
    Field reference: docs/SERVICE.md. *)

val request_of_json : string -> (request, string) result
(** Parse a request line: required ["id"], ["prog_type"], ["prog"] (hex
    of the wire-format program); optional ["attach"] (string) and
    ["offload"] (bool, default false). *)

val input_of_json : fallback_id:string -> string -> input
(** {!request_of_json} as an {!input}: a failed parse keeps the line's
    id when it got far enough to carry one, [fallback_id] otherwise. *)

val request_to_json : request -> string
(** Inverse of {!request_of_json} (no trailing newline).  Used by
    [bvf selftests --export] to write batch-ready corpora.
    @raise Invalid_argument if a branch escapes the program
    (wire-format programs are complete by construction). *)

val response_to_json :
  id:string -> key:string -> ?hit:bool -> Vcache.verdict -> string
(** Encode a verdict response.  Everything before the optional trailing
    ["cache"] field (present when [hit] is given) is a pure function of
    the verdict — stripping that one field makes warm and cold runs
    byte-identical, which is how the determinism gates compare them. *)

val error_to_json : id:string -> string -> string
(** The response to an unparsable input: [{"id":...,"verdict":"error",
    "msg":...}]. *)

(** {1 Input sources} *)

val read_jsonl : string -> input list
(** Requests from a JSONL file, in line order.  Blank lines are
    skipped; a malformed line becomes an [Error] input whose id is
    ["line<N>"] (1-based) unless the line yielded an id before
    failing. *)

val read_dir : string -> input list
(** Requests from a directory, in sorted filename order: [*.bin] (raw
    wire bytes) and [*.hex] (hex text, whitespace ignored).  The
    filename is the id; a [NAME.<prog_type>.bin] infix selects the
    program type, anything else verifies as [socket_filter]. *)

(** {1 Batch} *)

(** Per-input outcome, in input order. *)
type outcome =
  | Verdict of { o_key : string; o_hit : bool; o_verdict : Vcache.verdict }
  | Invalid of string  (** parse/decode failure message *)

type item = { it_id : string; it_outcome : outcome }

val item_to_json : item -> string
(** The batch result line for one item ({!response_to_json} with the
    cache field, or {!error_to_json}). *)

(** Batch roll-up.  The latency percentiles are nearest-rank over the
    cold (miss) verifications only — hits are cache probes, not
    verifier work.  Wall times here are observations and never part of
    any deterministic artifact. *)
type summary = {
  bs_programs : int;  (** inputs processed, including invalid ones *)
  bs_admitted : int;
  bs_rejected : int;
  bs_invalid : int;
  bs_hits : int;
  bs_misses : int;
  bs_verify_p50_s : float;
  bs_verify_p95_s : float;
  bs_wall_s : float;
}

val summary_to_json : summary -> string

val run_batch :
  ?log_level:int -> ?sink:Telemetry.sink ->
  ?prof:Bvf_util.Prof.session -> jobs:int -> cache:Vcache.t ->
  Bvf_kernel.Kconfig.t -> input list -> item list * summary
(** Verify a batch with the cache in front.  The cache is probed and
    updated only from the calling domain; misses are verified on [jobs]
    worker domains (each with its own {!create_session} session,
    round-robin assignment), so results are independent of domain
    scheduling and [--jobs 1] output equals [--jobs N] output
    byte-for-byte.  Service telemetry (one cache event and one verdict
    event per valid request, seq = valid-request index) lands on [sink]
    in input order.

    [prof] (default {!Bvf_util.Prof.null}) records the batch as
    profiler spans: track [d] carries worker domain [d]'s per-miss
    "verify" spans, track [jobs] the coordinator's "probe" and "join"
    passes.  Pure observation — never affects output bytes.
    @raise Invalid_argument when [jobs < 1]. *)

(** {1 Serve} *)

type serve_stats = {
  sv_requests : int;  (** valid requests answered *)
  sv_invalid : int;
  sv_admitted : int;
  sv_rejected : int;
  sv_hits : int;
  sv_misses : int;
}

val serve :
  ?log_level:int -> ?sink:Telemetry.sink -> ?prof:Bvf_util.Prof.t ->
  cache:Vcache.t -> session:Bvf_runtime.Loader.t -> stop:(unit -> bool) ->
  in_channel -> out_channel -> serve_stats
(** The request loop: one JSONL request per input line, one response
    line (flushed) per request, until end of input or [stop ()] turns
    true — the CLI's SIGINT/SIGTERM handlers flip it, so a drain
    finishes the in-flight request, persists the cache and exits.
    Single-domain by design: a serve loop is latency-shaped, and the
    cache answers the repeat-heavy part of the workload.

    A line that is a flat JSON object with ["metrics":true] is a {b
    metrics request} (docs/SERVICE.md): the loop answers with one flat
    JSON line of in-process counters — requests/invalid/admitted/
    rejected, cache hits/misses, and cold-verification latency
    (count, nearest-rank p50/p95 seconds, and a fixed histogram
    [verify_le_100us]/[verify_le_1ms]/[verify_le_10ms]/
    [verify_gt_10ms]).  The optional ["id"] is echoed (default
    ["metrics"]).  Metrics requests touch no counter, emit no
    telemetry and never reach the verifier, so they are invisible to
    the byte-identity contract of every other response.  [prof]
    (default {!Bvf_util.Prof.disabled}) records a "probe" span per
    valid request and a "verify" span per cache miss. *)
