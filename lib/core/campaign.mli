(** Fuzzing campaign driver: the outer loop of the paper's Figure 3.

    One campaign owns a simulated kernel (recreated when it "crashes",
    like rebooting a fuzzing VM), a coverage map that persists across
    reboots, a corpus of coverage-increasing inputs, and the dedup table
    of findings.  The driver is strategy-parametric, so the same harness
    runs BVF and the Syzkaller/Buzzer baselines under identical
    conditions (section 6.3's methodology).

    Campaigns are built to run for days: a {!Bvf_kernel.Failslab} fault
    plan can be threaded through the simulated kernel (transient
    [-ENOMEM] outcomes are retried and counted, never reported as
    findings), progress is periodically checkpointed to disk and can be
    {!resume}d after a crash or kill, and corpus entries implicated in
    consecutive fatal reboots are quarantined. *)

(** A pluggable generation strategy. *)
type strategy = {
  s_name : string;
  s_feedback : bool; (** coverage-guided corpus mutation *)
  s_generate :
    Rng.t -> Gen.config -> Bvf_verifier.Verifier.request option ->
    Bvf_verifier.Verifier.request;
    (** a corpus seed is supplied when feedback is on *)
}

val bvf_strategy : strategy
(** The paper's tool: structured generation plus coverage feedback. *)

(** A deduplicated finding with discovery metadata. *)
type found = {
  fd_finding : Oracle.finding;
  fd_iteration : int;
  fd_request : Bvf_verifier.Verifier.request;
}

type sample = { sa_iteration : int; sa_edges : int }

type stats = {
  st_tool : string;
  st_version : Bvf_ebpf.Version.t;
  mutable st_generated : int;
  mutable st_accepted : int;
  mutable st_rejected : int;
  st_errno : (Bvf_verifier.Venv.errno, int) Hashtbl.t;
  st_reasons : (Bvf_verifier.Reject_reason.t, int) Hashtbl.t;
      (** rejection taxonomy: how many rejections per reason *)
  st_findings : (string, found) Hashtbl.t;
  mutable st_curve : sample list; (** newest first *)
  mutable st_histogram : Bvf_ebpf.Disasm.class_histogram;
  mutable st_edges : int;
  mutable st_reboots : int;
  mutable st_env_errors : int;
      (** transient environment errors that survived retry *)
  mutable st_retries : int;
      (** transient environment errors retried away *)
  mutable st_quarantined : int;
      (** corpus entries quarantined by the reboot-storm breaker *)
  mutable st_skipped : int;
      (** iterations skipped ({!step_skip}) because a previous run's
          harness crash quarantined them; disturbed work accounted for,
          never silently dropped *)
  mutable st_lint : int;
      (** invariant-lint violations observed on accepted programs
          (only when the config enables {!Bvf_kernel.Kconfig.t.lint});
          a verifier-quality signal, never findings *)
  mutable st_gen_s : float;      (** wall time generating programs *)
  mutable st_verify_s : float;   (** wall time in the verifier *)
  mutable st_sanitize_s : float; (** wall time in fixup + sanitation *)
  mutable st_exec_s : float;     (** wall time executing programs *)
  mutable st_gen_w : float;      (** minor words generating programs *)
  mutable st_verify_w : float;   (** minor words in the verifier *)
  mutable st_sanitize_w : float; (** minor words in fixup + sanitation *)
  mutable st_exec_w : float;     (** minor words executing programs.
      Allocation observations like the phase timers above: excluded
      from {!digest}. *)
  st_vstats : Bvf_verifier.Vstats.agg;
      (** veristat-style verifier-counter aggregate over every analysis
          that ran.  Deterministic (no wall times), so part of
          {!digest}; merged across shards like coverage. *)
}

val acceptance_rate : stats -> float
val bugs_found : stats -> Bvf_kernel.Kconfig.bug list
val correctness_bugs_found : stats -> Bvf_kernel.Kconfig.bug list

val fingerprints : stats -> string list
(** Sorted deduplication keys (fingerprint plus attributed bug) of every
    finding — a campaign's findings identity. *)

val plateau : stats -> (int * int) option
(** Coverage-plateau report from the sampled curve: [Some (last_gain,
    stalled)] where [last_gain] is the earliest sampled iteration
    already at the final edge count and [stalled] how many iterations
    ran past it without a new edge.  [None] before any sample exists. *)

val digest : ?exclude_finding:(string -> bool) -> stats -> string
(** Canonical hex digest of everything the campaign observed: counters,
    errno distribution, findings (with discovery iterations) and the
    coverage curve.  Two campaigns with equal digests generated the same
    programs and saw the same outcomes.  [exclude_finding] (default:
    keep everything) drops finding lines whose dedup key matches, so a
    run with an extra report class (e.g. the witness oracle) can be
    compared against one without it. *)

val standard_maps :
  Bvf_runtime.Loader.t -> (int * Bvf_kernel.Map.def) list
(** The session's standard map population: array, hash, spin-lock hash
    and ring buffer.  Under fault injection some creations may fail;
    the session then runs with fewer maps. *)

val is_fatal : Bvf_kernel.Report.t -> bool
(** Reports that leave the simulated kernel unusable (reboot). *)

val is_transient : Bvf_runtime.Loader.run_result -> bool
(** Transient environment errors — injected allocation failures showing
    up as [-ENOMEM] at load or run time.  Eligible for retry, never
    findings. *)

exception Environment of string
(** The campaign cannot continue for environmental reasons (checkpoint
    write failure, resume against a mismatched config).  Distinct from
    any finding: callers should report it and exit nonzero. *)

(** A running campaign. *)
type t = {
  config : Bvf_kernel.Kconfig.t;
  strategy : strategy;
  seed : int;
  rng : Rng.t;
  failslab : Bvf_kernel.Failslab.t;
  cov : Bvf_verifier.Coverage.t;
  corpus : Corpus.t;
  stats : stats;
  mutable session : Bvf_runtime.Loader.t;
  mutable gen_config : Gen.config;
  sample_every : int;
  telemetry : Telemetry.sink;
      (** JSONL event sink; {!Telemetry.null} when not tracing *)
  log_level : int; (** verifier log level for every load (default 0) *)
  prof : Bvf_util.Prof.t;
      (** span-profiler handle for this campaign's domain;
          [Prof.disabled] unless the run opted in.  Pure observation:
          never touches the RNG, the telemetry sink or the digest. *)
}

val reboot : t -> unit

val create :
  ?sample_every:int -> ?telemetry:Telemetry.sink -> ?log_level:int ->
  ?prof:Bvf_util.Prof.t -> ?failslab:Bvf_kernel.Failslab.t -> seed:int ->
  strategy -> Bvf_kernel.Kconfig.t -> t

val step : t -> unit
(** One fuzzing iteration: generate (or mutate), load, run, classify.
    Transient environment errors are retried (a plain retry, then a
    reboot before the final attempt); fatal reports reboot the kernel
    and feed the reboot-storm breaker. *)

val step_skip : t -> unit
(** Skip one harness-crash-quarantined iteration: consume exactly the
    generation-phase RNG draws {!step} would (corpus pick + generate),
    bump [st_generated]/[st_skipped] and emit a
    {!Telemetry.event.Quarantined} event, but never load or run the
    program.  A supervised restart skipping iteration [i] and a
    fault-free campaign told up front to skip [i] perform the same
    state transition, which keeps the two runs digest-comparable. *)

(** {1 Checkpointing}

    Everything needed to continue a campaign from disk.  The simulated
    kernel itself is deliberately absent: checkpoints are taken at a
    reboot boundary, so a fresh kernel plus the snapshot fully
    determines future behavior — a resumed campaign replays the exact
    continuation of the uninterrupted one. *)

type snapshot = {
  sn_tool : string;
  sn_kernel : Bvf_ebpf.Version.t;
  sn_seed : int;
  sn_sanitize : bool;
  sn_unprivileged : bool;
  sn_witness : bool;
  sn_lint : bool;
  sn_completed : int; (** iterations finished when taken *)
  sn_merged : bool;
      (** built by [Parallel.merge_snapshots] ([bvf merge]), not taken
          from a live campaign: reportable and re-mergeable, but
          {!resume} refuses it (there is no RNG stream to continue) *)
  sn_rng : int64;
  sn_failslab : Bvf_kernel.Failslab.t;
  sn_corpus : Corpus.t;
  sn_cov : Bvf_verifier.Coverage.t;
  sn_stats : stats;
}

val snapshot : t -> snapshot

val save_checkpoint : t -> path:string -> (unit, Checkpoint.error) result

val save_snapshot : snapshot -> path:string -> (unit, Checkpoint.error) result
(** Persist a snapshot value that has no live campaign behind it — the
    [bvf merge] output path. *)

val load_checkpoint : path:string -> (snapshot, Checkpoint.error) result

val resume :
  ?sample_every:int -> ?telemetry:Telemetry.sink -> ?log_level:int ->
  ?prof:Bvf_util.Prof.t ->
  strategy -> Bvf_kernel.Kconfig.t -> snapshot -> t
(** Rebuild a running campaign from a snapshot.  The snapshot value is
    deep-copied first, so resuming the same in-memory snapshot several
    times yields independent campaigns (identical to resuming a
    from-disk checkpoint several times).
    @raise Environment when the snapshot was taken by a different tool,
    kernel version, or config — or is a merged artifact
    ([sn_merged]). *)

val run_t :
  ?sample_every:int -> ?telemetry:Telemetry.sink -> ?log_level:int ->
  ?prof:Bvf_util.Prof.t ->
  ?checkpoint_every:int -> ?checkpoint_path:string ->
  ?failslab:Bvf_kernel.Failslab.t -> ?resume_from:snapshot ->
  ?skip:(int -> bool) -> ?stop:(unit -> bool) ->
  ?on_step:(t -> unit) -> seed:int ->
  iterations:int -> strategy -> Bvf_kernel.Kconfig.t -> t
(** Like {!run} but returns the whole campaign, giving callers (the
    parallel shard runner, the supervisor's workers, tests) access to
    the final coverage map and corpus alongside the stats. *)

val run :
  ?sample_every:int -> ?telemetry:Telemetry.sink -> ?log_level:int ->
  ?prof:Bvf_util.Prof.t ->
  ?checkpoint_every:int -> ?checkpoint_path:string ->
  ?failslab:Bvf_kernel.Failslab.t -> ?resume_from:snapshot ->
  ?skip:(int -> bool) -> ?stop:(unit -> bool) ->
  ?on_step:(t -> unit) -> seed:int ->
  iterations:int -> strategy -> Bvf_kernel.Kconfig.t -> stats
(** Drive [iterations] steps.  Every [checkpoint_every] completed
    iterations (absolute count, so resumed runs hit the same barriers)
    the campaign writes a checkpoint to [checkpoint_path] (if given) and
    reboots the kernel — the barrier that makes resume deterministic.
    The closing coverage sample is deduplicated by iteration, so
    finalizing a campaign twice (or on a sample boundary) never records
    the same iteration twice.  [skip] selects iterations to pass to
    {!step_skip} instead of {!step} (the harness-crash quarantine).
    [stop] is polled after every completed iteration; when it returns
    true the campaign writes a final checkpoint, reboots (the exact
    barrier sequence, run once even when the stop lands on a scheduled
    barrier) and returns early — the SIGINT/SIGTERM path.  [on_step]
    (the [--progress] observer) is called after each completed
    iteration, outside the deterministic core: it must not mutate the
    campaign.
    @raise Environment on checkpoint write failure. *)

val pp_summary : Format.formatter -> stats -> unit
