open Cimport

(* Verification as a service (docs/SERVICE.md): JSONL in, verdicts out,
   a content-addressed Vcache in front of the deterministic verifier.

   Determinism discipline: everything emitted per program is a pure
   function of (request, config, maps) — the single exception is the
   trailing "cache":"hit"|"miss" field, which depends on cache history
   and is defined out of the byte-identity contract.  Wall times appear
   only in the batch summary. *)

module Vstats = Bvf_verifier.Vstats
module Mclock = Bvf_util.Mclock

type request = {
  q_id : string;
  q_req : Verifier.request;
}

type input = {
  in_id : string;
  in_req : (Verifier.request, string) result;
}

(* The Selftests session population, replicated so corpus exports
   verify identically under the service (array -> fd 3, hash -> fd 4;
   Kstate.next_fd starts at 3). *)
let standard_maps : Map.def list =
  [ Map.array_def ~value_size:48 ();
    Map.hash_def ~key_size:8 ~value_size:48 () ]

let create_session (config : Kconfig.t) : Loader.t =
  let session = Loader.create config in
  List.iter
    (fun def -> ignore (Loader.create_map session def : int))
    standard_maps;
  session

let fingerprints (session : Loader.t) : string * string =
  let kst = session.Loader.kst in
  let defs =
    List.map (fun (fd, m) -> (fd, m.Map.def)) kst.Kstate.maps
  in
  (Verifier.config_fingerprint kst.Kstate.config,
   Verifier.maps_fingerprint defs)

let verify_request ?(log_level = 0) (session : Loader.t)
    (req : Verifier.request) : Vcache.verdict =
  let verdict, vlog, vstats =
    Verifier.load_with_stats session.Loader.kst ~cov:session.Loader.cov
      ~log_level req
  in
  match verdict with
  | Ok l ->
    { Vcache.cv_accepted = true;
      cv_insns = Array.length l.Verifier.l_insns;
      cv_insn_processed = l.Verifier.l_insn_processed;
      cv_errno = ""; cv_reason = None; cv_pc = 0; cv_msg = "";
      cv_vlog = Vcache.cap_vlog vlog; cv_vstats = vstats }
  | Error e ->
    { Vcache.cv_accepted = false;
      cv_insns = Array.length req.Verifier.r_insns;
      cv_insn_processed =
        (match vstats with
         | Some s -> s.Vstats.vs_insn_processed
         | None -> 0);
      cv_errno = Venv.errno_to_string e.Venv.errno;
      cv_reason = Some e.Venv.vreason;
      cv_pc = e.Venv.vpc;
      cv_msg = e.Venv.vmsg;
      cv_vlog = Vcache.cap_vlog vlog; cv_vstats = vstats }

(* -- JSONL codec ----------------------------------------------------- *)

let hex_of_bytes (b : Bytes.t) : string =
  let out = Buffer.create (2 * Bytes.length b) in
  Bytes.iter
    (fun c -> Printf.bprintf out "%02x" (Char.code c))
    b;
  Buffer.contents out

let bytes_of_hex (s : string) : (Bytes.t, string) result =
  let digits = Buffer.create (String.length s) in
  (try
     String.iter
       (fun c ->
          match c with
          | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> Buffer.add_char digits c
          | ' ' | '\t' | '\n' | '\r' -> ()
          | _ -> raise Exit)
       s
   with Exit -> Buffer.clear digits; Buffer.add_char digits 'x');
  let h = Buffer.contents digits in
  let n = String.length h in
  if h = "x" then Error "prog is not hex"
  else if n mod 2 <> 0 then Error "prog hex has an odd digit count"
  else
    Ok
      (Bytes.init (n / 2) (fun i ->
           Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))))

let decode_prog (bytes : Bytes.t) :
  (Insn.t array, string) result =
  match Encode.decode bytes with
  | Ok insns -> Ok insns
  | Error { Encode.pos; reason } ->
    Error (Printf.sprintf "bad program at slot %d: %s" pos reason)

(* Parse one request line; on failure, recover the id when the line
   got far enough to carry one, so the error response still names the
   caller's request. *)
let parse_request (line : string) :
  (request, string option * string) result =
  match Telemetry.parse_object (String.trim line) with
  | exception Telemetry.Parse -> Error (None, "malformed JSON")
  | fields ->
    let str k =
      match List.assoc_opt k fields with
      | Some (Telemetry.Jstr s) -> Some s
      | _ -> None
    in
    let bol k =
      match List.assoc_opt k fields with
      | Some (Telemetry.Jbool b) -> b
      | _ -> false
    in
    let id = str "id" in
    let ( let* ) = Result.bind in
    let req =
      let* pt =
        match str "prog_type" with
        | None -> Error "missing prog_type"
        | Some s ->
          (match Prog.prog_type_of_string s with
           | Some pt -> Ok pt
           | None -> Error (Printf.sprintf "unknown prog_type %S" s))
      in
      let* hex =
        match str "prog" with
        | Some h -> Ok h
        | None -> Error "missing prog"
      in
      let* bytes = bytes_of_hex hex in
      let* insns = decode_prog bytes in
      Ok
        { Verifier.r_prog_type = pt;
          r_attach = str "attach";
          r_offload = bol "offload";
          r_insns = insns }
    in
    match id, req with
    | Some q_id, Ok q_req -> Ok { q_id; q_req }
    | None, Ok _ -> Error (None, "missing id")
    | _, Error e -> Error (id, e)

let request_of_json (line : string) : (request, string) result =
  match parse_request line with
  | Ok r -> Ok r
  | Error (Some id, msg) -> Error (Printf.sprintf "%s: %s" id msg)
  | Error (None, msg) -> Error msg

let input_of_json ~(fallback_id : string) (line : string) : input =
  match parse_request line with
  | Ok r -> { in_id = r.q_id; in_req = Ok r.q_req }
  | Error (id, msg) ->
    { in_id = Option.value id ~default:fallback_id; in_req = Error msg }

let request_to_json (r : request) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"id\":\"";
  Telemetry.escape b r.q_id;
  Printf.bprintf b "\",\"prog_type\":\"%s\""
    (Prog.prog_type_to_string r.q_req.Verifier.r_prog_type);
  (match r.q_req.Verifier.r_attach with
   | None -> ()
   | Some a ->
     Buffer.add_string b ",\"attach\":\"";
     Telemetry.escape b a;
     Buffer.add_char b '"');
  if r.q_req.Verifier.r_offload then
    Buffer.add_string b ",\"offload\":true";
  Printf.bprintf b ",\"prog\":\"%s\"}"
    (hex_of_bytes (Encode.encode r.q_req.Verifier.r_insns));
  Buffer.contents b

let response_to_json ~(id : string) ~(key : string) ?hit
    (v : Vcache.verdict) : string =
  let b = Buffer.create 160 in
  let str k s =
    Printf.bprintf b ",\"%s\":\"" k;
    Telemetry.escape b s;
    Buffer.add_char b '"'
  in
  Buffer.add_string b "{\"id\":\"";
  Telemetry.escape b id;
  Printf.bprintf b "\",\"key\":\"%s\"" key;
  if v.Vcache.cv_accepted then begin
    Buffer.add_string b ",\"verdict\":\"accepted\"";
    Printf.bprintf b ",\"insns\":%d,\"insn_processed\":%d"
      v.Vcache.cv_insns v.Vcache.cv_insn_processed;
    match v.Vcache.cv_vstats with
    | Some s ->
      Printf.bprintf b ",\"total_states\":%d,\"peak_states\":%d"
        s.Vstats.vs_total_states s.Vstats.vs_peak_states
    | None -> ()
  end
  else begin
    Buffer.add_string b ",\"verdict\":\"rejected\"";
    str "reason"
      (match v.Vcache.cv_reason with
       | Some r -> Reject_reason.to_string r
       | None -> Reject_reason.to_string Reject_reason.Unknown);
    str "errno" v.Vcache.cv_errno;
    Printf.bprintf b ",\"pc\":%d" v.Vcache.cv_pc;
    str "msg" v.Vcache.cv_msg;
    Printf.bprintf b ",\"insn_processed\":%d" v.Vcache.cv_insn_processed
  end;
  if v.Vcache.cv_vlog <> "" then str "vlog" v.Vcache.cv_vlog;
  (* the one history-dependent field, kept last so the determinism
     gates can strip it textually *)
  (match hit with
   | Some h -> Printf.bprintf b ",\"cache\":\"%s\"" (if h then "hit" else "miss")
   | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let error_to_json ~(id : string) (msg : string) : string =
  let b = Buffer.create 64 in
  Buffer.add_string b "{\"id\":\"";
  Telemetry.escape b id;
  Buffer.add_string b "\",\"verdict\":\"error\",\"msg\":\"";
  Telemetry.escape b msg;
  Buffer.add_string b "\"}";
  Buffer.contents b

(* -- Input sources --------------------------------------------------- *)

let read_jsonl (path : string) : input list =
  let ic = open_in path in
  let inputs = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         inputs :=
           input_of_json ~fallback_id:(Printf.sprintf "line%d" !lineno)
             line
           :: !inputs
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !inputs

(* NAME.<prog_type>.bin selects the program type; everything else is a
   socket filter, the least-privileged default. *)
let prog_type_of_filename (name : string) : Prog.prog_type =
  match String.split_on_char '.' name with
  | _ :: _ :: _ :: _ as parts ->
    let infix = List.nth parts (List.length parts - 2) in
    Option.value (Prog.prog_type_of_string infix)
      ~default:Prog.Socket_filter
  | _ -> Prog.Socket_filter

let read_file_bytes (path : string) : Bytes.t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let read_dir (dir : string) : input list =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.to_list entries
  |> List.filter_map (fun name ->
      let wire =
        if Filename.check_suffix name ".bin" then
          Some (Ok (read_file_bytes (Filename.concat dir name)))
        else if Filename.check_suffix name ".hex" then
          Some
            (bytes_of_hex
               (Bytes.to_string
                  (read_file_bytes (Filename.concat dir name))))
        else None
      in
      match wire with
      | None -> None
      | Some (Error msg) -> Some { in_id = name; in_req = Error msg }
      | Some (Ok bytes) ->
        let req =
          match decode_prog bytes with
          | Error msg -> Error msg
          | Ok insns ->
            Ok
              { Verifier.r_prog_type = prog_type_of_filename name;
                r_attach = None; r_offload = false; r_insns = insns }
        in
        Some { in_id = name; in_req = req })

(* -- Batch ----------------------------------------------------------- *)

type outcome =
  | Verdict of { o_key : string; o_hit : bool; o_verdict : Vcache.verdict }
  | Invalid of string

type item = { it_id : string; it_outcome : outcome }

let item_to_json (it : item) : string =
  match it.it_outcome with
  | Verdict { o_key; o_hit; o_verdict } ->
    response_to_json ~id:it.it_id ~key:o_key ~hit:o_hit o_verdict
  | Invalid msg -> error_to_json ~id:it.it_id msg

type summary = {
  bs_programs : int;
  bs_admitted : int;
  bs_rejected : int;
  bs_invalid : int;
  bs_hits : int;
  bs_misses : int;
  bs_verify_p50_s : float;
  bs_verify_p95_s : float;
  bs_wall_s : float;
}

let summary_to_json (s : summary) : string =
  Printf.sprintf
    "{\"programs\":%d,\"admitted\":%d,\"rejected\":%d,\"invalid\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"verify_p50_s\":%.6f,\"verify_p95_s\":%.6f,\"wall_s\":%.6f}"
    s.bs_programs s.bs_admitted s.bs_rejected s.bs_invalid s.bs_hits
    s.bs_misses s.bs_verify_p50_s s.bs_verify_p95_s s.bs_wall_s

let emit_events (sink : Telemetry.sink) ~(seq : int) ~(key : string)
    ~(hit : bool) (v : Vcache.verdict) : unit =
  Telemetry.emit sink
    (if hit then Telemetry.Service_hit { seq; key }
     else Telemetry.Service_miss { seq; key });
  if v.Vcache.cv_accepted then
    Telemetry.emit sink
      (Telemetry.Service_admitted
         { seq; key; insns = v.Vcache.cv_insns;
           insn_processed = v.Vcache.cv_insn_processed })
  else
    Telemetry.emit sink
      (Telemetry.Service_rejected
         { seq; key;
           reason =
             Option.value v.Vcache.cv_reason
               ~default:Reject_reason.Unknown })

let run_batch ?(log_level = 0) ?(sink = Telemetry.null)
    ?(prof = Bvf_util.Prof.null) ~(jobs : int) ~(cache : Vcache.t)
    (config : Kconfig.t) (inputs : input list) : item list * summary =
  if jobs < 1 then invalid_arg "Service.run_batch: jobs must be >= 1";
  (* coordinator track = jobs, one verifier track per worker domain —
     the same layout as Parallel.run's shard/coordinator split *)
  let main_prof = Bvf_util.Prof.track prof ~name:"batch" jobs in
  let t0 = Mclock.now_s () in
  let session0 = create_session config in
  let config_fp, maps_fp = fingerprints session0 in
  let items = Array.of_list inputs in
  let n = Array.length items in
  let keys = Array.make n "" in
  let cached = Array.make n None in
  let miss_list = ref [] in
  (* probe pass: cache traffic stays in the calling domain *)
  Bvf_util.Prof.span main_prof "probe" (fun () ->
      Array.iteri
        (fun i input ->
           match input.in_req with
           | Error _ -> ()
           | Ok req ->
             let k = Vcache.key ~config_fp ~maps_fp req in
             keys.(i) <- k;
             (match Vcache.find cache k with
              | Some v -> cached.(i) <- Some v
              | None -> miss_list := (i, req) :: !miss_list))
        items);
  let misses = Array.of_list (List.rev !miss_list) in
  let m = Array.length misses in
  let verdicts = Array.make m None in
  let durations = Array.make m 0.0 in
  (* verify pass: round-robin striding gives each domain disjoint
     slots, and each domain verifies in its own fresh session *)
  let worker (wprof : Bvf_util.Prof.t) (session : Loader.t)
      (first : int) (step : int) : unit =
    let j = ref first in
    while !j < m do
      let _, req = misses.(!j) in
      let fr = Bvf_util.Prof.start wprof "verify" in
      verdicts.(!j) <- Some (verify_request ~log_level session req);
      let dur, _ = Bvf_util.Prof.stop wprof fr in
      durations.(!j) <- dur;
      j := !j + step
    done
  in
  let jobs = max 1 (min jobs m) in
  let wprof =
    Array.init jobs (fun d ->
        Bvf_util.Prof.track prof ~name:(Printf.sprintf "verifier%d" d) d)
  in
  if jobs <= 1 then worker wprof.(0) session0 0 1
  else
    List.init jobs (fun d ->
        Domain.spawn (fun () ->
            worker wprof.(d) (create_session config) d jobs))
    |> List.iter Domain.join;
  (* fill pass: insert in input order, back in the calling domain *)
  let fr_join = Bvf_util.Prof.start main_prof "join" in
  let hits = ref 0 in
  Array.iteri
    (fun j (slot, _) ->
       let v = Option.get verdicts.(j) in
       Vcache.insert cache keys.(slot) v;
       cached.(slot) <- Some v)
    misses;
  let miss_slots =
    Array.fold_left (fun acc (slot, _) -> slot :: acc) [] misses
  in
  let is_miss = Array.make n false in
  List.iter (fun slot -> is_miss.(slot) <- true) miss_slots;
  let admitted = ref 0 and rejected = ref 0 and invalid = ref 0 in
  let seq = ref 0 in
  let out =
    Array.to_list
      (Array.mapi
         (fun i input ->
            match input.in_req with
            | Error msg ->
              incr invalid;
              { it_id = input.in_id; it_outcome = Invalid msg }
            | Ok _ ->
              let v = Option.get cached.(i) in
              let hit = not is_miss.(i) in
              if hit then incr hits;
              if v.Vcache.cv_accepted then incr admitted
              else incr rejected;
              emit_events sink ~seq:!seq ~key:keys.(i) ~hit v;
              incr seq;
              { it_id = input.in_id;
                it_outcome =
                  Verdict { o_key = keys.(i); o_hit = hit; o_verdict = v }
              })
         items)
  in
  let sorted = Array.copy durations in
  Array.sort compare sorted;
  let summary =
    { bs_programs = n;
      bs_admitted = !admitted;
      bs_rejected = !rejected;
      bs_invalid = !invalid;
      bs_hits = !hits;
      bs_misses = m;
      bs_verify_p50_s = Bvf_util.Percentile.of_sorted sorted 50;
      bs_verify_p95_s = Bvf_util.Percentile.of_sorted sorted 95;
      bs_wall_s = Mclock.elapsed_s ~since:t0 }
  in
  ignore (Bvf_util.Prof.stop main_prof fr_join);
  (out, summary)

(* -- Serve ----------------------------------------------------------- *)

type serve_stats = {
  sv_requests : int;
  sv_invalid : int;
  sv_admitted : int;
  sv_rejected : int;
  sv_hits : int;
  sv_misses : int;
}

(* A metrics request is any object with "metrics":true — it never
   parses as a program request (those require prog_type and prog), so
   the two request shapes cannot collide.  Returns the echoed id. *)
let metrics_request (line : string) : string option =
  match Telemetry.parse_object (String.trim line) with
  | exception Telemetry.Parse -> None
  | fields ->
    (match List.assoc_opt "metrics" fields with
     | Some (Telemetry.Jbool true) ->
       Some
         (match List.assoc_opt "id" fields with
          | Some (Telemetry.Jstr s) -> s
          | _ -> "metrics")
     | _ -> None)

let metrics_to_json ~(id : string) ~(requests : int) ~(invalid : int)
    ~(admitted : int) ~(rejected : int) ~(hits : int) ~(misses : int)
    ~(verify_s : float list) ~(le_100us : int) ~(le_1ms : int)
    ~(le_10ms : int) ~(gt_10ms : int) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"id\":\"";
  Telemetry.escape b id;
  Printf.bprintf b
    "\",\"metrics\":true,\"requests\":%d,\"invalid\":%d,\"admitted\":%d,\"rejected\":%d,\"cache_hits\":%d,\"cache_misses\":%d"
    requests invalid admitted rejected hits misses;
  Printf.bprintf b
    ",\"verify_count\":%d,\"verify_p50_s\":%.6f,\"verify_p95_s\":%.6f"
    (List.length verify_s)
    (Bvf_util.Percentile.of_samples verify_s 50)
    (Bvf_util.Percentile.of_samples verify_s 95);
  Printf.bprintf b
    ",\"verify_le_100us\":%d,\"verify_le_1ms\":%d,\"verify_le_10ms\":%d,\"verify_gt_10ms\":%d}"
    le_100us le_1ms le_10ms gt_10ms;
  Buffer.contents b

let serve ?(log_level = 0) ?(sink = Telemetry.null)
    ?(prof = Bvf_util.Prof.disabled) ~(cache : Vcache.t)
    ~(session : Loader.t) ~(stop : unit -> bool) (ic : in_channel)
    (oc : out_channel) : serve_stats =
  let config_fp, maps_fp = fingerprints session in
  let requests = ref 0 and invalid = ref 0 in
  let admitted = ref 0 and rejected = ref 0 in
  let hits = ref 0 and misses = ref 0 in
  (* cold verification latencies (newest first) and their histogram:
     the payload of the metrics response.  Observations only — they
     never reach the telemetry sink or the response byte-identity
     contract. *)
  let verify_s = ref [] in
  let le_100us = ref 0 and le_1ms = ref 0 in
  let le_10ms = ref 0 and gt_10ms = ref 0 in
  let lineno = ref 0 in
  let respond (line : string) : unit =
    match metrics_request line with
    | Some id ->
      output_string oc
        (metrics_to_json ~id ~requests:!requests ~invalid:!invalid
           ~admitted:!admitted ~rejected:!rejected ~hits:!hits
           ~misses:!misses ~verify_s:!verify_s ~le_100us:!le_100us
           ~le_1ms:!le_1ms ~le_10ms:!le_10ms ~gt_10ms:!gt_10ms);
      output_char oc '\n'
    | None ->
      match
        input_of_json ~fallback_id:(Printf.sprintf "line%d" !lineno) line
      with
      | { in_id; in_req = Error msg } ->
        incr invalid;
        output_string oc (error_to_json ~id:in_id msg);
        output_char oc '\n'
      | { in_id = q_id; in_req = Ok q_req } ->
        let key, found =
          Bvf_util.Prof.span prof "probe" (fun () ->
              let k = Vcache.key ~config_fp ~maps_fp q_req in
              (k, Vcache.find cache k))
        in
        let v, hit =
          match found with
          | Some v -> incr hits; (v, true)
          | None ->
            incr misses;
            let fr = Bvf_util.Prof.start prof "verify" in
            let v = verify_request ~log_level session q_req in
            let dur, _ = Bvf_util.Prof.stop prof fr in
            verify_s := dur :: !verify_s;
            if dur <= 1e-4 then incr le_100us
            else if dur <= 1e-3 then incr le_1ms
            else if dur <= 1e-2 then incr le_10ms
            else incr gt_10ms;
            Vcache.insert cache key v;
            (v, false)
        in
        if v.Vcache.cv_accepted then incr admitted else incr rejected;
        emit_events sink ~seq:!requests ~key ~hit v;
        incr requests;
        output_string oc (response_to_json ~id:q_id ~key ~hit v);
        output_char oc '\n'
  in
  (try
     while not (stop ()) do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         respond line;
         Stdlib.flush oc;
         Telemetry.flush sink
       end
     done
   with
   | End_of_file -> ()
   | Sys_error _ -> ()  (* interrupted read during a drain *));
  Stdlib.flush oc;
  { sv_requests = !requests; sv_invalid = !invalid;
    sv_admitted = !admitted; sv_rejected = !rejected;
    sv_hits = !hits; sv_misses = !misses }
