open Cimport

(* The test oracle (paper section 3): a kernel report raised by a
   program the verifier ACCEPTED is, by construction, a correctness bug
   in the verifier (indicator #1 when the program's own instructions
   misbehaved and the sanitation caught it; indicator #2 when a kernel
   routine the program invoked misbehaved and a kernel self-check
   caught it).  Reports raised while the program was rejected, or by
   syscall machinery independent of the verdict, are ordinary kernel
   bugs — still vulnerabilities (Table 2 rows 7-11), just not verifier
   correctness bugs. *)

type indicator =
  | Ind1 (* invalid load/store or alu_limit violation in the program *)
  | Ind2 (* anomaly inside an invoked kernel routine *)
  | Ind3 (* concrete value escaped the verifier's recorded bounds *)

let indicator_to_string = function
  | Ind1 -> "indicator#1"
  | Ind2 -> "indicator#2"
  | Ind3 -> "indicator#3"

type finding = {
  f_indicator : indicator option; (* None: not gated on the verifier *)
  f_report : Report.t;
  f_bug : Kconfig.bug option;     (* ground-truth attribution *)
  f_fingerprint : string;
  f_correctness : bool;           (* a verifier correctness bug? *)
}

let classify_indicator (r : Report.t) : indicator =
  match r.Report.kind with
  | Report.Witness_escape _ -> Ind3
  | _ ->
    (match r.Report.origin with
     | Report.Sanitizer | Report.Bpf_native -> Ind1
     | Report.Kernel_routine _ -> Ind2)

(* Ground-truth attribution: which injected bug (of those present in the
   config) explains this report.  This plays the role of the paper's
   manual triage for the purpose of the Table 2 experiment. *)
let attribute (config : Kconfig.t) (r : Report.t) : Kconfig.bug option =
  let has b = Kconfig.has config b in
  let routine =
    match r.Report.origin with
    | Report.Kernel_routine routine -> Some routine
    | Report.Sanitizer | Report.Bpf_native -> None
  in
  match r.Report.kind, routine with
  | Report.Lock_violation (Lockdep.Recursive_lock cls), _
    when cls = "trace_printk_buf" && has Kconfig.Bug4_trace_printk_recursion
    ->
    Some Kconfig.Bug4_trace_printk_recursion
  | Report.Lock_violation (Lockdep.Recursive_lock _), _
    when has Kconfig.Bug5_contention_begin_attach ->
    Some Kconfig.Bug5_contention_begin_attach
  | Report.Lock_violation (Lockdep.Held_at_exit _), _
    when has Kconfig.Bug5_contention_begin_attach ->
    (* a recursion aborted inside the critical section, leaking the
       lock: secondary fingerprint of the Figure 2 bug *)
    Some Kconfig.Bug5_contention_begin_attach
  | Report.Lock_violation (Lockdep.Held_at_exit _), _
    when has Kconfig.Bug4_trace_printk_recursion ->
    Some Kconfig.Bug4_trace_printk_recursion
  | Report.Lock_violation (Lockdep.Lock_in_nmi cls), _
    when cls = "irq_work" && has Kconfig.Bug10_irq_work_lock ->
    Some Kconfig.Bug10_irq_work_lock
  | Report.Panic _, _ when has Kconfig.Bug6_signal_send_nmi ->
    Some Kconfig.Bug6_signal_send_nmi
  | Report.Mem_fault _, Some "bpf_dispatcher_xdp_func"
    when has Kconfig.Bug7_dispatcher_race ->
    Some Kconfig.Bug7_dispatcher_race
  | Report.Warn w, _
    when has Kconfig.Bug8_kmemdup_limit
      && String.length w >= 7 && String.sub w 0 7 = "kmemdup" ->
    Some Kconfig.Bug8_kmemdup_limit
  | Report.Mem_fault _, Some "htab_map_delete_elem"
    when has Kconfig.Bug9_map_bucket_iter ->
    Some Kconfig.Bug9_map_bucket_iter
  | Report.Warn w, _
    when has Kconfig.Bug11_xdp_host_exec
      && String.length w >= 6 && String.sub w 0 6 = "device" ->
    Some Kconfig.Bug11_xdp_host_exec
  | Report.Mem_fault f, None -> begin
      (* sanitizer-caught memory anomaly: distinguish the verifier bugs
         by the victim object *)
      let near s =
        match f.Bvf_kernel.Kmem.fregion with
        | Some desc ->
          String.length desc >= String.length s
          && String.sub desc 0 (String.length s) = s
        | None -> false
      in
      if near "btf:" && has Kconfig.Bug2_btf_size_check then
        Some Kconfig.Bug2_btf_size_check
      else if f.Bvf_kernel.Kmem.fkind = Bvf_kernel.Kmem.Null_deref
              && has Kconfig.Bug1_nullness_propagation then
        Some Kconfig.Bug1_nullness_propagation
      else if f.Bvf_kernel.Kmem.fkind = Bvf_kernel.Kmem.Null_deref
              && has Kconfig.Cve_2022_23222 then
        Some Kconfig.Cve_2022_23222
      else if has Kconfig.Bug3_backtrack_precision then
        Some Kconfig.Bug3_backtrack_precision
      else if has Kconfig.Cve_2022_23222 then Some Kconfig.Cve_2022_23222
      else None
    end
  | Report.Alu_limit _, _ ->
    if has Kconfig.Bug3_backtrack_precision then
      Some Kconfig.Bug3_backtrack_precision
    else if has Kconfig.Cve_2022_23222 then Some Kconfig.Cve_2022_23222
    else None
  | Report.Witness_escape _, _ ->
    (* a concrete value escaping recorded bounds points at the
       range/pruning machinery: Bug#3's unsound prune first, then the
       CVE's null-copy scalars, then Bug#1's mis-marked nullness *)
    if has Kconfig.Bug3_backtrack_precision then
      Some Kconfig.Bug3_backtrack_precision
    else if has Kconfig.Cve_2022_23222 then Some Kconfig.Cve_2022_23222
    else if has Kconfig.Bug1_nullness_propagation then
      Some Kconfig.Bug1_nullness_propagation
    else None
  | (Report.Mem_fault _ | Report.Lock_violation _ | Report.Panic _
    | Report.Warn _ | Report.Runaway_execution), _ -> None

(* Bugs whose reports are verifier correctness bugs (the program was
   accepted and misbehaved) vs. plain kernel bugs in eBPF components. *)
let is_correctness_bug (b : Kconfig.bug) : bool =
  match Kconfig.bug_info b with
  | _, _, `Correctness -> true
  | _, _, (`Memory | `Lock) -> false

(* Classify the outcome of one load(+run) cycle.  Witness escapes only
   exist for accepted programs (the verifier recorded states along the
   accepted paths), so they always carry an indicator. *)
let classify (config : Kconfig.t) (result : Loader.run_result) :
  finding list =
  let accepted = Result.is_ok result.Loader.verdict in
  let of_report report =
    let bug = attribute config report in
    let indicator = if accepted then Some (classify_indicator report)
      else None in
    let correctness =
      accepted
      && (match bug with
          | Some b -> is_correctness_bug b
          | None -> true (* unexplained anomaly in accepted program *))
    in
    {
      f_indicator = indicator;
      f_report = report;
      f_bug = bug;
      f_fingerprint = Report.fingerprint report;
      f_correctness = correctness;
    }
  in
  List.map of_report result.Loader.reports
  @ List.map of_report result.Loader.witness

let finding_to_string (f : finding) : string =
  Printf.sprintf "%s%s%s: %s"
    (match f.f_indicator with
     | Some i -> indicator_to_string i ^ " "
     | None -> "")
    (if f.f_correctness then "[correctness] " else "")
    (match f.f_bug with
     | Some b -> "(" ^ Kconfig.bug_to_string b ^ ")"
     | None -> "(unattributed)")
    (Report.to_string f.f_report)
