open Cimport

(* Structured program generation — the paper's section 4.1.

   Programs are partitioned into an INIT HEADER (register loading:
   map fds, direct map values, BTF objects, random immediates, a saved
   context pointer), a FRAMED BODY (a sequence of basic / jump / call
   frames chosen with equal probability, nested jump frames containing
   sub-frames and occasional bounded back-edge loops), and an END
   SECTION (lock/reference cleanup and a valid exit).

   The generator tracks an abstract state per register — what the paper
   calls "recording the registers' states in different program points,
   and then synthesizing operations according to the states" — so that
   emitted operations are mostly coherent (initialized operands, typed
   memory bases, null checks after nullable helper returns), while a
   tunable fraction of boundary-probing emissions exercises the
   verifier's rejection edges. *)

type gstate =
  | G_uninit
  | G_scalar                       (* unknown scalar *)
  | G_const of int64
  | G_map_ptr of int * Map.def     (* fd *)
  | G_map_value of int * Map.def   (* non-null *)
  | G_map_value_null of int * Map.def
  | G_ctx
  | G_btf of Btf.desc
  | G_pkt of int                   (* proven range *)
  | G_pkt_end
  | G_ringbuf of int               (* reserved chunk, size *)

type t = {
  rng : Rng.t;
  version : Version.t;
  prog_type : Prog.prog_type;
  maps : (int * Map.def) list;
  mutable regs : gstate array; (* R0..R9 *)
  mutable stack_init : bool array; (* 64 eight-byte slots *)
  mutable code : Insn.t list; (* reversed *)
  mutable len : int;
  mutable lock_reg : Insn.reg option; (* reg holding the locked value *)
  mutable ring_reg : (Insn.reg * int) option; (* reserved chunk, size *)
  mutable budget : int;
  safe : bool; (* large programs avoid boundary probing: one bad op in
                  hundreds would reject the whole program *)
}

let reg_of_idx i =
  match Insn.reg_of_int i with Some r -> r | None -> assert false

let emit (g : t) (i : Insn.t) : unit =
  g.code <- i :: g.code;
  g.len <- g.len + 1

let emits (g : t) (is : Insn.t list) : unit = List.iter (emit g) is

let set_reg (g : t) (r : Insn.reg) (s : gstate) : unit =
  let i = Insn.reg_to_int r in
  if i < 10 then g.regs.(i) <- s

let get_reg (g : t) (r : Insn.reg) : gstate = g.regs.(Insn.reg_to_int r)

(* Helper calls clobber R0-R5. *)
let clobber_caller_saved (g : t) (ret : gstate) : unit =
  g.regs.(0) <- ret;
  for i = 1 to 5 do
    g.regs.(i) <- G_uninit
  done

let regs_where (g : t) (p : gstate -> bool) : Insn.reg list =
  let acc = ref [] in
  Array.iteri (fun i s -> if p s then acc := reg_of_idx i :: !acc) g.regs;
  !acc

let is_scalar = function G_scalar | G_const _ -> true | _ -> false

let scalar_regs (g : t) : Insn.reg list = regs_where g is_scalar

(* A register safe to overwrite: prefer dead/scalar callee-saved regs. *)
let scratch_reg (g : t) : Insn.reg =
  let candidates =
    regs_where g (function G_uninit | G_scalar | G_const _ -> true
                         | _ -> false)
    |> List.filter (fun r -> Insn.reg_to_int r >= 6)
  in
  match candidates with
  | [] -> Rng.choose g.rng [ Insn.R6; Insn.R7; Insn.R8; Insn.R9 ]
  | cs -> Rng.choose g.rng cs

let aligned_stack_slot (g : t) : int =
  (* offsets -8, -16, ..., -64: a compact working set *)
  -8 * (1 + Rng.int g.rng 8)

(* -- Init header -------------------------------------------------------- *)

let emit_init_header (g : t) : unit =
  (* always preserve the context pointer in R6 (R1 will be clobbered by
     the first call) *)
  emit g (Asm.mov64_reg Insn.R6 Insn.R1);
  set_reg g Insn.R6 G_ctx;
  set_reg g Insn.R1 G_ctx;
  let n_loads = 1 + Rng.int g.rng 3 in
  let targets = [ Insn.R7; Insn.R8; Insn.R9 ] in
  List.iteri
    (fun i r ->
       if i < n_loads then begin
         match Rng.weighted g.rng
                 [ (3, `Imm); (3, `Map_fd); (2, `Map_value); (2, `Btf) ]
         with
         | `Imm ->
           let v = Rng.interesting g.rng in
           if Rng.bool g.rng then begin
             emit g (Asm.ld_imm64 r v);
             set_reg g r (G_const v)
           end
           else begin
             emit g (Asm.mov64_imm r (Int64.to_int32 (Word.to_u32 v)));
             set_reg g r (G_const (Word.sext32 (Word.to_u32 v)))
           end
         | `Map_fd -> begin
             match Rng.choose_opt g.rng g.maps with
             | Some (fd, def) ->
               emit g (Asm.ld_map_fd r fd);
               set_reg g r (G_map_ptr (fd, def))
             | None -> ()
           end
         | `Map_value -> begin
             let arrays =
               List.filter
                 (fun (_, d) -> d.Map.mtype = Map.Array_map)
                 g.maps
             in
             match Rng.choose_opt g.rng arrays with
             | Some (fd, def) ->
               let off =
                 if Rng.chance g.rng 0.8 then
                   8 * Rng.int g.rng (max 1 (def.Map.value_size / 8))
                 else Rng.int g.rng (def.Map.value_size + 8)
               in
               let off = min off (def.Map.value_size - 1) in
               emit g (Asm.ld_map_value r fd off);
               set_reg g r (G_map_value (fd, def))
             | None -> ()
           end
         | `Btf ->
           (* favour objects that are NULL at runtime: comparing against
              those is what stresses the nullness analysis *)
           let d =
             Rng.weighted g.rng
               (List.map
                  (fun d -> ((if d.Btf.runtime_null then 3 else 1), d))
                  Btf.catalogue)
           in
           emit g (Asm.ld_btf_obj r d.Btf.btf_id);
           set_reg g r (G_btf d)
       end)
    targets

(* -- Scalar materialization --------------------------------------------- *)

(* Ensure some register holds a scalar; returns it. *)
let any_scalar (g : t) : Insn.reg =
  match Rng.choose_opt g.rng (scalar_regs g) with
  | Some r -> r
  | None ->
    let r = scratch_reg g in
    emit g (Asm.mov64_imm r (Int32.of_int (Rng.int g.rng 256)));
    set_reg g r (G_const (Int64.of_int 0));
    r

(* A scalar provably within [0, bound): mask + modulo-free pattern. *)
let bounded_scalar (g : t) (bound : int) : Insn.reg =
  let r = any_scalar g in
  let mask =
    (* largest 2^k - 1 below bound *)
    let rec go m = if m * 2 <= bound then go (m * 2) else m - 1 in
    go 1
  in
  emit g (Asm.alu64_imm Insn.And r (Int32.of_int mask));
  set_reg g r G_scalar;
  r

(* -- Basic frame --------------------------------------------------------- *)

let emit_scalar_alu (g : t) : unit =
  let dst = any_scalar g in
  let op =
    Rng.choose g.rng
      [ Insn.Add; Insn.Sub; Insn.Mul; Insn.Div; Insn.Or; Insn.And;
        Insn.Lsh; Insn.Rsh; Insn.Mod; Insn.Xor; Insn.Arsh; Insn.Mov ]
  in
  let op64 = Rng.chance g.rng 0.7 in
  (match Rng.weighted g.rng [ (2, `Imm); (1, `Reg) ] with
   | `Imm ->
     let imm =
       match op with
       | Insn.Lsh | Insn.Rsh | Insn.Arsh ->
         Int32.of_int (Rng.int g.rng (if op64 then 64 else 32))
       | _ -> Int64.to_int32 (Rng.interesting g.rng)
     in
     emit g (Insn.Alu { op64; op; dst; src = Insn.Imm imm })
   | `Reg ->
     let src = any_scalar g in
     emit g (Insn.Alu { op64; op; dst; src = Insn.Reg src }));
  set_reg g dst G_scalar;
  if Rng.chance g.rng 0.1 then begin
    emit g (Insn.Endian { swap = Rng.bool g.rng;
                          bits = Rng.choose g.rng [ 16; 32; 64 ]; dst });
    set_reg g dst G_scalar
  end

let emit_stack_op (g : t) : unit =
  let off = aligned_stack_slot g in
  let slot = (Prog.stack_size + off) / 8 in
  if Rng.bool g.rng || not g.stack_init.(slot) then begin
    (* store *)
    (match Rng.weighted g.rng [ (2, `Imm); (2, `Reg) ] with
     | `Imm ->
       let sz = Rng.choose g.rng [ Insn.B; Insn.H; Insn.W; Insn.DW ] in
       emit g (Asm.st sz Insn.R10 off
                 (Int64.to_int32 (Rng.interesting g.rng)));
       (* only a full 8-byte store initializes the whole slot *)
       if sz = Insn.DW then g.stack_init.(slot) <- true
     | `Reg ->
       let src = any_scalar g in
       emit g (Asm.stx_dw Insn.R10 src off);
       g.stack_init.(slot) <- true)
  end
  else begin
    (* load from an initialized slot *)
    let dst = scratch_reg g in
    emit g (Asm.ldx_dw dst Insn.R10 off);
    set_reg g dst G_scalar
  end

(* Fill [bytes] of stack ending near the frame top, returning the base
   offset.  [canonical] keys draw from a tiny value set so that map
   updates and lookups issued by different programs in one session
   actually collide on the same elements. *)
let init_stack_region ?(canonical = false) (g : t) (bytes : int) : int =
  let slots = (bytes + 7) / 8 in
  let base_slot = 56 - Rng.int g.rng 8 in
  let base_slot = max 0 (min (64 - slots) base_slot) in
  for s = base_slot to base_slot + slots - 1 do
    if canonical || not g.stack_init.(s) then begin
      let v =
        if canonical then Rng.int g.rng 3 else Rng.int g.rng 1024
      in
      emit g (Asm.st_dw Insn.R10 (-Prog.stack_size + (s * 8))
                (Int32.of_int v));
      g.stack_init.(s) <- true
    end
  done;
  -Prog.stack_size + (base_slot * 8)

let emit_map_value_access (g : t) : unit =
  match
    Rng.choose_opt g.rng
      (regs_where g (function G_map_value _ -> true | _ -> false))
  with
  | None -> ()
  | Some base ->
    let def =
      match get_reg g base with
      | G_map_value (_, d) -> d
      | _ -> assert false
    in
    let sz = Rng.choose g.rng [ Insn.B; Insn.H; Insn.W; Insn.DW ] in
    let bytes = Insn.size_bytes sz in
    let lock_skip = if def.Map.has_spin_lock then 8 else 0 in
    let max_off = def.Map.value_size - bytes in
    let off =
      if g.safe || Rng.chance g.rng 0.82 then begin
        (* in-bounds, aligned, clear of the spin-lock area *)
        let lo = (lock_skip + bytes - 1) / bytes * bytes in
        let choices = max 1 ((max_off - lo) / bytes + 1) in
        lo + (bytes * Rng.int g.rng choices)
      end
      else
        (* boundary probing: exactly at or just past the end *)
        max_off + Rng.choose g.rng [ 0; 1; bytes; 8 ]
    in
    (match Rng.weighted g.rng [ (3, `Load); (2, `Store); (1, `Atomic) ] with
     | `Load ->
       let dst = scratch_reg g in
       emit g (Asm.ldx sz dst base off);
       set_reg g dst G_scalar
     | `Store ->
       if Rng.bool g.rng then
         emit g (Asm.st sz base off (Int64.to_int32 (Rng.interesting g.rng)))
       else begin
         let src = any_scalar g in
         emit g (Asm.stx sz base src off)
       end
     | `Atomic ->
       let src = any_scalar g in
       let sz = if Rng.bool g.rng then Insn.W else Insn.DW in
       let off = off / 8 * 8 in
       let off = max lock_skip (min off (def.Map.value_size - 8)) in
       emit g
         (Asm.atomic ~fetch:(Rng.bool g.rng) sz
            (Rng.choose g.rng
               [ Insn.A_add; Insn.A_or; Insn.A_and; Insn.A_xor ])
            base src off);
       set_reg g src G_scalar)

let emit_ctx_access (g : t) : unit =
  match
    Rng.choose_opt g.rng
      (regs_where g (function G_ctx -> true | _ -> false))
  with
  | None -> ()
  | Some base ->
    let layout = Prog.ctx_layout g.prog_type in
    let f = Rng.choose g.rng layout.Prog.fields in
    let sz =
      match f.Prog.fsize with
      | 1 -> Insn.B | 2 -> Insn.H | 4 -> Insn.W | _ -> Insn.DW
    in
    if f.Prog.fwritable && Rng.chance g.rng 0.3 then
      emit g (Asm.st sz base f.Prog.foff (Int32.of_int (Rng.int g.rng 256)))
    else begin
      let dst = scratch_reg g in
      emit g (Asm.ldx sz dst base f.Prog.foff);
      set_reg g dst
        (match f.Prog.fkind with
         | Prog.Fk_scalar -> G_scalar
         | Prog.Fk_pkt_data ->
           if Prog.has_packet_access g.prog_type then G_pkt 0 else G_scalar
         | Prog.Fk_pkt_end ->
           if Prog.has_packet_access g.prog_type then G_pkt_end
           else G_scalar)
    end

let emit_btf_access (g : t) : unit =
  match
    Rng.choose_opt g.rng
      (regs_where g (function G_btf _ -> true | _ -> false))
  with
  | None -> ()
  | Some base ->
    let d =
      match get_reg g base with G_btf d -> d | _ -> assert false
    in
    let dst = scratch_reg g in
    let off =
      if g.safe || Rng.chance g.rng 0.75 then
        8 * Rng.int g.rng (d.Btf.btf_size / 8)
      else
        (* boundary probing around the object end: with Bug#2 the
           verifier accepts a window past task_struct *)
        d.Btf.btf_size - 8 + (8 * Rng.int g.rng 10)
    in
    emit g (Asm.ldx_dw dst base off);
    set_reg g dst G_scalar

(* Direct packet access behind the canonical bounds-check pattern. *)
let emit_packet_access (g : t) : unit =
  let pkts = regs_where g (function G_pkt _ -> true | _ -> false) in
  let ends = regs_where g (function G_pkt_end -> true | _ -> false) in
  match pkts, ends with
  | pkt :: _, end_ :: _ -> begin
      match get_reg g pkt with
      | G_pkt range when range >= 8 ->
        let dst = scratch_reg g in
        let sz = Rng.choose g.rng [ Insn.B; Insn.H; Insn.W; Insn.DW ] in
        let off = Rng.int g.rng (range - Insn.size_bytes sz + 1) in
        emit g (Asm.ldx sz dst pkt off);
        set_reg g dst G_scalar
      | G_pkt _ ->
        (* prove a range: tmp = pkt + N; if tmp > end goto +1-ish.
           Emitted as: r = pkt; r += N; if r > end goto (skip access). *)
        let n = 8 * (1 + Rng.int g.rng 4) in
        let tmp = scratch_reg g in
        let dst = scratch_reg g in
        emits g
          [ Asm.mov64_reg tmp pkt;
            Asm.alu64_imm Insn.Add tmp (Int32.of_int n);
            Asm.jmp_reg Insn.Jgt tmp end_ 1;
            Asm.ldx_dw dst pkt (n - 8) ];
        set_reg g tmp G_scalar (* conservatively forget *)
        ;
        set_reg g dst G_scalar;
        set_reg g pkt (G_pkt n)
      | _ -> ()
    end
  | _, _ -> ()

(* Pointer arithmetic on a map value with a masked scalar. *)
let emit_ptr_arith (g : t) : unit =
  match
    Rng.choose_opt g.rng
      (regs_where g (function G_map_value _ -> true | _ -> false))
  with
  | None -> ()
  | Some base ->
    let def =
      match get_reg g base with
      | G_map_value (_, d) -> d
      | _ -> assert false
    in
    let offr = bounded_scalar g (max 8 (def.Map.value_size / 2)) in
    emit g (Asm.alu64_reg Insn.Add base offr);
    let dst = scratch_reg g in
    let off = if def.Map.has_spin_lock then 8 else 0 in
    emit g (Asm.ldx_b dst base off);
    set_reg g dst G_scalar;
    (* the pointer now carries a variable offset: later fixed-offset
       accesses through it would overrun, so retire it *)
    set_reg g base G_uninit

let emit_basic_frame (g : t) : unit =
  let n = 1 + Rng.int g.rng 4 in
  for _ = 1 to n do
    match
      Rng.weighted g.rng
        [ (4, `Alu); (3, `Stack); (3, `Map_value); (2, `Ctx); (1, `Btf);
          (2, `Packet); (1, `Ptr_arith) ]
    with
    | `Alu -> emit_scalar_alu g
    | `Stack -> emit_stack_op g
    | `Map_value -> emit_map_value_access g
    | `Ctx -> emit_ctx_access g
    | `Btf -> emit_btf_access g
    | `Packet -> emit_packet_access g
    | `Ptr_arith -> emit_ptr_arith g
  done

(* -- Call frame ---------------------------------------------------------- *)

(* Early-exit sequence releasing everything currently held (a leaked
   reference or spin lock at EXIT is an instant reject, so every exit
   the generator plants must clean up first). *)
let early_exit_seq (g : t) : Insn.t list =
  let unlock =
    match g.lock_reg with
    | Some v ->
      [ Asm.mov64_reg Insn.R1 v; Asm.call Helper.spin_unlock.Helper.id ]
    | None -> []
  in
  let release =
    match g.ring_reg with
    | Some (r, _) ->
      [ Asm.mov64_reg Insn.R1 r;
        Asm.mov64_imm Insn.R2 0l;
        Asm.call Helper.ringbuf_discard.Helper.id ]
    | None -> []
  in
  unlock @ release @ [ Asm.mov64_imm Insn.R0 0l; Asm.exit_ ]

(* After a nullable helper return: mostly emit the canonical null-check
   epilogue; occasionally probe the verifier by skipping it or by
   comparing against another pointer (the Bug#1 shape). *)
let guard_nullable (g : t) (non_null : gstate) : unit =
  let btf_regs = regs_where g (function G_btf _ -> true | _ -> false) in
  match Rng.weighted g.rng
          [ (7, `Null_check); ((if g.safe then 0 else 3), `Skip);
            ((if btf_regs = [] || g.safe then 0 else 3), `Btf_compare) ]
  with
  | `Null_check ->
    let seq = early_exit_seq g in
    emits g (Asm.jmp_imm Insn.Jne Insn.R0 0l (List.length seq) :: seq);
    set_reg g Insn.R0 non_null
  | `Skip -> () (* leave it nullable; downstream use will probe *)
  | `Btf_compare ->
    (* if r0 == r_btf goto +n ; <cleanup; exit> ; <equal path>:
       nullness propagation marks r0 non-null in the equal path, and
       the Listing 2 shape dereferences it right there *)
    let btf = Rng.choose g.rng btf_regs in
    let seq = early_exit_seq g in
    emits g (Asm.jmp_reg Insn.Jeq Insn.R0 btf (List.length seq) :: seq);
    set_reg g Insn.R0 non_null;
    (match non_null with
     | G_map_value (_, def) ->
       let off = if def.Map.has_spin_lock then 8 else 0 in
       let dst = scratch_reg g in
       emit g (Asm.ldx_dw dst Insn.R0 off);
       set_reg g dst G_scalar
     | _ -> ())

let setup_mem_pair (g : t) ~(write : bool) ~(max : int)
    ~(allow_zero : bool) (mem_reg : Insn.reg) (size_reg : Insn.reg) : unit
  =
  ignore write;
  let size = (if allow_zero && Rng.chance g.rng 0.05 then 0 else 8)
             + 8 * Rng.int g.rng (min 4 (max / 8))
  in
  let size = max |> min (Stdlib.max size 1) in
  let base = init_stack_region g size in
  emits g
    [ Asm.mov64_reg mem_reg Insn.R10;
      Asm.alu64_imm Insn.Add mem_reg (Int32.of_int base);
      Asm.mov64_imm size_reg (Int32.of_int size) ]

(* Prepare R1..Rn for [args]; returns false if impossible here. *)
let setup_args (g : t) (args : Helper.arg list) : bool =
  let arg_reg i = reg_of_idx (i + 1) in
  let ok = ref true in
  let pending_mem : (Insn.reg * bool) option ref = ref None in
  List.iteri
    (fun i arg ->
       if !ok then
         let r = arg_reg i in
         match arg with
         | Helper.Anything ->
           emit g (Asm.mov64_imm r (Int32.of_int (Rng.int g.rng 64)))
         | Helper.Const_map_ptr -> begin
             (* pick a map appropriate for the call when recognizable *)
             match Rng.choose_opt g.rng g.maps with
             | Some (fd, _) -> emit g (Asm.ld_map_fd r fd)
             | None -> ok := false
           end
         | Helper.Map_key -> begin
             match
               List.find_opt
                 (fun (_, d) -> d.Map.key_size > 0)
                 g.maps
             with
             | Some (_, d) ->
               let base = init_stack_region ~canonical:true g d.Map.key_size
               in
               emits g
                 [ Asm.mov64_reg r Insn.R10;
                   Asm.alu64_imm Insn.Add r (Int32.of_int base) ]
             | None -> ok := false
           end
         | Helper.Map_value -> begin
             match g.maps with
             | (_, d) :: _ ->
               let base = init_stack_region g d.Map.value_size in
               emits g
                 [ Asm.mov64_reg r Insn.R10;
                   Asm.alu64_imm Insn.Add r (Int32.of_int base) ]
             | [] -> ok := false
           end
         | Helper.Mem_rd -> pending_mem := Some (r, false)
         | Helper.Mem_wr -> pending_mem := Some (r, true)
         | Helper.Size { max; allow_zero } -> begin
             match !pending_mem with
             | Some (mem_reg, write) ->
               setup_mem_pair g ~write ~max:(min max 64) ~allow_zero
                 mem_reg r;
               pending_mem := None
             | None ->
               emit g (Asm.mov64_imm r (Int32.of_int (1 + Rng.int g.rng 8)))
           end
         | Helper.Ctx -> begin
             match
               Rng.choose_opt g.rng
                 (regs_where g (function G_ctx -> true | _ -> false))
             with
             | Some c -> emit g (Asm.mov64_reg r c)
             | None -> ok := false
           end
         | Helper.Btf_task -> begin
             match
               Rng.choose_opt g.rng
                 (regs_where g
                    (function
                      | G_btf d -> d.Btf.btf_name = "task_struct"
                      | _ -> false))
             with
             | Some b -> emit g (Asm.mov64_reg r b)
             | None ->
               emit g (Asm.ld_btf_obj r Btf.task_struct.Btf.btf_id)
           end
         | Helper.Spin_lock -> begin
             match
               Rng.choose_opt g.rng
                 (regs_where g
                    (function
                      | G_map_value (_, d) -> d.Map.has_spin_lock
                      | _ -> false))
             with
             | Some v ->
               emit g (Asm.mov64_reg r v);
               g.lock_reg <- Some v
             | None -> ok := false
           end
         | Helper.Scalar_const ->
           emit g (Asm.mov64_imm r (Int32.of_int (8 * (1 + Rng.int g.rng 4)))))
    args;
  !ok

let lookup_pattern (g : t) : unit =
  (* the canonical Table 1 flow: key on stack, lookup, null-check *)
  match
    List.filter (fun (_, d) -> d.Map.mtype <> Map.Ringbuf) g.maps
  with
  | [] -> ()
  | candidates ->
    let fd, def = Rng.choose g.rng candidates in
    let base = init_stack_region ~canonical:true g (max 4 def.Map.key_size)
    in
    (* usually make sure the element exists, so the lookup hits and the
       interesting post-lookup behaviour actually executes; otherwise
       force a key outside the canonical set so the NULL path of the
       lookup genuinely runs (sessions accumulate the canonical keys) *)
    let update_first =
      def.Map.mtype = Map.Hash_map && Rng.chance g.rng 0.7
    in
    if not update_first then
      emit g
        (Asm.st_dw Insn.R10 base (Int32.of_int (100 + Rng.int g.rng 8)));
    if update_first then begin
      let vbase = init_stack_region g def.Map.value_size in
      emits g
        [ Asm.ld_map_fd Insn.R1 fd;
          Asm.mov64_reg Insn.R2 Insn.R10;
          Asm.alu64_imm Insn.Add Insn.R2 (Int32.of_int base);
          Asm.mov64_reg Insn.R3 Insn.R10;
          Asm.alu64_imm Insn.Add Insn.R3 (Int32.of_int vbase);
          Asm.mov64_imm Insn.R4 0l;
          Asm.call Helper.map_update_elem.Helper.id ];
      clobber_caller_saved g G_scalar
    end;
    emits g
      [ Asm.ld_map_fd Insn.R1 fd;
        Asm.mov64_reg Insn.R2 Insn.R10;
        Asm.alu64_imm Insn.Add Insn.R2 (Int32.of_int base);
        Asm.call Helper.map_lookup_elem.Helper.id ];
    clobber_caller_saved g (G_map_value_null (fd, def));
    guard_nullable g (G_map_value (fd, def))

let ringbuf_pattern (g : t) : unit =
  match
    List.find_opt (fun (_, d) -> d.Map.mtype = Map.Ringbuf) g.maps
  with
  | None -> ()
  | Some (fd, _) when g.ring_reg = None ->
    let size = 8 * (1 + Rng.int g.rng 4) in
    emits g
      [ Asm.ld_map_fd Insn.R1 fd;
        Asm.mov64_imm Insn.R2 (Int32.of_int size);
        Asm.mov64_imm Insn.R3 0l;
        Asm.call Helper.ringbuf_reserve.Helper.id ];
    clobber_caller_saved g G_uninit;
    (* null-check, then stash the chunk in a callee-saved reg *)
    emits g
      [ Asm.jmp_imm Insn.Jne Insn.R0 0l 2;
        Asm.mov64_imm Insn.R0 0l;
        Asm.exit_ ];
    let keep = scratch_reg g in
    emit g (Asm.mov64_reg keep Insn.R0);
    set_reg g keep (G_ringbuf size);
    set_reg g Insn.R0 (G_ringbuf size);
    g.ring_reg <- Some (keep, size);
    (* write into the chunk *)
    if Rng.bool g.rng then
      emit g (Asm.st_dw keep 0 (Int64.to_int32 (Rng.interesting g.rng)))
  | Some _ -> ()

(* Lookup a spin-lock map value and take/release its lock: the Figure 2
   shape when the program is attached to contention_begin (Bug#5). *)
let spin_pattern (g : t) : unit =
  match
    List.filter (fun (_, d) -> d.Map.has_spin_lock) g.maps
  with
  | [] -> ()
  | candidates ->
    if g.lock_reg = None then begin
      let fd, def = Rng.choose g.rng candidates in
      let base = init_stack_region ~canonical:true g (max 4 def.Map.key_size)
      in
      let vbase = init_stack_region g def.Map.value_size in
      emits g
        [ Asm.ld_map_fd Insn.R1 fd;
          Asm.mov64_reg Insn.R2 Insn.R10;
          Asm.alu64_imm Insn.Add Insn.R2 (Int32.of_int base);
          Asm.mov64_reg Insn.R3 Insn.R10;
          Asm.alu64_imm Insn.Add Insn.R3 (Int32.of_int vbase);
          Asm.mov64_imm Insn.R4 0l;
          Asm.call Helper.map_update_elem.Helper.id ];
      clobber_caller_saved g G_scalar;
      emits g
        [ Asm.ld_map_fd Insn.R1 fd;
          Asm.mov64_reg Insn.R2 Insn.R10;
          Asm.alu64_imm Insn.Add Insn.R2 (Int32.of_int base);
          Asm.call Helper.map_lookup_elem.Helper.id ];
      clobber_caller_saved g (G_map_value_null (fd, def));
      let seq = early_exit_seq g in
      emits g
        (Asm.jmp_imm Insn.Jne Insn.R0 0l (List.length seq) :: seq);
      set_reg g Insn.R0 (G_map_value (fd, def));
      let keep = scratch_reg g in
      emit g (Asm.mov64_reg keep Insn.R0);
      set_reg g keep (G_map_value (fd, def));
      g.lock_reg <- Some keep;
      emits g
        [ Asm.mov64_reg Insn.R1 keep;
          Asm.call Helper.spin_lock.Helper.id ];
      clobber_caller_saved g G_uninit;
      (* short critical section *)
      if Rng.bool g.rng then
        emit g (Asm.st_w keep 8 (Int32.of_int (Rng.int g.rng 100)));
      if Rng.chance g.rng 0.95 then begin
        emits g
          [ Asm.mov64_reg Insn.R1 keep;
            Asm.call Helper.spin_unlock.Helper.id ];
        clobber_caller_saved g G_uninit;
        g.lock_reg <- None
      end
      (* else: leave it held; the end section unlocks (and the verifier
         rejects intervening helper calls, probing that logic) *)
    end

let kfunc_pattern (g : t) : unit =
  if Version.at_least g.version Version.V6_1 then begin
    (* r0 = bpf_obj_id(x): scalar whose bounds differ per path — the
       Bug#3 shape when joined over a branch and used as an offset *)
    emit g (Asm.mov64_imm Insn.R1 (Int32.of_int (Rng.int g.rng 1024)));
    emit g (Asm.call_kfunc Helper.kfunc_obj_id.Helper.kid);
    clobber_caller_saved g G_scalar;
    match
      Rng.choose_opt g.rng
        (regs_where g (function G_map_value _ -> true | _ -> false))
    with
    | Some base when Rng.chance g.rng 0.7 ->
      let def =
        match get_reg g base with
        | G_map_value (_, d) -> d
        | _ -> assert false
      in
      let bound = max 8 (def.Map.value_size / 2) in
      let keep = scratch_reg g in
      emit g (Asm.mov64_reg keep Insn.R0);
      (* A two-way join where only the fall-through path bounds the
         kfunc-derived scalar.  The sound verifier explores both arms
         and rejects the unbounded one; with Bug#3 the stored state at
         the join treats kfunc scalars as interchangeable and prunes
         the unsafe arm away. *)
      emits g
        [ Asm.jmp_imm Insn.Jgt keep (Int32.of_int (bound - 1)) 1;
          Asm.ja 0;
          Asm.alu64_reg Insn.Add base keep ];
      let dst = scratch_reg g in
      emit g (Asm.ldx_b dst base 0);
      set_reg g dst G_scalar;
      set_reg g keep G_scalar
    | _ -> ()
  end

let emit_call_frame (g : t) ~(depth : int) : unit =
  match
    Rng.weighted g.rng
      [ (4, `Lookup); (4, `Any_helper);
        (* kfunc probing patterns are too spicy for large programs *)
        (* reserve/submit and lock/unlock pairings must dominate the
           exit, so these patterns only appear in straight-line
           context *)
        ((if depth = 0 then 1 else 0), `Ringbuf);
        ((if depth = 0 then 1 else 0), `Spin);
        ((if g.safe then 0 else 1), `Kfunc) ]
  with
  | `Lookup -> lookup_pattern g
  | `Ringbuf -> ringbuf_pattern g
  | `Spin -> spin_pattern g
  | `Kfunc -> kfunc_pattern g
  | `Any_helper -> begin
      let available =
        Helper.available ~version:g.version ~pt:g.prog_type
        |> List.filter (fun h ->
            (* lock pairing and reference release are handled by
               dedicated patterns / the end section *)
            h.Helper.name <> "spin_unlock"
            && h.Helper.name <> "ringbuf_submit"
            && h.Helper.name <> "ringbuf_discard"
            && h.Helper.name <> "ringbuf_reserve")
      in
      match Rng.choose_opt g.rng available with
      | None -> ()
      | Some h ->
        if setup_args g h.Helper.args then begin
          emit g (Asm.call h.Helper.id);
          let ret =
            match h.Helper.ret with
            | Helper.R_integer -> G_scalar
            | Helper.R_void -> G_uninit
            | Helper.R_map_value_or_null -> begin
                match g.maps with
                | (fd, d) :: _ -> G_map_value_null (fd, d)
                | [] -> G_uninit
              end
            | Helper.R_btf_task_or_null -> G_uninit
            | Helper.R_ringbuf_mem_or_null -> G_uninit
          in
          clobber_caller_saved g ret;
          (match h.Helper.ret with
           | Helper.R_map_value_or_null -> begin
               match g.maps with
               | (fd, d) :: _ -> guard_nullable g (G_map_value (fd, d))
               | [] -> ()
             end
           | Helper.R_btf_task_or_null ->
             let seq = early_exit_seq g in
             emits g
               (Asm.jmp_imm Insn.Jne Insn.R0 0l (List.length seq) :: seq);
             set_reg g Insn.R0 (G_btf Btf.task_struct)
           | _ -> ());
          (* paired lock release *)
          if h.Helper.name = "spin_lock" then begin
            (match g.lock_reg with
             | Some v ->
               (* a couple of ops inside the critical section *)
               if Rng.bool g.rng then
                 emit g (Asm.st_w v 8 (Int32.of_int (Rng.int g.rng 100)));
               emit g (Asm.mov64_reg Insn.R1 v);
               emit g (Asm.call Helper.spin_unlock.Helper.id);
               clobber_caller_saved g G_uninit
             | None -> ());
            g.lock_reg <- None
          end
        end
    end

(* -- Jump frame ----------------------------------------------------------- *)

let rec emit_jump_frame (g : t) ~(depth : int) : unit =
  let fwd () =
    (* if <cond> goto +len(body); <body frames> *)
    let d = any_scalar g in
    let cond =
      Rng.choose g.rng
        [ Insn.Jeq; Insn.Jne; Insn.Jgt; Insn.Jge; Insn.Jlt; Insn.Jle;
          Insn.Jsgt; Insn.Jsge; Insn.Jset ]
    in
    let placeholder = g.len in
    emit g (Asm.jmp_imm cond d (Int64.to_int32 (Rng.interesting g.rng)) 0);
    let before = g.len in
    let saved = Array.copy g.regs in
    let saved_stack = Array.copy g.stack_init in
    emit_frames g ~depth:(depth + 1) ~n:(1 + Rng.int g.rng 2);
    let body_len = g.len - before in
    (* join: only stack slots initialized before the branch are
       guaranteed on both paths *)
    g.stack_init <- saved_stack;
    (* join: forget registers whose state diverged *)
    Array.iteri
      (fun i s ->
         if s <> saved.(i) then
           g.regs.(i) <-
             (if is_scalar s && is_scalar saved.(i) then G_scalar
              else G_uninit))
      (Array.copy g.regs);
    (* patch the placeholder offset *)
    g.code <-
      List.mapi
        (fun k insn ->
           if k = g.len - 1 - placeholder then
             match insn with
             | Insn.Jmp j -> Insn.Jmp { j with off = body_len }
             | other -> other
           else insn)
        g.code
  in
  let back () =
    (* bounded loop: r = 0; LOOP: body; r += 1; if r < K goto LOOP *)
    let counter = scratch_reg g in
    emit g (Asm.mov64_imm counter 0l);
    set_reg g counter G_scalar;
    let loop_start = g.len in
    let saved = Array.copy g.regs in
    emit_frames g ~depth:(depth + 1) ~n:1;
    Array.iteri
      (fun i s ->
         if s <> saved.(i) then
           g.regs.(i) <-
             (if is_scalar s && is_scalar saved.(i) then G_scalar
              else G_uninit))
      (Array.copy g.regs);
    if get_reg g counter <> G_scalar && get_reg g counter <> G_uninit then
      ()
    else begin
      emit g (Asm.alu64_imm Insn.Add counter 1l);
      let k = 2 + Rng.int g.rng 4 in
      let body_len = g.len - loop_start in
      emit g (Asm.jmp_imm Insn.Jlt counter (Int32.of_int k)
                (-(body_len + 1)));
      set_reg g counter G_scalar
    end
  in
  let wide () =
    (* widening-exercising counted loop: the trip count is past the
       unroll budget, so only convergence at the certified loop head
       verifies it.  The body is synthesized directly (not via
       emit_frames) so the counter provably stays untouched — the
       certificate's only-write condition — while still carrying
       scalar arithmetic across iterations, re-deriving map-value
       pointer walks inside the body, and occasionally breaking out
       past the back edge on a data condition. *)
    let counter = scratch_reg g in
    emit g (Asm.mov64_imm counter 0l);
    set_reg g counter G_scalar;
    let pick_scratch (avoid : Insn.reg list) : Insn.reg option =
      regs_where g (function G_uninit | G_scalar | G_const _ -> true
                           | _ -> false)
      |> List.filter
           (fun r -> Insn.reg_to_int r >= 6 && not (List.mem r avoid))
      |> Rng.choose_opt g.rng
    in
    let acc = pick_scratch [ counter ] in
    (match acc with
     | Some a ->
       emit g (Asm.mov64_imm a 0l);
       set_reg g a G_scalar
     | None -> ());
    let loop_start = g.len in
    (* loop-carried scalar arithmetic on the accumulator *)
    (match acc with
     | Some a ->
       if Rng.bool g.rng then emit g (Asm.alu64_reg Insn.Add a counter)
       else
         emit g
           (Asm.alu64_imm
              (Rng.choose g.rng [ Insn.Add; Insn.Xor ])
              a
              (Int32.of_int (1 + Rng.int g.rng 64)));
       set_reg g a G_scalar
     | None -> ());
    (* pointer arithmetic re-derived each iteration: walk a fresh copy
       of a map-value pointer and load through it.  The copy dies at
       the head, so the loop state still converges (a pointer CARRIED
       across the back edge would refuse to widen). *)
    (match
       Rng.choose_opt g.rng
         (regs_where g (function G_map_value _ -> true | _ -> false))
     with
     | Some base when Rng.chance g.rng 0.5 -> (
       match pick_scratch (counter :: Option.to_list acc) with
       | Some tmp ->
         let def =
           match get_reg g base with
           | G_map_value (_, d) -> d
           | _ -> assert false
         in
         let lock_skip = if def.Map.has_spin_lock then 8 else 0 in
         if def.Map.value_size - lock_skip >= 8 then begin
           emit g (Asm.mov64_reg tmp base);
           emit g (Asm.alu64_imm Insn.Add tmp (Int32.of_int lock_skip));
           emit g (Asm.ldx_w tmp tmp 0);
           set_reg g tmp G_scalar
         end
       | None -> ())
     | _ -> ());
    (* conditional break past the back edge (patched below) *)
    let break_ph =
      match acc with
      | Some a when Rng.chance g.rng 0.4 ->
        let cond = Rng.choose g.rng [ Insn.Jgt; Insn.Jsgt; Insn.Jset ] in
        let ph = g.len in
        emit g
          (Asm.jmp_imm cond a (Int64.to_int32 (Rng.interesting g.rng)) 0);
        Some ph
      | _ -> None
    in
    emit g (Asm.alu64_imm Insn.Add counter 1l);
    let k = 32 + Rng.int g.rng 224 in
    let body_len = g.len - loop_start in
    emit g
      (Asm.jmp_imm
         (Rng.choose g.rng [ Insn.Jlt; Insn.Jle ])
         counter (Int32.of_int k)
         (-(body_len + 1)));
    (match break_ph with
     | Some ph ->
       g.code <-
         List.mapi
           (fun idx insn ->
              if idx = g.len - 1 - ph then
                match insn with
                | Insn.Jmp j -> Insn.Jmp { j with off = g.len - ph - 1 }
                | other -> other
              else insn)
           g.code
     | None -> ());
    set_reg g counter G_scalar
  in
  if depth < 2 && Rng.chance g.rng 0.25 then
    (if Rng.chance g.rng 0.4 then wide () else back ())
  else fwd ()

and emit_frames (g : t) ~(depth : int) ~(n : int) : unit =
  for _ = 1 to n do
    if g.len < g.budget then
      (* the paper: select one of the frame kinds with equal
         probability *)
      match Rng.int g.rng 3 with
      | 0 -> emit_basic_frame g
      | 1 -> emit_call_frame g ~depth
      | _ -> emit_jump_frame g ~depth
  done

(* -- End section ---------------------------------------------------------- *)

let emit_end_section (g : t) : unit =
  (match g.lock_reg with
   | Some v ->
     emit g (Asm.mov64_reg Insn.R1 v);
     emit g (Asm.call Helper.spin_unlock.Helper.id);
     clobber_caller_saved g G_uninit;
     g.lock_reg <- None
   | None -> ());
  (match g.ring_reg with
   | Some (r, _) ->
     emits g
       [ Asm.mov64_reg Insn.R1 r;
         Asm.mov64_imm Insn.R2 0l;
         Asm.call
           (if Rng.bool g.rng then Helper.ringbuf_submit.Helper.id
            else Helper.ringbuf_discard.Helper.id) ];
     clobber_caller_saved g G_uninit;
     g.ring_reg <- None
   | None -> ());
  let ret =
    match Prog.return_range g.prog_type with
    | Some (lo, hi) ->
      Int64.to_int32
        (Int64.add lo
           (Int64.of_int (Rng.int g.rng (Int64.to_int (Int64.sub hi lo) + 1))))
    | None -> Int32.of_int (Rng.int g.rng 1024)
  in
  emits g [ Asm.mov64_imm Insn.R0 ret; Asm.exit_ ]

(* -- Top level ------------------------------------------------------------- *)

type config = {
  c_version : Version.t;
  c_maps : (int * Map.def) list; (* fds created in the session *)
}

let pick_prog_type (rng : Rng.t) : Prog.prog_type =
  Rng.weighted rng
    [ (3, Prog.Socket_filter); (3, Prog.Kprobe); (2, Prog.Tracepoint);
      (1, Prog.Raw_tracepoint); (2, Prog.Xdp); (1, Prog.Perf_event);
      (1, Prog.Cgroup_skb) ]

let pick_attach (rng : Rng.t) ~(version : Version.t)
    (pt : Prog.prog_type) : string option =
  if not (Prog.is_tracing pt) then None
  else begin
    let candidates = Tracepoint.available ~version ~pt in
    match candidates with
    | [] -> None
    | _ when Rng.chance rng 0.25 -> None
    | _ -> Some (Rng.choose rng candidates).Tracepoint.tp_name
  end

(* Generate one structured program request. *)
let generate (rng : Rng.t) (cfg : config) : Verifier.request =
  let prog_type = pick_prog_type rng in
  let attach = pick_attach rng ~version:cfg.c_version prog_type in
  let offload = prog_type = Prog.Xdp && Rng.chance rng 0.1 in
  let big = Rng.chance rng 0.035 in
  let g =
    {
      rng;
      version = cfg.c_version;
      prog_type;
      maps = cfg.c_maps;
      regs = Array.make 10 G_uninit;
      stack_init = Array.make 64 false;
      code = [];
      len = 0;
      lock_reg = None;
      ring_reg = None;
      budget =
        (* occasional very large programs probe the syscall paths that
           only misbehave above allocation limits (Bug#8) *)
        (if big then 500 + Rng.int rng 500 else 20 + Rng.int rng 60);
      safe = big;
    }
  in
  g.regs.(1) <- G_ctx;
  emit_init_header g;
  emit_frames g ~depth:0 ~n:(2 + Rng.int rng 5);
  (* large-budget programs keep appending frames (Bug#8 surface) *)
  let guard = ref 0 in
  while g.len < g.budget - 8 && !guard < 4096 do
    incr guard;
    emit_frames g ~depth:0 ~n:1
  done;
  emit_end_section g;
  let insns = Array.of_list (List.rev g.code) in
  { Verifier.r_prog_type = prog_type; r_attach = attach;
    r_offload = offload; r_insns = insns }
