(** Syzkaller-style live status line for long fuzzing runs (the CLI's
    [--progress <secs>]).

    Strictly an observer: it reads campaign stats from the per-shard
    [on_step] hooks and writes to its own channel (stderr for the CLI),
    so traces, stats and digests stay byte-identical with or without
    it.  Safe to update concurrently from several shard domains. *)

type t

val create : ?out:out_channel -> every_s:float -> jobs:int -> unit -> t
(** [out] defaults to [stderr].  [every_s] is the minimum interval
    between printed lines; [0.0] prints on every update (tests). *)

val update : t -> shard:int -> Campaign.t -> unit
(** Publish one shard's current stats; prints a status line if at least
    [every_s] has passed since the last one (one winner under
    concurrency). *)

val observer : t -> int -> Campaign.t -> unit
(** [update] curried to the shape of {!Parallel.run}'s [on_step]. *)

val finish : t -> unit
(** Print the closing totals line unconditionally. *)
