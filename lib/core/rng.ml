(* Deterministic PRNG (splitmix64) so fuzzing campaigns, tests and
   benches are reproducible from a seed. *)

type t = { mutable state : int64 }

let create (seed : int) : t = { state = Int64.of_int (seed * 2654435761 + 1) }

(* Snapshot/restore of the stream position: the entire generator state
   is one int64, so checkpointing a campaign (or replaying a test from a
   known position) is a single word. *)
let state (t : t) : int64 = t.state

let of_state (s : int64) : t = { state = s }

let next (t : t) : int64 =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, n). *)
let int (t : t) (n : int) : int =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.unsigned_rem (next t) (Int64.of_int n))

let bool (t : t) : bool = Int64.logand (next t) 1L = 1L

(* True with probability [p]. *)
let chance (t : t) (p : float) : bool =
  let u =
    Int64.to_float (Int64.shift_right_logical (next t) 11)
    /. 9007199254740992.0
  in
  u < p

let choose (t : t) (xs : 'a list) : 'a =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let choose_opt (t : t) (xs : 'a list) : 'a option =
  match xs with [] -> None | _ -> Some (choose t xs)

(* Weighted choice: [(weight, value); ...]. *)
let weighted (t : t) (xs : (int * 'a) list) : 'a =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 xs in
  if total <= 0 then invalid_arg "Rng.weighted: no weight";
  let pick = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: unreachable"
    | (w, v) :: rest -> if pick < acc + w then v else go (acc + w) rest
  in
  go 0 xs

(* Values that historically find bugs: boundaries and magic constants. *)
let interesting_int64 =
  [ 0L; 1L; -1L; 2L; 7L; 8L; 255L; 256L; 4095L; 4096L;
    0x7FFF_FFFFL; 0x8000_0000L; 0xFFFF_FFFFL; 0x1_0000_0000L;
    Int64.max_int; Int64.min_int ]

let interesting (t : t) : int64 =
  if chance t 0.5 then choose t interesting_int64
  else Int64.of_int (int t 512 - 256)
