open Cimport

(* The kernel-veristat workflow over the simulated verifier: run a named
   program set (the selftest corpus, or a generated batch) through
   BPF_PROG_LOAD, record each program's performance counters, emit the
   table as text or JSONL, and diff two tables with a regression gate.

   Determinism: every counter in a row is a pure function of (program,
   kernel version), so two runs over the same corpus produce identical
   tables except for [vr_time_s] — which is therefore excluded from
   comparisons and from any digest use of the JSON. *)

type row = {
  vr_name : string;         (* selftest-0007 / gen-0007 *)
  vr_prog_type : string;
  vr_insns : int;           (* pre-rewrite instruction count *)
  vr_verdict : string;      (* "ok" or the errno name *)
  vr_stats : Bvf_verifier.Vstats.t;
  vr_time_s : float;        (* wall time of the load; never compared *)
}

type table = {
  vt_kernel : string;       (* version the corpus ran under *)
  vt_rows : row list;       (* in corpus order *)
}

(* -- Running ------------------------------------------------------------ *)

let load_row (session : Loader.t) ~(name : string)
    (req : Verifier.request) : row =
  let t0 = Bvf_util.Mclock.now_s () in
  let verdict, _log, vstats =
    Verifier.load_with_stats session.Loader.kst ~cov:session.Loader.cov
      req
  in
  let time_s = Bvf_util.Mclock.elapsed_s ~since:t0 in
  {
    vr_name = name;
    vr_prog_type = Prog.prog_type_to_string req.Verifier.r_prog_type;
    vr_insns = Array.length req.Verifier.r_insns;
    vr_verdict =
      (match verdict with
       | Ok _ -> "ok"
       | Error e -> Venv.errno_to_string e.Venv.errno);
    vr_stats =
      Option.value vstats ~default:(Bvf_verifier.Vstats.zero ());
    vr_time_s = time_s;
  }

(* The selftest corpus (the paper's 708 programs by default).
   [Selftests.build]'s count is a floor (the hand-written programs are
   always all included), so truncate to make [count] exact. *)
let run_selftests ?count (version : Version.t) : table =
  let suite = Selftests.build ?count version in
  let requests =
    match count with
    | Some n -> List.filteri (fun i _ -> i < n) suite.Selftests.requests
    | None -> suite.Selftests.requests
  in
  let rows =
    List.mapi
      (fun i req ->
         load_row suite.Selftests.session
           ~name:(Printf.sprintf "selftest-%04d" i) req)
      requests
  in
  { vt_kernel = Version.to_string version; vt_rows = rows }

(* A structured-generator batch under a fixed seed: veristat over the
   programs a fuzzing campaign would submit. *)
let run_generated ~(seed : int) ~(count : int) (version : Version.t) :
  table =
  let session = Loader.create (Kconfig.fixed version) in
  let gen_config =
    { Gen.c_version = version; c_maps = Campaign.standard_maps session }
  in
  let rng = Rng.create seed in
  let rows =
    List.init count (fun i ->
        let req = Gen.generate rng gen_config in
        load_row session ~name:(Printf.sprintf "gen-%04d" i) req)
  in
  { vt_kernel = Version.to_string version; vt_rows = rows }

(* -- JSONL -------------------------------------------------------------- *)

(* One header object, then one object per row — the same flat schema
   (and parser) as the telemetry trace. *)

let row_to_json (r : row) : string =
  let b = Buffer.create 160 in
  Printf.bprintf b "{\"name\":\"";
  Telemetry.escape b r.vr_name;
  Printf.bprintf b "\",\"prog_type\":\"";
  Telemetry.escape b r.vr_prog_type;
  Printf.bprintf b "\",\"insns\":%d,\"verdict\":\"" r.vr_insns;
  Telemetry.escape b r.vr_verdict;
  Buffer.add_char b '"';
  List.iter
    (fun (k, v) -> Printf.bprintf b ",\"%s\":%d" k v)
    (Bvf_verifier.Vstats.counters r.vr_stats);
  Printf.bprintf b ",\"time_s\":%.6f}" r.vr_time_s;
  Buffer.contents b

let to_json (t : table) : string =
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\"veristat\":\"bvf/1\",\"kernel\":\"";
  Telemetry.escape b t.vt_kernel;
  Printf.bprintf b "\",\"programs\":%d}\n" (List.length t.vt_rows);
  List.iter (fun r -> Printf.bprintf b "%s\n" (row_to_json r)) t.vt_rows;
  Buffer.contents b

exception Bad_table of string

let of_json (s : string) : table =
  let jint fields k =
    match List.assoc_opt k fields with
    | Some (Telemetry.Jnum f) -> int_of_float f
    | _ -> raise (Bad_table ("missing int field " ^ k))
  in
  let jstr fields k =
    match List.assoc_opt k fields with
    | Some (Telemetry.Jstr v) -> v
    | _ -> raise (Bad_table ("missing string field " ^ k))
  in
  let jflt fields k =
    match List.assoc_opt k fields with
    | Some (Telemetry.Jnum f) -> f
    | _ -> 0.0
  in
  let lines =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> raise (Bad_table "empty file")
  | header :: rest ->
    let hf =
      try Telemetry.parse_object header
      with Telemetry.Parse -> raise (Bad_table "unparsable header")
    in
    (match List.assoc_opt "veristat" hf with
     | Some (Telemetry.Jstr "bvf/1") -> ()
     | _ -> raise (Bad_table "not a bvf veristat table"));
    let rows =
      List.map
        (fun line ->
           let f =
             try Telemetry.parse_object line
             with Telemetry.Parse -> raise (Bad_table "unparsable row")
           in
           let st = Bvf_verifier.Vstats.zero () in
           st.Bvf_verifier.Vstats.vs_insn_processed <-
             jint f "insn_processed";
           st.Bvf_verifier.Vstats.vs_total_states <- jint f "total_states";
           st.Bvf_verifier.Vstats.vs_peak_states <- jint f "peak_states";
           st.Bvf_verifier.Vstats.vs_max_states_per_insn <-
             jint f "max_states_per_insn";
           st.Bvf_verifier.Vstats.vs_prune_hits <- jint f "prune_hits";
           st.Bvf_verifier.Vstats.vs_prune_misses <- jint f "prune_misses";
           st.Bvf_verifier.Vstats.vs_loops_detected <-
             jint f "loops_detected";
           st.Bvf_verifier.Vstats.vs_branch_hwm <- jint f "branch_hwm";
           {
             vr_name = jstr f "name";
             vr_prog_type = jstr f "prog_type";
             vr_insns = jint f "insns";
             vr_verdict = jstr f "verdict";
             vr_stats = st;
             vr_time_s = jflt f "time_s";
           })
        rest
    in
    { vt_kernel = jstr hf "kernel"; vt_rows = rows }

let load_file (path : string) : table =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_json s

(* -- Printing ----------------------------------------------------------- *)

let pp_table fmt (t : table) : unit =
  Format.fprintf fmt "%-16s %-14s %6s %8s %10s %8s %6s %6s %6s@."
    "program" "type" "insns" "verdict" "insn_proc" "states" "peak"
    "prune" "hwm";
  List.iter
    (fun r ->
       let s = r.vr_stats in
       Format.fprintf fmt "%-16s %-14s %6d %8s %10d %8d %6d %6d %6d@."
         r.vr_name r.vr_prog_type r.vr_insns r.vr_verdict
         s.Bvf_verifier.Vstats.vs_insn_processed
         s.Bvf_verifier.Vstats.vs_total_states
         s.Bvf_verifier.Vstats.vs_peak_states
         s.Bvf_verifier.Vstats.vs_prune_hits
         s.Bvf_verifier.Vstats.vs_branch_hwm)
    t.vt_rows;
  let total name f =
    Format.fprintf fmt "  total %-20s %12d@." name
      (List.fold_left (fun n r -> n + f r.vr_stats) 0 t.vt_rows)
  in
  Format.fprintf fmt "@.%d programs on %s@." (List.length t.vt_rows)
    t.vt_kernel;
  List.iter
    (fun name ->
       total name (fun st ->
           List.assoc name (Bvf_verifier.Vstats.counters st)))
    Bvf_verifier.Vstats.counter_names

(* -- Comparison (veristat --compare) ------------------------------------ *)

type counter_delta = {
  cd_counter : string;
  cd_old : int;
  cd_new : int;
  cd_pct : float; (* (new - old) / old * 100; 0 when old = 0 and new = 0 *)
}

type comparison = {
  cmp_deltas : counter_delta list;       (* per-counter totals *)
  cmp_added : string list;               (* programs only in new *)
  cmp_removed : string list;             (* programs only in old *)
  cmp_verdict_flips : (string * string * string) list;
      (* name, old verdict, new verdict *)
  cmp_worst : (string * counter_delta) list;
      (* per-program insn_processed regressions, worst first *)
}

let pct_delta ~(old_v : int) ~(new_v : int) : float =
  if old_v = new_v then 0.0
  else if old_v = 0 then infinity
  else 100.0 *. float_of_int (new_v - old_v) /. float_of_int old_v

let compare_tables ~(old_t : table) ~(new_t : table) : comparison =
  let index t =
    let tbl = Hashtbl.create 256 in
    List.iter (fun r -> Hashtbl.replace tbl r.vr_name r) t.vt_rows;
    tbl
  in
  let old_idx = index old_t and new_idx = index new_t in
  let names_only of_idx not_in =
    Hashtbl.fold
      (fun name _ acc ->
         if Hashtbl.mem not_in name then acc else name :: acc)
      of_idx []
    |> List.sort compare
  in
  let common =
    List.filter
      (fun r -> Hashtbl.mem old_idx r.vr_name)
      new_t.vt_rows
  in
  let total rows name =
    List.fold_left
      (fun n r ->
         n + List.assoc name (Bvf_verifier.Vstats.counters r.vr_stats))
      0 rows
  in
  let common_old =
    List.map (fun r -> Hashtbl.find old_idx r.vr_name) common
  in
  let deltas =
    List.map
      (fun name ->
         let old_v = total common_old name
         and new_v = total common name in
         { cd_counter = name; cd_old = old_v; cd_new = new_v;
           cd_pct = pct_delta ~old_v ~new_v })
      Bvf_verifier.Vstats.counter_names
  in
  let flips =
    List.filter_map
      (fun r ->
         let o = Hashtbl.find old_idx r.vr_name in
         if o.vr_verdict <> r.vr_verdict then
           Some (r.vr_name, o.vr_verdict, r.vr_verdict)
         else None)
      common
  in
  let worst =
    List.filter_map
      (fun r ->
         let o = Hashtbl.find old_idx r.vr_name in
         let old_v =
           o.vr_stats.Bvf_verifier.Vstats.vs_insn_processed
         and new_v =
           r.vr_stats.Bvf_verifier.Vstats.vs_insn_processed
         in
         if new_v > old_v then
           Some
             ( r.vr_name,
               { cd_counter = "insn_processed"; cd_old = old_v;
                 cd_new = new_v; cd_pct = pct_delta ~old_v ~new_v } )
         else None)
      common
    |> List.sort (fun (_, a) (_, b) -> compare b.cd_pct a.cd_pct)
  in
  {
    cmp_deltas = deltas;
    cmp_added = names_only new_idx old_idx;
    cmp_removed = names_only old_idx new_idx;
    cmp_verdict_flips = flips;
    cmp_worst = worst;
  }

(* The gate: a regression is any counter total growing by more than
   [threshold_pct] percent, or any verdict flip.  More verification
   effort for the same corpus is what veristat exists to catch; counters
   shrinking is an improvement, never gated. *)
let regressions ~(threshold_pct : float) (c : comparison) : string list =
  let counter_regs =
    List.filter_map
      (fun d ->
         if d.cd_pct > threshold_pct then
           Some
             (Printf.sprintf "%s total %d -> %d (%+.1f%% > %.1f%%)"
                d.cd_counter d.cd_old d.cd_new d.cd_pct threshold_pct)
         else None)
      c.cmp_deltas
  in
  let flip_regs =
    List.map
      (fun (name, o, n) ->
         Printf.sprintf "%s verdict %s -> %s" name o n)
      c.cmp_verdict_flips
  in
  counter_regs @ flip_regs

let max_worst_listed = 10

let pp_comparison fmt (c : comparison) : unit =
  Format.fprintf fmt "%-20s %12s %12s %9s@." "counter" "old" "new"
    "delta";
  List.iter
    (fun d ->
       Format.fprintf fmt "%-20s %12d %12d %+8.1f%%@." d.cd_counter
         d.cd_old d.cd_new
         (if d.cd_pct = infinity then 100.0 else d.cd_pct))
    c.cmp_deltas;
  if c.cmp_added <> [] then
    Format.fprintf fmt "@.%d programs only in new (ignored)@."
      (List.length c.cmp_added);
  if c.cmp_removed <> [] then
    Format.fprintf fmt "%d programs only in old (ignored)@."
      (List.length c.cmp_removed);
  List.iter
    (fun (name, o, n) ->
       Format.fprintf fmt "verdict flip: %s %s -> %s@." name o n)
    c.cmp_verdict_flips;
  if c.cmp_worst <> [] then begin
    Format.fprintf fmt "@.top insn_processed regressions:@.";
    List.iteri
      (fun i (name, d) ->
         if i < max_worst_listed then
           Format.fprintf fmt "  %-20s %10d -> %10d (%+.1f%%)@." name
             d.cd_old d.cd_new
             (if d.cd_pct = infinity then 100.0 else d.cd_pct))
      c.cmp_worst;
    if List.length c.cmp_worst > max_worst_listed then
      Format.fprintf fmt "  ... and %d more@."
        (List.length c.cmp_worst - max_worst_listed)
  end
