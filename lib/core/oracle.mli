(** The test oracle (paper section 3): a kernel report raised by a
    program the verifier ACCEPTED is, by construction, a correctness bug
    in the verifier — indicator #1 when the program's own instructions
    misbehaved (caught by the sanitation), indicator #2 when a kernel
    routine it invoked misbehaved (caught by a kernel self-check). *)

type indicator =
  | Ind1 (** invalid load/store or alu_limit violation in the program *)
  | Ind2 (** anomaly inside an invoked kernel routine *)
  | Ind3 (** concrete value escaped the verifier's recorded bounds
             (the witness oracle) *)

val indicator_to_string : indicator -> string

type finding = {
  f_indicator : indicator option; (** [None]: program was rejected *)
  f_report : Bvf_kernel.Report.t;
  f_bug : Bvf_kernel.Kconfig.bug option; (** ground-truth attribution *)
  f_fingerprint : string;
  f_correctness : bool; (** a verifier correctness bug? *)
}

val classify_indicator : Bvf_kernel.Report.t -> indicator

val attribute :
  Bvf_kernel.Kconfig.t -> Bvf_kernel.Report.t ->
  Bvf_kernel.Kconfig.bug option
(** Which injected bug (of those present in the config) explains the
    report — the automated stand-in for the paper's manual triage in
    the Table 2 experiment. *)

val is_correctness_bug : Bvf_kernel.Kconfig.bug -> bool

val classify :
  Bvf_kernel.Kconfig.t -> Bvf_runtime.Loader.run_result -> finding list
(** Classify the outcome of one load(+run) cycle. *)

val finding_to_string : finding -> string
