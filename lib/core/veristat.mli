(** The kernel-veristat workflow over the simulated verifier: run a
    named program set through BPF_PROG_LOAD, record each program's
    performance counters, emit the table (text / JSONL), and diff two
    tables with a regression gate.

    Every counter in a row is deterministic; only [vr_time_s] is a real
    observation and is excluded from comparisons. *)

type row = {
  vr_name : string;     (** [selftest-0007] / [gen-0007] *)
  vr_prog_type : string;
  vr_insns : int;       (** pre-rewrite instruction count *)
  vr_verdict : string;  (** ["ok"] or the errno name *)
  vr_stats : Bvf_verifier.Vstats.t;
  vr_time_s : float;    (** wall time of the load; never compared *)
}

type table = {
  vt_kernel : string;   (** version the corpus ran under *)
  vt_rows : row list;   (** in corpus order *)
}

val load_row :
  Bvf_runtime.Loader.t -> name:string -> Bvf_verifier.Verifier.request ->
  row

val run_selftests : ?count:int -> Bvf_ebpf.Version.t -> table
(** The selftest corpus (the paper's 708 programs by default). *)

val run_generated :
  seed:int -> count:int -> Bvf_ebpf.Version.t -> table
(** A structured-generator batch under a fixed seed. *)

(** {1 JSONL} *)

val to_json : table -> string
(** One header object, then one object per row — the same flat schema
    (and parser) as the telemetry trace. *)

exception Bad_table of string

val of_json : string -> table
(** @raise Bad_table on anything that is not a bvf veristat table. *)

val load_file : string -> table
(** {!of_json} over a file's contents. *)

val pp_table : Format.formatter -> table -> unit

(** {1 Comparison — [veristat --compare]} *)

type counter_delta = {
  cd_counter : string;
  cd_old : int;
  cd_new : int;
  cd_pct : float;
      (** (new - old) / old * 100; [infinity] when old = 0 < new *)
}

type comparison = {
  cmp_deltas : counter_delta list;  (** per-counter totals over common
                                        programs, canonical order *)
  cmp_added : string list;          (** programs only in new *)
  cmp_removed : string list;        (** programs only in old *)
  cmp_verdict_flips : (string * string * string) list;
      (** name, old verdict, new verdict *)
  cmp_worst : (string * counter_delta) list;
      (** per-program insn_processed regressions, worst first *)
}

val compare_tables : old_t:table -> new_t:table -> comparison

val regressions : threshold_pct:float -> comparison -> string list
(** The gate: one message per counter total growing by more than
    [threshold_pct] percent, plus one per verdict flip.  Empty means
    the gate passes; counters shrinking is never gated. *)

val pp_comparison : Format.formatter -> comparison -> unit
