(** Parallel campaign runner: shard one logical campaign across N
    OCaml 5 domains and merge the shard results into one
    {!Campaign.stats} — the syzkaller shape of fuzzing (independent VMs,
    central coverage merge) applied to the simulated kernel.

    Each shard owns its own simulated kernel, RNG stream
    ([seed + shard_index]), coverage map and corpus; shards share no
    mutable state, so the result is a pure function of
    [(seed, jobs, config, strategy)] regardless of domain scheduling.

    Shard-local iteration [j] of shard [s] maps to global iteration
    [j * jobs + s] (round-robin lockstep); with [jobs = 1] this is the
    identity and {!run} delegates to {!Campaign.run_t}, making the
    single-job path bit-identical to the sequential campaign. *)

(** One shard's outcome, in portable form. *)
type shard = {
  sh_index : int;
  sh_seed : int;
  sh_iterations : int;
  sh_stats : Campaign.stats;
  sh_corpus : Corpus.entry list;
  sh_edges : ((string * int) * int) list;
      (** {!Bvf_verifier.Coverage.named_edges} of the shard's map *)
}

type result = {
  pr_jobs : int;
  pr_iterations : int;
  pr_stats : Campaign.stats;
      (** merged: union coverage count, findings deduplicated at their
          earliest global iteration, counters and histograms summed, and
          a curve of summed per-shard edge counts (the raw per-VM signal,
          an upper bound on the union at each sample point) *)
  pr_cov : Bvf_verifier.Coverage.t; (** union coverage map *)
  pr_corpus : Corpus.t;
      (** shard corpora unioned and re-scored at global iterations *)
  pr_shards : shard list; (** in index order *)
}

val shard_iterations : iterations:int -> jobs:int -> int array
(** Round-robin split of the iteration budget: [iterations / jobs] each,
    plus one for the first [iterations mod jobs] shards.  Sums to
    [iterations].
    @raise Invalid_argument when [jobs < 1] or [iterations < 0]. *)

val global_iteration : jobs:int -> shard:int -> int -> int
(** [global_iteration ~jobs ~shard local] is [local * jobs + shard]. *)

val merge_stats :
  jobs:int -> Bvf_verifier.Coverage.t -> shard list -> Campaign.stats
(** Fold shard stats into one merged stats against the given union
    coverage map.  Deterministic in the shard list order.
    @raise Invalid_argument on an empty shard list. *)

val merge_corpora : jobs:int -> ?max_size:int -> shard list -> Corpus.t

val shard_trace_path : string -> int -> string
(** [shard_trace_path trace i] is [trace ^ ".shard" ^ i] — the
    per-shard telemetry file both this runner and the {!Supervisor}
    workers write, so their merged traces come out byte-identical. *)

val merge_snapshots :
  Campaign.snapshot list -> Campaign.snapshot
(** Offline checkpoint merge (the [bvf merge] core): fold independent
    campaign snapshots — per-worker checkpoints, or checkpoints fuzzed
    on different machines — into one reportable snapshot.  Inputs keep
    their own (already global) iteration numbers; nothing is
    renumbered.  Associative and commutative on everything
    {!Campaign.digest} covers (the capped, re-scored corpus and the
    summed wall-clock phase timers are the only order-sensitive fields,
    and both are outside the digest).  The result has [sn_merged] set:
    it can be merged again or reported, but {!Campaign.resume} refuses
    it.
    @raise Invalid_argument on an empty list.
    @raise Campaign.Environment when inputs disagree on tool, kernel
    version, or config flags. *)

val run :
  ?sample_every:int -> ?trace:string -> ?log_level:int ->
  ?failslab_rate:float -> ?failslab_seed:int ->
  ?on_step:(int -> Campaign.t -> unit) ->
  ?prof:Bvf_util.Prof.session ->
  jobs:int -> seed:int -> iterations:int -> Campaign.strategy ->
  Bvf_kernel.Kconfig.t -> result
(** Run [iterations] total fuzzing iterations sharded across [jobs]
    domains.  Shard [i] fuzzes with seed [seed + i] (and, when
    [failslab_rate > 0], a fault plan seeded [failslab_seed + i],
    defaulting [failslab_seed] to [seed]).  [jobs = 1] runs in the
    calling domain and is bit-identical to {!Campaign.run}.

    [trace] writes a {!Telemetry} JSONL stream: each shard writes
    [trace ^ ".shard" ^ i] with iterations rewritten to global
    numbering, and the join merges (stable-sorted by iteration) into
    [trace] and removes the shard files.  With [jobs = 1] the campaign
    writes [trace] directly, byte-identical to a sequential run's
    trace.  [log_level] sets the verifier log level for every load.
    [on_step shard] builds the per-shard step observer (the
    [--progress] status line); it runs on the shard's domain after each
    completed iteration and must not mutate the campaign.
    [prof] (default {!Bvf_util.Prof.null}) records the run as profiler
    spans: track [i] carries shard [i]'s "iterate" span with the
    campaign phase spans nested inside, track [jobs] the coordinator's
    spawn/join/trace-merge/absorb/merge work.  Pure observation — a
    profiled run's digest and trace are byte-identical to an
    unprofiled one.
    @raise Invalid_argument when [jobs < 1].
    @raise Campaign.Environment if any shard raises it. *)

val digest : result -> string
(** {!Campaign.digest} of the merged stats: one canonical hex digest for
    the whole parallel campaign, deterministic for fixed (seed, jobs). *)

val pp_summary : Format.formatter -> result -> unit
