open Cimport

(* Content-addressed verdict cache (docs/SERVICE.md).

   The in-memory tier is a plain LRU: a hash table from key to an
   intrusive doubly-linked node, list head = most recently used.  Every
   operation is O(1); eviction pops the tail.  The on-disk tier reuses
   the Checkpoint container, so persistence inherits the atomic
   write-then-rename and corruption-is-Error-never-raise contract the
   campaign checkpoints already test. *)

module Reject_reason = Bvf_verifier.Reject_reason

type verdict = {
  cv_accepted : bool;
  cv_insns : int;
  cv_insn_processed : int;
  cv_errno : string;
  cv_reason : Reject_reason.t option;
  cv_pc : int;
  cv_msg : string;
  cv_vlog : string;
  cv_vstats : Vstats.t option;
}

(* Cached logs are service payload, not debugging transcripts: cap them
   well below Vlog.default_cap so a million cached verdicts stay
   storable. *)
let vlog_cap = 64 * 1024

let cap_vlog (log : string) : string =
  if String.length log <= vlog_cap then log
  else String.sub log 0 vlog_cap ^ "\n... log truncated\n"

type node = {
  n_key : string;
  mutable n_verdict : verdict;
  mutable n_prev : node option; (* towards the MRU head *)
  mutable n_next : node option; (* towards the LRU tail *)
}

type stats = {
  cs_hits : int;
  cs_misses : int;
  cs_insertions : int;
  cs_evictions : int;
}

type t = {
  t_cap : int;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable insertions : int;
  mutable evictions : int;
}

let create ~cap : t =
  if cap < 1 then invalid_arg "Vcache.create: cap must be >= 1";
  { t_cap = cap; tbl = Hashtbl.create (min cap 1024); head = None;
    tail = None; hits = 0; misses = 0; insertions = 0; evictions = 0 }

let cap (t : t) : int = t.t_cap
let length (t : t) : int = Hashtbl.length t.tbl

let key ~(config_fp : string) ~(maps_fp : string)
    (req : Verifier.request) : string =
  Digest.to_hex
    (Digest.string
       (config_fp ^ "\n" ^ maps_fp ^ "\n"
        ^ Verifier.request_canonical req))

(* -- Intrusive list maintenance ------------------------------------- *)

let unlink (t : t) (n : node) : unit =
  (match n.n_prev with
   | Some p -> p.n_next <- n.n_next
   | None -> t.head <- n.n_next);
  (match n.n_next with
   | Some s -> s.n_prev <- n.n_prev
   | None -> t.tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front (t : t) (n : node) : unit =
  n.n_next <- t.head;
  n.n_prev <- None;
  (match t.head with Some h -> h.n_prev <- Some n | None -> ());
  t.head <- Some n;
  if t.tail = None then t.tail <- Some n

let touch (t : t) (n : node) : unit =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let find (t : t) (k : string) : verdict option =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
    t.hits <- t.hits + 1;
    touch t n;
    Some n.n_verdict
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_tail (t : t) : unit =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.n_key;
    t.evictions <- t.evictions + 1

let insert (t : t) (k : string) (v : verdict) : unit =
  (match Hashtbl.find_opt t.tbl k with
   | Some n ->
     n.n_verdict <- v;
     touch t n
   | None ->
     if Hashtbl.length t.tbl >= t.t_cap then evict_tail t;
     let n = { n_key = k; n_verdict = v; n_prev = None; n_next = None } in
     Hashtbl.replace t.tbl k n;
     push_front t n);
  t.insertions <- t.insertions + 1

let stats (t : t) : stats =
  { cs_hits = t.hits; cs_misses = t.misses;
    cs_insertions = t.insertions; cs_evictions = t.evictions }

let entries (t : t) : (string * verdict) list =
  let rec walk acc = function
    | None -> List.rev acc
    | Some n -> walk ((n.n_key, n.n_verdict) :: acc) n.n_next
  in
  walk [] t.head

(* -- On-disk tier ---------------------------------------------------- *)

let tag = "bvf-vcache/1"

let save (t : t) ~(path : string) : (unit, Checkpoint.error) result =
  Checkpoint.save ~path ~tag (entries t)

let load ~(path : string) ~(cap : int) : (t, Checkpoint.error) result =
  match Checkpoint.load ~path ~tag with
  | Error e -> Error e
  | Ok (saved : (string * verdict) list) ->
    let t = create ~cap in
    (* insert oldest first so recency order survives the round trip;
       beyond [cap] the oldest entries fall off, as they would have *)
    List.iter (fun (k, v) -> insert t k v) (List.rev saved);
    t.insertions <- 0;
    t.evictions <- 0;
    Ok t
