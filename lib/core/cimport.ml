(* Short aliases for substrate modules used by the BVF core. *)

module Word = Bvf_ebpf.Word
module Version = Bvf_ebpf.Version
module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Helper = Bvf_ebpf.Helper
module Disasm = Bvf_ebpf.Disasm
module Encode = Bvf_ebpf.Encode
module Kconfig = Bvf_kernel.Kconfig
module Kstate = Bvf_kernel.Kstate
module Map = Bvf_kernel.Map
module Btf = Bvf_kernel.Btf
module Report = Bvf_kernel.Report
module Lockdep = Bvf_kernel.Lockdep
module Tracepoint = Bvf_kernel.Tracepoint
module Verifier = Bvf_verifier.Verifier
module Venv = Bvf_verifier.Venv
module Coverage = Bvf_verifier.Coverage
module Loader = Bvf_runtime.Loader
module Exec = Bvf_runtime.Exec
module Reject_reason = Bvf_verifier.Reject_reason
module Vstats = Bvf_verifier.Vstats
