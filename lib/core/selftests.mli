(** A deterministic corpus standing in for the kernel's verifier
    self-tests: the dataset of the paper's sanitation-overhead
    experiment (section 6.4, 708 load/store-bearing programs).

    Built from parametric hand-written families (stack traffic, copied
    stack pointers, ALU+store mixes, branch ladders, ctx reads, map
    lookups, direct values, atomics, packet access) plus
    structured-generator output under fixed seeds, all filtered to pass
    the fixed verifier and to be memory-access dense. *)

type suite = {
  session : Bvf_runtime.Loader.t;
  requests : Bvf_verifier.Verifier.request list;
      (** all pass the fixed verifier *)
}

val target_count : int
(** 708, as in the paper. *)

val build :
  ?count:int -> ?config:Bvf_kernel.Kconfig.t -> Bvf_ebpf.Version.t ->
  suite
(** [config] (default {!Bvf_kernel.Kconfig.fixed}) must still be a
    fixed verifier; use it to enable observers such as the invariant
    lint or witness recording. *)
