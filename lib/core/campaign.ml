open Cimport

(* Fuzzing campaign driver: the outer loop of Figure 3.  One campaign
   owns a simulated kernel (recreated when it "crashes", like rebooting
   a fuzzing VM), a coverage map that persists across reboots, a corpus
   of coverage-increasing inputs, and the dedup table of findings.

   The driver is strategy-parametric so the same harness runs BVF and
   the Syzkaller/Buzzer baselines under identical conditions (same
   syscall surface, same coverage instrumentation) — the methodology of
   the paper's section 6.3.

   Production shape: campaigns run for days, so the driver also carries
   the robustness machinery —

   - a {!Bvf_kernel.Failslab} fault plan threaded through the kernel, so
     allocation failures are part of the tested environment; transient
     -ENOMEM outcomes are retried (with a reboot as escalation) and
     counted, never classified as findings;
   - periodic checkpoints: corpus, coverage, stats, RNG and fault-plan
     state are atomically persisted at a reboot boundary, so a killed
     campaign resumes from disk and replays the exact continuation of
     the uninterrupted run;
   - the reboot-storm breaker: corpus entries implicated in consecutive
     fatal reboots are quarantined instead of re-picked forever. *)

type strategy = {
  s_name : string;
  s_feedback : bool; (* coverage-guided corpus mutation *)
  s_generate :
    Rng.t -> Gen.config -> Verifier.request option -> Verifier.request;
    (* seed program (from the corpus) provided when feedback is on *)
}

(* The paper's tool: structured generation + coverage feedback. *)
let bvf_strategy : strategy =
  {
    s_name = "BVF";
    s_feedback = true;
    s_generate =
      (fun rng cfg seed ->
         match seed with
         | Some req when Rng.chance rng 0.4 ->
           Mutate.mutate_request rng ~version:cfg.Gen.c_version req
         | Some _ | None -> Gen.generate rng cfg);
  }

type found = {
  fd_finding : Oracle.finding;
  fd_iteration : int;
  fd_request : Verifier.request;
}

type sample = { sa_iteration : int; sa_edges : int }

type stats = {
  st_tool : string;
  st_version : Version.t;
  mutable st_generated : int;
  mutable st_accepted : int;
  mutable st_rejected : int;
  st_errno : (Venv.errno, int) Hashtbl.t;
  st_reasons : (Reject_reason.t, int) Hashtbl.t;
      (* rejection taxonomy (Venv.verr classification) *)
  st_findings : (string, found) Hashtbl.t; (* fingerprint -> first *)
  mutable st_curve : sample list;          (* newest first *)
  mutable st_histogram : Disasm.class_histogram;
  mutable st_edges : int;
  mutable st_reboots : int;
  mutable st_env_errors : int;  (* transient errors that survived retry *)
  mutable st_retries : int;     (* transient errors retried away *)
  mutable st_quarantined : int; (* corpus entries storm-quarantined *)
  mutable st_skipped : int;     (* iterations skipped because a prior
                                   run's harness crash quarantined them *)
  mutable st_lint : int;        (* invariant-lint violations observed
                                   (Kconfig.lint); never findings *)
  (* phase timers: wall-clock seconds per pipeline stage.  Real times,
     so deliberately excluded from [digest] — only the event counts are
     part of a campaign's deterministic identity. *)
  mutable st_gen_s : float;
  mutable st_verify_s : float;
  mutable st_sanitize_s : float;
  mutable st_exec_s : float;
  (* per-phase allocation attribution: minor words per pipeline stage.
     Observations like the timers above, so digest-excluded too. *)
  mutable st_gen_w : float;
  mutable st_verify_w : float;
  mutable st_sanitize_w : float;
  mutable st_exec_w : float;
  (* veristat-style verifier-counter aggregate: totals, maxima and log2
     histograms over every analysis that ran.  Deterministic, so part
     of [digest]; merged across shards like coverage. *)
  st_vstats : Vstats.agg;
}

let acceptance_rate (s : stats) : float =
  if s.st_generated = 0 then 0.0
  else float_of_int s.st_accepted /. float_of_int s.st_generated

let bugs_found (s : stats) : Kconfig.bug list =
  Hashtbl.fold
    (fun _ f acc ->
       match f.fd_finding.Oracle.f_bug with
       | Some b when not (List.mem b acc) -> b :: acc
       | _ -> acc)
    s.st_findings []

let correctness_bugs_found (s : stats) : Kconfig.bug list =
  Hashtbl.fold
    (fun _ f acc ->
       match f.fd_finding.Oracle.f_bug with
       | Some b
         when f.fd_finding.Oracle.f_correctness && not (List.mem b acc) ->
         b :: acc
       | _ -> acc)
    s.st_findings []

let fingerprints (s : stats) : string list =
  Hashtbl.fold (fun key _ acc -> key :: acc) s.st_findings []
  |> List.sort compare

(* Canonical digest of everything a campaign observed: two campaigns
   with equal digests generated the same programs and saw the same
   outcomes.  Used by the checkpoint/resume determinism tests and handy
   for comparing reproduction runs across machines. *)
(* [exclude_finding] drops finding lines whose key matches, so a
   campaign run with an extra report class (the witness oracle) can be
   digest-compared against one run without it. *)
let digest ?(exclude_finding = fun (_ : string) -> false) (s : stats) :
  string =
  let b = Buffer.create 512 in
  Printf.bprintf b "%s|%s|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d\n" s.st_tool
    (Version.to_string s.st_version)
    s.st_generated s.st_accepted s.st_rejected s.st_edges s.st_reboots
    s.st_env_errors s.st_retries s.st_quarantined s.st_skipped s.st_lint;
  Hashtbl.fold (fun e n acc -> (Venv.errno_to_string e, n) :: acc)
    s.st_errno []
  |> List.sort compare
  |> List.iter (fun (e, n) -> Printf.bprintf b "errno %s %d\n" e n);
  Hashtbl.fold (fun r n acc -> (Reject_reason.to_string r, n) :: acc)
    s.st_reasons []
  |> List.sort compare
  |> List.iter (fun (r, n) -> Printf.bprintf b "reason %s %d\n" r n);
  Hashtbl.fold
    (fun key f acc ->
       if exclude_finding key then acc else (key, f.fd_iteration) :: acc)
    s.st_findings []
  |> List.sort compare
  |> List.iter (fun (key, it) -> Printf.bprintf b "finding %s @%d\n" key it);
  List.iter
    (fun sa -> Printf.bprintf b "curve %d %d\n" sa.sa_iteration sa.sa_edges)
    s.st_curve;
  List.iter
    (fun line -> Printf.bprintf b "%s\n" line)
    (Vstats.agg_digest_lines s.st_vstats);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Coverage-plateau report from the sampled curve: [Some (last_gain,
   stalled)] where [last_gain] is the earliest sampled iteration
   already at the final edge count and [stalled] how many iterations ran
   past it without a new edge; [None] before any sample exists. *)
let plateau (s : stats) : (int * int) option =
  match s.st_curve with
  | [] -> None
  | (newest : sample) :: older ->
    let last_gain =
      List.fold_left
        (fun acc sa -> if sa.sa_edges = newest.sa_edges then sa else acc)
        newest older
    in
    Some (last_gain.sa_iteration,
          newest.sa_iteration - last_gain.sa_iteration)

(* Standard map population for a session: one of each interesting kind.
   Under fault injection a creation can fail with -ENOMEM; the session
   then simply runs with fewer maps, as a real fuzzer setup would. *)
let standard_maps (session : Loader.t) : (int * Map.def) list =
  let defs =
    [ Map.array_def ~value_size:48 ~max_entries:4 ();
      Map.hash_def ~key_size:8 ~value_size:48 ~max_entries:8 ();
      Map.hash_def ~key_size:8 ~value_size:64 ~has_spin_lock:true ();
      Map.ringbuf_def ~max_entries:4096 () ]
  in
  List.filter_map
    (fun d ->
       Option.map (fun fd -> (fd, d)) (Loader.try_create_map session d))
    defs

(* A report that leaves the simulated kernel unusable. *)
let is_fatal (r : Report.t) : bool =
  match r.Report.kind with
  | Report.Panic _ -> true
  | Report.Lock_violation (Lockdep.Recursive_lock _)
  | Report.Lock_violation (Lockdep.Held_at_exit _) -> true
  | Report.Lock_violation _ | Report.Mem_fault _ | Report.Warn _
  | Report.Alu_limit _ | Report.Runaway_execution
  | Report.Witness_escape _ -> false

(* Transient environment errors (injected allocation failures): eligible
   for retry, never findings. *)
let is_transient (result : Loader.run_result) : bool =
  (match result.Loader.verdict with
   | Error e -> Venv.errno_is_transient e.Venv.errno
   | Ok _ -> false)
  || (match result.Loader.status with
      | Some s -> Exec.is_transient s
      | None -> false)

(* Retry policy for transient errors: one plain retry, then a reboot
   (memory-pressure relief) before the final attempt. *)
let max_transient_retries = 2

(* Reboot-storm breaker: quarantine a corpus entry implicated in this
   many consecutive fatal reboots. *)
let quarantine_after = 3

exception Environment of string

type t = {
  config : Kconfig.t;
  strategy : strategy;
  seed : int;
  rng : Rng.t;
  failslab : Bvf_kernel.Failslab.t;
  cov : Coverage.t;
  corpus : Corpus.t;
  stats : stats;
  mutable session : Loader.t;
  mutable gen_config : Gen.config;
  sample_every : int;
  telemetry : Telemetry.sink;
  log_level : int;
  (* span-profiler handle for this campaign's domain; [Prof.disabled]
     unless the run opted in with [--profile].  Records gen/verify/
     sanitize/exec phase spans and checkpoint writes; never touches the
     RNG, the telemetry sink or the digest. *)
  prof : Bvf_util.Prof.t;
}

let reboot (c : t) : unit =
  c.session <- Loader.create ~cov:c.cov ~failslab:c.failslab c.config;
  c.gen_config <-
    { Gen.c_version = c.config.Kconfig.version;
      c_maps = standard_maps c.session };
  c.stats.st_reboots <- c.stats.st_reboots + 1

let create ?(sample_every = 64) ?(telemetry = Telemetry.null)
    ?(log_level = 0) ?(prof = Bvf_util.Prof.disabled) ?failslab
    ~(seed : int) (strategy : strategy) (config : Kconfig.t) : t =
  let failslab =
    match failslab with
    | Some f -> f
    | None -> Bvf_kernel.Failslab.off ()
  in
  let cov = Coverage.create () in
  let session = Loader.create ~cov ~failslab config in
  let gen_config =
    { Gen.c_version = config.Kconfig.version;
      c_maps = standard_maps session }
  in
  {
    config;
    strategy;
    seed;
    rng = Rng.create seed;
    failslab;
    cov;
    corpus = Corpus.create ();
    stats =
      {
        st_tool = strategy.s_name;
        st_version = config.Kconfig.version;
        st_generated = 0;
        st_accepted = 0;
        st_rejected = 0;
        st_errno = Hashtbl.create 8;
        st_reasons = Hashtbl.create 16;
        st_findings = Hashtbl.create 32;
        st_curve = [];
        st_histogram = Disasm.empty_histogram;
        st_edges = 0;
        st_reboots = 0;
        st_env_errors = 0;
        st_retries = 0;
        st_quarantined = 0;
        st_skipped = 0;
        st_lint = 0;
        st_gen_s = 0.;
        st_verify_s = 0.;
        st_sanitize_s = 0.;
        st_exec_s = 0.;
        st_gen_w = 0.;
        st_verify_w = 0.;
        st_sanitize_w = 0.;
        st_exec_w = 0.;
        st_vstats = Vstats.agg_zero ();
      };
    session;
    gen_config;
    sample_every;
    telemetry;
    log_level;
    prof;
  }

(* One fuzzing iteration: generate (or mutate), load, run, classify. *)
let step (c : t) : unit =
  let stats = c.stats in
  let iteration = stats.st_generated in
  let seed_entry =
    if c.strategy.s_feedback then Corpus.pick_entry c.corpus c.rng
    else None
  in
  let seed_req = Option.map (fun e -> e.Corpus.request) seed_entry in
  let fr_gen = Bvf_util.Prof.start c.prof "gen" in
  let req = c.strategy.s_generate c.rng c.gen_config seed_req in
  let gen_s, gen_w = Bvf_util.Prof.stop c.prof fr_gen in
  stats.st_gen_s <- stats.st_gen_s +. gen_s;
  stats.st_gen_w <- stats.st_gen_w +. gen_w;
  stats.st_generated <- stats.st_generated + 1;
  stats.st_histogram <-
    Array.fold_left Disasm.classify stats.st_histogram
      req.Verifier.r_insns;
  let prog_type = Prog.prog_type_to_string req.Verifier.r_prog_type in
  Telemetry.emit c.telemetry
    (Telemetry.Generated
       { iter = iteration; prog_type;
         insns = Array.length req.Verifier.r_insns });
  (* bounded retry of transient environment errors, escalating to a
     reboot before the final attempt.  The coverage snapshot is taken
     immediately before the attempt that produces the returned result:
     edges recorded by retried-away executions and by reboot-time map
     setup belong to the environment, not to this program, and must not
     inflate the corpus entry's feedback score. *)
  let rec attempt (n : int) : int * Loader.run_result =
    let edges_before = Coverage.edge_count c.cov in
    let result =
      Loader.load_and_run ~log_level:c.log_level ~prof:c.prof c.session req
    in
    stats.st_verify_s <- stats.st_verify_s +. result.Loader.verify_s;
    stats.st_sanitize_s <- stats.st_sanitize_s +. result.Loader.sanitize_s;
    stats.st_exec_s <- stats.st_exec_s +. result.Loader.exec_s;
    stats.st_verify_w <- stats.st_verify_w +. result.Loader.verify_w;
    stats.st_sanitize_w <- stats.st_sanitize_w +. result.Loader.sanitize_w;
    stats.st_exec_w <- stats.st_exec_w +. result.Loader.exec_w;
    if is_transient result && n < max_transient_retries then begin
      stats.st_retries <- stats.st_retries + 1;
      if n = max_transient_retries - 1 then reboot c;
      attempt (n + 1)
    end
    else (edges_before, result)
  in
  let edges_before, result = attempt 0 in
  if is_transient result then
    stats.st_env_errors <- stats.st_env_errors + 1;
  let new_edges = Coverage.edge_count c.cov - edges_before in
  (match result.Loader.verdict with
   | Ok prog ->
     stats.st_accepted <- stats.st_accepted + 1;
     stats.st_lint <- stats.st_lint + prog.Verifier.l_lint_count;
     Telemetry.emit c.telemetry
       (Telemetry.Accepted
          { iter = iteration; prog_type;
            insns = Array.length prog.Verifier.l_insns;
            insn_processed = prog.Verifier.l_insn_processed })
   | Error e ->
     stats.st_rejected <- stats.st_rejected + 1;
     let k = e.Venv.errno in
     Hashtbl.replace stats.st_errno k
       (1 + Option.value (Hashtbl.find_opt stats.st_errno k) ~default:0);
     let r = e.Venv.vreason in
     Hashtbl.replace stats.st_reasons r
       (1 + Option.value (Hashtbl.find_opt stats.st_reasons r) ~default:0);
     Telemetry.emit c.telemetry
       (Telemetry.Rejected
          { iter = iteration; prog_type; reason = r;
            errno = Venv.errno_to_string e.Venv.errno; pc = e.Venv.vpc;
            msg = e.Venv.vmsg }));
  (* verifier performance counters of the attempt that produced the
     verdict (absent when the load failed before analysis): aggregate
     and trace.  Counters are deterministic, so the event keeps traces
     byte-identical per seed. *)
  (match result.Loader.vstats with
   | Some v ->
     Vstats.agg_add stats.st_vstats v;
     Telemetry.emit c.telemetry
       (Telemetry.Vstats
          { iter = iteration;
            insn_processed = v.Vstats.vs_insn_processed;
            total_states = v.Vstats.vs_total_states;
            peak_states = v.Vstats.vs_peak_states;
            max_states_per_insn = v.Vstats.vs_max_states_per_insn;
            prune_hits = v.Vstats.vs_prune_hits;
            prune_misses = v.Vstats.vs_prune_misses;
            loops_detected = v.Vstats.vs_loops_detected;
            branch_hwm = v.Vstats.vs_branch_hwm;
            widen_rounds = v.Vstats.vs_widen_rounds;
            loop_heads = v.Vstats.vs_loop_heads })
   | None -> ());
  if c.strategy.s_feedback then
    Corpus.add c.corpus ~iteration ~new_edges req;
  let findings = Oracle.classify c.config result in
  List.iter
    (fun f ->
       let key =
         f.Oracle.f_fingerprint
         ^ (match f.Oracle.f_bug with
             | Some b -> "|" ^ Kconfig.bug_to_string b
             | None -> "")
       in
       if not (Hashtbl.mem stats.st_findings key) then begin
         Hashtbl.replace stats.st_findings key
           { fd_finding = f; fd_iteration = iteration; fd_request = req };
         Telemetry.emit c.telemetry
           (Telemetry.Finding
              { iter = iteration; fingerprint = key;
                bug = Option.map Kconfig.bug_to_string f.Oracle.f_bug;
                correctness = f.Oracle.f_correctness })
       end)
    findings;
  (* crash handling: reboot the kernel on fatal anomalies, and run the
     storm breaker over the corpus entry that seeded this iteration *)
  let fatal = List.exists is_fatal result.Loader.reports in
  (match seed_entry with
   | Some e when fatal ->
     if Corpus.blame c.corpus e ~quarantine_after then
       stats.st_quarantined <- stats.st_quarantined + 1
   | Some e -> Corpus.absolve e
   | None -> ());
  if fatal then reboot c
  else Bvf_kernel.Kmem.compact c.session.Loader.kst.Kstate.mem;
  if iteration mod c.sample_every = 0 then
    stats.st_curve <-
      { sa_iteration = iteration; sa_edges = Coverage.edge_count c.cov }
      :: stats.st_curve;
  stats.st_edges <- Coverage.edge_count c.cov

(* Skip one iteration that a previous run's harness crash quarantined:
   consume exactly the generation-phase RNG draws [step] would (corpus
   pick + program generation) so the stream stays aligned for the
   iterations that follow, but never load or run the program.  A
   supervised restart skipping iteration [i] and a fault-free campaign
   told up front to skip [i] perform the same state transition here,
   which is what makes the two runs digest-comparable. *)
let step_skip (c : t) : unit =
  let stats = c.stats in
  let iteration = stats.st_generated in
  let seed_entry =
    if c.strategy.s_feedback then Corpus.pick_entry c.corpus c.rng
    else None
  in
  let seed_req = Option.map (fun e -> e.Corpus.request) seed_entry in
  ignore (c.strategy.s_generate c.rng c.gen_config seed_req : Verifier.request);
  stats.st_generated <- stats.st_generated + 1;
  stats.st_skipped <- stats.st_skipped + 1;
  Telemetry.emit c.telemetry (Telemetry.Quarantined { iter = iteration });
  if iteration mod c.sample_every = 0 then
    stats.st_curve <-
      { sa_iteration = iteration; sa_edges = Coverage.edge_count c.cov }
      :: stats.st_curve;
  stats.st_edges <- Coverage.edge_count c.cov

(* -- Checkpointing ----------------------------------------------------- *)

(* Everything needed to continue the campaign from disk.  The simulated
   kernel itself is deliberately absent: checkpoints are taken at a
   reboot boundary, so a fresh kernel (built by {!resume} exactly the
   way {!reboot} builds one) plus this record fully determines future
   behavior. *)
type snapshot = {
  sn_tool : string;
  sn_kernel : Version.t;
  sn_seed : int;
  sn_sanitize : bool;
  sn_unprivileged : bool;
  sn_witness : bool;
  sn_lint : bool;
  sn_completed : int;      (* iterations finished when taken *)
  sn_merged : bool;        (* built by [Parallel.merge_snapshots], not a
                              live campaign: reportable, not resumable *)
  sn_rng : int64;
  sn_failslab : Bvf_kernel.Failslab.t;
  sn_corpus : Corpus.t;
  sn_cov : Coverage.t;
  sn_stats : stats;
}

(* /5: stats gained st_skipped, snapshots gained sn_merged.
   /6: vstats aggregate gained widen-round and loop-head counters, and
   the generator grew the counted-loop frame, so resumed iteration
   streams diverge from /5 checkpoints.
   /7: stats gained the per-phase minor-words attribution fields
   (st_gen_w..st_exec_w), changing the marshalled layout. *)
let checkpoint_tag = "bvf-campaign/7"

let snapshot (c : t) : snapshot =
  {
    sn_tool = c.strategy.s_name;
    sn_kernel = c.config.Kconfig.version;
    sn_seed = c.seed;
    sn_sanitize = c.config.Kconfig.sanitize;
    sn_unprivileged = c.config.Kconfig.unprivileged;
    sn_witness = c.config.Kconfig.witness;
    sn_lint = c.config.Kconfig.lint;
    sn_completed = c.stats.st_generated;
    sn_merged = false;
    sn_rng = Rng.state c.rng;
    sn_failslab = c.failslab;
    sn_corpus = c.corpus;
    sn_cov = c.cov;
    sn_stats = c.stats;
  }

let save_checkpoint (c : t) ~(path : string) :
  (unit, Checkpoint.error) result =
  Checkpoint.save ~path ~tag:checkpoint_tag (snapshot c)

(* Persist a snapshot value directly — the [bvf merge] output path,
   where there is no live campaign behind the snapshot. *)
let save_snapshot (s : snapshot) ~(path : string) :
  (unit, Checkpoint.error) result =
  Checkpoint.save ~path ~tag:checkpoint_tag s

let load_checkpoint ~(path : string) :
  (snapshot, Checkpoint.error) result =
  (Checkpoint.load ~path ~tag:checkpoint_tag
   : (snapshot, Checkpoint.error) result)

(* Rebuild a running campaign from a snapshot.  Creating the fresh
   session here mirrors the {!reboot} the uninterrupted campaign
   performs right after taking the checkpoint — including the fault-plan
   draws its map setup consumes — so the resumed campaign replays the
   exact continuation of the uninterrupted one. *)
let resume ?(sample_every = 64) ?(telemetry = Telemetry.null)
    ?(log_level = 0) ?(prof = Bvf_util.Prof.disabled)
    (strategy : strategy) (config : Kconfig.t) (s : snapshot) : t =
  if s.sn_tool <> strategy.s_name then
    raise
      (Environment
         (Printf.sprintf "checkpoint was taken by tool %s, not %s"
            s.sn_tool strategy.s_name));
  if s.sn_kernel <> config.Kconfig.version then
    raise
      (Environment
         (Printf.sprintf "checkpoint targets kernel %s, not %s"
            (Version.to_string s.sn_kernel)
            (Version.to_string config.Kconfig.version)));
  if s.sn_sanitize <> config.Kconfig.sanitize
     || s.sn_unprivileged <> config.Kconfig.unprivileged
     || s.sn_witness <> config.Kconfig.witness
     || s.sn_lint <> config.Kconfig.lint then
    raise (Environment "checkpoint was taken under a different config");
  if s.sn_merged then
    raise
      (Environment
         "checkpoint is a merged artifact (bvf merge): it has no RNG \
          stream to continue and cannot be resumed");
  (* Deep-copy the snapshot before mutating anything in it.  A snapshot
     loaded from disk is already private, but an in-memory one shares
     its hashtables, corpus and coverage with whichever campaign took
     it: resuming such a snapshot twice used to double-count reboots
     (and every later counter) because both resumed campaigns mutated
     the same stats record.  The copy makes resume a pure function of
     the snapshot value, matching the from-disk semantics. *)
  let s : snapshot = Marshal.from_string (Marshal.to_string s []) 0 in
  let session = Loader.create ~cov:s.sn_cov ~failslab:s.sn_failslab config in
  let gen_config =
    { Gen.c_version = config.Kconfig.version;
      c_maps = standard_maps session }
  in
  s.sn_stats.st_reboots <- s.sn_stats.st_reboots + 1;
  {
    config;
    strategy;
    seed = s.sn_seed;
    rng = Rng.of_state s.sn_rng;
    failslab = s.sn_failslab;
    cov = s.sn_cov;
    corpus = s.sn_corpus;
    stats = s.sn_stats;
    session;
    gen_config;
    sample_every;
    telemetry;
    log_level;
    prof;
  }

(* -- Driving ----------------------------------------------------------- *)

let run_t ?(sample_every = 64) ?telemetry ?log_level ?prof
    ?checkpoint_every ?checkpoint_path ?failslab ?resume_from ?skip
    ?stop ?on_step ~(seed : int) ~(iterations : int)
    (strategy : strategy) (config : Kconfig.t) : t =
  let c =
    match resume_from with
    | Some s ->
      resume ~sample_every ?telemetry ?log_level ?prof strategy config s
    | None ->
      create ~sample_every ?telemetry ?log_level ?prof ?failslab ~seed
        strategy config
  in
  (* A checkpoint is a barrier: write the snapshot, then reboot, so the
     file plus a fresh kernel fully determines the continuation.  The
     barrier cadence is absolute (st_generated), so a resumed campaign
     hits the same barriers the uninterrupted one does. *)
  let at_barrier () =
    match checkpoint_every with
    | Some n when n > 0 -> c.stats.st_generated mod n = 0
    | Some _ | None -> false
  in
  let save_now () =
    match checkpoint_path with
    | Some path -> begin
        match
          Bvf_util.Prof.span c.prof "checkpoint" (fun () ->
              save_checkpoint c ~path)
        with
        | Ok () ->
          Telemetry.emit c.telemetry
            (Telemetry.Checkpoint { iter = c.stats.st_generated })
        | Error e ->
          raise
            (Environment
               ("checkpoint write failed: "
                ^ Checkpoint.error_to_string e))
      end
    | None -> ()
  in
  let stopped () = match stop with Some f -> f () | None -> false in
  let exception Stop in
  (try
     for _ = 1 to iterations do
       (match skip with
        | Some f when f c.stats.st_generated -> step_skip c
        | Some _ | None -> step c);
       (* observer hook ([--progress]): runs outside the deterministic
          core, after all of the iteration's telemetry was emitted *)
       (match on_step with Some f -> f c | None -> ());
       (* an external stop (SIGINT/SIGTERM) acts as an extra barrier:
          save, then reboot, exactly the sequence a scheduled barrier
          performs — checked first so a stop landing ON a barrier runs
          the sequence once, and resume replays the same continuation
          either way *)
       if stopped () then begin
         save_now ();
         reboot c;
         raise Stop
       end
       else if at_barrier () then begin
         save_now ();
         reboot c
       end
     done
   with Stop -> ());
  (* closing sample: when the final iteration already landed on a
     sample_every boundary (or the campaign is finalized twice, e.g.
     resumed for zero further iterations) the curve would carry the same
     iteration twice, double-counting it in the digest and in plotted
     curves — drop any prior sample at this iteration first *)
  let final =
    { sa_iteration = c.stats.st_generated;
      sa_edges = Coverage.edge_count c.cov }
  in
  c.stats.st_curve <-
    final
    :: List.filter
      (fun sa -> sa.sa_iteration <> final.sa_iteration)
      c.stats.st_curve;
  c

let run ?sample_every ?telemetry ?log_level ?prof ?checkpoint_every
    ?checkpoint_path ?failslab ?resume_from ?skip ?stop ?on_step
    ~(seed : int) ~(iterations : int) (strategy : strategy)
    (config : Kconfig.t) : stats =
  (run_t ?sample_every ?telemetry ?log_level ?prof ?checkpoint_every
     ?checkpoint_path ?failslab ?resume_from ?skip ?stop ?on_step ~seed
     ~iterations strategy config)
    .stats

let pp_summary fmt (s : stats) : unit =
  Format.fprintf fmt
    "%s on %s: %d programs, %.1f%% accepted, %d edges, %d findings (%d bugs, %d correctness), %d reboots@."
    s.st_tool
    (Version.to_string s.st_version)
    s.st_generated
    (100.0 *. acceptance_rate s)
    s.st_edges
    (Hashtbl.length s.st_findings)
    (List.length (bugs_found s))
    (List.length (correctness_bugs_found s))
    s.st_reboots;
  if s.st_env_errors > 0 || s.st_retries > 0 || s.st_quarantined > 0 then
    Format.fprintf fmt
      "  environment: %d transient errors (%d retried away), %d corpus entries quarantined@."
      s.st_env_errors s.st_retries s.st_quarantined;
  if s.st_skipped > 0 then
    Format.fprintf fmt
      "  supervision: %d iterations skipped as harness-crash quarantine@."
      s.st_skipped;
  if s.st_lint > 0 then
    Format.fprintf fmt "  lint: %d invariant violations@." s.st_lint;
  Vstats.pp_agg fmt s.st_vstats
