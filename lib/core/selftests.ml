open Cimport

(* A deterministic corpus standing in for the kernel's verifier
   self-tests (tools/testing/selftests/bpf): the dataset of the paper's
   sanitation-overhead experiment (section 6.4).  The paper uses the 708
   manually-written self-test programs that contain load/store
   instructions; we reproduce the same shape with parametric families of
   load/store-bearing programs plus structured-generator output under
   fixed seeds, all verified to pass the (fixed) verifier. *)

let target_count = 708

(* -- Hand-built parametric families ------------------------------------ *)

let stack_rw (n : int) : Insn.t list =
  let stores =
    List.init n (fun i ->
        Asm.st_dw Insn.R10 (-8 * (1 + (i mod 8))) (Int32.of_int i))
  in
  let loads =
    List.init (max 1 (n / 2)) (fun i ->
        Asm.ldx_dw Insn.R2 Insn.R10 (-8 * (1 + (i mod 8))))
  in
  stores @ loads @ Asm.ret 0l

(* Stack accessed through a copied pointer, as the kernel's spill/fill
   self-tests do: these are NOT R10-direct, so the sanitizer must
   instrument them. *)
let stack_via_copy (n : int) : Insn.t list =
  [ Asm.mov64_reg Insn.R6 Insn.R10;
    Asm.alu64_imm Insn.Add Insn.R6 (-64l) ]
  @ List.concat
    (List.init n (fun i ->
         [ Asm.st_dw Insn.R6 (8 * (i mod 8)) (Int32.of_int i);
           Asm.ldx_dw Insn.R3 Insn.R6 (8 * (i mod 8)) ]))
  @ Asm.ret 0l

let alu_store (n : int) : Insn.t list =
  let ops =
    List.concat
      (List.init n (fun i ->
           [ Asm.mov64_imm Insn.R3 (Int32.of_int (i * 3));
             Asm.alu64_imm Insn.Add Insn.R3 7l;
             Asm.alu64_imm Insn.Lsh Insn.R3 (Int32.of_int (i mod 8));
             Asm.stx_dw Insn.R10 Insn.R3 (-8 * (1 + (i mod 4))) ]))
  in
  ops @ Asm.ret 0l

let branch_store (n : int) : Insn.t list =
  let arms =
    List.concat
      (List.init n (fun i ->
           [ Asm.mov64_imm Insn.R4 (Int32.of_int i);
             Asm.jmp_imm Insn.Jgt Insn.R4 (Int32.of_int (i / 2)) 1;
             Asm.st_w Insn.R10 (-4 * (1 + (i mod 16))) 11l ]))
  in
  (Asm.st_dw Insn.R10 (-64) 0l :: arms) @ Asm.ret 0l

let ctx_read (pt : Prog.prog_type) (n : int) : Insn.t list =
  let layout = Prog.ctx_layout pt in
  let fields =
    List.filter (fun f -> f.Prog.fkind = Prog.Fk_scalar) layout.Prog.fields
  in
  let reads =
    List.init n (fun i ->
        let f = List.nth fields (i mod List.length fields) in
        let sz =
          match f.Prog.fsize with
          | 1 -> Insn.B | 2 -> Insn.H | 4 -> Insn.W | _ -> Insn.DW
        in
        Asm.ldx sz Insn.R2 Insn.R1 f.Prog.foff)
  in
  reads
  @ [ Asm.stx_dw Insn.R10 Insn.R2 (-8) ]
  @ Asm.ret 0l

let map_lookup_rw (fd : int) (writes : int) : Insn.t list =
  [ Asm.st_dw Insn.R10 (-8) 0l;
    Asm.ld_map_fd Insn.R1 fd;
    Asm.mov64_reg Insn.R2 Insn.R10;
    Asm.alu64_imm Insn.Add Insn.R2 (-8l);
    Asm.call Helper.map_lookup_elem.Helper.id;
    Asm.jmp_imm Insn.Jne Insn.R0 0l 2;
    Asm.mov64_imm Insn.R0 0l;
    Asm.exit_ ]
  @ List.init writes (fun i ->
      Asm.st_dw Insn.R0 (8 * (i mod 5)) (Int32.of_int i))
  @ Asm.ret 0l

let map_value_direct (fd : int) (n : int) : Insn.t list =
  Asm.ld_map_value Insn.R6 fd 0
  :: List.concat
    (List.init n (fun i ->
         [ Asm.st_w Insn.R6 (4 * (i mod 10)) (Int32.of_int i);
           Asm.ldx_w Insn.R7 Insn.R6 (4 * (i mod 10)) ]))
  @ Asm.ret 1l

let atomic_family (fd : int) (n : int) : Insn.t list =
  [ Asm.ld_map_value Insn.R6 fd 0; Asm.mov64_imm Insn.R3 1l ]
  @ List.init n (fun i ->
      Asm.atomic ~fetch:(i mod 2 = 0) Insn.DW
        (match i mod 4 with
         | 0 -> Insn.A_add | 1 -> Insn.A_or | 2 -> Insn.A_and
         | _ -> Insn.A_xor)
        Insn.R6 Insn.R3 (8 * (i mod 4)))
  @ Asm.ret 0l

let packet_family (n : int) : Insn.t list =
  (* load data/data_end, prove 8+8k bytes, read them *)
  [ Asm.ldx_w Insn.R2 Insn.R1 0;   (* xdp data *)
    Asm.ldx_w Insn.R3 Insn.R1 4;   (* xdp data_end *)
    Asm.mov64_reg Insn.R4 Insn.R2;
    Asm.alu64_imm Insn.Add Insn.R4 (Int32.of_int (8 * n));
    Asm.jmp_reg Insn.Jgt Insn.R4 Insn.R3 (n + 1) ]
  @ List.init n (fun i -> Asm.ldx_dw Insn.R5 Insn.R2 (8 * i))
  @ [ Asm.ja 0 ]
  @ Asm.ret 2l

(* -- Assembly into verified requests ------------------------------------ *)

type suite = {
  session : Loader.t;
  requests : Verifier.request list; (* all pass the fixed verifier *)
}

let build ?(count = target_count) ?config (version : Version.t) : suite =
  (* a fixed kernel: self-tests must pass a correct verifier.  [config]
     overrides it for instrumented builds (invariant lint, witness
     recording) — still a fixed verifier, just with extra observers. *)
  let config =
    match config with Some c -> c | None -> Kconfig.fixed version
  in
  let session = Loader.create config in
  let array_fd =
    Loader.create_map session (Map.array_def ~value_size:48 ())
  in
  let hash_fd =
    Loader.create_map session (Map.hash_def ~key_size:8 ~value_size:48 ())
  in
  let maps =
    [ (array_fd, Map.array_def ~value_size:48 ());
      (hash_fd, Map.hash_def ~key_size:8 ~value_size:48 ()) ]
  in
  let hand =
    List.concat
      [
        List.init 25 (fun i ->
            Verifier.request Prog.Socket_filter
              (Array.of_list (stack_rw (1 + i))));
        List.init 35 (fun i ->
            Verifier.request Prog.Socket_filter
              (Array.of_list (stack_via_copy (1 + i))));
        List.init 20 (fun i ->
            Verifier.request Prog.Kprobe
              (Array.of_list (alu_store (1 + i))));
        List.init 20 (fun i ->
            Verifier.request Prog.Socket_filter
              (Array.of_list (branch_store (1 + i))));
        List.init 25 (fun i ->
            Verifier.request Prog.Socket_filter
              (Array.of_list (ctx_read Prog.Socket_filter (1 + i))));
        List.init 25 (fun i ->
            Verifier.request Prog.Kprobe
              (Array.of_list (ctx_read Prog.Kprobe (1 + i))));
        List.init 35 (fun i ->
            Verifier.request Prog.Socket_filter
              (Array.of_list (map_lookup_rw hash_fd (1 + i))));
        List.init 35 (fun i ->
            Verifier.request Prog.Socket_filter
              (Array.of_list (map_value_direct array_fd (1 + i))));
        List.init 20 (fun i ->
            Verifier.request Prog.Socket_filter
              (Array.of_list (atomic_family array_fd (1 + i))));
        List.init 10 (fun i ->
            Verifier.request Prog.Xdp
              (Array.of_list (packet_family (1 + i))));
      ]
  in
  (* top up with structured-generator programs under fixed seeds,
     keeping only accepted programs containing load/store *)
  let cov = Coverage.create () in
  let has_mem_access (req : Verifier.request) : bool =
    (* real load/store self-tests are memory-dense: require a quarter
       of the instructions to be accesses *)
    let mem =
      Array.fold_left
        (fun acc i ->
           match i with
           | Insn.Ldx _ | Insn.St _ | Insn.Stx _ | Insn.Atomic _ ->
             acc + 1
           | _ -> acc)
        0 req.Verifier.r_insns
    in
    mem * 4 >= Array.length req.Verifier.r_insns
  in
  let accepted (req : Verifier.request) : bool =
    (* self-tests never rely on attach points or offloading *)
    req.Verifier.r_attach = None
    && (not req.Verifier.r_offload)
    && Result.is_ok (Verifier.verify session.Loader.kst ~cov req)
  in
  let hand = List.filter accepted hand in
  let gen_cfg = { Gen.c_version = version; c_maps = maps } in
  let rec top_up acc n seed =
    if n <= 0 || seed > 50_000 then List.rev acc
    else begin
      let rng = Rng.create seed in
      let req = Gen.generate rng gen_cfg in
      let req = { req with Verifier.r_attach = None; r_offload = false } in
      if has_mem_access req && accepted req then
        top_up (req :: acc) (n - 1) (seed + 1)
      else top_up acc n (seed + 1)
    end
  in
  let extra = top_up [] (count - List.length hand) 1 in
  { session; requests = hand @ extra }
