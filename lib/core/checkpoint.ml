(* Durable, crash-resilient snapshots.

   A checkpoint file is a small self-describing container:

     line 1   BVF-CHECKPOINT <format> <tag>\n     (ASCII header)
     line 2   <md5 hex of payload>\n             (integrity digest)
     rest     payload (marshalled OCaml value)

   The [tag] names the payload schema (e.g. "campaign/1") so a reader
   never unmarshals bytes written by a different producer or an older
   schema; the digest catches truncation and corruption from a crash
   mid-write.  Writes are atomic: the file is assembled at
   [path ^ ".tmp"], fsynced, then renamed over [path], so a campaign
   killed at any instant leaves either the previous checkpoint or the
   new one — never a torn file.  This is the standard
   write-leader-then-rename durability pattern of corpus databases in
   long-lived fuzzers (syzkaller's corpus.db, AFL's queue). *)

let magic = "BVF-CHECKPOINT"
let format_version = 1

type error =
  | Io of string                 (* open/read/write/rename failure *)
  | Bad_magic                    (* not a checkpoint file *)
  | Tag_mismatch of { expected : string; found : string }
  | Corrupt of string            (* digest mismatch, truncation, ... *)

let error_to_string = function
  | Io msg -> Printf.sprintf "i/o error: %s" msg
  | Bad_magic -> "not a BVF checkpoint file"
  | Tag_mismatch { expected; found } ->
    Printf.sprintf "checkpoint holds %S, expected %S" found expected
  | Corrupt msg -> Printf.sprintf "corrupt checkpoint: %s" msg

let valid_tag (tag : string) : bool =
  tag <> ""
  && String.for_all
       (fun c -> c <> ' ' && c <> '\n' && c <> '\r')
       tag

(* -- Writing ----------------------------------------------------------- *)

let save ~(path : string) ~(tag : string) (value : 'a) :
  (unit, error) result =
  if not (valid_tag tag) then
    invalid_arg "Checkpoint.save: tag must be non-empty and spaceless";
  let payload = Marshal.to_string value [] in
  let header =
    Printf.sprintf "%s %d %s\n%s\n" magic format_version tag
      (Digest.to_hex (Digest.string payload))
  in
  let tmp = path ^ ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
         output_string oc header;
         output_string oc payload;
         flush oc);
    (* write-then-rename: readers only ever observe complete files *)
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg ->
    (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
    Error (Io msg)

(* -- Reading ----------------------------------------------------------- *)

let read_file (path : string) : (string, error) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> Ok contents
  | exception Sys_error msg -> Error (Io msg)
  | exception End_of_file -> Error (Corrupt "truncated while reading")

let load ~(path : string) ~(tag : string) : ('a, error) result =
  match read_file path with
  | Error _ as e -> e
  | Ok contents ->
    match String.index_opt contents '\n' with
    | None -> Error Bad_magic
    | Some nl1 ->
      let header = String.sub contents 0 nl1 in
      (match String.split_on_char ' ' header with
       | [ m; v; found_tag ] when m = magic ->
         if v <> string_of_int format_version then
           Error
             (Corrupt (Printf.sprintf "format version %s, expected %d" v
                         format_version))
         else if found_tag <> tag then
           Error (Tag_mismatch { expected = tag; found = found_tag })
         else begin
           match String.index_from_opt contents (nl1 + 1) '\n' with
           | None -> Error (Corrupt "missing digest line")
           | Some nl2 ->
             let digest = String.sub contents (nl1 + 1) (nl2 - nl1 - 1) in
             let payload =
               String.sub contents (nl2 + 1)
                 (String.length contents - nl2 - 1)
             in
             if Digest.to_hex (Digest.string payload) <> digest then
               Error (Corrupt "payload digest mismatch")
             else begin
               (* a digest collision or a file written by a different
                  build can still hand Marshal undecodable bytes; any
                  exception here is a corrupt file, never a crash *)
               match Marshal.from_string payload 0 with
               | v -> Ok v
               | exception e -> Error (Corrupt (Printexc.to_string e))
             end
         end
       | _ -> Error Bad_magic)
