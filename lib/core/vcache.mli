(** Content-addressed verdict cache: the service layer's front tier.

    Verification is deterministic — verdict, canonical rejection
    message, capped log and performance counters are a pure function of
    (program bytes, map specs, kernel config) — so a verdict computed
    once can be replayed for every later submission of the same program
    under the same configuration.  {!key} canonicalizes those three
    inputs ({!Bvf_verifier.Verifier.request_fingerprint},
    [maps_fingerprint], [config_fingerprint]); the cache maps keys to
    {!verdict} records.

    Two tiers: an in-memory LRU (bounded by [cap], strict recency
    eviction) and an optional on-disk tier reusing the {!Checkpoint}
    atomic write-then-rename container — a service restart reloads its
    warmed state, and a torn or corrupt file is an [Error], never an
    exception.

    Soundness and the invalidation rules (config change, verifier ABI
    bump, schema tag bump) are documented in docs/SERVICE.md. *)

(** The cached outcome of one verification: everything
    {!Bvf_verifier.Verifier.load_with_stats} reports except the loaded
    program itself (program ids are per-session, so the rewritten
    instruction stream is recomputed on demand, never cached). *)
type verdict = {
  cv_accepted : bool;
  cv_insns : int;
      (** post-rewrite instruction count when accepted; the original
          count when rejected *)
  cv_insn_processed : int;  (** verification effort *)
  cv_errno : string;        (** kernel-style errno name; [""] on accept *)
  cv_reason : Bvf_verifier.Reject_reason.t option;
      (** rejection taxonomy bucket; [None] on accept *)
  cv_pc : int;              (** rejection pc; 0 on accept *)
  cv_msg : string;          (** canonical rejection message; [""] on accept *)
  cv_vlog : string;         (** verifier log, capped at {!vlog_cap} *)
  cv_vstats : Bvf_verifier.Vstats.t option;
      (** performance counters; [None] when the load failed before an
          analysis environment existed *)
}

val vlog_cap : int
(** Byte cap on a cached verifier log (64 KiB).  Service responses are
    meant to be cheap to store by the million; a level-2 log of a
    branchy program is not.  Truncation appends a marker line, exactly
    like {!Bvf_verifier.Vlog}. *)

val cap_vlog : string -> string
(** Apply {!vlog_cap} to a log string (identity when under the cap). *)

type t

val create : cap:int -> t
(** An empty cache evicting strictly least-recently-used entries beyond
    [cap].
    @raise Invalid_argument when [cap < 1]. *)

val cap : t -> int
val length : t -> int

val key : config_fp:string -> maps_fp:string ->
  Bvf_verifier.Verifier.request -> string
(** The cache key: hex digest over the config fingerprint, map
    fingerprint and the request's canonical bytes. *)

val find : t -> string -> verdict option
(** Lookup; a hit refreshes the entry's recency and bumps the hit
    counter, a miss bumps the miss counter. *)

val insert : t -> string -> verdict -> unit
(** Insert (or refresh) a verdict, evicting the least recently used
    entry when the cache is full. *)

(** Monotonic operation counters (never part of any result: cache
    traffic is an observation, not an outcome). *)
type stats = {
  cs_hits : int;
  cs_misses : int;
  cs_insertions : int;
  cs_evictions : int;
}

val stats : t -> stats

val entries : t -> (string * verdict) list
(** Every entry, most recently used first. *)

(** {1 On-disk tier}

    A saved cache is a {!Checkpoint} container (tag
    ["bvf-vcache/1"]).  Bump the tag whenever the {!verdict} schema
    changes: stale files then fail with [Tag_mismatch] instead of
    unmarshalling garbage. *)

val tag : string

val save : t -> path:string -> (unit, Checkpoint.error) result
(** Atomically persist the entries (recency order preserved).  The
    operation counters are not persisted — a reloaded cache starts
    cold-counted but warm-keyed. *)

val load : path:string -> cap:int -> (t, Checkpoint.error) result
(** Reload a saved cache under a (possibly different) [cap]: the most
    recently used [cap] entries survive.  Any damage — truncation, bit
    flips, a foreign tag — is an [Error], never an exception, exactly
    like {!Checkpoint.load}. *)
