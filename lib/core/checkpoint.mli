(** Durable, crash-resilient snapshots.

    A checkpoint file is a self-describing container: an ASCII header
    naming the payload schema ([tag]), an MD5 integrity digest, and a
    marshalled payload.  Writes are atomic (write to [path ^ ".tmp"],
    then rename), so a process killed at any instant leaves either the
    previous checkpoint or the new one — never a torn file.

    The payload type is the caller's contract: a value saved under a
    [tag] must always be loaded at the same type under the same [tag].
    Bump the tag (e.g. ["campaign/1"] → ["campaign/2"]) whenever the
    payload schema changes; stale files then fail with
    [Tag_mismatch] instead of unmarshalling garbage. *)

type error =
  | Io of string
  | Bad_magic                  (** not a checkpoint file *)
  | Tag_mismatch of { expected : string; found : string }
  | Corrupt of string          (** digest mismatch, truncation, ... *)

val error_to_string : error -> string

val save : path:string -> tag:string -> 'a -> (unit, error) result
(** Atomically persist [value] under [tag].
    @raise Invalid_argument when [tag] is empty or contains spaces or
    newlines. *)

val load : path:string -> tag:string -> ('a, error) result
(** Read back a value saved with the same [tag].  The annotated result
    type must match the saved type — enforce this by pairing each tag
    with exactly one type at the call sites. *)
