(* Campaign telemetry: JSONL event stream + the bvf stats aggregation.

   The encoder and parser are hand-rolled: the schema is flat (string /
   int / float / bool fields, one object per line), and the repository
   deliberately has no JSON dependency.  The parser accepts any
   whitespace and field order, so traces survive hand-editing and
   foreign tooling; lines it cannot parse are skipped, not fatal.

   Determinism contract (tested by test_telemetry): campaign-emitted
   events carry no wall-clock times, so same-seed traces are
   byte-identical; the only timed record, Profile, is appended by the
   CLI after the run. *)

module Reject_reason = Bvf_verifier.Reject_reason

type event =
  | Generated of { iter : int; prog_type : string; insns : int }
  | Accepted of {
      iter : int;
      prog_type : string;
      insns : int;
      insn_processed : int;
    }
  | Rejected of {
      iter : int;
      prog_type : string;
      reason : Reject_reason.t;
      errno : string;
      pc : int;
      msg : string;
    }
  | Finding of {
      iter : int;
      fingerprint : string;
      bug : string option;
      correctness : bool;
    }
  | Vstats of {
      iter : int;
      insn_processed : int;
      total_states : int;
      peak_states : int;
      max_states_per_insn : int;
      prune_hits : int;
      prune_misses : int;
      loops_detected : int;
      branch_hwm : int;
      widen_rounds : int;
      loop_heads : int;
    }
  | Checkpoint of { iter : int }
  | Quarantined of { iter : int }
  | Shard_merge of { shards : int; events : int }
  | Profile of {
      programs : int;
      gen_s : float;
      verify_s : float;
      sanitize_s : float;
      exec_s : float;
      wall_s : float;
      (* per-phase minor-words attribution; zero in traces written
         before the fields existed *)
      gen_w : float;
      verify_w : float;
      sanitize_w : float;
      exec_w : float;
    }
  (* service (bvf batch / bvf serve) admission events: one cache event
     and one verdict event per request, keyed by the request's verdict
     cache key.  Deterministic except for the hit/miss split, which
     depends on what the cache has seen — which is why batch results
     carry the verdicts, and only traces carry the cache traffic. *)
  | Service_hit of { seq : int; key : string }
  | Service_miss of { seq : int; key : string }
  | Service_admitted of {
      seq : int;
      key : string;
      insns : int;
      insn_processed : int;
    }
  | Service_rejected of {
      seq : int;
      key : string;
      reason : Bvf_verifier.Reject_reason.t;
    }

let iter_of = function
  | Generated { iter; _ } | Accepted { iter; _ } | Rejected { iter; _ }
  | Finding { iter; _ } | Vstats { iter; _ } | Checkpoint { iter }
  | Quarantined { iter } ->
    Some iter
  | Service_hit { seq; _ } | Service_miss { seq; _ }
  | Service_admitted { seq; _ } | Service_rejected { seq; _ } ->
    Some seq
  | Shard_merge _ | Profile _ -> None

(* -- JSON encoding -------------------------------------------------- *)

let escape (b : Buffer.t) (s : string) : unit =
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\t' -> Buffer.add_string b "\\t"
       | '\r' -> Buffer.add_string b "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s

(* Floats as %.6f: sub-microsecond precision is noise for phase timers,
   and the fixed format round-trips through the parser losslessly
   enough for aggregation. *)
let to_json (ev : event) : string =
  let b = Buffer.create 96 in
  let str k v =
    Printf.bprintf b ",\"%s\":\"" k; escape b v; Buffer.add_char b '"'
  in
  let int k v = Printf.bprintf b ",\"%s\":%d" k v in
  let flt k v = Printf.bprintf b ",\"%s\":%.6f" k v in
  let bol k v = Printf.bprintf b ",\"%s\":%b" k v in
  let tag name = Printf.bprintf b "{\"ev\":\"%s\"" name in
  (match ev with
   | Generated { iter; prog_type; insns } ->
     tag "generated"; int "iter" iter; str "prog_type" prog_type;
     int "insns" insns
   | Accepted { iter; prog_type; insns; insn_processed } ->
     tag "accepted"; int "iter" iter; str "prog_type" prog_type;
     int "insns" insns; int "insn_processed" insn_processed
   | Rejected { iter; prog_type; reason; errno; pc; msg } ->
     tag "rejected"; int "iter" iter; str "prog_type" prog_type;
     str "reason" (Reject_reason.to_string reason); str "errno" errno;
     int "pc" pc; str "msg" msg
   | Finding { iter; fingerprint; bug; correctness } ->
     tag "finding"; int "iter" iter; str "fingerprint" fingerprint;
     (match bug with Some bug -> str "bug" bug | None -> ());
     bol "correctness" correctness
   | Vstats { iter; insn_processed; total_states; peak_states;
              max_states_per_insn; prune_hits; prune_misses;
              loops_detected; branch_hwm; widen_rounds; loop_heads } ->
     tag "vstats"; int "iter" iter; int "insn_processed" insn_processed;
     int "total_states" total_states; int "peak_states" peak_states;
     int "max_states_per_insn" max_states_per_insn;
     int "prune_hits" prune_hits; int "prune_misses" prune_misses;
     int "loops_detected" loops_detected; int "branch_hwm" branch_hwm;
     int "widen_rounds" widen_rounds; int "loop_heads" loop_heads
   | Checkpoint { iter } -> tag "checkpoint"; int "iter" iter
   | Quarantined { iter } -> tag "quarantined"; int "iter" iter
   | Service_hit { seq; key } ->
     tag "cache_hit"; int "seq" seq; str "key" key
   | Service_miss { seq; key } ->
     tag "cache_miss"; int "seq" seq; str "key" key
   | Service_admitted { seq; key; insns; insn_processed } ->
     tag "service_admitted"; int "seq" seq; str "key" key;
     int "insns" insns; int "insn_processed" insn_processed
   | Service_rejected { seq; key; reason } ->
     tag "service_rejected"; int "seq" seq; str "key" key;
     str "reason" (Reject_reason.to_string reason)
   | Shard_merge { shards; events } ->
     tag "shard_merge"; int "shards" shards; int "events" events
   | Profile { programs; gen_s; verify_s; sanitize_s; exec_s; wall_s;
               gen_w; verify_w; sanitize_w; exec_w } ->
     (* minor words are whole counts: %.0f keeps the lines short *)
     let wrd k v = Printf.bprintf b ",\"%s\":%.0f" k v in
     tag "profile"; int "programs" programs; flt "gen_s" gen_s;
     flt "verify_s" verify_s; flt "sanitize_s" sanitize_s;
     flt "exec_s" exec_s; flt "wall_s" wall_s;
     wrd "gen_w" gen_w; wrd "verify_w" verify_w;
     wrd "sanitize_w" sanitize_w; wrd "exec_w" exec_w);
  Buffer.add_char b '}';
  Buffer.contents b

(* -- JSON parsing --------------------------------------------------- *)

(* A flat-object parser: strings, numbers, booleans and null.  Nested
   containers are not part of the schema and are rejected. *)
type jvalue = Jstr of string | Jnum of float | Jbool of bool | Jnull

exception Parse

let parse_object (s : string) : (string * jvalue) list =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise Parse in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do advance () done
  in
  let expect c = if peek () <> c then raise Parse else advance () in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
           if !pos + 4 >= n then raise Parse;
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             try int_of_string ("0x" ^ hex) with _ -> raise Parse
           in
           pos := !pos + 4;
           (* schema only ever emits control chars this way *)
           if code < 0x100 then Buffer.add_char b (Char.chr code)
           else Buffer.add_char b '?'
         | _ -> raise Parse);
        advance (); go ()
      | c -> advance (); Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_scalar () =
    match peek () with
    | '"' -> Jstr (parse_string ())
    | 't' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "true"
      then (pos := !pos + 4; Jbool true) else raise Parse
    | 'f' ->
      if !pos + 5 <= n && String.sub s !pos 5 = "false"
      then (pos := !pos + 5; Jbool false) else raise Parse
    | 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null"
      then (pos := !pos + 4; Jnull) else raise Parse
    | '-' | '0' .. '9' ->
      let start = !pos in
      while !pos < n && (match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false)
      do advance () done;
      (try Jnum (float_of_string (String.sub s start (!pos - start)))
       with _ -> raise Parse)
    | _ -> raise Parse
  in
  skip_ws ();
  expect '{';
  skip_ws ();
  if peek () = '}' then (advance (); [])
  else begin
    let fields = ref [] in
    let rec member () =
      skip_ws ();
      let key = parse_string () in
      skip_ws ();
      expect ':';
      skip_ws ();
      fields := (key, parse_scalar ()) :: !fields;
      skip_ws ();
      match peek () with
      | ',' -> advance (); member ()
      | '}' -> advance ()
      | _ -> raise Parse
    in
    member ();
    skip_ws ();
    if !pos <> n then raise Parse;
    List.rev !fields
  end

let of_json (line : string) : event option =
  match
    let fields = parse_object (String.trim line) in
    let str k =
      match List.assoc_opt k fields with
      | Some (Jstr s) -> s
      | _ -> raise Parse
    in
    let str_opt k =
      match List.assoc_opt k fields with
      | Some (Jstr s) -> Some s
      | _ -> None
    in
    let int k =
      match List.assoc_opt k fields with
      | Some (Jnum f) -> int_of_float f
      | _ -> raise Parse
    in
    let flt k =
      match List.assoc_opt k fields with
      | Some (Jnum f) -> f
      | _ -> raise Parse
    in
    let bol k =
      match List.assoc_opt k fields with
      | Some (Jbool b) -> b
      | _ -> raise Parse
    in
    match str "ev" with
    | "generated" ->
      Some (Generated { iter = int "iter"; prog_type = str "prog_type";
                        insns = int "insns" })
    | "accepted" ->
      Some (Accepted { iter = int "iter"; prog_type = str "prog_type";
                       insns = int "insns";
                       insn_processed = int "insn_processed" })
    | "rejected" ->
      let reason =
        match Reject_reason.of_string (str "reason") with
        | Some r -> r
        | None -> Reject_reason.Unknown
      in
      Some (Rejected { iter = int "iter"; prog_type = str "prog_type";
                       reason; errno = str "errno"; pc = int "pc";
                       msg = str "msg" })
    | "finding" ->
      Some (Finding { iter = int "iter"; fingerprint = str "fingerprint";
                      bug = str_opt "bug";
                      correctness = bol "correctness" })
    | "vstats" ->
      (* the widening counters postdate the vstats schema: traces
         written before them parse with the counters at zero *)
      let int0 k =
        match List.assoc_opt k fields with
        | Some (Jnum f) -> int_of_float f
        | _ -> 0
      in
      Some (Vstats { iter = int "iter";
                     insn_processed = int "insn_processed";
                     total_states = int "total_states";
                     peak_states = int "peak_states";
                     max_states_per_insn = int "max_states_per_insn";
                     prune_hits = int "prune_hits";
                     prune_misses = int "prune_misses";
                     loops_detected = int "loops_detected";
                     branch_hwm = int "branch_hwm";
                     widen_rounds = int0 "widen_rounds";
                     loop_heads = int0 "loop_heads" })
    | "checkpoint" -> Some (Checkpoint { iter = int "iter" })
    | "quarantined" -> Some (Quarantined { iter = int "iter" })
    | "cache_hit" ->
      Some (Service_hit { seq = int "seq"; key = str "key" })
    | "cache_miss" ->
      Some (Service_miss { seq = int "seq"; key = str "key" })
    | "service_admitted" ->
      Some (Service_admitted { seq = int "seq"; key = str "key";
                               insns = int "insns";
                               insn_processed = int "insn_processed" })
    | "service_rejected" ->
      let reason =
        match Reject_reason.of_string (str "reason") with
        | Some r -> r
        | None -> Reject_reason.Unknown
      in
      Some (Service_rejected { seq = int "seq"; key = str "key"; reason })
    | "shard_merge" ->
      Some (Shard_merge { shards = int "shards"; events = int "events" })
    | "profile" ->
      (* the minor-words fields postdate the profile schema: traces
         written before them parse with the attribution at zero *)
      let flt0 k =
        match List.assoc_opt k fields with
        | Some (Jnum f) -> f
        | _ -> 0.
      in
      Some (Profile { programs = int "programs"; gen_s = flt "gen_s";
                      verify_s = flt "verify_s";
                      sanitize_s = flt "sanitize_s"; exec_s = flt "exec_s";
                      wall_s = flt "wall_s";
                      gen_w = flt0 "gen_w"; verify_w = flt0 "verify_w";
                      sanitize_w = flt0 "sanitize_w";
                      exec_w = flt0 "exec_w" })
    | _ -> None
  with
  | ev -> ev
  | exception Parse -> None

(* -- Sinks ---------------------------------------------------------- *)

type sink = {
  oc : out_channel option;
  iter_map : int -> int;
  mutable closed : bool;
}

let null = { oc = None; iter_map = (fun i -> i); closed = false }

let create ?(iter_map = fun i -> i) (path : string) : sink =
  { oc = Some (open_out path); iter_map; closed = false }

let map_iter (f : int -> int) (ev : event) : event =
  match ev with
  | Generated e -> Generated { e with iter = f e.iter }
  | Accepted e -> Accepted { e with iter = f e.iter }
  | Rejected e -> Rejected { e with iter = f e.iter }
  | Finding e -> Finding { e with iter = f e.iter }
  | Vstats e -> Vstats { e with iter = f e.iter }
  | Checkpoint { iter } -> Checkpoint { iter = f iter }
  | Quarantined { iter } -> Quarantined { iter = f iter }
  (* service traces are never sharded: the sequence number is already
     global *)
  | Service_hit _ | Service_miss _ | Service_admitted _
  | Service_rejected _
  | Shard_merge _ | Profile _ -> ev

let emit (t : sink) (ev : event) : unit =
  match t.oc with
  | None -> ()
  | Some oc ->
    if not t.closed then begin
      output_string oc (to_json (map_iter t.iter_map ev));
      output_char oc '\n'
    end

let flush (t : sink) : unit =
  match t.oc with
  | Some oc when not t.closed -> Stdlib.flush oc
  | Some _ | None -> ()

let pos (t : sink) : int =
  match t.oc with
  | Some oc when not t.closed -> Stdlib.flush oc; pos_out oc
  | Some _ | None -> 0

(* Reopen an existing trace for appending from [pos], discarding
   whatever a crashed writer managed to append past it.  Restarted
   supervisor workers use this: the worker checkpoint records the trace
   offset at the barrier, so replayed iterations never appear twice. *)
let reopen ?(iter_map = fun i -> i) (path : string) ~(pos : int) : sink =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  Unix.ftruncate fd pos;
  ignore (Unix.lseek fd pos Unix.SEEK_SET : int);
  { oc = Some (Unix.out_channel_of_descr fd); iter_map; closed = false }

let close (t : sink) : unit =
  match t.oc with
  | None -> ()
  | Some oc ->
    if not t.closed then begin
      t.closed <- true;
      close_out oc
    end

let read_file (path : string) : event list =
  let ic = open_in path in
  let events = ref [] in
  (try
     while true do
       match of_json (input_line ic) with
       | Some ev -> events := ev :: !events
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !events

(* Merge per-shard traces into one global trace.  Events already carry
   global iteration numbers (the shard sinks' [iter_map]), so a stable
   sort by iteration reconstructs the sequential order; records without
   an iteration sink to the end. *)
let merge_shards ~(into : string) (shard_paths : string list) : int =
  let events =
    List.concat_map
      (fun p -> if Sys.file_exists p then read_file p else [])
      shard_paths
  in
  let events =
    List.stable_sort
      (fun a b ->
         compare
           (Option.value (iter_of a) ~default:max_int)
           (Option.value (iter_of b) ~default:max_int))
      events
  in
  let sink = create into in
  List.iter (emit sink) events;
  emit sink
    (Shard_merge
       { shards = List.length shard_paths; events = List.length events });
  close sink;
  List.length events

(* -- Aggregation ---------------------------------------------------- *)

(* Distribution of one deterministic counter over the trace's vstats
   events: total plus the p50/p95 order statistics (nearest-rank on the
   sorted samples, index (p * (n-1)) / 100). *)
type dist = { d_total : int; d_p50 : int; d_p95 : int }

type vstats_summary = {
  vsu_count : int;            (* vstats events seen *)
  vsu_insn_processed : dist;
  vsu_peak_states : dist;
  vsu_widen_rounds : dist;
  vsu_loop_heads : int;       (* loop heads across all analyses *)
}

type service_summary = {
  ssu_requests : int;   (* verdict events: admitted + rejected *)
  ssu_hits : int;
  ssu_misses : int;
  ssu_admitted : int;
  ssu_rejected : int;
}

type summary = {
  su_events : int;
  su_generated : int;
  su_accepted : int;
  su_rejected : int;
  su_findings : int;
  su_checkpoints : int;
  su_quarantined : int;
  su_by_type : (string * (int * int)) list;
  su_reasons : (Reject_reason.t * int) list;
  su_vstats : vstats_summary option;
  su_service : service_summary option;
  su_profile : event option;
}

let dist_of (samples : int list) : dist =
  let a = Array.of_list samples in
  Array.sort compare a;
  { d_total = Array.fold_left ( + ) 0 a;
    d_p50 = Bvf_util.Percentile.of_sorted_int a 50;
    d_p95 = Bvf_util.Percentile.of_sorted_int a 95 }

let summarize (events : event list) : summary =
  let by_type : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  let reasons : (Reject_reason.t, int) Hashtbl.t = Hashtbl.create 8 in
  let generated = ref 0 and accepted = ref 0 and rejected = ref 0 in
  let findings = ref 0 and checkpoints = ref 0 and quarantined = ref 0 in
  let profile = ref None in
  let vs_insn = ref [] and vs_peak = ref [] and vs_count = ref 0 in
  let vs_widen = ref [] and vs_heads = ref 0 in
  let sv_hits = ref 0 and sv_misses = ref 0 in
  let sv_admitted = ref 0 and sv_rejected = ref 0 in
  let bump_type pt ~acc =
    let g, a = Option.value (Hashtbl.find_opt by_type pt) ~default:(0, 0)
    in
    Hashtbl.replace by_type pt (if acc then (g, a + 1) else (g + 1, a))
  in
  List.iter
    (fun ev ->
       match ev with
       | Generated { prog_type; _ } ->
         incr generated; bump_type prog_type ~acc:false
       | Accepted { prog_type; _ } ->
         incr accepted; bump_type prog_type ~acc:true
       | Rejected { reason; _ } ->
         incr rejected;
         Hashtbl.replace reasons reason
           (1 + Option.value (Hashtbl.find_opt reasons reason) ~default:0)
       | Finding _ -> incr findings
       | Vstats { insn_processed; peak_states; widen_rounds; loop_heads;
                  _ } ->
         incr vs_count;
         vs_insn := insn_processed :: !vs_insn;
         vs_peak := peak_states :: !vs_peak;
         vs_widen := widen_rounds :: !vs_widen;
         vs_heads := !vs_heads + loop_heads
       | Checkpoint _ -> incr checkpoints
       | Quarantined _ -> incr quarantined
       | Service_hit _ -> incr sv_hits
       | Service_miss _ -> incr sv_misses
       | Service_admitted _ -> incr sv_admitted
       | Service_rejected { reason; _ } ->
         incr sv_rejected;
         Hashtbl.replace reasons reason
           (1 + Option.value (Hashtbl.find_opt reasons reason) ~default:0)
       | Shard_merge _ -> ()
       | Profile _ -> profile := Some ev)
    events;
  {
    su_events = List.length events;
    su_generated = !generated;
    su_accepted = !accepted;
    su_rejected = !rejected;
    su_findings = !findings;
    su_checkpoints = !checkpoints;
    su_quarantined = !quarantined;
    su_by_type =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_type []
      |> List.sort compare;
    su_reasons =
      Hashtbl.fold (fun r n acc -> (r, n) :: acc) reasons []
      |> List.sort (fun (ra, na) (rb, nb) ->
          match compare nb na with
          | 0 -> compare (Reject_reason.to_string ra)
                   (Reject_reason.to_string rb)
          | c -> c);
    su_vstats =
      (if !vs_count = 0 then None
       else
         Some
           { vsu_count = !vs_count;
             vsu_insn_processed = dist_of !vs_insn;
             vsu_peak_states = dist_of !vs_peak;
             vsu_widen_rounds = dist_of !vs_widen;
             vsu_loop_heads = !vs_heads });
    su_service =
      (if !sv_hits + !sv_misses + !sv_admitted + !sv_rejected = 0 then None
       else
         Some
           { ssu_requests = !sv_admitted + !sv_rejected;
             ssu_hits = !sv_hits;
             ssu_misses = !sv_misses;
             ssu_admitted = !sv_admitted;
             ssu_rejected = !sv_rejected });
    su_profile = !profile;
  }

let unknown_rejections (s : summary) : int =
  Option.value
    (List.assoc_opt Reject_reason.Unknown s.su_reasons)
    ~default:0

let pp_summary fmt (s : summary) : unit =
  let pct a b =
    if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b
  in
  Format.fprintf fmt
    "%d events: %d generated, %d accepted (%.1f%%), %d rejected, %d findings, %d checkpoints@."
    s.su_events s.su_generated s.su_accepted
    (pct s.su_accepted s.su_generated)
    s.su_rejected s.su_findings s.su_checkpoints;
  if s.su_quarantined > 0 then
    Format.fprintf fmt "  %d iterations quarantined by the supervisor@."
      s.su_quarantined;
  if s.su_by_type <> [] then begin
    Format.fprintf fmt "@.  %-16s %10s %10s %8s@." "prog type" "generated"
      "accepted" "rate";
    List.iter
      (fun (pt, (g, a)) ->
         Format.fprintf fmt "  %-16s %10d %10d %7.1f%%@." pt g a (pct a g))
      s.su_by_type
  end;
  if s.su_reasons <> [] then begin
    Format.fprintf fmt "@.  %-20s %10s %8s@." "rejection reason" "count"
      "share";
    List.iter
      (fun (r, n) ->
         Format.fprintf fmt "  %-20s %10d %7.1f%%  (%s)@."
           (Reject_reason.to_string r) n (pct n s.su_rejected)
           (Reject_reason.describe r))
      s.su_reasons
  end;
  (match s.su_service with
   | Some sv ->
     Format.fprintf fmt
       "@.  service: %d requests, %d admitted, %d rejected; cache %d hits / %d misses (%.1f%% hit rate)@."
       sv.ssu_requests sv.ssu_admitted sv.ssu_rejected sv.ssu_hits
       sv.ssu_misses
       (pct sv.ssu_hits (sv.ssu_hits + sv.ssu_misses))
   | None -> ());
  (match s.su_vstats with
   | Some v ->
     Format.fprintf fmt
       "@.  verifier over %d analyses: insn_processed total %d (p50 %d, p95 %d), peak_states total %d (p50 %d, p95 %d)@."
       v.vsu_count v.vsu_insn_processed.d_total v.vsu_insn_processed.d_p50
       v.vsu_insn_processed.d_p95 v.vsu_peak_states.d_total
       v.vsu_peak_states.d_p50 v.vsu_peak_states.d_p95;
     if v.vsu_loop_heads > 0 || v.vsu_widen_rounds.d_total > 0 then
       Format.fprintf fmt
         "  loops: %d heads, widen rounds total %d (p50 %d, p95 %d)@."
         v.vsu_loop_heads v.vsu_widen_rounds.d_total
         v.vsu_widen_rounds.d_p50 v.vsu_widen_rounds.d_p95
   | None -> ());
  match s.su_profile with
  | Some (Profile { programs; gen_s; verify_s; sanitize_s; exec_s;
                    wall_s; gen_w; verify_w; sanitize_w; exec_w }) ->
    Format.fprintf fmt
      "@.  phases over %d programs: gen %.3fs, verify %.3fs, sanitize %.3fs, exec %.3fs (wall %.3fs)@."
      programs gen_s verify_s sanitize_s exec_s wall_s;
    let total_w = gen_w +. verify_w +. sanitize_w +. exec_w in
    if total_w > 0. && programs > 0 then begin
      let per w = w /. float_of_int programs in
      Format.fprintf fmt
        "  alloc per program: gen %.0fw, verify %.0fw, sanitize %.0fw, exec %.0fw (%.0fw minor total)@."
        (per gen_w) (per verify_w) (per sanitize_w) (per exec_w)
        (per total_w)
    end
  | Some _ | None -> ()
