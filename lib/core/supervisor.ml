open Cimport

(* Supervised campaign runner: the {!Parallel} sharding scheme run
   across forked OS processes under a heartbeat watchdog, so an
   analyzer crash or hang costs one worker one segment — not the
   campaign.  The protocol is plain files under the state directory:

     worker-<i>.ckpt   incremental checkpoint (worker_snapshot)
     worker-<i>.hb     heartbeat, atomically renamed before every step
     worker-<i>.done   completion marker (exit 0 without it = crash)
     worker-<i>.err    last uncaught exception, for post-mortems
     quarantine.list   global iterations implicated by a crash
     crash-NNN.json    one Triage.harness_crash artifact per kill

   Determinism: a worker replays its segment from the last barrier
   checkpoint exactly (same RNG stream, same reboot schedule), except
   for quarantined iterations, which burn the iteration's generation
   draws without loading (Campaign.step_skip).  A disturbed run is
   therefore digest-comparable to a fault-free run given the same
   quarantine set — the chaos harness's oracle. *)

(* /2: Campaign.stats gained the per-phase minor-words attribution
   fields (st_gen_w..st_exec_w), changing the marshalled layout. *)
let worker_tag = "bvf-worker/2"

type worker_snapshot = {
  wk_shard : int;
  wk_workers : int;
  wk_trace_pos : int;
  wk_snapshot : Campaign.snapshot;
}

(* -- Protocol files ----------------------------------------------------- *)

let hb_path dir i = Filename.concat dir (Printf.sprintf "worker-%d.hb" i)

let ckpt_path dir i =
  Filename.concat dir (Printf.sprintf "worker-%d.ckpt" i)

let done_path dir i =
  Filename.concat dir (Printf.sprintf "worker-%d.done" i)

let err_path dir i =
  Filename.concat dir (Printf.sprintf "worker-%d.err" i)

let prof_path dir i =
  Filename.concat dir (Printf.sprintf "worker-%d.prof" i)

let quarantine_path dir = Filename.concat dir "quarantine.list"

let rec mkdirs (dir : string) : unit =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Atomic publication: a reader never sees a torn file, only the
   previous or the new contents. *)
let atomic_write (path : string) (contents : string) : unit =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc contents;
  close_out oc;
  Sys.rename tmp path

let remove_if_exists (path : string) : unit =
  try Sys.remove path with Sys_error _ -> ()

let lock_path dir = Filename.concat dir "supervisor.lock"

(* Exclusive per-state-dir lock.  Two supervisors sharing one directory
   clobber each other's heartbeat and checkpoint files (each believes
   the other's workers are its own crashed children), so the directory
   is owned by exactly one live supervisor: the lock file records the
   owner's pid, and a lock whose owner is dead is stale and broken. *)
let rec acquire_lock (path : string) ~(attempts : int) : unit =
  match
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
  with
  | fd ->
    let s = string_of_int (Unix.getpid ()) ^ "\n" in
    ignore (Unix.write_substring fd s 0 (String.length s));
    Unix.close fd
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
    let owner =
      match open_in path with
      | exception Sys_error _ -> None
      | ic ->
        let pid =
          try int_of_string_opt (String.trim (input_line ic))
          with End_of_file -> None
        in
        close_in ic;
        pid
    in
    let alive =
      match owner with
      | Some pid -> (try Unix.kill pid 0; true with _ -> false)
      | None -> false
    in
    (match owner with
     | Some pid when alive ->
       raise
         (Campaign.Environment
            (Printf.sprintf
               "state directory is in use by a running supervisor \
                (pid %d holds %s)" pid path))
     | _ when attempts > 0 ->
       remove_if_exists path;
       acquire_lock path ~attempts:(attempts - 1)
     | _ ->
       raise
         (Campaign.Environment ("cannot acquire supervisor lock: " ^ path)))

let quarantine_of_file (path : string) : int list =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    let out = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         if line <> "" && line.[0] <> '#' then
           match int_of_string_opt line with
           | Some g -> out := g :: !out
           | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.sort_uniq compare !out

let write_quarantine (dir : string) (globals : int list) : unit =
  let b = Buffer.create 128 in
  List.iter (fun g -> Printf.bprintf b "%d\n" g) globals;
  atomic_write (quarantine_path dir) (Buffer.contents b)

(* heartbeat line: "seq local global pid" *)
let read_hb (path : string) : (int * int * int) option =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let r =
      match input_line ic with
      | exception End_of_file -> None
      | line -> (
        match String.split_on_char ' ' (String.trim line) with
        | seq :: local :: global :: _ -> (
          match
            ( int_of_string_opt seq,
              int_of_string_opt local,
              int_of_string_opt global )
          with
          | Some s, Some l, Some g -> Some (s, l, g)
          | _ -> None)
        | _ -> None)
    in
    close_in ic;
    r

let load_worker ~(path : string) :
  (worker_snapshot, Checkpoint.error) result =
  (Checkpoint.load ~path ~tag:worker_tag
   : (worker_snapshot, Checkpoint.error) result)

(* OCaml signal numbers are runtime-internal (negative); report the
   conventional POSIX numbers in artifacts. *)
let unix_signal (sg : int) : int =
  if sg = Sys.sighup then 1
  else if sg = Sys.sigint then 2
  else if sg = Sys.sigquit then 3
  else if sg = Sys.sigill then 4
  else if sg = Sys.sigabrt then 6
  else if sg = Sys.sigfpe then 8
  else if sg = Sys.sigkill then 9
  else if sg = Sys.sigusr1 then 10
  else if sg = Sys.sigsegv then 11
  else if sg = Sys.sigusr2 then 12
  else if sg = Sys.sigpipe then 13
  else if sg = Sys.sigalrm then 14
  else if sg = Sys.sigterm then 15
  else sg

(* -- Globalizing worker checkpoints ------------------------------------- *)

(* Renumber a worker checkpoint's local iterations to global ones so it
   can enter Parallel.merge_snapshots (the bvf merge path for
   checkpoints salvaged from a killed run).  A single-shard merge
   through the Parallel machinery does exactly the remap. *)
let globalize (w : worker_snapshot) : Campaign.snapshot =
  let s = w.wk_snapshot in
  let sh =
    {
      Parallel.sh_index = w.wk_shard;
      sh_seed = s.Campaign.sn_seed;
      sh_iterations = s.Campaign.sn_completed;
      sh_stats = s.Campaign.sn_stats;
      sh_corpus = Corpus.entries s.Campaign.sn_corpus;
      sh_edges = Coverage.named_edges s.Campaign.sn_cov;
    }
  in
  let cov = Coverage.create () in
  ignore (Coverage.absorb_named cov sh.Parallel.sh_edges);
  { s with
    Campaign.sn_merged = true;
    sn_rng = 0L;
    sn_failslab = Bvf_kernel.Failslab.off ();
    sn_cov = cov;
    sn_corpus = Parallel.merge_corpora ~jobs:w.wk_workers [ sh ];
    sn_stats = Parallel.merge_stats ~jobs:w.wk_workers cov [ sh ];
  }

(* -- Worker (child process) --------------------------------------------- *)

type wargs = {
  wa_shard : int;
  wa_workers : int;
  wa_seed : int;
  wa_iterations : int;  (* local budget *)
  wa_dir : string;
  wa_checkpoint_every : int;
  wa_sample_every : int;
  wa_log_level : int;
  wa_trace : string option;
  wa_failslab_rate : float option;
  wa_failslab_seed : int option;
  wa_fault : (worker:int -> local:int -> global:int -> unit) option;
  wa_profile : bool;
      (* record profiler spans in the child and hand them to the parent
         via the worker-<i>.prof protocol file at clean exit *)
  wa_strategy : Campaign.strategy;
  wa_config : Kconfig.t;
}

(* Runs in the forked child; never returns (Unix._exit only, so the
   parent's at_exit hooks and buffers are untouched). *)
let worker_main (a : wargs) : unit =
  let stop = ref 0 in
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> stop := 143));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := 130));
  let shard = a.wa_shard and jobs = a.wa_workers in
  let global local = Parallel.global_iteration ~jobs ~shard local in
  let ckpt = ckpt_path a.wa_dir shard in
  try
    (* local iterations quarantined for this shard *)
    let quarantined : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun g ->
         if g >= 0 && g mod jobs = shard then
           Hashtbl.replace quarantined (g / jobs) ())
      (quarantine_of_file (quarantine_path a.wa_dir));
    (* resume from the last barrier checkpoint when one exists; a
       corrupt one falls back to a fresh deterministic replay from
       iteration 0, which reaches the same barriers *)
    let existing =
      if Sys.file_exists ckpt then
        match load_worker ~path:ckpt with
        | Ok w -> Some w
        | Error _ -> None
      else None
    in
    let sink =
      match a.wa_trace with
      | None -> Telemetry.null
      | Some t ->
        let path = Parallel.shard_trace_path t shard in
        let iter_map local = global local in
        (match existing with
         | Some w -> Telemetry.reopen ~iter_map path ~pos:w.wk_trace_pos
         | None -> Telemetry.create ~iter_map path)
    in
    let plan =
      match a.wa_failslab_rate with
      | Some rate when rate > 0.0 ->
        Some
          (Bvf_kernel.Failslab.create ~rate
             ~seed:
               (Option.value a.wa_failslab_seed ~default:a.wa_seed
                + shard)
             ())
      | Some _ | None -> None
    in
    (* the child records into its own session (the parent's lives in
       another process); spans reach the parent through the
       worker-<i>.prof file written at clean exit, and align with the
       parent's because Mclock timestamps are absolute *)
    let psession =
      if a.wa_profile then Bvf_util.Prof.session ()
      else Bvf_util.Prof.null
    in
    let prof =
      Bvf_util.Prof.track psession
        ~name:(Printf.sprintf "worker%d" shard) shard
    in
    let c =
      match existing with
      | Some w ->
        Campaign.resume ~sample_every:a.wa_sample_every ~telemetry:sink
          ~log_level:a.wa_log_level ~prof a.wa_strategy a.wa_config
          w.wk_snapshot
      | None ->
        Campaign.create ~sample_every:a.wa_sample_every ~telemetry:sink
          ~log_level:a.wa_log_level ~prof ?failslab:plan
          ~seed:(a.wa_seed + shard) a.wa_strategy a.wa_config
    in
    let seq = ref 0 in
    let heartbeat (local : int) : unit =
      Bvf_util.Prof.span prof "heartbeat" @@ fun () ->
      incr seq;
      atomic_write (hb_path a.wa_dir shard)
        (Printf.sprintf "%d %d %d %d\n" !seq local (global local)
           (Unix.getpid ()));
      (* at most the in-flight iteration's events are lost to SIGKILL *)
      Telemetry.flush sink
    in
    let last_saved = ref c.Campaign.stats.Campaign.st_generated in
    let save_worker () : unit =
      Bvf_util.Prof.span prof "checkpoint" @@ fun () ->
      let pos = Telemetry.pos sink in
      (match
         Checkpoint.save ~path:ckpt ~tag:worker_tag
           { wk_shard = shard; wk_workers = jobs; wk_trace_pos = pos;
             wk_snapshot = Campaign.snapshot c }
       with
       | Ok () -> ()
       | Error e ->
         failwith
           ("worker checkpoint write failed: "
            ^ Checkpoint.error_to_string e));
      last_saved := c.Campaign.stats.Campaign.st_generated
    in
    (* a stop (SIGTERM/SIGINT) acts as an extra barrier: checkpoint,
       then exit; resume performs the post-save reboot *)
    let stop_exit () : unit =
      if c.Campaign.stats.Campaign.st_generated <> !last_saved then begin
        Telemetry.emit sink
          (Telemetry.Checkpoint
             { iter = c.Campaign.stats.Campaign.st_generated });
        save_worker ()
      end;
      Telemetry.close sink;
      Unix._exit !stop
    in
    let at_barrier () =
      a.wa_checkpoint_every > 0
      && c.Campaign.stats.Campaign.st_generated mod a.wa_checkpoint_every
         = 0
    in
    (* one top-level span covering the worker's whole fuzzing segment,
       mirroring Parallel's per-shard "iterate"; left open (and the
       profile unsaved) on the stop_exit path — interrupted runs carry
       no profile *)
    let fr_iter = Bvf_util.Prof.start prof "iterate" in
    while c.Campaign.stats.Campaign.st_generated < a.wa_iterations do
      if !stop <> 0 then stop_exit ();
      let local = c.Campaign.stats.Campaign.st_generated in
      heartbeat local;
      if Hashtbl.mem quarantined local then Campaign.step_skip c
      else begin
        (match a.wa_fault with
         | Some f -> f ~worker:shard ~local ~global:(global local)
         | None -> ());
        Campaign.step c
      end;
      if !stop <> 0 then stop_exit ()
      else if at_barrier () then begin
        (* barrier: the Checkpoint event goes out before the position
           is recorded, so a restart resumes just after it and an
           undisturbed worker writes the same trace bytes *)
        Telemetry.emit sink
          (Telemetry.Checkpoint
             { iter = c.Campaign.stats.Campaign.st_generated });
        save_worker ();
        Campaign.reboot c
      end
    done;
    (* closing sample, deduplicated exactly like Campaign.run_t so a
       fault-free supervised shard equals a Parallel.run shard *)
    let final =
      { Campaign.sa_iteration = c.Campaign.stats.Campaign.st_generated;
        sa_edges = Coverage.edge_count c.Campaign.cov }
    in
    c.Campaign.stats.Campaign.st_curve <-
      final
      :: List.filter
        (fun (sa : Campaign.sample) ->
           sa.Campaign.sa_iteration <> final.Campaign.sa_iteration)
        c.Campaign.stats.Campaign.st_curve;
    save_worker ();
    ignore (Bvf_util.Prof.stop prof fr_iter);
    (* spans must be on disk before the done marker: once the parent
       sees worker-<i>.done it may read the profile immediately *)
    if a.wa_profile then
      Bvf_util.Prof.save (prof_path a.wa_dir shard) prof;
    atomic_write (done_path a.wa_dir shard) "ok\n";
    Telemetry.close sink;
    Unix._exit 0
  with e ->
    (try
       atomic_write (err_path a.wa_dir shard)
         (Printexc.to_string e ^ "\n")
     with _ -> ());
    Unix._exit 70

(* -- Supervisor (parent process) ---------------------------------------- *)

type worker_outcome =
  | Outcome_completed
  | Outcome_retired
  | Outcome_interrupted

type worker_report = {
  wr_worker : int;
  wr_outcome : worker_outcome;
  wr_assigned : int;
  wr_completed : int;
  wr_restarts : int;
}

type report = {
  rp_workers : worker_report list;
  rp_crashes : Triage.harness_crash list;
  rp_quarantined : int list;
  rp_abandoned : (int * int * int) list;
}

type wstate =
  | Running of {
      rn_pid : int;
      mutable rn_hb : (int * int * int) option; (* seq, local, global *)
      mutable rn_hb_time : float; (* last time rn_hb changed *)
    }
  | Waiting of float (* restart backoff: not before this time *)
  | Finished of worker_outcome

type wslot = {
  ws_index : int;
  mutable ws_state : wstate;
  mutable ws_restarts : int;
}

type outcome =
  | Completed of Parallel.result * report
  | Interrupted of report

let pp_report fmt (r : report) : unit =
  List.iter
    (fun w ->
       Format.fprintf fmt
         "  worker %d: %s, %d/%d iterations, %d restart%s@." w.wr_worker
         (match w.wr_outcome with
          | Outcome_completed -> "completed"
          | Outcome_retired -> "retired"
          | Outcome_interrupted -> "interrupted")
         w.wr_completed w.wr_assigned w.wr_restarts
         (if w.wr_restarts = 1 then "" else "s"))
    r.rp_workers;
  List.iter
    (fun c ->
       Format.fprintf fmt "  crash: %s@." (Triage.harness_crash_to_string c))
    r.rp_crashes;
  (match r.rp_quarantined with
   | [] -> ()
   | q ->
     Format.fprintf fmt "  quarantined iterations: %s@."
       (String.concat ", " (List.map string_of_int q)));
  List.iter
    (fun (w, lo, hi) ->
       Format.fprintf fmt "  abandoned: worker %d local %d..%d@." w lo hi)
    r.rp_abandoned

let run ?(sample_every = 64) ?(log_level = 0) ?trace ?failslab_rate
    ?failslab_seed ?(checkpoint_every = 1000) ?(deadline_s = 30.)
    ?(poll_s = 0.05) ?(max_restarts = 5) ?(backoff_s = 0.5)
    ?(quarantine = []) ?fault ?(prof = Bvf_util.Prof.null) ?stop
    ~(workers : int) ~(seed : int) ~(iterations : int) ~(dir : string)
    (strategy : Campaign.strategy) (config : Kconfig.t) : outcome =
  if workers < 1 then invalid_arg "Supervisor.run: workers < 1";
  let sup_prof = Bvf_util.Prof.track prof ~name:"supervisor" workers in
  mkdirs dir;
  acquire_lock (lock_path dir) ~attempts:1;
  Fun.protect ~finally:(fun () -> remove_if_exists (lock_path dir))
  @@ fun () ->
  let counts = Parallel.shard_iterations ~iterations ~jobs:workers in
  let quarantine_set =
    ref
      (List.sort_uniq compare
         (quarantine @ quarantine_of_file (quarantine_path dir)))
  in
  write_quarantine dir !quarantine_set;
  let crashes = ref [] (* newest first *) and ncrashes = ref 0 in
  let wargs (i : int) : wargs =
    {
      wa_shard = i;
      wa_workers = workers;
      wa_seed = seed;
      wa_iterations = counts.(i);
      wa_dir = dir;
      wa_checkpoint_every = checkpoint_every;
      wa_sample_every = sample_every;
      wa_log_level = log_level;
      wa_trace = trace;
      wa_failslab_rate = failslab_rate;
      wa_failslab_seed = failslab_seed;
      wa_fault = fault;
      wa_profile = Bvf_util.Prof.active prof;
      wa_strategy = strategy;
      wa_config = config;
    }
  in
  let spawn (i : int) : wstate =
    remove_if_exists (hb_path dir i);
    remove_if_exists (done_path dir i);
    remove_if_exists (prof_path dir i);
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (try worker_main (wargs i) with _ -> ());
      Unix._exit 70
    | pid ->
      Running
        { rn_pid = pid; rn_hb = None;
          rn_hb_time = Bvf_util.Mclock.now_s () }
  in
  let slots =
    Array.init workers (fun i ->
        { ws_index = i; ws_state = Waiting 0.; ws_restarts = 0 })
  in
  let record_crash (slot : wslot) (cause : Triage.crash_cause) : unit =
    (* the on-disk heartbeat is written before every iteration, so at
       crash time it names the implicated iteration even when the
       worker died between two supervisor polls; the polled cache is a
       fallback for an unreadable file *)
    let hb =
      match read_hb (hb_path dir slot.ws_index) with
      | Some _ as fresh -> fresh
      | None ->
        (match slot.ws_state with Running r -> r.rn_hb | _ -> None)
    in
    slot.ws_restarts <- slot.ws_restarts + 1;
    let crash =
      {
        Triage.hc_worker = slot.ws_index;
        hc_iteration = Option.map (fun (_, _, g) -> g) hb;
        hc_cause = cause;
        hc_restarts = slot.ws_restarts;
      }
    in
    crashes := crash :: !crashes;
    let artifact =
      Filename.concat dir (Printf.sprintf "crash-%03d.json" !ncrashes)
    in
    incr ncrashes;
    (try
       atomic_write artifact (Triage.harness_crash_to_json crash ^ "\n")
     with Sys_error _ -> ());
    (* quarantine the iteration the heartbeat implicates, so the
       restart makes forward progress past a deterministic crasher *)
    (match hb with
     | Some (_, _, g) when not (List.mem g !quarantine_set) ->
       quarantine_set := List.sort compare (g :: !quarantine_set);
       write_quarantine dir !quarantine_set
     | _ -> ());
    if slot.ws_restarts > max_restarts then
      slot.ws_state <- Finished Outcome_retired
    else
      slot.ws_state <-
        Waiting
          (Bvf_util.Mclock.now_s ()
           +. (backoff_s *. (2. ** float_of_int (slot.ws_restarts - 1))))
  in
  let interrupting = ref false and interrupt_at = ref 0. in
  let all_finished () =
    Array.for_all
      (fun s -> match s.ws_state with Finished _ -> true | _ -> false)
      slots
  in
  Array.iter
    (fun s ->
       s.ws_state <-
         Bvf_util.Prof.span sup_prof "fork" (fun () -> spawn s.ws_index))
    slots;
  while not (all_finished ()) do
    if
      (not !interrupting)
      && match stop with Some f -> f () | None -> false
    then begin
      interrupting := true;
      interrupt_at := Bvf_util.Mclock.now_s ();
      Array.iter
        (fun s ->
           match s.ws_state with
           | Running r -> (
             try Unix.kill r.rn_pid Sys.sigterm with
             | Unix.Unix_error _ -> ())
           | Waiting _ -> s.ws_state <- Finished Outcome_interrupted
           | Finished _ -> ())
        slots
    end;
    Array.iter
      (fun s ->
         match s.ws_state with
         | Finished _ -> ()
         | Waiting until ->
           if !interrupting then
             s.ws_state <- Finished Outcome_interrupted
           else if Bvf_util.Mclock.now_s () >= until then
             s.ws_state <-
               Bvf_util.Prof.span sup_prof "restart" (fun () ->
                   spawn s.ws_index)
         | Running r -> (
           match Unix.waitpid [ Unix.WNOHANG ] r.rn_pid with
           | 0, _ ->
             (* alive: track heartbeat freshness *)
             (match read_hb (hb_path dir s.ws_index) with
              | Some (hseq, _, _) as hb
                when (match r.rn_hb with
                      | Some (s0, _, _) -> s0 <> hseq
                      | None -> true) ->
                r.rn_hb <- hb;
                r.rn_hb_time <- Bvf_util.Mclock.now_s ()
              | Some _ | None ->
                if
                  (not !interrupting)
                  && Bvf_util.Mclock.elapsed_s ~since:r.rn_hb_time
                     > deadline_s
                then begin
                  (* hung: no heartbeat within the deadline *)
                  (try Unix.kill r.rn_pid Sys.sigkill with
                   | Unix.Unix_error _ -> ());
                  ignore (Unix.waitpid [] r.rn_pid);
                  record_crash s Triage.Crash_hang
                end
                else if
                  !interrupting
                  && Bvf_util.Mclock.elapsed_s ~since:!interrupt_at
                     > deadline_s
                then begin
                  (* refuses to die during shutdown: force it *)
                  (try Unix.kill r.rn_pid Sys.sigkill with
                   | Unix.Unix_error _ -> ());
                  ignore (Unix.waitpid [] r.rn_pid);
                  s.ws_state <- Finished Outcome_interrupted
                end)
           | _, Unix.WEXITED 0
             when Sys.file_exists (done_path dir s.ws_index) ->
             s.ws_state <- Finished Outcome_completed
           | _, Unix.WEXITED code ->
             if !interrupting && (code = 0 || code = 130 || code = 143)
             then s.ws_state <- Finished Outcome_interrupted
             else record_crash s (Triage.Crash_exit code)
           | _, Unix.WSIGNALED sg ->
             if !interrupting then
               s.ws_state <- Finished Outcome_interrupted
             else record_crash s (Triage.Crash_signal (unix_signal sg))
           | _, Unix.WSTOPPED _ -> ()))
      slots;
    if not (all_finished ()) then Unix.sleepf poll_s
  done;
  (* -- Join ------------------------------------------------------------- *)
  let fr_join = Bvf_util.Prof.start sup_prof "join" in
  let finals =
    Array.init workers (fun i ->
        let p = ckpt_path dir i in
        if Sys.file_exists p then
          match load_worker ~path:p with
          | Ok w -> Some w
          | Error _ -> None
        else None)
  in
  let rp_workers =
    Array.to_list
      (Array.map
         (fun s ->
            {
              wr_worker = s.ws_index;
              wr_outcome =
                (match s.ws_state with
                 | Finished o -> o
                 | Running _ | Waiting _ -> assert false);
              wr_assigned = counts.(s.ws_index);
              wr_completed =
                (match finals.(s.ws_index) with
                 | Some w -> w.wk_snapshot.Campaign.sn_completed
                 | None -> 0);
              wr_restarts = s.ws_restarts;
            })
         slots)
  in
  let report =
    {
      rp_workers;
      rp_crashes = List.rev !crashes;
      rp_quarantined = !quarantine_set;
      rp_abandoned =
        List.filter_map
          (fun w ->
             if
               w.wr_outcome <> Outcome_completed
               && w.wr_completed < w.wr_assigned
             then Some (w.wr_worker, w.wr_completed, w.wr_assigned - 1)
             else None)
          rp_workers;
    }
  in
  let outcome =
    if !interrupting then Interrupted report
    else begin
    (* merge the final worker checkpoints exactly the way Parallel's
       in-process join merges shard results *)
    (match trace with
     | None -> ()
     | Some t ->
       (* a retired worker's trace may carry events past its last
          barrier; trim to the checkpointed offset so the merged trace
          matches the merged stats *)
       Array.iteri
         (fun i final ->
            let p = Parallel.shard_trace_path t i in
            if Sys.file_exists p then
              match final with
              | Some w ->
                let fd = Unix.openfile p [ Unix.O_WRONLY ] 0o644 in
                Unix.ftruncate fd w.wk_trace_pos;
                Unix.close fd
              | None -> remove_if_exists p)
         finals;
       let shard_paths =
         List.init workers (fun i -> Parallel.shard_trace_path t i)
       in
       ignore (Telemetry.merge_shards ~into:t shard_paths);
       List.iter remove_if_exists shard_paths);
    let shards =
      List.filter_map
        (fun i ->
           match finals.(i) with
           | None -> None
           | Some w ->
             Some
               {
                 Parallel.sh_index = i;
                 sh_seed = seed + i;
                 sh_iterations = w.wk_snapshot.Campaign.sn_completed;
                 sh_stats = w.wk_snapshot.Campaign.sn_stats;
                 sh_corpus = Corpus.entries w.wk_snapshot.Campaign.sn_corpus;
                 sh_edges = Coverage.named_edges w.wk_snapshot.Campaign.sn_cov;
               })
        (List.init workers Fun.id)
    in
    if shards = [] then
      raise
        (Campaign.Environment
           "supervised campaign: no worker produced a checkpoint to merge");
    let cov = Coverage.create () in
    List.iter
      (fun sh -> ignore (Coverage.absorb_named cov sh.Parallel.sh_edges))
      shards;
    let result =
      {
        Parallel.pr_jobs = workers;
        pr_iterations = iterations;
        pr_stats = Parallel.merge_stats ~jobs:workers cov shards;
        pr_cov = cov;
        pr_corpus = Parallel.merge_corpora ~jobs:workers shards;
        pr_shards = shards;
      }
    in
    Completed (result, report)
  end
  in
  (* fold each completed worker's spans back into the parent session;
     a crashed or interrupted worker never wrote its profile, so its
     track is simply absent from the trace *)
  if Bvf_util.Prof.active prof then
    for i = 0 to workers - 1 do
      match Bvf_util.Prof.load (prof_path dir i) with
      | Some (trk, spans) ->
        Bvf_util.Prof.absorb prof
          ~name:(Printf.sprintf "worker%d" i) ~trk spans
      | None -> ()
    done;
  ignore (Bvf_util.Prof.stop sup_prof fr_join);
  outcome
