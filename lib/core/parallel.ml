open Cimport

(* Parallel campaign runner: shard one logical campaign across N OCaml 5
   domains, the way syzkaller shards fuzzing across VMs and merges
   coverage centrally (and the way the paper's evaluation runs many
   instances to reach meaningful iteration counts).

   Each shard is a fully independent {!Campaign.t}: its own simulated
   kernel, its own RNG stream (split as [seed + shard_index], so the
   result is a pure function of (seed, jobs)), its own coverage map and
   corpus.  Shards never share mutable state, so domains need no locks
   and the run is deterministic regardless of scheduling.

   The merge layer folds the shard results into one {!Campaign.stats}:

   - coverage is unioned through portable (site, variant) edge names
     (numeric edge ids are interner-order dependent per shard);
   - findings are deduplicated by fingerprint key, keeping the earliest
     *global* iteration — shard-local iteration [j] of shard [s] maps to
     global iteration [j * jobs + s], i.e. the shards are viewed as
     fuzzing in lockstep round-robin, exactly the schedule a sequential
     run with [jobs = 1] degenerates to;
   - counters, errno distributions and instruction histograms are
     summed;
   - the corpus is the union of shard corpora with entries re-scored
     under their global iteration numbers ({!Corpus.of_entries});
   - the merged coverage curve records, at every global iteration any
     shard sampled, the sum of the shards' local edge counts — the raw
     per-VM signal before central dedup, an upper bound on the union;
     the final [st_edges] is the true union size.

   Determinism contract: for fixed (seed, jobs, config, strategy) every
   shard result and the merged stats/digest are identical across runs
   and machines; [jobs = 1] delegates to {!Campaign.run_t} and is
   bit-identical to the sequential path. *)

type shard = {
  sh_index : int;
  sh_seed : int;
  sh_iterations : int;
  sh_stats : Campaign.stats;
  sh_corpus : Corpus.entry list;
  sh_edges : ((string * int) * int) list; (* portable coverage listing *)
}

type result = {
  pr_jobs : int;
  pr_iterations : int;
  pr_stats : Campaign.stats; (* merged *)
  pr_cov : Coverage.t;       (* union coverage *)
  pr_corpus : Corpus.t;      (* merged, re-scored *)
  pr_shards : shard list;    (* in index order *)
}

(* Round-robin split: shard [i] executes exactly the global iterations
   congruent to [i] mod [jobs], so the per-shard counts are
   [iterations / jobs] plus one for the first [iterations mod jobs]
   shards. *)
let shard_iterations ~(iterations : int) ~(jobs : int) : int array =
  if jobs < 1 then invalid_arg "Parallel.shard_iterations: jobs < 1";
  if iterations < 0 then
    invalid_arg "Parallel.shard_iterations: negative iterations";
  Array.init jobs (fun i ->
      (iterations / jobs) + if i < iterations mod jobs then 1 else 0)

let global_iteration ~(jobs : int) ~(shard : int) (local : int) : int =
  (local * jobs) + shard

(* -- Merging ----------------------------------------------------------- *)

let add_histogram (a : Disasm.class_histogram)
    (b : Disasm.class_histogram) : Disasm.class_histogram =
  {
    Disasm.alu = a.Disasm.alu + b.Disasm.alu;
    jmp = a.Disasm.jmp + b.Disasm.jmp;
    load = a.Disasm.load + b.Disasm.load;
    store = a.Disasm.store + b.Disasm.store;
    call = a.Disasm.call + b.Disasm.call;
    other = a.Disasm.other + b.Disasm.other;
  }

(* Merged findings: same dedup key as the sequential campaign, earliest
   global iteration wins.  Folding per key through [min] makes the
   result independent of hashtable iteration order. *)
let merge_findings ~(jobs : int) (shards : shard list) :
  (string, Campaign.found) Hashtbl.t =
  let merged = Hashtbl.create 32 in
  List.iter
    (fun sh ->
       Hashtbl.iter
         (fun key (f : Campaign.found) ->
            let f =
              { f with
                Campaign.fd_iteration =
                  global_iteration ~jobs ~shard:sh.sh_index
                    f.Campaign.fd_iteration }
            in
            match Hashtbl.find_opt merged key with
            | Some prev
              when prev.Campaign.fd_iteration <= f.Campaign.fd_iteration ->
              ()
            | Some _ | None -> Hashtbl.replace merged key f)
         sh.sh_stats.Campaign.st_findings)
    shards;
  merged

(* Merged coverage curve: at every global iteration some shard sampled,
   the sum of each shard's latest local edge count — per-VM coverage
   before central dedup.  Monotone and deterministic. *)
let merge_curves ~(jobs : int) (shards : shard list) :
  Campaign.sample list =
  (* per shard: samples ascending by global iteration *)
  let ascending =
    List.map
      (fun sh ->
         List.rev_map
           (fun (sa : Campaign.sample) ->
              ( global_iteration ~jobs ~shard:sh.sh_index
                  sa.Campaign.sa_iteration,
                sa.Campaign.sa_edges ))
           sh.sh_stats.Campaign.st_curve
         |> List.sort compare)
      shards
  in
  let points =
    List.sort_uniq compare (List.concat_map (List.map fst) ascending)
  in
  let at (samples : (int * int) list) (g : int) : int =
    List.fold_left
      (fun acc (it, edges) -> if it <= g then edges else acc)
      0 samples
  in
  List.map
    (fun g ->
       { Campaign.sa_iteration = g;
         sa_edges =
           List.fold_left (fun acc s -> acc + at s g) 0 ascending })
    points
  |> List.rev (* newest first, like the sequential curve *)

let merge_errno (shards : shard list) : (Venv.errno, int) Hashtbl.t =
  let merged = Hashtbl.create 8 in
  List.iter
    (fun sh ->
       Hashtbl.iter
         (fun e n ->
            Hashtbl.replace merged e
              (n + Option.value (Hashtbl.find_opt merged e) ~default:0))
         sh.sh_stats.Campaign.st_errno)
    shards;
  merged

let merge_reasons (shards : shard list) :
  (Reject_reason.t, int) Hashtbl.t =
  let merged = Hashtbl.create 16 in
  List.iter
    (fun sh ->
       Hashtbl.iter
         (fun r n ->
            Hashtbl.replace merged r
              (n + Option.value (Hashtbl.find_opt merged r) ~default:0))
         sh.sh_stats.Campaign.st_reasons)
    shards;
  merged

let merge_stats ~(jobs : int) (cov : Coverage.t) (shards : shard list) :
  Campaign.stats =
  match shards with
  | [] -> invalid_arg "Parallel.merge_stats: no shards"
  | first :: _ ->
    let sum f = List.fold_left (fun acc sh -> acc + f sh.sh_stats) 0 shards in
    let sumf f =
      List.fold_left (fun acc sh -> acc +. f sh.sh_stats) 0. shards
    in
    {
      Campaign.st_tool = first.sh_stats.Campaign.st_tool;
      st_version = first.sh_stats.Campaign.st_version;
      st_generated = sum (fun s -> s.Campaign.st_generated);
      st_accepted = sum (fun s -> s.Campaign.st_accepted);
      st_rejected = sum (fun s -> s.Campaign.st_rejected);
      st_errno = merge_errno shards;
      st_reasons = merge_reasons shards;
      st_findings = merge_findings ~jobs shards;
      st_curve = merge_curves ~jobs shards;
      st_histogram =
        List.fold_left
          (fun acc sh -> add_histogram acc sh.sh_stats.Campaign.st_histogram)
          Disasm.empty_histogram shards;
      st_edges = Coverage.edge_count cov;
      st_reboots = sum (fun s -> s.Campaign.st_reboots);
      st_env_errors = sum (fun s -> s.Campaign.st_env_errors);
      st_retries = sum (fun s -> s.Campaign.st_retries);
      st_quarantined = sum (fun s -> s.Campaign.st_quarantined);
      st_skipped = sum (fun s -> s.Campaign.st_skipped);
      st_lint = sum (fun s -> s.Campaign.st_lint);
      (* CPU seconds, so the phase totals sum across domains *)
      st_gen_s = sumf (fun s -> s.Campaign.st_gen_s);
      st_verify_s = sumf (fun s -> s.Campaign.st_verify_s);
      st_sanitize_s = sumf (fun s -> s.Campaign.st_sanitize_s);
      st_exec_s = sumf (fun s -> s.Campaign.st_exec_s);
      (* allocation is per-domain too: phase minor words sum the same way *)
      st_gen_w = sumf (fun s -> s.Campaign.st_gen_w);
      st_verify_w = sumf (fun s -> s.Campaign.st_verify_w);
      st_sanitize_w = sumf (fun s -> s.Campaign.st_sanitize_w);
      st_exec_w = sumf (fun s -> s.Campaign.st_exec_w);
      st_vstats =
        (let merged = Vstats.agg_zero () in
         List.iter
           (fun sh ->
              Vstats.agg_absorb merged sh.sh_stats.Campaign.st_vstats)
           shards;
         merged);
    }

let merge_corpora ~(jobs : int) ?(max_size = 256) (shards : shard list) :
  Corpus.t =
  List.concat_map
    (fun sh ->
       List.map
         (fun (e : Corpus.entry) ->
            { e with
              Corpus.added_at =
                global_iteration ~jobs ~shard:sh.sh_index
                  e.Corpus.added_at })
         sh.sh_corpus)
    shards
  |> Corpus.of_entries ~max_size

(* Offline checkpoint merge (bvf merge): fold independent campaign
   snapshots into one reportable snapshot through the same machinery the
   in-process join uses.  Every input keeps its own (already global)
   iteration numbers, so the shards are built with [sh_index = 0] and
   merged with [jobs = 1] — [global_iteration] degenerates to the
   identity and nothing is renumbered.  The result is associative and
   commutative on everything {!Campaign.digest} covers (counts, errno
   and reason tables, findings-at-earliest-iteration, curve, vstats,
   union coverage); only the corpus, which is capped and re-scored, and
   the wall-clock phase timers fall outside that guarantee — both are
   deliberately outside the digest too.  The merged snapshot carries no
   RNG stream ([sn_merged]): it can be merged again, reported, seeded
   from — but never resumed. *)
let merge_snapshots (snapshots : Campaign.snapshot list) :
  Campaign.snapshot =
  match snapshots with
  | [] -> invalid_arg "Parallel.merge_snapshots: no snapshots"
  | first :: rest ->
    List.iter
      (fun (s : Campaign.snapshot) ->
         if s.Campaign.sn_tool <> first.Campaign.sn_tool then
           raise
             (Campaign.Environment
                (Printf.sprintf
                   "cannot merge checkpoints of different tools (%s vs %s)"
                   first.Campaign.sn_tool s.Campaign.sn_tool));
         if s.Campaign.sn_kernel <> first.Campaign.sn_kernel then
           raise
             (Campaign.Environment
                (Printf.sprintf
                   "cannot merge checkpoints of different kernels (%s vs %s)"
                   (Bvf_ebpf.Version.to_string first.Campaign.sn_kernel)
                   (Bvf_ebpf.Version.to_string s.Campaign.sn_kernel)));
         if s.Campaign.sn_sanitize <> first.Campaign.sn_sanitize
            || s.Campaign.sn_unprivileged
               <> first.Campaign.sn_unprivileged
            || s.Campaign.sn_witness <> first.Campaign.sn_witness
            || s.Campaign.sn_lint <> first.Campaign.sn_lint then
           raise
             (Campaign.Environment
                "cannot merge checkpoints taken under different configs"))
      rest;
    let shards =
      List.map
        (fun (s : Campaign.snapshot) ->
           {
             sh_index = 0;
             sh_seed = s.Campaign.sn_seed;
             sh_iterations = s.Campaign.sn_completed;
             sh_stats = s.Campaign.sn_stats;
             sh_corpus = Corpus.entries s.Campaign.sn_corpus;
             sh_edges = Coverage.named_edges s.Campaign.sn_cov;
           })
        snapshots
    in
    let cov = Coverage.create () in
    List.iter
      (fun sh -> ignore (Coverage.absorb_named cov sh.sh_edges))
      shards;
    {
      Campaign.sn_tool = first.Campaign.sn_tool;
      sn_kernel = first.Campaign.sn_kernel;
      sn_seed = first.Campaign.sn_seed;
      sn_sanitize = first.Campaign.sn_sanitize;
      sn_unprivileged = first.Campaign.sn_unprivileged;
      sn_witness = first.Campaign.sn_witness;
      sn_lint = first.Campaign.sn_lint;
      sn_completed =
        List.fold_left
          (fun acc (s : Campaign.snapshot) ->
             acc + s.Campaign.sn_completed)
          0 snapshots;
      sn_merged = true;
      sn_rng = 0L;
      sn_failslab = Bvf_kernel.Failslab.off ();
      sn_corpus = merge_corpora ~jobs:1 shards;
      sn_cov = cov;
      sn_stats = merge_stats ~jobs:1 cov shards;
    }

(* -- Driving ----------------------------------------------------------- *)

let shard_of_campaign ~(index : int) ~(seed : int) ~(iterations : int)
    (c : Campaign.t) : shard =
  {
    sh_index = index;
    sh_seed = seed;
    sh_iterations = iterations;
    sh_stats = c.Campaign.stats;
    sh_corpus = Corpus.entries c.Campaign.corpus;
    sh_edges = Coverage.named_edges c.Campaign.cov;
  }

let shard_trace_path (trace : string) (i : int) : string =
  trace ^ ".shard" ^ string_of_int i

let run ?(sample_every = 64) ?trace ?log_level ?failslab_rate
    ?failslab_seed ?on_step ?(prof = Bvf_util.Prof.null) ~(jobs : int)
    ~(seed : int) ~(iterations : int) (strategy : Campaign.strategy)
    (config : Kconfig.t) : result =
  if jobs < 1 then invalid_arg "Parallel.run: jobs < 1";
  let counts = shard_iterations ~iterations ~jobs in
  (* profiler tracks: one per shard (created here, before the domains
     spawn, then owned exclusively by their domain) plus one for this
     coordinating domain's spawn/join/absorb/merge work *)
  let shard_prof =
    Array.init jobs (fun i ->
        Bvf_util.Prof.track prof ~name:(Printf.sprintf "shard%d" i) i)
  in
  let main_prof =
    Bvf_util.Prof.track prof ~name:"coordinator" jobs
  in
  let plan_for (i : int) : Bvf_kernel.Failslab.t option =
    match failslab_rate with
    | Some rate when rate > 0.0 ->
      Some
        (Bvf_kernel.Failslab.create ~rate
           ~seed:(Option.value failslab_seed ~default:seed + i)
           ())
    | Some _ | None -> None
  in
  (* Each shard writes its own trace file with iterations already
     rewritten to global numbering; the join merges them into [trace].
     With [jobs = 1] the mapping is the identity and the shard writes
     [trace] directly, so the trace is byte-identical to a sequential
     campaign's. *)
  let sink_for (i : int) : Telemetry.sink =
    match trace with
    | None -> Telemetry.null
    | Some path when jobs = 1 -> Telemetry.create path
    | Some path ->
      Telemetry.create
        ~iter_map:(fun local -> global_iteration ~jobs ~shard:i local)
        (shard_trace_path path i)
  in
  let run_shard (i : int) : Campaign.t =
    (* the whole shard body is one top-level "iterate" span; the
       campaign's per-phase spans nest inside it, so the span's self
       time is exactly the per-iteration harness overhead (RNG, corpus,
       telemetry emission) the ROADMAP wants named *)
    Bvf_util.Prof.span shard_prof.(i) "iterate" (fun () ->
        let telemetry = sink_for i in
        let on_step = Option.map (fun f -> f i) on_step in
        let c =
          Campaign.run_t ~sample_every ~telemetry ?log_level
            ~prof:shard_prof.(i) ?failslab:(plan_for i) ?on_step
            ~seed:(seed + i) ~iterations:counts.(i) strategy config
        in
        Telemetry.close telemetry;
        c)
  in
  if jobs = 1 then begin
    (* the sequential path, verbatim: same calls in the same domain, so
       stats and digest are bit-identical to Campaign.run *)
    let c = run_shard 0 in
    let sh = shard_of_campaign ~index:0 ~seed ~iterations c in
    {
      pr_jobs = 1;
      pr_iterations = iterations;
      pr_stats = c.Campaign.stats;
      pr_cov = c.Campaign.cov;
      pr_corpus = c.Campaign.corpus;
      pr_shards = [ sh ];
    }
  end
  else begin
    let domains =
      Bvf_util.Prof.span main_prof "spawn" (fun () ->
          Array.init jobs (fun i -> Domain.spawn (fun () -> run_shard i)))
    in
    let shards =
      Bvf_util.Prof.span main_prof "join" (fun () ->
          Array.to_list
            (Array.mapi
               (fun i d ->
                  shard_of_campaign ~index:i ~seed:(seed + i)
                    ~iterations:counts.(i) (Domain.join d))
               domains))
    in
    (match trace with
     | Some path ->
       Bvf_util.Prof.span main_prof "trace-merge" (fun () ->
           let shard_paths =
             List.init jobs (fun i -> shard_trace_path path i)
           in
           ignore (Telemetry.merge_shards ~into:path shard_paths);
           List.iter
             (fun p -> if Sys.file_exists p then Sys.remove p)
             shard_paths)
     | None -> ());
    let cov = Coverage.create () in
    Bvf_util.Prof.span main_prof "absorb" (fun () ->
        List.iter
          (fun sh -> ignore (Coverage.absorb_named cov sh.sh_edges))
          shards);
    Bvf_util.Prof.span main_prof "merge" (fun () ->
        {
          pr_jobs = jobs;
          pr_iterations = iterations;
          pr_stats = merge_stats ~jobs cov shards;
          pr_cov = cov;
          pr_corpus = merge_corpora ~jobs shards;
          pr_shards = shards;
        })
  end

let digest (r : result) : string = Campaign.digest r.pr_stats

let pp_summary fmt (r : result) : unit =
  Format.fprintf fmt "%a" Campaign.pp_summary r.pr_stats;
  if r.pr_jobs > 1 then
    List.iter
      (fun sh ->
         Format.fprintf fmt
           "  shard %d (seed %d): %d programs, %d edges, %d findings, %d reboots@."
           sh.sh_index sh.sh_seed sh.sh_stats.Campaign.st_generated
           sh.sh_stats.Campaign.st_edges
           (Hashtbl.length sh.sh_stats.Campaign.st_findings)
           sh.sh_stats.Campaign.st_reboots)
      r.pr_shards
