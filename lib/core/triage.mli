(** Bug triage (paper section 6.5): pinpoint the guilty instruction from
    a report's program counter and slice backwards through the def-use
    chain to collect the operations that produced its operands — the
    starting point for locating the incorrect verifier logic. *)

type slice = {
  guilty_pc : int option;
  guilty : Bvf_ebpf.Insn.t option;
  relevant : (int * Bvf_ebpf.Insn.t) list; (** backward def-use slice *)
}

val deps_of : Bvf_ebpf.Insn.t -> Bvf_ebpf.Insn.reg list

val backward_slice :
  Bvf_ebpf.Insn.t array -> int -> (int * Bvf_ebpf.Insn.t) list
(** Linear backward def-use walk from the given pc. *)

val slice_report :
  Bvf_verifier.Verifier.loaded -> Bvf_kernel.Report.t -> slice

val pp_slice : Format.formatter -> slice -> unit
val slice_to_string : slice -> string

(** {1 Harness crashes}

    A supervised worker that dies or hangs is a finding about the
    harness itself — an analyzer bug the in-process runner could never
    report, because it would have died with it.  The supervisor records
    one of these artifacts per kill, quarantines the implicated
    iteration, and reports the set at join; they are never mixed into
    the oracle's verifier-bug findings. *)

type crash_cause =
  | Crash_exit of int    (** worker exited with this non-zero code *)
  | Crash_signal of int  (** worker was killed by this signal *)
  | Crash_hang           (** no heartbeat within the watchdog deadline *)

type harness_crash = {
  hc_worker : int;            (** worker (= shard) index *)
  hc_iteration : int option;
      (** global iteration being executed when the worker died, when
          the heartbeat recorded one *)
  hc_cause : crash_cause;
  hc_restarts : int;          (** restarts of this worker so far *)
}

val crash_cause_to_string : crash_cause -> string
val harness_crash_to_string : harness_crash -> string

val harness_crash_to_json : harness_crash -> string
(** One flat JSON object (no trailing newline), in the telemetry
    dialect — the supervisor's [crash-NNN.json] artifact format. *)

val harness_crash_of_json : string -> harness_crash option
(** Inverse of {!harness_crash_to_json}; [None] on foreign or
    malformed lines. *)
