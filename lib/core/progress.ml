(* Syzkaller-style live status line for long fuzzing runs:

     2026/08/06 12:00:00 execs: 48128 (1604/sec), accepted 31.2%,
       edges: 183, findings: 4, peak states: 19

   Strictly an observer: it reads campaign stats from the per-shard
   [on_step] hooks and writes to a channel of the caller's choosing
   (stderr for the CLI), so traces, stats and digests stay
   byte-identical with or without it.  Shards publish into per-slot
   atomics and any shard's hook may print (claiming the tick with a CAS
   on the last-print time), so no monitor domain is needed. *)

type slot = {
  sl_generated : int Atomic.t;
  sl_accepted : int Atomic.t;
  sl_edges : int Atomic.t;
  sl_findings : int Atomic.t;
  sl_peak_states : int Atomic.t;
}

type t = {
  out : out_channel;
  every_s : float;
  t0 : float;
  last_print : float Atomic.t;
  shards : slot array;
}

let create ?(out = stderr) ~(every_s : float) ~(jobs : int) () : t =
  let now = Bvf_util.Mclock.now_s () in
  {
    out;
    every_s;
    t0 = now;
    last_print = Atomic.make now;
    shards =
      Array.init (max 1 jobs) (fun _ ->
          {
            sl_generated = Atomic.make 0;
            sl_accepted = Atomic.make 0;
            sl_edges = Atomic.make 0;
            sl_findings = Atomic.make 0;
            sl_peak_states = Atomic.make 0;
          });
  }

let print_line (t : t) : unit =
  let sum f = Array.fold_left (fun n s -> n + Atomic.get (f s)) 0 t.shards
  and maxi f =
    Array.fold_left (fun n s -> max n (Atomic.get (f s))) 0 t.shards
  in
  let generated = sum (fun s -> s.sl_generated) in
  let accepted = sum (fun s -> s.sl_accepted) in
  let elapsed = Bvf_util.Mclock.elapsed_s ~since:t.t0 in
  let rate =
    if elapsed > 0.0 then float_of_int generated /. elapsed else 0.0
  in
  let pct =
    if generated > 0 then
      100.0 *. float_of_int accepted /. float_of_int generated
    else 0.0
  in
  Printf.fprintf t.out
    "execs: %d (%.0f/sec), accepted %.1f%%, edges: %d, findings: %d, peak states: %d\n%!"
    generated rate pct
    (sum (fun s -> s.sl_edges))
    (sum (fun s -> s.sl_findings))
    (maxi (fun s -> s.sl_peak_states))

(* Publish one shard's stats, then print if this call wins the tick.
   The CAS both rate-limits and serializes: concurrent hooks race for
   the same [last_print] value and exactly one advances it. *)
let update (t : t) ~(shard : int) (c : Campaign.t) : unit =
  let slot = t.shards.(shard mod Array.length t.shards) in
  let stats = c.Campaign.stats in
  Atomic.set slot.sl_generated stats.Campaign.st_generated;
  Atomic.set slot.sl_accepted stats.Campaign.st_accepted;
  Atomic.set slot.sl_edges stats.Campaign.st_edges;
  Atomic.set slot.sl_findings
    (Hashtbl.length stats.Campaign.st_findings);
  Atomic.set slot.sl_peak_states
    stats.Campaign.st_vstats.Bvf_verifier.Vstats.ag_peak_states_max;
  let now = Bvf_util.Mclock.now_s () in
  let last = Atomic.get t.last_print in
  if now -. last >= t.every_s
     && Atomic.compare_and_set t.last_print last now
  then print_line t

(* Closing line, unconditional: the run's final totals. *)
let finish (t : t) : unit = print_line t

let observer (t : t) : int -> Campaign.t -> unit =
  fun shard c -> update t ~shard c
