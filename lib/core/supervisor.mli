(** Supervised, crash- and hang-resilient campaign runner.

    {!Parallel} shards a campaign across OCaml domains in one process —
    fast, but a single analyzer crash (or an unbounded analysis the
    {!Bvf_verifier.Venv} budgets somehow miss) takes every shard's
    in-memory state with it.  This module runs the same sharded
    campaign across {b forked OS worker processes} under a watchdog:

    - each worker runs one deterministic shard (seed [seed + i], the
      round-robin split of {!Parallel.shard_iterations}), writing an
      incremental checkpoint ([worker-<i>.ckpt]) at every
      [checkpoint_every] barrier and a heartbeat file
      ([worker-<i>.hb]) before every iteration;
    - the supervisor polls heartbeats and child exits: a non-zero
      exit, a fatal signal, or a heartbeat older than [deadline_s]
      kills the worker and restarts it from its last checkpoint with
      exponential backoff;
    - every kill is recorded as a {!Triage.harness_crash} artifact
      ([crash-NNN.json]) and the implicated iteration is {b
      quarantined} ([quarantine.list]): the restarted worker replays
      its segment deterministically but {!Campaign.step_skip}s the
      quarantined iteration, so a deterministic crasher cannot wedge
      the pool;
    - a worker that exceeds [max_restarts] is {b retired}: the pool
      shrinks, its last checkpoint still joins the merge, and the
      abandoned remainder of its shard is reported — never silently
      dropped;
    - the join reuses {!Parallel}'s merge machinery, so a fault-free
      supervised run produces the same merged stats, digest and trace
      bytes as [Parallel.run ~jobs:workers] (when no barrier lands
      inside the run).

    Rerunning with the same state [dir] resumes every worker from its
    last checkpoint.  See [docs/RESILIENCE.md] for the supervision
    state machine and the exit-code table. *)

(** {1 Worker checkpoints} *)

type worker_snapshot = {
  wk_shard : int;    (** worker (= shard) index *)
  wk_workers : int;  (** pool width the shard was cut for *)
  wk_trace_pos : int;
      (** trace byte offset at the barrier; a restart truncates the
          worker's trace file here so replayed iterations never appear
          twice *)
  wk_snapshot : Campaign.snapshot;  (** local iteration numbering *)
}

val worker_tag : string
(** {!Checkpoint} container tag for worker checkpoint files. *)

val load_worker : path:string -> (worker_snapshot, Checkpoint.error) result

val globalize : worker_snapshot -> Campaign.snapshot
(** Renumber a worker checkpoint to global iterations
    ([local * wk_workers + wk_shard], as {!Parallel.global_iteration}),
    making it mergeable with {!Parallel.merge_snapshots} — the [bvf
    merge] path for checkpoints salvaged from a killed supervised run.
    The result has [sn_merged] set: reportable, not resumable. *)

(** {1 Outcome} *)

type worker_outcome =
  | Outcome_completed    (** finished its shard *)
  | Outcome_retired      (** exceeded [max_restarts]; pool shrank *)
  | Outcome_interrupted  (** stopped by the supervisor's own stop *)

type worker_report = {
  wr_worker : int;
  wr_outcome : worker_outcome;
  wr_assigned : int;   (** local iterations budgeted for the shard *)
  wr_completed : int;  (** local iterations in its final checkpoint *)
  wr_restarts : int;
}

type report = {
  rp_workers : worker_report list;  (** in index order *)
  rp_crashes : Triage.harness_crash list;  (** in occurrence order *)
  rp_quarantined : int list;
      (** global iterations skipped (preloaded + crash-implicated),
          sorted ascending *)
  rp_abandoned : (int * int * int) list;
      (** [(worker, first_local, last_local)] ranges a retired or
          interrupted worker never executed *)
}

type outcome =
  | Completed of Parallel.result * report
      (** every worker completed or retired; the result merges all
          final worker checkpoints *)
  | Interrupted of report
      (** [stop] fired: workers were signalled, saved final
          checkpoints and exited; rerun with the same [dir] to resume,
          or [bvf merge] the worker checkpoints *)

val quarantine_of_file : string -> int list
(** Parse a [quarantine.list]-format file (one global iteration per
    line, [#] comments and blanks ignored); missing file is empty. *)

val pp_report : Format.formatter -> report -> unit

(** {1 Running} *)

val run :
  ?sample_every:int ->
  ?log_level:int ->
  ?trace:string ->
  ?failslab_rate:float ->
  ?failslab_seed:int ->
  ?checkpoint_every:int ->
  ?deadline_s:float ->
  ?poll_s:float ->
  ?max_restarts:int ->
  ?backoff_s:float ->
  ?quarantine:int list ->
  ?fault:(worker:int -> local:int -> global:int -> unit) ->
  ?prof:Bvf_util.Prof.session ->
  ?stop:(unit -> bool) ->
  workers:int -> seed:int -> iterations:int -> dir:string ->
  Campaign.strategy -> Bvf_kernel.Kconfig.t -> outcome
(** Run [iterations] total iterations sharded across [workers] forked
    processes supervised from the calling process, with protocol files
    under [dir] (created if missing).

    [checkpoint_every] (default 1000) is the worker barrier cadence in
    local iterations; [deadline_s] (default 30) the heartbeat watchdog
    deadline; [poll_s] (default 0.05) the supervisor poll interval;
    [max_restarts] (default 5) per-worker restarts before retiring;
    [backoff_s] (default 0.5) the base of the exponential restart
    backoff ([backoff_s * 2^(restarts-1)]).

    [quarantine] preloads global iterations to skip — the chaos
    harness feeds a disturbed run's [quarantine.list] to a fault-free
    reference run to compare digests over the undisturbed set.
    [fault ~worker ~local ~global] is a deterministic fault-injection
    hook run {b in the child} before each non-skipped iteration; tests
    use it to crash, self-kill or hang a chosen iteration.  [stop] is
    polled by the supervisor; when it returns [true] workers receive
    SIGTERM, save and exit — the CLI's SIGINT/SIGTERM path.

    [prof] (default {!Bvf_util.Prof.null}) records the run as profiler
    spans: track [i] carries worker [i]'s "iterate" span with the
    campaign phase, "heartbeat" and "checkpoint" spans nested inside,
    track [workers] the supervisor's fork/restart/join work.  Each
    child records into its own session and hands the spans to the
    parent through a [worker-<i>.prof] protocol file at clean exit
    ({!Bvf_util.Prof.save}); a crashed or interrupted worker leaves no
    profile, so its track is absent rather than partial.  Pure
    observation — a profiled run's digest and trace are byte-identical
    to an unprofiled one.

    The state directory is owned by exactly one live supervisor: a
    [supervisor.lock] file records the owner's pid and is broken only
    when that pid is dead — two supervisors sharing [dir] would treat
    each other's workers as crashed children and clobber the protocol
    files.

    @raise Invalid_argument when [workers < 1].
    @raise Campaign.Environment when [dir] is locked by a running
    supervisor, or when the run completes but no worker ever produced
    a checkpoint to merge. *)
