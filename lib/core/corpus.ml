open Cimport

(* Coverage-guided corpus: programs that exercised new verifier branches
   are preserved and serve as mutation seeds, mirroring the Syzkaller
   feedback loop BVF reuses (paper section 5).

   Long campaigns additionally need the reboot-storm breaker: a corpus
   entry whose descendants keep crashing the kernel would otherwise be
   re-picked forever (it carries high edge weight precisely because it
   reaches deep code).  Entries implicated in enough *consecutive* fatal
   reboots are quarantined — removed from the pick pool — the way
   syzkaller suppresses crash-reproducing seeds. *)

type entry = {
  request : Verifier.request;
  new_edges : int;      (* edges this entry contributed when added *)
  added_at : int;       (* iteration number *)
  mutable blamed : int; (* consecutive fatal reboots implicated in *)
}

type t = {
  mutable entries : entry list;
  mutable total : int;
  mutable quarantined : int; (* entries removed by the storm breaker *)
  max_size : int;
}

let create ?(max_size = 256) () =
  { entries = []; total = 0; quarantined = 0; max_size }

let size (t : t) : int = t.total

let quarantined (t : t) : int = t.quarantined

let add (t : t) ~(iteration : int) ~(new_edges : int)
    (request : Verifier.request) : unit =
  if new_edges > 0 then begin
    t.entries <-
      { request; new_edges; added_at = iteration; blamed = 0 } :: t.entries;
    t.total <- t.total + 1;
    if t.total > t.max_size then begin
      (* drop the weakest old half when full *)
      let sorted =
        List.sort (fun a b -> compare b.new_edges a.new_edges) t.entries
      in
      let keep = t.max_size / 2 in
      t.entries <- List.filteri (fun i _ -> i < keep) sorted;
      t.total <- keep
    end
  end

let entries (t : t) : entry list = t.entries

(* Energy of an entry: the weight {!pick_entry} gives it (edges
   contributed plus a recency bonus). *)
let energy (e : entry) : int = 1 + e.new_edges + (e.added_at / 64)

(* Rebuild a corpus from entries gathered elsewhere (e.g. the shards of
   a parallel campaign, with [added_at] already remapped to global
   iterations).  Entries are re-scored under their new iteration
   numbers; when over capacity only the highest-energy ones survive.
   The sort is stable, so the result is deterministic in the input
   order. *)
let of_entries ?(max_size = 256) (es : entry list) : t =
  let scored =
    List.stable_sort (fun a b -> compare (energy b) (energy a)) es
  in
  let kept =
    if List.length scored <= max_size then scored
    else List.filteri (fun i _ -> i < max_size) scored
  in
  { entries = kept; total = List.length kept; quarantined = 0; max_size }

(* Pick a seed entry: weighted towards entries that contributed more
   edges, with a recency bonus. *)
let pick_entry (t : t) (rng : Rng.t) : entry option =
  match t.entries with
  | [] -> None
  | entries ->
    let weighted = List.map (fun e -> (energy e, e)) entries in
    Some (Rng.weighted rng weighted)

let pick (t : t) (rng : Rng.t) : Verifier.request option =
  Option.map (fun e -> e.request) (pick_entry t rng)

(* -- Reboot-storm breaker --------------------------------------------- *)

(* A run seeded from [e] ended in a fatal reboot.  After
   [quarantine_after] consecutive implications the entry is removed.
   Returns true when the entry was quarantined. *)
let blame (t : t) (e : entry) ~(quarantine_after : int) : bool =
  e.blamed <- e.blamed + 1;
  if e.blamed >= quarantine_after then begin
    let before = t.total in
    t.entries <- List.filter (fun x -> x != e) t.entries;
    t.total <- List.length t.entries;
    if t.total < before then t.quarantined <- t.quarantined + 1;
    true
  end
  else false

(* A run seeded from [e] completed without a fatal reboot: the storm is
   over, the entry is rehabilitated. *)
let absolve (e : entry) : unit = e.blamed <- 0
