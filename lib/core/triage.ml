open Cimport

(* Bug triage (paper section 6.5 "Bug Triage"): given a faulting
   program, pinpoint the guilty instruction from the report's program
   counter and slice backwards through the def-use chain to collect the
   operations that produced its operands — the starting point for
   locating the incorrect verifier logic. *)

type slice = {
  guilty_pc : int option;
  guilty : Insn.t option;
  relevant : (int * Insn.t) list; (* backward def-use slice, in order *)
}

(* Registers whose values feed instruction [i]. *)
let deps_of (i : Insn.t) : Insn.reg list = Insn.regs_read i

(* Walk backwards from [pc], tracking which registers we still need the
   definition of.  Control flow is approximated linearly (sound enough
   for triage display purposes). *)
let backward_slice (insns : Insn.t array) (pc : int) : (int * Insn.t) list
  =
  if pc < 0 || pc >= Array.length insns then []
  else begin
    let needed = ref (deps_of insns.(pc)) in
    let out = ref [] in
    let remove r = needed := List.filter (fun x -> x <> r) !needed in
    let add r = if not (List.mem r !needed) then needed := r :: !needed in
    let idx = ref (pc - 1) in
    while !idx >= 0 && !needed <> [] do
      let i = insns.(!idx) in
      let writes = Insn.regs_written i in
      let relevant = List.exists (fun w -> List.mem w !needed) writes in
      if relevant then begin
        out := (!idx, i) :: !out;
        List.iter remove writes;
        List.iter add (deps_of i)
      end;
      decr idx
    done;
    !out
  end

let slice_report (prog : Verifier.loaded) (report : Report.t) : slice =
  match report.Report.pc with
  | None -> { guilty_pc = None; guilty = None; relevant = [] }
  | Some pc ->
    let insns = prog.Verifier.l_insns in
    if pc < 0 || pc >= Array.length insns then
      { guilty_pc = Some pc; guilty = None; relevant = [] }
    else
      { guilty_pc = Some pc; guilty = Some insns.(pc);
        relevant = backward_slice insns pc }

let pp_slice fmt (s : slice) : unit =
  (match s.guilty_pc, s.guilty with
   | Some pc, Some i ->
     Format.fprintf fmt "guilty insn at %d: %s@." pc (Disasm.insn_to_string i)
   | Some pc, None -> Format.fprintf fmt "guilty pc %d (out of range)@." pc
   | None, _ -> Format.fprintf fmt "no guilty pc recorded@.");
  List.iter
    (fun (pc, i) ->
       Format.fprintf fmt "  dep %3d: %s@." pc (Disasm.insn_to_string i))
    s.relevant

let slice_to_string (s : slice) : string =
  Format.asprintf "%a" pp_slice s

(* -- Harness crashes ----------------------------------------------------- *)

(* A supervised worker died or hung.  This is a finding about the
   *harness* (an analyzer bug the in-process runner could never report:
   it would have died with it), so it gets its own artifact class —
   recorded, quarantined and reported, but never mixed into the oracle's
   verifier-bug findings. *)

type crash_cause =
  | Crash_exit of int    (* non-zero exit code *)
  | Crash_signal of int  (* killed by this signal *)
  | Crash_hang           (* no heartbeat within the deadline *)

type harness_crash = {
  hc_worker : int;            (* worker (= shard) index *)
  hc_iteration : int option;  (* global iteration being executed, when
                                 the heartbeat recorded one *)
  hc_cause : crash_cause;
  hc_restarts : int;          (* restarts of this worker so far *)
}

let crash_cause_to_string = function
  | Crash_exit code -> Printf.sprintf "exit %d" code
  | Crash_signal sg -> Printf.sprintf "signal %d" sg
  | Crash_hang -> "hang (heartbeat deadline exceeded)"

let harness_crash_to_string (c : harness_crash) : string =
  Printf.sprintf "worker %d %s%s after %d restart%s" c.hc_worker
    (crash_cause_to_string c.hc_cause)
    (match c.hc_iteration with
     | Some i -> Printf.sprintf " at iteration %d" i
     | None -> " before any heartbeat")
    c.hc_restarts
    (if c.hc_restarts = 1 then "" else "s")

(* One flat JSON object per crash, same dialect as the telemetry trace
   (parseable by Telemetry.parse_object). *)
let harness_crash_to_json (c : harness_crash) : string =
  let b = Buffer.create 96 in
  Printf.bprintf b "{\"ev\":\"harness_crash\",\"worker\":%d" c.hc_worker;
  (match c.hc_iteration with
   | Some i -> Printf.bprintf b ",\"iter\":%d" i
   | None -> ());
  (match c.hc_cause with
   | Crash_exit code -> Printf.bprintf b ",\"cause\":\"exit\",\"code\":%d" code
   | Crash_signal sg ->
     Printf.bprintf b ",\"cause\":\"signal\",\"signal\":%d" sg
   | Crash_hang -> Buffer.add_string b ",\"cause\":\"hang\"");
  Printf.bprintf b ",\"restarts\":%d}" c.hc_restarts;
  Buffer.contents b

let harness_crash_of_json (line : string) : harness_crash option =
  match
    let fields = Telemetry.parse_object (String.trim line) in
    let str k =
      match List.assoc_opt k fields with
      | Some (Telemetry.Jstr s) -> Some s
      | _ -> None
    in
    let int k =
      match List.assoc_opt k fields with
      | Some (Telemetry.Jnum f) -> Some (int_of_float f)
      | _ -> None
    in
    if str "ev" <> Some "harness_crash" then None
    else
      match str "cause", int "worker", int "restarts" with
      | Some cause, Some worker, Some restarts ->
        let hc_cause =
          match cause with
          | "exit" -> Crash_exit (Option.value (int "code") ~default:1)
          | "signal" ->
            Crash_signal (Option.value (int "signal") ~default:9)
          | _ -> Crash_hang
        in
        Some
          { hc_worker = worker; hc_iteration = int "iter"; hc_cause;
            hc_restarts = restarts }
      | _ -> None
  with
  | v -> v
  | exception Telemetry.Parse -> None
