(** Deterministic PRNG (splitmix64) so fuzzing campaigns, tests and
    benches are reproducible from a seed. *)

type t

val create : int -> t
val next : t -> int64

val state : t -> int64
(** Snapshot of the stream position (the whole generator state). *)

val of_state : int64 -> t
(** Resume a stream from a {!state} snapshot: the restored generator
    produces exactly the continuation of the snapshotted one. *)

val int : t -> int -> int
(** Uniform in [\[0, n)].  @raise Invalid_argument when [n <= 0]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** True with probability [p]. *)

val choose : t -> 'a list -> 'a
val choose_opt : t -> 'a list -> 'a option

val weighted : t -> (int * 'a) list -> 'a
(** Weighted choice; zero-weight entries are never picked. *)

val interesting_int64 : int64 list
(** Boundary and magic constants that historically find bugs. *)

val interesting : t -> int64
