(** Campaign telemetry: a JSONL event stream (one JSON object per line)
    written as the campaign runs, plus the aggregation behind
    [bvf stats].

    Determinism contract: events emitted by the campaign itself carry
    {b no wall-clock times} — two campaigns with the same seed produce
    byte-identical traces whatever the machine load, and a [--jobs 1]
    trace equals the sequential one.  The only timed record, [Profile],
    is appended once by the CLI after the run, from the merged phase
    counters. *)

type event =
  | Generated of { iter : int; prog_type : string; insns : int }
      (** a program left the generator *)
  | Accepted of {
      iter : int;
      prog_type : string;
      insns : int;           (** post-rewrite instruction count *)
      insn_processed : int;  (** verification effort *)
    }
  | Rejected of {
      iter : int;
      prog_type : string;
      reason : Bvf_verifier.Reject_reason.t;
      errno : string;        (** kernel-style errno name, e.g. EACCES *)
      pc : int;
      msg : string;          (** canonical verifier message *)
    }
  | Finding of {
      iter : int;
      fingerprint : string;
      bug : string option;   (** ground-truth attribution, when known *)
      correctness : bool;
    }  (** first sighting only; dedup'd like {!Campaign.stats} *)
  | Vstats of {
      iter : int;
      insn_processed : int;
      total_states : int;
      peak_states : int;
      max_states_per_insn : int;
      prune_hits : int;
      prune_misses : int;
      loops_detected : int;
      branch_hwm : int;
      widen_rounds : int;
      loop_heads : int;
    }
      (** veristat-style verifier counters of the iteration's analysis.
          Deterministic (no wall times), so part of the byte-identical
          trace contract.  Emitted only when the analysis ran.
          [widen_rounds] and [loop_heads] postdate the frozen counter
          schema; traces without them parse as zero. *)
  | Checkpoint of { iter : int }
  | Quarantined of { iter : int }
      (** the iteration was skipped because a harness crash in a
          previous run quarantined it ({!Campaign.step_skip}): disturbed
          work is listed in the trace, never silently dropped *)
  | Shard_merge of { shards : int; events : int }
      (** appended by {!merge_shards} *)
  | Profile of {
      programs : int;
      gen_s : float;
      verify_s : float;
      sanitize_s : float;
      exec_s : float;
      wall_s : float;
      gen_w : float;
      verify_w : float;
      sanitize_w : float;
      exec_w : float;
    }
      (** CLI-appended phase profile; the only event carrying times.
          The [_w] fields are per-phase minor-words attribution and
          postdate the schema: older traces parse with them at zero. *)
  | Service_hit of { seq : int; key : string }
      (** a service request's verdict came from the cache *)
  | Service_miss of { seq : int; key : string }
      (** a service request had to be verified *)
  | Service_admitted of {
      seq : int;
      key : string;
      insns : int;           (** post-rewrite instruction count *)
      insn_processed : int;  (** verification effort (0 on a hit) *)
    }  (** a service request was accepted by the verifier *)
  | Service_rejected of {
      seq : int;
      key : string;
      reason : Bvf_verifier.Reject_reason.t;
    }  (** a service request was rejected by the verifier *)
      (** The four service events are emitted by [bvf batch]/[bvf serve]
          (docs/SERVICE.md): one cache event and one verdict event per
          request, where [seq] is the global request sequence number and
          [key] the {!Vcache} content hash.  Deterministic except for
          the hit/miss split, which depends on cache history. *)

val iter_of : event -> int option
(** The iteration an event belongs to; the request sequence number for
    service events; [None] for [Shard_merge] and [Profile]. *)

val to_json : event -> string
(** One-line JSON encoding (no trailing newline). *)

val of_json : string -> event option
(** Inverse of {!to_json}; [None] on blank lines, parse errors or
    unknown ["ev"] tags, so readers skip foreign lines instead of
    failing. *)

(** {1 Sinks} *)

type sink
(** An open trace file.  All [emit]s are appended in call order. *)

val null : sink
(** Swallows everything: the default when no [--trace] was given. *)

val create : ?iter_map:(int -> int) -> string -> sink
(** Open (truncate) [path].  [iter_map] rewrites every event's
    iteration on emit — sharded campaigns pass their local-to-global
    mapping so merged traces are numbered like a sequential run. *)

val emit : sink -> event -> unit
val close : sink -> unit
(** Flush and close; [emit] after [close] (and everything on {!null})
    is a no-op. *)

val flush : sink -> unit
(** Push buffered events to disk without closing — the supervisor's
    workers flush at every heartbeat so a SIGKILL loses at most the
    current iteration's events. *)

val pos : sink -> int
(** Byte offset after flushing: everything emitted so far is on disk
    below this offset.  Worker checkpoints record it so a restart can
    {!reopen} the trace exactly at the barrier. *)

val reopen : ?iter_map:(int -> int) -> string -> pos:int -> sink
(** Reopen [path] for appending from byte [pos], truncating whatever a
    crashed writer appended past it — replayed iterations never appear
    twice in the trace. *)

val read_file : string -> event list
(** Parse a JSONL trace, skipping unparsable lines. *)

val merge_shards : into:string -> string list -> int
(** Merge per-shard trace files into [into]: concatenate, stable-sort
    by {!iter_of} (shard-merge/profile records stay last), append a
    [Shard_merge] event.  Returns the number of merged events.  Missing
    shard files are treated as empty. *)

(** {1 Flat JSON helpers}

    The trace schema is flat (string / int / float / bool fields, one
    object per line); these are the shared encoder/parser pieces other
    JSONL emitters (the veristat table) reuse so every JSON line in the
    repository round-trips through one parser. *)

type jvalue = Jstr of string | Jnum of float | Jbool of bool | Jnull

exception Parse

val parse_object : string -> (string * jvalue) list
(** Parse one flat JSON object; raises {!Parse} on malformed input or
    nested containers (not part of any schema here). *)

val escape : Buffer.t -> string -> unit
(** Append a JSON-escaped copy of the string (no surrounding quotes). *)

(** {1 Aggregation — the [bvf stats] core} *)

(** Distribution of one deterministic counter over a trace's vstats
    events: total plus nearest-rank p50/p95. *)
type dist = { d_total : int; d_p50 : int; d_p95 : int }

type vstats_summary = {
  vsu_count : int;  (** vstats events seen *)
  vsu_insn_processed : dist;
  vsu_peak_states : dist;
  vsu_widen_rounds : dist;
  vsu_loop_heads : int;  (** loop heads summed across all analyses *)
}

(** Service traffic over a trace's service events (see docs/SERVICE.md
    and docs/OBSERVABILITY.md). *)
type service_summary = {
  ssu_requests : int;  (** verdict events: admitted + rejected *)
  ssu_hits : int;
  ssu_misses : int;
  ssu_admitted : int;
  ssu_rejected : int;
}

type summary = {
  su_events : int;
  su_generated : int;
  su_accepted : int;
  su_rejected : int;
  su_findings : int;
  su_checkpoints : int;
  su_quarantined : int;
  su_by_type : (string * (int * int)) list;
      (** prog type -> (generated, accepted), sorted by name *)
  su_reasons : (Bvf_verifier.Reject_reason.t * int) list;
      (** rejection taxonomy, most frequent first *)
  su_vstats : vstats_summary option;
      (** verifier-counter distributions; [None] when the trace carries
          no vstats events (pre-PR-5 traces stay summarizable) *)
  su_service : service_summary option;
      (** service traffic; [None] when the trace carries no service
          events (campaign traces are unaffected) *)
  su_profile : event option;  (** the last [Profile] record, if any *)
}

val summarize : event list -> summary

val unknown_rejections : summary -> int
(** Rejections classified as {!Bvf_verifier.Reject_reason.Unknown}: the
    taxonomy-gap count the CI gate fails on. *)

val pp_summary : Format.formatter -> summary -> unit
(** The acceptance table: totals, per-prog-type acceptance, the
    rejection taxonomy histogram, and the phase profile when present. *)
