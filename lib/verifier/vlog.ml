(* Verifier log buffer: leveled, capped, truncation-marked.  See the
   interface for the level semantics. *)

type t = {
  buf : Buffer.t;
  lvl : int;
  cap : int;
  mutable trunc : bool;
}

let default_cap = 1_048_576

let create ?(cap = default_cap) (lvl : int) : t =
  { buf = Buffer.create (if lvl > 0 then 256 else 0); lvl; cap;
    trunc = false }

let level (t : t) : int = t.lvl

let enabled (t : t) (l : int) : bool = t.lvl >= l

let add (t : t) (s : string) : unit =
  if not t.trunc then begin
    if Buffer.length t.buf + String.length s > t.cap then t.trunc <- true
    else Buffer.add_string t.buf s
  end

(* Below the active level the format string is skipped entirely
   ([ikfprintf] consumes the arguments without interpreting them) —
   disabled logging must not pay for formatting on the hot path. *)
let logf (t : t) ~(level : int) fmt =
  if t.lvl >= level then Format.kasprintf (add t) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let truncated (t : t) : bool = t.trunc

let contents (t : t) : string =
  Buffer.contents t.buf ^ if t.trunc then "... log truncated\n" else ""
