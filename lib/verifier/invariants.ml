open Vimport

(* Invariant lint over abstract register states: the analogue of the
   kernel's reg_bounds_sanity_check() under CONFIG_BPF_DEBUG.

   Every check is an internal-consistency property of a single
   [Regstate.t] that the clean verifier is expected to maintain at every
   transition.  A violation is NOT a finding — it says the verifier's
   own bookkeeping is inconsistent, regardless of whether any program
   was mis-judged — so it is recorded as a distinct class and never
   flows through the oracle. *)

type check =
  | C_unsigned_order   (* umin <=u umax *)
  | C_signed_order     (* smin <=s smax *)
  | C_tnum_wellformed  (* tnum value and mask bits are disjoint *)
  | C_tnum_range       (* tnum hull intersects [umin, umax] *)
  | C_bounds32         (* upper 32 bits known zero => umax fits 32 bits *)
  | C_sign_bit         (* known sign bit agrees with the signed range *)
  | C_sync_stable      (* sync is a no-op: bounds already propagated *)
  | C_scalar_shape     (* scalars carry no pointer-only fields *)
  | C_ptr_shape        (* packet range only on packet pointers *)
  | C_nullable_id      (* maybe_null pointers carry a non-zero id *)
  | C_widen_extensive  (* widen old cur subsumes both old and cur *)
  | C_widen_idempotent (* re-widening the widened state is a no-op *)

let check_to_string = function
  | C_unsigned_order -> "unsigned-order"
  | C_signed_order -> "signed-order"
  | C_tnum_wellformed -> "tnum-wellformed"
  | C_tnum_range -> "tnum-range"
  | C_bounds32 -> "bounds32"
  | C_sign_bit -> "sign-bit"
  | C_sync_stable -> "sync-stable"
  | C_scalar_shape -> "scalar-shape"
  | C_ptr_shape -> "ptr-shape"
  | C_nullable_id -> "nullable-id"
  | C_widen_extensive -> "widen-extensive"
  | C_widen_idempotent -> "widen-idempotent"

type violation = {
  v_check : check;
  v_pc : int;
  v_loc : string; (* "r3", "fp0[-8]" *)
  v_reg : string; (* Regstate.to_string at the time of the check *)
  v_detail : string;
}

let to_string (v : violation) : string =
  Printf.sprintf "pc %d %s: %s: %s (%s)" v.v_pc v.v_loc
    (check_to_string v.v_check) v.v_detail v.v_reg

(* All violated checks of one register state (empty = well formed). *)
let check_reg (r : Regstate.t) : (check * string) list =
  let t = r.Regstate.var_off in
  let bad = ref [] in
  let fail c fmt = Format.kasprintf (fun d -> bad := (c, d) :: !bad) fmt in
  let tnum_checks () =
    if Int64.logand t.Tnum.value t.Tnum.mask <> 0L then
      fail C_tnum_wellformed "value %Lx overlaps mask %Lx" t.Tnum.value
        t.Tnum.mask
  in
  (match r.Regstate.kind with
   | Regstate.Not_init -> ()
   | Regstate.Scalar ->
     tnum_checks ();
     if not (Word.ule r.Regstate.umin r.Regstate.umax) then
       fail C_unsigned_order "umin %Lu > umax %Lu" r.Regstate.umin
         r.Regstate.umax;
     if r.Regstate.smin > r.Regstate.smax then
       fail C_signed_order "smin %Ld > smax %Ld" r.Regstate.smin
         r.Regstate.smax;
     (* the tnum's hull and the unsigned range must intersect; the hull
        need not CONTAIN the range (bound_offset can know more about low
        bits than about magnitude) but an empty intersection means the
        abstract value has no members at all *)
     if not
          (Word.ule (Tnum.umin t) r.Regstate.umax
           && Word.ule r.Regstate.umin (Tnum.umax t)) then
       fail C_tnum_range "tnum hull [%Lu,%Lu] misses range [%Lu,%Lu]"
         (Tnum.umin t) (Tnum.umax t) r.Regstate.umin r.Regstate.umax;
     if Int64.shift_right_logical (Int64.logor t.Tnum.value t.Tnum.mask) 32
        = 0L
        && not (Word.ule r.Regstate.umax 0xFFFF_FFFFL) then
       fail C_bounds32 "upper 32 bits known zero but umax %Lu > U32_MAX"
         r.Regstate.umax;
     if Int64.logand t.Tnum.mask Int64.min_int = 0L then begin
       if Int64.logand t.Tnum.value Int64.min_int = 0L then begin
         if r.Regstate.smin < 0L then
           fail C_sign_bit "sign bit known zero but smin %Ld < 0"
             r.Regstate.smin
       end
       else if r.Regstate.smax >= 0L then
         fail C_sign_bit "sign bit known one but smax %Ld >= 0"
           r.Regstate.smax
     end;
     if not (Regstate.equal_bounds (Regstate.sync r) r) then
       fail C_sync_stable "sync tightens to %s"
         (Regstate.to_string (Regstate.sync r));
     if r.Regstate.off <> 0 || r.Regstate.range <> 0 then
       fail C_scalar_shape "off=%d range=%d on a scalar" r.Regstate.off
         r.Regstate.range
   | Regstate.Ptr p ->
     tnum_checks ();
     if r.Regstate.range < 0
        || (r.Regstate.range > 0 && p.Regstate.pk <> Regstate.P_packet)
     then
       fail C_ptr_shape "range %d on %s" r.Regstate.range
         (Regstate.ptr_kind_name p.Regstate.pk);
     if p.Regstate.maybe_null && p.Regstate.id = 0 then
       fail C_nullable_id "maybe_null without an id");
  List.rev !bad

(* Lint a whole verifier state: every register and spill of every
   frame. *)
let check_state ~(pc : int) (st : Vstate.t) : violation list =
  let out = ref [] in
  let emit loc r (c, detail) =
    out :=
      { v_check = c; v_pc = pc; v_loc = loc;
        v_reg = Regstate.to_string r; v_detail = detail }
      :: !out
  in
  Vstate.iter_frames st
    (fun (f : Vstate.frame) ->
       Array.iteri
         (fun i r ->
            let loc = Printf.sprintf "f%d:r%d" f.Vstate.frameno i in
            List.iter (emit loc r) (check_reg r))
         f.Vstate.regs;
       Array.iteri
         (fun slot spilled ->
            match spilled with
            | None -> ()
            | Some r ->
              let loc =
                Printf.sprintf "f%d:fp[%d]" f.Vstate.frameno
                  (slot * 8 - Vstate.stack_bytes)
              in
              List.iter (emit loc r) (check_reg r))
         f.Vstate.spills);
  List.rev !out

(* Lint one widening step at a loop head: the widened state must be
   extensive — it subsumes (under the pruning order) both the stored
   state it replaces and the incoming state that triggered the round —
   and a second widening against the same incoming state must be a
   no-op (the fixpoint the convergence bound relies on).  A violation
   here means a widening operator can "forget" behaviors, which is
   exactly the silent-unsoundness class the sanitizer exists to catch
   before it ever reaches the witness oracle. *)
let check_widen_state ~(pc : int) ~(th : Regstate.thresholds)
    ~(old : Vstate.t) ~(cur : Vstate.t) ~(widened : Vstate.t) :
  violation list =
  let out = ref [] in
  let fail c fmt =
    Format.kasprintf
      (fun d ->
         out :=
           { v_check = c; v_pc = pc; v_loc = "loop-head";
             v_reg = ""; v_detail = d }
           :: !out)
      fmt
  in
  if not (Vstate.states_equal ~old:widened ~cur:old ~bug3:false) then
    fail C_widen_extensive "widened state drops the stored state";
  if not (Vstate.states_equal ~old:widened ~cur ~bug3:false) then
    fail C_widen_extensive "widened state drops the incoming state";
  (match
     Vstate.widen_state ~pool:Vstate.no_pool ~th ~force:false ~old:widened
       ~cur
   with
   | None ->
     fail C_widen_idempotent "re-widening fails structurally"
   | Some again ->
     if
       not
         (Vstate.states_equal ~old:again ~cur:widened ~bug3:false
          && Vstate.states_equal ~old:widened ~cur:again ~bug3:false)
     then fail C_widen_idempotent "re-widening is not a fixpoint");
  List.rev !out
