(* Verifier performance counters: the per-program statistics the real
   kernel exposes after BPF_PROG_LOAD (insn_processed, total_states,
   peak_states, ... — the numbers `veristat` diffs across kernel
   versions), mirrored for the simulated verifier.

   One [t] lives in the verification environment (Venv) and is bumped
   by the analysis loop; it is purely deterministic — a pure function
   of (program, config) — so campaigns may fold counters into their
   digests.  Wall-clock verification time deliberately lives OUTSIDE
   this record (Loader.run_result.verify_s, the veristat CLI's
   per-program timer): times are real observations, never part of a
   deterministic identity.

   [agg] is the campaign-side aggregate: totals, maxima and log2
   histograms over every analyzed program, merged across parallel
   shards exactly like coverage. *)

type t = {
  mutable vs_insn_processed : int;
      (* instructions simulated across all paths (kernel
         insn_processed / the verifier's complexity measure) *)
  mutable vs_total_states : int;
      (* abstract states stored for pruning (kernel total_states) *)
  mutable vs_peak_states : int;
      (* high-water mark of live stored states — states whose subtree
         is still being explored (kernel peak_states) *)
  mutable vs_cur_states : int; (* bookkeeping for vs_peak_states *)
  mutable vs_max_states_per_insn : int;
      (* most states stored at a single pc (kernel max_states_per_insn) *)
  mutable vs_prune_hits : int;
      (* paths cut because an equal verified state existed *)
  mutable vs_prune_misses : int;
      (* pruning opportunities (jump targets reached) that found no
         matching state *)
  mutable vs_loops_detected : int;
      (* "infinite loop detected" rejections' trigger count *)
  mutable vs_branch_depth : int; (* bookkeeping for vs_branch_hwm *)
  mutable vs_branch_hwm : int;
      (* branch worklist high-water mark: the deepest the pending-path
         queue ever got *)
  mutable vs_prune_hash_skips : int;
      (* stored states dismissed by the cheap pruning signature without
         running states_equal.  Deliberately NOT in [counters] (and so
         not in any digest, JSON table or veristat baseline): it
         measures the cost model of the comparison, not the analysis
         result, and adding it to the canonical schema would break
         [Veristat.of_json] on committed baselines. *)
  mutable vs_widen_rounds : int;
      (* widening rounds applied at loop heads.  Outside [counters]
         for the same frozen-schema reason as vs_prune_hash_skips;
         [loops_detected] keeps its historical meaning (zero-progress
         infinite-loop rejections) untouched. *)
  mutable vs_loop_heads : int;
      (* back-edge targets in the program's CFG (also outside the
         frozen schema) *)
}

let zero () : t =
  {
    vs_insn_processed = 0;
    vs_total_states = 0;
    vs_peak_states = 0;
    vs_cur_states = 0;
    vs_max_states_per_insn = 0;
    vs_prune_hits = 0;
    vs_prune_misses = 0;
    vs_loops_detected = 0;
    vs_branch_depth = 0;
    vs_branch_hwm = 0;
    vs_prune_hash_skips = 0;
    vs_widen_rounds = 0;
    vs_loop_heads = 0;
  }

(* -- Analysis-loop hooks ------------------------------------------------ *)

let count_insn (t : t) : int =
  t.vs_insn_processed <- t.vs_insn_processed + 1;
  t.vs_insn_processed

let state_stored (t : t) ~(at_insn : int) : unit =
  t.vs_total_states <- t.vs_total_states + 1;
  t.vs_cur_states <- t.vs_cur_states + 1;
  if t.vs_cur_states > t.vs_peak_states then
    t.vs_peak_states <- t.vs_cur_states;
  if at_insn > t.vs_max_states_per_insn then
    t.vs_max_states_per_insn <- at_insn

let state_done (t : t) : unit =
  t.vs_cur_states <- t.vs_cur_states - 1

let prune_hit (t : t) : unit = t.vs_prune_hits <- t.vs_prune_hits + 1
let prune_miss (t : t) : unit = t.vs_prune_misses <- t.vs_prune_misses + 1

let prune_hash_skip (t : t) : unit =
  t.vs_prune_hash_skips <- t.vs_prune_hash_skips + 1

let loop_detected (t : t) : unit =
  t.vs_loops_detected <- t.vs_loops_detected + 1

let widen_round (t : t) : unit =
  t.vs_widen_rounds <- t.vs_widen_rounds + 1

let loop_heads_seen (t : t) (n : int) : unit = t.vs_loop_heads <- n

let branch_pushed (t : t) : unit =
  t.vs_branch_depth <- t.vs_branch_depth + 1;
  if t.vs_branch_depth > t.vs_branch_hwm then
    t.vs_branch_hwm <- t.vs_branch_depth

let branch_popped (t : t) : unit =
  t.vs_branch_depth <- t.vs_branch_depth - 1

(* -- Reporting ---------------------------------------------------------- *)

(* Stable (name, value) listing: the canonical counter order used by
   every printer, JSON table and digest line. *)
let counters (t : t) : (string * int) list =
  [
    ("insn_processed", t.vs_insn_processed);
    ("total_states", t.vs_total_states);
    ("peak_states", t.vs_peak_states);
    ("max_states_per_insn", t.vs_max_states_per_insn);
    ("prune_hits", t.vs_prune_hits);
    ("prune_misses", t.vs_prune_misses);
    ("loops_detected", t.vs_loops_detected);
    ("branch_hwm", t.vs_branch_hwm);
  ]

let counter_names : string list =
  List.map fst (counters (zero ()))

let pp fmt (t : t) : unit =
  Format.fprintf fmt "%s"
    (String.concat ", "
       (List.map
          (fun (k, v) -> Printf.sprintf "%s %d" k v)
          (counters t)))

(* -- Campaign aggregation ----------------------------------------------- *)

(* log2 buckets: bucket 0 holds value 0, bucket i>=1 holds values in
   [2^(i-1), 2^i).  31 buckets cover every int the analysis can
   produce under the complexity limit with room to spare. *)
let hist_buckets = 31

let bucket (v : int) : int =
  if v <= 0 then 0
  else begin
    let rec go b n = if n = 0 then b else go (b + 1) (n lsr 1) in
    min (hist_buckets - 1) (go 0 v)
  end

type agg = {
  mutable ag_programs : int; (* programs whose analysis ran *)
  mutable ag_insn_processed : int;
  mutable ag_total_states : int;
  mutable ag_prune_hits : int;
  mutable ag_prune_misses : int;
  mutable ag_loops_detected : int;
  mutable ag_widen_rounds : int;
  mutable ag_loop_heads : int;
  mutable ag_peak_states_max : int;
  mutable ag_max_states_per_insn : int;
  mutable ag_branch_hwm_max : int;
  ag_hist_insn : int array;  (* log2 histogram of insn_processed *)
  ag_hist_peak : int array;  (* log2 histogram of peak_states *)
}

let agg_zero () : agg =
  {
    ag_programs = 0;
    ag_insn_processed = 0;
    ag_total_states = 0;
    ag_prune_hits = 0;
    ag_prune_misses = 0;
    ag_loops_detected = 0;
    ag_widen_rounds = 0;
    ag_loop_heads = 0;
    ag_peak_states_max = 0;
    ag_max_states_per_insn = 0;
    ag_branch_hwm_max = 0;
    ag_hist_insn = Array.make hist_buckets 0;
    ag_hist_peak = Array.make hist_buckets 0;
  }

let agg_add (a : agg) (t : t) : unit =
  a.ag_programs <- a.ag_programs + 1;
  a.ag_insn_processed <- a.ag_insn_processed + t.vs_insn_processed;
  a.ag_total_states <- a.ag_total_states + t.vs_total_states;
  a.ag_prune_hits <- a.ag_prune_hits + t.vs_prune_hits;
  a.ag_prune_misses <- a.ag_prune_misses + t.vs_prune_misses;
  a.ag_loops_detected <- a.ag_loops_detected + t.vs_loops_detected;
  a.ag_widen_rounds <- a.ag_widen_rounds + t.vs_widen_rounds;
  a.ag_loop_heads <- a.ag_loop_heads + t.vs_loop_heads;
  if t.vs_peak_states > a.ag_peak_states_max then
    a.ag_peak_states_max <- t.vs_peak_states;
  if t.vs_max_states_per_insn > a.ag_max_states_per_insn then
    a.ag_max_states_per_insn <- t.vs_max_states_per_insn;
  if t.vs_branch_hwm > a.ag_branch_hwm_max then
    a.ag_branch_hwm_max <- t.vs_branch_hwm;
  a.ag_hist_insn.(bucket t.vs_insn_processed) <-
    a.ag_hist_insn.(bucket t.vs_insn_processed) + 1;
  a.ag_hist_peak.(bucket t.vs_peak_states) <-
    a.ag_hist_peak.(bucket t.vs_peak_states) + 1

(* Shard merge: totals and histograms sum, maxima take the max — the
   same associative fold coverage union performs on edges. *)
let agg_absorb (into : agg) (src : agg) : unit =
  into.ag_programs <- into.ag_programs + src.ag_programs;
  into.ag_insn_processed <- into.ag_insn_processed + src.ag_insn_processed;
  into.ag_total_states <- into.ag_total_states + src.ag_total_states;
  into.ag_prune_hits <- into.ag_prune_hits + src.ag_prune_hits;
  into.ag_prune_misses <- into.ag_prune_misses + src.ag_prune_misses;
  into.ag_loops_detected <-
    into.ag_loops_detected + src.ag_loops_detected;
  into.ag_widen_rounds <- into.ag_widen_rounds + src.ag_widen_rounds;
  into.ag_loop_heads <- into.ag_loop_heads + src.ag_loop_heads;
  if src.ag_peak_states_max > into.ag_peak_states_max then
    into.ag_peak_states_max <- src.ag_peak_states_max;
  if src.ag_max_states_per_insn > into.ag_max_states_per_insn then
    into.ag_max_states_per_insn <- src.ag_max_states_per_insn;
  if src.ag_branch_hwm_max > into.ag_branch_hwm_max then
    into.ag_branch_hwm_max <- src.ag_branch_hwm_max;
  Array.iteri
    (fun i n -> into.ag_hist_insn.(i) <- into.ag_hist_insn.(i) + n)
    src.ag_hist_insn;
  Array.iteri
    (fun i n -> into.ag_hist_peak.(i) <- into.ag_hist_peak.(i) + n)
    src.ag_hist_peak

(* Canonical digest lines: totals, maxima, then only the non-empty
   histogram buckets — every value deterministic, no wall times. *)
let agg_digest_lines (a : agg) : string list =
  let hist name h =
    let lines = ref [] in
    for i = hist_buckets - 1 downto 0 do
      if h.(i) > 0 then
        lines := Printf.sprintf "vstats %s bucket %d %d" name i h.(i)
                 :: !lines
    done;
    !lines
  in
  Printf.sprintf
    "vstats programs %d insn_processed %d total_states %d prune %d/%d \
     loops %d widen %d heads %d peak_max %d per_insn_max %d \
     branch_hwm_max %d"
    a.ag_programs a.ag_insn_processed a.ag_total_states a.ag_prune_hits
    a.ag_prune_misses a.ag_loops_detected a.ag_widen_rounds
    a.ag_loop_heads a.ag_peak_states_max a.ag_max_states_per_insn
    a.ag_branch_hwm_max
  :: (hist "insn" a.ag_hist_insn @ hist "peak" a.ag_hist_peak)

let pp_agg fmt (a : agg) : unit =
  if a.ag_programs > 0 then
    Format.fprintf fmt
      "  verifier: %d programs analyzed, %d insns processed, %d states \
       (peak %d, max %d/insn), prune %d hits / %d misses, %d loops, \
       %d widen rounds over %d loop heads, branch queue depth <= %d@."
      a.ag_programs a.ag_insn_processed a.ag_total_states
      a.ag_peak_states_max a.ag_max_states_per_insn a.ag_prune_hits
      a.ag_prune_misses a.ag_loops_detected a.ag_widen_rounds
      a.ag_loop_heads a.ag_branch_hwm_max
