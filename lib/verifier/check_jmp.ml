open Vimport

(* Conditional jump analysis (kernel check_cond_jmp_op):

   - dead-branch detection from tracked bounds (is_branch_taken),
   - per-branch bounds refinement (reg_set_min_max),
   - null-check recognition on maybe_null pointers,
   - nullness propagation across register-to-register equality
     comparisons — the site of injected Bug#1: the fixed kernel filters
     PTR_TO_BTF_ID out of the propagation, the buggy one does not
     (Listing 2/3 of the paper),
   - packet-range discovery from data/data_end comparisons. *)

open Regstate

type verdict = Always | Never | Unknown

(* Evaluate [d cond s] over the tracked ranges. *)
let rec branch_verdict (cond : Insn.cond) (d : t) (s : t) : verdict =
  let u_lt () = if Word.ult d.umax s.umin then Always
    else if Word.uge d.umin s.umax then Never else Unknown in
  let u_le () = if Word.ule d.umax s.umin then Always
    else if Word.ugt d.umin s.umax then Never else Unknown in
  let u_gt () = if Word.ugt d.umin s.umax then Always
    else if Word.ule d.umax s.umin then Never else Unknown in
  let u_ge () = if Word.uge d.umin s.umax then Always
    else if Word.ult d.umax s.umin then Never else Unknown in
  let s_lt () = if d.smax < s.smin then Always
    else if d.smin >= s.smax then Never else Unknown in
  let s_le () = if d.smax <= s.smin then Always
    else if d.smin > s.smax then Never else Unknown in
  let s_gt () = if d.smin > s.smax then Always
    else if d.smax <= s.smin then Never else Unknown in
  let s_ge () = if d.smin >= s.smax then Always
    else if d.smax < s.smin then Never else Unknown in
  match cond with
  | Insn.Jeq ->
    if Regstate.is_const d && Regstate.is_const s
       && d.var_off.Tnum.value = s.var_off.Tnum.value
    then Always
    else if Word.ugt d.umin s.umax || Word.ult d.umax s.umin
            || d.smin > s.smax || d.smax < s.smin
    then Never
    else Unknown
  | Insn.Jne -> begin
      match branch_verdict Insn.Jeq d s with
      | Always -> Never
      | Never -> Always
      | Unknown -> Unknown
    end
  | Insn.Jgt -> u_gt ()
  | Insn.Jge -> u_ge ()
  | Insn.Jlt -> u_lt ()
  | Insn.Jle -> u_le ()
  | Insn.Jsgt -> s_gt ()
  | Insn.Jsge -> s_ge ()
  | Insn.Jslt -> s_lt ()
  | Insn.Jsle -> s_le ()
  | Insn.Jset ->
    if Regstate.is_const s then begin
      let bits = s.var_off.Tnum.value in
      if Int64.logand d.var_off.Tnum.value bits <> 0L then Always
      else if
        Int64.logand
          (Int64.logor d.var_off.Tnum.value d.var_off.Tnum.mask)
          bits
        = 0L
      then Never
      else Unknown
    end
    else Unknown

(* 32-bit signed view of a zero-extended 32-bit scalar: the executor's
   w-signed compares sign-extend the low word, so a value with bit 31
   set reads as negative even though its zero-extended bounds are
   positive.  Reinterpret the signed bounds accordingly; sext32 is
   monotone on each half of the u32 range, so when the range does not
   cross 2^31 the endpoints map directly. *)
let sext32_view (r : t) : t =
  if Word.ule r.umax 0x7FFF_FFFFL then r
  else if Word.uge r.umin 0x8000_0000L then
    { r with smin = Word.sext32 r.umin; smax = Word.sext32 r.umax }
  else
    { r with smin = Int64.of_int32 Int32.min_int;
      smax = Int64.of_int32 Int32.max_int }

(* Branch verdict at either width.  At 32 bits the operands are viewed
   through their low words (zero-extended for the unsigned and equality
   conditions, sign-extended for the signed ones), matching the
   executor's eval_cond. *)
let branch_verdict_width ~(op32 : bool) (cond : Insn.cond) (d : t) (s : t)
  : verdict =
  if not op32 then branch_verdict cond d s
  else begin
    let d = Regstate.truncate32 d and s = Regstate.truncate32 s in
    match cond with
    | Insn.Jsgt | Insn.Jsge | Insn.Jslt | Insn.Jsle ->
      branch_verdict cond (sext32_view d) (sext32_view s)
    | _ -> branch_verdict cond d s
  end

(* Refine [d] and [s] under the assumption that [d cond s] holds.
   Returns None when the assumption is contradictory (dead branch). *)
let refine (cond : Insn.cond) (d : t) (s : t) : (t * t) option =
  let clamp r = Regstate.sync r in
  let dead r = Regstate.is_bottom r in
  let result d s =
    let d = clamp d and s = clamp s in
    if dead d || dead s then None else Some (d, s)
  in
  match cond with
  | Insn.Jeq ->
    let var_off = Tnum.intersect d.var_off s.var_off in
    let umin = Word.umax d.umin s.umin
    and umax = Word.umin d.umax s.umax
    and smin = Word.smax d.smin s.smin
    and smax = Word.smin d.smax s.smax in
    result
      { d with var_off; umin; umax; smin; smax }
      { s with var_off; umin; umax; smin; smax }
  | Insn.Jne ->
    (* only useful when one side is a constant at a range boundary *)
    let bump r (c : int64) =
      if Regstate.is_const r then r
      else if r.umin = c then { r with umin = Int64.add c 1L }
      else if r.umax = c then { r with umax = Int64.sub c 1L }
      else r
    in
    (match Regstate.const_value s, Regstate.const_value d with
     | Some c, _ -> result (bump d c) s
     | None, Some c -> result d (bump s c)
     | None, None -> result d s)
  | Insn.Jgt ->
    result
      { d with umin = Word.umax d.umin (Int64.add s.umin 1L) }
      { s with umax = Word.umin s.umax (Int64.sub d.umax 1L) }
  | Insn.Jge ->
    result
      { d with umin = Word.umax d.umin s.umin }
      { s with umax = Word.umin s.umax d.umax }
  | Insn.Jlt ->
    result
      { d with umax = Word.umin d.umax (Int64.sub s.umax 1L) }
      { s with umin = Word.umax s.umin (Int64.add d.umin 1L) }
  | Insn.Jle ->
    result
      { d with umax = Word.umin d.umax s.umax }
      { s with umin = Word.umax s.umin d.umin }
  | Insn.Jsgt ->
    result
      { d with smin = Word.smax d.smin (Int64.add s.smin 1L) }
      { s with smax = Word.smin s.smax (Int64.sub d.smax 1L) }
  | Insn.Jsge ->
    result
      { d with smin = Word.smax d.smin s.smin }
      { s with smax = Word.smin s.smax d.smax }
  | Insn.Jslt ->
    result
      { d with smax = Word.smin d.smax (Int64.sub s.smax 1L) }
      { s with smin = Word.smax s.smin (Int64.add d.smin 1L) }
  | Insn.Jsle ->
    result
      { d with smax = Word.smin d.smax s.smax }
      { s with smin = Word.smax s.smin d.smin }
  | Insn.Jset ->
    if Regstate.is_const s && s.var_off.Tnum.value <> 0L then
      result { d with umin = Word.umax d.umin 1L } s
    else result d s

(* Refine under the assumption the condition is FALSE. *)
let refine_false (cond : Insn.cond) (d : t) (s : t) : (t * t) option =
  match cond with
  | Insn.Jset ->
    (* no common bits with a constant mask: those bits are known zero *)
    if Regstate.is_const s then begin
      let bits = s.var_off.Tnum.value in
      let var_off =
        { Tnum.value = Int64.logand d.var_off.Tnum.value (Int64.lognot bits);
          Tnum.mask = Int64.logand d.var_off.Tnum.mask (Int64.lognot bits) }
      in
      let d = Regstate.sync { d with var_off } in
      if Regstate.is_bottom d then None else Some (d, s)
    end
    else Some (d, s)
  | Insn.Jeq -> refine Insn.Jne d s
  | Insn.Jne -> refine Insn.Jeq d s
  | Insn.Jgt -> refine Insn.Jle d s
  | Insn.Jge -> refine Insn.Jlt d s
  | Insn.Jlt -> refine Insn.Jge d s
  | Insn.Jle -> refine Insn.Jgt d s
  | Insn.Jsgt -> refine Insn.Jsle d s
  | Insn.Jsge -> refine Insn.Jslt d s
  | Insn.Jslt -> refine Insn.Jsge d s
  | Insn.Jsle -> refine Insn.Jsgt d s

(* Branch refinement at either width.  The 64-bit refinement rules are
   only sound at 32 bits when every tracked value reads the same under
   the 32-bit interpretation: unsigned and equality conditions need the
   values to fit 32 bits (umax <= U32_MAX, so zero-extension is the
   identity); signed conditions additionally need bit 31 clear
   (umax <= S32_MAX), else sign-extension flips the order.  Outside
   that window the registers are left unrefined. *)
let refine_width ~(op32 : bool) ~(neg : bool) (cond : Insn.cond) (d : t)
    (s : t) : (t * t) option =
  let f = if neg then refine_false else refine in
  if not op32 then f cond d s
  else begin
    let limit =
      match cond with
      | Insn.Jsgt | Insn.Jsge | Insn.Jslt | Insn.Jsle -> 0x7FFF_FFFFL
      | _ -> 0xFFFF_FFFFL
    in
    if Word.ule d.umax limit && Word.ule s.umax limit then f cond d s
    else Some (d, s)
  end

(* -- Pointer-related branch semantics ---------------------------------- *)

(* Null-check on a maybe_null pointer against immediate 0: in the null
   branch every copy becomes the known scalar 0 and any reference the
   value carried is dropped (the acquire helper returned NULL, so there
   is nothing to release); in the non-null branch the maybe_null flag
   is dropped. *)
let mark_ptr_or_null (st : Vstate.t) ~(id : int) ~(null : bool) : unit =
  if null then begin
    let dropped = ref [] in
    Vstate.map_regs_with_id st ~id (fun r ->
        (match r.kind with
         | Ptr { ref_id; _ } when ref_id <> 0 ->
           dropped := ref_id :: !dropped
         | _ -> ());
        Regstate.const_scalar 0L);
    st.Vstate.refs <-
      List.filter (fun rid -> not (List.mem rid !dropped)) st.Vstate.refs
  end
  else
    Vstate.map_regs_with_id st ~id (fun r ->
        match r.kind with
        | Ptr p -> { r with kind = Ptr { p with maybe_null = false; id = 0 } }
        | _ -> r)

(* Nullness propagation for reg-to-reg equality (the Bug#1 site): in the
   branch where [a = b] holds and [b] is a non-null pointer, a nullable
   [a] must be non-null too.  The FIXED verifier skips the propagation
   when the non-null side is a BTF pointer (which may be NULL at runtime
   despite its type); the BUGGY one does not. *)
let propagate_nullness (env : Venv.t) (st : Vstate.t) (a : t) (b : t) : unit
  =
  let feature_on = Version.at_least (Venv.version env) Version.V6_1 in
  if feature_on then
    match a.kind, b.kind with
    | Ptr pa, Ptr pb when pa.maybe_null && not pb.maybe_null ->
      Venv.cov env "jmp:nullness_prop";
      let is_btf = match pb.pk with P_btf _ -> true | _ -> false in
      let propagate =
        (not is_btf) || Venv.has_bug env Kconfig.Bug1_nullness_propagation
      in
      if propagate then mark_ptr_or_null st ~id:pa.id ~null:false
    | _ -> ()

(* Packet-range discovery: after comparing a packet pointer (with
   constant offset k) against pkt_end, the branch where ptr+k <= end
   proves k bytes.  [lte_in_true] says whether the TRUE branch carries
   that fact. *)
let update_pkt_range (env : Venv.t) (st : Vstate.t) (pkt : t) : unit =
  match pkt.kind with
  | Ptr { pk = P_packet; id; _ } when Tnum.is_const pkt.var_off ->
    Venv.cov env "jmp:pkt_range";
    let proven = pkt.off in
    if proven > 0 then
      Vstate.map_packet_regs st ~id (fun r ->
          { r with range = max r.range proven })
  | _ -> ()

(* Is this a (packet, pkt_end) comparison, and in which branch does
   pkt <= end hold?  Returns (packet_reg, holds_in_true_branch). *)
let pkt_end_cmp (cond : Insn.cond) (d : t) (s : t) : (t * bool) option =
  let is_pkt r = match r.kind with
    | Ptr { pk = P_packet; _ } -> true | _ -> false in
  let is_end r = match r.kind with
    | Ptr { pk = P_packet_end; _ } -> true | _ -> false in
  if is_pkt d && is_end s then
    match cond with
    | Insn.Jle | Insn.Jlt -> Some (d, true)   (* pkt < end in true *)
    | Insn.Jgt | Insn.Jge -> Some (d, false)  (* pkt <= end in false *)
    | _ -> None
  else if is_end d && is_pkt s then
    match cond with
    | Insn.Jge | Insn.Jgt -> Some (s, true)   (* end > pkt in true *)
    | Insn.Jle | Insn.Jlt -> Some (s, false)
    | _ -> None
  else None

(* -- Main entry --------------------------------------------------------- *)

type outcome =
  | Both of Vstate.t * Vstate.t (* taken, fallthrough *)
  | Taken_only of Vstate.t
  | Fall_only of Vstate.t

let check (env : Venv.t) ~(pc : int) ~(op32 : bool) (cond : Insn.cond)
    (dst : Insn.reg) (src : Insn.src) : outcome =
  let d = Venv.check_reg_read env ~pc dst in
  let s_state, src_reg =
    match src with
    | Insn.Imm i -> (Regstate.const_scalar (Int64.of_int32 i), None)
    | Insn.Reg r -> (Venv.check_reg_read env ~pc r, Some r)
  in
  Venv.cov env "jmp:cond"
    ~v:((if op32 then 16 else 0)
        lor (match cond with
            | Insn.Jeq -> 0 | Insn.Jne -> 1 | Insn.Jgt -> 2 | Insn.Jge -> 3
            | Insn.Jlt -> 4 | Insn.Jle -> 5 | Insn.Jsgt -> 6
            | Insn.Jsge -> 7 | Insn.Jslt -> 8 | Insn.Jsle -> 9
            | Insn.Jset -> 10));
  let cur = env.Venv.st in
  (* null-check pattern: maybe_null ptr vs imm 0 with JEQ/JNE *)
  match d.kind, src with
  | Ptr p, Insn.Imm 0l
    when p.maybe_null && (cond = Insn.Jeq || cond = Insn.Jne)
         && not op32 ->
    Venv.cov env "jmp:null_check";
    (* one pooled copy: [cur] itself becomes the null branch *)
    let nn_branch = Vstate.copy ~pool:env.Venv.pool cur in
    mark_ptr_or_null cur ~id:p.id ~null:true;
    mark_ptr_or_null nn_branch ~id:p.id ~null:false;
    if cond = Insn.Jeq then Both (cur, nn_branch)
    else Both (nn_branch, cur)
  | _ ->
    (* pointer-vs-pointer and pointer-vs-scalar semantics *)
    let d_is_ptr = Regstate.is_pointer d in
    let s_is_ptr = Regstate.is_pointer s_state in
    if (d_is_ptr || s_is_ptr) && Venv.unprivileged env then
      (* only the null-check pattern above is allowed without
         CAP_PERFMON: comparisons would leak pointer values through
         timing/branches *)
      Venv.reject env ~pc Venv.EACCES
        "R%d pointer comparison prohibited (unprivileged)"
        (Insn.reg_to_int dst)
    else if d_is_ptr || s_is_ptr then begin
      (* non-null pointer vs 0: statically decidable *)
      match d.kind, src with
      | Ptr p, Insn.Imm 0l when not p.maybe_null -> begin
          Venv.cov env "jmp:ptr_vs_zero";
          match cond with
          | Insn.Jeq -> Fall_only cur
          | Insn.Jne -> Taken_only cur
          | _ -> Both (Vstate.copy ~pool:env.Venv.pool cur, cur)
        end
      | _ -> begin
          match pkt_end_cmp cond d s_state with
          | Some (pkt, lte_in_true) ->
            let taken = Vstate.copy ~pool:env.Venv.pool cur in
            update_pkt_range env (if lte_in_true then taken else cur) pkt;
            Both (taken, cur)
          | None ->
            if (cond = Insn.Jeq || cond = Insn.Jne) && d_is_ptr && s_is_ptr
            then begin
              (* reg-to-reg equality: nullness propagation (Bug#1) *)
              let taken = Vstate.copy ~pool:env.Venv.pool cur in
              let equal_branch = if cond = Insn.Jeq then taken else cur in
              propagate_nullness env equal_branch d s_state;
              propagate_nullness env equal_branch s_state d;
              Both (taken, cur)
            end
            else Both (Vstate.copy ~pool:env.Venv.pool cur, cur)
        end
    end
    else begin
      (* scalar comparison: dead-branch detection + refinement *)
      match branch_verdict_width ~op32 cond d s_state with
      | Always ->
        Venv.cov env "jmp:static" ~v:1;
        Taken_only cur
      | Never ->
        Venv.cov env "jmp:static" ~v:0;
        Fall_only cur
      | Unknown ->
        let apply st refined_d refined_s =
          Vstate.set_reg st dst refined_d;
          (match src_reg with
           | Some r when r <> dst -> Vstate.set_reg st r refined_s
           | _ -> ());
          st
        in
        (* the refined 32-bit bounds logic landed after v5.15 *)
        if op32 && Version.at_least (Venv.version env) Version.V6_1 then
          Venv.cov env "jmp:cond32_refine"
            ~v:(match cond with
                | Insn.Jeq -> 0 | Insn.Jne -> 1 | Insn.Jgt -> 2
                | Insn.Jge -> 3 | Insn.Jlt -> 4 | Insn.Jle -> 5
                | Insn.Jsgt -> 6 | Insn.Jsge -> 7 | Insn.Jslt -> 8
                | Insn.Jsle -> 9 | Insn.Jset -> 10);
        (* only copy when BOTH branches survive the refinement *)
        (match refine_width ~op32 ~neg:false cond d s_state,
               refine_width ~op32 ~neg:true cond d s_state with
         | Some (td, ts), Some (fd, fs) ->
           let taken_st = Vstate.copy ~pool:env.Venv.pool cur in
           Both (apply taken_st td ts, apply cur fd fs)
         | Some (td, ts), None -> Taken_only (apply cur td ts)
         | None, Some (fd, fs) -> Fall_only (apply cur fd fs)
         | None, None ->
           (* both contradictory: bounds were already inconsistent *)
           Fall_only cur)
    end
