(** The verifier log buffer.

    Mirrors the kernel's [bpf_verifier_log]: user space passes a level
    and a buffer with the load; the verifier appends per-instruction
    decisions (level 1) and abstract register states (level 2), and
    truncates at the buffer cap rather than growing without bound.

    - level 0 — silent (the default; logging costs nothing);
    - level 1 — one line per analyzed instruction plus the rejection
      message, the kernel's [BPF_LOG_LEVEL1];
    - level 2 — additionally the abstract register file before each
      instruction, the kernel's [BPF_LOG_LEVEL2] state dumps. *)

type t

val default_cap : int
(** Byte cap on the buffer contents (1 MiB, the kernel's
    [BPF_LOG_BUF_SIZE] ballpark): level-2 logs of branchy programs are
    otherwise unbounded. *)

val create : ?cap:int -> int -> t
(** [create level] — a fresh empty log at [level]. *)

val level : t -> int

val enabled : t -> int -> bool
(** [enabled t l]: would a message at level [l] be recorded?  Use to
    skip expensive formatting (state dumps) when the log is off. *)

val logf : t -> level:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Append a formatted message if [level t >= level].  Once the cap is
    reached further messages are dropped and the log is marked
    truncated. *)

val truncated : t -> bool

val contents : t -> string
(** The accumulated log; ends with a ["... log truncated"] marker line
    when the cap was hit. *)
