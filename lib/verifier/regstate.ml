open Vimport

(* Abstract register state: the heart of the verifier's analysis.

   Mirrors the kernel's struct bpf_reg_state: a register is either
   uninitialized, a scalar tracked by a tnum plus signed/unsigned 64-bit
   ranges, or a typed pointer with a constant offset component [off], a
   variable offset [var_off]+ranges, an optional maybe_null flag with an
   [id] linking copies of the same nullable value, and for packet
   pointers a proven [range] against data_end. *)

type map_info = {
  mi_fd : int;
  mi_type : Map.map_type;
  mi_key_size : int;
  mi_value_size : int;
  mi_max_entries : int;
  mi_has_spin_lock : bool;
}

let map_info_of_def ~(fd : int) (d : Map.def) : map_info =
  {
    mi_fd = fd;
    mi_type = d.Map.mtype;
    mi_key_size = d.Map.key_size;
    mi_value_size = d.Map.value_size;
    mi_max_entries = d.Map.max_entries;
    mi_has_spin_lock = d.Map.has_spin_lock;
  }

type ptr_kind =
  | P_ctx
  | P_stack of int (* frame number *)
  | P_map_ptr of map_info
  | P_map_value of map_info
  | P_btf of Btf.desc
  | P_packet
  | P_packet_end
  | P_mem of int (* dynamically allocated memory of known size (ringbuf) *)

let ptr_kind_name = function
  | P_ctx -> "ctx"
  | P_stack _ -> "fp"
  | P_map_ptr _ -> "map_ptr"
  | P_map_value _ -> "map_value"
  | P_btf d -> "ptr_" ^ d.Btf.btf_name
  | P_packet -> "pkt"
  | P_packet_end -> "pkt_end"
  | P_mem _ -> "ringbuf_mem"

type ptr_info = { pk : ptr_kind; maybe_null : bool; id : int; ref_id : int }

type rkind =
  | Not_init
  | Scalar
  | Ptr of ptr_info

type t = {
  kind : rkind;
  off : int;          (* constant offset component (pointers) *)
  var_off : Tnum.t;   (* variable offset (pointers) / value (scalars) *)
  smin : int64;
  smax : int64;
  umin : int64;
  umax : int64;
  range : int;        (* packet pointers: proven bytes beyond off *)
  precise : bool;     (* scalar feeds a pointer offset or size *)
  from_kfunc : bool;  (* scalar produced by a kfunc call (Bug#3 hook) *)
}

let not_init : t =
  { kind = Not_init; off = 0; var_off = Tnum.unknown; smin = Int64.min_int;
    smax = Int64.max_int; umin = 0L; umax = -1L (* U64_MAX *); range = 0;
    precise = false; from_kfunc = false }

let unknown_scalar : t =
  { not_init with kind = Scalar }

let const_scalar (v : int64) : t =
  { kind = Scalar; off = 0; var_off = Tnum.const v; smin = v; smax = v;
    umin = v; umax = v; range = 0; precise = false; from_kfunc = false }

let pointer ?(maybe_null = false) ?(id = 0) ?(ref_id = 0) ?(off = 0)
    (pk : ptr_kind) : t =
  { kind = Ptr { pk; maybe_null; id; ref_id }; off;
    var_off = Tnum.const 0L; smin = 0L; smax = 0L; umin = 0L; umax = 0L;
    range = 0; precise = false; from_kfunc = false }

let fp (frameno : int) : t = pointer (P_stack frameno)
let ctx_pointer : t = pointer P_ctx

let is_init (r : t) : bool = r.kind <> Not_init
let is_scalar (r : t) : bool = r.kind = Scalar

let is_pointer (r : t) : bool =
  match r.kind with Ptr _ -> true | Scalar | Not_init -> false

let ptr_kind (r : t) : ptr_kind option =
  match r.kind with
  | Ptr p -> Some p.pk
  | Scalar | Not_init -> None

let is_maybe_null (r : t) : bool =
  match r.kind with
  | Ptr p -> p.maybe_null
  | Scalar | Not_init -> false

let is_const (r : t) : bool = is_scalar r && Tnum.is_const r.var_off

let const_value (r : t) : int64 option =
  if is_const r then Some r.var_off.Tnum.value else None

(* -- Bounds bookkeeping (kernel __update_reg_bounds and friends) ------ *)

(* Refresh min/max from var_off knowledge. *)
let update_bounds (r : t) : t =
  let tmin = Tnum.umin r.var_off and tmax = Tnum.umax r.var_off in
  let umin = Word.umax r.umin tmin in
  let umax = Word.umin r.umax tmax in
  (* signed bounds from tnum only when the sign bit is known *)
  let smin, smax =
    if Int64.logand r.var_off.Tnum.mask Int64.min_int = 0L then
      (* sign bit known *)
      (Word.smax r.smin tmin, Word.smin r.smax tmax)
    else (r.smin, r.smax)
  in
  { r with smin; smax; umin; umax }

(* Cross-deduce signed and unsigned bounds (kernel __reg_deduce_bounds,
   simplified to the sound core). *)
let deduce_bounds (r : t) : t =
  let smin, smax, umin, umax = r.smin, r.smax, r.umin, r.umax in
  (* if the signed range does not cross the sign boundary, it constrains
     the unsigned range, and vice versa *)
  let smin, smax, umin, umax =
    if smin >= 0L then
      (smin, smax, Word.umax umin smin, Word.umin umax smax)
    else if smax < 0L then
      (smin, smax, Word.umax umin smin, Word.umin umax smax)
    else (smin, smax, umin, umax)
  in
  (* unsigned range entirely below the sign boundary constrains signed *)
  let smin, smax =
    if Word.ule umax Int64.max_int then
      (Word.smax smin umin, Word.smin smax umax)
    else if Word.uge umin Int64.min_int then
      (* entirely above: as signed both negative *)
      (Word.smax smin umin, Word.smin smax umax)
    else (smin, smax)
  in
  { r with smin; smax; umin; umax }

(* Shrink var_off using the unsigned range. *)
let bound_offset (r : t) : t =
  { r with
    var_off =
      Tnum.intersect r.var_off (Tnum.range ~min:r.umin ~max:r.umax) }

(* One propagation round is not a fixpoint: bound_offset can shrink
   var_off below the unsigned range (e.g. umin=1, umax=2 with
   var_off={0;mask=5} intersects down to {0;mask=1}, whose hull tops out
   at 1 < umax), and the tightened tnum then implies tighter ranges that
   the single pass never re-derives.  Iterate the kernel's
   update/deduce/bound trio until stable — the domains are finite
   lattices and every step only tightens, so this terminates (bounded
   anyway, defensively). *)
let sync_round (r : t) : t = bound_offset (deduce_bounds (update_bounds r))

let equal_bounds (a : t) (b : t) : bool =
  a.smin = b.smin && a.smax = b.smax && a.umin = b.umin && a.umax = b.umax
  && Tnum.equal a.var_off b.var_off

let sync (r : t) : t =
  let rec fix r n =
    let r' = sync_round r in
    if n = 0 || equal_bounds r r' then r' else fix r' (n - 1)
  in
  fix r 8

(* An impossible range means the verifier followed a dead branch. *)
let is_bottom (r : t) : bool =
  is_scalar r && (r.smin > r.smax || Word.ugt r.umin r.umax)

let scalar_of_tnum (t : Tnum.t) : t =
  sync { unknown_scalar with var_off = t; umin = Tnum.umin t;
         umax = Tnum.umax t }

(* Scalar with the given unsigned range. *)
let scalar_range ~(umin : int64) ~(umax : int64) : t =
  sync { unknown_scalar with umin; umax;
         var_off = Tnum.range ~min:umin ~max:umax }

(* Mark as 32-bit: value was zero-extended from 32 bits. *)
let truncate32 (r : t) : t =
  let var_off = Tnum.cast r.var_off ~size:4 in
  sync
    { r with var_off; umin = Tnum.umin var_off; umax = Tnum.umax var_off;
      smin = Int64.min_int; smax = Int64.max_int }

(* -- Comparison for state pruning ------------------------------------- *)

(* Is [cur] safe assuming [old] was verified safe?  (old subsumes cur) *)
let reg_within ~(old : t) ~(cur : t) ~(bug3 : bool) : bool =
  match old.kind, cur.kind with
  | Not_init, _ -> true (* old tolerated anything *)
  | Scalar, Scalar ->
    (* We conservatively treat every scalar as precise (the kernel
       prunes more aggressively using precision backtracking; skipping
       that machinery only costs extra exploration, never soundness). *)
    if bug3 && old.from_kfunc then
      (* Bug#3: backtracking failed to mark kfunc results precise, so
         the buggy pruning treats them as interchangeable *)
      true
    else
      old.smin <= cur.smin && old.smax >= cur.smax
      && Word.ule old.umin cur.umin && Word.uge old.umax cur.umax
      && Tnum.subset ~of_:old.var_off cur.var_off
  | Ptr op, Ptr cp ->
    op.pk = cp.pk && old.off = cur.off
    && Tnum.equal old.var_off cur.var_off
    && (op.maybe_null || not cp.maybe_null)
    && cur.range >= old.range
  | Scalar, (Not_init | Ptr _)
  | Ptr _, (Not_init | Scalar) -> false

(* -- Widening (bounded-loop verification) ------------------------------ *)

(* Threshold sets for range widening, kernel-of-the-Apron-idiom: when a
   bound escapes during a loop, it jumps outward to the next threshold
   instead of creeping one step per iteration.  The fixed part covers 0,
   ±1 and the type-width extrema; the caller adds the branch constants
   harvested from the program under analysis, which is what lets a
   counted loop's exit test converge exactly at its bound. *)
type thresholds = {
  th_signed : int64 array;   (* sorted ascending, signed *)
  th_unsigned : int64 array; (* sorted ascending, unsigned *)
}

let signed_base =
  [ Int64.min_int; Int64.of_int32 Int32.min_int; -1L; 0L; 1L;
    Int64.of_int32 Int32.max_int; Int64.max_int ]

let unsigned_base = [ 0L; 1L; 0xFFFF_FFFFL; -1L (* U64_MAX *) ]

let mk_thresholds (consts : int64 list) : thresholds =
  {
    th_signed =
      Array.of_list
        (List.sort_uniq Int64.compare (signed_base @ consts));
    th_unsigned =
      Array.of_list
        (List.sort_uniq Int64.unsigned_compare (unsigned_base @ consts));
  }

let no_thresholds : thresholds = mk_thresholds []

(* Largest threshold <= x / smallest >= x under [cmp].  The base sets
   contain both extrema, so the searches always succeed. *)
let th_floor (a : int64 array) cmp (x : int64) : int64 =
  let best = ref a.(0) in
  Array.iter (fun t -> if cmp t x <= 0 && cmp t !best >= 0 then best := t) a;
  !best

let th_ceil (a : int64 array) cmp (x : int64) : int64 =
  let best = ref a.(Array.length a - 1) in
  Array.iter (fun t -> if cmp t x >= 0 && cmp t !best <= 0 then best := t) a;
  !best

(* Widen [old] against [cur], both scalars: any bound of [cur] that
   escaped [old]'s jumps to the next threshold outward; stable bounds
   keep [old]'s value.  The tnum widens bit-wise (Tnum.widen) and the
   result is re-synced — [sync] is monotone field-wise and both inputs
   are sync-stable, so the sync never pulls the result back below
   either input and the widened register stays [C_sync_stable]. *)
let widen_scalar ~(th : thresholds) ~(old : t) ~(cur : t) : t =
  let scmp = Int64.compare and ucmp = Int64.unsigned_compare in
  let smin =
    if old.smin <= cur.smin then old.smin
    else th_floor th.th_signed scmp cur.smin
  and smax =
    if old.smax >= cur.smax then old.smax
    else th_ceil th.th_signed scmp cur.smax
  and umin =
    if Word.ule old.umin cur.umin then old.umin
    else th_floor th.th_unsigned ucmp cur.umin
  and umax =
    if Word.uge old.umax cur.umax then old.umax
    else th_ceil th.th_unsigned ucmp cur.umax
  in
  sync
    { kind = Scalar; off = 0;
      var_off = Tnum.widen old.var_off cur.var_off;
      smin; smax; umin; umax; range = 0;
      precise = old.precise || cur.precise;
      from_kfunc = old.from_kfunc || cur.from_kfunc }

(* Widen one register pair.  [Some w] is a register subsuming both
   (under [reg_within]); [None] means the pair diverges in a way no
   sound scalar widening covers (pointer kind or provenance changed) —
   the analyzer then falls back to unrolling.  With [force] set (the
   last widening round at a loop head) diverging scalars go straight
   to the unknown scalar, which every later scalar is within. *)
let widen ~(th : thresholds) ~(force : bool) ~(old : t) ~(cur : t) :
  t option =
  if reg_within ~old ~cur ~bug3:false then Some old
  else
    match old.kind, cur.kind with
    | Scalar, Scalar ->
      if force then
        Some
          { unknown_scalar with
            precise = old.precise || cur.precise;
            from_kfunc = old.from_kfunc || cur.from_kfunc }
      else Some (widen_scalar ~th ~old ~cur)
    | _, Not_init -> Some not_init
    | (Scalar | Ptr _), (Scalar | Ptr _) -> None
    | Not_init, _ -> Some not_init

let to_string (r : t) : string =
  match r.kind with
  | Not_init -> "?"
  | Scalar ->
    if is_const r then Printf.sprintf "%Ld" r.var_off.Tnum.value
    else
      Printf.sprintf "scalar(umin=%Lu,umax=%Lu,smin=%Ld,smax=%Ld%s)"
        r.umin r.umax r.smin r.smax
        (if Tnum.is_unknown r.var_off then ""
         else ",var_off=" ^ Tnum.to_string r.var_off)
  | Ptr p ->
    Printf.sprintf "%s%s(off=%d%s%s)" (ptr_kind_name p.pk)
      (if p.maybe_null then "_or_null" else "")
      r.off
      (if Tnum.is_const r.var_off then ""
       else ",var=" ^ Tnum.to_string r.var_off)
      (if r.range > 0 then Printf.sprintf ",r=%d" r.range else "")
