open Vimport

(* Helper and kfunc call verification (kernel check_helper_call /
   check_kfunc_call): argument states are matched against the declared
   prototype, references (ringbuf chunks, acquired tasks) are tracked,
   the bpf_spin_lock critical-section discipline is enforced, and
   caller-saved registers are clobbered.

   Injected bugs (all "missing validation" class, per Table 2):
   - Bug#4: the fixed kernel refuses to attach a trace_printk-calling
     program to the kprobe on bpf_trace_printk itself; the buggy one
     loads it, and execution deadlocks on the printk buffer lock.
   - Bug#5: the fixed kernel refuses lock-acquiring helpers in programs
     attached to contention_begin (Figure 2); the buggy one does not.
   - Bug#6: the fixed kernel rejects send_signal for attach points that
     run in hard-irq/NMI context; the buggy one panics at runtime. *)

open Regstate

let arg_regs = [| Insn.R1; Insn.R2; Insn.R3; Insn.R4; Insn.R5 |]

let helper_acquires_lock (h : Helper.t) : bool =
  List.exists
    (function Helper.Acquires_lock _ -> true | _ -> false)
    h.Helper.attrs

(* Validate that [r] points to [size] readable (or writable) bytes. *)
let check_helper_mem (env : Venv.t) ~(pc : int) ~(argno : int)
    ~(write : bool) (r : t) ~(size : int) : unit =
  if size = 0 then ()
  else
    match r.kind with
    | Ptr p when not p.maybe_null -> begin
        match p.pk with
        | P_stack fno -> begin
            if not (Tnum.is_const r.var_off) then
              Venv.reject env ~pc Venv.EACCES
                "R%d variable stack pointer to helper" argno;
            let frame = Vstate.find_frame env.Venv.st fno in
            let off = r.off in
            if off + size > 0 || off < -Prog.stack_size then
              Venv.reject env ~pc Venv.EACCES
                "R%d invalid stack region off=%d size=%d" argno off size;
            if write then Vstate.stack_mark_written frame ~off ~size
            else if not (Vstate.stack_initialized frame ~off ~size) then
              Venv.reject env ~pc Venv.EACCES
                "R%d uninitialized stack passed to helper (off=%d size=%d)"
                argno off size
          end
        | P_map_value mi ->
          Check_mem.check_map_value env ~pc mi r ~off:0 ~size
        | P_mem msize ->
          if r.off < 0 || r.off + size > msize then
            Venv.reject env ~pc Venv.EACCES
              "R%d invalid ringbuf mem region" argno
        | P_packet ->
          if r.off < 0 || r.off + size > r.range then
            Venv.reject env ~pc Venv.EACCES
              "R%d invalid packet region for helper" argno
        | P_ctx | P_map_ptr _ | P_btf _ | P_packet_end ->
          Venv.reject env ~pc Venv.EACCES
            "R%d pointer type %s not allowed as mem argument" argno
            (Regstate.ptr_kind_name p.pk)
      end
    | Ptr _ ->
      Venv.reject env ~pc Venv.EACCES
        "R%d nullable pointer passed to helper, null-check it first" argno
    | Scalar | Not_init ->
      Venv.reject env ~pc Venv.EACCES "R%d expected pointer, got scalar"
        argno

(* Walk the declared argument list, validating R1..Rn. *)
let check_args (env : Venv.t) ~(pc : int) (args : Helper.arg list) :
  map_info option * int64 option =
  let seen_map = ref None in
  let const_size = ref None in
  let pending_mem : (int * t * bool) option ref = ref None in
  List.iteri
    (fun i arg ->
       let argno = i + 1 in
       let r = Venv.check_reg_read env ~pc arg_regs.(i) in
       Venv.cov env "call:arg" ~v:argno;
       match arg with
       | Helper.Anything ->
         () (* any initialized value, checked by the read above *)
       | Helper.Const_map_ptr -> begin
           match r.kind with
           | Ptr { pk = P_map_ptr mi; maybe_null = false; _ } ->
             seen_map := Some mi
           | _ ->
             Venv.reject env ~pc Venv.EACCES
               "R%d expected const map pointer" argno
         end
       | Helper.Map_key -> begin
           match !seen_map with
           | None ->
             Venv.reject env ~pc Venv.EINVAL
               "R%d map key without preceding map argument" argno
           | Some mi ->
             check_helper_mem env ~pc ~argno ~write:false r
               ~size:mi.mi_key_size
         end
       | Helper.Map_value -> begin
           match !seen_map with
           | None ->
             Venv.reject env ~pc Venv.EINVAL
               "R%d map value without preceding map argument" argno
           | Some mi ->
             check_helper_mem env ~pc ~argno ~write:false r
               ~size:mi.mi_value_size
         end
       | Helper.Mem_rd -> pending_mem := Some (argno, r, false)
       | Helper.Mem_wr -> pending_mem := Some (argno, r, true)
       | Helper.Size { max; allow_zero } -> begin
           if not (Regstate.is_scalar r) then
             Venv.reject env ~pc Venv.EACCES "R%d expected size scalar"
               argno;
           let umin = r.umin and umax = r.umax in
           if Word.ugt umax (Int64.of_int max) then
             Venv.reject env ~pc Venv.EACCES
               "R%d unbounded memory size (umax=%Lu > %d)" argno umax max;
           if (not allow_zero) && umin = 0L then
             Venv.reject env ~pc Venv.EACCES
               "R%d possible zero size for helper memory" argno;
           (match !pending_mem with
            | Some (mem_argno, mem_reg, write) ->
              check_helper_mem env ~pc ~argno:mem_argno ~write mem_reg
                ~size:(Int64.to_int umax);
              pending_mem := None
            | None -> ())
         end
       | Helper.Ctx -> begin
           match r.kind with
           | Ptr { pk = P_ctx; maybe_null = false; _ } -> ()
           | _ ->
             Venv.reject env ~pc Venv.EACCES "R%d expected ctx pointer"
               argno
         end
       | Helper.Btf_task -> begin
           match r.kind with
           | Ptr { pk = P_btf _; maybe_null = false; _ } -> ()
           | _ ->
             Venv.reject env ~pc Venv.EACCES
               "R%d expected trusted task pointer" argno
         end
       | Helper.Spin_lock -> begin
           match r.kind with
           | Ptr { pk = P_map_value mi; maybe_null = false; _ }
             when mi.mi_has_spin_lock
               && r.off = 0
               && Tnum.is_const r.var_off
               && r.var_off.Tnum.value = 0L ->
             ()
           | _ ->
             Venv.reject env ~pc Venv.EACCES
               "R%d expected pointer to bpf_spin_lock" argno
         end
       | Helper.Scalar_const -> begin
           match Regstate.const_value r with
           | Some v -> const_size := Some v
           | None ->
             Venv.reject env ~pc Venv.EACCES
               "R%d expected verifier-known constant" argno
         end)
    args;
  (!seen_map, !const_size)

let clobber_caller_saved (env : Venv.t) : unit =
  List.iter
    (fun r -> Venv.set_reg env r Regstate.not_init)
    [ Insn.R1; Insn.R2; Insn.R3; Insn.R4; Insn.R5 ]

(* Attach-point-dependent validation: where the fixed kernel gained new
   checks (and the buggy one lets unsafe combinations through). *)
let check_attach_constraints (env : Venv.t) ~(pc : int) (h : Helper.t) :
  unit =
  match env.Venv.attach with
  | None -> ()
  | Some tp ->
    Venv.cov env "call:attach_check";
    (* Bug#4 *)
    if tp.Tracepoint.tp_trigger = Tracepoint.Fired_by_helper h.Helper.name
       && not (Venv.has_bug env Kconfig.Bug4_trace_printk_recursion) then
      Venv.reject env ~pc Venv.EINVAL
        "program calling %s cannot attach to %s (recursion)" h.Helper.name
        tp.Tracepoint.tp_name;
    (* Bug#5 *)
    if tp.Tracepoint.tp_trigger = Tracepoint.Fired_by_lock_acquisition
       && helper_acquires_lock h
       && not (Venv.has_bug env Kconfig.Bug5_contention_begin_attach) then
      Venv.reject env ~pc Venv.EINVAL
        "lock-acquiring helper %s not allowed on %s" h.Helper.name
        tp.Tracepoint.tp_name;
    (* Bug#6 *)
    if (tp.Tracepoint.tp_ctx = Lockdep.Nmi
        || tp.Tracepoint.tp_ctx = Lockdep.Hardirq)
       && List.mem Helper.Sends_signal h.Helper.attrs
       && not (Venv.has_bug env Kconfig.Bug6_signal_send_nmi) then
      Venv.reject env ~pc Venv.EINVAL
        "%s not allowed in irq/nmi attach context %s" h.Helper.name
        tp.Tracepoint.tp_name

let check_helper (env : Venv.t) ~(pc : int) (id : int) : unit =
  let h =
    match Helper.find id with
    | Some h when not h.Helper.internal -> h
    | Some _ | None ->
      Venv.reject env ~pc Venv.EINVAL "invalid func id %d" id
  in
  Venv.cov env "call:helper" ~v:h.Helper.id;
  env.Venv.aux.(pc).Venv.call_helper <- Some h;
  (* availability: version and program type gating *)
  if not (Version.at_least (Venv.version env) h.Helper.since) then
    Venv.reject env ~pc Venv.EINVAL "helper %s not available in %s"
      h.Helper.name
      (Version.to_string (Venv.version env));
  (match h.Helper.prog_types with
   | Some pts when not (List.mem env.Venv.prog_type pts) ->
     Venv.reject env ~pc Venv.EINVAL
       "helper %s not allowed for prog type %s" h.Helper.name
       (Prog.prog_type_to_string env.Venv.prog_type)
   | Some _ | None -> ());
  check_attach_constraints env ~pc h;
  (* spin-lock critical section: only the unlock is allowed inside *)
  let st = env.Venv.st in
  (match st.Vstate.active_lock with
   | Some _ when h.Helper.name <> "spin_unlock" ->
     Venv.reject env ~pc Venv.EINVAL
       "helper call %s not allowed inside bpf_spin_lock section"
       h.Helper.name
   | _ -> ());
  let seen_map, const_size = check_args env ~pc h.Helper.args in
  (* helper-specific state transitions *)
  (match h.Helper.name with
   | "spin_lock" -> begin
       match seen_map, Vstate.reg st Insn.R1 with
       | _, { kind = Ptr { pk = P_map_value mi; _ }; _ } ->
         st.Vstate.active_lock <- Some mi.mi_fd
       | _ -> st.Vstate.active_lock <- Some 0
     end
   | "spin_unlock" -> begin
       match st.Vstate.active_lock with
       | Some _ -> st.Vstate.active_lock <- None
       | None ->
         Venv.reject env ~pc Venv.EINVAL
           "spin_unlock without matching spin_lock"
     end
   | "ringbuf_submit" | "ringbuf_discard" -> begin
       (* must release a tracked reference *)
       match Vstate.reg st Insn.R1 with
       | { kind = Ptr { pk = P_mem _; ref_id; maybe_null = false; _ }; _ }
         when ref_id <> 0 && List.mem ref_id st.Vstate.refs ->
         st.Vstate.refs <-
           List.filter (fun r -> r <> ref_id) st.Vstate.refs;
         (* invalidate every copy of the released pointer *)
         Vstate.iter_frames st
           (fun fr ->
              Array.iteri
                (fun i r ->
                   match r.kind with
                   | Ptr { ref_id = rid; _ } when rid = ref_id ->
                     fr.Vstate.regs.(i) <- Regstate.not_init
                   | _ -> ())
                fr.Vstate.regs)
       | _ ->
         Venv.reject env ~pc Venv.EINVAL
           "R1 must be a reserved ringbuf record"
     end
   | _ -> ());
  clobber_caller_saved env;
  (* return value *)
  let r0 =
    match h.Helper.ret with
    | Helper.R_integer -> Regstate.unknown_scalar
    | Helper.R_void -> Regstate.not_init
    | Helper.R_map_value_or_null -> begin
        match seen_map with
        | Some mi ->
          Regstate.pointer (P_map_value mi) ~maybe_null:true
            ~id:(Venv.fresh_id env)
        | None -> Regstate.unknown_scalar
      end
    | Helper.R_btf_task_or_null ->
      Regstate.pointer (P_btf Btf.task_struct) ~maybe_null:true
        ~id:(Venv.fresh_id env)
    | Helper.R_ringbuf_mem_or_null ->
      let size =
        match const_size with Some v -> Int64.to_int v | None -> 0
      in
      let ref_id = Venv.fresh_id env in
      st.Vstate.refs <- ref_id :: st.Vstate.refs;
      Regstate.pointer (P_mem size) ~maybe_null:true
        ~id:(Venv.fresh_id env) ~ref_id
  in
  Venv.set_reg env Insn.R0 r0

let check_kfunc (env : Venv.t) ~(pc : int) (id : int) : unit =
  if Venv.unprivileged env then
    Venv.reject env ~pc Venv.EPERM "kfunc calls require CAP_BPF";
  if not (Version.at_least (Venv.version env) Version.V6_1) then
    Venv.reject env ~pc Venv.EINVAL "kfunc calls not supported in %s"
      (Version.to_string (Venv.version env));
  let kf =
    match Helper.find_kfunc id with
    | Some kf -> kf
    | None -> Venv.reject env ~pc Venv.EINVAL "invalid kfunc id %d" id
  in
  Venv.cov env "call:kfunc" ~v:kf.Helper.kid;
  let st = env.Venv.st in
  (match st.Vstate.active_lock with
   | Some _ ->
     Venv.reject env ~pc Venv.EINVAL
       "kfunc call not allowed inside bpf_spin_lock section"
   | None -> ());
  let _ = check_args env ~pc kf.Helper.kargs in
  (* releasing kfuncs consume the reference passed in R1 *)
  if kf.Helper.krelease then begin
    match Vstate.reg st Insn.R1 with
    | { kind = Ptr { ref_id; _ }; _ } when ref_id <> 0
                                        && List.mem ref_id st.Vstate.refs ->
      st.Vstate.refs <- List.filter (fun r -> r <> ref_id) st.Vstate.refs
    | _ ->
      Venv.reject env ~pc Venv.EINVAL
        "release kfunc %s expects a referenced object" kf.Helper.kname
  end;
  clobber_caller_saved env;
  let r0 =
    match kf.Helper.kret with
    | Helper.R_integer ->
      { Regstate.unknown_scalar with from_kfunc = true }
    | Helper.R_void -> Regstate.not_init
    | Helper.R_btf_task_or_null ->
      let ref_id = if kf.Helper.kacquire then Venv.fresh_id env else 0 in
      if ref_id <> 0 then st.Vstate.refs <- ref_id :: st.Vstate.refs;
      Regstate.pointer (P_btf Btf.task_struct) ~maybe_null:true
        ~id:(Venv.fresh_id env) ~ref_id
    | Helper.R_map_value_or_null | Helper.R_ringbuf_mem_or_null ->
      Regstate.unknown_scalar
  in
  Venv.set_reg env Insn.R0 r0
