(** kcov-style branch coverage over the verifier's decision points.

    Every interesting branch in the analysis registers a static site
    name plus a small variant discriminator; a campaign keeps one global
    [t] and measures the set of new edges per run — the fuzzer's
    feedback signal and the metric of Table 3 / Figure 6. *)

type t = {
  interner : (string, int) Hashtbl.t;
  mutable next_site : int;
  mutable counts : int array;
      (** edge id -> hit count, dense by construction (0 = never hit) *)
  mutable distinct : int;  (** non-zero entries in [counts] *)
  memo_sites : string array;
      (** direct-mapped physical-equality memo over [interner] *)
  memo_ids : int array;
}

val create : unit -> t

val variants_per_site : int

val site_id : t -> string -> int
val edge_id : t -> string -> int -> int
val record : t -> int -> unit

val hit : t -> string -> int -> unit
(** [hit t site variant] = [record t (edge_id t site variant)] — the
    one-call fast path the analysis loop uses. *)

val edge_count : t -> int
(** Distinct edges observed so far. *)

val merge : t -> (int, unit) Hashtbl.t -> int
(** Merge a run's local edge set; returns how many were new. *)

val reset : t -> unit

val named_edges : t -> ((string * int) * int) list
(** Every observed edge as its portable identity — the
    [(site name, variant)] pair with its hit count — sorted.  Numeric
    edge ids are interner-order dependent and must not be compared
    across independently grown maps; these names can be. *)

val absorb_named : t -> ((string * int) * int) list -> int
(** Merge a {!named_edges} listing (interning sites as needed, summing
    hit counts); returns how many edges were new to this map. *)

val union : t list -> t
(** A fresh map holding the union of the given maps' edges (hit counts
    summed).  Deterministic: sites are interned in sorted name order,
    regardless of the input maps' interner histories. *)

(** {1 Introspection — the [bvf cov] core} *)

val site_prefix : string -> string
(** Subsystem attribution: the site name up to the first [':']
    (["check_alu:op"] -> ["check_alu"]); unchanged when there is none. *)

val grouped : t -> (string * (int * int * ((string * int) * int) list)) list
(** Edges grouped by {!site_prefix}: [(prefix, (distinct_edges,
    summed_hits, edge_listing))], groups and listings sorted. *)

val diff : old_cov:t -> new_cov:t -> (string * int) list * (string * int) list
(** [(gained, lost)]: edges of [new_cov] absent from [old_cov] and vice
    versa, as sorted portable [(site, variant)] names.  Hit counts are
    ignored — the diff is over coverage, not intensity. *)
