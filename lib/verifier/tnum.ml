open Vimport

(* Tristate numbers: the verifier's bit-level abstract domain, a port of
   the kernel's lib/tnum.c.  A value [{value; mask}] represents every
   concrete 64-bit word that agrees with [value] on the bits cleared in
   [mask]; set bits of [mask] are unknown.  Invariant: value land mask = 0. *)

type t = { value : int64; mask : int64 }

let const (v : int64) : t = { value = v; mask = 0L }
let unknown : t = { value = 0L; mask = -1L }

let is_const (t : t) : bool = t.mask = 0L
let is_unknown (t : t) : bool = t.mask = -1L && t.value = 0L

(* Does abstract value [t] contain concrete [x]? *)
let contains (t : t) (x : int64) : bool =
  Int64.logand x (Int64.lognot t.mask) = t.value

(* Is [b] a subset of [a]?  (every concrete value of b is one of a) *)
let subset ~(of_ : t) (b : t) : bool =
  (* b's known bits must include a's known bits and agree on them *)
  Int64.logand b.mask (Int64.lognot of_.mask) = 0L
  && Int64.logand b.value (Int64.lognot of_.mask) = of_.value

let equal (a : t) (b : t) : bool = a.value = b.value && a.mask = b.mask

(* Smallest/largest unsigned concrete values. *)
let umin (t : t) : int64 = t.value
let umax (t : t) : int64 = Int64.logor t.value t.mask

(* tnum_range: tightest tnum containing the unsigned range [min, max]. *)
let range ~(min : int64) ~(max : int64) : t =
  if min = max then const min
  else begin
    let chi = Int64.logxor min max in
    (* fls64(chi) *)
    let rec fls i = if i < 0 then 0 else
        if Int64.logand (Int64.shift_right_logical chi i) 1L = 1L then i + 1
        else fls (i - 1)
    in
    let bits = fls 63 in
    if bits > 63 then unknown
    else begin
      let delta = Int64.sub (Int64.shift_left 1L bits) 1L in
      { value = Int64.logand min (Int64.lognot delta); mask = delta }
    end
  end

let lshift (t : t) (shift : int) : t =
  { value = Int64.shift_left t.value shift;
    mask = Int64.shift_left t.mask shift }

let rshift (t : t) (shift : int) : t =
  { value = Int64.shift_right_logical t.value shift;
    mask = Int64.shift_right_logical t.mask shift }

(* Arithmetic shift right of [t] interpreted at [insn_bitness] bits. *)
let arshift (t : t) (shift : int) ~(bits : int) : t =
  if bits = 32 then
    let sext v =
      Word.sext32 (Int64.shift_right (Word.sext32 v) shift)
    in
    { value = Word.to_u32 (sext t.value); mask = Word.to_u32 (sext t.mask) }
  else
    { value = Int64.shift_right t.value shift;
      mask = Int64.shift_right t.mask shift }

let add (a : t) (b : t) : t =
  let sm = Int64.add a.mask b.mask in
  let sv = Int64.add a.value b.value in
  let sigma = Int64.add sm sv in
  let chi = Int64.logxor sigma sv in
  let mu = Int64.logor chi (Int64.logor a.mask b.mask) in
  { value = Int64.logand sv (Int64.lognot mu); mask = mu }

let sub (a : t) (b : t) : t =
  let dv = Int64.sub a.value b.value in
  let alpha = Int64.add dv a.mask in
  let beta = Int64.sub dv b.mask in
  let chi = Int64.logxor alpha beta in
  let mu = Int64.logor chi (Int64.logor a.mask b.mask) in
  { value = Int64.logand dv (Int64.lognot mu); mask = mu }

let and_ (a : t) (b : t) : t =
  let alpha = Int64.logor a.value a.mask in
  let beta = Int64.logor b.value b.mask in
  let v = Int64.logand a.value b.value in
  { value = v; mask = Int64.logand (Int64.logand alpha beta) (Int64.lognot v) }

let or_ (a : t) (b : t) : t =
  let v = Int64.logor a.value b.value in
  let mu = Int64.logor a.mask b.mask in
  { value = v; mask = Int64.logand mu (Int64.lognot v) }

let xor (a : t) (b : t) : t =
  let v = Int64.logxor a.value b.value in
  let mu = Int64.logor a.mask b.mask in
  { value = Int64.logand v (Int64.lognot mu); mask = mu }

(* Half-multiply: kernel's tnum_mul.  A certain 1 bit of [a] contributes
   the (shifted) whole of [b]; an uncertain bit contributes a fully
   unknown value of [b]'s magnitude. *)
let mul (a : t) (b : t) : t =
  let rec go (a : t) (b : t) (acc : t) : t =
    if a.value = 0L && a.mask = 0L then acc
    else begin
      let acc =
        if Int64.logand a.value 1L = 1L then add acc b
        else if Int64.logand a.mask 1L = 1L then
          add acc { value = 0L; mask = Int64.logor b.value b.mask }
        else acc
      in
      go (rshift a 1) (lshift b 1) acc
    end
  in
  go a b (const 0L)

(* Intersection: both a and b are known to hold. *)
let intersect (a : t) (b : t) : t =
  let v = Int64.logor a.value b.value in
  let mu = Int64.logand a.mask b.mask in
  { value = Int64.logand v (Int64.lognot mu); mask = mu }

(* Union (join): either a or b holds. *)
let union (a : t) (b : t) : t =
  let mu =
    Int64.logor (Int64.logor a.mask b.mask) (Int64.logxor a.value b.value)
  in
  { value = Int64.logand a.value (Int64.lognot mu); mask = mu }

(* Widening: a union that accelerates towards ⊤ so loop analysis
   converges.  Any bit that becomes unknown in the union but was known
   in [a] is treated as a counter bit still climbing: it and every bit
   below it are smeared to unknown at once, so a chain
   [widen a (step a)] stabilizes in at most O(log 64) rounds instead of
   one round per bit.  Extensive by construction — the result's mask
   strictly contains the union's — and idempotent once [a] absorbs
   [b]. *)
let widen (a : t) (b : t) : t =
  let u = union a b in
  if equal u a then a
  else begin
    let grown = Int64.logand u.mask (Int64.lognot a.mask) in
    let rec smear x n =
      if n >= 64 then x
      else smear (Int64.logor x (Int64.shift_right_logical x n)) (2 * n)
    in
    let fill = smear grown 1 in
    { value = Int64.logand u.value (Int64.lognot fill);
      mask = Int64.logor u.mask fill }
  end

(* Truncate to the low [size] bytes (zero extension). *)
let cast (t : t) ~(size : int) : t =
  if size >= 8 then t
  else begin
    let bits = size * 8 in
    let m = Int64.sub (Int64.shift_left 1L bits) 1L in
    { value = Int64.logand t.value m; mask = Int64.logand t.mask m }
  end

let subreg (t : t) : t = cast t ~size:4

(* Clear the low 32 bits and replace them with [sub]. *)
let with_subreg (t : t) (sub : t) : t =
  let hi v = Int64.logand v 0xFFFF_FFFF_0000_0000L in
  { value = Int64.logor (hi t.value) (Word.to_u32 sub.value);
    mask = Int64.logor (hi t.mask) (Word.to_u32 sub.mask) }

let is_aligned (t : t) (size : int64) : bool =
  Int64.logand (Int64.logor t.value t.mask) (Int64.sub size 1L) = 0L

let to_string (t : t) : string =
  if is_const t then Printf.sprintf "%Ld" t.value
  else if is_unknown t then "unknown"
  else Printf.sprintf "(value=%#Lx; mask=%#Lx)" t.value t.mask
