open Vimport

(* One minimal rejected program per taxonomy bucket: the executable
   companion to docs/REJECTIONS.md.  Each builds a fresh kernel state so
   the examples are independent and order-insensitive.

   Env_failure (fault injection) and Unknown (the taxonomy gap marker)
   have no example program by design: neither is a verdict the verifier
   reaches about a well-formed load on a healthy kernel. *)

type example = {
  ex_reason : Reject_reason.t;
  ex_title : string;
  ex_build : unit -> Kstate.t * Verifier.request;
}

let kst () = Kstate.create (Kconfig.default Version.Bpf_next)

let plain ?attach prog_type fragments =
  fun () ->
    (kst (), Verifier.request ?attach prog_type (Asm.prog fragments))

let mk reason title build =
  { ex_reason = reason; ex_title = title; ex_build = build }

open Asm

let all : example list =
  [
    mk Reject_reason.Uninit_access "read of a never-written register"
      (plain Prog.Socket_filter [ [ mov64_reg R0 R2; exit_ ] ]);
    mk Reject_reason.Oob_access "store above the stack frame"
      (plain Prog.Socket_filter [ [ st_dw R10 8 0l ]; ret 0l ]);
    mk Reject_reason.Bad_ctx_access "unaligned context field read"
      (plain Prog.Socket_filter [ [ ldx_w R0 R1 3 ]; ret 0l ]);
    mk Reject_reason.Null_deref "map lookup result used without null check"
      (fun () ->
         let kst = kst () in
         let fd = Kstate.map_create kst (Map.array_def ()) in
         let insns =
           prog
             [ [ st_w R10 (-8) 0l;            (* key = 0 at fp-8 *)
                 mov64_reg R2 R10; alu64_imm Insn.Add R2 (-8l);
                 ld_map_fd R1 fd;
                 call 1;                      (* map_lookup_elem *)
                 ldx_w R3 R0 0 ];             (* deref *_or_null *)
               ret 0l ]
         in
         (kst, Verifier.request Prog.Socket_filter insns));
    mk Reject_reason.Ptr_leak "frame pointer returned in R0"
      (plain Prog.Socket_filter [ [ mov64_reg R0 R10; exit_ ] ]);
    mk Reject_reason.Bad_ptr_arith "multiplication on a pointer"
      (plain Prog.Socket_filter
         [ [ mov64_reg R1 R10; alu64_imm Insn.Mul R1 2l ]; ret 0l ]);
    mk Reject_reason.Type_mismatch "load through a scalar"
      (plain Prog.Socket_filter
         [ [ mov64_imm R1 1l; ldx_w R0 R1 0 ]; ret 0l ]);
    mk Reject_reason.Bad_helper_arg "scalar where a map pointer is due"
      (plain Prog.Socket_filter
         [ [ mov64_imm R1 0l; mov64_imm R2 0l; call 1 ]; ret 0l ]);
    mk Reject_reason.Helper_unavailable "call to a nonexistent helper"
      (plain Prog.Socket_filter [ [ call 9999 ]; ret 0l ]);
    mk Reject_reason.Lock_violation "spin_lock taken but never released"
      (fun () ->
         let kst = kst () in
         let fd =
           Kstate.map_create kst (Map.hash_def ~has_spin_lock:true ())
         in
         let insns =
           prog
             [ [ st_dw R10 (-8) 0l;           (* key at fp-8 *)
                 mov64_reg R2 R10; alu64_imm Insn.Add R2 (-8l);
                 ld_map_fd R1 fd;
                 call 1;                      (* map_lookup_elem *)
                 jmp_imm Insn.Jne R0 0l 2 ];  (* non-null -> lock *)
               ret 0l;
               [ mov64_reg R1 R0;
                 call 93 ];                   (* spin_lock, no unlock *)
               ret 0l ]
         in
         (kst, Verifier.request Prog.Socket_filter insns));
    mk Reject_reason.Ref_leak "ringbuf record reserved but never submitted"
      (fun () ->
         let kst = kst () in
         let fd = Kstate.map_create kst (Map.ringbuf_def ()) in
         let insns =
           prog
             [ [ ld_map_fd R1 fd;
                 mov64_imm R2 8l; mov64_imm R3 0l;
                 call 131 ];                  (* ringbuf_reserve *)
               ret 0l ]
         in
         (kst, Verifier.request Prog.Socket_filter insns));
    mk Reject_reason.Bad_return_value "XDP return code out of range"
      (plain Prog.Xdp [ ret 7l ]);
    mk Reject_reason.Unbounded_loop "constant-condition self loop"
      (plain Prog.Socket_filter
         [ [ mov64_imm R0 0l; jmp_imm Insn.Jeq R0 0l (-1); exit_ ] ]);
    mk Reject_reason.Loop_unbounded
      "counted loop whose carried pointer never converges"
      (* the counter certifies the loop (30 trips), but the
         loop-carried frame-pointer decrement gives every iteration a
         structurally different state: pointer pairs with different
         offsets admit no sound widening, so the analyzer unrolls
         until the per-insn entry budget is gone *)
      (plain Prog.Socket_filter
         [ [ mov64_imm R6 0l;
             mov64_reg R2 R10;
             (* head: *)
             alu64_imm Insn.Add R2 (-8l);
             alu64_imm Insn.Add R6 1l;
             jmp_imm Insn.Jlt R6 30l (-3) ];
           ret 0l ]);
    mk Reject_reason.Insn_limit "call chain deeper than the frame budget"
      (plain Prog.Socket_filter
         [ [ call_local 1; exit_ ];
           [ call_local 1; exit_ ];
           [ call_local 1; exit_ ];
           [ call_local 1; exit_ ];
           ret 0l ]);
    mk Reject_reason.Budget_exhausted
      "branch ladder past the pending-branch budget"
      (* one unknown scalar compared against 520 distinct constants,
         every jump falling through (off = 0): each comparison pushes a
         sibling path, blowing the pending-branch budget on the very
         first walk — the structured form of branch explosion *)
      (plain Prog.Socket_filter
         [ ldx_w R0 R1 0
           :: List.init 520
                (fun i -> jmp_imm Insn.Jeq R0 (Int32.of_int i) 0);
           ret 0l ]);
    mk Reject_reason.Bad_cfg "jump past the end of the program"
      (plain Prog.Socket_filter [ [ ja 1; exit_ ] ]);
    mk Reject_reason.Bad_insn "write to the hidden register R11"
      (plain Prog.Socket_filter [ [ mov64_imm R11 0l ]; ret 0l ]);
    mk Reject_reason.Bad_map_op "ld_imm64 of a never-created map fd"
      (plain Prog.Socket_filter [ [ ld_map_fd R1 9999 ]; ret 0l ]);
    mk Reject_reason.Priv "XDP load without CAP_BPF"
      (fun () ->
         let kst =
           Kstate.create
             (Kconfig.make ~unprivileged:true Version.Bpf_next)
         in
         (kst, Verifier.request Prog.Xdp (prog [ ret 0l ])));
    mk Reject_reason.Bad_attach "attach to a tracepoint that does not exist"
      (plain ~attach:(Some "no_such_tp") Prog.Kprobe [ ret 0l ]);
    mk Reject_reason.Prog_size "empty instruction stream"
      (plain Prog.Socket_filter []);
  ]

let verify_example (ex : example) : (Reject_reason.t * string) option =
  let kst, req = ex.ex_build () in
  let cov = Coverage.create () in
  match Verifier.load kst ~cov req with
  | Ok _ -> None
  | Error e -> Some (e.Venv.vreason, e.Venv.vmsg)
