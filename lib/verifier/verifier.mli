(** Public entry point: the bpf(BPF_PROG_LOAD) pipeline.

    {v structural checks -> attach validation -> abstract interpretation
       -> fixup rewrites -> (optional) bpf_asan sanitation -> loaded v}

    Carries two injected non-verifier bugs from the paper's Table 2: the
    Bug#8 kmemdup-above-kmalloc-limit splat in the syscall path, and the
    acceptance of device-offloaded XDP programs that arms Bug#11 in the
    runtime. *)

(** A load request, as userspace would issue it. *)
type request = {
  r_prog_type : Bvf_ebpf.Prog.prog_type;
  r_attach : string option;  (** attach point name *)
  r_offload : bool;          (** XDP: target a device, not the host *)
  r_insns : Bvf_ebpf.Insn.t array;
}

val request :
  ?attach:string option -> ?offload:bool -> Bvf_ebpf.Prog.prog_type ->
  Bvf_ebpf.Insn.t array -> request

(** A verified, rewritten, (optionally) sanitized program. *)
type loaded = {
  l_id : int;
  l_insns : Bvf_ebpf.Insn.t array; (** post-rewrite instruction stream *)
  l_aux : Venv.aux array;          (** aligned auxiliary data *)
  l_prog_type : Bvf_ebpf.Prog.prog_type;
  l_attach : Bvf_kernel.Tracepoint.t option;
  l_offload : bool;
  l_orig_len : int;
  l_log : string;                  (** verifier log *)
  l_insn_processed : int;          (** verification effort *)
  l_lint : Invariants.violation list;
      (** invariant-lint violations (capped), when [Kconfig.lint] *)
  l_lint_count : int;              (** total violations incl. dropped *)
  l_sanitize_s : float;
      (** wall time of the fixup + sanitation rewrites, for phase
          profiling (the rest of the load span is verification) *)
  l_sanitize_w : float;
      (** minor words allocated by those rewrites, for phase-level
          allocation attribution *)
  l_vstats : Vstats.t;
      (** veristat-style performance counters of the analysis *)
}

val kmalloc_max : int
(** Allocation limit of the Bug#8 kmemdup path, in bytes. *)

val uses_reserved : Bvf_ebpf.Insn.t array -> bool
(** Does the program reference the hidden register or internal
    helpers? *)

val load :
  Bvf_kernel.Kstate.t -> cov:Coverage.t -> ?log_level:int -> request ->
  (loaded, Venv.verr) result
(** The full pipeline. *)

val load_with_log :
  Bvf_kernel.Kstate.t -> cov:Coverage.t -> ?log_level:int -> request ->
  (loaded, Venv.verr) result * string
(** {!load}, also returning the verifier log whatever the verdict —
    the kernel copies the log buffer back to user space on rejection
    too.  [bvf explain] and rejected-program tracing use this; the log
    is empty when the load failed before analysis (structural checks,
    fd resolution, injected allocation faults). *)

val load_with_stats :
  Bvf_kernel.Kstate.t -> cov:Coverage.t -> ?log_level:int -> request ->
  (loaded, Venv.verr) result * string * Vstats.t option
(** {!load_with_log}, additionally returning the veristat-style
    performance counters whenever the analysis ran.  [None] means the
    load failed before a verification environment existed (structural
    checks, privilege, fd resolution, injected allocation faults) — a
    rejected program that reached the analysis still reports the effort
    spent rejecting it, exactly like the kernel's verifier stats. *)

val verify :
  Bvf_kernel.Kstate.t -> cov:Coverage.t -> ?log_level:int -> request ->
  (unit, Venv.verr) result
(** Verification only (no rewrites): used by tests and the acceptance
    experiment. *)

val lint :
  Bvf_kernel.Kstate.t -> cov:Coverage.t -> request ->
  (unit, Venv.verr) result * Invariants.violation list * int
(** Verification plus invariant-lint results, whatever the verdict:
    the [bvf lint] entry point.  Requires a [Kconfig.lint]-enabled
    kernel state to record anything. *)

(** {1 Stable fingerprints (the verdict-cache key pieces)}

    Verification is deterministic: verdict, canonical message, log and
    performance counters are a pure function of (program, resolvable
    maps, kernel config).  These fingerprints canonicalize exactly those
    inputs for the service layer's content-addressed verdict cache
    (see docs/SERVICE.md for the soundness argument). *)

val verifier_abi : string
(** Analyzer revision baked into {!config_fingerprint}.  Bump whenever a
    verifier change can alter any verdict, canonical message, log line
    or deterministic counter for a fixed input: every previously cached
    verdict is then invalidated by key mismatch. *)

val request_canonical : request -> string
(** Canonical byte serialization of a load request: prog type, attach
    point, offload flag, then the program's wire encoding
    ({!Bvf_ebpf.Encode.encode}; programs whose branches escape the
    instruction array fall back to a structural serialization so the
    function is total). *)

val request_fingerprint : request -> string
(** Hex digest of {!request_canonical}. *)

val config_fingerprint : Bvf_kernel.Kconfig.t -> string
(** Hex digest of every config field verification depends on (version,
    sorted bug registry, sanitize/unprivileged/lint/witness switches)
    plus {!verifier_abi}. *)

val maps_fingerprint : (int * Bvf_kernel.Map.def) list -> string
(** Hex digest of a session's map population — (fd, definition) pairs,
    sorted by fd.  Programs reference maps by fd, so two sessions with
    equal fingerprints resolve every map reference identically. *)
