open Vimport

(* Public entry point: the bpf(BPF_PROG_LOAD) pipeline.

      structural checks -> attach validation -> abstract interpretation
      -> fixup rewrites -> (optional) bpf_asan sanitation -> loaded

   Also carries two injected non-verifier bugs from Table 2:
   - Bug#8: the syscall duplicates the rewritten instruction array with
     kmemdup; above the kmalloc allocation limit this fails and splats
     (the paper's fix introduced kvmemdup);
   - Bug#11 is armed here by accepting device-offloaded XDP programs
     that the runtime will erroneously execute on the host. *)

type request = {
  r_prog_type : Prog.prog_type;
  r_attach : string option;
  r_offload : bool; (* XDP: target a device, not the host *)
  r_insns : Insn.t array;
}

let request ?(attach = None) ?(offload = false) prog_type insns =
  { r_prog_type = prog_type; r_attach = attach; r_offload = offload;
    r_insns = insns }

type loaded = {
  l_id : int;
  l_insns : Insn.t array;        (* post-rewrite instruction stream *)
  l_aux : Venv.aux array;        (* aligned auxiliary data *)
  l_prog_type : Prog.prog_type;
  l_attach : Tracepoint.t option;
  l_offload : bool;
  l_orig_len : int;              (* pre-rewrite instruction count *)
  l_log : string;                (* verifier log *)
  l_insn_processed : int;        (* verification effort *)
  l_lint : Invariants.violation list; (* Kconfig.lint violations (capped) *)
  l_lint_count : int;            (* total, including dropped-by-cap *)
  l_sanitize_s : float;          (* wall time of fixup + sanitation *)
  l_sanitize_w : float;          (* minor words of fixup + sanitation *)
  l_vstats : Vstats.t;           (* veristat-style performance counters *)
}

(* kmalloc allocation limit for the Bug#8 kmemdup path (bytes). *)
let kmalloc_max = 8192

(* Programs must not reference the hidden register or the internal
   sanitizing helpers: only rewrite passes may emit those. *)
let uses_reserved (insns : Insn.t array) : bool =
  Array.exists
    (fun i ->
       List.exists (fun r -> r = Insn.R11) (Insn.regs_read i)
       || List.exists (fun r -> r = Insn.R11) (Insn.regs_written i)
       ||
       match i with
       | Insn.Call (Insn.Helper id) -> begin
           match Helper.find id with
           | Some h -> h.Helper.internal
           | None -> false
         end
       | _ -> false)
    insns

(* The kernel resolves map fds to map pointers before verification
   (resolve_pseudo_ldimm64), over every instruction — dead code
   included; a stale or never-created fd fails the load with -EBADF, and
   direct value access on a map that does not support it with -EINVAL.
   Under fault injection these are normal outcomes: a map creation that
   failed with -ENOMEM leaves later programs referencing an fd that
   never existed (or that a different map ended up with). *)
let resolve_map_fds (kst : Kstate.t) (insns : Insn.t array) :
  (unit, Venv.verr) result =
  let bad = ref None in
  Array.iteri
    (fun pc i ->
       if !bad = None then
         match i with
         | Insn.Ld_imm64 (_, (Insn.Map_fd fd | Insn.Map_value (fd, _)))
           when Kstate.map_of_fd kst fd = None ->
           bad :=
             Some (Venv.verr_make Venv.EBADF ~pc
                     (Printf.sprintf "fd %d is not a map" fd))
         | Insn.Ld_imm64 (_, Insn.Map_value (fd, _)) -> begin
             match Kstate.map_of_fd kst fd with
             | Some m when m.Map.def.Map.mtype <> Map.Array_map ->
               bad :=
                 Some
                   (Venv.verr_make Venv.EINVAL ~pc
                      (Printf.sprintf
                         "map fd %d does not support direct value access"
                         fd))
             | Some _ | None -> ()
           end
         | _ -> ())
    insns;
  match !bad with Some e -> Error e | None -> Ok ()

(* Program types loadable without CAP_BPF/CAP_PERFMON. *)
let unprivileged_prog_types = [ Prog.Socket_filter; Prog.Cgroup_skb ]

let check_privilege (kst : Kstate.t) (req : request) :
  (unit, Venv.verr) result =
  if kst.Kstate.config.Kconfig.unprivileged
     && not (List.mem req.r_prog_type unprivileged_prog_types)
  then
    Error
      (Venv.verr_make Venv.EPERM ~pc:0
         (Printf.sprintf "prog type %s requires CAP_BPF"
            (Prog.prog_type_to_string req.r_prog_type)))
  else Ok ()

let resolve_attach (kst : Kstate.t) (req : request) :
  (Tracepoint.t option, Venv.verr) result =
  match req.r_attach with
  | None -> Ok None
  | Some name -> begin
      match Tracepoint.find name with
      | None ->
        Error
          (Venv.verr_make Venv.EINVAL ~pc:0
             (Printf.sprintf "unknown attach point %s" name))
      | Some tp ->
        if not (List.mem req.r_prog_type tp.Tracepoint.tp_prog_types) then
          Error
            (Venv.verr_make Venv.EINVAL ~pc:0
               (Printf.sprintf "prog type %s cannot attach to %s"
                  (Prog.prog_type_to_string req.r_prog_type) name))
        else if
          not (Version.at_least kst.Kstate.config.Kconfig.version
                 tp.Tracepoint.tp_since)
        then
          Error
            (Venv.verr_make Venv.EINVAL ~pc:0
               (Printf.sprintf "%s does not exist in %s" name
                  (Version.to_string
                     kst.Kstate.config.Kconfig.version)))
        else Ok (Some tp)
    end

(* The full pipeline, also returning the verifier log whatever the
   verdict — the kernel copies the log buffer back to user space on
   rejection too, and [bvf explain] needs exactly that — plus the
   performance counters whenever the analysis ran ([None] only for the
   early exits that never built a verification environment: structural
   checks, privilege, fd resolution, injected allocation faults). *)
let load_with_stats (kst : Kstate.t) ~(cov : Coverage.t) ?(log_level = 0)
    (req : request) :
  (loaded, Venv.verr) result * string * Vstats.t option =
  let n = Array.length req.r_insns in
  if n = 0 then
    (Error (Venv.verr_make Venv.EINVAL ~pc:0 "empty program"), "", None)
  else if n > Prog.max_insns then
    (Error
       (Venv.verr_make Venv.E2BIG ~pc:0
          (Printf.sprintf "program too large (%d insns)" n)), "", None)
  else if uses_reserved req.r_insns then
    (Error
       (Venv.verr_make Venv.EINVAL ~pc:0
          "program uses reserved register or helper"), "", None)
  else if
    (* failslab: the syscall kvcallocs insn_aux_data and the verifier
       state before any analysis; a failed allocation is a clean -ENOMEM,
       never a verdict about the program *)
    Bvf_kernel.Failslab.should_fail kst.Kstate.failslab
      ~site:"bpf_check:insn_aux"
  then
    (Error
       (Venv.verr_make Venv.ENOMEM ~pc:0
          "kvcalloc of insn_aux_data failed"), "", None)
  else
    match check_privilege kst req with
    | Error e -> (Error e, "", None)
    | Ok () ->
    match resolve_map_fds kst req.r_insns with
    | Error e -> (Error e, "", None)
    | Ok () ->
    match resolve_attach kst req with
    | Error e -> (Error e, "", None)
    | Ok attach ->
      let env =
        Venv.create ~kst ~prog_type:req.r_prog_type ~attach ~cov
          ~log_level req.r_insns
      in
      let log () = Vlog.contents env.Venv.vlog in
      let vst = env.Venv.vst in
      match Analyze.run env with
      | exception Venv.Reject verr -> (Error verr, log (), Some vst)
      | () ->
        let t_rewrite = Bvf_util.Mclock.now_s () in
        let w_rewrite = Gc.minor_words () in
        let insns, aux = Fixup.run kst ~insns:req.r_insns ~aux:env.Venv.aux
        in
        let insns, aux =
          if kst.Kstate.config.Kconfig.sanitize then
            Sanitize.run ~insns ~aux
          else (insns, aux)
        in
        let sanitize_s = Bvf_util.Mclock.elapsed_s ~since:t_rewrite in
        let sanitize_w = Float.max 0. (Gc.minor_words () -. w_rewrite) in
        if
          (* failslab: allocating the rewritten program image *)
          Bvf_kernel.Failslab.should_fail kst.Kstate.failslab
            ~site:"bpf_prog_load:prog_image"
        then
          (Error
             (Venv.verr_make Venv.ENOMEM ~pc:0
                "bpf_prog_realloc of rewritten image failed"), log (),
           Some vst)
        else begin
        (* Bug#8: the syscall kmemdups the rewritten image for
           introspection; large images exceed the kmalloc limit *)
        if Kstate.has_bug kst Kconfig.Bug8_kmemdup_limit
           && Insn.prog_slots insns * 8 > kmalloc_max then
          Kstate.report kst
            (Bvf_kernel.Report.make
               (Bvf_kernel.Report.Kernel_routine "bpf_prog_load")
               (Bvf_kernel.Report.Warn
                  "kmemdup of rewritten insns failed (kmalloc limit)"));
        let id = kst.Kstate.next_prog_id in
        kst.Kstate.next_prog_id <- id + 1;
        (Ok
          {
            l_id = id;
            l_insns = insns;
            l_aux = aux;
            l_prog_type = req.r_prog_type;
            l_attach = attach;
            l_offload = req.r_offload;
            l_orig_len = n;
            l_log = log ();
            l_insn_processed = env.Venv.insn_processed;
            l_lint = List.rev env.Venv.lint;
            l_lint_count = env.Venv.lint_count;
            l_sanitize_s = sanitize_s;
            l_sanitize_w = sanitize_w;
            l_vstats = vst;
          }, log (), Some vst)
        end

let load_with_log (kst : Kstate.t) ~(cov : Coverage.t) ?log_level
    (req : request) : (loaded, Venv.verr) result * string =
  let verdict, log, _ = load_with_stats kst ~cov ?log_level req in
  (verdict, log)

let load (kst : Kstate.t) ~(cov : Coverage.t) ?log_level (req : request) :
  (loaded, Venv.verr) result =
  let verdict, _, _ = load_with_stats kst ~cov ?log_level req in
  verdict

(* Verification only (no rewrites): used by tests and the acceptance
   experiment. *)
let verify (kst : Kstate.t) ~(cov : Coverage.t) ?(log_level = 0)
    (req : request) : (unit, Venv.verr) result =
  let n = Array.length req.r_insns in
  if n = 0 || n > Prog.max_insns then
    Error
      (Venv.verr_make
         (if n = 0 then Venv.EINVAL else Venv.E2BIG)
         ~pc:0 "size")
  else if uses_reserved req.r_insns then
    Error
      (Venv.verr_make Venv.EINVAL ~pc:0
         "program uses reserved register or helper")
  else
    match check_privilege kst req with
    | Error e -> Error e
    | Ok () ->
    match resolve_map_fds kst req.r_insns with
    | Error e -> Error e
    | Ok () ->
    match resolve_attach kst req with
    | Error e -> Error e
    | Ok attach ->
      let env =
        Venv.create ~kst ~prog_type:req.r_prog_type ~attach ~cov
          ~log_level req.r_insns
      in
      (match Analyze.run env with
       | exception Venv.Reject verr -> Error verr
       | () -> Ok ())

(* Verification plus the invariant-lint results, whatever the verdict:
   the [bvf lint] entry point.  The lint observes states the analysis
   visited before any rejection, so a rejected program still reports
   what the verifier's bookkeeping looked like on the way. *)
let lint (kst : Kstate.t) ~(cov : Coverage.t) (req : request) :
  (unit, Venv.verr) result * Invariants.violation list * int =
  let n = Array.length req.r_insns in
  if n = 0 || n > Prog.max_insns then
    (Error
       (Venv.verr_make
          (if n = 0 then Venv.EINVAL else Venv.E2BIG)
          ~pc:0 "size"), [], 0)
  else if uses_reserved req.r_insns then
    (Error
       (Venv.verr_make Venv.EINVAL ~pc:0
          "program uses reserved register or helper"),
     [], 0)
  else
    match check_privilege kst req with
    | Error e -> (Error e, [], 0)
    | Ok () ->
    match resolve_map_fds kst req.r_insns with
    | Error e -> (Error e, [], 0)
    | Ok () ->
    match resolve_attach kst req with
    | Error e -> (Error e, [], 0)
    | Ok attach ->
      let env =
        Venv.create ~kst ~prog_type:req.r_prog_type ~attach ~cov
          req.r_insns
      in
      let verdict =
        match Analyze.run env with
        | exception Venv.Reject verr -> Error verr
        | () -> Ok ()
      in
      (verdict, List.rev env.Venv.lint, env.Venv.lint_count)

(* -- Stable fingerprints for the verdict cache ------------------------

   Verification is deterministic: the verdict, canonical rejection
   message, log and performance counters are a pure function of
   (program, resolvable maps, kernel config).  The service layer
   (lib/core/vcache.ml) caches verdicts under a content hash of exactly
   those inputs; the fingerprints below define that hash.  [verifier_abi]
   is baked into the config fingerprint so a semantic change to the
   analyzer invalidates every previously cached verdict — bump it
   whenever any verdict, canonical message, log line or deterministic
   counter can change for a fixed input. *)

let verifier_abi = "bvf-verifier/1"

(* Canonical byte serialization of a request: the program's wire
   encoding (byte-compatible with struct bpf_insn) prefixed by the load
   attributes that shape verification.  Programs whose branches escape
   the instruction array cannot be wire-encoded; they are canonicalized
   structurally instead (the verifier rejects them anyway, but the cache
   key must still be total). *)
let request_canonical (req : request) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b (Prog.prog_type_to_string req.r_prog_type);
  Buffer.add_char b '\n';
  (match req.r_attach with
   | None -> Buffer.add_char b '-'
   | Some a -> Buffer.add_string b a);
  Buffer.add_char b '\n';
  Buffer.add_string b (if req.r_offload then "offload" else "host");
  Buffer.add_char b '\n';
  (match Encode.encode req.r_insns with
   | bytes -> Buffer.add_string b (Bytes.unsafe_to_string bytes)
   | exception Invalid_argument _ ->
     Buffer.add_string b "unencodable:";
     Buffer.add_string b (Marshal.to_string req.r_insns []));
  Buffer.contents b

let request_fingerprint (req : request) : string =
  Digest.to_hex (Digest.string (request_canonical req))

let config_fingerprint (c : Kconfig.t) : string =
  let b = Buffer.create 128 in
  Buffer.add_string b verifier_abi;
  Buffer.add_char b '\n';
  Buffer.add_string b (Version.to_string c.Kconfig.version);
  Buffer.add_char b '\n';
  List.iter
    (fun bug ->
       Buffer.add_string b (Kconfig.bug_to_string bug);
       Buffer.add_char b ' ')
    (List.sort_uniq compare c.Kconfig.bugs);
  Printf.bprintf b "\nsanitize=%b unprivileged=%b lint=%b witness=%b"
    c.Kconfig.sanitize c.Kconfig.unprivileged c.Kconfig.lint
    c.Kconfig.witness;
  Digest.to_hex (Digest.string (Buffer.contents b))

let maps_fingerprint (maps : (int * Map.def) list) : string =
  let b = Buffer.create 128 in
  List.iter
    (fun (fd, (d : Map.def)) ->
       Printf.bprintf b "%d %s key=%d value=%d entries=%d lock=%b\n" fd
         (Map.map_type_to_string d.Map.mtype)
         d.Map.key_size d.Map.value_size d.Map.max_entries
         d.Map.has_spin_lock)
    (List.sort (fun (a, _) (b, _) -> compare a b) maps);
  Digest.to_hex (Digest.string (Buffer.contents b))
