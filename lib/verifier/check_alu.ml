open Vimport

(* ALU instruction checking: scalar bounds arithmetic (the kernel's
   adjust_scalar_min_max_vals) and pointer arithmetic
   (adjust_ptr_min_max_vals), including the alu_limit computation that
   the sanitize pass turns into runtime assertions.

   Injected bug: with [Cve_2022_23222] present, arithmetic on
   maybe-null pointers is permitted (Listing 1 of the paper). *)

open Regstate

let u32_max = 0xFFFF_FFFFL

(* -- Scalar ops -------------------------------------------------------- *)

let unbounded (r : Regstate.t) : Regstate.t =
  { r with smin = Int64.min_int; smax = Int64.max_int; umin = 0L;
    umax = -1L }

let signed_add_overflows a b =
  let s = Int64.add a b in
  (b > 0L && s < a) || (b < 0L && s > a)

let signed_sub_overflows a b =
  let s = Int64.sub a b in
  (b < 0L && s < a) || (b > 0L && s > a)

let scalar_add (d : t) (s : t) : t =
  let smin, smax =
    if signed_add_overflows d.smin s.smin
       || signed_add_overflows d.smax s.smax
    then (Int64.min_int, Int64.max_int)
    else (Int64.add d.smin s.smin, Int64.add d.smax s.smax)
  in
  let umin, umax =
    (* unsigned overflow check *)
    if Word.ult (Int64.add d.umin s.umin) d.umin
       || Word.ult (Int64.add d.umax s.umax) d.umax
    then (0L, -1L)
    else (Int64.add d.umin s.umin, Int64.add d.umax s.umax)
  in
  sync { d with var_off = Tnum.add d.var_off s.var_off; smin; smax; umin;
         umax }

let scalar_sub (d : t) (s : t) : t =
  let smin, smax =
    if signed_sub_overflows d.smin s.smax
       || signed_sub_overflows d.smax s.smin
    then (Int64.min_int, Int64.max_int)
    else (Int64.sub d.smin s.smax, Int64.sub d.smax s.smin)
  in
  let umin, umax =
    if Word.ult d.umin s.umax then (0L, -1L)
    else (Int64.sub d.umin s.umax, Int64.sub d.umax s.umin)
  in
  sync { d with var_off = Tnum.sub d.var_off s.var_off; smin; smax; umin;
         umax }

let scalar_bitop op (d : t) (s : t) : t =
  let var_off =
    match op with
    | `And -> Tnum.and_ d.var_off s.var_off
    | `Or -> Tnum.or_ d.var_off s.var_off
    | `Xor -> Tnum.xor d.var_off s.var_off
  in
  let base =
    { d with var_off; umin = Tnum.umin var_off; umax = Tnum.umax var_off }
  in
  (* signed bounds: non-negative when both operands are *)
  let base =
    if d.smin >= 0L && s.smin >= 0L then
      { base with smin = 0L; smax = Int64.max_int }
    else { base with smin = Int64.min_int; smax = Int64.max_int }
  in
  sync base

let scalar_mul (d : t) (s : t) : t =
  let var_off = Tnum.mul d.var_off s.var_off in
  if Word.ule d.umax u32_max && Word.ule s.umax u32_max then begin
    (* both operands fit in 32 bits: the unsigned product cannot wrap
       64 bits, so the unsigned bounds are exact *)
    let umin = Int64.mul d.umin s.umin in
    let umax = Int64.mul d.umax s.umax in
    (* kernel adjust_scalar_min_max_vals: the unsigned bounds carry over
       to the signed ones only when the product provably fits in S64 —
       a product of 2^63 or above is negative as a signed value *)
    let smin, smax =
      if Word.ule umax Int64.max_int then (umin, umax)
      else (Int64.min_int, Int64.max_int)
    in
    sync { d with var_off; smin; smax; umin; umax }
  end
  else sync { (unbounded d) with var_off }

let scalar_div (d : t) (_s : t) : t =
  (* unsigned division: result never exceeds the dividend *)
  sync
    { d with var_off = Tnum.unknown; smin = Int64.min_int;
      smax = Int64.max_int; umin = 0L; umax = d.umax }

let scalar_mod (d : t) (s : t) : t =
  (* x mod 0 = x in eBPF, so the result is bounded by max(x, y-1) *)
  let umax =
    if s.umin <> 0L && Word.ult (Int64.sub s.umax 1L) d.umax then
      Int64.sub s.umax 1L
    else d.umax
  in
  sync
    { d with var_off = Tnum.unknown; smin = Int64.min_int;
      smax = Int64.max_int; umin = 0L; umax }

let scalar_shift op (d : t) (s : t) ~(op64 : bool) : t =
  let bits = if op64 then 64 else 32 in
  match Regstate.const_value s with
  | Some sh64 ->
    let sh = Int64.to_int (Int64.logand sh64 (Int64.of_int (bits - 1))) in
    if sh = 0 then Regstate.sync d (* identity shift *)
    else
    (match op with
     | `Lsh ->
       let var_off = Tnum.lshift d.var_off sh in
       let fits v =
         not (Word.ugt v (Word.shr64 (-1L) (Int64.of_int sh)))
       in
       (* a bound that would overflow when shifted tells us nothing *)
       let umin = if fits d.umin then Int64.shift_left d.umin sh else 0L in
       let umax =
         if fits d.umax then Int64.shift_left d.umax sh else -1L
       in
       sync
         { d with var_off; smin = Int64.min_int; smax = Int64.max_int;
           umin; umax }
     | `Rsh ->
       let var_off = Tnum.rshift d.var_off sh in
       sync
         { d with var_off; smin = 0L; smax = Int64.max_int;
           umin = Int64.shift_right_logical d.umin sh;
           umax = Int64.shift_right_logical d.umax sh }
     | `Arsh ->
       let var_off = Tnum.arshift d.var_off sh ~bits in
       sync
         { d with var_off; smin = Int64.shift_right d.smin sh;
           smax = Int64.shift_right d.smax sh; umin = 0L; umax = -1L })
  | None -> begin
      match op with
      | `Rsh ->
        (* shifting right by an unknown amount cannot grow the value
           (unsigned); the shift may be zero, so negative signed values
           survive *)
        sync
          { d with var_off = Tnum.unknown;
            smin = Word.smin d.smin 0L;
            smax = Int64.max_int; umin = 0L; umax = d.umax }
      | `Lsh | `Arsh -> unbounded { d with var_off = Tnum.unknown }
    end

(* Dispatch one scalar ALU op at 64-bit width. *)
let scalar_op64 (op : Insn.alu_op) (d : t) (s : t) : t =
  match op with
  | Insn.Add -> scalar_add d s
  | Insn.Sub -> scalar_sub d s
  | Insn.And -> scalar_bitop `And d s
  | Insn.Or -> scalar_bitop `Or d s
  | Insn.Xor -> scalar_bitop `Xor d s
  | Insn.Mul -> scalar_mul d s
  | Insn.Div -> scalar_div d s
  | Insn.Mod -> scalar_mod d s
  | Insn.Lsh -> scalar_shift `Lsh d s ~op64:true
  | Insn.Rsh -> scalar_shift `Rsh d s ~op64:true
  | Insn.Arsh -> scalar_shift `Arsh d s ~op64:true
  | Insn.Neg -> scalar_sub (Regstate.const_scalar 0L) d
  | Insn.Mov -> s

(* 32-bit ALU: operate on truncated operands, zero-extend the result.
   Shifts are tracked purely through the tnum domain at 32 bits — the
   signed-range reasoning of the 64-bit path does not transfer to
   zero-extended subregisters. *)
let scalar_op32 (op : Insn.alu_op) (d : t) (s : t) : t =
  let d32 = Regstate.truncate32 d and s32 = Regstate.truncate32 s in
  match op with
  | Insn.Lsh | Insn.Rsh | Insn.Arsh -> begin
      match Regstate.const_value s32 with
      | Some sh64 ->
        let sh = Int64.to_int (Int64.logand sh64 31L) in
        let t = Tnum.cast d32.var_off ~size:4 in
        let shifted =
          match op with
          | Insn.Lsh -> Tnum.cast (Tnum.lshift t sh) ~size:4
          | Insn.Rsh -> Tnum.rshift t sh
          | _ -> Tnum.arshift t sh ~bits:32
        in
        Regstate.truncate32 (Regstate.scalar_of_tnum shifted)
      | None ->
        Regstate.scalar_range ~umin:0L ~umax:u32_max
    end
  | Insn.Add | Insn.Sub | Insn.And | Insn.Or | Insn.Xor | Insn.Mul
  | Insn.Div | Insn.Mod | Insn.Neg | Insn.Mov ->
    Regstate.truncate32 (scalar_op64 op d32 s32)

(* -- Pointer arithmetic ------------------------------------------------ *)

(* Span of the object a pointer addresses: (start, end) relative to the
   pointer's original position.  Used for both static reasoning and the
   alu_limit runtime assertion. *)
let object_span (env : Venv.t) (pk : Regstate.ptr_kind) :
  (int * int) option =
  match pk with
  | P_stack _ -> Some (-Prog.stack_size, 0)
  | P_map_value mi -> Some (0, mi.mi_value_size)
  | P_mem size -> Some (0, size)
  | P_btf d ->
    Some (0, Btf.validated_size
            ~bug2:(Venv.has_bug env Kconfig.Bug2_btf_size_check) d)
  | P_packet -> None (* bounded dynamically by data_end comparisons *)
  | P_ctx | P_map_ptr _ | P_packet_end -> None

let ptr_alu_allowed (pk : Regstate.ptr_kind) : bool =
  match pk with
  | P_stack _ | P_map_value _ | P_mem _ | P_packet | P_btf _ -> true
  | P_ctx | P_map_ptr _ | P_packet_end -> false

let max_ptr_off = 1 lsl 29

(* dst(ptr) op= src(scalar).  Returns the new pointer state and records
   the alu_limit for the sanitizer when the offset is not constant. *)
let adjust_ptr (env : Venv.t) ~(pc : int) (op : Insn.alu_op)
    (ptr : t) (scalar : t) : t =
  let p =
    match ptr.kind with
    | Ptr p -> p
    | Scalar | Not_init -> assert false
  in
  Venv.cov env "alu:ptr"
    ~v:(match p.pk with
        | P_stack _ -> 0 | P_map_value _ -> 1 | P_ctx -> 2
        | P_map_ptr _ -> 3 | P_btf _ -> 4 | P_packet -> 5
        | P_packet_end -> 6 | P_mem _ -> 7);
  if p.maybe_null
     && not (Venv.has_bug env Kconfig.Cve_2022_23222) then
    Venv.reject env ~pc Venv.EACCES
      "R? pointer arithmetic on %s_or_null prohibited, null-check it first"
      (Regstate.ptr_kind_name p.pk);
  if not (ptr_alu_allowed p.pk) then
    Venv.reject env ~pc Venv.EACCES "R? pointer arithmetic on %s prohibited"
      (Regstate.ptr_kind_name p.pk);
  if op <> Insn.Add && op <> Insn.Sub then
    Venv.reject env ~pc Venv.EACCES
      "R? pointer arithmetic with %s operator prohibited"
      (Insn.alu_op_to_string op);
  (* kernel: "math between <ptr> and register with unbounded min value
     is not allowed" *)
  if not (Regstate.is_const scalar) then begin
    Venv.cov env "alu:ptr:varoff";
    if scalar.smin < Int64.neg (Int64.of_int max_ptr_off)
       || scalar.smax > Int64.of_int max_ptr_off then
      Venv.reject env ~pc Venv.EACCES
        "math between %s pointer and register with unbounded bounds"
        (Regstate.ptr_kind_name p.pk);
    (* record the runtime assertion limit (kernel retrieve_ptr_limit);
       only for provably non-negative offsets, where the unsigned
       runtime comparison cannot misfire *)
    (match object_span env p.pk with
     | Some (lo, hi) when scalar.smin >= 0L ->
       let is_sub = op = Insn.Sub in
       let limit =
         if is_sub then Int64.of_int (ptr.off - lo)
         else Int64.of_int (hi - ptr.off)
       in
       env.Venv.aux.(pc).Venv.alu_limit <- Some (limit, is_sub)
     | Some _ | None -> ())
  end;
  match Regstate.const_value scalar with
  | Some delta ->
    let delta = Int64.to_int delta in
    let off = if op = Insn.Add then ptr.off + delta else ptr.off - delta in
    if abs off > max_ptr_off then
      Venv.reject env ~pc Venv.EACCES "pointer offset %d out of range" off
    else { ptr with off }
  | None ->
    let combine = if op = Insn.Add then scalar_add else scalar_sub in
    let moved =
      combine
        { ptr with kind = Scalar }
        scalar
    in
    (* moving the pointer resets the proven packet range *)
    { moved with kind = ptr.kind; range = 0 }

(* -- Top-level ALU handling -------------------------------------------- *)

let check (env : Venv.t) ~(pc : int) ~(op64 : bool) (op : Insn.alu_op)
    (dst : Insn.reg) (src : Insn.src) : unit =
  Venv.check_reg_write env ~pc dst;
  let src_state =
    match src with
    | Insn.Imm i -> Regstate.const_scalar (Int64.of_int32 i)
    | Insn.Reg r -> Venv.check_reg_read env ~pc r
  in
  Venv.cov env "alu:op"
    ~v:((if op64 then 16 else 0)
        lor Char.code (String.get (Insn.alu_op_to_string op) 0) mod 16);
  match op with
  | Insn.Mov ->
    (* write checked above; mov reads only src *)
    let v =
      if op64 then src_state
      else
        match src_state.kind with
        | Scalar -> Regstate.truncate32 src_state
        | Ptr _ | Not_init ->
          (* 32-bit mov of a pointer leaks its low half as a scalar *)
          Regstate.truncate32 { Regstate.unknown_scalar with kind = Scalar }
    in
    Venv.set_reg env dst v
  | Insn.Neg ->
    let d = Venv.check_reg_read env ~pc dst in
    if Regstate.is_pointer d then
      Venv.reject env ~pc Venv.EACCES "R%d pointer negation prohibited"
        (Insn.reg_to_int dst)
    else
      Venv.set_reg env dst
        (if op64 then scalar_op64 Insn.Neg d d else scalar_op32 Insn.Neg d d)
  | Insn.Add | Insn.Sub | Insn.Mul | Insn.Div | Insn.Or | Insn.And
  | Insn.Lsh | Insn.Rsh | Insn.Mod | Insn.Xor | Insn.Arsh -> begin
      let d = Venv.check_reg_read env ~pc dst in
      match d.kind, src_state.kind with
      | Ptr _, Scalar ->
        if not op64 then
          Venv.reject env ~pc Venv.EACCES
            "R%d 32-bit pointer arithmetic prohibited"
            (Insn.reg_to_int dst);
        Venv.set_reg env dst (adjust_ptr env ~pc op d src_state)
      | Scalar, Ptr _ ->
        if op <> Insn.Add then
          Venv.reject env ~pc Venv.EACCES
            "R%d pointer operand for %s prohibited" (Insn.reg_to_int dst)
            (Insn.alu_op_to_string op)
        else if not op64 then
          Venv.reject env ~pc Venv.EACCES
            "R%d 32-bit pointer arithmetic prohibited"
            (Insn.reg_to_int dst)
        else begin
          Venv.set_reg env dst (adjust_ptr env ~pc op src_state d);
          (* the scalar operand is dst here, not src: the sanitizer's
             alu_limit guard reads the src register, so skip it *)
          env.Venv.aux.(pc).Venv.alu_limit <- None
        end
      | Ptr pa, Ptr pb ->
        (* only pkt_ptr - pkt_ptr yields a scalar; everything else is
           rejected (leaks pointers otherwise) *)
        if op = Insn.Sub && pa.pk = P_packet && pb.pk = P_packet then begin
          Venv.cov env "alu:pkt_diff";
          Venv.set_reg env dst Regstate.unknown_scalar
        end
        else
          (* the message-based classifier reads two pointer operands as
             a type confusion; this is arithmetic, so tag it *)
          Venv.reject ~reason:Reject_reason.Bad_ptr_arith env ~pc
            Venv.EACCES "R%d pointer %s pointer prohibited"
            (Insn.reg_to_int dst) (Insn.alu_op_to_string op)
      | Scalar, Scalar ->
        Venv.set_reg env dst
          (if op64 then scalar_op64 op d src_state
           else scalar_op32 op d src_state)
      | Not_init, _ | _, Not_init -> assert false
    end

(* Endianness conversion: constants stay constant, everything else
   becomes an unknown scalar bounded by the operand width. *)
let check_endian (env : Venv.t) ~(pc : int) ~(swap : bool) ~(bits : int)
    (dst : Insn.reg) : unit =
  Venv.check_reg_write env ~pc dst;
  let d = Venv.check_reg_read env ~pc dst in
  if Regstate.is_pointer d then
    Venv.reject env ~pc Venv.EACCES "R%d byte swap of pointer prohibited"
      (Insn.reg_to_int dst);
  Venv.cov env "alu:endian" ~v:(bits / 16);
  let result =
    match Regstate.const_value d with
    | Some v when swap ->
      Regstate.const_scalar
        (match bits with
         | 16 -> Word.bswap16 v
         | 32 -> Word.bswap32 v
         | _ -> Word.bswap64 v)
    | Some v -> Regstate.const_scalar (Word.zext bits v)
    | None ->
      if bits >= 64 then Regstate.unknown_scalar
      else
        Regstate.scalar_range ~umin:0L
          ~umax:(Int64.sub (Int64.shift_left 1L bits) 1L)
  in
  Venv.set_reg env dst result
