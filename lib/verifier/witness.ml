open Vimport

(* The witness domain: the slice of the verifier's abstract register
   state that a concrete interpreter value can be checked against.

   During analysis the verifier records, per instruction, one [dom] per
   register (built by [of_state], widened across paths by [join]).  At
   runtime [contains] asks whether the concrete register value is a
   member.  A "no" means the verifier claimed bounds the execution
   escaped — a correctness bug by the same argument as the paper's
   indicators, caught without waiting for the bad value to reach a
   memory access.

   Deliberate abstractions to keep the check sound:
   - nullable pointers and BTF pointers collapse to [W_top]: both are
     legitimately NULL (or a small offset off NULL) at runtime even
     under a correct verifier (paper Listing 2);
   - non-null pointers only claim "not in the null page" — the
     simulated address-space layout, not the abstract offset, decides
     where objects live;
   - a scalar with no knowledge at all collapses to [W_top] so the
     common case costs one tag test. *)

type dom =
  | W_top
  | W_scalar of {
      umin : int64;
      umax : int64;
      smin : int64;
      smax : int64;
      var_off : Tnum.t;
    }
  | W_nonnull

let is_unknown_scalar (r : Regstate.t) : bool =
  r.Regstate.umin = 0L && r.Regstate.umax = -1L
  && r.Regstate.smin = Int64.min_int && r.Regstate.smax = Int64.max_int
  && Tnum.is_unknown r.Regstate.var_off

let of_reg (r : Regstate.t) : dom =
  match r.Regstate.kind with
  | Regstate.Not_init -> W_top
  | Regstate.Scalar ->
    if is_unknown_scalar r then W_top
    else
      W_scalar
        { umin = r.Regstate.umin; umax = r.Regstate.umax;
          smin = r.Regstate.smin; smax = r.Regstate.smax;
          var_off = r.Regstate.var_off }
  | Regstate.Ptr p ->
    if p.Regstate.maybe_null then W_top
    else (
      match p.Regstate.pk with
      | Regstate.P_btf _ -> W_top (* NULL at runtime under a correct verifier *)
      | _ -> W_nonnull)

(* One dom per register of the innermost frame: what Exec's register
   file holds at this pc. *)
let of_state (st : Vstate.t) : dom array =
  Array.map of_reg (Vstate.cur_frame st).Vstate.regs

let join (a : dom) (b : dom) : dom =
  match a, b with
  | W_top, _ | _, W_top -> W_top
  | W_nonnull, W_nonnull -> W_nonnull
  | W_scalar x, W_scalar y ->
    W_scalar
      { umin = Word.umin x.umin y.umin; umax = Word.umax x.umax y.umax;
        smin = Word.smin x.smin y.smin; smax = Word.smax x.smax y.smax;
        var_off = Tnum.union x.var_off y.var_off }
  | W_scalar _, W_nonnull | W_nonnull, W_scalar _ -> W_top

let join_states (a : dom array) (b : dom array) : dom array =
  Array.init (Array.length a) (fun i -> join a.(i) b.(i))

let contains (d : dom) (x : int64) : bool =
  match d with
  | W_top -> true
  | W_scalar s ->
    s.smin <= x && x <= s.smax
    && Word.ule s.umin x && Word.ule x s.umax
    && Tnum.contains s.var_off x
  | W_nonnull ->
    (* "not NULL" concretely: outside the unmapped null page *)
    Word.uge x Bvf_kernel.Kmem.null_page_limit

let wclass (d : dom) : string =
  match d with
  | W_top -> "top"
  | W_scalar _ -> "scalar"
  | W_nonnull -> "nonnull"

let describe (d : dom) : string =
  match d with
  | W_top -> "unconstrained"
  | W_scalar s ->
    Printf.sprintf "scalar(umin=%Lu,umax=%Lu,smin=%Ld,smax=%Ld%s)"
      s.umin s.umax s.smin s.smax
      (if Tnum.is_unknown s.var_off then ""
       else ",var_off=" ^ Tnum.to_string s.var_off)
  | W_nonnull -> "non-null pointer"
