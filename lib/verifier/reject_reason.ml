(* Structured rejection taxonomy.

   One bucket per way a user would *fix* a rejected program, not per C
   call site: "invalid stack access" and "invalid access to map value"
   are both Oob_access (tighten the offset), while "R2 !read_ok" is
   Uninit_access (initialize the register) even though both arrive as
   EACCES.

   [classify] recovers the reason from the canonical rejection message.
   The message formats are part of this repository's contract (tests
   grep for fragments of them), so substring classification is exact,
   not heuristic — but any new reject site whose message matches no
   pattern surfaces as [Unknown], which test_telemetry and the CI
   telemetry gate both flag. *)

type t =
  | Uninit_access
  | Oob_access
  | Bad_ctx_access
  | Null_deref
  | Ptr_leak
  | Bad_ptr_arith
  | Type_mismatch
  | Bad_helper_arg
  | Helper_unavailable
  | Lock_violation
  | Ref_leak
  | Bad_return_value
  | Unbounded_loop
  | Loop_unbounded
  | Insn_limit
  | Budget_exhausted
  | Bad_cfg
  | Bad_insn
  | Bad_map_op
  | Priv
  | Bad_attach
  | Prog_size
  | Env_failure
  | Unknown

let all =
  [ Uninit_access; Oob_access; Bad_ctx_access; Null_deref; Ptr_leak;
    Bad_ptr_arith; Type_mismatch; Bad_helper_arg; Helper_unavailable;
    Lock_violation; Ref_leak; Bad_return_value; Unbounded_loop;
    Loop_unbounded;
    Insn_limit; Budget_exhausted; Bad_cfg; Bad_insn; Bad_map_op; Priv;
    Bad_attach;
    Prog_size; Env_failure; Unknown ]

let to_string = function
  | Uninit_access -> "uninit_access"
  | Oob_access -> "oob_access"
  | Bad_ctx_access -> "bad_ctx_access"
  | Null_deref -> "null_deref"
  | Ptr_leak -> "ptr_leak"
  | Bad_ptr_arith -> "bad_ptr_arith"
  | Type_mismatch -> "type_mismatch"
  | Bad_helper_arg -> "bad_helper_arg"
  | Helper_unavailable -> "helper_unavailable"
  | Lock_violation -> "lock_violation"
  | Ref_leak -> "ref_leak"
  | Bad_return_value -> "bad_return_value"
  | Unbounded_loop -> "unbounded_loop"
  | Loop_unbounded -> "loop_unbounded"
  | Insn_limit -> "insn_limit"
  | Budget_exhausted -> "budget_exhausted"
  | Bad_cfg -> "bad_cfg"
  | Bad_insn -> "bad_insn"
  | Bad_map_op -> "bad_map_op"
  | Priv -> "priv"
  | Bad_attach -> "bad_attach"
  | Prog_size -> "prog_size"
  | Env_failure -> "env_failure"
  | Unknown -> "unknown"

let of_string (s : string) : t option =
  List.find_opt (fun r -> to_string r = s) all

let describe = function
  | Uninit_access -> "read of a never-written register or stack slot"
  | Oob_access -> "memory access outside the object's verified bounds"
  | Bad_ctx_access -> "invalid context field offset, size or write"
  | Null_deref -> "access or arithmetic on a pointer that may be NULL"
  | Ptr_leak -> "kernel pointer would be exposed to user space"
  | Bad_ptr_arith -> "prohibited pointer arithmetic"
  | Type_mismatch -> "register type incompatible with the operation"
  | Bad_helper_arg -> "helper argument fails its declared prototype"
  | Helper_unavailable -> "helper/kfunc unknown or gated for this load"
  | Lock_violation -> "bpf_spin_lock discipline broken"
  | Ref_leak -> "acquired reference not released on every path"
  | Bad_return_value -> "R0 outside the program type's return range"
  | Unbounded_loop -> "loop makes no provable progress"
  | Loop_unbounded ->
    "loop state fails to converge under bounded widening"
  | Insn_limit -> "verification complexity budget exhausted"
  | Budget_exhausted -> "analysis state or branch budget exhausted"
  | Bad_cfg -> "control flow leaves the program or is unreachable"
  | Bad_insn -> "malformed instruction or reserved register/helper"
  | Bad_map_op -> "map fd unresolvable or operation unsupported"
  | Priv -> "operation requires CAP_BPF"
  | Bad_attach -> "attach point unknown or incompatible"
  | Prog_size -> "program empty or above the instruction cap"
  | Env_failure -> "injected environment failure, not a verdict"
  | Unknown -> "unclassified rejection (taxonomy gap)"

(* Substring search, tiny and allocation-free. *)
let has (msg : string) (frag : string) : bool =
  let n = String.length msg and m = String.length frag in
  if m = 0 || m > n then m = 0
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= n - m do
      if String.sub msg !i m = frag then found := true else incr i
    done;
    !found
  end

(* Ordered pattern table: first match wins, so the more specific
   fragments ("uninitialized stack passed to helper") come before the
   generic ones ("stack").  Each line names the reject site family it
   covers. *)
let patterns : (string * t) list =
  [
    (* environment, never a verdict *)
    ("kvcalloc of insn_aux_data failed", Env_failure);
    ("bpf_prog_realloc", Env_failure);
    (* sizes and structure *)
    ("empty program", Prog_size);
    ("program too large", Prog_size);
    ("uses reserved register or helper", Bad_insn);
    ("frame pointer is read only", Bad_insn);
    ("invalid atomic operand size", Bad_insn);
    (* CFG (check_cfg + walk) *)
    ("out of range (to ", Bad_cfg);
    ("fall-through off program end", Bad_cfg);
    ("unreachable insn", Bad_cfg);
    ("invalid program counter", Bad_cfg);
    (* complexity *)
    ("BPF program is too large. Processed", Insn_limit);
    ("call stack of", Insn_limit);
    ("state budget exhausted", Budget_exhausted);
    ("branch budget exhausted", Budget_exhausted);
    ("fails to converge", Loop_unbounded);
    ("infinite loop detected", Unbounded_loop);
    (* privilege: "requires CAP_BPF", "kfunc calls require CAP_BPF" *)
    ("CAP_BPF", Priv);
    (* attach validation (incl. the Bug#4/5/6 fixed-kernel checks) *)
    ("unknown attach point", Bad_attach);
    ("cannot attach to", Bad_attach);
    ("does not exist in", Bad_attach);
    ("not allowed on", Bad_attach);       (* lock-acquiring helper *)
    ("not allowed in irq/nmi attach context", Bad_attach);
    (* helper availability *)
    ("invalid func id", Helper_unavailable);
    ("invalid kfunc id", Helper_unavailable);
    ("not available in", Helper_unavailable);
    ("not allowed for prog type", Helper_unavailable);
    ("kfunc calls not supported", Helper_unavailable);
    (* lock discipline *)
    ("spin_lock is missing unlock", Lock_violation);
    ("spin_unlock without matching spin_lock", Lock_violation);
    ("not allowed inside bpf_spin_lock section", Lock_violation);
    ("bpf_spin_lock area prohibited", Lock_violation);
    (* references *)
    ("Unreleased reference", Ref_leak);
    ("expects a referenced object", Bad_helper_arg);
    ("must be a reserved ringbuf record", Bad_helper_arg);
    (* return value *)
    ("At program exit R0 has range", Bad_return_value);
    (* uninitialized data *)
    ("!read_ok", Uninit_access);
    ("invalid read from stack", Uninit_access);
    ("uninitialized stack passed to helper", Bad_helper_arg);
    (* helper argument prototype *)
    ("expected const map pointer", Bad_helper_arg);
    ("expected ctx pointer", Bad_helper_arg);
    ("expected trusted task pointer", Bad_helper_arg);
    ("expected pointer to bpf_spin_lock", Bad_helper_arg);
    ("expected pointer, got scalar", Bad_helper_arg);
    ("expected size scalar", Bad_helper_arg);
    ("expected verifier-known constant", Bad_helper_arg);
    ("unbounded memory size", Bad_helper_arg);
    ("possible zero size for helper memory", Bad_helper_arg);
    ("without preceding map argument", Bad_helper_arg);
    ("invalid stack region", Bad_helper_arg);
    ("invalid ringbuf mem region", Bad_helper_arg);
    ("invalid packet region for helper", Bad_helper_arg);
    ("not allowed as mem argument", Bad_helper_arg);
    ("variable stack pointer to helper", Bad_helper_arg);
    (* nullness — before the pointer-ALU family, so arithmetic on an
       _or_null pointer reads as the null-check bug it is *)
    ("_or_null", Null_deref);
    ("nullable pointer passed to helper", Null_deref);
    (* pointer leaks (unprivileged) *)
    ("leaks addr into map", Ptr_leak);
    ("leaks pointer at program exit", Ptr_leak);
    ("pointer comparison prohibited", Ptr_leak);
    (* pointer arithmetic *)
    ("pointer arithmetic", Bad_ptr_arith);
    ("pointer negation prohibited", Bad_ptr_arith);
    ("byte swap of pointer prohibited", Bad_ptr_arith);
    ("pointer operand for", Bad_ptr_arith);
    ("pointer offset", Bad_ptr_arith);    (* "... out of range" *)
    ("unbounded bounds", Bad_ptr_arith);  (* "math between ... pointer" *)
    ("variable stack access prohibited", Bad_ptr_arith);
    ("variable btf access prohibited", Bad_ptr_arith);
    ("variable ctx access prohibited", Bad_ctx_access);
    (* map plumbing — before the generic "pointer" catch-all *)
    ("is not a map", Bad_map_op);
    ("is not pointing to a map", Bad_map_op);
    ("direct value access only on array maps", Bad_map_op);
    ("does not support direct value access", Bad_map_op);
    ("direct access to struct bpf_map prohibited", Bad_map_op);
    ("direct value offset", Oob_access);  (* "... outside value" *)
    (* type confusion.  The bare "pointer" catch-all mops up the spill
       and mixed-pointer messages; sites meaning something more precise
       (check_alu's pointer+pointer) pass an explicit [?reason]. *)
    ("invalid mem access 'scalar'", Type_mismatch);
    ("access to pkt_end prohibited", Type_mismatch);
    ("write into packet prohibited", Type_mismatch);
    ("write to BTF pointer", Type_mismatch);
    ("same insn cannot be used with different", Type_mismatch);
    ("pointer", Type_mismatch);
    ("atomic operand", Type_mismatch);    (* "... must be scalar" *)
    ("unknown BTF object", Bad_insn);
    (* context layout *)
    ("invalid bpf_context access", Bad_ctx_access);
    ("write to read-only ctx field", Bad_ctx_access);
    (* bounds *)
    ("invalid stack access", Oob_access);
    ("stack offset out of range", Oob_access);
    ("invalid access to map value", Oob_access);
    ("map_value access with min offset", Oob_access);
    ("invalid access to packet", Oob_access);
    ("negative packet access", Oob_access);
    ("invalid access to allocated mem", Oob_access);
    ("invalid access to", Oob_access);    (* BTF objects, by name *)
  ]

let classify ~(msg : string) : t =
  if msg = "size" then Prog_size (* Verifier.verify's shorthand *)
  else
    match List.find_opt (fun (frag, _) -> has msg frag) patterns with
    | Some (_, r) -> r
    | None -> Unknown
