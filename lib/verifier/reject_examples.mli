(** One minimal rejected program per {!Reject_reason.t} constructor:
    the executable companion to [docs/REJECTIONS.md].

    Each example is self-contained — it builds its own kernel state and
    load request — so the docs test can verify that every documented
    reason is actually produced by the verifier, and [bvf explain]-style
    tooling has a canonical witness per bucket.

    [Env_failure] (fault injection, not a verdict) and [Unknown] (the
    taxonomy gap marker) have no example program by design. *)

type example = {
  ex_reason : Reject_reason.t;   (** expected classification *)
  ex_title : string;             (** one-line description *)
  ex_build : unit -> Bvf_kernel.Kstate.t * Verifier.request;
      (** fresh kernel state + the request that must be rejected *)
}

val all : example list
(** One example per reason, in {!Reject_reason.all} order, minus
    [Env_failure] and [Unknown]. *)

val verify_example : example -> (Reject_reason.t * string) option
(** Run the example through {!Verifier.load}.  [Some (reason, msg)]
    when rejected (the observed classification and message), [None]
    when the verifier accepted it — which a test treats as failure. *)
