open Vimport

(* Verifier state: register file and stack for each call frame, plus the
   acquired-reference and spin-lock bookkeeping, mirroring the kernel's
   bpf_verifier_state / bpf_func_state.

   Representation is chosen for the analyzer's hot path: frames live in
   a fixed-capacity array indexed by frame number (the kernel's
   frame[MAX_CALL_FRAMES]), the per-byte stack classification is a
   [Bytes.t] so copies are a memcpy and the common pruning comparison a
   memcmp, and spilled registers sit in a dense 64-slot option array.
   States and frames are recycled through an explicit pool (see
   {!pool}) instead of being garbage after every branch. *)

(* Stack byte classification, one char per byte.  The codes matter only
   relative to each other; see [byte_ok] for the subsumption lattice. *)
let b_invalid = '\000' (* STACK_INVALID: never written *)
let b_misc = '\001'    (* STACK_MISC: written, unknown bytes *)
let b_zero = '\002'    (* STACK_ZERO: known-zero bytes *)
let b_spill = '\003'   (* STACK_SPILL: part of a tracked register spill *)

type frame = {
  mutable frameno : int;
  regs : Regstate.t array;          (* R0..R10 *)
  stack : Bytes.t;                  (* 512 bytes; index i = fp-512+i *)
  spills : Regstate.t option array; (* 8-byte slot index -> reg *)
  mutable callsite : int;           (* pc to return to; -1 in frame 0 *)
}

(* Fixed capacity: the analyzer rejects at [Venv.max_call_depth] (4)
   frames, so 8 slots is comfortable headroom. *)
let max_frames = 8

type t = {
  mutable frames : frame array; (* slots 0..nframes-1 live; frameno = index *)
  mutable nframes : int;
  mutable refs : int list;      (* acquired reference ids *)
  mutable active_lock : int option; (* map id whose lock is held *)
}

let stack_bytes = Prog.stack_size
let spill_slots = stack_bytes / 8

let new_frame ~(frameno : int) ~(callsite : int) : frame =
  let regs = Array.make 11 Regstate.not_init in
  regs.(10) <- Regstate.fp frameno;
  { frameno; regs; stack = Bytes.make stack_bytes b_invalid;
    spills = Array.make spill_slots None; callsite }

let reset_frame (f : frame) ~(frameno : int) ~(callsite : int) : unit =
  f.frameno <- frameno;
  f.callsite <- callsite;
  Array.fill f.regs 0 11 Regstate.not_init;
  f.regs.(10) <- Regstate.fp frameno;
  Bytes.fill f.stack 0 stack_bytes b_invalid;
  Array.fill f.spills 0 spill_slots None

let blit_frame ~(src : frame) ~(dst : frame) : unit =
  dst.frameno <- src.frameno;
  dst.callsite <- src.callsite;
  Array.blit src.regs 0 dst.regs 0 11;
  Bytes.blit src.stack 0 dst.stack 0 stack_bytes;
  Array.blit src.spills 0 dst.spills 0 spill_slots

let copy_frame (f : frame) : frame =
  { frameno = f.frameno; regs = Array.copy f.regs;
    stack = Bytes.copy f.stack; spills = Array.copy f.spills;
    callsite = f.callsite }

(* Placeholder for dead frame-array slots.  Shared (never read, never
   written: only slots below [nframes] are touched). *)
let dummy_frame = new_frame ~frameno:0 ~callsite:(-1)

let empty_state () : t =
  { frames = Array.make max_frames dummy_frame; nframes = 0; refs = [];
    active_lock = None }

let initial ~(ctx : Regstate.t) : t =
  let f = new_frame ~frameno:0 ~callsite:(-1) in
  f.regs.(1) <- ctx;
  let t = empty_state () in
  t.frames.(0) <- f;
  t.nframes <- 1;
  t

let cur_frame (t : t) : frame =
  if t.nframes = 0 then invalid_arg "Vstate.cur_frame: no frames";
  t.frames.(t.nframes - 1)

let frame_count (t : t) : int = t.nframes

(* Frame by frame number ([frameno] always equals its index); the
   innermost frame when out of range, matching the historical
   list-search fallback. *)
let find_frame (t : t) (fno : int) : frame =
  if fno >= 0 && fno < t.nframes then t.frames.(fno) else cur_frame t

let iter_frames (t : t) (fn : frame -> unit) : unit =
  for i = 0 to t.nframes - 1 do
    fn t.frames.(i)
  done

let push_top_frame (t : t) (f : frame) : unit =
  if t.nframes >= max_frames then
    invalid_arg "Vstate.push_top_frame: frame capacity exceeded";
  t.frames.(t.nframes) <- f;
  t.nframes <- t.nframes + 1

let pop_top_frame (t : t) : frame =
  if t.nframes <= 1 then invalid_arg "Vstate.pop_top_frame: no callee";
  let f = t.frames.(t.nframes - 1) in
  t.nframes <- t.nframes - 1;
  f

(* -- State/frame pool -------------------------------------------------- *)

(* A free list of recycled states and frames, owned by one verification
   environment (so it is domain-local and dies with the load).  Popped
   callee frames, pruned paths and finished paths are released here and
   re-blitted instead of re-allocated: per-branch cost drops from
   "allocate 11 regs + 512 stack bytes + spill table per frame" to a
   few memcpys into warm memory. *)
type pool = {
  mutable free_frames : frame list;
  mutable free_states : t list;
  p_enabled : bool;
}

(* Global toggle read at pool creation: the qcheck identity property
   runs whole campaigns with pooling off and asserts equal digests. *)
let pool_enabled : bool ref = ref true

let create_pool () : pool =
  { free_frames = []; free_states = []; p_enabled = !pool_enabled }

(* Inert pool for callers without one (tests, tools): never mutated,
   so sharing the value is domain-safe. *)
let no_pool : pool = { free_frames = []; free_states = []; p_enabled = false }

let alloc_frame (pool : pool) ~(frameno : int) ~(callsite : int) : frame =
  match pool.free_frames with
  | f :: rest when pool.p_enabled ->
    pool.free_frames <- rest;
    reset_frame f ~frameno ~callsite;
    f
  | _ -> new_frame ~frameno ~callsite

let release_frame (pool : pool) (f : frame) : unit =
  if pool.p_enabled then pool.free_frames <- f :: pool.free_frames

(* Recycle a whole state.  Only safe when the caller uniquely owns it:
   the analyzer releases exactly the abandoned current path (prune hit,
   main exit) and popped callee frames — stored explored states and
   pending branch-stack states stay live. *)
let release (pool : pool) (t : t) : unit =
  if pool.p_enabled then begin
    for i = 0 to t.nframes - 1 do
      pool.free_frames <- t.frames.(i) :: pool.free_frames
    done;
    t.nframes <- 0;
    t.refs <- [];
    t.active_lock <- None;
    pool.free_states <- t :: pool.free_states
  end

let copy ?(pool = no_pool) (t : t) : t =
  let dst =
    if pool.p_enabled then
      match pool.free_states with
      | s :: rest ->
        pool.free_states <- rest;
        s
      | [] -> empty_state ()
    else empty_state ()
  in
  dst.nframes <- t.nframes;
  dst.refs <- t.refs;
  dst.active_lock <- t.active_lock;
  for i = 0 to t.nframes - 1 do
    let src = t.frames.(i) in
    if pool.p_enabled then begin
      let f =
        alloc_frame pool ~frameno:src.frameno ~callsite:src.callsite
      in
      blit_frame ~src ~dst:f;
      dst.frames.(i) <- f
    end
    else dst.frames.(i) <- copy_frame src
  done;
  dst

let reg (t : t) (r : Insn.reg) : Regstate.t =
  (cur_frame t).regs.(Insn.reg_to_int r)

let set_reg (t : t) (r : Insn.reg) (v : Regstate.t) : unit =
  let i = Insn.reg_to_int r in
  if i = 10 then invalid_arg "Vstate.set_reg: frame pointer is read-only";
  (cur_frame t).regs.(i) <- v

(* Apply [f] to every register (all frames) sharing nullable-pointer
   [id]: how a null check on one copy updates the others. *)
let map_regs_with_id (t : t) ~(id : int) (fn : Regstate.t -> Regstate.t) :
  unit =
  iter_frames t (fun fr ->
      Array.iteri
        (fun i r ->
           match r.Regstate.kind with
           | Regstate.Ptr p when p.id = id && id <> 0 -> fr.regs.(i) <- fn r
           | _ -> ())
        fr.regs;
      for slot = 0 to spill_slots - 1 do
        match fr.spills.(slot) with
        | Some r -> begin
            match r.Regstate.kind with
            | Regstate.Ptr p when p.id = id && id <> 0 ->
              fr.spills.(slot) <- Some (fn r)
            | _ -> ()
          end
        | None -> ()
      done)

(* Same, for packet pointers sharing [id] (range propagation). *)
let map_packet_regs (t : t) ~(id : int) (fn : Regstate.t -> Regstate.t) :
  unit =
  iter_frames t (fun fr ->
      Array.iteri
        (fun i r ->
           match r.Regstate.kind with
           | Regstate.Ptr { pk = Regstate.P_packet; id = id'; _ }
             when id' = id ->
             fr.regs.(i) <- fn r
           | _ -> ())
        fr.regs)

(* -- Stack access ------------------------------------------------------ *)

(* Translate a frame-pointer-relative offset (negative) to a stack array
   index. *)
let stack_index (off : int) : int option =
  let i = stack_bytes + off in
  if i >= 0 && i < stack_bytes then Some i else None

let slot_of_off (off : int) : int = (stack_bytes + off) / 8

(* Record a store of [size] bytes at fp+[off].  A full 8-byte aligned
   store of a register spills it; everything else downgrades the bytes
   to misc/zero and kills any overlapping spill. *)
let stack_write (f : frame) ~(off : int) ~(size : int)
    (stored : Regstate.t) : unit =
  let zero =
    match Regstate.const_value stored with Some 0L -> true | _ -> false
  in
  if size = 8 && (stack_bytes + off) mod 8 = 0 then begin
    match stack_index off with
    | Some base ->
      Bytes.fill f.stack base 8 b_spill;
      f.spills.(base / 8) <- Some stored
    | None -> ()
  end
  else begin
    match stack_index off with
    | Some base ->
      let c = if zero then b_zero else b_misc in
      for i = base to base + size - 1 do
        f.spills.(i / 8) <- None;
        Bytes.set f.stack i c
      done
    | None -> ()
  end

(* Read [size] bytes at fp+[off]: the resulting register state, or an
   error string when uninitialized bytes are read. *)
let stack_read (f : frame) ~(off : int) ~(size : int) :
  (Regstate.t, string) result =
  match stack_index off with
  | None -> Error "stack offset out of range"
  | Some base ->
    let aligned = (stack_bytes + off) mod 8 = 0 in
    match (if aligned then f.spills.(slot_of_off off) else None) with
    | Some spilled when size = 8 -> Ok spilled
    | Some spilled when Regstate.is_const spilled ->
      (* narrow read at the base of an intact constant spill: on the
         little-endian stack the low [size] bytes ARE the low bytes of
         the constant.  The full-width value is returned; the load path
         truncates it to the access width (Bug12 gates the stale
         pre-fix behavior that skipped that truncation). *)
      Ok spilled
    | _ ->
      let rec scan i all_zero =
        if i >= size then Ok (if all_zero then `Zero else `Misc)
        else
          let c = Bytes.get f.stack (base + i) in
          if c = b_invalid then Error "invalid read from stack"
          else scan (i + 1) (all_zero && c = b_zero)
      in
      (match scan 0 true with
       | Error e -> Error e
       | Ok `Zero -> Ok (Regstate.const_scalar 0L)
       | Ok `Misc -> Ok Regstate.unknown_scalar)

(* Are [size] bytes at fp+[off] fully initialized (helper Mem_rd args)? *)
let stack_initialized (f : frame) ~(off : int) ~(size : int) : bool =
  match stack_index off with
  | None -> false
  | Some base ->
    let rec go i =
      i >= size
      || (Bytes.get f.stack (base + i) <> b_invalid && go (i + 1))
    in
    go 0

(* Mark [size] bytes as written (helper Mem_wr args). *)
let stack_mark_written (f : frame) ~(off : int) ~(size : int) : unit =
  match stack_index off with
  | None -> ()
  | Some base ->
    for i = base to base + size - 1 do
      f.spills.(i / 8) <- None;
      Bytes.set f.stack i b_misc
    done

(* -- Pruning ----------------------------------------------------------- *)

let stack_within ~(old : frame) ~(cur : frame) ~(bug3 : bool) : bool =
  let byte_ok o c =
    if o = b_invalid then true
    else if o = b_misc then c <> b_invalid
    else o = c (* zero needs zero, spill needs spill *)
  in
  let bytes_ok =
    (* byte-equal stacks always pass byte_ok; memcmp is the common case *)
    Bytes.equal old.stack cur.stack
    || (let rec go i =
          i >= stack_bytes
          || (byte_ok (Bytes.unsafe_get old.stack i)
                (Bytes.unsafe_get cur.stack i)
              && go (i + 1))
        in
        go 0)
  in
  let rec spills_ok slot =
    slot >= spill_slots
    || ((match old.spills.(slot) with
         | None -> true
         | Some old_reg -> begin
             match cur.spills.(slot) with
             | Some cur_reg ->
               Regstate.reg_within ~old:old_reg ~cur:cur_reg ~bug3
             | None ->
               (* old spill may have degraded to misc in cur *)
               (match old_reg.Regstate.kind with
                | Regstate.Scalar -> not old_reg.Regstate.precise
                | _ -> false)
           end)
        && spills_ok (slot + 1))
  in
  bytes_ok && spills_ok 0

let frame_within ~(old : frame) ~(cur : frame) ~(bug3 : bool) : bool =
  old.callsite = cur.callsite
  && (let rec regs i =
        i > 10
        || (Regstate.reg_within ~old:old.regs.(i) ~cur:cur.regs.(i) ~bug3
            && regs (i + 1))
      in
      regs 0)
  && stack_within ~old ~cur ~bug3

let states_equal ~(old : t) ~(cur : t) ~(bug3 : bool) : bool =
  old.nframes = cur.nframes
  && old.active_lock = cur.active_lock
  && List.length old.refs = List.length cur.refs
  && (let rec go i =
        i >= old.nframes
        || (frame_within ~old:old.frames.(i) ~cur:cur.frames.(i) ~bug3
            && go (i + 1))
      in
      go 0)

(* -- Pruning signatures ------------------------------------------------ *)

(* A cheap necessary-condition filter in front of [states_equal]: most
   pruning probes miss, and a miss should cost an integer compare, not
   an 11-register / 512-byte walk.

   This is NOT an equality hash — pruning is subsumption, so the filter
   encodes only facts [states_equal] requires exactly: frame count,
   lock/ref bookkeeping, per-frame callsite, and per-register kind
   *compatibility*.  Each register contributes a 3-bit mask.  The
   stored (old) side records which probe kinds [reg_within] could
   accept: Not_init accepts anything (0b111), Scalar only Scalar
   (0b010), Ptr only Ptr (0b100).  The probe (cur) side contributes its
   own kind as a single bit.  A stored state can only subsume the probe
   if [stored land probe] is non-zero in every register's group, so a
   zero group anywhere proves [states_equal] false without looking at
   bounds.  False positives (filter passes, [states_equal] says no) are
   fine; false negatives are impossible by construction. *)

(* bit 0 of each register's 3-bit group, registers 0..10 *)
let sig_group_lsbs = 0o11111111111

let frame_sig_stored (f : frame) : int =
  let mask = ref 0 in
  for i = 0 to 10 do
    let bits =
      match f.regs.(i).Regstate.kind with
      | Regstate.Not_init -> 0b111
      | Regstate.Scalar -> 0b010
      | Regstate.Ptr _ -> 0b100
    in
    mask := !mask lor (bits lsl (3 * i))
  done;
  ((f.callsite + 1) lsl 33) lor !mask

let frame_sig_probe (f : frame) : int =
  let mask = ref 0 in
  for i = 0 to 10 do
    let bits =
      match f.regs.(i).Regstate.kind with
      | Regstate.Not_init -> 0b001
      | Regstate.Scalar -> 0b010
      | Regstate.Ptr _ -> 0b100
    in
    mask := !mask lor (bits lsl (3 * i))
  done;
  ((f.callsite + 1) lsl 33) lor !mask

(* Head signature: the cheap equalities of [states_equal].  Any
   deterministic packing is sound (a collision only means the frame
   walk runs and settles it). *)
let state_sig (t : t) : int =
  t.nframes
  lor (List.length t.refs lsl 4)
  lor (match t.active_lock with
      | None -> 0
      | Some id -> ((id land 0xFFFF) lor 0x10000) lsl 16)

let frame_sigs_stored (t : t) : int array =
  Array.init t.nframes (fun i -> frame_sig_stored t.frames.(i))

let frame_sigs_probe (t : t) : int array =
  Array.init t.nframes (fun i -> frame_sig_probe t.frames.(i))

(* Can a state with stored signatures possibly subsume one with probe
   signatures?  Caller guarantees equal lengths (equal head sigs). *)
let sigs_compatible ~(stored : int array) ~(probe : int array) : bool =
  let n = Array.length stored in
  let rec go i =
    i >= n
    || (let s = stored.(i) and p = probe.(i) in
        s lsr 33 = p lsr 33
        && (let m = s land p in
            (m lor (m lsr 1) lor (m lsr 2)) land sig_group_lsbs
            = sig_group_lsbs)
        && go (i + 1))
  in
  go 0

(* -- Widening (bounded-loop verification) ------------------------------ *)

(* Widen a stored loop-head state [old] against an incoming state
   [cur]: a fresh state subsuming both under [states_equal], or [None]
   when the pair diverges structurally (frame shape, bookkeeping, or a
   register pair no sound widening covers) and the analyzer must fall
   back to unrolling.

   Register pairs widen through [Regstate.widen].  Stack bytes join
   down the classification lattice: equal bytes stay, any side
   never-written makes the byte never-written (a read must still
   reject — the kernel's STACK_INVALID meet), and any other
   disagreement degrades to written-unknown.  A spill slot present on
   both sides widens as a register; a slot [old] tracked but [cur]
   lost degrades to untracked (its bytes are handled by the byte
   rule). *)
let widen_state ~(pool : pool) ~(th : Regstate.thresholds)
    ~(force : bool) ~(old : t) ~(cur : t) : t option =
  if
    old.nframes <> cur.nframes
    || old.active_lock <> cur.active_lock
    || List.length old.refs <> List.length cur.refs
  then None
  else begin
    let out = copy ~pool old in
    let ok = ref true in
    (try
       for i = 0 to old.nframes - 1 do
         let of_ = old.frames.(i)
         and cf = cur.frames.(i)
         and wf = out.frames.(i) in
         if of_.callsite <> cf.callsite then raise Exit;
         for r = 0 to 10 do
           match
             Regstate.widen ~th ~force ~old:of_.regs.(r) ~cur:cf.regs.(r)
           with
           | Some w -> wf.regs.(r) <- w
           | None -> raise Exit
         done;
         for b = 0 to stack_bytes - 1 do
           let ob = Bytes.get of_.stack b and cb = Bytes.get cf.stack b in
           if ob <> cb then
             Bytes.set wf.stack b
               (if ob = b_invalid || cb = b_invalid then b_invalid
                else b_misc)
         done;
         for slot = 0 to spill_slots - 1 do
           match of_.spills.(slot), cf.spills.(slot) with
           | None, _ -> ()
           | Some _, None -> wf.spills.(slot) <- None
           | Some o, Some c -> (
             match Regstate.widen ~th ~force ~old:o ~cur:c with
             | Some w -> wf.spills.(slot) <- Some w
             | None -> wf.spills.(slot) <- None)
         done
       done
     with Exit -> ok := false);
    if !ok then Some out
    else begin
      release pool out;
      None
    end
  end
