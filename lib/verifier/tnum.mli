(** Tristate numbers: the verifier's bit-level abstract domain, a port of
    the kernel's lib/tnum.c.

    A value [{value; mask}] represents every concrete 64-bit word that
    agrees with [value] on the bits cleared in [mask]; set mask bits are
    unknown.  Invariant: [value land mask = 0]. *)

type t = { value : int64; mask : int64 }

val const : int64 -> t
val unknown : t

val is_const : t -> bool
val is_unknown : t -> bool

val contains : t -> int64 -> bool
(** Does the abstract value contain the concrete word? *)

val subset : of_:t -> t -> bool
(** [subset ~of_:a b]: every concrete value of [b] is one of [a]. *)

val equal : t -> t -> bool

val umin : t -> int64
(** Smallest unsigned member. *)

val umax : t -> int64
(** Largest unsigned member. *)

val range : min:int64 -> max:int64 -> t
(** Tightest tnum containing the unsigned interval (kernel
    [tnum_range]). *)

val lshift : t -> int -> t
val rshift : t -> int -> t

val arshift : t -> int -> bits:int -> t
(** Arithmetic shift right interpreted at [bits] (32 or 64). *)

val add : t -> t -> t
val sub : t -> t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t

val mul : t -> t -> t
(** Kernel [tnum_mul]: certain bits of the multiplier contribute the
    shifted multiplicand, uncertain bits a fully unknown value of its
    magnitude. *)

val intersect : t -> t -> t
(** Both operands are known to hold. *)

val union : t -> t -> t
(** Join: either operand may hold. *)

val widen : t -> t -> t
(** [widen a b]: widening join for loop heads.  Contains [union a b];
    any bit newly unknown relative to [a] is smeared into every lower
    bit position, so a chain [widen (widen a b) c ...] stabilizes in at
    most O(log 64) steps instead of one per bit. *)

val cast : t -> size:int -> t
(** Truncate to the low [size] bytes, zero-extended. *)

val subreg : t -> t
val with_subreg : t -> t -> t
val is_aligned : t -> int64 -> bool
val to_string : t -> string
