(** Verifier performance counters (the kernel's [veristat] numbers).

    A {!t} lives in the verification environment and is bumped by the
    analysis loop.  All counters are deterministic — a pure function of
    (program, kernel config) — so campaigns fold them into digests.
    Wall-clock verification time deliberately lives outside this record:
    times are observations, never part of a deterministic identity. *)

type t = {
  mutable vs_insn_processed : int;
      (** instructions simulated across all explored paths *)
  mutable vs_total_states : int;
      (** abstract states stored for pruning *)
  mutable vs_peak_states : int;
      (** high-water mark of live stored states *)
  mutable vs_cur_states : int;  (** bookkeeping for [vs_peak_states] *)
  mutable vs_max_states_per_insn : int;
      (** most states stored at a single pc *)
  mutable vs_prune_hits : int;
      (** paths cut because an equal verified state existed *)
  mutable vs_prune_misses : int;
      (** pruning opportunities that found no matching state *)
  mutable vs_loops_detected : int;
      (** infinite-loop detections *)
  mutable vs_branch_depth : int;  (** bookkeeping for [vs_branch_hwm] *)
  mutable vs_branch_hwm : int;
      (** pending-branch worklist high-water mark *)
  mutable vs_prune_hash_skips : int;
      (** stored states dismissed by the cheap pruning signature without
          a full [states_equal] walk.  Not part of {!counters} — and so
          of no digest, JSON table or veristat baseline: it measures the
          comparison's cost model, not the analysis result, and the
          canonical counter schema is frozen by committed baselines. *)
  mutable vs_widen_rounds : int;
      (** widening rounds applied at loop heads.  Outside {!counters}
          for the same frozen-schema reason as [vs_prune_hash_skips];
          [vs_loops_detected] keeps its historical meaning
          (zero-progress infinite-loop rejections). *)
  mutable vs_loop_heads : int;
      (** back-edge targets in the program's CFG (also outside the
          frozen schema) *)
}

val zero : unit -> t

(** {1 Analysis-loop hooks} *)

val count_insn : t -> int
(** Bump [vs_insn_processed]; returns the new value (compared against
    the complexity limit by the caller). *)

val state_stored : t -> at_insn:int -> unit
(** A new state was stored for pruning; [at_insn] is the number of
    states now stored at that pc. *)

val state_done : t -> unit
(** A stored state's subtree is fully explored (no longer live). *)

val prune_hit : t -> unit
val prune_miss : t -> unit

val prune_hash_skip : t -> unit
(** A stored state failed the cheap pruning-signature filter (so
    [states_equal] never ran against it). *)

val loop_detected : t -> unit

val widen_round : t -> unit
(** One widening application at a loop head. *)

val loop_heads_seen : t -> int -> unit
(** Record the program's loop-head count (back-edge targets). *)

val branch_pushed : t -> unit
val branch_popped : t -> unit

(** {1 Reporting} *)

val counters : t -> (string * int) list
(** Canonical [(name, value)] listing, in the stable order every
    printer, JSON table and digest line uses. *)

val counter_names : string list

val pp : Format.formatter -> t -> unit

(** {1 Campaign aggregation}

    Totals, maxima and log2 histograms over every analyzed program.
    Merged across parallel shards exactly like coverage. *)

val hist_buckets : int

val bucket : int -> int
(** log2 bucket index: 0 holds value 0, bucket [i>=1] holds
    [2^(i-1), 2^i). *)

type agg = {
  mutable ag_programs : int;
  mutable ag_insn_processed : int;
  mutable ag_total_states : int;
  mutable ag_prune_hits : int;
  mutable ag_prune_misses : int;
  mutable ag_loops_detected : int;
  mutable ag_widen_rounds : int;
  mutable ag_loop_heads : int;
  mutable ag_peak_states_max : int;
  mutable ag_max_states_per_insn : int;
  mutable ag_branch_hwm_max : int;
  ag_hist_insn : int array;
  ag_hist_peak : int array;
}

val agg_zero : unit -> agg
val agg_add : agg -> t -> unit
val agg_absorb : agg -> agg -> unit

val agg_digest_lines : agg -> string list
(** Deterministic canonical lines for campaign digests: totals, maxima,
    then only the non-empty histogram buckets.  No wall times. *)

val pp_agg : Format.formatter -> agg -> unit
