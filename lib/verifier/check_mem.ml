open Vimport

(* Memory access validation (kernel check_mem_access): dispatches on the
   pointer type of the address register, enforces object bounds using
   the tracked constant and variable offsets, stack slot initialization,
   context field layouts and packet ranges.

   Injected bug: with [Bug2_btf_size_check], the validated window of a
   task_struct BTF object is 64 bytes too large, so out-of-bounds reads
   of kernel memory pass verification. *)

open Regstate

type access = Aread | Awrite

(* Annotate the instruction for the sanitize pass. *)
let set_aux (env : Venv.t) ~(pc : int) ~(pk : Regstate.ptr_kind)
    ~(addr_reg : Insn.reg) ~(var_const : bool) : unit =
  let aux = env.Venv.aux.(pc) in
  (* the kernel refuses one insn dereferencing different pointer types
     on different paths (ctx accesses are rewritten per type) *)
  (match aux.Venv.ptr_kind with
   | Some prev when prev <> pk ->
     Venv.reject env ~pc Venv.EINVAL
       "same insn cannot be used with different pointers (%s vs %s)"
       (Regstate.ptr_kind_name prev) (Regstate.ptr_kind_name pk)
   | Some _ | None -> ());
  aux.Venv.ptr_kind <- Some pk;
  (match pk with
   | P_stack _ when addr_reg = Insn.R10 && var_const ->
     (* paper 4.2: R10-relative constant accesses are validated
        statically, no instrumentation needed *)
     aux.Venv.skip_sanitize <- true
   | P_btf _ ->
     (* BTF loads are exception-tabled probe reads *)
     aux.Venv.exception_handled <- true
   | _ -> ())

let size_bytes = Insn.size_bytes

(* Effective constant offset; rejects variable offsets where the kernel
   requires constants (stack, ctx). *)
let require_const_off (env : Venv.t) ~(pc : int) (r : t) (what : string) :
  unit =
  if not (Tnum.is_const r.var_off) then
    Venv.reject env ~pc Venv.EACCES "variable %s access prohibited" what

let check_map_value (env : Venv.t) ~(pc : int) (mi : map_info) (r : t)
    ~(off : int) ~(size : int) : unit =
  let base = r.off + off in
  let lo = Int64.add (Int64.of_int base) r.smin in
  let hi = Int64.add (Int64.of_int base) r.smax in
  Venv.cov env "mem:map_value" ~v:size;
  let size_class =
    match size with 1 -> 0 | 2 -> 1 | 4 -> 2 | _ -> 3
  in
  (* v6.1 refined the per-offset bounds bookkeeping considerably, so
     newer verifiers have finer-grained checking branches here *)
  let granularity =
    if Version.at_least (Venv.version env) Version.V6_1 then 4 else 16
  in
  Venv.cov env "mem:map_value:offset"
    ~v:((base / granularity) lor (size_class lsl 4));
  if lo < 0L then
    Venv.reject env ~pc Venv.EACCES
      "map_value access with min offset %Ld below 0" lo;
  if Int64.add hi (Int64.of_int size) > Int64.of_int mi.mi_value_size then
    Venv.reject env ~pc Venv.EACCES
      "invalid access to map value, off=%Ld size=%d value_size=%d" hi size
      mi.mi_value_size;
  if mi.mi_has_spin_lock && lo < 4L then
    Venv.reject env ~pc Venv.EACCES
      "direct access to bpf_spin_lock area prohibited"

let check_ctx (env : Venv.t) ~(pc : int) (r : t) ~(off : int)
    ~(size : int) ~(access : access) : Regstate.t =
  require_const_off env ~pc r "ctx";
  let layout = Prog.ctx_layout env.Venv.prog_type in
  let eff = r.off + off in
  Venv.cov env "mem:ctx" ~v:(eff / 8);
  (* the legacy narrow-load conversion tables were removed in bpf-next
     in favour of the generic path: a chunk of checking logic that only
     the released kernels still carry *)
  if not (Version.at_least (Venv.version env) Version.Bpf_next) then
    Venv.cov env "mem:ctx:legacy_narrow" ~v:((eff / 4) + size);
  match Prog.field_at layout ~off:eff ~size with
  | None ->
    Venv.reject env ~pc Venv.EACCES
      "invalid bpf_context access off=%d size=%d" eff size
  | Some f ->
    if access = Awrite && not f.Prog.fwritable then
      Venv.reject env ~pc Venv.EACCES
        "write to read-only ctx field %s" f.Prog.fname;
    (match f.Prog.fkind with
     | Prog.Fk_scalar -> Regstate.unknown_scalar
     | Prog.Fk_pkt_data ->
       if Prog.has_packet_access env.Venv.prog_type then begin
         Venv.cov env "mem:ctx:pkt_data";
         Regstate.pointer P_packet ~id:(Venv.fresh_id env)
       end
       else Regstate.unknown_scalar
     | Prog.Fk_pkt_end ->
       if Prog.has_packet_access env.Venv.prog_type then
         Regstate.pointer P_packet_end
       else Regstate.unknown_scalar)

let check_packet (env : Venv.t) ~(pc : int) (r : t) ~(off : int)
    ~(size : int) ~(access : access) : unit =
  Venv.cov env "mem:packet" ~v:size;
  if access = Awrite && env.Venv.prog_type <> Prog.Xdp then
    Venv.reject env ~pc Venv.EACCES "write into packet prohibited for %s"
      (Prog.prog_type_to_string env.Venv.prog_type);
  let base = r.off + off in
  if base < 0 || r.smin < 0L then
    Venv.reject env ~pc Venv.EACCES "negative packet access off=%d" base;
  let max_access =
    Int64.add (Int64.add (Int64.of_int base) r.umax) (Int64.of_int size)
  in
  if max_access > Int64.of_int r.range then
    Venv.reject env ~pc Venv.EACCES
      "invalid access to packet, off=%d size=%d R range=%d" base size
      r.range

let check_btf (env : Venv.t) ~(pc : int) (d : Btf.desc) (r : t)
    ~(off : int) ~(size : int) ~(access : access) : unit =
  Venv.cov env "mem:btf" ~v:d.Btf.btf_id;
  if access = Awrite then
    Venv.reject env ~pc Venv.EACCES "write to BTF pointer %s prohibited"
      d.Btf.btf_name;
  require_const_off env ~pc r "btf";
  let eff = r.off + off in
  let limit =
    Btf.validated_size ~bug2:(Venv.has_bug env Kconfig.Bug2_btf_size_check)
      d
  in
  if eff < 0 || eff + size > limit then
    Venv.reject env ~pc Venv.EACCES
      "invalid access to %s, off=%d size=%d" d.Btf.btf_name eff size

let check_stack (env : Venv.t) ~(pc : int) (r : t) ~(off : int)
    ~(size : int) ~(access : access) ~(stored : Regstate.t option) :
  Regstate.t =
  require_const_off env ~pc r "stack";
  let eff = r.off + off in
  Venv.cov env "mem:stack" ~v:(if access = Awrite then 1 else 0);
  if eff >= 0 || eff < -Prog.stack_size || eff + size > 0 then
    Venv.reject env ~pc Venv.EACCES
      "invalid stack access off=%d size=%d" eff size;
  let frame =
    let fno = match r.kind with
      | Ptr { pk = P_stack fno; _ } -> fno
      | _ -> 0
    in
    Vstate.find_frame env.Venv.st fno
  in
  match access with
  | Awrite ->
    let stored = Option.value stored ~default:Regstate.unknown_scalar in
    if Regstate.is_pointer stored && size <> 8 then
      Venv.reject env ~pc Venv.EACCES "partial spill of a pointer";
    Vstate.stack_write frame ~off:eff ~size stored;
    Regstate.unknown_scalar
  | Aread -> begin
      match Vstate.stack_read frame ~off:eff ~size with
      | Ok v -> v
      | Error msg ->
        Venv.reject env ~pc Venv.EACCES "%s at fp%+d" msg eff
    end

(* Main entry: validate a [size]-byte access through [addr_reg]+[off].
   For reads, returns the abstract value loaded; [stored] carries the
   value register state for register stores (spill tracking). *)
let check (env : Venv.t) ~(pc : int) ~(access : access)
    ~(addr_reg : Insn.reg) ~(off : int) ~(size : int)
    ?(stored : Regstate.t option) () : Regstate.t =
  let r = Venv.check_reg_read env ~pc addr_reg in
  match r.kind with
  | Not_init -> assert false
  | Scalar ->
    Venv.reject env ~pc Venv.EACCES "R%d invalid mem access 'scalar'"
      (Insn.reg_to_int addr_reg)
  | Ptr p ->
    if p.maybe_null then
      Venv.reject env ~pc Venv.EACCES
        "R%d invalid mem access '%s_or_null'" (Insn.reg_to_int addr_reg)
        (Regstate.ptr_kind_name p.pk);
    set_aux env ~pc ~pk:p.pk ~addr_reg
      ~var_const:(Tnum.is_const r.var_off);
    (* unprivileged programs must not leak kernel pointers into
       memory readable by user space (maps, ringbuf) *)
    (match stored with
     | Some v
       when Regstate.is_pointer v && Venv.unprivileged env
         && (match p.pk with P_stack _ -> false | _ -> true) ->
       Venv.reject env ~pc Venv.EACCES
         "R%d leaks addr into map (unprivileged)"
         (Insn.reg_to_int addr_reg)
     | Some _ | None -> ());
    (match p.pk with
     | P_stack _ -> check_stack env ~pc r ~off ~size ~access ~stored
     | P_map_value mi ->
       check_map_value env ~pc mi r ~off ~size;
       Regstate.unknown_scalar
     | P_ctx -> check_ctx env ~pc r ~off ~size ~access
     | P_btf d ->
       check_btf env ~pc d r ~off ~size ~access;
       Regstate.unknown_scalar
     | P_packet ->
       check_packet env ~pc r ~off ~size ~access;
       Regstate.unknown_scalar
     | P_mem msize ->
       Venv.cov env "mem:ringbuf";
       let eff = r.off + off in
       let hi = Int64.add (Int64.add (Int64.of_int eff) r.umax)
           (Int64.of_int size) in
       if eff < 0 || r.smin < 0L || hi > Int64.of_int msize then
         Venv.reject env ~pc Venv.EACCES
           "invalid access to allocated mem, off=%d size=%d mem_size=%d"
           eff size msize;
       Regstate.unknown_scalar
     | P_map_ptr _ ->
       Venv.reject env ~pc Venv.EACCES
         "R%d direct access to struct bpf_map prohibited"
         (Insn.reg_to_int addr_reg)
     | P_packet_end ->
       Venv.reject env ~pc Venv.EACCES "access to pkt_end prohibited")

(* Atomic read-modify-write: both read and write permission on the
   target, scalar operand, W/DW width. *)
let check_atomic (env : Venv.t) ~(pc : int) (a : Insn.t) : unit =
  match a with
  | Insn.Atomic { sz; op; fetch; dst; src; off } ->
    if sz <> Insn.W && sz <> Insn.DW then
      Venv.reject env ~pc Venv.EINVAL "invalid atomic operand size";
    let size = size_bytes sz in
    let operand = Venv.check_reg_read env ~pc src in
    if not (Regstate.is_scalar operand) then
      Venv.reject env ~pc Venv.EACCES "atomic operand R%d must be scalar"
        (Insn.reg_to_int src);
    Venv.cov env "mem:atomic"
      ~v:(match op with
          | Insn.A_add -> 0 | Insn.A_or -> 1 | Insn.A_and -> 2
          | Insn.A_xor -> 3 | Insn.A_xchg -> 4 | Insn.A_cmpxchg -> 5);
    let _ = check env ~pc ~access:Aread ~addr_reg:dst ~off ~size () in
    let _ =
      check env ~pc ~access:Awrite ~addr_reg:dst ~off ~size
        ~stored:Regstate.unknown_scalar ()
    in
    if fetch && op <> Insn.A_cmpxchg then
      Venv.set_reg env src Regstate.unknown_scalar;
    if op = Insn.A_cmpxchg then begin
      let _ = Venv.check_reg_read env ~pc Insn.R0 in
      Venv.set_reg env Insn.R0 Regstate.unknown_scalar
    end
  | _ -> invalid_arg "check_atomic: not an atomic insn"
