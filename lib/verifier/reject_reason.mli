(** Structured rejection taxonomy.

    Every rejected program carries one of these reasons in its
    {!Venv.verr}, assigned at the reject site (or recovered from the
    canonical rejection message by {!classify}).  The taxonomy is the
    diagnostic signal the paper's section 6.3 acceptance comparison
    needs: errno alone ([EACCES]/[EINVAL]) cannot distinguish "used an
    uninitialized register" from "walked off the end of a map value",
    but tuning a generator requires exactly that distinction.

    The buckets mirror how kernel developers talk about verifier
    failures, not the C call sites: one reason groups every message a
    user would fix the same way. *)

type t =
  | Uninit_access      (** read of a never-written register or stack slot *)
  | Oob_access         (** access outside stack/map/packet/BTF/mem bounds *)
  | Bad_ctx_access     (** invalid [__sk_buff]/ctx offset, size or write *)
  | Null_deref         (** access or arithmetic on a [_or_null] pointer *)
  | Ptr_leak           (** pointer exposed to user space / at exit *)
  | Bad_ptr_arith      (** prohibited pointer ALU (operator, type, bounds) *)
  | Type_mismatch      (** scalar where a pointer was needed, or vice versa *)
  | Bad_helper_arg     (** helper/kfunc argument fails its prototype *)
  | Helper_unavailable (** unknown id, or gated by version/type/attach *)
  | Lock_violation     (** bpf_spin_lock discipline broken *)
  | Ref_leak           (** acquired reference not released at exit *)
  | Bad_return_value   (** R0 outside the program type's return range *)
  | Unbounded_loop     (** back-edge with no loop variable progress *)
  | Loop_unbounded     (** loop state fails to converge under bounded
                           widening (progress exists but the abstract
                           state keeps changing structurally) *)
  | Insn_limit         (** complexity budget exhausted (1M-insn analogue) *)
  | Budget_exhausted   (** analyzer state/branch budget hit: a structured
                           rejection where an unbounded walk would hang *)
  | Bad_cfg            (** jump out of range, unreachable or fall-off code *)
  | Bad_insn           (** malformed instruction operand or reserved use *)
  | Bad_map_op         (** unresolvable map fd / unsupported map operation *)
  | Priv               (** requires CAP_BPF the load does not have *)
  | Bad_attach         (** attach point unknown or incompatible *)
  | Prog_size          (** empty program or above the instruction cap *)
  | Env_failure        (** injected environment error (-ENOMEM), no verdict *)
  | Unknown            (** unclassified: a taxonomy gap, counted by CI *)

val all : t list
(** Every reason, in declaration order. *)

val to_string : t -> string
(** Stable snake_case identifier, e.g. ["oob_access"] — the JSONL and
    docs/REJECTIONS.md vocabulary. *)

val of_string : string -> t option

val describe : t -> string
(** One-line human description for tables and [bvf explain]. *)

val classify : msg:string -> t
(** Recover the reason from a canonical rejection message (the format
    strings of the check_* modules).  Total: unmatched messages map to
    {!Unknown}, which the telemetry CI gate treats as a taxonomy bug. *)
