open Vimport

(* The verification environment: program, per-instruction auxiliary data
   (the kernel's insn_aux_data), the current abstract state, the branch
   worklist, explored states for pruning, the verifier log and the
   coverage instrumentation. *)

type errno = EACCES | EINVAL | E2BIG | EPERM | EFAULT | ENOMEM | EBADF

let errno_to_string = function
  | EACCES -> "EACCES"
  | EINVAL -> "EINVAL"
  | E2BIG -> "E2BIG"
  | EPERM -> "EPERM"
  | EFAULT -> "EFAULT"
  | ENOMEM -> "ENOMEM"
  | EBADF -> "EBADF"

(* An injected environmental failure, not a verifier verdict: campaigns
   may retry these, and the oracle never counts them as findings. *)
let errno_is_transient = function
  | ENOMEM -> true
  | EACCES | EINVAL | E2BIG | EPERM | EFAULT | EBADF -> false

type verr = {
  errno : errno;
  vmsg : string;
  vpc : int;
  vreason : Reject_reason.t; (* structured rejection taxonomy *)
}

exception Reject of verr

(* Build a rejection record, recovering the taxonomy bucket from the
   canonical message unless the caller knows better. *)
let verr_make ?reason (errno : errno) ~(pc : int) (vmsg : string) : verr =
  let vreason =
    match reason with
    | Some r -> r
    | None -> Reject_reason.classify ~msg:vmsg
  in
  { errno; vmsg; vpc = pc; vreason }

type explored_entry = {
  mutable e_state : Vstate.t;
  mutable e_branches : int; (* unfinished paths below this state *)
  mutable e_sig : int; (* Vstate.state_sig of e_state: cheap pre-filter *)
  mutable e_fsig : int array; (* per-frame stored-side signatures *)
  mutable e_widens : int; (* widening rounds applied at this loop head *)
}

type aux = {
  mutable ptr_kind : Regstate.ptr_kind option;
      (* pointer kind of the address register of a mem-access insn *)
  mutable alu_limit : (int64 * bool) option; (* limit, is_subtraction *)
  mutable rewritten : bool;        (* insn emitted by a rewrite pass *)
  mutable skip_sanitize : bool;    (* known-safe constant stack access *)
  mutable exception_handled : bool;(* BTF-pointer load: faults handled *)
  mutable call_helper : Helper.t option; (* resolved helper at this call *)
  mutable seen : bool;             (* reached by the analysis *)
  mutable witness : Witness.dom array option;
      (* abstract R0..R10 joined over every non-pruned visit; None for
         insns the analysis never reached or that a rewrite emitted *)
}

let fresh_aux () =
  { ptr_kind = None; alu_limit = None; rewritten = false;
    skip_sanitize = false; exception_handled = false; call_helper = None;
    seen = false; witness = None }

type t = {
  kst : Kstate.t;
  config : Kconfig.t;
  prog_type : Prog.prog_type;
  attach : Tracepoint.t option;
  insns : Insn.t array;
  aux : aux array;
  pool : Vstate.pool; (* recycled states/frames; dies with this load *)
  mutable st : Vstate.t;
  (* worklist of (pc, from, state, ancestors): the pc of the jump the
     pending branch came from (certified loop heads use it to tell a
     back-edge arrival from a forward re-entry) and the stored states
     the path runs under *)
  mutable branch_stack : (int * int * Vstate.t * explored_entry list) list;
  (* stored states per pc.  An entry with [e_branches > 0] still has
     unfinished paths below it (the kernel's branches counter): pruning
     against it is unsound; matching one of the CURRENT path's own
     ancestors means the path looped without progress (the kernel's
     "infinite loop detected"). *)
  explored : (int, explored_entry list) Hashtbl.t;
  mutable ancestors : explored_entry list; (* of the current path *)
  mutable insn_processed : int;
  vst : Vstats.t; (* veristat-style performance counters *)
  mutable next_id : int;
  vlog : Vlog.t;
  cov : Coverage.t;
  (* invariant-lint violations (newest first, capped), Kconfig.lint *)
  mutable lint : Invariants.violation list;
  mutable lint_count : int;
}

(* Complexity budget: the scaled-down analogue of BPF_COMPLEXITY_LIMIT. *)
let insn_processed_limit = 100_000
let max_explored_per_insn = 24
let max_call_depth = 4

(* Widening rounds granted per loop-head entry before the last round
   forces diverging scalars to ⊤.  With branch-constant thresholds a
   counted loop converges in 2-3 rounds; the force round is the
   backstop that bounds every chain. *)
let max_widen_rounds = 4

(* Hard analysis budgets (total stored states, pending-branch depth).
   Pathological branch explosion hits these long before wall-clock
   matters and surfaces as a structured [Budget_exhausted] rejection
   instead of an analyzer hang the supervisor would have to kill.  Both
   sit far above anything legitimate: the kernel-selftest corpus peaks
   at 60 stored states and a branch high-water mark of 8. *)
let total_states_limit = 8192
let branch_depth_limit = 512

let create ~(kst : Kstate.t) ~(prog_type : Prog.prog_type)
    ~(attach : Tracepoint.t option) ~(cov : Coverage.t) ?(log_level = 0)
    (insns : Insn.t array) : t =
  {
    kst;
    config = kst.Kstate.config;
    prog_type;
    attach;
    insns;
    aux = Array.init (Array.length insns) (fun _ -> fresh_aux ());
    pool = Vstate.create_pool ();
    st = Vstate.initial ~ctx:Regstate.ctx_pointer;
    branch_stack = [];
    explored = Hashtbl.create 64;
    ancestors = [];
    insn_processed = 0;
    vst = Vstats.zero ();
    next_id = 1;
    vlog = Vlog.create log_level;
    cov;
    lint = [];
    lint_count = 0;
  }

(* Keep at most this many lint violations per load (a broken invariant
   at a hot pc would otherwise record once per visit). *)
let max_lint_records = 64

let record_lint (t : t) (vs : Invariants.violation list) : unit =
  List.iter
    (fun v ->
       t.lint_count <- t.lint_count + 1;
       if List.length t.lint < max_lint_records then t.lint <- v :: t.lint)
    vs

let has_bug (t : t) (b : Kconfig.bug) : bool = Kconfig.has t.config b

(* Unprivileged loads face the stricter checks the paper's section 2
   mentions: no pointer leaks, no pointer comparisons or arithmetic
   beyond the allowlist, no BTF/kfunc access. *)
let unprivileged (t : t) : bool = t.config.Kconfig.unprivileged

let version (t : t) : Version.t = t.config.Kconfig.version

let fresh_id (t : t) : int =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let logf (t : t) fmt = Vlog.logf t.vlog ~level:1 fmt

(* Hot-path instruction trace: [Insn.to_string] is only worth building
   when level-1 logging is actually on (OCaml evaluates arguments
   eagerly, so the guard must live before the call, not inside logf). *)
let log_insn (t : t) ~(pc : int) (i : Insn.t) : unit =
  if Vlog.enabled t.vlog 1 then logf t "%d: %s\n" pc (Insn.to_string i)

(* Level-2 state dump: the abstract register file of the current frame
   before the instruction, one kernel-style "Rn=..." line. *)
let log_state (t : t) : unit =
  if Vlog.enabled t.vlog 2 then begin
    let f = Vstate.cur_frame t.st in
    let parts = ref [] in
    for i = 10 downto 0 do
      let r = f.Vstate.regs.(i) in
      if Regstate.is_init r then
        parts :=
          Printf.sprintf "R%d%s=%s" i
            (if f.Vstate.frameno > 0 then
               Printf.sprintf "_w%d" f.Vstate.frameno
             else "")
            (Regstate.to_string r)
          :: !parts
    done;
    Vlog.logf t.vlog ~level:2 "  %s\n" (String.concat " " !parts)
  end

(* Coverage instrumentation point: [site] is a static name for the
   verifier branch, [v] an optional small discriminator. *)
let cov ?(v = 0) (t : t) (site : string) : unit =
  Coverage.hit t.cov site v

let reject ?reason (t : t) ~(pc : int) (errno : errno) fmt =
  Format.kasprintf
    (fun vmsg ->
       logf t "%d: %s\n" pc vmsg;
       raise (Reject (verr_make ?reason errno ~pc vmsg)))
    fmt

let reg (t : t) (r : Insn.reg) : Regstate.t = Vstate.reg t.st r
let set_reg (t : t) (r : Insn.reg) (v : Regstate.t) : unit =
  Vstate.set_reg t.st r v

(* Read-check: using an uninitialized register is an immediate reject. *)
let check_reg_read (t : t) ~(pc : int) (r : Insn.reg) : Regstate.t =
  let v = reg t r in
  if not (Regstate.is_init v) then
    reject t ~pc EACCES "R%d !read_ok" (Insn.reg_to_int r)
  else v

let check_reg_write (t : t) ~(pc : int) (r : Insn.reg) : unit =
  if r = Insn.R10 then
    reject t ~pc EACCES "frame pointer is read only"
