open Vimport

(* The main analysis loop (kernel do_check): simulate every instruction
   along every path, maintaining the abstract state, pushing the other
   arm of each conditional onto the branch stack, and pruning paths
   whose state is subsumed by an already-verified one. *)

(* -- Static CFG validation (kernel check_cfg) -------------------------- *)

let jump_targets (insns : Insn.t array) : (int, unit) Hashtbl.t =
  let targets = Hashtbl.create 16 in
  Array.iteri
    (fun pc insn ->
       match insn with
       | Insn.Jmp { off; _ } | Insn.Ja off | Insn.Call (Insn.Local off) ->
         Hashtbl.replace targets (pc + 1 + off) ()
       | _ -> ())
    insns;
  targets

(* Maximum trip count a certified loop may have.  Keeps every accepted
   loop comfortably inside the interpreter's fuel budget: acceptance
   still implies the program runs to completion. *)
let max_certified_trips = 4096l

(* Syntactic termination certificate for the loop headed at [head] —
   the precondition for state widening.  Widening makes the ABSTRACT
   walk converge, but convergence alone proves nothing about concrete
   termination (a counter tested with [!=] converges abstractly at ⊤
   yet runs for 2^64 iterations).  The accepted-implies-runs-clean
   oracle needs a trip bound, so widening is reserved for loops whose
   shape proves one:

     - a single conditional back edge [b]: 64-bit [Jlt]/[Jle] of an
       induction register against a positive immediate K <=
       {!max_certified_trips};
     - the instruction before it is the only write to the induction
       register in the body: a 64-bit [Add] of a positive immediate;
     - no jump anywhere targets [b], so every back-edge traversal has
       just executed the increment.

   Then each traversal leaves ind < K (or <= K) having strictly grown
   it, so the loop runs at most K+1 times no matter what the abstract
   states say.  Loops without the certificate keep the pre-widening
   discipline: bounded unrolling, the zero-progress "infinite loop
   detected" rejection, and the complexity budgets.

   The analyzer also needs [b] itself at prune time: an arrival at
   [head] VIA [b] has provably just run the increment (genuine loop
   progress), while an arrival over any other edge is a forward
   re-entry from an enclosing cycle.  The zero-progress infinite-loop
   check must never fire on the former and convergence pruning must
   never fire on the latter. *)
let certified_head (insns : Insn.t array) ~(head : int)
    ~(backs : int list) : bool =
  match backs with
  | [ b ] -> (
    match insns.(b) with
    | Insn.Jmp
        { op32 = false; cond = Insn.Jlt | Insn.Jle; dst = ind;
          src = Insn.Imm k; off = _ }
      when Int32.compare k 0l > 0
           && Int32.compare k max_certified_trips <= 0 ->
      head <= b - 1
      && (match insns.(b - 1) with
         | Insn.Alu
             { op64 = true; op = Insn.Add; dst; src = Insn.Imm c }
           -> dst = ind && Int32.compare c 0l > 0
         | _ -> false)
      && (let only_write = ref true in
          for pc = head to b - 2 do
            if List.mem ind (Insn.regs_written insns.(pc)) then
              only_write := false
          done;
          !only_write)
      && (let increment_dominates = ref true in
          Array.iteri
            (fun pc insn ->
               match insn with
               | Insn.Jmp { off; _ } | Insn.Ja off
               | Insn.Call (Insn.Local off) ->
                 if pc + 1 + off = b then increment_dominates := false
               | _ -> ())
            insns;
          !increment_dominates)
    | _ -> false)
  | _ -> false

(* Loop heads: targets of back edges (a jump whose target does not
   advance the pc), mapped to the certified back-edge pc when the loop
   is widening-eligible (see {!certified_head}).  Forward joins keep
   the plain store-and-prune discipline. *)
let loop_heads (insns : Insn.t array) : (int, int option) Hashtbl.t =
  let backs : (int, int list) Hashtbl.t = Hashtbl.create 4 in
  Array.iteri
    (fun pc insn ->
       match insn with
       | Insn.Jmp { off; _ } | Insn.Ja off ->
         if pc + 1 + off <= pc then
           Hashtbl.replace backs (pc + 1 + off)
             (pc
              :: Option.value
                   (Hashtbl.find_opt backs (pc + 1 + off))
                   ~default:[])
       | _ -> ())
    insns;
  let heads = Hashtbl.create 4 in
  Hashtbl.iter
    (fun head bs ->
       Hashtbl.replace heads head
         (if certified_head insns ~head ~backs:bs then
            Some (List.hd bs)
          else None))
    backs;
  heads

(* Widening thresholds for this program: the fixed set (0, ±1,
   type-width extrema) plus every branch-comparison constant, in both
   its sign-extended and zero-extended reading.  A counted loop's exit
   test is a branch against its bound, so the escaping counter jumps
   exactly to that bound instead of creeping or overshooting to ⊤. *)
let harvest_thresholds (insns : Insn.t array) : Regstate.thresholds =
  let consts = ref [] in
  Array.iter
    (fun insn ->
       match insn with
       | Insn.Jmp { src = Insn.Imm i; _ } ->
         consts :=
           Int64.of_int32 i
           :: Int64.logand (Int64.of_int32 i) 0xFFFF_FFFFL
           :: !consts
       | _ -> ())
    insns;
  Regstate.mk_thresholds !consts

let check_cfg (env : Venv.t) : unit =
  let insns = env.Venv.insns in
  let n = Array.length insns in
  if n = 0 then Venv.reject env ~pc:0 Venv.EINVAL "empty program";
  let in_range pc target what =
    if target < 0 || target >= n then
      Venv.reject env ~pc Venv.EINVAL "%s out of range (to %d)" what target
  in
  (* edge validity + reachability DFS *)
  let visited = Array.make n false in
  let rec dfs pc =
    if pc < 0 || pc >= n then ()
    else if visited.(pc) then ()
    else begin
      visited.(pc) <- true;
      match insns.(pc) with
      | Insn.Exit -> ()
      | Insn.Ja off ->
        in_range pc (pc + 1 + off) "jump";
        dfs (pc + 1 + off)
      | Insn.Jmp { off; _ } ->
        in_range pc (pc + 1 + off) "jump";
        if pc + 1 >= n then
          Venv.reject env ~pc Venv.EINVAL "fall-through off program end";
        dfs (pc + 1 + off);
        dfs (pc + 1)
      | Insn.Call (Insn.Local off) ->
        in_range pc (pc + 1 + off) "call";
        if pc + 1 >= n then
          Venv.reject env ~pc Venv.EINVAL "fall-through off program end";
        dfs (pc + 1 + off);
        dfs (pc + 1)
      | Insn.Alu _ | Insn.Endian _ | Insn.Ld_imm64 _ | Insn.Ldx _
      | Insn.St _ | Insn.Stx _ | Insn.Atomic _
      | Insn.Call (Insn.Helper _) | Insn.Call (Insn.Kfunc _) ->
        if pc + 1 >= n then
          Venv.reject env ~pc Venv.EINVAL "fall-through off program end";
        dfs (pc + 1)
    end
  in
  dfs 0;
  Array.iteri
    (fun pc seen ->
       if not seen then
         Venv.reject env ~pc Venv.EINVAL "unreachable insn %d" pc)
    visited;
  Venv.cov env "cfg:ok"

(* -- Instruction dispatch ----------------------------------------------- *)

let check_ld_imm64 (env : Venv.t) ~(pc : int) (dst : Insn.reg)
    (kind : Insn.ld64_kind) : unit =
  Venv.check_reg_write env ~pc dst;
  let v =
    match kind with
    | Insn.Const c -> Regstate.const_scalar c
    | Insn.Map_fd fd -> begin
        Venv.cov env "ld:map_fd";
        match Kstate.map_of_fd env.Venv.kst fd with
        | Some m ->
          Regstate.pointer
            (Regstate.P_map_ptr
               (Regstate.map_info_of_def ~fd m.Map.def))
        | None ->
          Venv.reject env ~pc Venv.EINVAL "fd %d is not pointing to a map"
            fd
      end
    | Insn.Map_value (fd, off) -> begin
        Venv.cov env "ld:map_value";
        match Kstate.map_of_fd env.Venv.kst fd with
        | Some m ->
          let mi = Regstate.map_info_of_def ~fd m.Map.def in
          if m.Map.def.Map.mtype <> Map.Array_map then
            Venv.reject env ~pc Venv.EINVAL
              "direct value access only on array maps";
          if off < 0 || off >= mi.Regstate.mi_value_size then
            Venv.reject env ~pc Venv.EINVAL
              "direct value offset %d outside value" off;
          Regstate.pointer (Regstate.P_map_value mi) ~off
        | None ->
          Venv.reject env ~pc Venv.EINVAL "fd %d is not pointing to a map"
            fd
      end
    | Insn.Btf_obj id -> begin
        Venv.cov env "ld:btf_obj";
        if Venv.unprivileged env then
          Venv.reject env ~pc Venv.EPERM
            "BTF object access requires CAP_BPF";
        match Btf.find id with
        | Some d ->
          (* PTR_TO_BTF_ID: trusted, never marked maybe_null - even for
             objects that are in fact NULL at runtime (paper Listing 2) *)
          Regstate.pointer (Regstate.P_btf d)
        | None ->
          Venv.reject env ~pc Venv.EINVAL "unknown BTF object %d" id
      end
  in
  Venv.set_reg env dst v

(* Push a new call frame for a bpf-to-bpf call. *)
let push_frame (env : Venv.t) ~(pc : int) ~(target : int) : int =
  let st = env.Venv.st in
  if Vstate.frame_count st >= Venv.max_call_depth then
    Venv.reject env ~pc Venv.EINVAL
      "the call stack of %d frames is too deep" (Vstate.frame_count st + 1);
  Venv.cov env "call:local" ~v:(Vstate.frame_count st);
  let caller = Vstate.cur_frame st in
  let callee =
    Vstate.alloc_frame env.Venv.pool ~frameno:(Vstate.frame_count st)
      ~callsite:(pc + 1)
  in
  (* R1-R5 are passed; everything else starts uninitialized *)
  for i = 1 to 5 do
    callee.Vstate.regs.(i) <- caller.Vstate.regs.(i)
  done;
  Vstate.push_top_frame st callee;
  target

(* Pop the current frame at EXIT; returns the resume pc. *)
let pop_frame (env : Venv.t) ~(pc : int) : int =
  let st = env.Venv.st in
  let callee = Vstate.cur_frame st in
  let r0 = callee.Vstate.regs.(0) in
  if not (Regstate.is_init r0) then
    Venv.reject env ~pc Venv.EACCES "R0 !read_ok at subprogram exit";
  let popped = Vstate.pop_top_frame st in
  (* the top frame IS the callee — popping anything else would mean the
     frame stack and the current frame disagree *)
  assert (popped == callee);
  let caller = Vstate.cur_frame st in
  caller.Vstate.regs.(0) <- r0;
  for i = 1 to 5 do
    caller.Vstate.regs.(i) <- Regstate.not_init
  done;
  let resume = popped.Vstate.callsite in
  Vstate.release_frame env.Venv.pool popped;
  resume

(* Main-program EXIT: return-range, reference and lock discipline. *)
let check_main_exit (env : Venv.t) ~(pc : int) : unit =
  let st = env.Venv.st in
  let r0 = Vstate.reg st Insn.R0 in
  if not (Regstate.is_init r0) then
    Venv.reject env ~pc Venv.EACCES "R0 !read_ok at program exit";
  Venv.cov env "exit:check";
  (match r0.Regstate.kind with
   | Regstate.Ptr _ ->
     Venv.reject env ~pc Venv.EACCES "R0 leaks pointer at program exit"
   | Regstate.Scalar -> begin
       match Prog.return_range env.Venv.prog_type with
       | None -> ()
       | Some (lo, hi) ->
         if r0.Regstate.smin < lo || r0.Regstate.smax > hi then
           Venv.reject env ~pc Venv.EACCES
             "At program exit R0 has range [%Ld,%Ld] should be in [%Ld,%Ld]"
             r0.Regstate.smin r0.Regstate.smax lo hi
     end
   | Regstate.Not_init -> assert false);
  if st.Vstate.refs <> [] then
    Venv.reject env ~pc Venv.EINVAL
      "Unreleased reference id=%d" (List.hd st.Vstate.refs);
  if st.Vstate.active_lock <> None then
    Venv.reject env ~pc Venv.EINVAL "bpf_spin_lock is missing unlock"

(* -- Pruning ------------------------------------------------------------ *)

(* Store the current state at [pc] as a new explored entry — the
   unrolling fallback when widening does not apply.  A looping path
   that exhausts the per-insn entry budget can make no further
   convergence progress: that is the [Loop_unbounded] rejection,
   distinct from the zero-progress "infinite loop detected" one. *)
let store_or_unroll (env : Venv.t) ~(pc : int) ~(psig : int)
    ~(stored : Venv.explored_entry list) ~(looping : bool) : bool =
  Vstats.prune_miss env.Venv.vst;
  if List.length stored < Venv.max_explored_per_insn then begin
    let snapshot = Vstate.copy ~pool:env.Venv.pool env.Venv.st in
    let e =
      { Venv.e_state = snapshot; e_branches = 1; e_sig = psig;
        e_fsig = Vstate.frame_sigs_stored snapshot; e_widens = 0 }
    in
    Hashtbl.replace env.Venv.explored pc (e :: stored);
    env.Venv.ancestors <- e :: env.Venv.ancestors;
    Vstats.state_stored env.Venv.vst ~at_insn:(List.length stored + 1);
    if env.Venv.vst.Vstats.vs_total_states > Venv.total_states_limit
    then begin
      Venv.cov env "budget:states";
      Venv.reject env ~reason:Reject_reason.Budget_exhausted ~pc
        Venv.E2BIG "state budget exhausted: %d states stored"
        env.Venv.vst.Vstats.vs_total_states
    end;
    false
  end
  else if looping then begin
    Venv.cov env "loop:unbounded";
    Venv.reject env ~reason:Reject_reason.Loop_unbounded ~pc Venv.EINVAL
      "loop state fails to converge at insn %d" pc
  end
  else false

let maybe_prune (env : Venv.t) ~(pc : int) ~(from : int)
    (targets : (int, unit) Hashtbl.t)
    (heads : (int, int option) Hashtbl.t) (th : Regstate.thresholds) :
  bool =
  if not (Hashtbl.mem targets pc) then false
  else begin
    let bug3 = Venv.has_bug env Kconfig.Bug3_backtrack_precision in
    let cert_b =
      match Hashtbl.find_opt heads pc with
      | Some (Some b) -> Some b
      | _ -> None
    in
    (* arrival over the certified back edge: the increment at [b-1]
       has provably just run, so the loop made genuine progress *)
    let via_back_edge =
      match cert_b with Some b -> from = b | None -> false
    in
    let stored =
      Option.value (Hashtbl.find_opt env.Venv.explored pc) ~default:[]
    in
    (* newest in-progress entry of the current path at this pc: the
       only ancestor entry a certified loop head may widen or
       converge against.  An OLDER ancestor entry (a previous
       traversal, re-entered through an enclosing cycle) may well
       subsume the incoming state — its widened invariant covers the
       restarted counter — but pruning there would end the path
       before the outer cycle is re-walked, hiding it from the
       zero-progress check.  Each re-traversal must converge on its
       own entry. *)
    let recent_anc =
      if cert_b <> None then
        List.find_opt
          (fun (e : Venv.explored_entry) ->
             List.memq e env.Venv.ancestors)
          stored
      else None
    in
    (* cheap necessary-condition signatures front the linear scan: most
       stored states are dismissed on an integer compare instead of a
       full states_equal walk *)
    let psig = Vstate.state_sig env.Venv.st in
    let pfsig = Vstate.frame_sigs_probe env.Venv.st in
    match
      List.find_opt
        (fun (e : Venv.explored_entry) ->
           let stale_ancestor =
             cert_b <> None
             && (match recent_anc with
                | Some r -> not (e == r) && List.memq e env.Venv.ancestors
                | None -> false)
           in
           if stale_ancestor then false
           else if
             e.Venv.e_sig = psig
             && Vstate.sigs_compatible ~stored:e.Venv.e_fsig ~probe:pfsig
           then
             Vstate.states_equal ~old:e.Venv.e_state ~cur:env.Venv.st ~bug3
           else begin
             Vstats.prune_hash_skip env.Venv.vst;
             false
           end)
        stored
    with
    | Some e when e.Venv.e_branches > 0 ->
      if List.memq e env.Venv.ancestors then begin
        if via_back_edge then begin
          (* the stored loop invariant absorbed a genuine back-edge
             arrival: the loop converged.  Pruning against the
             (in-progress) ancestor is the coinductive fixpoint
             argument — every behavior below pc is covered by the
             continuation being explored from the stored state
             itself; concrete termination is the head's syntactic
             certificate (the arrival came over the certified back
             edge, so the bounded increment just ran). *)
          Venv.logf env
            "loop at insn %d converged after %d widening round(s)\n" pc
            e.Venv.e_widens;
          Venv.cov env "prune:converged";
          Vstats.prune_hit env.Venv.vst;
          true
        end
        else if cert_b = None then begin
          (* the current path came back to one of its own states: no
             loop variable made progress (kernel "infinite loop
             detected") *)
          Venv.cov env "prune:loop";
          Vstats.loop_detected env.Venv.vst;
          Venv.reject env ~pc Venv.EINVAL
            "infinite loop detected at insn %d" pc
        end
        else
          (* a certified head re-entered over a forward edge: an
             enclosing cycle restarted the loop.  Start a fresh
             unrolling entry so the outer cycle either leaves the
             loop region, repeats at its own (uncertified) head, or
             exhausts the per-insn entry budget. *)
          store_or_unroll env ~pc ~psig ~stored ~looping:true
      end
      else
        (* equal to a sibling's in-progress state: pruning would be
           unsound (its subtree is not verified yet); keep exploring *)
        false
    | Some _ ->
      Venv.cov env "prune:hit";
      Vstats.prune_hit env.Venv.vst;
      true
    | None ->
      (* a certified loop head reached again by its own path with a
         state the stored ancestor does not subsume: the induction
         variable progressed.  Widen the stored state against the
         incoming one (bounded rounds, the last forcing diverging
         scalars to ⊤) and continue the walk from the widened state,
         so the loop body is verified once under the candidate
         invariant instead of once per unrolled iteration.  Heads
         without a termination certificate never widen: convergence
         would prove nothing about their concrete trip count. *)
      let anc_here = recent_anc in
      match anc_here with
      | Some anc
        when Venv.has_bug env Kconfig.Bug13_widen_tight_exit
             && anc.Venv.e_widens > 0 ->
        (* Bug13: the broken widening declares convergence after its
           first round even though the incoming state escaped the
           widened range — the loop exit keeps a too-tight bound that
           the witness oracle exposes at run time. *)
        Venv.cov env "prune:hit";
        Vstats.prune_hit env.Venv.vst;
        true
      | Some anc when anc.Venv.e_widens < Venv.max_widen_rounds -> begin
          let force =
            anc.Venv.e_widens = Venv.max_widen_rounds - 1
          in
          match
            Vstate.widen_state ~pool:env.Venv.pool ~th ~force
              ~old:anc.Venv.e_state ~cur:env.Venv.st
          with
          | Some w ->
            if env.Venv.config.Kconfig.lint then
              Venv.record_lint env
                (Invariants.check_widen_state ~pc ~th
                   ~old:anc.Venv.e_state ~cur:env.Venv.st ~widened:w);
            anc.Venv.e_widens <- anc.Venv.e_widens + 1;
            Venv.logf env "widening loop head at insn %d (round %d%s)\n"
              pc anc.Venv.e_widens
            (if force then ", forced" else "");
            Vstats.widen_round env.Venv.vst;
            Vstate.release env.Venv.pool anc.Venv.e_state;
            anc.Venv.e_state <- w;
            anc.Venv.e_sig <- Vstate.state_sig w;
            anc.Venv.e_fsig <- Vstate.frame_sigs_stored w;
            (* the walk continues from the widened state: the incoming
               (narrower) state is covered by it *)
            Vstate.release env.Venv.pool env.Venv.st;
            env.Venv.st <- Vstate.copy ~pool:env.Venv.pool w;
            Venv.cov env "prune:widen";
            false
          | None ->
            (* structural divergence (pointer kind, frame shape): no
               sound widening exists; fall back to unrolling *)
            store_or_unroll env ~pc ~psig ~stored ~looping:true
        end
      | Some _ ->
        (* widening rounds exhausted without convergence *)
        store_or_unroll env ~pc ~psig ~stored ~looping:true
      | None -> store_or_unroll env ~pc ~psig ~stored ~looping:false
  end

(* -- Main loop ----------------------------------------------------------- *)

let run (env : Venv.t) : unit =
  check_cfg env;
  let insns = env.Venv.insns in
  let targets = jump_targets insns in
  let heads = loop_heads insns in
  let th = harvest_thresholds insns in
  Vstats.loop_heads_seen env.Venv.vst (Hashtbl.length heads);
  env.Venv.branch_stack <- [ (0, -1, env.Venv.st, []) ];
  Vstats.branch_pushed env.Venv.vst;
  (* the current path is done: every state it ran under has one fewer
     unfinished descendant.  An entry dropping to zero unfinished paths
     is no longer live: its whole subtree is verified (peak_states
     tracks the live count). *)
  let end_path () =
    List.iter
      (fun (e : Venv.explored_entry) ->
         e.Venv.e_branches <- e.Venv.e_branches - 1;
         if e.Venv.e_branches = 0 then Vstats.state_done env.Venv.vst)
      env.Venv.ancestors;
    env.Venv.ancestors <- []
  in
  let rec next_path () =
    end_path ();
    match env.Venv.branch_stack with
    | [] -> ()
    | (pc, from, st, ancestors) :: rest ->
      Vstats.branch_popped env.Venv.vst;
      env.Venv.branch_stack <- rest;
      env.Venv.st <- st;
      env.Venv.ancestors <- ancestors;
      walk ~from pc
  and walk ~from pc =
    env.Venv.insn_processed <- Vstats.count_insn env.Venv.vst;
    if env.Venv.insn_processed > Venv.insn_processed_limit then
      Venv.reject env ~pc Venv.E2BIG
        "BPF program is too large. Processed %d insn"
        env.Venv.insn_processed;
    if pc < 0 || pc >= Array.length insns then
      Venv.reject env ~pc Venv.EINVAL "invalid program counter %d" pc;
    if maybe_prune env ~pc ~from targets heads th then begin
      (* the pruned path's state is uniquely owned here: recycle it *)
      Vstate.release env.Venv.pool env.Venv.st;
      next_path ()
    end
    else begin
      env.Venv.aux.(pc).Venv.seen <- true;
      (* soundness sanitizer hooks: record the abstract register file
         this (non-pruned) visit runs under, and lint the whole state.
         A pruned visit needs no record: its state is subsumed by a
         stored one whose continuation was recorded — unless the pruning
         itself is unsound, which is exactly what the runtime witness
         check then exposes. *)
      if env.Venv.config.Kconfig.witness then begin
        let here = Witness.of_state env.Venv.st in
        env.Venv.aux.(pc).Venv.witness <-
          (match env.Venv.aux.(pc).Venv.witness with
           | None -> Some here
           | Some prev -> Some (Witness.join_states prev here))
      end;
      if env.Venv.config.Kconfig.lint then
        Venv.record_lint env (Invariants.check_state ~pc env.Venv.st);
      Venv.log_state env;
      Venv.log_insn env ~pc insns.(pc);
      match insns.(pc) with
      | Insn.Alu { op64; op; dst; src } ->
        Check_alu.check env ~pc ~op64 op dst src;
        walk ~from:pc (pc + 1)
      | Insn.Endian { swap; bits; dst } ->
        Check_alu.check_endian env ~pc ~swap ~bits dst;
        walk ~from:pc (pc + 1)
      | Insn.Ld_imm64 (dst, kind) ->
        check_ld_imm64 env ~pc dst kind;
        walk ~from:pc (pc + 1)
      | Insn.Ldx { sz; dst; src; off } ->
        Venv.check_reg_write env ~pc dst;
        let size = Insn.size_bytes sz in
        let v =
          Check_mem.check env ~pc ~access:Check_mem.Aread ~addr_reg:src
            ~off ~size ()
        in
        (* narrow loads zero-extend: the result fits the access width.
           A known constant truncates exactly ([c land mask]); skipping
           it — the pre-fix behavior Bug12 re-creates — would keep a
           stale full-width constant the concrete execution escapes. *)
        let v =
          if size < 8 && Regstate.is_scalar v then begin
            let mask = Int64.sub (Int64.shift_left 1L (size * 8)) 1L in
            match Regstate.const_value v with
            | Some c ->
              if Venv.has_bug env Kconfig.Bug12_narrow_load_const then v
              else Regstate.const_scalar (Int64.logand c mask)
            | None -> Regstate.scalar_range ~umin:0L ~umax:mask
          end
          else v
        in
        Venv.set_reg env dst v;
        walk ~from:pc (pc + 1)
      | Insn.St { sz; dst; off; imm } ->
        let _ =
          Check_mem.check env ~pc ~access:Check_mem.Awrite ~addr_reg:dst
            ~off ~size:(Insn.size_bytes sz)
            ~stored:(Regstate.const_scalar (Int64.of_int32 imm)) ()
        in
        walk ~from:pc (pc + 1)
      | Insn.Stx { sz; dst; src; off } ->
        let stored = Venv.check_reg_read env ~pc src in
        let _ =
          Check_mem.check env ~pc ~access:Check_mem.Awrite ~addr_reg:dst
            ~off ~size:(Insn.size_bytes sz) ~stored ()
        in
        walk ~from:pc (pc + 1)
      | Insn.Atomic _ as a ->
        Check_mem.check_atomic env ~pc a;
        walk ~from:pc (pc + 1)
      | Insn.Ja off -> walk ~from:pc (pc + 1 + off)
      | Insn.Jmp { op32; cond; dst; src; off } -> begin
          match Check_jmp.check env ~pc ~op32 cond dst src with
          | Check_jmp.Both (taken, fall) ->
            (* the pushed sibling also runs under the current ancestors *)
            List.iter
              (fun (e : Venv.explored_entry) ->
                 e.Venv.e_branches <- e.Venv.e_branches + 1)
              env.Venv.ancestors;
            env.Venv.branch_stack <-
              (pc + 1 + off, pc, taken, env.Venv.ancestors)
              :: env.Venv.branch_stack;
            Vstats.branch_pushed env.Venv.vst;
            if env.Venv.vst.Vstats.vs_branch_depth
               > Venv.branch_depth_limit
            then begin
              Venv.cov env "budget:branches";
              Venv.reject env ~reason:Reject_reason.Budget_exhausted ~pc
                Venv.E2BIG "branch budget exhausted: %d pending branches"
                env.Venv.vst.Vstats.vs_branch_depth
            end;
            env.Venv.st <- fall;
            walk ~from:pc (pc + 1)
          | Check_jmp.Taken_only st ->
            env.Venv.st <- st;
            walk ~from:pc (pc + 1 + off)
          | Check_jmp.Fall_only st ->
            env.Venv.st <- st;
            walk ~from:pc (pc + 1)
        end
      | Insn.Call (Insn.Helper id) ->
        Check_call.check_helper env ~pc id;
        walk ~from:pc (pc + 1)
      | Insn.Call (Insn.Kfunc id) ->
        Check_call.check_kfunc env ~pc id;
        walk ~from:pc (pc + 1)
      | Insn.Call (Insn.Local off) ->
        let target = push_frame env ~pc ~target:(pc + 1 + off) in
        walk ~from:pc target
      | Insn.Exit ->
        if Vstate.frame_count env.Venv.st > 1 then begin
          let resume = pop_frame env ~pc in
          walk ~from:pc resume
        end
        else begin
          check_main_exit env ~pc;
          Venv.cov env "exit:ok";
          (* finished path: its state is uniquely owned — recycle it *)
          Vstate.release env.Venv.pool env.Venv.st;
          next_path ()
        end
    end
  in
  next_path ()
