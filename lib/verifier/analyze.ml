open Vimport

(* The main analysis loop (kernel do_check): simulate every instruction
   along every path, maintaining the abstract state, pushing the other
   arm of each conditional onto the branch stack, and pruning paths
   whose state is subsumed by an already-verified one. *)

(* -- Static CFG validation (kernel check_cfg) -------------------------- *)

let jump_targets (insns : Insn.t array) : (int, unit) Hashtbl.t =
  let targets = Hashtbl.create 16 in
  Array.iteri
    (fun pc insn ->
       match insn with
       | Insn.Jmp { off; _ } | Insn.Ja off | Insn.Call (Insn.Local off) ->
         Hashtbl.replace targets (pc + 1 + off) ()
       | _ -> ())
    insns;
  targets

let check_cfg (env : Venv.t) : unit =
  let insns = env.Venv.insns in
  let n = Array.length insns in
  if n = 0 then Venv.reject env ~pc:0 Venv.EINVAL "empty program";
  let in_range pc target what =
    if target < 0 || target >= n then
      Venv.reject env ~pc Venv.EINVAL "%s out of range (to %d)" what target
  in
  (* edge validity + reachability DFS *)
  let visited = Array.make n false in
  let rec dfs pc =
    if pc < 0 || pc >= n then ()
    else if visited.(pc) then ()
    else begin
      visited.(pc) <- true;
      match insns.(pc) with
      | Insn.Exit -> ()
      | Insn.Ja off ->
        in_range pc (pc + 1 + off) "jump";
        dfs (pc + 1 + off)
      | Insn.Jmp { off; _ } ->
        in_range pc (pc + 1 + off) "jump";
        if pc + 1 >= n then
          Venv.reject env ~pc Venv.EINVAL "fall-through off program end";
        dfs (pc + 1 + off);
        dfs (pc + 1)
      | Insn.Call (Insn.Local off) ->
        in_range pc (pc + 1 + off) "call";
        if pc + 1 >= n then
          Venv.reject env ~pc Venv.EINVAL "fall-through off program end";
        dfs (pc + 1 + off);
        dfs (pc + 1)
      | Insn.Alu _ | Insn.Endian _ | Insn.Ld_imm64 _ | Insn.Ldx _
      | Insn.St _ | Insn.Stx _ | Insn.Atomic _
      | Insn.Call (Insn.Helper _) | Insn.Call (Insn.Kfunc _) ->
        if pc + 1 >= n then
          Venv.reject env ~pc Venv.EINVAL "fall-through off program end";
        dfs (pc + 1)
    end
  in
  dfs 0;
  Array.iteri
    (fun pc seen ->
       if not seen then
         Venv.reject env ~pc Venv.EINVAL "unreachable insn %d" pc)
    visited;
  Venv.cov env "cfg:ok"

(* -- Instruction dispatch ----------------------------------------------- *)

let check_ld_imm64 (env : Venv.t) ~(pc : int) (dst : Insn.reg)
    (kind : Insn.ld64_kind) : unit =
  Venv.check_reg_write env ~pc dst;
  let v =
    match kind with
    | Insn.Const c -> Regstate.const_scalar c
    | Insn.Map_fd fd -> begin
        Venv.cov env "ld:map_fd";
        match Kstate.map_of_fd env.Venv.kst fd with
        | Some m ->
          Regstate.pointer
            (Regstate.P_map_ptr
               (Regstate.map_info_of_def ~fd m.Map.def))
        | None ->
          Venv.reject env ~pc Venv.EINVAL "fd %d is not pointing to a map"
            fd
      end
    | Insn.Map_value (fd, off) -> begin
        Venv.cov env "ld:map_value";
        match Kstate.map_of_fd env.Venv.kst fd with
        | Some m ->
          let mi = Regstate.map_info_of_def ~fd m.Map.def in
          if m.Map.def.Map.mtype <> Map.Array_map then
            Venv.reject env ~pc Venv.EINVAL
              "direct value access only on array maps";
          if off < 0 || off >= mi.Regstate.mi_value_size then
            Venv.reject env ~pc Venv.EINVAL
              "direct value offset %d outside value" off;
          Regstate.pointer (Regstate.P_map_value mi) ~off
        | None ->
          Venv.reject env ~pc Venv.EINVAL "fd %d is not pointing to a map"
            fd
      end
    | Insn.Btf_obj id -> begin
        Venv.cov env "ld:btf_obj";
        if Venv.unprivileged env then
          Venv.reject env ~pc Venv.EPERM
            "BTF object access requires CAP_BPF";
        match Btf.find id with
        | Some d ->
          (* PTR_TO_BTF_ID: trusted, never marked maybe_null - even for
             objects that are in fact NULL at runtime (paper Listing 2) *)
          Regstate.pointer (Regstate.P_btf d)
        | None ->
          Venv.reject env ~pc Venv.EINVAL "unknown BTF object %d" id
      end
  in
  Venv.set_reg env dst v

(* Push a new call frame for a bpf-to-bpf call. *)
let push_frame (env : Venv.t) ~(pc : int) ~(target : int) : int =
  let st = env.Venv.st in
  if Vstate.frame_count st >= Venv.max_call_depth then
    Venv.reject env ~pc Venv.EINVAL
      "the call stack of %d frames is too deep" (Vstate.frame_count st + 1);
  Venv.cov env "call:local" ~v:(Vstate.frame_count st);
  let caller = Vstate.cur_frame st in
  let callee =
    Vstate.alloc_frame env.Venv.pool ~frameno:(Vstate.frame_count st)
      ~callsite:(pc + 1)
  in
  (* R1-R5 are passed; everything else starts uninitialized *)
  for i = 1 to 5 do
    callee.Vstate.regs.(i) <- caller.Vstate.regs.(i)
  done;
  Vstate.push_top_frame st callee;
  target

(* Pop the current frame at EXIT; returns the resume pc. *)
let pop_frame (env : Venv.t) ~(pc : int) : int =
  let st = env.Venv.st in
  let callee = Vstate.cur_frame st in
  let r0 = callee.Vstate.regs.(0) in
  if not (Regstate.is_init r0) then
    Venv.reject env ~pc Venv.EACCES "R0 !read_ok at subprogram exit";
  let popped = Vstate.pop_top_frame st in
  (* the top frame IS the callee — popping anything else would mean the
     frame stack and the current frame disagree *)
  assert (popped == callee);
  let caller = Vstate.cur_frame st in
  caller.Vstate.regs.(0) <- r0;
  for i = 1 to 5 do
    caller.Vstate.regs.(i) <- Regstate.not_init
  done;
  let resume = popped.Vstate.callsite in
  Vstate.release_frame env.Venv.pool popped;
  resume

(* Main-program EXIT: return-range, reference and lock discipline. *)
let check_main_exit (env : Venv.t) ~(pc : int) : unit =
  let st = env.Venv.st in
  let r0 = Vstate.reg st Insn.R0 in
  if not (Regstate.is_init r0) then
    Venv.reject env ~pc Venv.EACCES "R0 !read_ok at program exit";
  Venv.cov env "exit:check";
  (match r0.Regstate.kind with
   | Regstate.Ptr _ ->
     Venv.reject env ~pc Venv.EACCES "R0 leaks pointer at program exit"
   | Regstate.Scalar -> begin
       match Prog.return_range env.Venv.prog_type with
       | None -> ()
       | Some (lo, hi) ->
         if r0.Regstate.smin < lo || r0.Regstate.smax > hi then
           Venv.reject env ~pc Venv.EACCES
             "At program exit R0 has range [%Ld,%Ld] should be in [%Ld,%Ld]"
             r0.Regstate.smin r0.Regstate.smax lo hi
     end
   | Regstate.Not_init -> assert false);
  if st.Vstate.refs <> [] then
    Venv.reject env ~pc Venv.EINVAL
      "Unreleased reference id=%d" (List.hd st.Vstate.refs);
  if st.Vstate.active_lock <> None then
    Venv.reject env ~pc Venv.EINVAL "bpf_spin_lock is missing unlock"

(* -- Pruning ------------------------------------------------------------ *)

let maybe_prune (env : Venv.t) ~(pc : int)
    (targets : (int, unit) Hashtbl.t) : bool =
  if not (Hashtbl.mem targets pc) then false
  else begin
    let bug3 = Venv.has_bug env Kconfig.Bug3_backtrack_precision in
    let stored =
      Option.value (Hashtbl.find_opt env.Venv.explored pc) ~default:[]
    in
    (* cheap necessary-condition signatures front the linear scan: most
       stored states are dismissed on an integer compare instead of a
       full states_equal walk *)
    let psig = Vstate.state_sig env.Venv.st in
    let pfsig = Vstate.frame_sigs_probe env.Venv.st in
    match
      List.find_opt
        (fun (e : Venv.explored_entry) ->
           if e.Venv.e_sig = psig
              && Vstate.sigs_compatible ~stored:e.Venv.e_fsig ~probe:pfsig
           then
             Vstate.states_equal ~old:e.Venv.e_state ~cur:env.Venv.st ~bug3
           else begin
             Vstats.prune_hash_skip env.Venv.vst;
             false
           end)
        stored
    with
    | Some e when e.Venv.e_branches > 0 ->
      if List.memq e env.Venv.ancestors then begin
        (* the current path came back to one of its own states: no loop
           variable made progress (kernel "infinite loop detected") *)
        Venv.cov env "prune:loop";
        Vstats.loop_detected env.Venv.vst;
        Venv.reject env ~pc Venv.EINVAL
          "infinite loop detected at insn %d" pc
      end
      else
        (* equal to a sibling's in-progress state: pruning would be
           unsound (its subtree is not verified yet); keep exploring *)
        false
    | Some _ ->
      Venv.cov env "prune:hit";
      Vstats.prune_hit env.Venv.vst;
      true
    | None ->
      Vstats.prune_miss env.Venv.vst;
      if List.length stored < Venv.max_explored_per_insn then begin
        let snapshot = Vstate.copy ~pool:env.Venv.pool env.Venv.st in
        let e =
          { Venv.e_state = snapshot; e_branches = 1; e_sig = psig;
            e_fsig = Vstate.frame_sigs_stored snapshot }
        in
        Hashtbl.replace env.Venv.explored pc (e :: stored);
        env.Venv.ancestors <- e :: env.Venv.ancestors;
        Vstats.state_stored env.Venv.vst
          ~at_insn:(List.length stored + 1);
        if env.Venv.vst.Vstats.vs_total_states > Venv.total_states_limit
        then begin
          Venv.cov env "budget:states";
          Venv.reject env ~reason:Reject_reason.Budget_exhausted ~pc
            Venv.E2BIG "state budget exhausted: %d states stored"
            env.Venv.vst.Vstats.vs_total_states
        end
      end;
      false
  end

(* -- Main loop ----------------------------------------------------------- *)

let run (env : Venv.t) : unit =
  check_cfg env;
  let insns = env.Venv.insns in
  let targets = jump_targets insns in
  env.Venv.branch_stack <- [ (0, env.Venv.st, []) ];
  Vstats.branch_pushed env.Venv.vst;
  (* the current path is done: every state it ran under has one fewer
     unfinished descendant.  An entry dropping to zero unfinished paths
     is no longer live: its whole subtree is verified (peak_states
     tracks the live count). *)
  let end_path () =
    List.iter
      (fun (e : Venv.explored_entry) ->
         e.Venv.e_branches <- e.Venv.e_branches - 1;
         if e.Venv.e_branches = 0 then Vstats.state_done env.Venv.vst)
      env.Venv.ancestors;
    env.Venv.ancestors <- []
  in
  let rec next_path () =
    end_path ();
    match env.Venv.branch_stack with
    | [] -> ()
    | (pc, st, ancestors) :: rest ->
      Vstats.branch_popped env.Venv.vst;
      env.Venv.branch_stack <- rest;
      env.Venv.st <- st;
      env.Venv.ancestors <- ancestors;
      walk pc
  and walk pc =
    env.Venv.insn_processed <- Vstats.count_insn env.Venv.vst;
    if env.Venv.insn_processed > Venv.insn_processed_limit then
      Venv.reject env ~pc Venv.E2BIG
        "BPF program is too large. Processed %d insn"
        env.Venv.insn_processed;
    if pc < 0 || pc >= Array.length insns then
      Venv.reject env ~pc Venv.EINVAL "invalid program counter %d" pc;
    if maybe_prune env ~pc targets then begin
      (* the pruned path's state is uniquely owned here: recycle it *)
      Vstate.release env.Venv.pool env.Venv.st;
      next_path ()
    end
    else begin
      env.Venv.aux.(pc).Venv.seen <- true;
      (* soundness sanitizer hooks: record the abstract register file
         this (non-pruned) visit runs under, and lint the whole state.
         A pruned visit needs no record: its state is subsumed by a
         stored one whose continuation was recorded — unless the pruning
         itself is unsound, which is exactly what the runtime witness
         check then exposes. *)
      if env.Venv.config.Kconfig.witness then begin
        let here = Witness.of_state env.Venv.st in
        env.Venv.aux.(pc).Venv.witness <-
          (match env.Venv.aux.(pc).Venv.witness with
           | None -> Some here
           | Some prev -> Some (Witness.join_states prev here))
      end;
      if env.Venv.config.Kconfig.lint then
        Venv.record_lint env (Invariants.check_state ~pc env.Venv.st);
      Venv.log_state env;
      Venv.log_insn env ~pc insns.(pc);
      match insns.(pc) with
      | Insn.Alu { op64; op; dst; src } ->
        Check_alu.check env ~pc ~op64 op dst src;
        walk (pc + 1)
      | Insn.Endian { swap; bits; dst } ->
        Check_alu.check_endian env ~pc ~swap ~bits dst;
        walk (pc + 1)
      | Insn.Ld_imm64 (dst, kind) ->
        check_ld_imm64 env ~pc dst kind;
        walk (pc + 1)
      | Insn.Ldx { sz; dst; src; off } ->
        Venv.check_reg_write env ~pc dst;
        let size = Insn.size_bytes sz in
        let v =
          Check_mem.check env ~pc ~access:Check_mem.Aread ~addr_reg:src
            ~off ~size ()
        in
        (* narrow loads zero-extend: the result fits the access width.
           A known constant truncates exactly ([c land mask]); skipping
           it — the pre-fix behavior Bug12 re-creates — would keep a
           stale full-width constant the concrete execution escapes. *)
        let v =
          if size < 8 && Regstate.is_scalar v then begin
            let mask = Int64.sub (Int64.shift_left 1L (size * 8)) 1L in
            match Regstate.const_value v with
            | Some c ->
              if Venv.has_bug env Kconfig.Bug12_narrow_load_const then v
              else Regstate.const_scalar (Int64.logand c mask)
            | None -> Regstate.scalar_range ~umin:0L ~umax:mask
          end
          else v
        in
        Venv.set_reg env dst v;
        walk (pc + 1)
      | Insn.St { sz; dst; off; imm } ->
        let _ =
          Check_mem.check env ~pc ~access:Check_mem.Awrite ~addr_reg:dst
            ~off ~size:(Insn.size_bytes sz)
            ~stored:(Regstate.const_scalar (Int64.of_int32 imm)) ()
        in
        walk (pc + 1)
      | Insn.Stx { sz; dst; src; off } ->
        let stored = Venv.check_reg_read env ~pc src in
        let _ =
          Check_mem.check env ~pc ~access:Check_mem.Awrite ~addr_reg:dst
            ~off ~size:(Insn.size_bytes sz) ~stored ()
        in
        walk (pc + 1)
      | Insn.Atomic _ as a ->
        Check_mem.check_atomic env ~pc a;
        walk (pc + 1)
      | Insn.Ja off -> walk (pc + 1 + off)
      | Insn.Jmp { op32; cond; dst; src; off } -> begin
          match Check_jmp.check env ~pc ~op32 cond dst src with
          | Check_jmp.Both (taken, fall) ->
            (* the pushed sibling also runs under the current ancestors *)
            List.iter
              (fun (e : Venv.explored_entry) ->
                 e.Venv.e_branches <- e.Venv.e_branches + 1)
              env.Venv.ancestors;
            env.Venv.branch_stack <-
              (pc + 1 + off, taken, env.Venv.ancestors)
              :: env.Venv.branch_stack;
            Vstats.branch_pushed env.Venv.vst;
            if env.Venv.vst.Vstats.vs_branch_depth
               > Venv.branch_depth_limit
            then begin
              Venv.cov env "budget:branches";
              Venv.reject env ~reason:Reject_reason.Budget_exhausted ~pc
                Venv.E2BIG "branch budget exhausted: %d pending branches"
                env.Venv.vst.Vstats.vs_branch_depth
            end;
            env.Venv.st <- fall;
            walk (pc + 1)
          | Check_jmp.Taken_only st ->
            env.Venv.st <- st;
            walk (pc + 1 + off)
          | Check_jmp.Fall_only st ->
            env.Venv.st <- st;
            walk (pc + 1)
        end
      | Insn.Call (Insn.Helper id) ->
        Check_call.check_helper env ~pc id;
        walk (pc + 1)
      | Insn.Call (Insn.Kfunc id) ->
        Check_call.check_kfunc env ~pc id;
        walk (pc + 1)
      | Insn.Call (Insn.Local off) ->
        let target = push_frame env ~pc ~target:(pc + 1 + off) in
        walk target
      | Insn.Exit ->
        if Vstate.frame_count env.Venv.st > 1 then begin
          let resume = pop_frame env ~pc in
          walk resume
        end
        else begin
          check_main_exit env ~pc;
          Venv.cov env "exit:ok";
          (* finished path: its state is uniquely owned — recycle it *)
          Vstate.release env.Venv.pool env.Venv.st;
          next_path ()
        end
    end
  in
  next_path ()
