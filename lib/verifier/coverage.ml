(* kcov-style branch coverage over the verifier's decision points.

   Every interesting branch in the analysis calls [hit] with a static
   site name (and optionally a small variant discriminator, e.g. the
   register type a check dispatched on), mirroring how kcov assigns an
   edge id per basic block.  A campaign keeps one global [t] and asks
   each verification run for the set of new edges — the fuzzer's
   feedback signal and the metric of Table 3 / Figure 6.

   Hit counts live in a flat array indexed by edge id, not a hashtable:
   recording an edge is THE hottest operation in the whole analyzer
   (several calls per simulated instruction), and an array bump is an
   order of magnitude cheaper than hashing into a table twice.  Edge
   ids are dense by construction ([site_id * variants_per_site +
   variant]), so the array wastes little space. *)

type t = {
  interner : (string, int) Hashtbl.t;
  mutable next_site : int;
  mutable counts : int array; (* edge id -> hit count (0 = never hit) *)
  mutable distinct : int;     (* number of non-zero entries in counts *)
  memo_sites : string array;  (* direct-mapped memo over [interner]: *)
  memo_ids : int array;       (* call sites pass literal strings, so a
                                 pointer compare usually resolves the
                                 site without hashing it *)
}

let variants_per_site = 256
let memo_slots = 32

let create () =
  { interner = Hashtbl.create 256; next_site = 0;
    counts = Array.make (64 * variants_per_site) 0; distinct = 0;
    memo_sites = Array.make memo_slots ""; memo_ids = Array.make memo_slots 0 }

(* Keep [counts] large enough for every edge of every interned site;
   growth is amortized over site interning, which is rare and cold. *)
let ensure_capacity (t : t) : unit =
  let need = t.next_site * variants_per_site in
  if need > Array.length t.counts then begin
    let cap = max need (2 * Array.length t.counts) in
    let counts = Array.make cap 0 in
    Array.blit t.counts 0 counts 0 (Array.length t.counts);
    t.counts <- counts
  end

(* Cheap deterministic slot for the memo — must not walk the string. *)
let memo_slot (site : string) : int =
  let len = String.length site in
  if len = 0 then 0
  else
    (len * 4 + Char.code (String.unsafe_get site 0)) land (memo_slots - 1)

let site_id (t : t) (site : string) : int =
  let slot = memo_slot site in
  if Array.unsafe_get t.memo_sites slot == site then
    Array.unsafe_get t.memo_ids slot
  else begin
    let id =
      match Hashtbl.find_opt t.interner site with
      | Some id -> id
      | None ->
        let id = t.next_site in
        t.next_site <- id + 1;
        Hashtbl.replace t.interner site id;
        ensure_capacity t;
        id
    in
    t.memo_sites.(slot) <- site;
    t.memo_ids.(slot) <- id;
    id
  end

let edge_id (t : t) (site : string) (variant : int) : int =
  (site_id t site * variants_per_site) + (variant land (variants_per_site - 1))

let record (t : t) (edge : int) : unit =
  (* edges from [edge_id] always fit ([ensure_capacity]); foreign ids
     (merge of another map's set) may not *)
  if edge >= Array.length t.counts then begin
    let cap = max (edge + 1) (2 * Array.length t.counts) in
    let counts = Array.make cap 0 in
    Array.blit t.counts 0 counts 0 (Array.length t.counts);
    t.counts <- counts
  end;
  let n = Array.unsafe_get t.counts edge in
  if n = 0 then t.distinct <- t.distinct + 1;
  Array.unsafe_set t.counts edge (n + 1)

(* The one-call fast path the analysis loop uses. *)
let hit (t : t) (site : string) (variant : int) : unit =
  record t (edge_id t site variant)

let edge_count (t : t) : int = t.distinct

(* Merge a run's local edge set; returns how many edges were new. *)
let merge (t : t) (local : (int, unit) Hashtbl.t) : int =
  Hashtbl.fold
    (fun edge () fresh ->
       let was_new = t.counts.(edge) = 0 in
       record t edge;
       if was_new then fresh + 1 else fresh)
    local 0

let reset (t : t) : unit =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.distinct <- 0

(* -- Cross-map merging -------------------------------------------------- *)

(* Numeric edge ids depend on the order sites happened to be interned,
   which differs between independently-grown maps (e.g. two campaign
   shards).  Merging therefore goes through the portable identity of an
   edge: its (site name, variant) pair. *)

let named_edges (t : t) : ((string * int) * int) list =
  let names = Hashtbl.create (Hashtbl.length t.interner) in
  Hashtbl.iter (fun site id -> Hashtbl.replace names id site) t.interner;
  let acc = ref [] in
  for edge = Array.length t.counts - 1 downto 0 do
    let hits = t.counts.(edge) in
    if hits > 0 then begin
      let sid = edge / variants_per_site
      and variant = edge mod variants_per_site in
      match Hashtbl.find_opt names sid with
      | Some site -> acc := ((site, variant), hits) :: !acc
      | None -> () (* unreachable: every recorded edge was interned *)
    end
  done;
  List.sort compare !acc

let absorb_named (t : t) (edges : ((string * int) * int) list) : int =
  List.fold_left
    (fun fresh ((site, variant), hits) ->
       let id = edge_id t site variant in
       let seen = t.counts.(id) in
       t.counts.(id) <- seen + hits;
       if seen = 0 then begin
         t.distinct <- t.distinct + 1;
         fresh + 1
       end
       else fresh)
    0 edges

let union (ts : t list) : t =
  let u = create () in
  List.iter (fun t -> ignore (absorb_named u (named_edges t))) ts;
  u

(* -- Introspection (bvf cov) -------------------------------------------- *)

(* Subsystem attribution: the part of the site name before the first
   ':' ("check_alu:op" -> "check_alu"); sites without one group under
   their full name. *)
let site_prefix (site : string) : string =
  match String.index_opt site ':' with
  | Some i -> String.sub site 0 i
  | None -> site

(* Edges grouped by site prefix, each group carrying (distinct edges,
   summed hits) plus its per-edge listing.  Groups and edges sorted. *)
let grouped (t : t) :
  (string * (int * int * ((string * int) * int) list)) list =
  let tbl : (string, ((string * int) * int) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (((site, _), _) as e) ->
       let p = site_prefix site in
       Hashtbl.replace tbl p
         (e :: Option.value (Hashtbl.find_opt tbl p) ~default:[]))
    (named_edges t);
  Hashtbl.fold
    (fun prefix edges acc ->
       let edges = List.sort compare edges in
       let hits = List.fold_left (fun n (_, h) -> n + h) 0 edges in
       (prefix, (List.length edges, hits, edges)) :: acc)
    tbl []
  |> List.sort compare

(* Edge-set difference through portable names: edges of [b] absent from
   [a] (gained) and edges of [a] absent from [b] (lost), sorted.  Hit
   counts are ignored — the diff is over coverage, not intensity. *)
let diff ~(old_cov : t) ~(new_cov : t) :
  (string * int) list * (string * int) list =
  let names c =
    List.map fst (named_edges c) |> List.fold_left
      (fun tbl e -> Hashtbl.replace tbl e (); tbl)
      (Hashtbl.create 256)
  in
  let old_names = names old_cov and new_names = names new_cov in
  let only of_tbl not_in =
    Hashtbl.fold
      (fun e () acc -> if Hashtbl.mem not_in e then acc else e :: acc)
      of_tbl []
    |> List.sort compare
  in
  (only new_names old_names, only old_names new_names)
