(* kcov-style branch coverage over the verifier's decision points.

   Every interesting branch in the analysis calls [hit] with a static
   site name (and optionally a small variant discriminator, e.g. the
   register type a check dispatched on), mirroring how kcov assigns an
   edge id per basic block.  A campaign keeps one global [t] and asks
   each verification run for the set of new edges — the fuzzer's
   feedback signal and the metric of Table 3 / Figure 6. *)

type t = {
  interner : (string, int) Hashtbl.t;
  mutable next_site : int;
  edges : (int, int) Hashtbl.t; (* edge id -> hit count *)
}

let create () =
  { interner = Hashtbl.create 256; next_site = 0; edges = Hashtbl.create 1024 }

let variants_per_site = 256

let site_id (t : t) (site : string) : int =
  match Hashtbl.find_opt t.interner site with
  | Some id -> id
  | None ->
    let id = t.next_site in
    t.next_site <- id + 1;
    Hashtbl.replace t.interner site id;
    id

let edge_id (t : t) (site : string) (variant : int) : int =
  (site_id t site * variants_per_site) + (variant land (variants_per_site - 1))

let record (t : t) (edge : int) : unit =
  let n = Option.value (Hashtbl.find_opt t.edges edge) ~default:0 in
  Hashtbl.replace t.edges edge (n + 1)

let edge_count (t : t) : int = Hashtbl.length t.edges

(* Merge a run's local edge set; returns how many edges were new. *)
let merge (t : t) (local : (int, unit) Hashtbl.t) : int =
  Hashtbl.fold
    (fun edge () fresh ->
       let was_new = not (Hashtbl.mem t.edges edge) in
       record t edge;
       if was_new then fresh + 1 else fresh)
    local 0

let reset (t : t) : unit = Hashtbl.reset t.edges

(* -- Cross-map merging -------------------------------------------------- *)

(* Numeric edge ids depend on the order sites happened to be interned,
   which differs between independently-grown maps (e.g. two campaign
   shards).  Merging therefore goes through the portable identity of an
   edge: its (site name, variant) pair. *)

let named_edges (t : t) : ((string * int) * int) list =
  let names = Hashtbl.create (Hashtbl.length t.interner) in
  Hashtbl.iter (fun site id -> Hashtbl.replace names id site) t.interner;
  Hashtbl.fold
    (fun edge hits acc ->
       let sid = edge / variants_per_site
       and variant = edge mod variants_per_site in
       match Hashtbl.find_opt names sid with
       | Some site -> ((site, variant), hits) :: acc
       | None -> acc (* unreachable: every recorded edge was interned *))
    t.edges []
  |> List.sort compare

let absorb_named (t : t) (edges : ((string * int) * int) list) : int =
  List.fold_left
    (fun fresh ((site, variant), hits) ->
       let id = edge_id t site variant in
       let seen = Option.value (Hashtbl.find_opt t.edges id) ~default:0 in
       Hashtbl.replace t.edges id (seen + hits);
       if seen = 0 then fresh + 1 else fresh)
    0 edges

let union (ts : t list) : t =
  let u = create () in
  List.iter (fun t -> ignore (absorb_named u (named_edges t))) ts;
  u

(* -- Introspection (bvf cov) -------------------------------------------- *)

(* Subsystem attribution: the part of the site name before the first
   ':' ("check_alu:op" -> "check_alu"); sites without one group under
   their full name. *)
let site_prefix (site : string) : string =
  match String.index_opt site ':' with
  | Some i -> String.sub site 0 i
  | None -> site

(* Edges grouped by site prefix, each group carrying (distinct edges,
   summed hits) plus its per-edge listing.  Groups and edges sorted. *)
let grouped (t : t) :
  (string * (int * int * ((string * int) * int) list)) list =
  let tbl : (string, ((string * int) * int) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (((site, _), _) as e) ->
       let p = site_prefix site in
       Hashtbl.replace tbl p
         (e :: Option.value (Hashtbl.find_opt tbl p) ~default:[]))
    (named_edges t);
  Hashtbl.fold
    (fun prefix edges acc ->
       let edges = List.sort compare edges in
       let hits = List.fold_left (fun n (_, h) -> n + h) 0 edges in
       (prefix, (List.length edges, hits, edges)) :: acc)
    tbl []
  |> List.sort compare

(* Edge-set difference through portable names: edges of [b] absent from
   [a] (gained) and edges of [a] absent from [b] (lost), sorted.  Hit
   counts are ignored — the diff is over coverage, not intensity. *)
let diff ~(old_cov : t) ~(new_cov : t) :
  (string * int) list * (string * int) list =
  let names c =
    List.map fst (named_edges c) |> List.fold_left
      (fun tbl e -> Hashtbl.replace tbl e (); tbl)
      (Hashtbl.create 256)
  in
  let old_names = names old_cov and new_names = names new_cov in
  let only of_tbl not_in =
    Hashtbl.fold
      (fun e () acc -> if Hashtbl.mem not_in e then acc else e :: acc)
      of_tbl []
    |> List.sort compare
  in
  (only new_names old_names, only old_names new_names)
