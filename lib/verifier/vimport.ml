(* Short aliases for the substrate modules used across the verifier. *)

module Word = Bvf_ebpf.Word
module Version = Bvf_ebpf.Version
module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Encode = Bvf_ebpf.Encode
module Prog = Bvf_ebpf.Prog
module Helper = Bvf_ebpf.Helper
module Kconfig = Bvf_kernel.Kconfig
module Btf = Bvf_kernel.Btf
module Map = Bvf_kernel.Map
module Kstate = Bvf_kernel.Kstate
module Tracepoint = Bvf_kernel.Tracepoint
module Lockdep = Bvf_kernel.Lockdep
