(** Session: one simulated kernel instance plus the programs loaded and
    attached into it — the equivalent of a fuzzer's long-lived test VM.
    The full bpf() load path runs here: map setup, verification,
    rewrite, sanitation, attachment (tracepoints / XDP dispatcher) and
    execution with event dispatch to attached programs. *)

type t = {
  kst : Bvf_kernel.Kstate.t;
  cov : Bvf_verifier.Coverage.t;
  mutable attached : (string * Bvf_verifier.Verifier.loaded) list;
  mutable event_depth : int;
}

val max_event_depth : int
(** Nesting bound for event-triggered program execution. *)

val create :
  ?cov:Bvf_verifier.Coverage.t -> ?failslab:Bvf_kernel.Failslab.t ->
  Bvf_kernel.Kconfig.t -> t
(** A fresh session.  [failslab] (default: disabled) is the campaign's
    fault-injection plan; it is shared, not copied, so its decision
    stream continues across session reboots. *)

val create_map : t -> Bvf_kernel.Map.def -> int
(** Create a map in the session's kernel; returns the fd. *)

val try_create_map : t -> Bvf_kernel.Map.def -> int option
(** Fallible {!create_map}: [None] is the BPF_MAP_CREATE syscall's
    -ENOMEM under fault injection. *)

(** Result of one load(+run) cycle. *)
type run_result = {
  verdict : (Bvf_verifier.Verifier.loaded, Bvf_verifier.Venv.verr) result;
  status : Exec.status option; (** [None] if never executed *)
  reports : Bvf_kernel.Report.t list; (** all new kernel reports *)
  insns_executed : int;
  witness : Bvf_kernel.Report.t list;
      (** witness-oracle escapes, when the config records witnesses *)
  verify_s : float;  (** wall time spent verifying *)
  sanitize_s : float;(** wall time of the fixup + sanitation rewrites *)
  exec_s : float;    (** wall time executing; 0 when rejected *)
  verify_w : float;  (** minor words allocated verifying *)
  sanitize_w : float;(** minor words of the fixup + sanitation rewrites *)
  exec_w : float;    (** minor words allocated executing *)
  vlog : string;     (** verifier log, whatever the verdict *)
  vstats : Bvf_verifier.Vstats.t option;
      (** veristat-style verifier performance counters; [None] when the
          load failed before analysis *)
}

val attach : t -> Bvf_verifier.Verifier.loaded -> unit
(** Register a program at its attach point (or the XDP dispatcher,
    arming the Bug#7 window). *)

val detach_all : t -> unit

val execute : t -> Bvf_verifier.Verifier.loaded -> Exec.result
(** Run a loaded program: XDP goes through the dispatcher; tracing
    programs also get one triggering of their attach point in its
    execution context. *)

val load_and_run :
  ?log_level:int -> ?prof:Bvf_util.Prof.t -> t ->
  Bvf_verifier.Verifier.request -> run_result
(** The complete cycle the fuzzer performs for each generated input.
    [log_level] (default 0) sizes the captured verifier log.  [prof]
    (default: disabled) records "verify" and "exec" spans, with
    sanitation charged as a post-hoc child of the verify span. *)
