(** The execution engine: a concrete interpreter standing in for the JIT.

    The program's own loads/stores use the raw (unchecked) memory path
    like native code; the [bpf_asan_*] calls injected by the sanitation
    rewrite consult KASAN shadow memory and raise indicator-#1 reports;
    helper calls may raise indicator-#2 reports.  Execution aborts as
    soon as a new report lands. *)

type status =
  | Finished of int64 (** normal exit, R0 *)
  | Aborted           (** a bug report was raised *)
  | Error of string   (** environment problem, not a bug *)

type result = {
  status : status;
  insns_executed : int;
  reports : Bvf_kernel.Report.t list; (** new reports from this run *)
  witness : Bvf_kernel.Report.t list;
      (** witness-oracle escapes ([Report.Witness_escape]),
          deduplicated; kept out of [reports] so an escape never aborts
          or reorders the run *)
}

val is_transient : status -> bool
(** [Error]s modeling transient resource exhaustion (injected
    allocation failures, ENOMEM): a campaign may retry these. *)

val fuel_limit : int
(** Watchdog: instruction budget per execution. *)

val packet_size : int

val run :
  Bvf_kernel.Kstate.t -> run_attached:(string -> unit) ->
  Bvf_verifier.Verifier.loaded -> result
(** Execute a loaded program once.  [run_attached name] is invoked for
    every attach-point event fired during execution (the loader installs
    the dispatch to attached programs, depth-limited). *)
