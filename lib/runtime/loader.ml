open Rimport

(* Session: one simulated kernel instance plus the programs loaded and
   attached into it — the equivalent of a fuzzer's long-lived test VM.
   The full bpf() load path runs here: map setup, verification, rewrite,
   sanitation, attachment (tracepoints, XDP dispatcher) and execution
   with event dispatch to attached programs. *)

type t = {
  kst : Kstate.t;
  cov : Coverage.t;
  mutable attached : (string * Verifier.loaded) list;
  mutable event_depth : int;
}

let max_event_depth = 3

let rec create ?(cov = Coverage.create ()) ?failslab (config : Kconfig.t) :
  t =
  let kst = Kstate.create ?failslab config in
  let t = { kst; cov; attached = []; event_depth = 0 } in
  (* install the event bridge: kernel-fired events run attached progs *)
  kst.Kstate.on_event <- (fun name -> fire_event t name);
  t

(* Run every program attached to event [name]; reentrant because nested
   executions fire further events (the Figure 2 recursion). *)
and fire_event (t : t) (name : string) : unit =
  if t.event_depth < max_event_depth then begin
    t.event_depth <- t.event_depth + 1;
    let prev_ctx = t.kst.Kstate.lock_ctx in
    List.iter
      (fun (attach_name, prog) ->
         if attach_name = name then begin
           (match Tracepoint.find name with
            | Some tp -> t.kst.Kstate.lock_ctx <- tp.Tracepoint.tp_ctx
            | None -> ());
           let _ =
             Exec.run t.kst ~run_attached:(fun n -> fire_event t n) prog
           in
           ()
         end)
      t.attached;
    t.kst.Kstate.lock_ctx <- prev_ctx;
    t.event_depth <- t.event_depth - 1
  end

let create_map (t : t) (def : Map.def) : int = Kstate.map_create t.kst def

(* Fallible variant: None is the BPF_MAP_CREATE syscall's -ENOMEM under
   fault injection.  Callers skip the map and carry on, as a fuzzer
   whose map setup failed would. *)
let try_create_map (t : t) (def : Map.def) : int option =
  Kstate.try_map_create t.kst def

(* Result of one load(+run) cycle. *)
type run_result = {
  verdict : (Verifier.loaded, Venv.verr) result;
  status : Exec.status option;    (* None if never executed *)
  reports : Report.t list;        (* all new kernel reports *)
  insns_executed : int;
  witness : Report.t list;        (* witness-oracle escapes (Kconfig
                                     witness); nested event runs are not
                                     collected *)
  verify_s : float;               (* wall time spent verifying *)
  sanitize_s : float;             (* wall time of fixup + sanitation *)
  exec_s : float;                 (* wall time executing (0 if rejected) *)
  verify_w : float;               (* minor words allocated verifying *)
  sanitize_w : float;             (* minor words of fixup + sanitation *)
  exec_w : float;                 (* minor words allocated executing *)
  vlog : string;                  (* verifier log, whatever the verdict *)
  vstats : Vstats.t option;       (* verifier performance counters; None
                                     when the load failed pre-analysis *)
}

let attach (t : t) (prog : Verifier.loaded) : unit =
  match prog.Verifier.l_attach with
  | Some tp ->
    t.attached <- (tp.Tracepoint.tp_name, prog) :: t.attached
  | None ->
    if prog.Verifier.l_prog_type = Prog.Xdp then begin
      let ok =
        Dispatcher.attach
          ~bug7:(Kstate.has_bug t.kst Kconfig.Bug7_dispatcher_race)
          t.kst.Kstate.dispatcher ~prog_id:prog.Verifier.l_id
      in
      ignore ok
    end

let detach_all (t : t) : unit =
  t.attached <- [];
  List.iter
    (fun id -> Dispatcher.detach t.kst.Kstate.dispatcher ~prog_id:id)
    (Array.to_list t.kst.Kstate.dispatcher.Dispatcher.slots
     |> List.filter_map (fun x -> x))

(* Execute a loaded program: XDP programs go through the dispatcher
   (the Bug#7 window), tracing programs are triggered via their attach
   point, everything else runs directly. *)
let execute (t : t) (prog : Verifier.loaded) : Exec.result =
  let baseline = Kstate.report_count t.kst in
  if prog.Verifier.l_prog_type = Prog.Xdp
     && not prog.Verifier.l_offload then begin
    match Dispatcher.dispatch t.kst.Kstate.dispatcher with
    | Error report ->
      Kstate.report t.kst report;
      { Exec.status = Exec.Aborted; insns_executed = 0;
        reports = [ report ]; witness = [] }
    | Ok _slot ->
      Exec.run t.kst ~run_attached:(fun n -> fire_event t n) prog
  end
  else begin
    let result =
      Exec.run t.kst ~run_attached:(fun n -> fire_event t n) prog
    in
    let witness = ref result.Exec.witness in
    (* the direct run above plus one triggering of the attach point *)
    (match prog.Verifier.l_attach with
     | Some tp when result.Exec.status <> Exec.Aborted ->
       (match Tracepoint.find tp.Tracepoint.tp_name with
        | Some tpd ->
          let prev = t.kst.Kstate.lock_ctx in
          t.kst.Kstate.lock_ctx <- tpd.Tracepoint.tp_ctx;
          let triggered =
            Exec.run t.kst ~run_attached:(fun n -> fire_event t n) prog
          in
          witness := !witness @ triggered.Exec.witness;
          t.kst.Kstate.lock_ctx <- prev
        | None -> ())
     | _ -> ());
    let all = Kstate.peek_reports t.kst in
    let fresh = List.filteri (fun i _ -> i >= baseline) all in
    let status =
      if fresh <> [] then Exec.Aborted else result.Exec.status
    in
    { result with Exec.status; reports = fresh; witness = !witness }
  end

(* The complete cycle the fuzzer performs for each generated input.
   [prof] (default: disabled) records "verify" and "exec" spans with a
   post-hoc "sanitize" child — the sanitation rewrites run inside the
   verifier's load and only report their time and allocation, so their
   span is charged at the tail of the verify span. *)
let load_and_run ?log_level ?(prof = Bvf_util.Prof.disabled) (t : t)
    (req : Verifier.request) : run_result =
  let baseline = Kstate.report_count t.kst in
  let fr = Bvf_util.Prof.start prof "verify" in
  let verdict, vlog, vstats =
    Verifier.load_with_stats t.kst ~cov:t.cov ?log_level req
  in
  (match verdict with
   | Ok prog ->
     Bvf_util.Prof.record prof ~name:"sanitize"
       ~dur_s:prog.Verifier.l_sanitize_s
       ~minor_w:prog.Verifier.l_sanitize_w ()
   | Error _ -> ());
  let load_s, load_w = Bvf_util.Prof.stop prof fr in
  match verdict with
  | Error e ->
    let all = Kstate.peek_reports t.kst in
    { verdict = Error e; status = None;
      reports = List.filteri (fun i _ -> i >= baseline) all;
      insns_executed = 0; witness = [];
      verify_s = load_s; sanitize_s = 0.; exec_s = 0.;
      verify_w = load_w; sanitize_w = 0.; exec_w = 0.; vlog; vstats }
  | Ok prog ->
    attach t prog;
    let fr = Bvf_util.Prof.start prof "exec" in
    let result = execute t prog in
    let exec_s, exec_w = Bvf_util.Prof.stop prof fr in
    let all = Kstate.peek_reports t.kst in
    { verdict = Ok prog; status = Some result.Exec.status;
      reports = List.filteri (fun i _ -> i >= baseline) all;
      insns_executed = result.Exec.insns_executed;
      witness = result.Exec.witness;
      verify_s = load_s -. prog.Verifier.l_sanitize_s;
      sanitize_s = prog.Verifier.l_sanitize_s; exec_s;
      verify_w = Float.max 0. (load_w -. prog.Verifier.l_sanitize_w);
      sanitize_w = prog.Verifier.l_sanitize_w; exec_w; vlog; vstats }
