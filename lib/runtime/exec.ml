open Rimport

(* The execution engine: a concrete interpreter standing in for the JIT.

   Memory behaviour follows the two-path model of {!Kmem}: the program's
   own loads/stores go through the raw (unchecked) path like native
   code, while the sanitizing bpf_asan calls injected by the rewrite
   pass consult KASAN shadow memory and report indicator-#1 anomalies.
   Helper calls may append indicator-#2 reports; execution aborts as
   soon as any new report lands.

   Attach points are honoured: executing a program runs any programs
   attached to events its helpers fire (tracepoints, the contention
   path), which is how the paper's deadlock bugs manifest. *)

type status =
  | Finished of int64 (* R0 *)
  | Aborted           (* a bug report was raised *)
  | Error of string   (* execution environment problem, not a bug *)

type result = {
  status : status;
  insns_executed : int;
  reports : Report.t list; (* new reports produced by this run *)
  witness : Report.t list;
      (* witness-oracle escapes (Report.Witness_escape), deduplicated.
         Kept out of [reports]: an escape is evidence, not an abort —
         execution continues so the run's primary outcome (and the
         campaign's determinism digest) is unchanged *)
}

(* Environment errors that model transient resource exhaustion (injected
   allocation failures): a campaign may retry these. *)
let is_transient (s : status) : bool =
  match s with
  | Error msg -> String.length msg >= 6 && String.sub msg 0 6 = "ENOMEM"
  | Finished _ | Aborted -> false

let fuel_limit = 65_536

(* Deterministic packet contents. *)
let packet_size = 96

let fill_packet (r : Kmem.region) : unit =
  for i = 0 to r.Kmem.size - 1 do
    Bytes.set r.Kmem.data i (Char.chr ((i * 7 + 13) land 0xff))
  done

(* Context scalar field values visible to the program. *)
let fill_ctx (layout : Prog.ctx_layout) (r : Kmem.region) : unit =
  List.iter
    (fun f ->
       match f.Prog.fkind with
       | Prog.Fk_scalar ->
         Word.set_le r.Kmem.data f.Prog.foff f.Prog.fsize
           (Int64.of_int ((f.Prog.foff * 31 + 5) land 0xffff))
       | Prog.Fk_pkt_data | Prog.Fk_pkt_end -> ())
    layout.Prog.fields

(* -- Pre-decoded programs --------------------------------------------- *)

(* Re-dispatching on the [Insn.t] variant every step repeats work that
   is fixed for the lifetime of a loaded program: register projections,
   jump-target arithmetic, immediate widening, helper/kfunc table
   lookups, the fired-tracepoint list and the per-pc exception-table
   flag.  A loaded program is compiled once into a flat decoded op
   table and the interpreter runs over that. *)

type dsrc = D_imm of int64 | D_reg of int

type dop =
  | D_neg of int                        (* 64-bit neg dst *)
  | D_neg32 of int
  | D_alu of Insn.alu_op * int * dsrc   (* 64-bit *)
  | D_alu32 of Insn.alu_op * int * dsrc
  | D_endian of bool * int * int        (* swap, bits, dst *)
  | D_ld64 of int * int64
  | D_ld64_unresolved
  | D_ldx of { size : int; dst : int; src : int; off : int; handled : bool }
  | D_st of { size : int; dst : int; off : int; imm : int64 }
  | D_stx of { size : int; dst : int; src : int; off : int }
  | D_atomic of { size : int; w32 : bool; aop : Insn.atomic_op;
                  fetch : bool; dst : int; src : int; off : int }
  | D_ja of int                         (* absolute target *)
  | D_jmp of { op32 : bool; cond : Insn.cond; dst : int; src : dsrc;
               target : int }
  | D_asan of Helper.t                  (* internal sanitizer call *)
  | D_helper of { h : Helper.t; tps : Tracepoint.t list }
  | D_helper_unknown of int
  | D_kfunc of Helper.kfunc
  | D_kfunc_unknown of int
  | D_local of int                      (* bpf2bpf target, absolute *)
  | D_exit

let decode_insn (aux : Venv.aux array) (pc : int) (insn : Insn.t) : dop =
  let ri = Insn.reg_to_int in
  match insn with
  | Insn.Alu { op64; op = Insn.Neg; dst; _ } ->
    if op64 then D_neg (ri dst) else D_neg32 (ri dst)
  | Insn.Alu { op64; op; dst; src } ->
    let s =
      match src with
      | Insn.Imm i -> D_imm (Int64.of_int32 i)
      | Insn.Reg r -> D_reg (ri r)
    in
    if op64 then D_alu (op, ri dst, s) else D_alu32 (op, ri dst, s)
  | Insn.Endian { swap; bits; dst } -> D_endian (swap, bits, ri dst)
  | Insn.Ld_imm64 (dst, Insn.Const v) -> D_ld64 (ri dst, v)
  | Insn.Ld_imm64 (_, _) -> D_ld64_unresolved
  | Insn.Ldx { sz; dst; src; off } ->
    D_ldx { size = Insn.size_bytes sz; dst = ri dst; src = ri src; off;
            handled = aux.(pc).Venv.exception_handled }
  | Insn.St { sz; dst; off; imm } ->
    D_st { size = Insn.size_bytes sz; dst = ri dst; off;
           imm = Int64.of_int32 imm }
  | Insn.Stx { sz; dst; src; off } ->
    D_stx { size = Insn.size_bytes sz; dst = ri dst; src = ri src; off }
  | Insn.Atomic { sz; op; fetch; dst; src; off } ->
    D_atomic { size = Insn.size_bytes sz; w32 = (sz = Insn.W); aop = op;
               fetch; dst = ri dst; src = ri src; off }
  | Insn.Ja off -> D_ja (pc + 1 + off)
  | Insn.Jmp { op32; cond; dst; src; off } ->
    let s =
      match src with
      | Insn.Imm i -> D_imm (Int64.of_int32 i)
      | Insn.Reg r -> D_reg (ri r)
    in
    D_jmp { op32; cond; dst = ri dst; src = s; target = pc + 1 + off }
  | Insn.Call (Insn.Helper id) -> begin
      match Helper.find id with
      | None -> D_helper_unknown id
      | Some h when h.Helper.internal -> D_asan h
      | Some h ->
        D_helper { h; tps = Tracepoint.fired_by_helper h.Helper.name }
    end
  | Insn.Call (Insn.Kfunc id) -> begin
      match Helper.find_kfunc id with
      | None -> D_kfunc_unknown id
      | Some kf -> D_kfunc kf
    end
  | Insn.Call (Insn.Local off) -> D_local (pc + 1 + off)
  | Insn.Exit -> D_exit

let decode (prog : Verifier.loaded) : dop array =
  Array.mapi (decode_insn prog.Verifier.l_aux) prog.Verifier.l_insns

(* Per-domain decode cache keyed by physical equality of the loaded
   program.  A few entries, most-recently-used first: within one
   execution a parent program and the programs attached to its events
   alternate, so a single slot would thrash. *)
let decode_cache_cap = 8

let decode_cache : (Verifier.loaded * dop array) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let decoded (prog : Verifier.loaded) : dop array =
  let cache = Domain.DLS.get decode_cache in
  match List.find_opt (fun (p, _) -> p == prog) !cache with
  | Some (_, dops) -> dops
  | None ->
    let dops = decode prog in
    let keep = List.filteri (fun i _ -> i < decode_cache_cap - 1) !cache in
    cache := (prog, dops) :: keep;
    dops

type env = {
  kst : Kstate.t;
  prog : Verifier.loaded;
  regs : int64 array; (* R0..R11 *)
  mutable pc : int;
  mutable fuel : int;
  mutable call_stack : (int * int64 array * Kmem.region) list;
      (* return pc, saved R6..R10, stack region to free *)
  ctx_region : Kmem.region;
  pkt_region : Kmem.region option;
  henv : Helpers_impl.env;
  baseline_reports : int;
  (* nested program execution on events *)
  run_attached : string -> unit;
  (* witness oracle: escapes accumulate here, deduplicated by
     fingerprint, never through Kstate.report (which would abort) *)
  mutable witness_escapes : Report.t list;
  mutable witness_count : int; (* = List.length witness_escapes *)
  witness_seen : (string, unit) Hashtbl.t;
}

(* Cap per run: a systematically wrong bound would otherwise record an
   escape at every loop iteration. *)
let max_witness_escapes = 16

(* Check the concrete register file against the abstract states the
   verifier recorded for this pc (R0..R10 of the innermost frame).
   The recorded-escape count is a mutable int so the cap check is O(1),
   and scanning stops as soon as the cap is reached. *)
let check_witness (e : env) ~(pc : int) : unit =
  if e.witness_count < max_witness_escapes then
    match e.prog.Verifier.l_aux.(pc).Venv.witness with
    | None -> () (* rewrite-emitted insn, or never analyzed *)
    | Some doms ->
      let i = ref 0 in
      while !i <= 10 && e.witness_count < max_witness_escapes do
        let v = e.regs.(!i) in
        if not (Bvf_verifier.Witness.contains doms.(!i) v) then begin
          let r =
            Report.make ~pc Report.Sanitizer
              (Report.Witness_escape
                 { wreg = !i; wvalue = v;
                   wclaim = Bvf_verifier.Witness.describe doms.(!i);
                   wclass = Bvf_verifier.Witness.wclass doms.(!i) })
          in
          let fp = Report.fingerprint r in
          if not (Hashtbl.mem e.witness_seen fp) then begin
            Hashtbl.replace e.witness_seen fp ();
            e.witness_escapes <- r :: e.witness_escapes;
            e.witness_count <- e.witness_count + 1
          end
        end;
        incr i
      done

let new_reports (e : env) : Report.t list =
  let all = Kstate.peek_reports e.kst in
  let fresh = List.length all - e.baseline_reports in
  if fresh <= 0 then []
  else
    (* peek returns oldest-first *)
    List.filteri (fun i _ -> i >= e.baseline_reports) all

let has_new_report (e : env) : bool =
  Kstate.report_count e.kst > e.baseline_reports

let alu64 (op : Insn.alu_op) (d : int64) (s : int64) : int64 =
  match op with
  | Insn.Add -> Int64.add d s
  | Insn.Sub -> Int64.sub d s
  | Insn.Mul -> Int64.mul d s
  | Insn.Div -> Word.udiv d s
  | Insn.Mod -> Word.umod d s
  | Insn.Or -> Int64.logor d s
  | Insn.And -> Int64.logand d s
  | Insn.Xor -> Int64.logxor d s
  | Insn.Lsh -> Word.shl64 d s
  | Insn.Rsh -> Word.shr64 d s
  | Insn.Arsh -> Word.ashr64 d s
  | Insn.Neg -> Int64.neg d
  | Insn.Mov -> s

let alu32 (op : Insn.alu_op) (d : int64) (s : int64) : int64 =
  let d32 = Word.to_u32 d and s32 = Word.to_u32 s in
  match op with
  | Insn.Add -> Word.to_u32 (Int64.add d32 s32)
  | Insn.Sub -> Word.to_u32 (Int64.sub d32 s32)
  | Insn.Mul -> Word.to_u32 (Int64.mul d32 s32)
  | Insn.Div -> Word.to_u32 (Word.udiv d32 s32)
  | Insn.Mod -> Word.to_u32 (Word.umod d32 s32)
  | Insn.Or -> Word.to_u32 (Int64.logor d32 s32)
  | Insn.And -> Word.to_u32 (Int64.logand d32 s32)
  | Insn.Xor -> Word.to_u32 (Int64.logxor d32 s32)
  | Insn.Lsh -> Word.shl32 d32 s32
  | Insn.Rsh -> Word.shr32 d32 s32
  | Insn.Arsh -> Word.ashr32 d32 s32
  | Insn.Neg -> Word.to_u32 (Int64.neg d32)
  | Insn.Mov -> s32

let eval_cond (op32 : bool) (cond : Insn.cond) (d : int64) (s : int64) :
  bool =
  let d, s =
    if op32 then (Word.to_u32 d, Word.to_u32 s) else (d, s)
  in
  let ds, ss = if op32 then (Word.sext32 d, Word.sext32 s) else (d, s) in
  match cond with
  | Insn.Jeq -> d = s
  | Insn.Jne -> d <> s
  | Insn.Jgt -> Word.ugt d s
  | Insn.Jge -> Word.uge d s
  | Insn.Jlt -> Word.ult d s
  | Insn.Jle -> Word.ule d s
  | Insn.Jsgt -> ds > ss
  | Insn.Jsge -> ds >= ss
  | Insn.Jslt -> ds < ss
  | Insn.Jsle -> ds <= ss
  | Insn.Jset -> Int64.logand d s <> 0L

(* The sanitizing functions: KASAN checks driven from eBPF level.
   All registers except R0's return value are preserved (the paper's
   extended-stack backup); since these are R_void, everything holds. *)
let exec_asan (e : env) ~(pc : int) (h : Helper.t) : unit =
  let addr = e.regs.(1) in
  let code = h.Helper.id - Helper.asan_base in
  if code = 0x20 then
    (* bpf_asan_check_alu is only reached when the inline comparison
       against the limit already failed *)
    Kstate.report e.kst
      (Report.make ~pc Report.Sanitizer
         (Report.Alu_limit { actual = addr; limit = -1L; is_sub = false }))
  else if code >= 0x30 then begin
    (* probe variant: faulting (NULL/unmapped) addresses are handled by
       the exception table; only KASAN poisoning is a bug *)
    let size = code land 0x0f in
    match Kmem.check e.kst.Kstate.mem Kmem.Read ~addr ~size with
    | Ok () -> ()
    | Error ({ Kmem.fkind = Kmem.Oob (Bvf_kernel.Shadow.Redzone
                                     | Bvf_kernel.Shadow.Freed); _ } as
             fault) ->
      Kstate.report e.kst
        (Report.make ~pc Report.Sanitizer (Report.Mem_fault fault))
    | Error _ -> ()
  end
  else begin
    let load = code < 0x10 in
    let size = code land 0x0f in
    let access = if load then Kmem.Read else Kmem.Write in
    match Kmem.check e.kst.Kstate.mem access ~addr ~size with
    | Ok () -> ()
    | Error fault ->
      Kstate.report e.kst
        (Report.make ~pc Report.Sanitizer (Report.Mem_fault fault))
  end

(* Context pkt_data/pkt_end fields: the ctx rewrite loads real pointers. *)
let ctx_field_at (e : env) (addr : int64) (size : int) :
  Prog.field option =
  let base = e.ctx_region.Kmem.base in
  let off = Int64.to_int (Int64.sub addr base) in
  if Word.uge addr base
     && off < e.ctx_region.Kmem.size then
    Prog.field_at (Prog.ctx_layout e.prog.Verifier.l_prog_type) ~off ~size
  else None

let exec_load (e : env) ~(pc : int) ~(size : int) ~(dst : int)
    ~(src : int) ~(off : int) ~(handled : bool) : bool =
  let addr = Int64.add e.regs.(src) (Int64.of_int off) in
  (* ctx packet-pointer fields materialize real pointers *)
  match ctx_field_at e addr size with
  | Some { Prog.fkind = Prog.Fk_pkt_data; _ } ->
    e.regs.(dst) <-
      (match e.pkt_region with Some p -> p.Kmem.base | None -> 0L);
    true
  | Some { Prog.fkind = Prog.Fk_pkt_end; _ } ->
    e.regs.(dst) <-
      (match e.pkt_region with
       | Some p -> Int64.add p.Kmem.base (Int64.of_int p.Kmem.size)
       | None -> 0L);
    true
  | _ -> begin
      match Kmem.raw_load e.kst.Kstate.mem ~addr ~size with
      | Ok v ->
        e.regs.(dst) <- v;
        true
      | Error fault ->
        if handled then begin
          (* BTF probe-read semantics: fault yields zero, no report *)
          e.regs.(dst) <- 0L;
          true
        end
        else begin
          Kstate.report e.kst
            (Report.make ~pc Report.Bpf_native (Report.Mem_fault fault));
          false
        end
    end

let exec_store (e : env) ~(pc : int) ~(size : int) ~(addr_reg : int)
    ~(off : int) (v : int64) : bool =
  let addr = Int64.add e.regs.(addr_reg) (Int64.of_int off) in
  match Kmem.raw_store e.kst.Kstate.mem ~addr ~size v with
  | Ok () -> true
  | Error fault ->
    Kstate.report e.kst
      (Report.make ~pc Report.Bpf_native (Report.Mem_fault fault));
    false

let exec_atomic (e : env) ~(pc : int) ~(size : int) ~(w32 : bool)
    ~(aop : Insn.atomic_op) ~(fetch : bool) ~(dst : int) ~(src : int)
    ~(off : int) : bool =
  let addr = Int64.add e.regs.(dst) (Int64.of_int off) in
  let mem = e.kst.Kstate.mem in
  match Kmem.raw_load mem ~addr ~size with
  | Error fault ->
    Kstate.report e.kst
      (Report.make ~pc Report.Bpf_native (Report.Mem_fault fault));
    false
  | Ok old ->
    let operand = e.regs.(src) in
    let updated =
      match aop with
      | Insn.A_add -> Int64.add old operand
      | Insn.A_or -> Int64.logor old operand
      | Insn.A_and -> Int64.logand old operand
      | Insn.A_xor -> Int64.logxor old operand
      | Insn.A_xchg -> operand
      | Insn.A_cmpxchg -> if old = e.regs.(0) then operand else old
    in
    let updated = if w32 then Word.to_u32 updated else updated in
    (match Kmem.raw_store mem ~addr ~size updated with
     | Error fault ->
       Kstate.report e.kst
         (Report.make ~pc Report.Bpf_native (Report.Mem_fault fault));
       false
     | Ok () ->
       if aop = Insn.A_cmpxchg then e.regs.(0) <- old
       else if fetch then e.regs.(src) <- old;
       true)

(* caller-saved clobber after helper/kfunc calls: deterministic poison *)
let poison = 0xDEAD_BEEF_0000_0000L

(* Run the program to completion over its decoded op table. *)
let run_loop (e : env) (dops : dop array) : status =
  let n = Array.length dops in
  let regs = e.regs in
  let witness_on = e.kst.Kstate.config.Kconfig.witness in
  let rec step () : status =
    if e.fuel <= 0 then begin
      Kstate.report e.kst
        (Report.make ~pc:e.pc Report.Bpf_native Report.Runaway_execution);
      Aborted
    end
    else if e.pc < 0 || e.pc >= n then
      Error (Printf.sprintf "pc %d out of range" e.pc)
    else begin
      e.fuel <- e.fuel - 1;
      let pc = e.pc in
      if witness_on then check_witness e ~pc;
      match Array.unsafe_get dops pc with
      | D_alu (op, dst, src) ->
        regs.(dst) <- alu64 op regs.(dst) (dval src);
        advance ()
      | D_alu32 (op, dst, src) ->
        regs.(dst) <- alu32 op regs.(dst) (dval src);
        advance ()
      | D_neg dst ->
        regs.(dst) <- Int64.neg regs.(dst);
        advance ()
      | D_neg32 dst ->
        regs.(dst) <- Word.to_u32 (Int64.neg (Word.to_u32 regs.(dst)));
        advance ()
      | D_endian (swap, bits, dst) ->
        let v = regs.(dst) in
        regs.(dst) <-
          (if not swap then Word.zext bits v
           else
             match bits with
             | 16 -> Word.bswap16 v
             | 32 -> Word.bswap32 v
             | _ -> Word.bswap64 v);
        advance ()
      | D_ld64 (dst, v) ->
        regs.(dst) <- v;
        advance ()
      | D_ld64_unresolved ->
        Error "unresolved ld_imm64 pseudo (program not fixed up)"
      | D_ldx { size; dst; src; off; handled } ->
        if exec_load e ~pc ~size ~dst ~src ~off ~handled then advance ()
        else Aborted
      | D_st { size; dst; off; imm } ->
        if exec_store e ~pc ~size ~addr_reg:dst ~off imm then advance ()
        else Aborted
      | D_stx { size; dst; src; off } ->
        if exec_store e ~pc ~size ~addr_reg:dst ~off regs.(src) then
          advance ()
        else Aborted
      | D_atomic { size; w32; aop; fetch; dst; src; off } ->
        if exec_atomic e ~pc ~size ~w32 ~aop ~fetch ~dst ~src ~off then
          advance ()
        else Aborted
      | D_ja target ->
        e.pc <- target;
        step ()
      | D_jmp { op32; cond; dst; src; target } ->
        e.pc <-
          (if eval_cond op32 cond regs.(dst) (dval src) then target
           else pc + 1);
        step ()
      | D_asan h ->
        exec_asan e ~pc h;
        if has_new_report e then Aborted else advance ()
      | D_helper { h; tps } ->
        (* helpers fire their kprobe attach points *)
        List.iter (fun tp -> e.run_attached tp.Tracepoint.tp_name) tps;
        if has_new_report e then Aborted
        else begin
          let args = Array.init 5 (fun i -> regs.(i + 1)) in
          let r0 = Helpers_impl.call e.kst e.henv ~pc h args in
          regs.(0) <- r0;
          for i = 1 to 5 do regs.(i) <- poison done;
          if has_new_report e then Aborted else advance ()
        end
      | D_helper_unknown id ->
        Kstate.report e.kst
          (Report.make ~pc (Report.Kernel_routine "bpf_call")
             (Report.Warn (Printf.sprintf "call to unknown helper %d" id)));
        Aborted
      | D_kfunc kf ->
        let args = Array.init 5 (fun i -> regs.(i + 1)) in
        regs.(0) <- Helpers_impl.call_kfunc e.kst ~pc kf args;
        for i = 1 to 5 do regs.(i) <- poison done;
        if has_new_report e then Aborted else advance ()
      | D_kfunc_unknown id ->
        Kstate.report e.kst
          (Report.make ~pc (Report.Kernel_routine "bpf_kfunc")
             (Report.Warn (Printf.sprintf "unknown kfunc %d" id)));
        Aborted
      | D_local target ->
        (* save callee-saved registers and the frame pointer, switch to
           a fresh stack.  The frame allocation can fail under fault
           injection: a clean environment error, not a bug. *)
        if
          Bvf_kernel.Failslab.should_fail e.kst.Kstate.failslab
            ~site:"bpf2bpf_stack"
        then Error "ENOMEM: bpf2bpf stack frame allocation failed"
        else begin
          let saved = Array.init 5 (fun i -> regs.(i + 6)) in
          let stack =
            Kmem.alloc e.kst.Kstate.mem
              ~kind:(Kmem.Stack (List.length e.call_stack + 1))
              ~size:Prog.stack_size
          in
          e.call_stack <- (pc + 1, saved, stack) :: e.call_stack;
          regs.(10) <-
            Int64.add stack.Kmem.base (Int64.of_int Prog.stack_size);
          e.pc <- target;
          step ()
        end
      | D_exit -> begin
          match e.call_stack with
          | [] -> Finished regs.(0)
          | (ret_pc, saved, stack) :: rest ->
            e.call_stack <- rest;
            Array.iteri (fun i v -> regs.(i + 6) <- v) saved;
            Kmem.free e.kst.Kstate.mem stack;
            e.pc <- ret_pc;
            step ()
        end
    end
  and dval (s : dsrc) : int64 =
    match s with D_imm v -> v | D_reg r -> regs.(r)
  and advance () =
    e.pc <- e.pc + 1;
    step ()
  in
  step ()

(* Execute [prog] once against [kst].  [run_attached name] is invoked
   for every event fired during execution (installed by the loader to
   run attached programs; depth-limited there). *)
let run (kst : Kstate.t) ~(run_attached : string -> unit)
    (prog : Verifier.loaded) : result =
  (* Bug#11: device-offloaded programs must never run on the host *)
  if prog.Verifier.l_offload then begin
    if Kstate.has_bug kst Kconfig.Bug11_xdp_host_exec then begin
      Kstate.report kst
        (Report.make (Report.Kernel_routine "bpf_prog_run_xdp")
           (Report.Warn "device-bound program executed on the host"));
      { status = Aborted; insns_executed = 0;
        reports =
          (match Kstate.peek_reports kst with
           | [] -> []
           | l -> [ List.nth l (List.length l - 1) ]);
        witness = [] }
    end
    else
      { status = Error "offloaded program cannot run on host";
        insns_executed = 0; reports = []; witness = [] }
  end
  else begin
    let baseline = Kstate.report_count kst in
    let mem = kst.Kstate.mem in
    let layout = Prog.ctx_layout prog.Verifier.l_prog_type in
    (* per-run scratch: any allocation may fail under fault injection,
       in which case the run never starts — a clean environment error *)
    let enomem taken what =
      List.iter (Kstate.pool_return kst) taken;
      { status =
          Error (Printf.sprintf "ENOMEM: %s allocation failed" what);
        insns_executed = 0; reports = []; witness = [] }
    in
    match
      Kstate.try_pool_take kst ~site:"exec_stack" ~kind:(Kmem.Stack 0)
        ~size:Prog.stack_size
    with
    | None -> enomem [] "bpf stack"
    | Some stack ->
    match
      Kstate.try_pool_take kst ~site:"exec_ctx" ~kind:Kmem.Ctx
        ~size:layout.Prog.ctx_size
    with
    | None -> enomem [ stack ] "context"
    | Some ctx_region ->
    match
      (if Prog.has_packet_access prog.Verifier.l_prog_type then
         match
           Kstate.try_pool_take kst ~site:"exec_packet" ~kind:Kmem.Packet
             ~size:packet_size
         with
         | None -> `Fail
         | Some p ->
           fill_packet p;
           `Take (Some p)
       else `Take None)
    with
    | `Fail -> enomem [ stack; ctx_region ] "packet"
    | `Take pkt_region ->
    fill_ctx layout ctx_region;
    let regs = Array.make 12 0L in
    regs.(1) <- ctx_region.Kmem.base;
    regs.(10) <- Int64.add stack.Kmem.base (Int64.of_int Prog.stack_size);
    let e =
      {
        kst;
        prog;
        regs;
        pc = 0;
        fuel = fuel_limit;
        call_stack = [];
        ctx_region;
        pkt_region;
        henv = { Helpers_impl.pkt = pkt_region };
        baseline_reports = baseline;
        run_attached;
        witness_escapes = [];
        witness_count = 0;
        witness_seen = Hashtbl.create 4;
      }
    in
    kst.Kstate.prog_depth <- kst.Kstate.prog_depth + 1;
    let status = run_loop e (decoded prog) in
    kst.Kstate.prog_depth <- kst.Kstate.prog_depth - 1;
    (* free leftover bpf2bpf stacks; return the scratch regions *)
    List.iter (fun (_, _, s) -> Kmem.free mem s) e.call_stack;
    Kstate.pool_return kst stack;
    Kstate.pool_return kst ctx_region;
    (match pkt_region with
     | Some p -> Kstate.pool_return kst p
     | None -> ());
    if kst.Kstate.prog_depth = 0 then Kstate.end_of_execution kst;
    let reports = new_reports e in
    let status = if reports <> [] && status <> Aborted then Aborted
      else status in
    { status; insns_executed = fuel_limit - e.fuel; reports;
      witness = List.rev e.witness_escapes }
  end
