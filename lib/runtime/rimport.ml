(* Short aliases for the substrate modules used by the runtime. *)

module Word = Bvf_ebpf.Word
module Version = Bvf_ebpf.Version
module Insn = Bvf_ebpf.Insn
module Asm = Bvf_ebpf.Asm
module Prog = Bvf_ebpf.Prog
module Helper = Bvf_ebpf.Helper
module Kmem = Bvf_kernel.Kmem
module Kconfig = Bvf_kernel.Kconfig
module Kstate = Bvf_kernel.Kstate
module Map = Bvf_kernel.Map
module Report = Bvf_kernel.Report
module Lockdep = Bvf_kernel.Lockdep
module Tracepoint = Bvf_kernel.Tracepoint
module Dispatcher = Bvf_kernel.Dispatcher
module Helpers_impl = Bvf_kernel.Helpers_impl
module Verifier = Bvf_verifier.Verifier
module Venv = Bvf_verifier.Venv
module Coverage = Bvf_verifier.Coverage
module Regstate = Bvf_verifier.Regstate
module Vstats = Bvf_verifier.Vstats
