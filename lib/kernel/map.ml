open Import

(* eBPF maps backed by simulated kernel memory.

   - Array maps: one contiguous allocation (values adjacent, as in the
     kernel), so only accesses past the whole array trip KASAN.
   - Hash maps: one allocation per element, so inter-element overflows
     are caught; elements deleted by programs are freed only at the end
     of the execution (RCU grace period), matching kernel lifetime rules.
   - Ring buffers: reserve/submit chunk allocation with reference
     semantics the verifier must enforce.

   The hash-map delete path carries injected Bug#9: when the bucket
   lock cannot be taken, the buggy slow path iterates one slot past the
   bucket array, an OOB read inside a kernel routine (indicator #2). *)

type map_type = Array_map | Hash_map | Ringbuf

let map_type_to_string = function
  | Array_map -> "array"
  | Hash_map -> "hash"
  | Ringbuf -> "ringbuf"

type def = {
  mtype : map_type;
  key_size : int;
  value_size : int;
  max_entries : int;
  has_spin_lock : bool; (* value starts with a 4-byte bpf_spin_lock *)
}

let array_def ?(value_size = 48) ?(max_entries = 4) () =
  { mtype = Array_map; key_size = 4; value_size; max_entries;
    has_spin_lock = false }

let hash_def ?(key_size = 8) ?(value_size = 48) ?(max_entries = 8)
    ?(has_spin_lock = false) () =
  { mtype = Hash_map; key_size; value_size; max_entries; has_spin_lock }

let ringbuf_def ?(max_entries = 4096) () =
  { mtype = Ringbuf; key_size = 0; value_size = 0; max_entries;
    has_spin_lock = false }

type backing =
  | Array_backing of Kmem.region
  | Hash_backing of {
      elems : (string, Kmem.region) Hashtbl.t;
      buckets : Kmem.region; (* internal bucket table, Bug#9's victim *)
      mutable delete_count : int;
    }
  | Ringbuf_backing of { mutable live_chunks : Kmem.region list }

type t = {
  id : int;
  def : def;
  backing : backing;
  mutable deferred_free : Kmem.region list;
}

type error =
  | E_no_space
  | E_no_such_key
  | E_bad_op of string
  | E_nomem (* injected allocation failure (failslab) *)

let error_to_string = function
  | E_no_space -> "E2BIG: map full"
  | E_no_such_key -> "ENOENT: no such key"
  | E_bad_op s -> Printf.sprintf "EINVAL: %s" s
  | E_nomem -> "ENOMEM: allocation failed"

let create (mem : Kmem.t) ~(id : int) (def : def) : t =
  let backing =
    match def.mtype with
    | Array_map ->
      Array_backing
        (Kmem.alloc mem ~kind:(Kmem.Map_array id)
           ~size:(def.value_size * def.max_entries))
    | Hash_map ->
      Hash_backing
        {
          elems = Hashtbl.create 16;
          buckets =
            Kmem.alloc mem ~kind:(Kmem.Kernel_internal "htab_buckets")
              ~size:(8 * def.max_entries);
          delete_count = 0;
        }
    | Ringbuf -> Ringbuf_backing { live_chunks = [] }
  in
  { id; def; backing; deferred_free = [] }

let key_to_string (key : Bytes.t) : string = Bytes.to_string key

(* Address of the value for [key], or None (NULL) when absent. *)
let lookup (t : t) ~(key : Bytes.t) : int64 option =
  match t.backing with
  | Array_backing region ->
    let idx = Int64.to_int (Word.get_le key 0 4) in
    if idx >= 0 && idx < t.def.max_entries then
      Some (Int64.add region.Kmem.base (Int64.of_int (idx * t.def.value_size)))
    else None
  | Hash_backing h -> begin
      match Hashtbl.find_opt h.elems (key_to_string key) with
      | Some region when region.Kmem.live -> Some region.Kmem.base
      | Some _ | None -> None
    end
  | Ringbuf_backing _ -> None

let entry_count (t : t) : int =
  match t.backing with
  | Array_backing _ -> t.def.max_entries
  | Hash_backing h -> Hashtbl.length h.elems
  | Ringbuf_backing r -> List.length r.live_chunks

let update ?failslab (mem : Kmem.t) (t : t) ~(key : Bytes.t)
    ~(value : Bytes.t) : (unit, error) result =
  (* inserting a fresh hash element allocates; in-place updates do not *)
  let elem_alloc_fails () =
    match failslab with
    | Some plan -> Failslab.should_fail plan ~site:"htab_elem_alloc"
    | None -> false
  in
  match t.backing with
  | Array_backing region ->
    let idx = Int64.to_int (Word.get_le key 0 4) in
    if idx < 0 || idx >= t.def.max_entries then Error E_no_such_key
    else begin
      Bytes.blit value 0 region.Kmem.data (idx * t.def.value_size)
        (min (Bytes.length value) t.def.value_size);
      Ok ()
    end
  | Hash_backing h ->
    let ks = key_to_string key in
    (match Hashtbl.find_opt h.elems ks with
     | Some region when region.Kmem.live ->
       Bytes.blit value 0 region.Kmem.data 0
         (min (Bytes.length value) t.def.value_size);
       Ok ()
     | Some _ | None ->
       if Hashtbl.length h.elems >= t.def.max_entries then Error E_no_space
       else if elem_alloc_fails () then Error E_nomem
       else begin
         let region =
           Kmem.alloc mem ~kind:(Kmem.Map_elem t.id) ~size:t.def.value_size
         in
         Bytes.blit value 0 region.Kmem.data 0
           (min (Bytes.length value) t.def.value_size);
         Hashtbl.replace h.elems ks region;
         Ok ()
       end)
  | Ringbuf_backing _ -> Error (E_bad_op "update on ringbuf")

(* Deletion.  Hash map elements are defer-freed (RCU); Bug#9 makes the
   contended slow path read one slot beyond the bucket table, which the
   KASAN-checked kernel routine catches.  Returns the internal fault so
   the caller (helper implementation) can surface it as indicator #2. *)
let delete ?(bug9 = false) (mem : Kmem.t) (t : t) ~(key : Bytes.t) :
  (unit, error) result * Kmem.fault option =
  match t.backing with
  | Array_backing _ -> (Error (E_bad_op "delete on array map"), None)
  | Hash_backing h ->
    h.delete_count <- h.delete_count + 1;
    (* every third delete simulates losing the bucket trylock race *)
    let contended = h.delete_count mod 3 = 0 in
    let fault =
      if contended && bug9 then begin
        let buckets = h.buckets in
        let past_end =
          Int64.add buckets.Kmem.base (Int64.of_int buckets.Kmem.size)
        in
        match Kmem.checked_load mem ~addr:past_end ~size:8 with
        | Error f -> Some f
        | Ok _ -> None
      end
      else None
    in
    let ks = key_to_string key in
    (match Hashtbl.find_opt h.elems ks with
     | Some region when region.Kmem.live ->
       Hashtbl.remove h.elems ks;
       t.deferred_free <- region :: t.deferred_free;
       (Ok (), fault)
     | Some _ | None -> (Error E_no_such_key, fault))
  | Ringbuf_backing _ -> (Error (E_bad_op "delete on ringbuf"), None)

let ringbuf_reserve ?failslab (mem : Kmem.t) (t : t) ~(size : int) :
  int64 option =
  match t.backing with
  | Ringbuf_backing r ->
    if size <= 0 || size > t.def.max_entries then None
    else if
      (match failslab with
       | Some plan -> Failslab.should_fail plan ~site:"ringbuf_reserve"
       | None -> false)
    then None (* the program sees NULL, as a real reserve failure *)
    else begin
      let chunk = Kmem.alloc mem ~kind:(Kmem.Ringbuf_chunk t.id) ~size in
      r.live_chunks <- chunk :: r.live_chunks;
      Some chunk.Kmem.base
    end
  | Array_backing _ | Hash_backing _ -> None

let ringbuf_release (mem : Kmem.t) (t : t) ~(addr : int64) : bool =
  match t.backing with
  | Ringbuf_backing r -> begin
      match List.find_opt (fun c -> c.Kmem.base = addr) r.live_chunks with
      | Some chunk ->
        r.live_chunks <-
          List.filter (fun c -> c.Kmem.base <> addr) r.live_chunks;
        Kmem.free mem chunk;
        true
      | None -> false
    end
  | Array_backing _ | Hash_backing _ -> false

(* End of a program execution: the RCU grace period elapses and deferred
   frees happen, poisoning the shadow for subsequent executions. *)
let end_of_execution (mem : Kmem.t) (t : t) : unit =
  List.iter (Kmem.free mem) t.deferred_free;
  t.deferred_free <- []
