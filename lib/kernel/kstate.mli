(** One simulated kernel instance ("the VM"): memory, maps, BTF objects,
    lockdep, the dispatcher and the accumulated bug reports.  A fuzzing
    campaign keeps an instance alive across many program loads, like a
    fuzzer reusing a VM until it crashes. *)

type t = {
  config : Kconfig.t;
  mem : Kmem.t;
  failslab : Failslab.t;
      (** fault-injection plan; owned by the campaign so the decision
          stream survives reboots of this instance *)
  lockdep : Lockdep.t;
  dispatcher : Dispatcher.t;
  mutable maps : (int * Map.t) list;          (** fd -> map *)
  mutable map_addrs : (int64 * Map.t) list;   (** kernel address -> map *)
  mutable next_fd : int;
  mutable next_map_id : int;
  mutable next_prog_id : int;
  mutable btf_regions : (int * Kmem.region) list;
  mutable reports : Report.t list;
  mutable report_count : int;
      (** [List.length reports], maintained incrementally so per-step
          "did a new report land?" checks are O(1) *)
  mutable time_ns : int64;
  mutable prandom_state : int64;
  mutable current_pid : int64;
  mutable lock_ctx : Lockdep.context;
      (** execution context, maintained by the runtime *)
  mutable prog_depth : int; (** nesting of program executions *)
  mutable on_event : string -> unit;
      (** callback installed by the runtime: run programs attached to an
          attach point (decouples the kernel from the interpreter) *)
  mutable exec_pool : Kmem.region list;
      (** per-cpu execution scratch reused across runs *)
}

val create : ?failslab:Failslab.t -> Kconfig.t -> t
(** A fresh instance.  [failslab] defaults to a disabled plan. *)

val has_bug : t -> Kconfig.bug -> bool

val report : t -> Report.t -> unit
val take_reports : t -> Report.t list
val peek_reports : t -> Report.t list

val report_count : t -> int
(** Number of pending reports, in O(1) (= [List.length (peek_reports t)]). *)

val pool_take : t -> kind:Kmem.kind -> size:int -> Kmem.region
(** Borrow a zeroed scratch region from the pool (or allocate one). *)

val try_pool_take :
  t -> site:string -> kind:Kmem.kind -> size:int -> Kmem.region option
(** Like {!pool_take}, but the fault plan is consulted on the slab path
    (pool hits reuse live memory and cannot fail). *)

val pool_return : t -> Kmem.region -> unit

val map_create : t -> Map.def -> int
(** Create a map; returns its fd.  Each map also gets a small
    [struct bpf_map] object whose address LD_IMM64 fixups resolve to. *)

val try_map_create : t -> Map.def -> int option
(** Fallible {!map_create}: [None] when the fault plan fails the
    backing allocation (the syscall's -ENOMEM). *)

val map_of_fd : t -> int -> Map.t option
val map_addr : t -> int -> int64 option
val map_of_addr : t -> int64 -> Map.t option

val btf_addr : t -> int -> int64
(** Runtime address of a BTF object; 0 for runtime-null objects. *)

val current_task_addr : t -> int64

val ktime : t -> int64
val prandom_u32 : t -> int64

val flush_lockdep : t -> routine:string -> unit

val kernel_lock_acquire : t -> routine:string -> string -> unit
(** Lockdep-checked acquisition; fires the contention_begin tracepoint
    (every eBPF spin-lock acquisition contends in the simulation, the
    Figure 2 amplification). *)

val kernel_lock_release : t -> routine:string -> string -> unit

val end_of_execution : t -> unit
(** End of a top-level program run: RCU grace period for deferred map
    frees plus the leaked-lock check. *)
