(* Kernel configuration for a simulated instance: the version (which gates
   features in the verifier, helper set and tracepoints) plus the registry
   of injected historical bugs — the ground truth for the Table 2
   experiment — and the Kconfig-style switch enabling the paper's
   bpf_asan sanitation patches. *)

open Import

type bug =
  | Bug1_nullness_propagation
    (* verifier: JEQ/JNE reg-reg nullness propagation does not filter
       PTR_TO_BTF_ID, marking or_null pointers non-null (Listing 2) *)
  | Bug2_btf_size_check
    (* verifier: task_struct access validation accepts a window larger
       than the object -> OOB read *)
  | Bug3_backtrack_precision
    (* verifier: backtracking over kfunc calls loses precision marks,
       accepting unbounded scalars as offsets *)
  | Bug4_trace_printk_recursion
    (* verifier: program attachable to the tracepoint fired by
       trace_printk's own internal lock -> deadlock *)
  | Bug5_contention_begin_attach
    (* verifier/attach: no validation of programs attached to
       contention_begin that themselves acquire locks (Figure 2) *)
  | Bug6_signal_send_nmi
    (* verifier: send_signal usable from NMI-like attach context ->
       kernel panic *)
  | Cve_2022_23222
    (* verifier: ALU arithmetic permitted on *_or_null pointers
       (Listing 1) *)
  | Bug7_dispatcher_race
    (* dispatcher: update not synchronized with execution ->
       null-ptr-deref *)
  | Bug8_kmemdup_limit
    (* syscall: duplicating rewritten insns with kmemdup fails above the
       kmalloc limit *)
  | Bug9_map_bucket_iter
    (* hash map: bucket iteration continues past the end when the bucket
       lock cannot be taken -> OOB *)
  | Bug10_irq_work_lock
    (* helper: irq_work_queue misuse in ringbuf helpers -> lock bug *)
  | Bug11_xdp_host_exec
    (* XDP: device-offloaded program executed on the host *)
  | Bug12_narrow_load_const
    (* verifier: narrow Ldx of a constant spill keeps the stale
       full-width constant instead of truncating to the access width.
       Not part of the campaign corpus (no version ever shipped it in
       this simulation): it re-creates the pre-fix behavior of this
       repo's own narrow-load bug so directed tests can demonstrate the
       abstract/concrete divergence through the witness oracle. *)
  | Bug13_widen_tight_exit
    (* verifier: loop-state widening declares convergence after its
       first round, so the loop-exit range stays too tight and concrete
       iterations escape the recorded abstract states.  Like Bug12 it
       never shipped: it exists so directed tests can demonstrate that
       a broken widening is caught as a witness escape, not a silent
       unsoundness. *)

(* Bug12 and Bug13 deliberately excluded: regression demonstrators, not
   campaign ground truth. *)
let all_bugs =
  [ Bug1_nullness_propagation; Bug2_btf_size_check;
    Bug3_backtrack_precision; Bug4_trace_printk_recursion;
    Bug5_contention_begin_attach; Bug6_signal_send_nmi; Cve_2022_23222;
    Bug7_dispatcher_race; Bug8_kmemdup_limit; Bug9_map_bucket_iter;
    Bug10_irq_work_lock; Bug11_xdp_host_exec ]

let bug_to_string = function
  | Bug1_nullness_propagation -> "bug1-nullness-propagation"
  | Bug2_btf_size_check -> "bug2-btf-size-check"
  | Bug3_backtrack_precision -> "bug3-backtrack-precision"
  | Bug4_trace_printk_recursion -> "bug4-trace-printk-recursion"
  | Bug5_contention_begin_attach -> "bug5-contention-begin-attach"
  | Bug6_signal_send_nmi -> "bug6-signal-send-nmi"
  | Cve_2022_23222 -> "cve-2022-23222"
  | Bug7_dispatcher_race -> "bug7-dispatcher-race"
  | Bug8_kmemdup_limit -> "bug8-kmemdup-limit"
  | Bug9_map_bucket_iter -> "bug9-map-bucket-iter"
  | Bug10_irq_work_lock -> "bug10-irq-work-lock"
  | Bug11_xdp_host_exec -> "bug11-xdp-host-exec"
  | Bug12_narrow_load_const -> "bug12-narrow-load-const"
  | Bug13_widen_tight_exit -> "bug13-widen-tight-exit"

(* Table 2 component / description / severity, for reporting. *)
let bug_info = function
  | Bug1_nullness_propagation ->
    ("Verifier", "incorrect nullness propagation of pointer comparisons",
     `Correctness)
  | Bug2_btf_size_check ->
    ("Verifier", "incorrect task struct access validation", `Correctness)
  | Bug3_backtrack_precision ->
    ("Verifier", "incorrect check on kfunc call backtracking", `Correctness)
  | Bug4_trace_printk_recursion ->
    ("Verifier", "missing check on programs attached to bpf_trace_printk",
     `Correctness)
  | Bug5_contention_begin_attach ->
    ("Verifier", "missing validation on contention_begin", `Correctness)
  | Bug6_signal_send_nmi ->
    ("Verifier", "missing strict checking on signal sending", `Correctness)
  | Cve_2022_23222 ->
    ("Verifier", "ALU on nullable pointers (CVE-2022-23222)", `Correctness)
  | Bug7_dispatcher_race ->
    ("Dispatcher", "missing sync between dispatcher update and execution",
     `Memory)
  | Bug8_kmemdup_limit ->
    ("Syscall", "incorrect use of kmemdup for rewritten insns", `Memory)
  | Bug9_map_bucket_iter ->
    ("Map", "incorrect bucket iterating on lock failure", `Memory)
  | Bug10_irq_work_lock ->
    ("Helper", "incorrect use of irq_work_queue in helper", `Lock)
  | Bug11_xdp_host_exec ->
    ("XDP", "device program executed on the host", `Memory)
  | Bug12_narrow_load_const ->
    ("Verifier", "narrow load of a constant spill not truncated",
     `Correctness)
  | Bug13_widen_tight_exit ->
    ("Verifier", "loop widening converges on a too-tight exit range",
     `Correctness)

(* Historical presence: which versions ship each bug (before its fix). *)
let bug_in_version (v : Version.t) (b : bug) : bool =
  match b with
  | Bug1_nullness_propagation ->
    (* nullness propagation introduced after v5.15 *)
    Version.at_least v Version.V6_1
  | Bug3_backtrack_precision ->
    (* kfunc calls only exist from v6.1 *)
    Version.at_least v Version.V6_1
  | Bug5_contention_begin_attach ->
    (* contention_begin tracepoint added in v5.19 *)
    Version.at_least v Version.V6_1
  | Bug11_xdp_host_exec -> Version.at_least v Version.V6_1
  | Cve_2022_23222 ->
    (* fixed in v5.16; of the evaluated versions only v5.15 carries it *)
    v = Version.V5_15
  | Bug12_narrow_load_const | Bug13_widen_tight_exit ->
    (* never shipped: exist only for directed regression tests *)
    false
  | Bug2_btf_size_check | Bug4_trace_printk_recursion | Bug6_signal_send_nmi
  | Bug7_dispatcher_race | Bug8_kmemdup_limit | Bug9_map_bucket_iter
  | Bug10_irq_work_lock -> true

type t = {
  version : Version.t;
  bugs : bug list;
  sanitize : bool;      (* CONFIG_BPF_ASAN: the paper's patches *)
  unprivileged : bool;  (* stricter checks for unprivileged loads *)
  lint : bool;          (* CONFIG_BPF_DEBUG: reg_bounds_sanity_check-style
                           invariant lint at every verifier transition *)
  witness : bool;       (* record per-insn abstract states for the runtime
                           concrete-vs-abstract witness oracle *)
}

let make ?(bugs = []) ?(sanitize = true) ?(unprivileged = false)
    ?(lint = false) ?(witness = false) version =
  { version; bugs; sanitize; unprivileged; lint; witness }

(* The configuration the paper's campaigns run against: the version's
   historical bug set, sanitation enabled. *)
let default (version : Version.t) : t =
  make version ~bugs:(List.filter (bug_in_version version) all_bugs)

(* A fully fixed kernel: no injected bugs. *)
let fixed (version : Version.t) : t = make version ~bugs:[]

let has (t : t) (b : bug) : bool = List.mem b t.bugs

let with_bugs (t : t) (bugs : bug list) : t = { t with bugs }
let with_sanitize (t : t) (sanitize : bool) : t = { t with sanitize }
let with_lint (t : t) (lint : bool) : t = { t with lint }
let with_witness (t : t) (witness : bool) : t = { t with witness }
