(* Deterministic allocation fault injection, modeled on Linux's
   CONFIG_FAILSLAB / CONFIG_FAULT_INJECTION framework.

   A fault plan is a seeded, rate-configurable decision stream consulted
   at every fallible allocation site in the simulated kernel (map
   creation, hash-element insertion, ringbuf reserve, verifier state
   allocation, execution scratch).  Each consultation draws one value
   from a private splitmix64 stream — never from the campaign's RNG —
   so enabling or re-rating fault injection does not perturb program
   generation, and a campaign checkpoint that saves the plan's state
   resumes the exact same decision stream.

   Like the kernel's fault_attr, a plan supports a [space] grace count
   (the first N attempts never fail, so a session can boot) and keeps
   per-site statistics for reporting. *)

type t = {
  fs_rate : float;            (* P(failure) per eligible attempt *)
  fs_seed : int;
  mutable fs_space : int;     (* attempts left in the grace period *)
  mutable fs_rng : int64;     (* private splitmix64 state *)
  mutable fs_attempts : int;  (* allocation attempts consulted *)
  mutable fs_injected : int;  (* failures injected *)
  fs_sites : (string, int) Hashtbl.t; (* site -> injected count *)
}

let create ?(space = 0) ?(seed = 1) ~(rate : float) () : t =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Failslab.create: rate must be in [0, 1]";
  {
    fs_rate = rate;
    fs_seed = seed;
    fs_space = space;
    fs_rng = Int64.of_int ((seed * 0x9E3779B9) lxor 0x5F5_5AB);
    fs_attempts = 0;
    fs_injected = 0;
    fs_sites = Hashtbl.create 16;
  }

(* A disabled plan: rate 0, shared nowhere, consumes no stream state on
   the fast path. *)
let off () : t = create ~rate:0.0 ()

let enabled (t : t) : bool = t.fs_rate > 0.0

let rate (t : t) : float = t.fs_rate
let seed (t : t) : int = t.fs_seed
let attempts (t : t) : int = t.fs_attempts
let injected (t : t) : int = t.fs_injected

let injected_at (t : t) ~(site : string) : int =
  Option.value (Hashtbl.find_opt t.fs_sites site) ~default:0

let sites (t : t) : (string * int) list =
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) t.fs_sites []
  |> List.sort compare

(* splitmix64 step on the private stream. *)
let next (t : t) : int64 =
  t.fs_rng <- Int64.add t.fs_rng 0x9E3779B97F4A7C15L;
  let z = t.fs_rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Should the allocation at [site] fail?  Disabled plans return false
   without touching any state, so a kernel running without fault
   injection behaves bit-identically to one with no plan at all. *)
let should_fail (t : t) ~(site : string) : bool =
  if t.fs_rate <= 0.0 then false
  else begin
    t.fs_attempts <- t.fs_attempts + 1;
    if t.fs_space > 0 then begin
      t.fs_space <- t.fs_space - 1;
      ignore (next t); (* keep the stream position attempt-indexed *)
      false
    end
    else begin
      let u =
        Int64.to_float (Int64.shift_right_logical (next t) 11)
        /. 9007199254740992.0
      in
      let fail = u < t.fs_rate in
      if fail then begin
        t.fs_injected <- t.fs_injected + 1;
        Hashtbl.replace t.fs_sites site (1 + injected_at t ~site)
      end;
      fail
    end
  end

let pp_summary fmt (t : t) : unit =
  if not (enabled t) then Format.fprintf fmt "failslab: off@."
  else
    Format.fprintf fmt
      "failslab: rate %.2f seed %d, %d/%d allocations failed (%s)@."
      t.fs_rate t.fs_seed t.fs_injected t.fs_attempts
      (String.concat ", "
         (List.map (fun (s, n) -> Printf.sprintf "%s:%d" s n) (sites t)))
