(** eBPF maps backed by simulated kernel memory.

    Array maps are one contiguous allocation (only whole-array overruns
    trip KASAN, as in the kernel); hash maps allocate per element with
    RCU-deferred frees; ring buffers hand out reserve/submit chunks with
    reference semantics the verifier must enforce.

    The hash-map delete path carries injected Bug#9: when the bucket
    trylock is lost, the buggy slow path reads one slot past the bucket
    table (caught by KASAN inside the routine — indicator #2). *)

type map_type = Array_map | Hash_map | Ringbuf

val map_type_to_string : map_type -> string

type def = {
  mtype : map_type;
  key_size : int;
  value_size : int;
  max_entries : int;
  has_spin_lock : bool; (** value starts with a 4-byte bpf_spin_lock *)
}

val array_def : ?value_size:int -> ?max_entries:int -> unit -> def
val hash_def :
  ?key_size:int -> ?value_size:int -> ?max_entries:int ->
  ?has_spin_lock:bool -> unit -> def
val ringbuf_def : ?max_entries:int -> unit -> def

type t = private {
  id : int;
  def : def;
  backing : backing;
  mutable deferred_free : Kmem.region list;
}

and backing =
  | Array_backing of Kmem.region
  | Hash_backing of {
      elems : (string, Kmem.region) Hashtbl.t;
      buckets : Kmem.region;
      mutable delete_count : int;
    }
  | Ringbuf_backing of { mutable live_chunks : Kmem.region list }

type error =
  | E_no_space
  | E_no_such_key
  | E_bad_op of string
  | E_nomem  (** injected allocation failure (failslab) *)

val error_to_string : error -> string

val create : Kmem.t -> id:int -> def -> t

val lookup : t -> key:Bytes.t -> int64 option
(** Address of the value for [key], or [None] (NULL). *)

val entry_count : t -> int

val update : ?failslab:Failslab.t -> Kmem.t -> t -> key:Bytes.t ->
  value:Bytes.t -> (unit, error) result
(** Insert or update.  With a fault plan, inserting a fresh hash
    element (an allocation) can fail with [E_nomem]; in-place updates
    never allocate and never fail. *)

val delete : ?bug9:bool -> Kmem.t -> t -> key:Bytes.t ->
  (unit, error) result * Kmem.fault option
(** Delete an element (defer-freed until {!end_of_execution}).  With
    [bug9], the contended bucket path returns the internal KASAN fault
    for the caller to surface as indicator #2. *)

val ringbuf_reserve :
  ?failslab:Failslab.t -> Kmem.t -> t -> size:int -> int64 option
(** Reserve a chunk; [None] on bad size or an injected allocation
    failure — either way the program sees NULL and must handle it. *)

val ringbuf_release : Kmem.t -> t -> addr:int64 -> bool

val end_of_execution : Kmem.t -> t -> unit
(** The RCU grace period: deferred frees happen, poisoning the shadow
    for subsequent executions. *)
