(* One simulated kernel instance ("the VM"): memory, maps, BTF objects,
   lockdep, tracepoint attachments and the accumulated bug reports.  A
   fuzzing campaign keeps an instance alive across many program loads,
   like a fuzzer reusing a VM until it crashes. *)

type t = {
  config : Kconfig.t;
  mem : Kmem.t;
  failslab : Failslab.t;  (* fault plan; owned by the campaign, so it
                             survives reboots of this instance *)
  lockdep : Lockdep.t;
  dispatcher : Dispatcher.t;
  mutable maps : (int * Map.t) list;          (* fd -> map *)
  mutable map_addrs : (int64 * Map.t) list;   (* kernel address -> map *)
  mutable next_fd : int;
  mutable next_map_id : int;
  mutable next_prog_id : int;
  mutable btf_regions : (int * Kmem.region) list; (* btf id -> object *)
  mutable reports : Report.t list;
  mutable report_count : int; (* List.length reports, maintained O(1) *)
  mutable time_ns : int64;
  mutable prandom_state : int64;
  mutable current_pid : int64;
  (* execution context, maintained by the runtime around program runs *)
  mutable lock_ctx : Lockdep.context;
  mutable prog_depth : int;  (* nesting of program executions *)
  (* callback installed by the runtime: fire programs attached to an
     attach point.  Decouples the kernel library from the interpreter. *)
  mutable on_event : string -> unit;
  (* per-cpu execution scratch reused across program runs (the kernel
     does not allocate a fresh eBPF stack per invocation either) *)
  mutable exec_pool : Kmem.region list;
}

let create ?failslab (config : Kconfig.t) : t =
  let failslab =
    match failslab with Some f -> f | None -> Failslab.off ()
  in
  let mem = Kmem.create () in
  let btf_regions =
    List.filter_map
      (fun d ->
         if d.Btf.runtime_null then None
         else
           Some
             (d.Btf.btf_id,
              Kmem.alloc mem ~kind:(Kmem.Btf_object d.Btf.btf_name)
                ~size:d.Btf.btf_size))
      Btf.catalogue
  in
  {
    config;
    mem;
    failslab;
    lockdep = Lockdep.create ();
    dispatcher = Dispatcher.create ();
    maps = [];
    map_addrs = [];
    next_fd = 3;
    next_map_id = 1;
    next_prog_id = 1;
    btf_regions;
    reports = [];
    report_count = 0;
    time_ns = 1_000_000L;
    prandom_state = 0x853c49e6748fea9bL;
    current_pid = 4242L;
    lock_ctx = Lockdep.Normal;
    prog_depth = 0;
    on_event = (fun _ -> ());
    exec_pool = [];
  }

(* Borrow a live region of exactly [size]/[kind] from the scratch pool,
   or allocate one.  Contents are zeroed, as the fresh-allocation path
   would produce. *)
let pool_take (t : t) ~(kind : Kmem.kind) ~(size : int) : Kmem.region =
  let matches (r : Kmem.region) = r.Kmem.rkind = kind && r.Kmem.size = size in
  match List.find_opt matches t.exec_pool with
  | Some r ->
    t.exec_pool <- List.filter (fun x -> x != r) t.exec_pool;
    Bytes.fill r.Kmem.data 0 size '\000';
    r
  | None -> Kmem.alloc t.mem ~kind ~size

(* Fallible variant: the fault plan is consulted only on the slab path
   (a pool hit reuses live memory, which cannot fail), mirroring how
   failslab hooks kmem_cache_alloc and not object reuse. *)
let try_pool_take (t : t) ~(site : string) ~(kind : Kmem.kind)
    ~(size : int) : Kmem.region option =
  let matches (r : Kmem.region) = r.Kmem.rkind = kind && r.Kmem.size = size in
  match List.find_opt matches t.exec_pool with
  | Some r ->
    t.exec_pool <- List.filter (fun x -> x != r) t.exec_pool;
    Bytes.fill r.Kmem.data 0 size '\000';
    Some r
  | None ->
    if Failslab.should_fail t.failslab ~site then None
    else Some (Kmem.alloc t.mem ~kind ~size)

let pool_return (t : t) (r : Kmem.region) : unit =
  if List.length t.exec_pool < 16 then t.exec_pool <- r :: t.exec_pool
  else Kmem.free t.mem r

let has_bug (t : t) (b : Kconfig.bug) : bool = Kconfig.has t.config b

let report (t : t) (r : Report.t) : unit =
  t.reports <- r :: t.reports;
  t.report_count <- t.report_count + 1

let take_reports (t : t) : Report.t list =
  let rs = List.rev t.reports in
  t.reports <- [];
  t.report_count <- 0;
  rs

let report_count (t : t) : int = t.report_count

let peek_reports (t : t) : Report.t list = List.rev t.reports

(* -- Maps ------------------------------------------------------------ *)

(* Create a map; returns its fd.  Each map also gets a small "struct
   bpf_map" kernel object whose address is what LD_IMM64 map-fd loads
   resolve to after fixup. *)
let map_create (t : t) (def : Map.def) : int =
  let id = t.next_map_id in
  t.next_map_id <- id + 1;
  let map = Map.create t.mem ~id def in
  let obj = Kmem.alloc t.mem ~kind:(Kmem.Kernel_internal "struct bpf_map")
      ~size:64 in
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  t.maps <- (fd, map) :: t.maps;
  t.map_addrs <- (obj.Kmem.base, map) :: t.map_addrs;
  fd

(* Fallible map creation: with a fault plan armed, the backing
   allocation can fail and the syscall surfaces -ENOMEM (None). *)
let try_map_create (t : t) (def : Map.def) : int option =
  if Failslab.should_fail t.failslab ~site:"map_create" then None
  else Some (map_create t def)

let map_of_fd (t : t) (fd : int) : Map.t option = List.assoc_opt fd t.maps

let map_addr (t : t) (fd : int) : int64 option =
  match map_of_fd t fd with
  | None -> None
  | Some m ->
    List.find_map
      (fun (addr, m') -> if m' == m then Some addr else None)
      t.map_addrs

let map_of_addr (t : t) (addr : int64) : Map.t option =
  List.assoc_opt addr t.map_addrs

(* -- BTF objects ------------------------------------------------------ *)

(* Runtime address of a BTF object: NULL for runtime-null objects. *)
let btf_addr (t : t) (btf_id : int) : int64 =
  match List.assoc_opt btf_id t.btf_regions with
  | Some r -> r.Kmem.base
  | None -> 0L

let current_task_addr (t : t) : int64 = btf_addr t Btf.task_struct.Btf.btf_id

(* -- Misc kernel services --------------------------------------------- *)

let ktime (t : t) : int64 =
  t.time_ns <- Int64.add t.time_ns 1337L;
  t.time_ns

let prandom_u32 (t : t) : int64 =
  (* xorshift64*, truncated *)
  let x = t.prandom_state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.prandom_state <- x;
  Int64.logand x 0xFFFF_FFFFL

(* Fire every lockdep violation gathered so far as reports attributed to
   [routine]. *)
let flush_lockdep (t : t) ~(routine : string) : unit =
  List.iter
    (fun v ->
       report t (Report.make (Report.Kernel_routine routine)
                   (Report.Lock_violation v)))
    (Lockdep.take_violations t.lockdep)

(* A lock acquisition inside the kernel: runs lockdep and fires the
   contention_begin tracepoint (Figure 2's trigger).  Spin locks taken
   from eBPF programs on a busy kernel contend, so the simulation
   treats every such acquisition as contended — this is exactly the
   amplification that makes programs attached to contention_begin
   re-enter themselves. *)
let kernel_lock_acquire (t : t) ~(routine : string) (cls : string) : unit =
  Lockdep.acquire t.lockdep cls;
  flush_lockdep t ~routine;
  List.iter
    (fun tp -> t.on_event tp.Tracepoint.tp_name)
    (Tracepoint.fired_by_lock_acquisition ())

let kernel_lock_release (t : t) ~(routine : string) (cls : string) : unit =
  Lockdep.release t.lockdep cls;
  flush_lockdep t ~routine

(* End of one top-level program execution: RCU grace period, leaked-lock
   check. *)
let end_of_execution (t : t) : unit =
  List.iter (fun (_, m) -> Map.end_of_execution t.mem m) t.maps;
  Lockdep.end_of_execution t.lockdep;
  flush_lockdep t ~routine:"bpf_prog_exit"
