(** Kernel configuration for a simulated instance: version (gating
    features), the registry of injected historical bugs — the ground
    truth for the Table 2 experiment — and the Kconfig-style switch for
    the paper's bpf_asan sanitation patches. *)

(** The injected bug corpus: the paper's Table 2 plus CVE-2022-23222. *)
type bug =
  | Bug1_nullness_propagation
  | Bug2_btf_size_check
  | Bug3_backtrack_precision
  | Bug4_trace_printk_recursion
  | Bug5_contention_begin_attach
  | Bug6_signal_send_nmi
  | Cve_2022_23222
  | Bug7_dispatcher_race
  | Bug8_kmemdup_limit
  | Bug9_map_bucket_iter
  | Bug10_irq_work_lock
  | Bug11_xdp_host_exec
  | Bug12_narrow_load_const
      (** verifier: a narrow [Ldx] of a constant spill keeps the stale
          full-width constant instead of truncating it to the access
          width.  Regression demonstrator for the narrow-load fix —
          deliberately NOT in {!all_bugs} and shipped by no version:
          directed tests enable it explicitly to show the old behavior
          was a real abstract/concrete divergence. *)
  | Bug13_widen_tight_exit
      (** verifier: loop-state widening declares convergence after its
          first round, leaving the loop-exit range too tight.  Like
          {!Bug12_narrow_load_const} it is a directed-test
          demonstrator — NOT in {!all_bugs}, shipped by no version —
          showing a broken widening surfaces as a witness escape. *)

val all_bugs : bug list
(** The campaign corpus.  Excludes {!Bug12_narrow_load_const} and
    {!Bug13_widen_tight_exit}, which exist only for directed
    regression tests. *)

val bug_to_string : bug -> string

val bug_info : bug -> string * string * [ `Correctness | `Memory | `Lock ]
(** Table 2 component, description and class. *)

val bug_in_version : Bvf_ebpf.Version.t -> bug -> bool
(** Historical presence: which versions shipped the bug before its
    fix. *)

type t = {
  version : Bvf_ebpf.Version.t;
  bugs : bug list;
  sanitize : bool;      (** CONFIG_BPF_ASAN: the paper's patches *)
  unprivileged : bool;
  lint : bool;
      (** CONFIG_BPF_DEBUG-style invariant lint over every verifier
          register state; off by default so injected ground-truth bugs
          still flow to the dynamic oracle *)
  witness : bool;
      (** record per-instruction abstract register states so the
          interpreter can check concrete values against them *)
}

val make :
  ?bugs:bug list -> ?sanitize:bool -> ?unprivileged:bool ->
  ?lint:bool -> ?witness:bool ->
  Bvf_ebpf.Version.t -> t

val default : Bvf_ebpf.Version.t -> t
(** The version's historical bug set, sanitation enabled: what the
    paper's campaigns ran against. *)

val fixed : Bvf_ebpf.Version.t -> t
(** A fully fixed kernel: no injected bugs. *)

val has : t -> bug -> bool
val with_bugs : t -> bug list -> t
val with_sanitize : t -> bool -> t
val with_lint : t -> bool -> t
val with_witness : t -> bool -> t
