(** Kernel bug reports — the raw material the oracle classifies into the
    paper's two correctness-bug indicators. *)

(** Which capture mechanism observed the anomaly. *)
type origin =
  | Sanitizer                (** a bpf_asan check in the program *)
  | Bpf_native               (** the program's own instruction faulted *)
  | Kernel_routine of string (** KASAN/lockdep/panic inside a routine *)

type kind =
  | Mem_fault of Kmem.fault
  | Lock_violation of Lockdep.violation
  | Panic of string
  | Warn of string
  | Alu_limit of { actual : int64; limit : int64; is_sub : bool }
  | Runaway_execution
  | Witness_escape of {
      wreg : int;
      wvalue : int64;
      wclaim : string;
      wclass : string;
    }
      (** a concrete register value left the verifier's recorded
          abstract state (the witness oracle, indicator #3) *)

type t = {
  origin : origin;
  kind : kind;
  pc : int option; (** guilty eBPF instruction, when known *)
}

val make : ?pc:int -> origin -> kind -> t
val origin_to_string : origin -> string
val kind_to_string : kind -> string
val to_string : t -> string

val fingerprint : t -> string
(** Stable deduplication key: collapses addresses, keeps the mechanism,
    fault class and faulting site. *)
