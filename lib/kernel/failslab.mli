(** Deterministic allocation fault injection, modeled on Linux's
    CONFIG_FAILSLAB / CONFIG_FAULT_INJECTION framework.

    A fault plan is a seeded, rate-configurable decision stream
    consulted at every fallible allocation site in the simulated kernel.
    It draws from a private splitmix64 stream — never the campaign RNG —
    so enabling fault injection does not perturb program generation, and
    a checkpointed plan resumes the exact same decision stream.

    Injected failures must always surface as clean [-ENOMEM]/[Error]
    outcomes: they model the environment misbehaving, never the verifier
    — the oracle treats them as noise, not findings. *)

type t

val create : ?space:int -> ?seed:int -> rate:float -> unit -> t
(** A plan failing each eligible allocation with probability [rate].
    The first [space] attempts never fail (the kernel's fault_attr grace
    count), letting sessions boot under aggressive rates.
    @raise Invalid_argument when [rate] is outside [\[0, 1\]]. *)

val off : unit -> t
(** A disabled plan (rate 0): [should_fail] is always false and touches
    no state. *)

val enabled : t -> bool

val should_fail : t -> site:string -> bool
(** Draw the next decision for an allocation at [site].  Deterministic
    in (seed, rate, space, call sequence). *)

val rate : t -> float
val seed : t -> int
val attempts : t -> int
(** Allocation attempts consulted so far (enabled plans only). *)

val injected : t -> int
(** Failures injected so far. *)

val injected_at : t -> site:string -> int
val sites : t -> (string * int) list
(** Per-site injected-failure counts, sorted by site name. *)

val pp_summary : Format.formatter -> t -> unit
