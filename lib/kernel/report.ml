(* Kernel bug reports — the raw material the oracle classifies into the
   paper's two correctness-bug indicators.

   [origin] records which capture mechanism observed the anomaly:
   - [Sanitizer]: one of the bpf_asan_* functions instrumented into the
     verified program caught an invalid access or an alu_limit violation
     (indicator #1);
   - [Bpf_native]: the program's own (unsanitized) instruction faulted
     hard, e.g. a page fault in JITed code — also indicator #1, but only
     observable for the subset of invalid accesses that happen to crash;
   - [Kernel_routine]: KASAN / lockdep / panic inside a kernel routine
     the program invoked (indicator #2). *)

type origin =
  | Sanitizer
  | Bpf_native
  | Kernel_routine of string

type kind =
  | Mem_fault of Kmem.fault
  | Lock_violation of Lockdep.violation
  | Panic of string
  | Warn of string
  | Alu_limit of { actual : int64; limit : int64; is_sub : bool }
  | Runaway_execution (* watchdog: program exceeded its fuel *)
  | Witness_escape of {
      wreg : int;       (* register whose concrete value escaped *)
      wvalue : int64;   (* the concrete value *)
      wclaim : string;  (* the abstract claim it escaped *)
      wclass : string;  (* "scalar" | "nonnull" *)
    } (* concrete execution left the verifier's recorded abstract state *)

type t = {
  origin : origin;
  kind : kind;
  pc : int option; (* program counter of the guilty eBPF insn, if known *)
}

let make ?pc origin kind = { origin; kind; pc }

let origin_to_string = function
  | Sanitizer -> "bpf_asan"
  | Bpf_native -> "native"
  | Kernel_routine r -> Printf.sprintf "kernel:%s" r

let kind_to_string = function
  | Mem_fault f -> Kmem.fault_to_string f
  | Lock_violation v -> Lockdep.violation_to_string v
  | Panic s -> Printf.sprintf "kernel panic: %s" s
  | Warn s -> Printf.sprintf "WARNING: %s" s
  | Alu_limit { actual; limit; is_sub } ->
    Printf.sprintf "alu_limit violation: %s offset %Ld exceeds limit %Ld"
      (if is_sub then "sub" else "add")
      actual limit
  | Runaway_execution -> "watchdog: runaway program execution"
  | Witness_escape { wreg; wvalue; wclaim; wclass = _ } ->
    Printf.sprintf
      "witness escape: r%d = %Ld outside verifier claim %s" wreg wvalue
      wclaim

let to_string (t : t) =
  Printf.sprintf "[%s]%s %s"
    (origin_to_string t.origin)
    (match t.pc with Some pc -> Printf.sprintf " pc=%d" pc | None -> "")
    (kind_to_string t.kind)

(* Stable fingerprint used for deduplication during fuzzing: collapses
   addresses but keeps the mechanism, fault class and faulting site. *)
let fingerprint (t : t) : string =
  let kind_fp =
    match t.kind with
    | Mem_fault f ->
      let k =
        match f.Kmem.fkind with
        | Kmem.Null_deref -> "null"
        | Kmem.Oob p -> "oob:" ^ Shadow.poison_to_string p
        | Kmem.Page_fault -> "pf"
      in
      let dir = match f.Kmem.faccess with
        | Kmem.Read -> "r" | Kmem.Write -> "w" in
      Printf.sprintf "mem:%s:%s:%s" k dir
        (Option.value f.Kmem.fregion ~default:"?")
    | Lock_violation (Lockdep.Recursive_lock c) -> "lock:recursive:" ^ c
    | Lock_violation (Lockdep.Unlock_not_held c) -> "lock:unheld:" ^ c
    | Lock_violation (Lockdep.Held_at_exit _) -> "lock:held-at-exit"
    | Lock_violation (Lockdep.Lock_in_nmi c) -> "lock:nmi:" ^ c
    | Panic s -> "panic:" ^ s
    | Warn s -> "warn:" ^ s
    | Alu_limit { is_sub; _ } ->
      Printf.sprintf "alu_limit:%s" (if is_sub then "sub" else "add")
    | Runaway_execution -> "runaway"
    | Witness_escape { wreg; wclass; _ } ->
      Printf.sprintf "witness:r%d:%s" wreg wclass
  in
  Printf.sprintf "%s|%s" (origin_to_string t.origin) kind_fp
