open Import

(* Concrete implementations of the helper functions and kfuncs.

   Every anomaly observed while a helper runs — KASAN faults on the
   memory the program handed in, lockdep violations, panics — is
   appended to the kernel instance's report list with origin
   [Kernel_routine]; this is precisely the paper's indicator #2 capture
   path ("existing mechanisms can catch the majority of runtime bugs in
   these routines" since helpers are compiled with the kernel).  The
   caller (interpreter) aborts the execution when new reports appear. *)

type env = {
  pkt : Kmem.region option; (* packet backing the current context *)
}

let no_env = { pkt = None }

let enoent = -2L
let enomem = -12L
let efault = -14L
let einval = -22L
let eperm = -1L

let routine_report (k : Kstate.t) ~pc ~(routine : string)
    (kind : Report.kind) : unit =
  Kstate.report k (Report.make ~pc (Report.Kernel_routine routine) kind)

(* Checked block read/write through KASAN, attributing faults to
   [routine]. *)
let read_block (k : Kstate.t) ~pc ~routine ~(addr : int64) ~(size : int) :
  Bytes.t option =
  let buf = Bytes.make size '\000' in
  let rec go off =
    if off >= size then Some buf
    else begin
      let chunk = min 8 (size - off) in
      match
        Kmem.checked_load k.Kstate.mem
          ~addr:(Int64.add addr (Int64.of_int off))
          ~size:chunk
      with
      | Ok v ->
        Word.set_le buf off chunk v;
        go (off + chunk)
      | Error f ->
        routine_report k ~pc ~routine (Report.Mem_fault f);
        None
    end
  in
  go 0

let write_block (k : Kstate.t) ~pc ~routine ~(addr : int64)
    (data : Bytes.t) : bool =
  let size = Bytes.length data in
  let rec go off =
    if off >= size then true
    else begin
      let chunk = min 8 (size - off) in
      match
        Kmem.checked_store k.Kstate.mem
          ~addr:(Int64.add addr (Int64.of_int off))
          ~size:chunk
          (Word.get_le data off chunk)
      with
      | Ok () -> go (off + chunk)
      | Error f ->
        routine_report k ~pc ~routine (Report.Mem_fault f);
        false
    end
  in
  go 0

(* Lock class for a bpf_spin_lock at [addr]: one class per map. *)
let spin_lock_class (k : Kstate.t) (addr : int64) : string =
  match Kmem.region_of k.Kstate.mem addr with
  | Some r -> begin
      match r.Kmem.rkind with
      | Kmem.Map_array id | Kmem.Map_elem id ->
        Printf.sprintf "map_value_lock#%d" id
      | Kmem.Stack _ | Kmem.Ctx | Kmem.Ringbuf_chunk _ | Kmem.Btf_object _
      | Kmem.Packet | Kmem.Kernel_internal _ -> "map_value_lock"
    end
  | None -> "map_value_lock"

(* irq_work misuse (Bug#10): queuing irq_work from the ringbuf wakeup
   path in hard-irq/NMI context takes a lock that must not be taken
   there. *)
let maybe_bug10 (k : Kstate.t) ~pc ~routine : unit =
  if Kstate.has_bug k Kconfig.Bug10_irq_work_lock then
    match k.Kstate.lock_ctx with
    | Lockdep.Hardirq | Lockdep.Nmi ->
      routine_report k ~pc ~routine
        (Report.Lock_violation (Lockdep.Lock_in_nmi "irq_work"))
    | Lockdep.Normal | Lockdep.Softirq -> ()

let find_map (k : Kstate.t) (addr : int64) : Map.t option =
  Kstate.map_of_addr k addr

(* Execute helper [h] with argument registers [args] = [| r1..r5 |].
   Returns the value for R0; anomalies are reported via [Kstate]. *)
let call (k : Kstate.t) (env : env) ~(pc : int) (h : Helper.t)
    (args : int64 array) : int64 =
  let a i = args.(i - 1) in
  let name = h.Helper.name in
  match name with
  | "map_lookup_elem" -> begin
      match find_map k (a 1) with
      | None -> 0L
      | Some m -> begin
          match
            read_block k ~pc ~routine:"__htab_map_lookup_elem" ~addr:(a 2)
              ~size:m.Map.def.Map.key_size
          with
          | None -> 0L
          | Some key -> (
              match Map.lookup m ~key with Some v -> v | None -> 0L)
        end
    end
  | "map_update_elem" -> begin
      match find_map k (a 1) with
      | None -> einval
      | Some m -> begin
          match
            read_block k ~pc ~routine:"htab_map_update_elem" ~addr:(a 2)
              ~size:m.Map.def.Map.key_size
          with
          | None -> efault
          | Some key -> begin
              match
                read_block k ~pc ~routine:"htab_map_update_elem"
                  ~addr:(a 3) ~size:m.Map.def.Map.value_size
              with
              | None -> efault
              | Some value -> begin
                  match
                    Map.update ~failslab:k.Kstate.failslab k.Kstate.mem m
                      ~key ~value
                  with
                  | Ok () -> 0L
                  | Error Map.E_no_space -> -7L (* E2BIG *)
                  | Error Map.E_no_such_key -> enoent
                  | Error (Map.E_bad_op _) -> einval
                  | Error Map.E_nomem -> enomem
                end
            end
        end
    end
  | "map_delete_elem" -> begin
      match find_map k (a 1) with
      | None -> einval
      | Some m -> begin
          match
            read_block k ~pc ~routine:"htab_map_delete_elem" ~addr:(a 2)
              ~size:m.Map.def.Map.key_size
          with
          | None -> efault
          | Some key ->
            let bug9 = Kstate.has_bug k Kconfig.Bug9_map_bucket_iter in
            let result, fault = Map.delete ~bug9 k.Kstate.mem m ~key in
            (match fault with
             | Some f ->
               routine_report k ~pc ~routine:"htab_map_delete_elem"
                 (Report.Mem_fault f)
             | None -> ());
            (match result with
             | Ok () -> 0L
             | Error Map.E_no_such_key -> enoent
             | Error Map.E_no_space -> -7L
             | Error (Map.E_bad_op _) -> einval
             | Error Map.E_nomem -> enomem)
        end
    end
  | "ktime_get_ns" | "ktime_get_boot_ns" -> Kstate.ktime k
  | "jiffies64" -> Int64.div (Kstate.ktime k) 4_000_000L
  | "get_prandom_u32" -> Kstate.prandom_u32 k
  | "get_smp_processor_id" -> 0L
  | "get_current_pid_tgid" ->
    Int64.logor
      (Int64.shift_left k.Kstate.current_pid 32)
      k.Kstate.current_pid
  | "get_current_uid_gid" -> 0L
  | "get_current_task" -> Kstate.current_task_addr k
  | "get_current_task_btf" -> Kstate.current_task_addr k
  | "task_pt_regs" -> Int64.add (a 1) 128L
  | "get_stackid" -> 0L
  | "loop" -> 0L
  | "trace_printk" -> begin
      let size = Int64.to_int (a 2) in
      match
        read_block k ~pc ~routine:"bpf_trace_printk" ~addr:(a 1) ~size
      with
      | None -> efault
      | Some _fmt ->
        (* the helper serializes on an internal buffer lock; a kprobe
           sits on the helper itself (Bug#4's attach point) *)
        Kstate.kernel_lock_acquire k ~routine:"bpf_trace_printk"
          "trace_printk_buf";
        List.iter
          (fun tp -> k.Kstate.on_event tp.Tracepoint.tp_name)
          (Tracepoint.fired_by_helper "trace_printk");
        Kstate.kernel_lock_release k ~routine:"bpf_trace_printk"
          "trace_printk_buf";
        Int64.of_int size
    end
  | "spin_lock" ->
    Kstate.kernel_lock_acquire k ~routine:"bpf_spin_lock"
      (spin_lock_class k (a 1));
    0L
  | "spin_unlock" ->
    Kstate.kernel_lock_release k ~routine:"bpf_spin_unlock"
      (spin_lock_class k (a 1));
    0L
  | "send_signal" -> begin
      match k.Kstate.lock_ctx with
      | Lockdep.Nmi | Lockdep.Hardirq ->
        if Kstate.has_bug k Kconfig.Bug6_signal_send_nmi then begin
          routine_report k ~pc ~routine:"bpf_send_signal"
            (Report.Panic "send_signal from irq/nmi work context");
          efault
        end
        else eperm (* fixed kernel declines gracefully *)
      | Lockdep.Normal | Lockdep.Softirq -> 0L
    end
  | "probe_read" | "probe_read_kernel" -> begin
      let size = Int64.to_int (a 2) in
      (* faulting source reads are exception-tabled: no report *)
      let rec read_src off acc =
        if off >= size then Some (List.rev acc)
        else
          let chunk = min 8 (size - off) in
          match
            Kmem.raw_load k.Kstate.mem
              ~addr:(Int64.add (a 3) (Int64.of_int off))
              ~size:chunk
          with
          | Ok v -> read_src (off + chunk) ((chunk, v) :: acc)
          | Error _ -> None
      in
      match read_src 0 [] with
      | None -> efault
      | Some chunks ->
        let buf = Bytes.make size '\000' in
        let _ =
          List.fold_left
            (fun off (chunk, v) ->
               Word.set_le buf off chunk v;
               off + chunk)
            0 chunks
        in
        if write_block k ~pc ~routine:"bpf_probe_read_kernel" ~addr:(a 1)
            buf
        then 0L
        else efault
    end
  | "get_current_comm" -> begin
      let size = Int64.to_int (a 2) in
      let comm = Bytes.make size '\000' in
      Bytes.blit_string "kworker/u2:1" 0 comm 0 (min 12 size);
      if write_block k ~pc ~routine:"bpf_get_current_comm" ~addr:(a 1) comm
      then 0L
      else efault
    end
  | "snprintf" -> begin
      let dst_size = Int64.to_int (a 2) in
      let fmt_size = Int64.to_int (a 4) in
      match
        read_block k ~pc ~routine:"bpf_snprintf" ~addr:(a 3) ~size:fmt_size
      with
      | None -> efault
      | Some fmt ->
        let out = Bytes.make dst_size '\000' in
        Bytes.blit fmt 0 out 0 (min fmt_size dst_size);
        if write_block k ~pc ~routine:"bpf_snprintf" ~addr:(a 1) out then
          Int64.of_int (min fmt_size dst_size)
        else efault
    end
  | "skb_load_bytes" -> begin
      let off = Int64.to_int (a 2) in
      let size = Int64.to_int (a 4) in
      match env.pkt with
      | None -> efault
      | Some pkt ->
        if off < 0 || size <= 0 || off + size > pkt.Kmem.size then efault
        else begin
          let data = Bytes.sub pkt.Kmem.data off size in
          if write_block k ~pc ~routine:"bpf_skb_load_bytes" ~addr:(a 3)
              data
          then 0L
          else efault
        end
    end
  | "ringbuf_reserve" -> begin
      match find_map k (a 1) with
      | None -> 0L
      | Some m -> begin
          match
            Map.ringbuf_reserve ~failslab:k.Kstate.failslab k.Kstate.mem m
              ~size:(Int64.to_int (a 2))
          with
          | Some addr -> addr
          | None -> 0L
        end
    end
  | "ringbuf_submit" | "ringbuf_discard" -> begin
      maybe_bug10 k ~pc ~routine:("bpf_" ^ name);
      let chunk_addr = a 1 in
      let released =
        List.exists
          (fun (_, m) -> Map.ringbuf_release k.Kstate.mem m ~addr:chunk_addr)
          k.Kstate.maps
      in
      if not released then
        routine_report k ~pc ~routine:("bpf_" ^ name)
          (Report.Warn "ringbuf release of unknown chunk");
      0L
    end
  | "ringbuf_output" -> begin
      maybe_bug10 k ~pc ~routine:"bpf_ringbuf_output";
      let size = Int64.to_int (a 3) in
      match
        read_block k ~pc ~routine:"bpf_ringbuf_output" ~addr:(a 2) ~size
      with
      | None -> efault
      | Some _ -> 0L
    end
  | _ ->
    routine_report k ~pc ~routine:name
      (Report.Warn (Printf.sprintf "unimplemented helper %s" name));
    0L

(* Kfunc execution. *)
let call_kfunc (k : Kstate.t) ~(pc : int) (kf : Helper.kfunc)
    (args : int64 array) : int64 =
  ignore pc;
  match kf.Helper.kname with
  | "bpf_task_from_pid" ->
    if args.(0) = k.Kstate.current_pid then Kstate.current_task_addr k
    else 0L
  | "bpf_task_release" -> 0L
  | "bpf_obj_id" -> Int64.logand args.(0) 0xFFFFL
  | _ -> 0L
