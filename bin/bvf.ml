(* The bvf command line: fuzz campaigns, single-bug reproducers,
   self-test corpus inspection, verifier-log explanation, JSONL trace
   aggregation and program disassembly over the simulated kernel.

     bvf fuzz --kernel bpf-next --iterations 20000 --seed 1 --tool bvf
     bvf fuzz --witness --iterations 20000
     bvf fuzz --seed 1 --trace trace.jsonl --log-level 1
     bvf explain 42
     bvf stats trace.jsonl --fail-on-unknown
     bvf repro --bug bug1-nullness-propagation
     bvf selftests --count 100
     bvf lint --count 708 --out lint-report.txt
     bvf experiments table2 *)

module Version = Bvf_ebpf.Version
module Prog = Bvf_ebpf.Prog
module Disasm = Bvf_ebpf.Disasm
module Kconfig = Bvf_kernel.Kconfig
module Failslab = Bvf_kernel.Failslab
module Checkpoint = Bvf_core.Checkpoint
module Verifier = Bvf_verifier.Verifier
module Venv = Bvf_verifier.Venv
module Reject_reason = Bvf_verifier.Reject_reason
module Loader = Bvf_runtime.Loader
module Coverage = Bvf_verifier.Coverage
module Vstats = Bvf_verifier.Vstats
module Mclock = Bvf_util.Mclock
module Prof = Bvf_util.Prof
module Campaign = Bvf_core.Campaign
module Parallel = Bvf_core.Parallel
module Telemetry = Bvf_core.Telemetry
module Veristat = Bvf_core.Veristat
module Progress = Bvf_core.Progress
module Oracle = Bvf_core.Oracle
module Selftests = Bvf_core.Selftests
module Rng = Bvf_core.Rng
module Gen = Bvf_core.Gen
module Supervisor = Bvf_core.Supervisor
module Service = Bvf_core.Service
module Vcache = Bvf_core.Vcache
module E = Bvf_experiments.Experiments

open Cmdliner

(* -- Shared arguments ----------------------------------------------------- *)

let version_arg =
  let parse s =
    match Version.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown kernel version %S" s))
  in
  let print fmt v = Format.fprintf fmt "%s" (Version.to_string v) in
  Arg.conv (parse, print)

let version_t =
  Arg.(value & opt version_arg Version.Bpf_next
       & info [ "kernel"; "k" ] ~docv:"VERSION"
         ~doc:"Kernel version to simulate: v5.15, v6.1 or bpf-next.")

let seed_t =
  Arg.(value & opt int 1
       & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Deterministic RNG seed.")

let iterations_t =
  Arg.(value & opt int 10_000
       & info [ "iterations"; "n" ] ~docv:"N"
         ~doc:"Number of programs to generate and run.")

(* -- fuzz ------------------------------------------------------------------- *)

let tool_t =
  Arg.(value & opt (enum [ ("bvf", `Bvf); ("syzkaller", `Syz);
                           ("buzzer", `Buzzer) ]) `Bvf
       & info [ "tool"; "t" ] ~docv:"TOOL"
         ~doc:"Generator to drive: bvf, syzkaller or buzzer.")

let no_sanitize_t =
  Arg.(value & flag
       & info [ "no-sanitize" ]
         ~doc:"Disable the bpf_asan sanitation patches (CONFIG_BPF_ASAN).")

let fixed_t =
  Arg.(value & flag
       & info [ "fixed" ]
         ~doc:"Run against a fully fixed kernel (no injected bugs).")

let unprivileged_t =
  Arg.(value & flag
       & info [ "unprivileged" ]
         ~doc:"Load programs without CAP_BPF: stricter verifier checks.")

let witness_t =
  Arg.(value & flag
       & info [ "witness" ]
         ~doc:"Record per-instruction abstract register states during \
               verification and flag concrete values that escape them \
               at run time (the indicator#3 witness oracle).")

let failslab_t =
  Arg.(value & opt float 0.0
       & info [ "failslab" ] ~docv:"RATE"
         ~doc:"Inject allocation failures (failslab-style) into the \
               simulated kernel with this probability in [0,1].")

let failslab_seed_t =
  Arg.(value & opt (some int) None
       & info [ "failslab-seed" ] ~docv:"SEED"
         ~doc:"Seed for the fault-injection decision stream (defaults to \
               the campaign seed).")

let checkpoint_t =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"PATH"
         ~doc:"Write campaign checkpoints to $(docv) (atomic \
               write-then-rename).")

let checkpoint_every_t =
  Arg.(value & opt int 1000
       & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Checkpoint (and reboot) every $(docv) completed \
               iterations.")

let resume_t =
  Arg.(value & opt (some string) None
       & info [ "resume" ] ~docv:"PATH"
         ~doc:"Resume a campaign from a checkpoint file written by \
               --checkpoint.")

let jobs_t =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Shard the campaign across $(docv) parallel domains \
               (shard i fuzzes with seed+i; coverage, findings and the \
               corpus are merged).  $(docv)=1 is the sequential path.")

let workers_t =
  Arg.(value & opt int 0
       & info [ "workers"; "w" ] ~docv:"N"
         ~doc:"Supervise the campaign across $(docv) forked worker \
               processes (same sharding as --jobs, but crash-isolated: \
               a worker that dies or stops heartbeating is restarted \
               from its last checkpoint with the implicated iteration \
               quarantined).  Protocol files live under --state-dir; \
               rerunning with the same directory resumes.")

let state_dir_t =
  Arg.(value & opt string "bvf-state"
       & info [ "state-dir" ] ~docv:"DIR"
         ~doc:"Directory for --workers protocol files: per-worker \
               checkpoints, heartbeats, crash artifacts and the \
               quarantine list.")

let deadline_t =
  Arg.(value & opt float 30.0
       & info [ "deadline" ] ~docv:"SECS"
         ~doc:"Watchdog deadline for --workers: a worker whose \
               heartbeat is older than $(docv) seconds is killed and \
               restarted.")

let max_restarts_t =
  Arg.(value & opt int 5
       & info [ "max-restarts" ] ~docv:"N"
         ~doc:"Retire a worker (shrinking the pool) after $(docv) \
               restarts; its last checkpoint still joins the merge and \
               the abandoned iterations are reported.")

let quarantine_t =
  Arg.(value & opt (some string) None
       & info [ "quarantine" ] ~docv:"FILE"
         ~doc:"Preload quarantined global iterations (one per line, as \
               written to the state directory's quarantine.list): the \
               listed iterations are skipped deterministically, which \
               makes a fault-free rerun digest-comparable to a \
               disturbed one.")

let trace_t =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"PATH"
         ~doc:"Write a JSONL telemetry trace to $(docv): one event per \
               generated/accepted/rejected program (with its rejection \
               reason), finding and checkpoint, plus a closing phase \
               profile.  Inspect with $(b,bvf stats).")

let log_level_t =
  Arg.(value & opt int 0
       & info [ "log-level" ] ~docv:"N"
         ~doc:"Verifier log level for every load: 0 silent, 1 \
               per-instruction decisions, 2 adds register states \
               (mirrors the kernel's log_level attr).")

let progress_t =
  Arg.(value & opt (some float) None
       & info [ "progress" ] ~docv:"SECS"
         ~doc:"Print a live status line (execs/sec, accepted%, edges, \
               findings, peak states) to stderr at most every $(docv) \
               seconds.  Purely an observer: traces and digests are \
               byte-identical with or without it.")

let profile_t =
  Arg.(value & opt (some string) None
       & info [ "profile" ] ~docv:"FILE"
         ~doc:"Record a span profile of the run and write it to \
               $(docv) as Chrome trace-event JSON (one process per \
               shard or worker; load in Perfetto, or aggregate with \
               $(b,bvf profile)).  Purely an observer, like \
               --progress: traces and digests are byte-identical with \
               or without it.")

(* The closing profile record is appended by the CLI, not emitted by
   the campaign: traces stay byte-deterministic for a fixed seed, and
   the profile carries the only wall-clock times in the file. *)
let append_profile (path : string) (stats : Campaign.stats)
    ~(wall_s : float) : unit =
  let ev =
    Telemetry.Profile
      {
        programs = stats.Campaign.st_generated;
        gen_s = stats.Campaign.st_gen_s;
        verify_s = stats.Campaign.st_verify_s;
        sanitize_s = stats.Campaign.st_sanitize_s;
        exec_s = stats.Campaign.st_exec_s;
        wall_s;
        gen_w = stats.Campaign.st_gen_w;
        verify_w = stats.Campaign.st_verify_w;
        sanitize_w = stats.Campaign.st_sanitize_w;
        exec_w = stats.Campaign.st_exec_w;
      }
  in
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc (Telemetry.to_json ev);
  output_char oc '\n';
  close_out oc

(* Write the collected spans once, after the run — recording is
   lock-free per domain, serialization happens only here. *)
let write_profile (prof : Prof.session) (profile : string option) : unit =
  match profile with
  | None -> ()
  | Some path ->
    Prof.write_chrome path ~tracks:(Prof.tracks prof) (Prof.spans prof);
    Printf.printf "span profile written to %s (bvf profile %s, or load \
                   in Perfetto)\n" path path

(* exit 4 marks a damaged checkpoint (bad magic, wrong schema tag,
   digest mismatch, truncation) — distinct from exit 3, an environment
   failure such as an unreadable path *)
let checkpoint_exit_code (e : Checkpoint.error) : int =
  match e with Checkpoint.Io _ -> 3 | _ -> 4

let print_findings (stats : Campaign.stats) : unit =
  let findings =
    Hashtbl.fold (fun _ f acc -> f :: acc) stats.Campaign.st_findings []
    |> List.sort (fun a b ->
        compare a.Campaign.fd_iteration b.Campaign.fd_iteration)
  in
  List.iter
    (fun (f : Campaign.found) ->
       Printf.printf "  iter %6d: %s\n" f.Campaign.fd_iteration
         (Oracle.finding_to_string f.Campaign.fd_finding))
    findings

let fuzz_cmd =
  let run version seed iterations tool no_sanitize fixed unprivileged
      witness failslab_rate failslab_seed checkpoint_path checkpoint_every
      resume_path jobs workers state_dir deadline max_restarts
      quarantine_file trace log_level progress_every profile =
    let config =
      if fixed then Kconfig.fixed version else Kconfig.default version
    in
    let config = Kconfig.with_sanitize config (not no_sanitize) in
    let config = Kconfig.with_witness config witness in
    let config = { config with Kconfig.unprivileged } in
    let strategy =
      match tool with
      | `Bvf -> Campaign.bvf_strategy
      | `Syz -> Bvf_baselines.Syz_gen.strategy
      | `Buzzer -> Bvf_baselines.Buzzer_gen.strategy ()
    in
    if jobs < 1 then begin
      Printf.eprintf "bvf fuzz: --jobs must be >= 1\n";
      exit 2
    end;
    if jobs > 1 && (checkpoint_path <> None || resume_path <> None) then begin
      Printf.eprintf
        "bvf fuzz: --jobs > 1 is incompatible with --checkpoint/--resume \
         (shards are merged, not checkpointed)\n";
      exit 2
    end;
    if failslab_rate < 0.0 || failslab_rate > 1.0 then begin
      Printf.eprintf "bvf fuzz: --failslab rate must be in [0,1]\n";
      exit 2
    end;
    if workers < 0 then begin
      Printf.eprintf "bvf fuzz: --workers must be >= 1\n";
      exit 2
    end;
    if workers > 0 && jobs > 1 then begin
      Printf.eprintf
        "bvf fuzz: --workers and --jobs are exclusive shardings (forked \
         processes vs in-process domains)\n";
      exit 2
    end;
    if workers > 0 && (checkpoint_path <> None || resume_path <> None)
    then begin
      Printf.eprintf
        "bvf fuzz: --workers checkpoints per worker under --state-dir; \
         --checkpoint/--resume do not apply (rerun with the same \
         --state-dir to resume)\n";
      exit 2
    end;
    (* SIGINT/SIGTERM finish the in-flight iteration, write a final
       checkpoint where one is configured, flush telemetry and exit
       with the conventional 128+signal code *)
    let stop_sig = ref 0 in
    let arm_signals () =
      Sys.set_signal Sys.sigint
        (Sys.Signal_handle (fun _ -> stop_sig := 130));
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> stop_sig := 143))
    in
    let stopped () = !stop_sig <> 0 in
    Printf.printf "fuzzing %s (%d injected bugs, sanitize=%b) with %s%s...\n"
      (Version.to_string version)
      (List.length config.Kconfig.bugs)
      config.Kconfig.sanitize strategy.Campaign.s_name
      (if workers > 0 then
         Printf.sprintf " across %d supervised workers" workers
       else if jobs > 1 then Printf.sprintf " across %d domains" jobs
       else "");
    let progress =
      Option.map
        (fun every_s -> Progress.create ~every_s ~jobs ())
        progress_every
    in
    let prof =
      match profile with Some _ -> Prof.session () | None -> Prof.null
    in
    if workers > 0 then begin
      arm_signals ();
      let quarantine =
        match quarantine_file with
        | None -> []
        | Some f ->
          if not (Sys.file_exists f) then begin
            Printf.eprintf "bvf fuzz: --quarantine %s: no such file\n" f;
            exit 2
          end;
          Supervisor.quarantine_of_file f
      in
      let t0 = Mclock.now_s () in
      let outcome =
        try
          Supervisor.run ~log_level ?trace
            ?failslab_rate:
              (if failslab_rate > 0.0 then Some failslab_rate else None)
            ?failslab_seed ~checkpoint_every ~deadline_s:deadline
            ~max_restarts ~quarantine ~prof ~stop:stopped ~workers ~seed
            ~iterations ~dir:state_dir strategy config
        with Campaign.Environment msg ->
          Printf.eprintf "bvf fuzz: aborted on environment error: %s\n" msg;
          exit 3
      in
      match outcome with
      | Supervisor.Interrupted report ->
        Printf.printf
          "interrupted: workers checkpointed under %s; rerun with the \
           same --state-dir to resume\n"
          state_dir;
        Format.printf "%a" Supervisor.pp_report report;
        exit (if !stop_sig <> 0 then !stop_sig else 130)
      | Supervisor.Completed (result, report) ->
        (match trace with
         | Some path ->
           append_profile path result.Parallel.pr_stats
             ~wall_s:(Mclock.elapsed_s ~since:t0)
         | None -> ());
        write_profile prof profile;
        Format.printf "%a" Parallel.pp_summary result;
        Format.printf "%a" Supervisor.pp_report report;
        Printf.printf "merged digest: %s\n" (Parallel.digest result);
        print_findings result.Parallel.pr_stats
    end
    else if jobs > 1 then begin
      let t0 = Mclock.now_s () in
      let result =
        try
          Parallel.run ~jobs ?trace ~log_level
            ?failslab_rate:
              (if failslab_rate > 0.0 then Some failslab_rate else None)
            ?failslab_seed
            ?on_step:(Option.map Progress.observer progress)
            ~prof ~seed ~iterations strategy config
        with Campaign.Environment msg ->
          Printf.eprintf "bvf fuzz: aborted on environment error: %s\n" msg;
          exit 3
      in
      Option.iter Progress.finish progress;
      (match trace with
       | Some path ->
         append_profile path result.Parallel.pr_stats
           ~wall_s:(Mclock.elapsed_s ~since:t0)
       | None -> ());
      write_profile prof profile;
      Format.printf "%a" Parallel.pp_summary result;
      Printf.printf "merged digest: %s\n" (Parallel.digest result);
      print_findings result.Parallel.pr_stats
    end
    else begin
      arm_signals ();
      let resume_from =
        match resume_path with
        | None -> None
        | Some path ->
          (match Campaign.load_checkpoint ~path with
           | Ok s ->
             Printf.printf "resuming from %s: %d iterations completed\n"
               path s.Campaign.sn_completed;
             Some s
           | Error e ->
             Printf.eprintf "bvf fuzz: cannot resume from %s: %s\n" path
               (Checkpoint.error_to_string e);
             exit (checkpoint_exit_code e))
      in
      let failslab =
        (* on resume the restored plan (with its stream position) wins *)
        match resume_from with
        | Some _ -> None
        | None when failslab_rate > 0.0 ->
          Some
            (Failslab.create ~rate:failslab_rate
               ~seed:(Option.value failslab_seed ~default:seed) ())
        | None -> None
      in
      let telemetry =
        match trace with
        | Some path -> Telemetry.create path
        | None -> Telemetry.null
      in
      let t0 = Mclock.now_s () in
      (* same track layout as a --jobs 1 Parallel.run: the campaign is
         shard 0, its phases nested in one top-level "iterate" span *)
      let cprof = Prof.track prof ~name:"shard0" 0 in
      let stats =
        try
          Prof.span cprof "iterate" @@ fun () ->
          Campaign.run
            ~telemetry ~log_level ~prof:cprof
            ~checkpoint_every
            ?checkpoint_path
            ?failslab
            ?resume_from
            ~stop:stopped
            ?on_step:
              (Option.map
                 (fun p c -> Progress.update p ~shard:0 c)
                 progress)
            ~seed ~iterations strategy config
        with Campaign.Environment msg ->
          Telemetry.close telemetry;
          Printf.eprintf "bvf fuzz: aborted on environment error: %s\n" msg;
          exit 3
      in
      Telemetry.close telemetry;
      Option.iter Progress.finish progress;
      (match trace with
       | Some path ->
         append_profile path stats ~wall_s:(Mclock.elapsed_s ~since:t0)
       | None -> ());
      write_profile prof profile;
      Format.printf "%a" Campaign.pp_summary stats;
      (match failslab with
       | Some plan when Failslab.enabled plan ->
         Format.printf "%a" Failslab.pp_summary plan
       | Some _ | None -> ());
      print_findings stats;
      if !stop_sig <> 0 then begin
        (match checkpoint_path with
         | Some path ->
           Printf.printf
             "interrupted at iteration %d: checkpoint saved to %s\n"
             stats.Campaign.st_generated path
         | None ->
           Printf.printf "interrupted at iteration %d\n"
             stats.Campaign.st_generated);
        exit !stop_sig
      end
    end
  in
  Cmd.v (Cmd.info "fuzz" ~doc:"Run a fuzzing campaign.")
    Term.(const run $ version_t $ seed_t $ iterations_t $ tool_t
          $ no_sanitize_t $ fixed_t $ unprivileged_t $ witness_t
          $ failslab_t $ failslab_seed_t $ checkpoint_t
          $ checkpoint_every_t $ resume_t $ jobs_t $ workers_t
          $ state_dir_t $ deadline_t $ max_restarts_t $ quarantine_t
          $ trace_t $ log_level_t $ progress_t $ profile_t)

(* -- explain ---------------------------------------------------------------- *)

let explain_cmd =
  let run version seed tool unprivileged log_level =
    (* regenerate the seed's first program exactly the way a campaign's
       iteration 0 would (same strategy, same RNG stream, same standard
       map population), then replay the verifier with the log on *)
    let config = Kconfig.default version in
    let config = { config with Kconfig.unprivileged } in
    let strategy =
      match tool with
      | `Bvf -> Campaign.bvf_strategy
      | `Syz -> Bvf_baselines.Syz_gen.strategy
      | `Buzzer -> Bvf_baselines.Buzzer_gen.strategy ()
    in
    let session = Loader.create config in
    let gen_config =
      { Gen.c_version = version;
        c_maps = Campaign.standard_maps session }
    in
    let rng = Rng.create seed in
    let req = strategy.Campaign.s_generate rng gen_config None in
    Printf.printf "seed %d, %s, %s: %d-insn %s program\n\n" seed
      strategy.Campaign.s_name
      (Version.to_string version)
      (Array.length req.Verifier.r_insns)
      (Prog.prog_type_to_string req.Verifier.r_prog_type);
    print_string (Disasm.prog_to_string req.Verifier.r_insns);
    let verdict, log, vstats =
      Verifier.load_with_stats session.Loader.kst ~cov:session.Loader.cov
        ~log_level req
    in
    if log <> "" then begin
      Printf.printf "\nverifier log (level %d):\n" log_level;
      print_string log
    end;
    (match verdict with
     | Ok prog ->
       Printf.printf
         "\nverdict: ACCEPTED (prog id %d, %d insns after rewrite, %d \
          insns processed)\n"
         prog.Verifier.l_id
         (Array.length prog.Verifier.l_insns)
         prog.Verifier.l_insn_processed
     | Error e ->
       Printf.printf "\nverdict: REJECTED at pc %d with -%s\n  %s\n"
         e.Venv.vpc
         (Venv.errno_to_string e.Venv.errno)
         e.Venv.vmsg;
       Printf.printf "reason: %s (%s)\n"
         (Reject_reason.to_string e.Venv.vreason)
         (Reject_reason.describe e.Venv.vreason));
    match vstats with
    | Some vst ->
      Printf.printf "\nverifier counters:\n  ";
      Format.printf "%a@." Vstats.pp vst;
      (* the loop counters live outside the frozen schema Vstats.pp
         prints; surface them when the program actually looped *)
      if vst.Vstats.vs_loop_heads > 0 then
        Printf.printf "  loops: %d head%s, %d widening round%s\n"
          vst.Vstats.vs_loop_heads
          (if vst.Vstats.vs_loop_heads = 1 then "" else "s")
          vst.Vstats.vs_widen_rounds
          (if vst.Vstats.vs_widen_rounds = 1 then "" else "s")
    | None -> ()
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Regenerate a seed's program and replay the verifier with \
             the log enabled: the disassembly, the per-instruction log, \
             the verdict and the rejection taxonomy bucket.")
    Term.(const run $ version_t
          $ Arg.(required & pos 0 (some int) None
                 & info [] ~docv:"SEED"
                   ~doc:"RNG seed whose first generated program to \
                         explain.")
          $ tool_t $ unprivileged_t
          $ Arg.(value & opt int 2
                 & info [ "log-level" ] ~docv:"N"
                   ~doc:"Verifier log level (default 2: instructions \
                         plus register states)."))

(* -- stats ------------------------------------------------------------------- *)

let stats_cmd =
  let run path fail_on_unknown =
    if not (Sys.file_exists path) then begin
      Printf.eprintf "bvf stats: no such trace file: %s\n" path;
      exit 2
    end;
    let events = Telemetry.read_file path in
    let summary = Telemetry.summarize events in
    Format.printf "%a" Telemetry.pp_summary summary;
    let unknown = Telemetry.unknown_rejections summary in
    if unknown > 0 then
      Printf.printf
        "\n%d rejections are unclassified (reason=unknown): the \
         taxonomy in lib/verifier/reject_reason.ml has a gap\n"
        unknown;
    if fail_on_unknown && unknown > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Aggregate a JSONL trace written by $(b,bvf fuzz --trace): \
             acceptance by program type, the rejection taxonomy \
             histogram and the phase profile.")
    Term.(const run
          $ Arg.(required & pos 0 (some string) None
                 & info [] ~docv:"TRACE"
                   ~doc:"Trace file written by --trace.")
          $ Arg.(value & flag
                 & info [ "fail-on-unknown" ]
                   ~doc:"Exit 1 if any rejection is unclassified — the \
                         CI gate that keeps the taxonomy total."))

(* -- profile ---------------------------------------------------------------- *)

let profile_cmd =
  let run path fail_on_malformed =
    if not (Sys.file_exists path) then begin
      Printf.eprintf "bvf profile: no such profile file: %s\n" path;
      exit 2
    end;
    let spans, tracks, complaints = Prof.read_chrome path in
    List.iter
      (fun c -> Printf.eprintf "bvf profile: %s: %s\n" path c)
      complaints;
    let track_name trk =
      match List.assoc_opt trk tracks with
      | Some name -> name
      | None -> Printf.sprintf "track%d" trk
    in
    Printf.printf "%-20s %8s %11s %11s %10s %10s %12s %12s\n" "span"
      "count" "total s" "self s" "p50 ms" "p95 ms" "minor words"
      "major words";
    List.iter
      (fun (a : Prof.agg) ->
         Printf.printf
           "%-20s %8d %11.4f %11.4f %10.3f %10.3f %12.0f %12.0f\n"
           a.Prof.ag_name a.Prof.ag_count a.Prof.ag_total_s
           a.Prof.ag_self_s
           (1e3 *. a.Prof.ag_p50_s) (1e3 *. a.Prof.ag_p95_s)
           a.Prof.ag_minor_w a.Prof.ag_major_w)
      (Prof.aggregate spans);
    print_newline ();
    (* wall-time attribution: how much of each track's first-start..
       last-end window its top-level spans name *)
    Printf.printf "%-20s %11s %12s %9s\n" "track" "wall s" "named s"
      "coverage";
    List.iter
      (fun (trk, wall, top) ->
         Printf.printf "%-20s %11.4f %12.4f %8.1f%%\n" (track_name trk)
           wall top
           (if wall > 0. then 100. *. top /. wall else 100.))
      (Prof.track_attribution spans);
    if fail_on_malformed && complaints <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Aggregate a span profile written by $(b,bvf fuzz --profile) \
             or $(b,bvf batch --profile): per-span self time with \
             nearest-rank p50/p95 and allocation, plus per-track \
             wall-time attribution.  Malformed events and nesting \
             violations are reported on stderr.")
    Term.(const run
          $ Arg.(required & pos 0 (some string) None
                 & info [] ~docv:"PROFILE"
                   ~doc:"Chrome trace-event JSON written by --profile.")
          $ Arg.(value & flag
                 & info [ "fail-on-malformed" ]
                   ~doc:"Exit 1 if the trace has malformed events or \
                         nesting violations — the CI smoke gate."))

(* -- repro ------------------------------------------------------------------ *)

let bug_arg =
  let parse s =
    match
      List.find_opt
        (fun b -> Kconfig.bug_to_string b = s)
        Kconfig.all_bugs
    with
    | Some b -> Ok b
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown bug %S; one of: %s" s
              (String.concat ", "
                 (List.map Kconfig.bug_to_string Kconfig.all_bugs))))
  in
  let print fmt b = Format.fprintf fmt "%s" (Kconfig.bug_to_string b) in
  Arg.conv (parse, print)

let repro_cmd =
  let run bug seed =
    (* fuzz a kernel carrying only this bug until its fingerprint shows *)
    let config = Kconfig.make Version.Bpf_next ~bugs:[ bug ] in
    let component, description, _ = Kconfig.bug_info bug in
    Printf.printf "hunting %s (%s: %s)...\n"
      (Kconfig.bug_to_string bug)
      component description;
    let c = Campaign.create ~seed Campaign.bvf_strategy config in
    let budget = 60_000 in
    let rec hunt i =
      if i >= budget then
        Printf.printf "not reproduced within %d programs\n" budget
      else begin
        Campaign.step c;
        match
          Hashtbl.fold
            (fun _ (f : Campaign.found) acc ->
               if f.Campaign.fd_finding.Oracle.f_bug = Some bug then Some f
               else acc)
            c.Campaign.stats.Campaign.st_findings None
        with
        | Some f ->
          Printf.printf "reproduced at iteration %d:\n  %s\n\nprogram:\n"
            f.Campaign.fd_iteration
            (Oracle.finding_to_string f.Campaign.fd_finding);
          print_string
            (Disasm.prog_to_string
               f.Campaign.fd_request.Verifier.r_insns)
        | None -> hunt (i + 1)
      end
    in
    hunt 0
  in
  Cmd.v
    (Cmd.info "repro"
       ~doc:"Fuzz a kernel carrying a single injected bug until found.")
    Term.(const run
          $ Arg.(required & opt (some bug_arg) None
                 & info [ "bug"; "b" ] ~docv:"BUG"
                   ~doc:"Bug identifier, e.g. bug1-nullness-propagation.")
          $ seed_t)

(* -- selftests --------------------------------------------------------------- *)

let selftests_cmd =
  let run version count dump export =
    let suite = Selftests.build ~count version in
    Printf.printf "built %d self-test programs for %s\n"
      (List.length suite.Selftests.requests)
      (Version.to_string version);
    if dump then
      List.iteri
        (fun i req ->
           Printf.printf "--- selftest %d (%s) ---\n" i
             (Bvf_ebpf.Prog.prog_type_to_string req.Verifier.r_prog_type);
           print_string (Disasm.prog_to_string req.Verifier.r_insns))
        suite.Selftests.requests;
    match export with
    | None -> ()
    | Some path ->
      (* batch-ready corpus: a JSONL request file, or a directory of
         wire-format programs — the two input shapes bvf batch takes *)
      let requests =
        List.mapi
          (fun i req ->
             { Service.q_id = Printf.sprintf "selftest-%04d" i;
               q_req = req })
          suite.Selftests.requests
      in
      if Filename.check_suffix path ".jsonl" then begin
        let oc = open_out path in
        List.iter
          (fun r ->
             output_string oc (Service.request_to_json r);
             output_char oc '\n')
          requests;
        close_out oc;
        Printf.printf "exported %d requests to %s\n"
          (List.length requests) path
      end
      else begin
        if not (Sys.file_exists path) then Sys.mkdir path 0o755;
        List.iter
          (fun (r : Service.request) ->
             let name =
               Printf.sprintf "%s.%s.bin" r.Service.q_id
                 (Prog.prog_type_to_string
                    r.Service.q_req.Verifier.r_prog_type)
             in
             let oc = open_out_bin (Filename.concat path name) in
             output_bytes oc
               (Bvf_ebpf.Encode.encode r.Service.q_req.Verifier.r_insns);
             close_out oc)
          requests;
        Printf.printf "exported %d wire-format programs to %s/\n"
          (List.length requests) path
      end
  in
  Cmd.v
    (Cmd.info "selftests" ~doc:"Build and optionally dump the self-test corpus.")
    Term.(const run $ version_t
          $ Arg.(value & opt int 708
                 & info [ "count"; "c" ] ~docv:"N"
                   ~doc:"Number of programs to build.")
          $ Arg.(value & flag
                 & info [ "dump" ] ~doc:"Disassemble every program.")
          $ Arg.(value & opt (some string) None
                 & info [ "export" ] ~docv:"PATH"
                   ~doc:"Export the corpus for $(b,bvf batch): to a \
                         JSONL request file if $(docv) ends in .jsonl, \
                         otherwise to a directory of wire-format \
                         $(i,NAME.PROGTYPE.bin) programs."))

(* -- lint --------------------------------------------------------------------- *)

let lint_cmd =
  let run version count gen seed out =
    (* a fixed verifier with the invariant lint enabled, over the
       self-test corpus or a structured-generator batch: any violation
       is a well-formedness defect in the abstract domain itself,
       independent of the dynamic oracle.  The generated batch is the
       CI gate for the loop frames: widening must stay extensive and
       idempotent over whatever the generator emits. *)
    let config =
      Kconfig.with_lint (Kconfig.fixed version) true
    in
    let corpus_name, kst, requests =
      if gen then begin
        let session = Loader.create config in
        let gen_config =
          { Gen.c_version = version;
            c_maps = Campaign.standard_maps session }
        in
        let rng = Rng.create seed in
        ( "generated",
          session.Loader.kst,
          List.init count (fun _ -> Gen.generate rng gen_config) )
      end
      else begin
        let suite = Selftests.build ~count ~config version in
        ( "self-test",
          suite.Selftests.session.Loader.kst,
          suite.Selftests.requests )
      end
    in
    let cov = Bvf_verifier.Coverage.create () in
    let buf = Buffer.create 256 in
    let total = ref 0 and rejected = ref 0 and violations = ref 0 in
    List.iteri
      (fun i req ->
         incr total;
         let verdict, vs, n = Verifier.lint kst ~cov req in
         (match verdict with Ok () -> () | Error _ -> incr rejected);
         violations := !violations + n;
         List.iter
           (fun v ->
              Buffer.add_string buf
                (Printf.sprintf "%s %d: %s\n" corpus_name i
                   (Bvf_verifier.Invariants.to_string v)))
           vs)
      requests;
    let summary =
      Printf.sprintf
        "linted %d %s programs on %s: %d rejected, %d invariant \
         violations\n"
        !total corpus_name (Version.to_string version) !rejected
        !violations
    in
    print_string summary;
    print_string (Buffer.contents buf);
    (match out with
     | Some path ->
       let oc = open_out path in
       output_string oc summary;
       output_string oc (Buffer.contents buf);
       close_out oc;
       Printf.printf "report written to %s\n" path
     | None -> ());
    if !violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the verifier-state invariant lint over the self-test \
             corpus (or, with --gen, a structured-generator batch \
             including counted loops) and report any abstract-domain \
             well-formedness violations.  Exits 1 on any violation.")
    Term.(const run $ version_t
          $ Arg.(value & opt int 708
                 & info [ "count"; "c" ] ~docv:"N"
                   ~doc:"Number of programs to lint.")
          $ Arg.(value & flag
                 & info [ "gen" ]
                   ~doc:"Lint a structured-generator batch under --seed \
                         instead of the self-test corpus.")
          $ seed_t
          $ Arg.(value & opt (some string) None
                 & info [ "out"; "o" ] ~docv:"PATH"
                   ~doc:"Also write the lint report to $(docv)."))

(* -- veristat ----------------------------------------------------------------- *)

let veristat_cmd =
  let run version count gen seed json compare fail_on_regression files =
    if compare then begin
      match files with
      | [ old_path; new_path ] ->
        let load path =
          try Veristat.load_file path with
          | Sys_error msg ->
            Printf.eprintf "bvf veristat: %s\n" msg;
            exit 2
          | Veristat.Bad_table msg ->
            Printf.eprintf "bvf veristat: %s: %s\n" path msg;
            exit 2
        in
        let old_t = load old_path and new_t = load new_path in
        let c = Veristat.compare_tables ~old_t ~new_t in
        Format.printf "%a" Veristat.pp_comparison c;
        (match fail_on_regression with
         | Some threshold_pct ->
           (match Veristat.regressions ~threshold_pct c with
            | [] ->
              Printf.printf
                "gate: no counter grew by more than %g%%\n" threshold_pct
            | regs ->
              List.iter
                (fun m -> Printf.eprintf "regression: %s\n" m)
                regs;
              exit 1)
         | None -> ())
      | _ ->
        Printf.eprintf
          "bvf veristat: --compare takes exactly two table files \
           (old.json new.json)\n";
        exit 2
    end
    else begin
      if files <> [] then begin
        Printf.eprintf
          "bvf veristat: positional table files require --compare\n";
        exit 2
      end;
      let table =
        if gen then Veristat.run_generated ~seed ~count version
        else Veristat.run_selftests ~count version
      in
      match json with
      | Some path ->
        let oc = open_out path in
        output_string oc (Veristat.to_json table);
        close_out oc;
        Printf.printf "wrote %d-program veristat table to %s\n"
          (List.length table.Veristat.vt_rows)
          path
      | None -> Format.printf "%a" Veristat.pp_table table
    end
  in
  Cmd.v
    (Cmd.info "veristat"
       ~doc:"The kernel-veristat workflow over the simulated verifier: \
             run a program corpus, record per-program verifier \
             performance counters (insn_processed, total_states, \
             peak_states, ...), emit the table as text or JSONL, and \
             diff two tables with a regression gate.")
    Term.(const run $ version_t
          $ Arg.(value & opt int 708
                 & info [ "count"; "c" ] ~docv:"N"
                   ~doc:"Number of programs to run.")
          $ Arg.(value & flag
                 & info [ "gen" ]
                   ~doc:"Run a structured-generator batch under --seed \
                         instead of the self-test corpus.")
          $ seed_t
          $ Arg.(value & opt (some string) None
                 & info [ "json" ] ~docv:"PATH"
                   ~doc:"Write the table as JSONL to $(docv) instead of \
                         printing it.")
          $ Arg.(value & flag
                 & info [ "compare" ]
                   ~doc:"Compare two previously written JSONL tables \
                         (positional: old.json new.json) instead of \
                         running a corpus.")
          $ Arg.(value & opt (some float) None
                 & info [ "fail-on-regression" ] ~docv:"PCT"
                   ~doc:"With --compare: exit 1 if any counter total \
                         grows by more than $(docv) percent, or any \
                         program's verdict flips.")
          $ Arg.(value & pos_all string []
                 & info [] ~docv:"TABLE"
                   ~doc:"JSONL tables for --compare."))

(* -- cov ---------------------------------------------------------------------- *)

let cov_cmd =
  let run diff files =
    let load path =
      match Campaign.load_checkpoint ~path with
      | Ok s -> s
      | Error e ->
        Printf.eprintf "bvf cov: cannot read checkpoint %s: %s\n" path
          (Checkpoint.error_to_string e);
        exit 2
    in
    if diff then begin
      match files with
      | [ old_path; new_path ] ->
        let old_s = load old_path and new_s = load new_path in
        let gained, lost =
          Coverage.diff ~old_cov:old_s.Campaign.sn_cov
            ~new_cov:new_s.Campaign.sn_cov
        in
        Printf.printf "coverage %s (%d edges) -> %s (%d edges)\n"
          old_path
          (Coverage.edge_count old_s.Campaign.sn_cov)
          new_path
          (Coverage.edge_count new_s.Campaign.sn_cov);
        Printf.printf "gained %d, lost %d\n" (List.length gained)
          (List.length lost);
        List.iter
          (fun (site, variant) ->
             Printf.printf "  + %s variant %d\n" site variant)
          gained;
        List.iter
          (fun (site, variant) ->
             Printf.printf "  - %s variant %d\n" site variant)
          lost
      | _ ->
        Printf.eprintf
          "bvf cov: --diff takes exactly two checkpoint files \
           (old.ckpt new.ckpt)\n";
        exit 2
    end
    else begin
      match files with
      | [ path ] ->
        let s = load path in
        let cov = s.Campaign.sn_cov in
        Printf.printf
          "checkpoint %s: %d iterations completed, %d distinct edges\n"
          path s.Campaign.sn_completed
          (Coverage.edge_count cov);
        List.iter
          (fun (prefix, (distinct, hits, listing)) ->
             Printf.printf "\n%s: %d edges, %d hits\n" prefix distinct
               hits;
             List.iter
               (fun ((site, variant), h) ->
                  Printf.printf "  %-32s variant %2d: %d\n" site variant
                    h)
               listing)
          (Coverage.grouped cov);
        (match Campaign.plateau s.Campaign.sn_stats with
         | Some (last_gain, stalled) when stalled > 0 ->
           Printf.printf
             "\nplateau: last coverage gain at iteration %d; %d \
              iterations since without a new edge\n"
             last_gain stalled
         | Some (last_gain, _) ->
           Printf.printf
             "\nno plateau: coverage still growing at the last sample \
              (iteration %d)\n"
             last_gain
         | None -> ())
      | _ ->
        Printf.eprintf
          "bvf cov: takes exactly one checkpoint file (or two with \
           --diff)\n";
        exit 2
    end
  in
  Cmd.v
    (Cmd.info "cov"
       ~doc:"Inspect the coverage map inside a campaign checkpoint: \
             edges grouped by verifier site, the coverage-plateau \
             report, or (with --diff) the edges gained and lost between \
             two checkpoints.")
    Term.(const run
          $ Arg.(value & flag
                 & info [ "diff" ]
                   ~doc:"Diff two checkpoints' coverage maps (gained \
                         and lost edges).")
          $ Arg.(value & pos_all string []
                 & info [] ~docv:"CHECKPOINT"
                   ~doc:"Checkpoint file(s) written by $(b,bvf fuzz \
                         --checkpoint)."))

(* -- merge -------------------------------------------------------------------- *)

let merge_cmd =
  let run out files =
    if files = [] then begin
      Printf.eprintf
        "bvf merge: needs at least one checkpoint file to merge\n";
      exit 2
    end;
    let load path =
      match Campaign.load_checkpoint ~path with
      | Ok s -> s
      | Error (Checkpoint.Tag_mismatch _) -> (
        (* maybe a per-worker checkpoint salvaged from a supervised
           run: renumber its local iterations to global and merge *)
        match Supervisor.load_worker ~path with
        | Ok w -> Supervisor.globalize w
        | Error e ->
          Printf.eprintf "bvf merge: cannot read %s: %s\n" path
            (Checkpoint.error_to_string e);
          exit (checkpoint_exit_code e))
      | Error e ->
        Printf.eprintf "bvf merge: cannot read %s: %s\n" path
          (Checkpoint.error_to_string e);
        exit (checkpoint_exit_code e)
    in
    let snapshots = List.map load files in
    let merged =
      try Parallel.merge_snapshots snapshots with
      | Campaign.Environment msg ->
        Printf.eprintf "bvf merge: %s\n" msg;
        exit 2
    in
    (match Campaign.save_snapshot merged ~path:out with
     | Ok () -> ()
     | Error e ->
       Printf.eprintf "bvf merge: cannot write %s: %s\n" out
         (Checkpoint.error_to_string e);
       exit 3);
    Printf.printf
      "merged %d checkpoints into %s: %d iterations, %d edges, %d \
       findings\n"
      (List.length files) out merged.Campaign.sn_completed
      merged.Campaign.sn_stats.Campaign.st_edges
      (Hashtbl.length merged.Campaign.sn_stats.Campaign.st_findings);
    Printf.printf "merged digest: %s\n"
      (Campaign.digest merged.Campaign.sn_stats)
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Merge independent campaign checkpoints (from --checkpoint, \
             from different machines, or per-worker worker-N.ckpt files \
             salvaged from a --workers state directory) into one \
             reportable checkpoint: coverage unioned, findings \
             deduplicated at their earliest iteration, counters summed. \
             The output is associative and commutative on everything \
             the digest covers; it can be merged again or inspected \
             with $(b,bvf cov), but not resumed.")
    Term.(const run
          $ Arg.(required & opt (some string) None
                 & info [ "o"; "out" ] ~docv:"PATH"
                   ~doc:"Write the merged checkpoint to $(docv).")
          $ Arg.(value & pos_all string []
                 & info [] ~docv:"CHECKPOINT"
                   ~doc:"Checkpoint files to merge."))

(* -- batch / serve (the service layer, docs/SERVICE.md) ----------------------- *)

let cache_size_t =
  Arg.(value & opt int 65536
       & info [ "cache-size" ] ~docv:"N"
         ~doc:"Verdict-cache capacity (entries); least recently used \
               verdicts are evicted beyond it.")

let cache_file_t =
  Arg.(value & opt (some string) None
       & info [ "cache-file" ] ~docv:"PATH"
         ~doc:"Persist the verdict cache: loaded at startup when \
               $(docv) exists, saved (atomic write-then-rename) on \
               exit.  A damaged file is exit 4, like a damaged \
               checkpoint.")

let load_cache ~(cache_file : string option) ~(cache_size : int)
  : Vcache.t =
  if cache_size < 1 then begin
    Printf.eprintf "bvf: --cache-size must be >= 1\n";
    exit 2
  end;
  match cache_file with
  | Some path when Sys.file_exists path ->
    (match Vcache.load ~path ~cap:cache_size with
     | Ok cache -> cache
     | Error e ->
       Printf.eprintf "bvf: cannot load cache %s: %s\n" path
         (Checkpoint.error_to_string e);
       exit (checkpoint_exit_code e))
  | Some _ | None -> Vcache.create ~cap:cache_size

let save_cache (cache : Vcache.t) ~(cache_file : string option) : unit =
  match cache_file with
  | None -> ()
  | Some path ->
    (match Vcache.save cache ~path with
     | Ok () -> ()
     | Error e ->
       Printf.eprintf "bvf: cannot save cache %s: %s\n" path
         (Checkpoint.error_to_string e);
       exit 3)

let batch_cmd =
  let run version jobs cache_size cache_file out trace log_level
      profile selftests count inputs =
    if jobs < 1 then begin
      Printf.eprintf "bvf batch: --jobs must be >= 1\n";
      exit 2
    end;
    let config = Kconfig.fixed version in
    let inputs =
      match selftests, inputs with
      | true, [] ->
        let suite = Selftests.build ~count version in
        List.mapi
          (fun i req ->
             { Service.in_id = Printf.sprintf "selftest-%04d" i;
               in_req = Ok req })
          suite.Selftests.requests
      | true, _ :: _ ->
        Printf.eprintf
          "bvf batch: --selftests and an input path are exclusive\n";
        exit 2
      | false, [ path ] ->
        if not (Sys.file_exists path) then begin
          Printf.eprintf "bvf batch: no such input: %s\n" path;
          exit 3
        end;
        if Sys.is_directory path then Service.read_dir path
        else Service.read_jsonl path
      | false, _ ->
        Printf.eprintf
          "bvf batch: takes exactly one input (a JSONL file or a \
           directory), or --selftests\n";
        exit 2
    in
    let cache = load_cache ~cache_file ~cache_size in
    let sink =
      match trace with
      | Some path -> Telemetry.create path
      | None -> Telemetry.null
    in
    let prof =
      match profile with Some _ -> Prof.session () | None -> Prof.null
    in
    let items, summary =
      Service.run_batch ~log_level ~sink ~prof ~jobs ~cache config inputs
    in
    Telemetry.close sink;
    save_cache cache ~cache_file;
    (match profile with
     | None -> ()
     | Some path ->
       Prof.write_chrome path ~tracks:(Prof.tracks prof)
         (Prof.spans prof);
       (* results own stdout; the profile notice joins the summary on
          stderr *)
       Printf.eprintf "span profile written to %s\n" path);
    let oc, close =
      match out with
      | Some path -> let oc = open_out path in (oc, fun () -> close_out oc)
      | None -> (stdout, fun () -> Stdlib.flush stdout)
    in
    List.iter
      (fun it ->
         output_string oc (Service.item_to_json it);
         output_char oc '\n')
      items;
    close ();
    (* results on stdout (or --out), the timed summary on stderr:
       stdout stays pure, deterministic JSONL *)
    Printf.eprintf "%s\n" (Service.summary_to_json summary)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Verify a batch of programs as a service: JSONL requests \
             (or a directory of wire-format programs, or the self-test \
             corpus) in, one JSONL verdict per program out, with the \
             content-addressed verdict cache in front and misses \
             verified across --jobs domains.  Per-program output is \
             deterministic up to the trailing cache field; the summary \
             (stderr) carries the only wall times.  See docs/SERVICE.md.")
    Term.(const run $ version_t $ jobs_t $ cache_size_t $ cache_file_t
          $ Arg.(value & opt (some string) None
                 & info [ "out"; "o" ] ~docv:"PATH"
                   ~doc:"Write per-program results to $(docv) instead \
                         of stdout.")
          $ trace_t $ log_level_t $ profile_t
          $ Arg.(value & flag
                 & info [ "selftests" ]
                   ~doc:"Batch the self-test corpus instead of reading \
                         an input path.")
          $ Arg.(value & opt int 708
                 & info [ "count"; "c" ] ~docv:"N"
                   ~doc:"With --selftests: corpus size.")
          $ Arg.(value & pos_all string []
                 & info [] ~docv:"INPUT"
                   ~doc:"A JSONL request file or a directory of \
                         $(i,.bin)/$(i,.hex) wire-format programs."))

let serve_cmd =
  let run version cache_size cache_file trace log_level =
    let config = Kconfig.fixed version in
    let cache = load_cache ~cache_file ~cache_size in
    let sink =
      match trace with
      | Some path -> Telemetry.create path
      | None -> Telemetry.null
    in
    (* same drain contract as bvf fuzz: SIGINT/SIGTERM finish the
       in-flight request, persist the cache and exit 128+signal *)
    let stop_sig = ref 0 in
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle (fun _ -> stop_sig := 130));
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle (fun _ -> stop_sig := 143));
    let session = Service.create_session config in
    let stats =
      Service.serve ~log_level ~sink ~cache ~session
        ~stop:(fun () -> !stop_sig <> 0)
        stdin stdout
    in
    Telemetry.close sink;
    save_cache cache ~cache_file;
    Printf.eprintf
      "served %d requests (%d admitted, %d rejected, %d invalid); \
       cache %d hits / %d misses\n"
      stats.Service.sv_requests stats.Service.sv_admitted
      stats.Service.sv_rejected stats.Service.sv_invalid
      stats.Service.sv_hits stats.Service.sv_misses;
    if !stop_sig <> 0 then exit !stop_sig
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the verifier as a long-lived service: one JSONL \
             request per stdin line, one flushed JSONL verdict per \
             stdout line, the verdict cache in front, until EOF or a \
             graceful SIGINT/SIGTERM drain.  See docs/SERVICE.md.")
    Term.(const run $ version_t $ cache_size_t $ cache_file_t $ trace_t
          $ log_level_t)

(* -- experiments -------------------------------------------------------------- *)

let experiments_cmd =
  let run which =
    match which with
    | "table2" -> E.print_table2 (E.table2 ())
    | "table3" -> E.print_table3 (E.coverage ())
    | "figure6" -> E.print_figure6 (E.coverage ())
    | "acceptance" -> E.print_acceptance (E.acceptance ())
    | "overhead" -> E.print_overhead (E.overhead ())
    | "ablation" -> E.print_ablation (E.ablation ())
    | "parallel" -> E.print_parallel (E.parallel_bench ())
    | other ->
      Printf.eprintf "unknown experiment %S\n" other;
      exit 2
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate a paper artefact (table2, table3, figure6, \
             acceptance, overhead, ablation, parallel).")
    Term.(const run
          $ Arg.(required & pos 0 (some string) None
                 & info [] ~docv:"EXPERIMENT"))

let () =
  let info =
    Cmd.info "bvf" ~version:"1.0.0"
      ~doc:"Find correctness bugs in a (simulated) eBPF verifier with \
            structured and sanitized programs."
  in
  exit (Cmd.eval (Cmd.group info
                    [ fuzz_cmd; explain_cmd; stats_cmd; profile_cmd;
                      veristat_cmd; cov_cmd; merge_cmd; repro_cmd;
                      selftests_cmd; lint_cmd; batch_cmd; serve_cmd;
                      experiments_cmd ]))
