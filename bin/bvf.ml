(* The bvf command line: fuzz campaigns, single-bug reproducers,
   self-test corpus inspection and program disassembly over the
   simulated kernel.

     bvf fuzz --kernel bpf-next --iterations 20000 --seed 1 --tool bvf
     bvf fuzz --witness --iterations 20000
     bvf repro --bug bug1-nullness-propagation
     bvf selftests --count 100
     bvf lint --count 708 --out lint-report.txt
     bvf experiments table2 *)

module Version = Bvf_ebpf.Version
module Disasm = Bvf_ebpf.Disasm
module Kconfig = Bvf_kernel.Kconfig
module Failslab = Bvf_kernel.Failslab
module Checkpoint = Bvf_core.Checkpoint
module Verifier = Bvf_verifier.Verifier
module Loader = Bvf_runtime.Loader
module Campaign = Bvf_core.Campaign
module Parallel = Bvf_core.Parallel
module Oracle = Bvf_core.Oracle
module Selftests = Bvf_core.Selftests
module E = Bvf_experiments.Experiments

open Cmdliner

(* -- Shared arguments ----------------------------------------------------- *)

let version_arg =
  let parse s =
    match Version.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown kernel version %S" s))
  in
  let print fmt v = Format.fprintf fmt "%s" (Version.to_string v) in
  Arg.conv (parse, print)

let version_t =
  Arg.(value & opt version_arg Version.Bpf_next
       & info [ "kernel"; "k" ] ~docv:"VERSION"
         ~doc:"Kernel version to simulate: v5.15, v6.1 or bpf-next.")

let seed_t =
  Arg.(value & opt int 1
       & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Deterministic RNG seed.")

let iterations_t =
  Arg.(value & opt int 10_000
       & info [ "iterations"; "n" ] ~docv:"N"
         ~doc:"Number of programs to generate and run.")

(* -- fuzz ------------------------------------------------------------------- *)

let tool_t =
  Arg.(value & opt (enum [ ("bvf", `Bvf); ("syzkaller", `Syz);
                           ("buzzer", `Buzzer) ]) `Bvf
       & info [ "tool"; "t" ] ~docv:"TOOL"
         ~doc:"Generator to drive: bvf, syzkaller or buzzer.")

let no_sanitize_t =
  Arg.(value & flag
       & info [ "no-sanitize" ]
         ~doc:"Disable the bpf_asan sanitation patches (CONFIG_BPF_ASAN).")

let fixed_t =
  Arg.(value & flag
       & info [ "fixed" ]
         ~doc:"Run against a fully fixed kernel (no injected bugs).")

let unprivileged_t =
  Arg.(value & flag
       & info [ "unprivileged" ]
         ~doc:"Load programs without CAP_BPF: stricter verifier checks.")

let witness_t =
  Arg.(value & flag
       & info [ "witness" ]
         ~doc:"Record per-instruction abstract register states during \
               verification and flag concrete values that escape them \
               at run time (the indicator#3 witness oracle).")

let failslab_t =
  Arg.(value & opt float 0.0
       & info [ "failslab" ] ~docv:"RATE"
         ~doc:"Inject allocation failures (failslab-style) into the \
               simulated kernel with this probability in [0,1].")

let failslab_seed_t =
  Arg.(value & opt (some int) None
       & info [ "failslab-seed" ] ~docv:"SEED"
         ~doc:"Seed for the fault-injection decision stream (defaults to \
               the campaign seed).")

let checkpoint_t =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"PATH"
         ~doc:"Write campaign checkpoints to $(docv) (atomic \
               write-then-rename).")

let checkpoint_every_t =
  Arg.(value & opt int 1000
       & info [ "checkpoint-every" ] ~docv:"N"
         ~doc:"Checkpoint (and reboot) every $(docv) completed \
               iterations.")

let resume_t =
  Arg.(value & opt (some string) None
       & info [ "resume" ] ~docv:"PATH"
         ~doc:"Resume a campaign from a checkpoint file written by \
               --checkpoint.")

let jobs_t =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Shard the campaign across $(docv) parallel domains \
               (shard i fuzzes with seed+i; coverage, findings and the \
               corpus are merged).  $(docv)=1 is the sequential path.")

let print_findings (stats : Campaign.stats) : unit =
  let findings =
    Hashtbl.fold (fun _ f acc -> f :: acc) stats.Campaign.st_findings []
    |> List.sort (fun a b ->
        compare a.Campaign.fd_iteration b.Campaign.fd_iteration)
  in
  List.iter
    (fun (f : Campaign.found) ->
       Printf.printf "  iter %6d: %s\n" f.Campaign.fd_iteration
         (Oracle.finding_to_string f.Campaign.fd_finding))
    findings

let fuzz_cmd =
  let run version seed iterations tool no_sanitize fixed unprivileged
      witness failslab_rate failslab_seed checkpoint_path checkpoint_every
      resume_path jobs =
    let config =
      if fixed then Kconfig.fixed version else Kconfig.default version
    in
    let config = Kconfig.with_sanitize config (not no_sanitize) in
    let config = Kconfig.with_witness config witness in
    let config = { config with Kconfig.unprivileged } in
    let strategy =
      match tool with
      | `Bvf -> Campaign.bvf_strategy
      | `Syz -> Bvf_baselines.Syz_gen.strategy
      | `Buzzer -> Bvf_baselines.Buzzer_gen.strategy ()
    in
    if jobs < 1 then begin
      Printf.eprintf "bvf fuzz: --jobs must be >= 1\n";
      exit 2
    end;
    if jobs > 1 && (checkpoint_path <> None || resume_path <> None) then begin
      Printf.eprintf
        "bvf fuzz: --jobs > 1 is incompatible with --checkpoint/--resume \
         (shards are merged, not checkpointed)\n";
      exit 2
    end;
    if failslab_rate < 0.0 || failslab_rate > 1.0 then begin
      Printf.eprintf "bvf fuzz: --failslab rate must be in [0,1]\n";
      exit 2
    end;
    Printf.printf "fuzzing %s (%d injected bugs, sanitize=%b) with %s%s...\n"
      (Version.to_string version)
      (List.length config.Kconfig.bugs)
      config.Kconfig.sanitize strategy.Campaign.s_name
      (if jobs > 1 then Printf.sprintf " across %d domains" jobs else "");
    if jobs > 1 then begin
      let result =
        try
          Parallel.run ~jobs
            ?failslab_rate:
              (if failslab_rate > 0.0 then Some failslab_rate else None)
            ?failslab_seed ~seed ~iterations strategy config
        with Campaign.Environment msg ->
          Printf.eprintf "bvf fuzz: aborted on environment error: %s\n" msg;
          exit 3
      in
      Format.printf "%a" Parallel.pp_summary result;
      Printf.printf "merged digest: %s\n" (Parallel.digest result);
      print_findings result.Parallel.pr_stats
    end
    else begin
      let resume_from =
        match resume_path with
        | None -> None
        | Some path ->
          (match Campaign.load_checkpoint ~path with
           | Ok s ->
             Printf.printf "resuming from %s: %d iterations completed\n"
               path s.Campaign.sn_completed;
             Some s
           | Error e ->
             Printf.eprintf "bvf fuzz: cannot resume from %s: %s\n" path
               (Checkpoint.error_to_string e);
             exit 3)
      in
      let failslab =
        (* on resume the restored plan (with its stream position) wins *)
        match resume_from with
        | Some _ -> None
        | None when failslab_rate > 0.0 ->
          Some
            (Failslab.create ~rate:failslab_rate
               ~seed:(Option.value failslab_seed ~default:seed) ())
        | None -> None
      in
      let stats =
        try
          Campaign.run
            ~checkpoint_every
            ?checkpoint_path
            ?failslab
            ?resume_from
            ~seed ~iterations strategy config
        with Campaign.Environment msg ->
          Printf.eprintf "bvf fuzz: aborted on environment error: %s\n" msg;
          exit 3
      in
      Format.printf "%a" Campaign.pp_summary stats;
      (match failslab with
       | Some plan when Failslab.enabled plan ->
         Format.printf "%a" Failslab.pp_summary plan
       | Some _ | None -> ());
      print_findings stats
    end
  in
  Cmd.v (Cmd.info "fuzz" ~doc:"Run a fuzzing campaign.")
    Term.(const run $ version_t $ seed_t $ iterations_t $ tool_t
          $ no_sanitize_t $ fixed_t $ unprivileged_t $ witness_t
          $ failslab_t $ failslab_seed_t $ checkpoint_t
          $ checkpoint_every_t $ resume_t $ jobs_t)

(* -- repro ------------------------------------------------------------------ *)

let bug_arg =
  let parse s =
    match
      List.find_opt
        (fun b -> Kconfig.bug_to_string b = s)
        Kconfig.all_bugs
    with
    | Some b -> Ok b
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown bug %S; one of: %s" s
              (String.concat ", "
                 (List.map Kconfig.bug_to_string Kconfig.all_bugs))))
  in
  let print fmt b = Format.fprintf fmt "%s" (Kconfig.bug_to_string b) in
  Arg.conv (parse, print)

let repro_cmd =
  let run bug seed =
    (* fuzz a kernel carrying only this bug until its fingerprint shows *)
    let config = Kconfig.make Version.Bpf_next ~bugs:[ bug ] in
    let component, description, _ = Kconfig.bug_info bug in
    Printf.printf "hunting %s (%s: %s)...\n"
      (Kconfig.bug_to_string bug)
      component description;
    let c = Campaign.create ~seed Campaign.bvf_strategy config in
    let budget = 60_000 in
    let rec hunt i =
      if i >= budget then
        Printf.printf "not reproduced within %d programs\n" budget
      else begin
        Campaign.step c;
        match
          Hashtbl.fold
            (fun _ (f : Campaign.found) acc ->
               if f.Campaign.fd_finding.Oracle.f_bug = Some bug then Some f
               else acc)
            c.Campaign.stats.Campaign.st_findings None
        with
        | Some f ->
          Printf.printf "reproduced at iteration %d:\n  %s\n\nprogram:\n"
            f.Campaign.fd_iteration
            (Oracle.finding_to_string f.Campaign.fd_finding);
          print_string
            (Disasm.prog_to_string
               f.Campaign.fd_request.Verifier.r_insns)
        | None -> hunt (i + 1)
      end
    in
    hunt 0
  in
  Cmd.v
    (Cmd.info "repro"
       ~doc:"Fuzz a kernel carrying a single injected bug until found.")
    Term.(const run
          $ Arg.(required & opt (some bug_arg) None
                 & info [ "bug"; "b" ] ~docv:"BUG"
                   ~doc:"Bug identifier, e.g. bug1-nullness-propagation.")
          $ seed_t)

(* -- selftests --------------------------------------------------------------- *)

let selftests_cmd =
  let run version count dump =
    let suite = Selftests.build ~count version in
    Printf.printf "built %d self-test programs for %s\n"
      (List.length suite.Selftests.requests)
      (Version.to_string version);
    if dump then
      List.iteri
        (fun i req ->
           Printf.printf "--- selftest %d (%s) ---\n" i
             (Bvf_ebpf.Prog.prog_type_to_string req.Verifier.r_prog_type);
           print_string (Disasm.prog_to_string req.Verifier.r_insns))
        suite.Selftests.requests
  in
  Cmd.v
    (Cmd.info "selftests" ~doc:"Build and optionally dump the self-test corpus.")
    Term.(const run $ version_t
          $ Arg.(value & opt int 708
                 & info [ "count"; "c" ] ~docv:"N"
                   ~doc:"Number of programs to build.")
          $ Arg.(value & flag
                 & info [ "dump" ] ~doc:"Disassemble every program."))

(* -- lint --------------------------------------------------------------------- *)

let lint_cmd =
  let run version count out =
    (* a fixed verifier with the invariant lint enabled, over the
       self-test corpus: any violation is a well-formedness defect in
       the abstract domain itself, independent of the dynamic oracle *)
    let config =
      Kconfig.with_lint (Kconfig.fixed version) true
    in
    let suite = Selftests.build ~count ~config version in
    let kst = suite.Selftests.session.Loader.kst in
    let cov = Bvf_verifier.Coverage.create () in
    let buf = Buffer.create 256 in
    let total = ref 0 and rejected = ref 0 and violations = ref 0 in
    List.iteri
      (fun i req ->
         incr total;
         let verdict, vs, n = Verifier.lint kst ~cov req in
         (match verdict with Ok () -> () | Error _ -> incr rejected);
         violations := !violations + n;
         List.iter
           (fun v ->
              Buffer.add_string buf
                (Printf.sprintf "selftest %d: %s\n" i
                   (Bvf_verifier.Invariants.to_string v)))
           vs)
      suite.Selftests.requests;
    let summary =
      Printf.sprintf
        "linted %d self-test programs on %s: %d rejected, %d invariant \
         violations\n"
        !total (Version.to_string version) !rejected !violations
    in
    print_string summary;
    print_string (Buffer.contents buf);
    (match out with
     | Some path ->
       let oc = open_out path in
       output_string oc summary;
       output_string oc (Buffer.contents buf);
       close_out oc;
       Printf.printf "report written to %s\n" path
     | None -> ());
    if !violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the verifier-state invariant lint over the self-test \
             corpus and report any abstract-domain well-formedness \
             violations.")
    Term.(const run $ version_t
          $ Arg.(value & opt int 708
                 & info [ "count"; "c" ] ~docv:"N"
                   ~doc:"Number of self-test programs to lint.")
          $ Arg.(value & opt (some string) None
                 & info [ "out"; "o" ] ~docv:"PATH"
                   ~doc:"Also write the lint report to $(docv)."))

(* -- experiments -------------------------------------------------------------- *)

let experiments_cmd =
  let run which =
    match which with
    | "table2" -> E.print_table2 (E.table2 ())
    | "table3" -> E.print_table3 (E.coverage ())
    | "figure6" -> E.print_figure6 (E.coverage ())
    | "acceptance" -> E.print_acceptance (E.acceptance ())
    | "overhead" -> E.print_overhead (E.overhead ())
    | "ablation" -> E.print_ablation (E.ablation ())
    | "parallel" -> E.print_parallel (E.parallel_bench ())
    | other ->
      Printf.eprintf "unknown experiment %S\n" other;
      exit 2
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate a paper artefact (table2, table3, figure6, \
             acceptance, overhead, ablation, parallel).")
    Term.(const run
          $ Arg.(required & pos 0 (some string) None
                 & info [] ~docv:"EXPERIMENT"))

let () =
  let info =
    Cmd.info "bvf" ~version:"1.0.0"
      ~doc:"Find correctness bugs in a (simulated) eBPF verifier with \
            structured and sanitized programs."
  in
  exit (Cmd.eval (Cmd.group info
                    [ fuzz_cmd; repro_cmd; selftests_cmd; lint_cmd;
                      experiments_cmd ]))
