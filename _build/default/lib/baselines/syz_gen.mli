(** Syzkaller-style generation: encoding-valid instructions assembled
    from syscall-description-shaped templates and random fields, with no
    register-state tracking — the baseline of the paper's section 6.3
    whose acceptance rate sits at roughly half of BVF's and whose
    rejections are dominated by EACCES/EINVAL. *)

val random_insn :
  Bvf_core.Rng.t -> Bvf_core.Gen.config -> len:int -> Bvf_ebpf.Insn.t

val generate :
  Bvf_core.Rng.t -> Bvf_core.Gen.config -> Bvf_verifier.Verifier.request
(** One random BPF_PROG_LOAD request: minimal seed programs, template
    fragments with randomized fields, or fully random instruction
    runs. *)

val strategy : Bvf_core.Campaign.strategy
