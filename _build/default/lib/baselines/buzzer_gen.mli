(** Buzzer-style generation, reproducing both modes the paper measured
    (section 6.3): fully random bytes (~1% acceptance) and the
    ALU/JMP-only mode (~97% acceptance, ≥88% ALU/JMP instructions,
    touching almost none of the interesting verifier logic). *)

type mode = Random_bytes | Alu_jmp

val mode_to_string : mode -> string

val generate :
  mode -> Bvf_core.Rng.t -> Bvf_core.Gen.config ->
  Bvf_verifier.Verifier.request

val strategy : ?mode:mode -> unit -> Bvf_core.Campaign.strategy
(** Defaults to [Alu_jmp], the mode the paper's coverage comparison
    uses. *)
