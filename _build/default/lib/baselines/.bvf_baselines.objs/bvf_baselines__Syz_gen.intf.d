lib/baselines/syz_gen.mli: Bvf_core Bvf_ebpf Bvf_verifier
