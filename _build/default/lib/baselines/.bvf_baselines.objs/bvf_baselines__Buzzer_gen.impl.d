lib/baselines/buzzer_gen.ml: Array Bvf_core Bvf_ebpf Bvf_verifier Bytes Char Int32 List
