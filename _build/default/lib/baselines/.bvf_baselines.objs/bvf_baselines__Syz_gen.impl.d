lib/baselines/syz_gen.ml: Array Bvf_core Bvf_ebpf Bvf_kernel Bvf_verifier Int32 Int64 List
