lib/baselines/buzzer_gen.mli: Bvf_core Bvf_verifier
